/**
 * @file
 * Host-side simulator throughput: events/second and wall time for the
 * 64-node Weather figure workload under all five coherence schemes.
 *
 * This measures the simulator, not the simulated machine — simulated
 * cycle counts must not move when the event core changes, but
 * events/sec should. Runs are serial (never --jobs) so each
 * measurement has the whole host core; writes BENCH_sim_throughput.json
 * for CI trend tracking.
 */

#include <unistd.h>

#include <cstring>
#include <iomanip>

#include "bench_common.hh"
#include "proto/packet_pool.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

struct Row
{
    std::string label;
    Tick cycles = 0;
    std::uint64_t events = 0;
    double hostSeconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t packetAllocs = 0;   ///< fresh Packet heap allocations
    std::uint64_t packetRecycles = 0; ///< frames served from the pool
    unsigned simThreads = 0; ///< parallel-kernel rows only (0 = omitted)
};

Row
measure(const std::string &label, const ProtocolParams &proto,
        unsigned nodes = 0, TopologyParams topo = {},
        unsigned iterations = 0, bool hier = false,
        unsigned sim_threads = 1)
{
    WeatherParams wp = weatherFigureParams();
    if (iterations)
        wp.iterations = iterations;
    MachineConfig cfg = alewife64(proto);
    if (nodes) {
        cfg.numNodes = nodes;
        cfg.topology = topo;
    }
    cfg.hier = hier;
    cfg.simThreads = sim_threads;

    const std::uint64_t alloc0 = PacketPool::local().freshAllocs();
    const std::uint64_t recyc0 = PacketPool::local().recycled();

    Machine machine(cfg);
    Weather wl(wp);
    wl.install(machine);
    const RunResult run = machine.run();
    if (!run.completed)
        fatal("perf_sim_throughput: '%s' did not complete",
              label.c_str());
    wl.verify(machine);

    Row row;
    row.label = label;
    row.cycles = run.cycles;
    row.events = run.events;
    row.hostSeconds = run.hostSeconds;
    row.eventsPerSec = run.eventsPerSecond();
    row.packetAllocs = PacketPool::local().freshAllocs() - alloc0;
    row.packetRecycles = PacketPool::local().recycled() - recyc0;
    return row;
}

} // namespace

int
main()
{
    struct Scheme
    {
        const char *label;
        ProtocolParams proto;
    };
    const Scheme schemes[] = {
        {"full-map", protocols::fullMap()},
        {"dir4nb", protocols::dirNB(4)},
        {"limitless4", protocols::limitlessStall(4, 50)},
        {"limitless4-emu", protocols::limitlessEmulated(4)},
        {"chained", protocols::chained()},
    };

    std::cout << "simulator throughput: weather, 64 nodes, figure "
                 "params\n\n"
              << "  " << std::left << std::setw(16) << "scheme"
              << std::right << std::setw(12) << "sim cycles"
              << std::setw(12) << "events" << std::setw(10) << "wall s"
              << std::setw(10) << "Mev/s" << std::setw(12) << "pkt alloc"
              << std::setw(12) << "pkt reuse" << "\n";

    std::vector<Row> rows;
    for (const Scheme &s : schemes) {
        Row row = measure(s.label, s.proto);
        std::cout << "  " << std::left << std::setw(16) << row.label
                  << std::right << std::setw(12) << row.cycles
                  << std::setw(12) << row.events << std::setw(10)
                  << std::fixed << std::setprecision(2) << row.hostSeconds
                  << std::setw(10) << row.eventsPerSec / 1e6
                  << std::setw(12) << row.packetAllocs << std::setw(12)
                  << row.packetRecycles << "\n";
        rows.push_back(std::move(row));
    }

    // Scale rows: the same workload shrunk to a few iterations so the
    // 256- and 1024-node machines stay a CI-sized measurement. These
    // track host throughput as router count grows (and, at 1024, on the
    // torus with its doubled virtual-channel port count).
    struct ScalePoint
    {
        const char *label;
        unsigned nodes;
        TopologyKind kind;
        bool hier;
    };
    // The -hier rows run the same machines two-level (64-node chips):
    // they track the host-side cost of the extra chip-home dispatch
    // layer alongside the flat rows.
    const ScalePoint scale_points[] = {
        {"limitless4-256", 256, TopologyKind::mesh, false},
        {"limitless4-256-torus", 256, TopologyKind::torus, false},
        {"limitless4-1024", 1024, TopologyKind::mesh, false},
        {"limitless4-1024-torus", 1024, TopologyKind::torus, false},
        {"limitless4-256-torus-hier", 256, TopologyKind::torus, true},
        {"limitless4-1024-torus-hier", 1024, TopologyKind::torus, true},
    };
    std::cout << "\n  scale rows (weather, 6 iterations):\n";
    for (const ScalePoint &p : scale_points) {
        TopologyParams topo;
        topo.kind = p.kind;
        if (p.hier)
            topo.clusterSize = 64;
        Row row = measure(p.label, protocols::limitlessStall(4, 50),
                          p.nodes, topo, /*iterations=*/6, p.hier);
        std::cout << "  " << std::left << std::setw(22) << row.label
                  << std::right << std::setw(12) << row.cycles
                  << std::setw(12) << row.events << std::setw(10)
                  << std::fixed << std::setprecision(2) << row.hostSeconds
                  << std::setw(10) << row.eventsPerSec / 1e6
                  << std::setw(12) << row.packetAllocs << std::setw(12)
                  << row.packetRecycles << "\n";
        rows.push_back(std::move(row));
    }

    // Parallel-kernel sweep: the same limitless4 weather measurement
    // under the conservative window-parallel kernel. Simulated cycles
    // are bit-identical across the thread column by construction (the
    // property suite asserts it); only events/sec may move. On a
    // single-core host the barrier lockstep makes threads > 1 slower,
    // which is expected — the rows exist so multi-core CI tracks the
    // scaling curve.
    struct ParallelPoint
    {
        unsigned nodes;
        TopologyKind kind;
    };
    const ParallelPoint parallel_points[] = {
        {64, TopologyKind::mesh},    {64, TopologyKind::torus},
        {256, TopologyKind::mesh},   {256, TopologyKind::torus},
        {1024, TopologyKind::mesh},  {1024, TopologyKind::torus},
    };
    std::cout << "\n  parallel-kernel rows (weather, 3 iterations, "
                 "limitless4):\n";
    for (const ParallelPoint &p : parallel_points) {
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            TopologyParams topo;
            topo.kind = p.kind;
            std::ostringstream label;
            label << "limitless4-" << p.nodes
                  << (p.kind == TopologyKind::torus ? "-torus" : "")
                  << "-t" << threads;
            Row row = measure(label.str(),
                              protocols::limitlessStall(4, 50), p.nodes,
                              topo, /*iterations=*/3, /*hier=*/false,
                              threads);
            row.simThreads = threads;
            std::cout << "  " << std::left << std::setw(26) << row.label
                      << std::right << std::setw(12) << row.cycles
                      << std::setw(12) << row.events << std::setw(10)
                      << std::fixed << std::setprecision(2)
                      << row.hostSeconds << std::setw(10)
                      << row.eventsPerSec / 1e6 << "\n";
            rows.push_back(std::move(row));
        }
    }

    const std::string path = "BENCH_sim_throughput.json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot write " << path << "\n";
        return 1;
    }
    // Schema v2: per-row wall time and throughput live in a nested
    // "host" object so tools/limitless-perfdiff can compare them under
    // a noise threshold while everything else stays exact. (v1 had
    // flat host_seconds/events_per_sec keys.)
    char hostname[256] = "unknown";
    if (gethostname(hostname, sizeof(hostname)) != 0)
        std::strcpy(hostname, "unknown");
    hostname[sizeof(hostname) - 1] = '\0';
    out << "{\n  \"bench\": \"sim_throughput\",\n"
        << "  \"schema\": \"limitless-bench\",\n"
        << "  \"schema_version\": 2,\n"
        << "  \"host\": {\"hostname\": ";
    jsonEscape(out, hostname);
    out << "},\n  \"rows\": [";
    bool first = true;
    for (const Row &r : rows) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"label\": ";
        jsonEscape(out, r.label);
        out << ", \"cycles\": " << r.cycles << ", \"events\": "
            << r.events << ", \"packet_allocs\": " << r.packetAllocs
            << ", \"packet_recycles\": " << r.packetRecycles;
        // Additive: only the parallel-kernel sweep rows carry the
        // thread count, so every other row keeps the v1 key set.
        if (r.simThreads)
            out << ", \"sim_threads\": " << r.simThreads;
        out << ", \"host\": {\"seconds\": " << r.hostSeconds
            << ", \"events_per_sec\": " << r.eventsPerSec << "}}";
    }
    out << "\n  ]\n}\n";
    std::cout << "\njson: " << path << "\n";
    return 0;
}
