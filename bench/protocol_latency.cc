/**
 * @file
 * Protocol-transition latency table (complements Table 2 of the paper):
 * measures the processor-visible cost of each major coherence scenario
 * on a 16-node mesh machine for every protocol — the per-transition
 * timing behind the figures.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

struct Scenario
{
    const char *name;
    unsigned sharers; ///< read-only copies before the measured op
    bool dirty;       ///< owner holds the line dirty before the op
    bool write;       ///< the measured op is a write
};

/** Run one scenario and return the measured op latency. */
Tick
measure(ProtocolParams proto, const Scenario &sc)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = proto;
    cfg.seed = 17;
    Machine m(cfg);
    const AddressMap &amap = m.addressMap();
    const Addr a = amap.addrOnNode(0, 0);
    const Addr ready = amap.addrOnNode(1, 1);
    Tick latency = 0;

    // Preparation threads: optional dirty owner (node 2), then readers.
    const unsigned preparers = (sc.dirty ? 1 : 0) + sc.sharers;
    if (sc.dirty) {
        m.spawnOn(2, [&, a, ready](ThreadApi &t) -> Task<> {
            co_await t.write(a, 7);
            co_await t.fetchAdd(ready, 1);
        });
    }
    for (unsigned i = 0; i < sc.sharers; ++i) {
        const NodeId node = 3 + i;
        m.spawnOn(node, [&, a, ready](ThreadApi &t) -> Task<> {
            co_await t.read(a);
            co_await t.fetchAdd(ready, 1);
        });
    }
    // Measuring thread on node 15 (far corner).
    m.spawnOn(15, [&, a, ready, preparers](ThreadApi &t) -> Task<> {
        while ((co_await t.read(ready)) != preparers)
            co_await t.compute(20);
        co_await t.compute(50); // let the fabric drain
        const Tick start = t.now();
        if (sc.write)
            co_await t.write(a, 9);
        else
            co_await t.read(a);
        latency = t.now() - start;
    });
    if (!m.run().completed)
        fatal("protocol_latency: scenario '%s' did not complete", sc.name);
    return latency;
}

} // namespace

int
main()
{
    paperReference(
        "Protocol transition latencies (Table 2 scenarios)",
        "Per-transition processor-visible latency, 16-node mesh. The "
        "paper quotes Th ~= 35 cycles\nfor the average remote access; "
        "individual transitions bracket that number.");

    const Scenario scenarios[] = {
        {"read, uncached (T1)", 0, false, false},
        {"read, 4 sharers (T1)", 4, false, false},
        {"read, dirty owner (T5+T10)", 0, true, false},
        {"write, uncached (T2)", 0, false, true},
        {"write, 1 sharer (T3)", 1, false, true},
        {"write, 4 sharers (T3)", 4, false, true},
        {"write, 8 sharers (T3)", 8, false, true},
        {"write, dirty owner (T4+T8)", 0, true, true},
    };

    const std::pair<const char *, ProtocolParams> protos[] = {
        {"Full-Map", protocols::fullMap()},
        {"Dir4NB", protocols::dirNB(4)},
        {"LimitLESS4", protocols::limitlessStall(4, 50)},
        {"LimitLESS4emu", protocols::limitlessEmulated(4)},
        {"Chained", protocols::chained()},
    };

    std::cout << "\n  " << std::left << std::setw(30) << "scenario";
    for (const auto &[name, proto] : protos)
        std::cout << std::right << std::setw(14) << name;
    std::cout << "\n";
    for (const Scenario &sc : scenarios) {
        std::cout << "  " << std::left << std::setw(30) << sc.name;
        for (const auto &[name, proto] : protos)
            std::cout << std::right << std::setw(14)
                      << measure(proto, sc);
        std::cout << "\n";
    }
    std::cout << "\n(cycles; writes over many sharers show full-map's "
                 "overlapped INVs vs the chained walk's\nsequential "
                 "latency, and the LimitLESS write-gather trap cost on "
                 "overflowed lines)\n";
    return 0;
}
