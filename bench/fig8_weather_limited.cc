/**
 * @file
 * Figure 8 reproduction: Weather on 64 processors with the hot variable
 * *not* flagged read-only, under limited directories vs full-map.
 *
 * Paper result: Dir1NB/Dir2NB/Dir4NB all take ~1.4-1.6 Mcycles while
 * full-map takes ~0.6 Mcycles — when one location's worker-set is much
 * larger than the pointer array, the whole system suffers hot-spot
 * thrashing. A second table reproduces the Section 5.2 observation that
 * flagging the variable read-only makes the limited directory perform
 * just as well as full-map.
 */

#include "bench_common.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Figure 8: Weather, 64 Processors, limited and full-map",
        "Paper: Dir1NB ~1.5M, Dir2NB ~1.5M, Dir4NB ~1.4M, Full-Map "
        "~0.6 Mcycles;\nexpected shape: every limited directory "
        ">= ~2.3x full-map.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    const Tick metrics = parseMetricsIntervalFlag(argc, argv);
    const bool txn_trace = parseTxnTraceFlag(argc, argv);
    const ShapeOverride shape = ShapeOverride::parse(argc, argv);
    const WeatherParams wp = weatherFigureParams();
    auto make = [&]() { return std::make_unique<Weather>(wp); };

    ResultTable table("Figure 8: weather (unoptimized hot variable)");
    std::vector<std::function<ExperimentOutcome()>> runs;
    for (const auto &proto :
         {protocols::dirNB(1), protocols::dirNB(2), protocols::dirNB(4),
          protocols::fullMap()}) {
        runs.push_back([proto, &make, metrics, txn_trace, shape]() {
            MachineConfig cfg = alewife64(proto);
            shape.apply(cfg);
            applyTelemetry(cfg, metrics, "fig8_weather_limited",
                           cfg.protocol.name());
            applyTxnTrace(cfg, txn_trace, "fig8_weather_limited",
                          cfg.protocol.name());
            return runExperiment(cfg, make);
        });
    }
    runSweep(table, std::move(runs), jobs);
    table.printBars(std::cout);
    table.printDetails(std::cout);
    table.printPhases(std::cout);

    // Section 5.2: the optimized program ("variable flagged as
    // read-only") removes the pathology.
    const WeatherParams wo = weatherFigureParams(/*optimized=*/true);
    auto make_opt = [&]() { return std::make_unique<Weather>(wo); };
    ResultTable opt("Section 5.2: weather with the hot variable "
                    "flagged read-only");
    std::vector<std::function<ExperimentOutcome()>> opt_runs;
    for (const auto &proto : {protocols::dirNB(4), protocols::fullMap()}) {
        opt_runs.push_back([proto, &make_opt, metrics, txn_trace,
                            shape]() {
            MachineConfig cfg = alewife64(proto);
            shape.apply(cfg);
            applyTelemetry(cfg, metrics, "fig8_weather_optimized",
                           cfg.protocol.name());
            applyTxnTrace(cfg, txn_trace, "fig8_weather_optimized",
                          cfg.protocol.name());
            return runExperiment(cfg, make_opt);
        });
    }
    runSweep(opt, std::move(opt_runs), jobs);
    opt.printBars(std::cout);
    opt.printDetails(std::cout);

    if (wantCsv(argc, argv)) {
        table.printCsv(std::cout);
        opt.printCsv(std::cout);
    }
    writeBenchJson("fig8_weather_limited", table);
    writeBenchJson("fig8_weather_optimized", opt);

    const double full = table.row("Full-Map").mcycles;
    bool ok = true;
    for (const char *lim : {"Dir1NB", "Dir2NB", "Dir4NB"}) {
        if (table.row(lim).mcycles < full * 2.0) {
            std::cout << "\nSHAPE CHECK FAILED: " << lim << " only "
                      << table.row(lim).mcycles / full << "x full-map\n";
            ok = false;
        }
    }
    if (opt.row("Dir4NB").mcycles > opt.row("Full-Map").mcycles * 1.10) {
        std::cout << "\nSHAPE CHECK FAILED: optimized Dir4NB not within "
                     "10% of full-map\n";
        ok = false;
    }
    if (ok)
        std::cout << "\nShape check PASSED: limited directories thrash "
                     "(>=2x full-map); the optimized program rescues "
                     "Dir4NB, as in the paper.\n";
    return ok ? 0 : 1;
}
