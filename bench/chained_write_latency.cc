/**
 * @file
 * Chained-directory comparison (paper Section 1): "chained directories
 * are forced to transmit invalidations sequentially through a
 * linked-list structure, and thus incur high write latencies for very
 * large machines." This bench sweeps the worker-set size and reports
 * the writer-observed invalidation latency for chained, full-map,
 * Dir4NB and LimitLESS4.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"
#include "workload/worker_set.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

double
writeLatency(ProtocolParams proto, unsigned workers)
{
    MachineConfig cfg = alewife64(proto);
    WorkerSetParams wp;
    wp.workerSet = workers;
    wp.rounds = 8;
    WorkerSetSweep wl(wp);
    Machine m(cfg);
    wl.install(m);
    if (!m.run().completed)
        fatal("chained_write_latency: run did not complete");
    wl.verify(m);
    return wl.meanWriteLatency();
}

} // namespace

int
main()
{
    paperReference(
        "Chained vs LimitLESS: invalidation latency vs worker-set",
        "Paper (qualitative): chained write latency grows linearly with "
        "the sharing chain;\nfull-map / LimitLESS overlap their "
        "invalidations. Expected: the chained column grows\n~linearly, "
        "the others stay nearly flat.");

    const std::pair<const char *, ProtocolParams> protos[] = {
        {"Full-Map", protocols::fullMap()},
        {"Dir4NB", protocols::dirNB(4)},
        {"LimitLESS4", protocols::limitlessStall(4, 50)},
        {"Chained", protocols::chained()},
    };

    std::cout << "\nMean write latency (cycles) vs worker-set size, 64 "
                 "processors:\n";
    std::cout << "  " << std::setw(10) << "workers";
    for (const auto &[name, proto] : protos)
        std::cout << std::setw(12) << name;
    std::cout << "\n";

    double chained_small = 0, chained_big = 0;
    double fullmap_small = 0, fullmap_big = 0;
    for (unsigned w : {2u, 4u, 8u, 16u, 32u, 48u}) {
        std::cout << "  " << std::setw(10) << w;
        for (const auto &[name, proto] : protos) {
            const double lat = writeLatency(proto, w);
            std::cout << std::setw(12) << std::fixed
                      << std::setprecision(1) << lat;
            if (std::string(name) == "Chained") {
                if (w == 4)
                    chained_small = lat;
                if (w == 32)
                    chained_big = lat;
            }
            if (std::string(name) == "Full-Map") {
                if (w == 4)
                    fullmap_small = lat;
                if (w == 32)
                    fullmap_big = lat;
            }
        }
        std::cout << "\n";
    }

    const double chained_growth = chained_big / chained_small;
    const double fullmap_growth = fullmap_big / fullmap_small;
    std::cout << "\n4 -> 32 workers growth: chained " << std::fixed
              << std::setprecision(1) << chained_growth
              << "x vs full-map " << fullmap_growth << "x\n";
    if (chained_growth < 3.0 || chained_growth < 2 * fullmap_growth) {
        std::cout << "SHAPE CHECK FAILED: chained latency should grow "
                     "~linearly and much faster than full-map\n";
        return 1;
    }
    std::cout << "Shape check PASSED: sequential chained invalidations "
                 "vs overlapped directory INVs.\n";
    return 0;
}
