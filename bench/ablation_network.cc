/**
 * @file
 * Contention-model ablation (design decision D5): the paper observes
 * that the Weather pathology "was not evident in previous evaluations of
 * directory-based cache coherence because the network model did not
 * account for hot-spot behavior".
 *
 * In this reproduction the hot spot manifests mostly as queueing at the
 * home node (memory-controller occupancy and transaction interlocks)
 * plus ejection serialization in the mesh. The bench therefore compares
 * three fidelity levels:
 *   A. wormhole mesh + controller occupancy   (full hot-spot modelling)
 *   B. contention-free network + occupancy    (wires idealized)
 *   C. contention-free network + zero-occupancy controller with a deep
 *      request buffer                         (the "old-style" model)
 * and shows the Dir4NB/full-map penalty collapse when hot-spot queueing
 * is modelled away — the paper's methodological point.
 */

#include "bench_common.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Ablation: hot-spot contention modelling (D5)",
        "Paper Section 5.2: earlier studies missed the limited-directory "
        "pathology because their\nmodel had no hot-spot behaviour. "
        "Expected: the Dir4NB/full-map ratio shrinks "
        "substantially\nonce home-node contention is idealized away.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    const WeatherParams wp = weatherFigureParams();
    auto make = [&]() { return std::make_unique<Weather>(wp); };

    struct Mode
    {
        const char *name;
        NetworkKind net;
        bool ideal_controller;
    };
    const Mode modes[] = {
        {"mesh+occupancy", NetworkKind::mesh, false},
        {"ideal-net+occupancy", NetworkKind::ideal, false},
        {"ideal-net+ideal-ctrl", NetworkKind::ideal, true},
    };

    ResultTable table("weather, 64 procs, contention-model ablation");
    std::vector<std::function<ExperimentOutcome()>> runs;
    for (const Mode &mode : modes) {
        for (auto proto : {protocols::dirNB(4), protocols::fullMap()}) {
            runs.push_back([mode, proto, &make]() {
                MachineConfig cfg = alewife64(proto);
                cfg.network = mode.net;
                if (mode.ideal_controller) {
                    cfg.mem.serviceCycles = 0;
                    cfg.mem.deferDepth = 64;
                }
                return runExperiment(
                    cfg, make,
                    std::string(proto.kind == ProtocolKind::limited
                                    ? "Dir4NB "
                                    : "Full-Map ") +
                        mode.name);
            });
        }
    }
    runSweep(table, std::move(runs), jobs);

    double ratios[3] = {};
    for (int i = 0; i < 3; ++i) {
        ratios[i] = table.rows()[2 * i].mcycles /
                    table.rows()[2 * i + 1].mcycles;
    }

    table.printBars(std::cout);
    table.printDetails(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);

    std::cout << "\nDir4NB / Full-Map ratio by contention fidelity:\n"
              << "  mesh+occupancy:        " << ratios[0] << "x\n"
              << "  ideal-net+occupancy:   " << ratios[1] << "x\n"
              << "  ideal-net+ideal-ctrl:  " << ratios[2] << "x\n";
    if (ratios[0] < ratios[2] * 1.3) {
        std::cout << "SHAPE CHECK FAILED: modelling hot-spot contention "
                     "should amplify the limited-dir penalty\n";
        return 1;
    }
    std::cout << "Shape check PASSED: without hot-spot (home-node) "
                 "contention the pathology shrinks from "
              << ratios[0] << "x to " << ratios[2]
              << "x — the effect the paper says earlier studies "
                 "missed.\n";
    return 0;
}
