/**
 * @file
 * Memory-model bench: sequential consistency vs weak ordering vs
 * Alewife-style multithreading (paper Section 2).
 *
 * The paper contrasts Alewife's context-switching approach with
 * weakly-ordered machines (DASH): "Some systems have opted to use weak
 * ordering to tolerate certain types of communication latency, but this
 * method lacks the ability to overlap read-miss and synchronization
 * latencies." This bench measures exactly that on a remote
 * gather/scatter kernel and on the application workloads:
 *   - weak ordering hides *write* latency only;
 *   - rapid context switching overlaps read misses too;
 *   - the two compose.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

/** Remote gather/scatter kernel, `threads` contexts per processor. */
Tick
runKernel(MemoryModel model, unsigned threads)
{
    MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
    cfg.numNodes = 16;
    cfg.proc.memoryModel = model;
    Machine m(cfg);
    const AddressMap &amap = m.addressMap();
    const unsigned iters = 40 / threads;

    for (NodeId p = 0; p < 16; ++p) {
        for (unsigned c = 0; c < threads; ++c) {
            m.spawnOn(p, [&amap, p, c, iters](ThreadApi &t) -> Task<> {
                const unsigned base = (p * 4 + c) * 128;
                for (unsigned i = 0; i < iters; ++i) {
                    // Gather a cold remote line, scatter to another.
                    co_await t.read(
                        amap.addrOnNode((p + 3 + i) % 16, base + i));
                    co_await t.write(
                        amap.addrOnNode((p + 7 + i) % 16,
                                        base + 64 + i),
                        i);
                    co_await t.compute(6);
                }
                co_await t.fence();
            });
        }
    }
    const RunResult r = m.run();
    if (!r.completed)
        fatal("ext_weak_ordering: kernel did not complete");
    return r.cycles;
}

Tick
runWeather(MemoryModel model)
{
    MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
    cfg.proc.memoryModel = model;
    WeatherParams wp = weatherFigureParams();
    wp.iterations = 30;
    Machine m(cfg);
    Weather wl(wp);
    wl.install(m);
    const RunResult r = m.run();
    if (!r.completed)
        fatal("ext_weak_ordering: weather did not complete");
    wl.verify(m);
    return r.cycles;
}

} // namespace

int
main()
{
    paperReference(
        "Memory models: weak ordering vs rapid context switching "
        "(Section 2)",
        "Paper (qualitative): weak ordering tolerates write latency but "
        "cannot overlap\nread-miss latency; Alewife switches contexts "
        "instead. Expected: on a gather/scatter\nkernel, WO beats SC "
        "with one thread; adding threads helps both by overlapping\n"
        "reads; the combination is fastest.");

    const Tick sc1 = runKernel(MemoryModel::sequential, 1);
    const Tick wo1 = runKernel(MemoryModel::weak, 1);
    const Tick sc2 = runKernel(MemoryModel::sequential, 2);
    const Tick wo2 = runKernel(MemoryModel::weak, 2);

    std::cout << "\nGather/scatter kernel, 16 nodes (cycles):\n";
    std::cout << "  " << std::left << std::setw(36)
              << "sequential consistency, 1 thread" << std::right
              << std::setw(8) << sc1 << "\n";
    std::cout << "  " << std::left << std::setw(36)
              << "weak ordering, 1 thread" << std::right << std::setw(8)
              << wo1 << "   (hides writes)\n";
    std::cout << "  " << std::left << std::setw(36)
              << "sequential consistency, 2 threads" << std::right
              << std::setw(8) << sc2 << "   (overlaps reads too)\n";
    std::cout << "  " << std::left << std::setw(36)
              << "weak ordering, 2 threads" << std::right << std::setw(8)
              << wo2 << "\n";

    const Tick w_sc = runWeather(MemoryModel::sequential);
    const Tick w_wo = runWeather(MemoryModel::weak);
    std::cout << "\nWeather, 64 nodes: SC " << w_sc << " vs WO " << w_wo
              << " cycles (" << std::fixed << std::setprecision(2)
              << double(w_sc) / w_wo
              << "x) — read/synchronization dominated, so the gain is "
                 "modest,\nexactly the paper's argument for context "
                 "switching.\n";

    bool ok = wo1 < sc1 && sc2 < sc1 && wo2 <= wo1 && w_wo <= w_sc;
    if (ok)
        std::cout << "\nShape check PASSED: WO hides writes; "
                     "multithreading overlaps reads; they compose.\n";
    else
        std::cout << "\nSHAPE CHECK FAILED (see rows above).\n";
    return ok ? 0 : 1;
}
