/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: the standard
 * 64-node Alewife-like machine and the workload sizes used across
 * Figures 7-10, plus paper-reference printing.
 */

#ifndef LIMITLESS_BENCH_BENCH_COMMON_HH
#define LIMITLESS_BENCH_BENCH_COMMON_HH

#include <cstring>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/result_table.hh"
#include "workload/multigrid.hh"
#include "workload/weather.hh"

namespace limitless::bench
{

/** The evaluation machine: 64 processors on an 8x8 wormhole mesh. */
inline MachineConfig
alewife64(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 64;
    cfg.protocol = proto;
    cfg.seed = 1991;
    return cfg;
}

/** Weather sized so runs land in the paper's hundreds-of-kilocycles
 *  regime while keeping a full figure sweep under a few minutes. */
inline WeatherParams
weatherFigureParams(bool optimized = false)
{
    WeatherParams wp;
    wp.iterations = 60;
    wp.columnLines = 64;
    wp.optimizeHotVariable = optimized;
    return wp;
}

inline MultigridParams
multigridFigureParams()
{
    MultigridParams mp;
    mp.iterations = 60;
    mp.interiorLines = 48;
    mp.boundaryWords = 4;
    return mp;
}

/** Print the "paper reports" block ahead of the measured rows. */
inline void
paperReference(const char *figure, const char *text)
{
    std::cout << "\n--- " << figure << " ---\n" << text << "\n";
}

inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--csv"))
            return true;
    return false;
}

} // namespace limitless::bench

#endif // LIMITLESS_BENCH_BENCH_COMMON_HH
