/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: the standard
 * 64-node Alewife-like machine and the workload sizes used across
 * Figures 7-10, plus paper-reference printing.
 */

#ifndef LIMITLESS_BENCH_BENCH_COMMON_HH
#define LIMITLESS_BENCH_BENCH_COMMON_HH

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "harness/result_table.hh"
#include "obs/json.hh"
#include "obs/stats_json.hh"
#include "sim/log.hh"
#include "workload/multigrid.hh"
#include "workload/weather.hh"

namespace limitless::bench
{

/** The evaluation machine: 64 processors on an 8x8 wormhole mesh. */
inline MachineConfig
alewife64(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 64;
    cfg.protocol = proto;
    cfg.seed = 1991;
    return cfg;
}

/** Weather sized so runs land in the paper's hundreds-of-kilocycles
 *  regime while keeping a full figure sweep under a few minutes. */
inline WeatherParams
weatherFigureParams(bool optimized = false)
{
    WeatherParams wp;
    wp.iterations = 60;
    wp.columnLines = 64;
    wp.optimizeHotVariable = optimized;
    return wp;
}

inline MultigridParams
multigridFigureParams()
{
    MultigridParams mp;
    mp.iterations = 60;
    mp.interiorLines = 48;
    mp.boundaryWords = 4;
    return mp;
}

/** Print the "paper reports" block ahead of the measured rows. */
inline void
paperReference(const char *figure, const char *text)
{
    std::cout << "\n--- " << figure << " ---\n" << text << "\n";
}

inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--csv"))
            return true;
    return false;
}

/** `--metrics-interval N`: telemetry sampling period for every run in
 *  the sweep (0 = off, the default — and then nothing below changes a
 *  bench's behaviour or output). */
inline Tick
parseMetricsIntervalFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--metrics-interval"))
            return static_cast<Tick>(std::strtoull(argv[i + 1], nullptr, 10));
    return 0;
}

/** `--txn-trace`: per-transaction causal tracing for every run in the
 *  sweep (off by default — and then nothing below changes a bench's
 *  behaviour or output). */
inline bool
parseTxnTraceFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--txn-trace"))
            return true;
    return false;
}

/** `--nodes N`: override the bench's machine size (0 = keep the
 *  default, and nothing below changes a bench's output). */
inline unsigned
parseNodesFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--nodes"))
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    return 0;
}

/**
 * `--topology <mesh|torus|express[:k]>`: run the sweep on a different
 * interconnect. @return true when the flag was given (params filled);
 * false leaves the bench on its default mesh, output unchanged.
 */
inline bool
parseTopologyFlag(int argc, char **argv, TopologyParams &topo)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--topology")) {
            if (!parseTopologyKind(argv[i + 1], topo))
                fatal("--topology: unknown topology '%s'", argv[i + 1]);
            return true;
        }
    }
    return false;
}

/** Comma-separated topology list ("mesh,torus,express:4") for sweep
 *  benches that fan out across interconnects; empty when absent. */
inline std::vector<TopologyParams>
parseTopologyListFlag(int argc, char **argv)
{
    std::vector<TopologyParams> topos;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--topology"))
            continue;
        const std::string list = argv[i + 1];
        std::size_t pos = 0;
        while (pos <= list.size()) {
            std::size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            TopologyParams topo;
            const std::string tok = list.substr(pos, comma - pos);
            if (!parseTopologyKind(tok, topo))
                fatal("--topology: unknown topology '%s'", tok.c_str());
            topos.push_back(topo);
            pos = comma + 1;
        }
        break;
    }
    return topos;
}

/**
 * Machine-shape overrides shared by the figure benches: `--nodes N`
 * re-sizes the machine and `--topology <name>` swaps the interconnect.
 * With neither flag, apply() is a no-op and a bench's default output is
 * bit-identical to a build without these flags.
 */
struct ShapeOverride
{
    unsigned nodes = 0;
    TopologyParams topology;
    bool hasTopology = false;

    static ShapeOverride
    parse(int argc, char **argv)
    {
        ShapeOverride s;
        s.nodes = parseNodesFlag(argc, argv);
        s.hasTopology = parseTopologyFlag(argc, argv, s.topology);
        return s;
    }

    void
    apply(MachineConfig &cfg) const
    {
        if (nodes)
            cfg.numNodes = nodes;
        if (hasTopology)
            cfg.topology = topology;
    }
};

/** Comma-separated machine sizes ("16,64,256"); empty when absent. */
inline std::vector<unsigned>
parseNodesListFlag(int argc, char **argv)
{
    std::vector<unsigned> sizes;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--nodes"))
            continue;
        const std::string list = argv[i + 1];
        std::size_t pos = 0;
        while (pos <= list.size()) {
            std::size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            sizes.push_back(static_cast<unsigned>(
                std::strtoul(list.substr(pos, comma - pos).c_str(),
                             nullptr, 10)));
            pos = comma + 1;
        }
        break;
    }
    return sizes;
}

/** File-name-safe form of a row label ("limitless4 Ts=50" ->
 *  "limitless4_Ts_50"). */
inline std::string
sanitizeLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return out;
}

/**
 * Enable telemetry on one sweep config: sample every @p interval cycles
 * and write TELEM_<bench>_<label>.csv (+ .json sidecar) from inside
 * runExperiment. No-op when @p interval is 0, keeping the default sweep
 * bit-identical to a telemetry-free build.
 */
inline void
applyTelemetry(MachineConfig &cfg, Tick interval, const std::string &bench,
               const std::string &label)
{
    if (!interval)
        return;
    cfg.metricsInterval = interval;
    cfg.telemetryOut =
        "TELEM_" + bench + "_" + sanitizeLabel(label) + ".csv";
}

/**
 * Enable the transaction tracer on one sweep config: capture span trees
 * and per-phase quantiles, writing TXN_<bench>_<label>.json from inside
 * runExperiment. No-op when @p on is false, keeping the default sweep
 * bit-identical to a tracer-free build.
 */
inline void
applyTxnTrace(MachineConfig &cfg, bool on, const std::string &bench,
              const std::string &label)
{
    if (!on)
        return;
    cfg.txnTraceOut = "TXN_" + bench + "_" + sanitizeLabel(label) + ".json";
}

/**
 * Run one experiment per thunk, optionally across threads (`--jobs N`,
 * parsed by the caller via parseJobsFlag; default 1 = serial, exactly
 * the pre-parallelism loop). Rows are appended to @p table in thunk
 * order whatever the job count, so figure output is identical serial
 * or parallel — the experiments are independent machines and every
 * per-run global (flight recorder, packet pool) is thread-local.
 */
inline void
runSweep(ResultTable &table,
         std::vector<std::function<ExperimentOutcome()>> runs,
         unsigned jobs)
{
    ParallelRunner runner(jobs);
    const ParallelRunner::Task<ExperimentOutcome> task =
        [&runs](std::size_t i, std::ostream &) { return runs[i](); };
    for (const ExperimentOutcome &o :
         runner.map<ExperimentOutcome>(runs.size(), task, std::cout))
        table.add(o);
}

/**
 * Write the table's rows (headline numbers plus the per-phase latency
 * breakdown) to BENCH_<name>.json in the working directory, for
 * downstream plotting without scraping stdout.
 */
inline void
writeBenchJson(const std::string &name, const ResultTable &table)
{
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench: cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": ";
    jsonEscape(out, name);
    out << ",\n  \"rows\": [";
    bool first = true;
    for (const auto &r : table.rows()) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"label\": ";
        jsonEscape(out, r.label);
        out << ", \"cycles\": " << r.cycles << ", \"mcycles\": "
            << r.mcycles << ", \"remote_latency\": " << r.remoteLatency
            << ", \"m\": " << r.overflowFraction << ", \"read_traps\": "
            << r.readTraps << ", \"write_traps\": " << r.writeTraps
            << ", \"invs_sent\": " << r.invsSent << ", \"phases\": ";
        phasesJson(out, r.phases);
        // Run -> report link; key only present when telemetry ran, so
        // default sweeps stay byte-identical.
        if (!r.telemetryPath.empty()) {
            out << ", \"telemetry\": ";
            jsonEscape(out, r.telemetryPath);
        }
        // Same rule for tracing: keys appear only when the tracer ran.
        if (!r.txnTracePath.empty()) {
            out << ", \"txn_trace\": ";
            jsonEscape(out, r.txnTracePath);
        }
        if (r.txnQuantiles.count()) {
            out << ", \"txn_completed\": " << r.txnCompleted
                << ", \"phase_quantiles\": ";
            r.txnQuantiles.writeJson(out);
        }
        // Parallel-kernel rows only (cfg.simThreads > 1): serial rows
        // omit the key so existing BENCH files stay byte-identical.
        if (r.simThreads)
            out << ", \"sim_threads\": " << r.simThreads;
        out << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "json: " << path << "\n";
}

} // namespace limitless::bench

#endif // LIMITLESS_BENCH_BENCH_COMMON_HH
