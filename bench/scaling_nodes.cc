/**
 * @file
 * Machine-size scaling (the paper's Section 3.1 argument): "LimitLESS
 * directories are scalable, because the memory overhead grows as O(N),
 * and the performance approaches that of a full-map directory as system
 * size increases."
 *
 * Runs the unoptimized Weather program at 16, 32 and 64 processors and
 * reports each scheme's slowdown relative to full-map at the same size:
 * the limited directory's penalty grows with N (its hot spot worsens)
 * while LimitLESS stays pinned to full-map.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Scaling with machine size (Section 3.1)",
        "Paper: LimitLESS performance approaches full-map as the system "
        "grows (Th dwarfs Ts).\nExpected: Dir4NB/full-map grows with N; "
        "LimitLESS4/full-map stays ~1.0 throughout.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    WeatherParams wp;
    wp.iterations = 40;
    wp.columnLines = 32;

    // All (topology, size, scheme) cells are independent machines: fan
    // them out through one ParallelRunner, then print the per-size rows
    // from the ordered results. `--nodes 16,64,256 --topology
    // mesh,torus` sweeps a mixed-topology grid through the same
    // ExperimentOutcome merge path the default sweep uses.
    std::vector<unsigned> sizes = parseNodesListFlag(argc, argv);
    if (sizes.empty())
        sizes = {16u, 32u, 64u};
    std::vector<TopologyParams> topos = parseTopologyListFlag(argc, argv);
    if (topos.empty())
        topos.emplace_back();
    const ProtocolParams protos[3] = {
        protocols::dirNB(4),
        protocols::limitlessStall(4, 50),
        protocols::fullMap(),
    };
    ParallelRunner runner(jobs);
    const ParallelRunner::Task<ExperimentOutcome> cell =
        [&](std::size_t idx, std::ostream &) {
            MachineConfig cfg = alewife64(protos[idx % 3]);
            cfg.numNodes = sizes[(idx / 3) % sizes.size()];
            cfg.topology = topos[idx / (3 * sizes.size())];
            return runExperiment(cfg, [&] {
                return std::make_unique<Weather>(wp);
            });
        };
    const std::vector<ExperimentOutcome> outs = runner.map<ExperimentOutcome>(
        topos.size() * sizes.size() * 3, cell, std::cout);

    std::cout << "\n  " << std::setw(6) << "nodes" << std::setw(14)
              << "Dir4NB" << std::setw(14) << "LimitLESS4"
              << std::setw(13) << "Full-Map" << std::setw(12)
              << "Dir4/full" << std::setw(12) << "LL4/full" << "\n";

    double dir_ratio_small = 0, dir_ratio_big = 0, ll_worst = 0;
    for (std::size_t t = 0; t < topos.size(); ++t) {
        if (topos.size() > 1)
            std::cout << "  [" << topologyKindName(topos[t].kind)
                      << "]\n";
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const unsigned nodes = sizes[s];
            Tick cycles[3] = {};
            for (int i = 0; i < 3; ++i)
                cycles[i] = outs[(t * sizes.size() + s) * 3 + i].cycles;
            const double dir_ratio = double(cycles[0]) / cycles[2];
            const double ll_ratio = double(cycles[1]) / cycles[2];
            std::cout << "  " << std::setw(6) << nodes << std::setw(14)
                      << cycles[0] << std::setw(14) << cycles[1]
                      << std::setw(13) << cycles[2] << std::setw(11)
                      << std::fixed << std::setprecision(2) << dir_ratio
                      << "x" << std::setw(11) << ll_ratio << "x\n";
            // The shape check tracks the first (default) topology; the
            // hot-spot argument is calibrated on the paper's mesh.
            if (t == 0 && nodes == sizes.front())
                dir_ratio_small = dir_ratio;
            if (t == 0 && nodes == sizes.back())
                dir_ratio_big = dir_ratio;
            if (t == 0)
                ll_worst = std::max(ll_worst, ll_ratio);
        }
    }

    // Flat vs two-level at scale: the same workload (shrunk to a
    // CI-sized iteration count) at 256 and 1024 nodes on the torus,
    // flat and --hier with 64-node chips. The per-chip directories
    // absorb local sharing, so the limited scheme's hot-spot latency
    // collapses while LimitLESS stays near its (already good) flat
    // number. All rows land in BENCH_scaling_nodes.json together with
    // the figure sweep above.
    ResultTable table("scaling_nodes");
    for (std::size_t i = 0; i < outs.size(); ++i) {
        ExperimentOutcome labeled = outs[i];
        labeled.label += "-" + std::to_string(sizes[(i / 3) % sizes.size()]);
        if (topos.size() > 1)
            labeled.label += std::string("-") +
                topologyKindName(topos[i / (3 * sizes.size())].kind);
        table.add(labeled);
    }

    WeatherParams hier_wp;
    hier_wp.iterations = 6;
    hier_wp.columnLines = 32;
    struct HierPoint
    {
        const char *label;
        ProtocolParams proto;
        unsigned nodes;
        bool hier;
    };
    const HierPoint hier_points[] = {
        {"dir4nb-256-flat", protocols::dirNB(4), 256, false},
        {"dir4nb-256-hier", protocols::dirNB(4), 256, true},
        {"limitless4-256-flat", protocols::limitlessStall(4, 50), 256,
         false},
        {"limitless4-256-hier", protocols::limitlessStall(4, 50), 256,
         true},
        {"dir4nb-1024-flat", protocols::dirNB(4), 1024, false},
        {"dir4nb-1024-hier", protocols::dirNB(4), 1024, true},
        {"limitless4-1024-flat", protocols::limitlessStall(4, 50), 1024,
         false},
        {"limitless4-1024-hier", protocols::limitlessStall(4, 50), 1024,
         true},
    };
    const ParallelRunner::Task<ExperimentOutcome> hier_cell =
        [&](std::size_t idx, std::ostream &) {
            const HierPoint &p = hier_points[idx];
            MachineConfig cfg = alewife64(p.proto);
            cfg.numNodes = p.nodes;
            cfg.topology.kind = TopologyKind::torus;
            cfg.topology.clusterSize = 64;
            cfg.hier = p.hier;
            return runExperiment(cfg, [&] {
                return std::make_unique<Weather>(hier_wp);
            }, p.label);
        };
    const std::vector<ExperimentOutcome> hier_outs =
        runner.map<ExperimentOutcome>(std::size(hier_points), hier_cell,
                                      std::cout);
    std::cout << "\n  flat vs two-level (weather, 6 iterations, torus, "
                 "64-node chips):\n  " << std::left << std::setw(24)
              << "config" << std::right << std::setw(12) << "cycles"
              << std::setw(14) << "remote lat" << std::setw(10) << "m"
              << "\n";
    for (const ExperimentOutcome &o : hier_outs) {
        std::cout << "  " << std::left << std::setw(24) << o.label
                  << std::right << std::setw(12) << o.cycles
                  << std::setw(14) << std::fixed << std::setprecision(1)
                  << o.remoteLatency << std::setw(10)
                  << std::setprecision(4) << o.overflowFraction << "\n";
        table.add(o);
    }

    // Parallel-kernel rows: the 64- and 256-node torus cells again under
    // the conservative window-parallel kernel at 1, 2 and 4 partitions.
    // Simulated cycles must be bit-identical down the thread column
    // (asserted here, not just in the test suite); only host wall time
    // may move. On a single-core host threads > 1 are slower by design —
    // the rows exist so multi-core CI tracks the scaling curve.
    struct ParallelPoint
    {
        unsigned nodes;
        unsigned threads;
    };
    const ParallelPoint parallel_points[] = {
        {64, 1},  {64, 2},  {64, 4},
        {256, 1}, {256, 2}, {256, 4},
    };
    const ParallelRunner::Task<ExperimentOutcome> parallel_cell =
        [&](std::size_t idx, std::ostream &) {
            const ParallelPoint &p = parallel_points[idx];
            MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
            cfg.numNodes = p.nodes;
            cfg.topology.kind = TopologyKind::torus;
            cfg.simThreads = p.threads;
            std::ostringstream label;
            label << "limitless4-" << p.nodes << "-torus-t" << p.threads;
            return runExperiment(cfg, [&] {
                return std::make_unique<Weather>(hier_wp);
            }, label.str());
        };
    // Serial fan-out: the cells themselves are (potentially) threaded.
    const std::vector<ExperimentOutcome> parallel_outs =
        ParallelRunner(1).map<ExperimentOutcome>(
            std::size(parallel_points), parallel_cell, std::cout);
    std::cout << "\n  parallel kernel (weather, 6 iterations, torus):\n  "
              << std::left << std::setw(24) << "config" << std::right
              << std::setw(12) << "cycles" << "\n";
    for (std::size_t i = 0; i < parallel_outs.size(); ++i) {
        const ExperimentOutcome &o = parallel_outs[i];
        std::cout << "  " << std::left << std::setw(24) << o.label
                  << std::right << std::setw(12) << o.cycles << "\n";
        // The kernel's contract: thread count never changes simulated
        // behavior. Compare each row to its size's t1 baseline.
        const Tick base = parallel_outs[(i / 3) * 3].cycles;
        if (o.cycles != base)
            fatal("parallel kernel diverged: %s ran %llu cycles, "
                  "t1 baseline %llu",
                  o.label.c_str(),
                  static_cast<unsigned long long>(o.cycles),
                  static_cast<unsigned long long>(base));
        ExperimentOutcome labeled = o;
        labeled.simThreads = parallel_points[i].threads;
        table.add(labeled);
    }
    writeBenchJson("scaling_nodes", table);

    if (dir_ratio_big > dir_ratio_small * 1.3 && ll_worst < 1.15) {
        std::cout << "\nShape check PASSED: the limited directory's "
                     "penalty grows with machine size\nwhile LimitLESS "
                     "stays within " << std::setprecision(0)
                  << (ll_worst - 1.0) * 100
                  << "% of full-map — the scalability claim.\n";
        return 0;
    }
    std::cout << "\nSHAPE CHECK FAILED (Dir4 " << dir_ratio_small
              << "x -> " << dir_ratio_big << "x, LimitLESS worst "
              << ll_worst << "x)\n";
    return 1;
}
