/**
 * @file
 * Directory memory-overhead table (the paper's Section 1 motivation):
 * full-map storage grows as O(N) per entry — O(N^2) in total — while
 * limited/LimitLESS entries grow as O(log N). Also measures the actual
 * software-table footprint a LimitLESS machine allocates while running
 * Weather, showing the "memory overhead of a limited directory" claim
 * holds in practice, not just asymptotically.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"
#include "directory/chained_dir.hh"
#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "directory/limitless_dir.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

/** Total directory storage for a machine of n nodes, 4MB/node, 16B
 *  lines, in megabytes. */
double
totalMb(std::uint64_t bits_per_entry, unsigned n)
{
    const double entries = n * (4.0 * 1024 * 1024 / 16);
    return entries * bits_per_entry / 8.0 / 1024.0 / 1024.0;
}

} // namespace

int
main()
{
    paperReference(
        "Directory memory overhead (Section 1 / Section 3)",
        "Paper: full-map directory size grows as O(N^2) total; "
        "LimitLESS keeps the memory\noverhead of a limited directory "
        "(O(N) total) while matching full-map performance.");

    std::cout << "\nBits per directory entry (16-byte lines):\n";
    std::cout << "  " << std::setw(7) << "N" << std::setw(11)
              << "full-map" << std::setw(9) << "Dir4NB" << std::setw(13)
              << "LimitLESS4" << std::setw(10) << "chained" << "\n";
    for (unsigned n : {16u, 64u, 256u, 1024u}) {
        FullMapDir full(n);
        LimitedDir limited(4);
        LimitlessDir ll(0, 4, true);
        ChainedDir chained;
        std::cout << "  " << std::setw(7) << n << std::setw(11)
                  << full.bitsPerEntry(n) << std::setw(9)
                  << limited.bitsPerEntry(n) << std::setw(13)
                  << ll.bitsPerEntry(n) << std::setw(10)
                  << chained.bitsPerEntry(n) << "\n";
    }

    std::cout << "\nTotal directory storage (4 MB/node, MB):\n";
    std::cout << "  " << std::setw(7) << "N" << std::setw(11)
              << "full-map" << std::setw(9) << "Dir4NB" << std::setw(13)
              << "LimitLESS4" << "\n";
    for (unsigned n : {16u, 64u, 256u, 1024u}) {
        FullMapDir full(n);
        LimitedDir limited(4);
        LimitlessDir ll(0, 4, true);
        std::cout << "  " << std::setw(7) << n << std::setw(11)
                  << std::fixed << std::setprecision(1)
                  << totalMb(full.bitsPerEntry(n), n) << std::setw(9)
                  << totalMb(limited.bitsPerEntry(n), n) << std::setw(13)
                  << totalMb(ll.bitsPerEntry(n), n) << "\n";
    }

    // Live software-table footprint while running Weather at 64 nodes.
    WeatherParams wp = weatherFigureParams();
    wp.iterations = 20; // footprint peaks early; keep this quick
    MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
    Machine m(cfg);
    Weather wl(wp);
    wl.install(m);
    if (!m.run().completed)
        fatal("dir_memory_overhead: weather run did not complete");
    wl.verify(m);

    std::size_t peak_entries = 0, footprint = 0;
    for (unsigned i = 0; i < m.numNodes(); ++i) {
        peak_entries += m.node(i).mem().softwareTable().peakEntries();
        footprint += m.node(i).mem().softwareTable().footprintBytes();
    }
    std::cout << "\nLimitLESS software extension while running Weather "
                 "(64 nodes):\n"
              << "  peak spilled entries (machine-wide): " << peak_entries
              << "\n  resident footprint at end: " << footprint
              << " bytes\n"
              << "  (vs " << std::fixed << std::setprecision(1)
              << totalMb(FullMapDir(64).bitsPerEntry(64), 64)
              << " MB a hardware full-map would reserve up front)\n";
    return 0;
}
