/**
 * @file
 * google-benchmark micro benches for the simulator's own hot paths:
 * event scheduling, directory operations, network flit movement, cache
 * lookups and the RNG. These guard the simulator's performance (a
 * 64-node figure run executes hundreds of millions of these operations),
 * not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "directory/limitless_dir.hh"
#include "machine/address_map.hh"
#include "network/mesh_network.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace limitless
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(i % 7, [&sink]() { ++sink; });
        while (eq.runOne()) {
        }
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(7);
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += rng.next();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNext);

void
BM_FullMapDirAddRemove(benchmark::State &state)
{
    FullMapDir dir(64);
    NodeId n = 0;
    for (auto _ : state) {
        dir.tryAdd(0x40, n);
        dir.remove(0x40, n);
        n = (n + 1) % 64;
    }
}
BENCHMARK(BM_FullMapDirAddRemove);

void
BM_LimitedDirAddRemove(benchmark::State &state)
{
    LimitedDir dir(4);
    NodeId n = 0;
    for (auto _ : state) {
        if (dir.tryAdd(0x40, n) == DirAdd::overflow)
            dir.clear(0x40);
        dir.remove(0x40, n);
        n = (n + 1) % 64;
    }
}
BENCHMARK(BM_LimitedDirAddRemove);

void
BM_LimitlessSpill(benchmark::State &state)
{
    LimitlessDir dir(0, 4, true);
    std::vector<NodeId> spilled;
    for (auto _ : state) {
        for (NodeId n = 1; n <= 4; ++n)
            dir.tryAdd(0x40, n);
        spilled.clear();
        dir.spillPointers(0x40, spilled);
        benchmark::DoNotOptimize(spilled.data());
    }
}
BENCHMARK(BM_LimitlessSpill);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    AddressMap amap(64, 16);
    CacheArray cache(64 * 1024, amap);
    const std::uint64_t words[2] = {1, 2};
    for (Addr a = 0; a < 512 * 16; a += 16)
        cache.install(a, CacheState::readOnly, words, 2);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a));
        a = (a + 16) % (1024 * 16);
    }
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_MeshUniformTraffic(benchmark::State &state)
{
    // Cost of moving one packet across a loaded 8x8 mesh (includes all
    // router ticks it causes).
    EventQueue eq;
    MeshNetwork net(eq, std::make_shared<MeshTopology>(8, 8));
    unsigned delivered = 0;
    for (NodeId n = 0; n < 64; ++n)
        net.setReceiver(n, [&delivered](PacketPtr) { ++delivered; });
    Rng rng(5);
    for (auto _ : state) {
        for (int k = 0; k < 16; ++k) {
            const NodeId s = rng.below(64);
            NodeId d = rng.below(64);
            net.send(makeDataPacket(s, d, Opcode::RDATA, 0x40, {1, 2}));
        }
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_MeshUniformTraffic);

} // namespace
} // namespace limitless

BENCHMARK_MAIN();
