/**
 * @file
 * Figure 10 reproduction: Weather on 64 processors under LimitLESS with
 * 1, 2, and 4 hardware pointers (Ts = 50), bracketed by Dir4NB and
 * full-map.
 *
 * Paper result: performance degrades gracefully as pointers shrink;
 * LimitLESS1 is "especially bad, because some of Weather's variables
 * have a worker-set that consists of exactly two processors" — every
 * access to those variables traps with a single pointer.
 */

#include "bench_common.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Figure 10: Weather, LimitLESS with 1, 2, 4 hardware pointers",
        "Paper: Dir4NB ~1.4M; LimitLESS1 ~1.0M; LimitLESS2 ~0.75M; "
        "LimitLESS4 ~0.7M; Full-Map ~0.6 Mcycles;\nexpected shape: "
        "graceful degradation, LimitLESS1 clearly worst of the "
        "LimitLESS points but still better than Dir4NB.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    const ShapeOverride shape = ShapeOverride::parse(argc, argv);
    const WeatherParams wp = weatherFigureParams();
    auto make = [&]() { return std::make_unique<Weather>(wp); };
    auto shaped = [shape](ProtocolParams proto) {
        MachineConfig cfg = alewife64(proto);
        shape.apply(cfg);
        return cfg;
    };

    ResultTable table("Figure 10: weather, LimitLESS pointer sweep");
    std::vector<std::function<ExperimentOutcome()>> runs;
    runs.push_back([&make, &shaped]() {
        return runExperiment(shaped(protocols::dirNB(4)), make);
    });
    for (unsigned p : {1u, 2u, 4u}) {
        runs.push_back([p, &make, &shaped]() {
            return runExperiment(shaped(protocols::limitlessStall(p, 50)),
                                 make);
        });
    }
    runs.push_back([&make, &shaped]() {
        return runExperiment(shaped(protocols::fullMap()), make);
    });
    runSweep(table, std::move(runs), jobs);

    table.printBars(std::cout);
    table.printDetails(std::cout);
    table.printPhases(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);
    writeBenchJson("fig10_weather_pointers", table);

    const double l1 = table.row("LimitLESS1").mcycles;
    const double l2 = table.row("LimitLESS2").mcycles;
    const double l4 = table.row("LimitLESS4").mcycles;
    const double d4 = table.row("Dir4NB").mcycles;
    bool ok = true;
    if (!(l1 > l2 && l2 >= l4 * 0.98)) {
        std::cout << "\nSHAPE CHECK FAILED: degradation not monotone "
                     "(L1=" << l1 << " L2=" << l2 << " L4=" << l4
                  << ")\n";
        ok = false;
    }
    if (!(l1 > l4 * 1.3)) {
        std::cout << "\nSHAPE CHECK FAILED: LimitLESS1 not clearly "
                     "worse than LimitLESS4\n";
        ok = false;
    }
    if (!(l1 < d4)) {
        std::cout << "\nSHAPE CHECK FAILED: LimitLESS1 should still "
                     "beat Dir4NB\n";
        ok = false;
    }
    if (ok)
        std::cout << "\nShape check PASSED: graceful degradation with "
                     "LimitLESS1 especially bad, as in the paper.\n";
    return ok ? 0 : 1;
}
