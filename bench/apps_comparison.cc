/**
 * @file
 * Applications comparison: every application-style workload under the
 * three protagonist protocols — a broad cross-check that the figure-
 * level conclusions (LimitLESS tracks full-map; only hot-spot sharing
 * separates the schemes) hold across communication patterns: nearest-
 * neighbour (multigrid), hot-spot + regional (weather), all-to-all
 * (transpose), and exclusive migration (migratory).
 */

#include "bench_common.hh"
#include "sim/log.hh"
#include "workload/migratory.hh"
#include "workload/transpose.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Applications across protocols",
        "Expected: Dir4NB only falls behind on the hot-spot application "
        "(weather unoptimized);\nLimitLESS4 stays within a few % of "
        "full-map everywhere.");

    struct App
    {
        const char *name;
        WorkloadFactory make;
        bool dir4_should_lag;
    };
    const App apps[] = {
        {"multigrid",
         [] { return std::make_unique<Multigrid>(multigridFigureParams()); },
         false},
        {"weather",
         [] { return std::make_unique<Weather>(weatherFigureParams()); },
         true},
        {"weather-opt",
         [] {
             return std::make_unique<Weather>(weatherFigureParams(true));
         },
         false},
        {"transpose",
         [] {
             TransposeParams tp;
             tp.rounds = 3;
             return std::make_unique<Transpose>(tp);
         },
         false},
        {"migratory",
         [] {
             MigratoryParams mp;
             mp.rounds = 3;
             return std::make_unique<Migratory>(mp);
         },
         false},
    };

    bool ok = true;
    for (const App &app : apps) {
        ResultTable table(std::string("64 processors — ") + app.name);
        for (const auto &proto :
             {protocols::dirNB(4), protocols::limitlessStall(4, 50),
              protocols::fullMap()}) {
            table.add(runExperiment(alewife64(proto), app.make));
        }
        table.printBars(std::cout);
        if (wantCsv(argc, argv))
            table.printCsv(std::cout);

        const double full = table.row("Full-Map").mcycles;
        const double ll = table.row("LimitLESS4").mcycles;
        const double d4 = table.row("Dir4NB").mcycles;
        if (ll > full * 1.12) {
            std::cout << "SHAPE CHECK FAILED: LimitLESS4 " << ll / full
                      << "x full-map on " << app.name << "\n";
            ok = false;
        }
        if (app.dir4_should_lag ? d4 < full * 1.8 : d4 > full * 1.25) {
            std::cout << "SHAPE CHECK FAILED: Dir4NB " << d4 / full
                      << "x full-map on " << app.name << "\n";
            ok = false;
        }
    }
    std::cout << (ok ? "\nShape check PASSED: only hot-spot sharing "
                       "separates the schemes; LimitLESS tracks "
                       "full-map everywhere.\n"
                     : "\nSHAPE CHECK FAILED (see above).\n");
    return ok ? 0 : 1;
}
