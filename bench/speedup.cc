/**
 * @file
 * Parallel speedup on a fixed-size problem (the machine-level sanity
 * check any multiprocessor simulator owes its users): multigrid with a
 * fixed total interior grid, spread over 4 / 16 / 64 processors.
 *
 * Speedup grows with machine size but sub-linearly — boundary exchange
 * and combining-tree barriers take a growing share — and LimitLESS
 * tracks full-map at every size (it adds no overhead when worker-sets
 * are small). Also reports parallel efficiency.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

Tick
run(ProtocolParams proto, unsigned nodes, unsigned total_interior)
{
    MachineConfig cfg = alewife64(proto);
    cfg.numNodes = nodes;
    MultigridParams mp;
    mp.iterations = 6;
    mp.boundaryWords = 2;
    mp.interiorLines = total_interior / nodes;
    mp.computePerPoint = 6;
    const auto out = runExperiment(cfg, [&] {
        return std::make_unique<Multigrid>(mp);
    });
    return out.cycles;
}

} // namespace

int
main()
{
    paperReference(
        "Parallel speedup, fixed problem size (machine sanity check)",
        "Expected: sub-linear but monotone speedup from 4 to 64 "
        "processors; LimitLESS within a\nfew % of full-map at every "
        "size (multigrid never overflows 4 pointers).");

    const unsigned total_interior = 12288; // divisible by 4, 16, 64

    std::cout << "\n  " << std::setw(6) << "nodes" << std::setw(13)
              << "Full-Map" << std::setw(13) << "LimitLESS4"
              << std::setw(11) << "speedup" << std::setw(13)
              << "efficiency" << "\n";
    Tick base = 0;
    double speed64 = 0, ll_gap = 0;
    for (unsigned nodes : {4u, 16u, 64u}) {
        const Tick full = run(protocols::fullMap(), nodes,
                              total_interior);
        const Tick ll = run(protocols::limitlessStall(4, 50), nodes,
                            total_interior);
        if (nodes == 4)
            base = full;
        const double speedup = 4.0 * base / full;
        std::cout << "  " << std::setw(6) << nodes << std::setw(13)
                  << full << std::setw(13) << ll << std::setw(10)
                  << std::fixed << std::setprecision(1) << speedup
                  << "x" << std::setw(12) << std::setprecision(0)
                  << 100.0 * speedup / nodes << "%\n";
        if (nodes == 64)
            speed64 = speedup;
        ll_gap = std::max(ll_gap, double(ll) / full);
    }

    if (speed64 > 16.0 && speed64 < 64.0 && ll_gap < 1.1) {
        std::cout << "\nShape check PASSED: " << std::setprecision(1)
                  << speed64 << "x at 64 processors (sub-linear, as "
                  "boundary/barrier share grows);\nLimitLESS within "
                  << std::setprecision(0) << (ll_gap - 1.0) * 100
                  << "% of full-map throughout.\n";
        return 0;
    }
    std::cout << "\nSHAPE CHECK FAILED: speedup " << speed64
              << "x, LimitLESS gap " << ll_gap << "x\n";
    return 1;
}
