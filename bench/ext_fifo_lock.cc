/**
 * @file
 * Section 6 extension bench: FIFO (IPI-serviced) lock vs test-and-set
 * spin lock under rising contention, on a 64-node LimitLESS machine.
 *
 * Reports total time and fairness (max/mean acquisition wait) as the
 * number of contenders grows. The spin lock's waits grow erratic with
 * contention (backoff luck); the software FIFO lock stays ordered with
 * two messages per hand-off — the kind of synchronization type the paper
 * argues the LimitLESS interface lets the runtime synthesize.
 */

#include <algorithm>
#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"
#include "kernel/fifo_lock.hh"
#include "workload/spin_lock.hh"
#include "workload/workload.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

struct Row
{
    Tick cycles;
    double mean_wait;
    Tick max_wait;
};

Row
run(bool fifo, unsigned contenders)
{
    MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
    Machine m(cfg);
    const Addr counter = m.addressMap().addrOnNode(1, slot::locks + 2);
    const unsigned iters = 8;

    std::vector<Tick> spin_waits;
    SpinLock spin(m.addressMap().addrOnNode(0, slot::locks));
    auto fifo_lock = std::make_unique<FifoLockService>(m, 0, 1);

    for (NodeId p = 0; p < 64; ++p) {
        if (p < contenders) {
            m.spawnOn(p, [&, p, fifo](ThreadApi &t) -> Task<> {
                for (unsigned i = 0; i < iters; ++i) {
                    const Tick before = t.now();
                    if (fifo)
                        co_await fifo_lock->acquire(t);
                    else {
                        co_await spin.acquire(t);
                        spin_waits.push_back(t.now() - before);
                    }
                    const std::uint64_t v = co_await t.read(counter);
                    co_await t.compute(12);
                    co_await t.write(counter, v + 1);
                    if (fifo)
                        co_await fifo_lock->release(t);
                    else
                        co_await spin.release(t);
                    co_await t.compute(1 + (p * 7) % 29);
                }
            });
        } else {
            m.spawnOn(p, [](ThreadApi &t) -> Task<> {
                co_await t.compute(1);
            });
        }
    }
    const RunResult r = m.run();
    if (!r.completed)
        fatal("ext_fifo_lock: run did not complete");

    const std::vector<Tick> &waits =
        fifo ? fifo_lock->grantWaits() : spin_waits;
    Tick sum = 0, mx = 0;
    for (Tick w : waits) {
        sum += w;
        mx = std::max(mx, w);
    }
    return Row{r.cycles, waits.empty() ? 0 : double(sum) / waits.size(),
               mx};
}

} // namespace

int
main()
{
    paperReference(
        "Section 6 extension: FIFO lock via the LimitLESS interface",
        "Paper (qualitative): the trap handler can buffer requests for a "
        "programmer-specified\nvariable and grant them first-come, "
        "first-served. Expected: the FIFO lock's max/mean\nwait ratio "
        "stays near 1-2x while the spin lock's grows with contention.");

    std::cout << "\n  " << std::setw(11) << "contenders" << std::setw(13)
              << "spin cycles" << std::setw(11) << "spin fair"
              << std::setw(13) << "fifo cycles" << std::setw(11)
              << "fifo fair" << "\n";
    double spin_fair_hi = 0, fifo_fair_hi = 0;
    for (unsigned c : {4u, 16u, 48u}) {
        const Row spin = run(false, c);
        const Row fifo = run(true, c);
        const double sf = spin.mean_wait > 0
                              ? spin.max_wait / spin.mean_wait
                              : 0;
        const double ff = fifo.mean_wait > 0
                              ? fifo.max_wait / fifo.mean_wait
                              : 0;
        std::cout << "  " << std::setw(11) << c << std::setw(13)
                  << spin.cycles << std::setw(10) << std::fixed
                  << std::setprecision(1) << sf << "x" << std::setw(13)
                  << fifo.cycles << std::setw(10) << ff << "x\n";
        spin_fair_hi = std::max(spin_fair_hi, sf);
        fifo_fair_hi = std::max(fifo_fair_hi, ff);
    }
    std::cout << "\n(fairness = max wait / mean wait; 1.0x is perfectly "
                 "fair)\n";
    if (fifo_fair_hi < spin_fair_hi) {
        std::cout << "Shape check PASSED: the software FIFO lock is "
                     "fairer than test-and-set at peak contention ("
                  << fifo_fair_hi << "x vs " << spin_fair_hi << "x).\n";
        return 0;
    }
    std::cout << "SHAPE CHECK FAILED: FIFO lock should be fairer.\n";
    return 1;
}
