/**
 * @file
 * Ablations of the LimitLESS design choices called out in DESIGN.md:
 *  D1 Trap-On-Write (paper Section 3.2): empty the pointers on overflow
 *     so hardware keeps absorbing reads, vs leaving the line in
 *     Trap-Always where every access costs Ts;
 *  D3 the Local Bit (paper Section 4.3): home-node accesses bypass the
 *     pointer array;
 *  D4 the deferred-request buffer vs pure BUSY-retry.
 */

#include "bench_common.hh"
#include "workload/hotspot.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Ablations: Trap-On-Write (D1), Local Bit (D3), request "
        "deferral (D4)",
        "Not in the paper as figures; quantifies the design choices the "
        "paper argues for.\nExpected: disabling Trap-On-Write hurts "
        "badly on wide-read-shared data; the local bit\nand the "
        "deferral buffer are measurable but smaller effects.");

    // Trap-On-Write only matters when worker-sets *rebuild*: use the
    // hotspot workload with the wide-shared lines re-dirtied every
    // iteration (weather's hot variable is written once, so its
    // worker-set builds a single time and either policy converges).
    HotspotParams hp;
    hp.iterations = 40;
    hp.hotLines = 2;
    hp.privLines = 16;
    hp.writePeriod = 1;
    auto make = [&]() { return std::make_unique<Hotspot>(hp); };

    ResultTable table("LimitLESS4 Ts=50 ablations, hotspot, 64 procs");

    const unsigned jobs = parseJobsFlag(argc, argv);
    struct Variant
    {
        const char *label;
        std::function<MachineConfig()> build;
    };
    const std::vector<Variant> variants = {
        {"baseline (all on)",
         [] { return alewife64(protocols::limitlessStall(4, 50)); }},
        {"no Trap-On-Write (D1)",
         [] {
             MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
             cfg.protocol.trapOnWrite = false;
             return cfg;
         }},
        {"no Local Bit (D3)",
         [] {
             MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
             cfg.protocol.localBit = false;
             return cfg;
         }},
        {"no deferral, BUSY only (D4)",
         [] {
             MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
             cfg.mem.deferDepth = 0;
             return cfg;
         }},
        {"Dir4NB, BUSY only (D4)",
         [] {
             MachineConfig cfg = alewife64(protocols::dirNB(4));
             cfg.mem.deferDepth = 0;
             return cfg;
         }},
    };
    std::vector<std::function<ExperimentOutcome()>> runs;
    for (const Variant &v : variants) {
        runs.push_back([&v, &make]() {
            return runExperiment(v.build(), make, v.label);
        });
    }
    runSweep(table, std::move(runs), jobs);

    table.printBars(std::cout);
    table.printDetails(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);

    const double base = table.row("baseline").mcycles;
    const double no_tow = table.row("no Trap-On-Write").mcycles;
    if (no_tow < base * 1.2) {
        std::cout << "\nSHAPE CHECK FAILED: Trap-On-Write should matter "
                     "(got " << no_tow / base << "x)\n";
        return 1;
    }
    std::cout << "\nShape check PASSED: Trap-On-Write is the "
                 "load-bearing optimization ("
              << no_tow / base << "x without it).\n";
    return 0;
}
