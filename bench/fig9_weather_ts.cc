/**
 * @file
 * Figure 9 reproduction: Weather on 64 processors under LimitLESS4 with
 * software emulation latencies Ts = 25, 50, 100, 150, bracketed by
 * Dir4NB and full-map. One extra row runs the *full emulation* model
 * (real trap handler through the IPI interface) as a cross-check of the
 * paper's stall-approximation methodology.
 *
 * Paper result: LimitLESS4 performs about as well as full-map for every
 * Ts, and is only weakly dependent on Ts; Dir4NB is ~2.4x worse. (The
 * paper's Ts=25 point lands slightly *below* full-map via a network
 * back-off side effect; see EXPERIMENTS.md for why the reproduction
 * shows it at par instead.)
 */

#include <iomanip>
#include <utility>
#include <vector>

#include "bench_common.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Figure 9: Weather, LimitLESS with 25-150 cycle emulation "
        "latencies",
        "Paper: Dir4NB ~1.4M; LimitLESS4 Ts=150/100/50 ~0.7M; Ts=25 "
        "~0.6M; Full-Map ~0.6 Mcycles;\nexpected shape: LimitLESS "
        "within ~15% of full-map at every Ts, Dir4NB >> both.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    const Tick metrics = parseMetricsIntervalFlag(argc, argv);
    const bool txn_trace = parseTxnTraceFlag(argc, argv);
    const ShapeOverride shape = ShapeOverride::parse(argc, argv);
    const WeatherParams wp = weatherFigureParams();
    auto make = [&]() { return std::make_unique<Weather>(wp); };

    auto instrumented = [metrics, txn_trace, shape,
                         &make](ProtocolParams proto) {
        return [proto, metrics, txn_trace, shape, &make]() {
            MachineConfig cfg = alewife64(proto);
            shape.apply(cfg);
            applyTelemetry(cfg, metrics, "fig9_weather_ts",
                           cfg.protocol.name());
            applyTxnTrace(cfg, txn_trace, "fig9_weather_ts",
                          cfg.protocol.name());
            return runExperiment(cfg, make);
        };
    };

    ResultTable table("Figure 9: weather, LimitLESS Ts sweep");
    const std::vector<Tick> ts_points = {150, 100, 50, 25};
    std::vector<std::function<ExperimentOutcome()>> runs;
    runs.push_back(instrumented(protocols::dirNB(4)));
    for (Tick ts : ts_points)
        runs.push_back(instrumented(protocols::limitlessStall(4, ts)));
    runs.push_back(instrumented(protocols::limitlessEmulated(4)));
    runs.push_back(instrumented(protocols::fullMap()));
    runSweep(table, std::move(runs), jobs);

    // Rows 1..4 are the Ts sweep, in ts_points order.
    std::vector<std::pair<Tick, ExperimentOutcome>> sweep;
    for (std::size_t i = 0; i < ts_points.size(); ++i)
        sweep.emplace_back(ts_points[i], table.rows()[1 + i]);

    table.printBars(std::cout);
    table.printDetails(std::cout);
    table.printPhases(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);
    writeBenchJson("fig9_weather_ts", table);

    // The model says software emulation adds m*Ts cycles to the mean
    // remote latency (Section 5.1). Compare the *measured* trap phase
    // from the latency tracker against that analytic term.
    std::cout << "\n  measured software share vs the analytic m*Ts:\n";
    std::cout << "    Ts   measured-trap   m        m*Ts   share-of-T\n";
    for (const auto &[ts, r] : sweep) {
        const double analytic =
            r.overflowFraction * static_cast<double>(ts);
        const double share =
            r.phases.total > 0 ? r.phases.trap / r.phases.total : 0.0;
        std::cout << "    " << std::left << std::setw(5) << ts
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(9) << r.phases.trap << " cyc "
                  << std::setw(8) << std::setprecision(4)
                  << r.overflowFraction << std::setw(9)
                  << std::setprecision(2) << analytic << std::setw(10)
                  << std::setprecision(1) << share * 100 << "%\n";
    }

    const double full = table.row("Full-Map").mcycles;
    bool ok = true;
    for (const auto &r : table.rows()) {
        const bool is_limitless =
            r.label.find("LimitLESS") != std::string::npos;
        if (is_limitless && r.mcycles > full * 1.15) {
            std::cout << "\nSHAPE CHECK FAILED: " << r.label << " is "
                      << r.mcycles / full << "x full-map\n";
            ok = false;
        }
    }
    if (table.row("Dir4NB").mcycles < full * 2.0) {
        std::cout << "\nSHAPE CHECK FAILED: Dir4NB not >> full-map\n";
        ok = false;
    }
    if (ok)
        std::cout << "\nShape check PASSED: LimitLESS ~ full-map at "
                     "every Ts; Dir4NB >> both, as in the paper.\n";
    return ok ? 0 : 1;
}
