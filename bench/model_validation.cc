/**
 * @file
 * Section 3.1 analytic-model validation: T = Th + m * Ts.
 *
 * The paper estimates the average remote access latency of LimitLESS as
 * the hardware latency Th plus the overflow fraction m times the
 * software emulation latency Ts, and works an example: Th = 35, Ts =
 * 100, m = 3% => ~10% slowdown.
 *
 * The model assumes the Ts charge is paid only by the trapping access —
 * i.e. no convoying behind a stalled controller — so the validation
 * workload staggers the processors' accesses (per-processor phase
 * offsets, worker-sets rebuilt only every few iterations). The check is
 * on the *differential* form the paper actually uses:
 *     T(LimitLESS) - T(full-map)  ~=  m * Ts.
 */

#include <iomanip>

#include "bench_common.hh"
#include "workload/hotspot.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

HotspotParams
staggeredParams(unsigned hot_lines, unsigned priv_lines)
{
    HotspotParams hp;
    hp.iterations = 40;
    hp.hotLines = hot_lines;
    hp.privLines = priv_lines;
    hp.writePeriod = 4; // rebuild worker-sets, but not in a storm
    hp.computePerOp = 6;
    hp.staggerCycles = 3000; // de-burst: the model assumes no convoying
    return hp;
}

} // namespace

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    paperReference(
        "Section 3.1: T = Th + m * Ts",
        "Paper: Th ~= 35 cycles on 64-node Weather; with Ts = 100 and "
        "m = 3%, remote accesses\nare ~10% slower than full-map. "
        "Expected: the measured latency penalty (LimitLESS minus\n"
        "full-map) tracks m * Ts across the Ts sweep, and m scales "
        "with the wide-shared fraction.");

    const HotspotParams hp = staggeredParams(2, 24);
    auto make = [&]() { return std::make_unique<Hotspot>(hp); };

    const auto base = runExperiment(alewife64(protocols::fullMap()), make);
    const double th = base.remoteLatency;
    std::cout << "\nMeasured Th (full-map remote latency): " << std::fixed
              << std::setprecision(1) << th << " cycles (paper: ~35)\n";

    std::cout << "\nTs sweep (2 wide-shared lines re-dirtied every 4th "
                 "iteration):\n";
    std::cout << "  " << std::setw(5) << "Ts" << std::setw(9) << "m"
              << std::setw(11) << "T_meas" << std::setw(13)
              << "T_meas-Th" << std::setw(9) << "m*Ts" << "\n";
    bool ok = true;
    double prev_penalty = -1.0;
    for (Tick ts : {25, 50, 100, 150}) {
        const auto out = runExperiment(
            alewife64(protocols::limitlessStall(4, ts)), make);
        const double penalty = out.remoteLatency - th;
        const double model = out.overflowFraction * ts;
        std::cout << "  " << std::setw(5) << ts << std::setw(9)
                  << std::setprecision(3) << out.overflowFraction
                  << std::setw(11) << std::setprecision(1)
                  << out.remoteLatency << std::setw(13) << penalty
                  << std::setw(9) << model << "\n";
        // The formula is a *first-order lower bound*: it charges Ts only
        // to the trapping access. Requests queued behind the stalled
        // controller also wait (convoying), so the measured penalty sits
        // above m*Ts, growing with Ts; see EXPERIMENTS.md.
        if (penalty < model - 2.0)
            ok = false; // below the lower bound would be a real bug
        if (penalty < prev_penalty)
            ok = false; // penalty must grow with Ts
        prev_penalty = penalty;
    }

    std::cout << "\nSharing-mix sweep (Ts = 100): m rises with the "
                 "wide-shared fraction\n";
    std::cout << "  " << std::setw(16) << "hot:priv lines" << std::setw(9)
              << "m" << std::setw(13) << "T_meas-Th" << std::setw(9)
              << "m*Ts" << "\n";
    double prev_m = -1.0;
    for (auto [hot, priv] :
         {std::pair{1u, 48u}, {2u, 24u}, {4u, 12u}, {8u, 6u}}) {
        const HotspotParams mix = staggeredParams(hot, priv);
        auto make_mix = [&]() { return std::make_unique<Hotspot>(mix); };
        const auto fm =
            runExperiment(alewife64(protocols::fullMap()), make_mix);
        const auto ll = runExperiment(
            alewife64(protocols::limitlessStall(4, 100)), make_mix);
        const double penalty = ll.remoteLatency - fm.remoteLatency;
        std::cout << "  " << std::setw(11) << hot << ":" << std::left
                  << std::setw(4) << priv << std::right << std::setw(9)
                  << std::setprecision(3) << ll.overflowFraction
                  << std::setw(13) << std::setprecision(1) << penalty
                  << std::setw(9) << ll.overflowFraction * 100.0 << "\n";
        if (ll.overflowFraction < prev_m)
            ok = false; // m must grow with the wide-shared fraction
        prev_m = ll.overflowFraction;
    }

    // The paper's worked example: at m ~= 3% and Ts = 100 the penalty
    // is ~10% of the full-map latency.
    std::cout << "\nPaper's worked example: m = 3%, Ts = 100 predicts a "
              << std::setprecision(0) << 0.03 * 100.0
              << "-cycle (~10%) penalty on Th ~= 35.\n";

    if (ok)
        std::cout << "\nModel check PASSED: the measured penalty is "
                     "bounded below by m*Ts, grows\nmonotonically with "
                     "Ts, and m scales with the wide-shared fraction. "
                     "The gap above\nm*Ts is home-controller queueing "
                     "(convoying) that the paper's first-order\nformula "
                     "ignores — see EXPERIMENTS.md.\n";
    else
        std::cout << "\nModel check FAILED (see rows above).\n";
    return ok ? 0 : 1;
}
