/**
 * @file
 * Figure 7 reproduction: statically scheduled multigrid on 64 processors.
 *
 * Paper result: Dir4NB, LimitLESS4 (Ts = 50, 100) and full-map all take
 * approximately the same time — multigrid's worker-sets are small, so
 * limited pointers suffice and the LimitLESS software path is never
 * exercised.
 */

#include "bench_common.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Figure 7: Static Multigrid, 64 Processors",
        "Paper: all four schemes complete in ~the same time (~1.4 "
        "Mcycles each);\nexpected shape: four nearly equal bars.");

    const unsigned jobs = parseJobsFlag(argc, argv);
    const ShapeOverride shape = ShapeOverride::parse(argc, argv);
    const MultigridParams mp = multigridFigureParams();
    auto make = [&]() { return std::make_unique<Multigrid>(mp); };

    ResultTable table("Figure 7: multigrid, 64 processors");
    std::vector<std::function<ExperimentOutcome()>> runs;
    for (const auto &proto :
         {protocols::dirNB(4), protocols::limitlessStall(4, 100),
          protocols::limitlessStall(4, 50), protocols::fullMap()}) {
        runs.push_back([proto, &make, shape]() {
            MachineConfig cfg = alewife64(proto);
            shape.apply(cfg);
            return runExperiment(cfg, make);
        });
    }
    runSweep(table, std::move(runs), jobs);

    table.printBars(std::cout);
    table.printDetails(std::cout);
    table.printPhases(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);
    writeBenchJson("fig7_multigrid", table);

    // Shape check: max spread within 10%.
    const double base = table.row("Full-Map").mcycles;
    for (const auto &r : table.rows()) {
        if (r.mcycles > base * 1.10) {
            std::cout << "\nSHAPE CHECK FAILED: " << r.label << " is "
                      << r.mcycles / base << "x full-map\n";
            return 1;
        }
    }
    std::cout << "\nShape check PASSED: all schemes within 10% of "
                 "full-map, as in the paper.\n";
    return 0;
}
