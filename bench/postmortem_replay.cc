/**
 * @file
 * Post-mortem trace-scheduling methodology check (paper Figure 6, right
 * branch): Weather's results in the paper come from replaying a trace
 * with embedded synchronization through the memory-system simulator with
 * network feedback.
 *
 * This bench captures a Weather trace once (on the full-map machine),
 * serializes it through the text format, and replays the loaded trace
 * under limited, LimitLESS, and full-map directories. The Figure 8/9
 * ordering must survive the trace round trip — i.e., the conclusions do
 * not depend on whether the workload is executed directly or replayed
 * post-mortem.
 */

#include <sstream>

#include "bench_common.hh"
#include "sim/log.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_replay.hh"

using namespace limitless;
using namespace limitless::bench;

int
main(int argc, char **argv)
{
    paperReference(
        "Post-mortem trace scheduling (Figure 6)",
        "Paper methodology: Weather is a trace with embedded "
        "synchronization, replayed with\nnetwork feedback. Expected: "
        "replaying a captured trace reproduces the direct-execution\n"
        "ordering (Dir4NB >> LimitLESS4 ~ Full-Map).");

    // Capture once.
    WeatherParams wp;
    wp.iterations = 30;
    wp.columnLines = 32;
    MachineConfig cap_cfg = alewife64(protocols::fullMap());
    Machine cap(cap_cfg);
    Weather wl(wp);
    wl.install(cap);
    TraceCapture capture(cap);
    const RunResult cap_run = cap.run();
    if (!cap_run.completed)
        fatal("postmortem_replay: capture run did not complete");
    wl.verify(cap);

    // Serialize through the on-disk format (round-trip check included).
    std::stringstream file;
    capture.log().save(file);
    const TraceLog log = TraceLog::load(file);
    if (!(log == capture.log()))
        fatal("postmortem_replay: trace round trip corrupted the log");
    std::cout << "\ncaptured " << log.dataOps() << " data references + "
              << log.totalOps() - log.dataOps()
              << " compute/barrier records from the direct run ("
              << cap_run.cycles << " cycles)\n";

    // Replay across protocols.
    ResultTable table("weather trace replay, 64 processors");
    for (const auto &proto :
         {protocols::dirNB(4), protocols::limitlessStall(4, 50),
          protocols::fullMap()}) {
        MachineConfig cfg = alewife64(proto);
        Machine m(cfg);
        TraceReplay replay(log);
        replay.install(m);
        const RunResult r = m.run();
        if (!r.completed)
            fatal("postmortem_replay: replay did not complete");
        replay.verify(m);

        ExperimentOutcome out;
        out.label = proto.name() + " (replay)";
        out.cycles = r.cycles;
        out.mcycles = r.cycles / 1e6;
        out.completed = true;
        out.remoteLatency = m.meanAccumulator("cache", "remote_latency");
        out.readTraps = m.sumCounter("mem", "read_traps");
        out.evictions = m.sumCounter("mem", "evictions");
        out.busyRetries = m.sumCounter("cache", "busy_retries");
        out.invsSent = m.sumCounter("mem", "invs_sent");
        table.add(out);
    }
    table.printBars(std::cout);
    table.printDetails(std::cout);
    if (wantCsv(argc, argv))
        table.printCsv(std::cout);

    const double d4 = table.row("Dir4NB").mcycles;
    const double ll = table.row("LimitLESS4").mcycles;
    const double fm = table.row("Full-Map").mcycles;
    if (d4 > fm * 2.0 && ll < fm * 1.15) {
        std::cout << "\nShape check PASSED: the Figure 8/9 ordering "
                     "survives the post-mortem trace round trip.\n";
        return 0;
    }
    std::cout << "\nSHAPE CHECK FAILED: replay ordering diverged "
                 "(Dir4NB " << d4 / fm << "x, LimitLESS " << ll / fm
              << "x full-map)\n";
    return 1;
}
