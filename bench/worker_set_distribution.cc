/**
 * @file
 * Worker-set (invalidation-pattern) distribution, after Weber & Gupta's
 * analysis cited by the paper [11]: the whole LimitLESS design rests on
 * the observation that "only a few shared memory data types are widely
 * shared among processors" — most writes invalidate very few copies,
 * with a thin tail of widely shared lines.
 *
 * Prints, for each application workload on the 64-processor full-map
 * machine, the distribution of sharers invalidated per write and the
 * fraction of writes whose worker-set fits p = 1, 2, 4, 8 hardware
 * pointers — the quantity that decides each protocol's fate in
 * Figures 7-10.
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"
#include "workload/hotspot.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

void
distributionFor(const char *name, const WorkloadFactory &make)
{
    MachineConfig cfg = alewife64(protocols::fullMap());
    Machine m(cfg);
    auto wl = make();
    wl->install(m);
    if (!m.run().completed)
        fatal("worker_set_distribution: %s did not complete", name);
    wl->verify(m);

    // Merge the per-home worker-set distributions.
    std::vector<std::uint64_t> counts(cfg.numNodes + 1, 0);
    std::uint64_t total = 0;
    for (unsigned i = 0; i < m.numNodes(); ++i) {
        const auto *dist = static_cast<const Distribution *>(
            m.node(i).statSet("mem")->find("worker_set"));
        for (std::size_t v = 0; v < dist->domain() && v <= cfg.numNodes;
             ++v) {
            counts[v] += dist->at(v);
            total += dist->at(v);
        }
    }
    if (total == 0) {
        std::cout << "  " << name << ": no invalidating writes\n";
        return;
    }

    std::cout << "\n  " << name << " (" << total
              << " invalidating writes):\n    worker-set:";
    for (std::size_t v = 1; v <= 8; ++v)
        std::cout << std::setw(8) << v;
    std::cout << std::setw(9) << ">8" << "\n    writes %: ";
    std::uint64_t tail = 0;
    for (std::size_t v = 9; v < counts.size(); ++v)
        tail += counts[v];
    for (std::size_t v = 1; v <= 8; ++v)
        std::cout << std::setw(7) << std::fixed << std::setprecision(1)
                  << 100.0 * counts[v] / total << "%";
    std::cout << std::setw(8) << 100.0 * tail / total << "%\n";

    std::cout << "    cumulative fit:";
    for (unsigned p : {1u, 2u, 4u, 8u}) {
        std::uint64_t fit = 0;
        for (std::size_t v = 0; v <= p; ++v)
            fit += counts[v];
        std::cout << "  p=" << p << ": " << std::setprecision(1)
                  << 100.0 * fit / total << "%";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    paperReference(
        "Worker-set distribution (Section 3's premise; cf. Weber & "
        "Gupta [11])",
        "Paper: worker-sets are usually small — a few pointers capture "
        "almost all writes —\nwith a thin wide-shared tail that limited "
        "directories cannot absorb. Expected: >90%\nof multigrid/"
        "weather writes fit 4 pointers; the hotspot workload shows the "
        "tail.");

    distributionFor("multigrid", [] {
        return std::make_unique<Multigrid>(multigridFigureParams());
    });
    distributionFor("weather (unoptimized)", [] {
        return std::make_unique<Weather>(weatherFigureParams());
    });
    HotspotParams hp;
    hp.iterations = 20;
    hp.hotLines = 2;
    hp.writePeriod = 1;
    distributionFor("hotspot (worker-set ~N)", [hp] {
        return std::make_unique<Hotspot>(hp);
    });

    std::cout << "\nReading: the application workloads' writes almost "
                 "all fit 4 pointers — the paper's\npremise — while the "
                 "hot-spot kernel's writes hit ~63-sharer worker-sets, "
                 "the tail that\nLimitLESS absorbs in software.\n";
    return 0;
}
