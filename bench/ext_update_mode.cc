/**
 * @file
 * Section 6 extension bench: update-mode vs invalidate coherence for a
 * producer/consumer object, sweeping the read-to-write ratio.
 *
 * "The directory trap modes can also be used to construct objects that
 * update (rather than invalidate) cached copies after they are
 * modified." Update mode wins when many consumers re-read between
 * writes (their copies stay live); invalidation wins when writes
 * dominate (updates spam refreshes nobody reads).
 */

#include <iomanip>

#include "bench_common.hh"
#include "sim/log.hh"

using namespace limitless;
using namespace limitless::bench;

namespace
{

/** One producer on node 63 updates a word; `consumers` nodes poll it. */
Tick
run(bool update_mode, unsigned consumers, unsigned reads_per_write)
{
    MachineConfig cfg = alewife64(protocols::limitlessStall(4, 50));
    Machine m(cfg);
    const Addr a = m.addressMap().addrOnNode(0, 0);
    if (update_mode)
        m.policy().markUpdateMode(m.addressMap().lineAddr(a));
    const unsigned writes = 12;

    for (NodeId p = 0; p < 64; ++p) {
        if (p < consumers) {
            m.spawnOn(p, [&, a, reads_per_write](ThreadApi &t) -> Task<> {
                for (unsigned i = 0; i < 12 * reads_per_write; ++i) {
                    co_await t.read(a);
                    co_await t.compute(6);
                }
            });
        } else if (p == 63) {
            m.spawnOn(p, [&, a](ThreadApi &t) -> Task<> {
                for (std::uint64_t i = 1; i <= writes; ++i) {
                    co_await t.write(a, i);
                    co_await t.compute(40);
                }
            });
        } else {
            m.spawnOn(p, [](ThreadApi &t) -> Task<> {
                co_await t.compute(1);
            });
        }
    }
    const RunResult r = m.run();
    if (!r.completed)
        fatal("ext_update_mode: run did not complete");
    return r.cycles;
}

} // namespace

int
main()
{
    paperReference(
        "Section 6 extension: update-mode vs invalidate coherence",
        "Paper (qualitative): trap modes can synthesize objects that "
        "update rather than\ninvalidate cached copies. Expected: update "
        "mode wins when reads dominate writes\n(consumers keep hitting "
        "their refreshed copies) and the advantage grows with the\n"
        "number of consumers.");

    std::cout << "\nProducer/consumer cycles (12 writes, LimitLESS4 "
                 "machine):\n";
    std::cout << "  " << std::setw(10) << "consumers" << std::setw(12)
              << "reads/wr" << std::setw(13) << "invalidate"
              << std::setw(11) << "update" << std::setw(11) << "speedup"
              << "\n";
    double best = 0;
    bool ok = true;
    for (unsigned consumers : {8u, 24u, 48u}) {
        for (unsigned rpw : {1u, 8u}) {
            const Tick inv = run(false, consumers, rpw);
            const Tick upd = run(true, consumers, rpw);
            const double speedup = double(inv) / upd;
            std::cout << "  " << std::setw(10) << consumers
                      << std::setw(12) << rpw << std::setw(13) << inv
                      << std::setw(11) << upd << std::setw(10)
                      << std::fixed << std::setprecision(2) << speedup
                      << "x\n";
            if (rpw == 8)
                best = std::max(best, speedup);
        }
    }
    if (best < 1.15) {
        std::cout << "\nSHAPE CHECK FAILED: update mode should win "
                     "clearly at high read/write ratios\n";
        ok = false;
    } else {
        std::cout << "\nShape check PASSED: update mode wins at high "
                     "read/write ratios (up to " << best << "x).\n";
    }
    return ok ? 0 : 1;
}
