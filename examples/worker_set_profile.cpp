/**
 * @file
 * Section 6 extension: worker-set profiling through the Trap-Always
 * meta-state.
 *
 * "The simplest type of extension uses the LimitLESS trap handler to
 * gather statistics about shared memory locations. ... a number of
 * locations can be placed in the Trap-Always directory mode, so that
 * they are handled entirely in software. This scheme permits complete
 * profiling of memory transactions to these locations without degrading
 * performance of non-profiled locations."
 *
 * The demo marks a few lines Trap-Always before the run; afterwards the
 * software directory table holds their exact reader sets, which are
 * printed as the feedback a compiler or programmer would use to spot
 * widely shared variables (like Weather's hot spot).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/experiment.hh"
#include "workload/weather.hh"

using namespace limitless;

int
main()
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 7;

    Machine m(cfg);
    const AddressMap &amap = m.addressMap();

    // Profile the weather program's three kinds of shared variable: the
    // (suspected) hot word, one pairwise boundary, one regional value.
    struct Probe
    {
        const char *what;
        Addr addr;
    };
    const std::vector<Probe> probes = {
        {"hot simulation parameter", amap.addrOnNode(0, 0)},
        {"pairwise boundary (proc 3)", amap.addrOnNode(3 + 8, 1)},
        {"regional value (region 0)", amap.addrOnNode(4, 2)},
    };

    // Arm Trap-Always on the probed lines: every request is handled (and
    // recorded) in software from now on.
    for (const Probe &p : probes) {
        const Addr line = amap.lineAddr(p.addr);
        m.node(amap.homeOf(line))
            .mem()
            .limitlessDir()
            ->setMeta(line, MetaState::trapAlways);
    }

    WeatherParams wp;
    wp.iterations = 6;
    wp.columnLines = 8;
    Weather wl(wp);
    wl.install(m);
    if (!m.run().completed) {
        std::cerr << "run did not complete\n";
        return 1;
    }
    wl.verify(m);

    std::cout << "Worker-set profile (Trap-Always lines handled fully "
                 "in software):\n\n";
    for (const Probe &p : probes) {
        const Addr line = amap.lineAddr(p.addr);
        const SoftwareDirTable &sw =
            m.node(amap.homeOf(line)).mem().profileTable();
        std::vector<NodeId> readers;
        sw.sharers(line, readers);
        std::sort(readers.begin(), readers.end());
        std::cout << "  " << p.what << " (line 0x" << std::hex << line
                  << std::dec << "): worker-set " << readers.size()
                  << " -> {";
        for (std::size_t i = 0; i < readers.size(); ++i)
            std::cout << (i ? "," : "") << readers[i];
        std::cout << "}\n";
    }

    std::cout << "\nRead traps taken for profiled lines: "
              << m.sumCounter("mem", "read_traps")
              << " (non-profiled lines ran at full hardware speed)\n";
    std::cout << "\nFeedback: the first line is read by every processor "
                 "— flag it read-only or\nrestructure it, exactly the "
                 "optimization the paper applies to Weather.\n";
    return 0;
}
