/**
 * @file
 * FIFO lock demo (paper Section 6): the LimitLESS trap machinery's
 * generic interface lets the runtime synthesize synchronization types in
 * software. Here a FIFO lock service running on the lock's home node
 * queues acquire requests and grants them first-come-first-served over
 * IPI messages, side by side with a conventional test-and-set spin lock
 * on coherent shared memory.
 *
 * The demo runs the same contended critical-section workload under both
 * and prints throughput and fairness (grant-wait spread): the spin lock
 * is unfair and hammers its home node with coherence traffic; the FIFO
 * lock is perfectly ordered with two messages per hand-off.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "kernel/fifo_lock.hh"
#include "workload/spin_lock.hh"
#include "workload/workload.hh"

using namespace limitless;

namespace
{

struct Outcome
{
    Tick cycles;
    double mean_wait;
    Tick max_wait;
    std::uint64_t final_count;
};

constexpr unsigned nodes = 16;
constexpr unsigned iters = 12;

std::uint64_t
finalWord(Machine &m, Addr a)
{
    const Addr line = m.addressMap().lineAddr(a);
    for (NodeId p = 0; p < m.numNodes(); ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite)
            return cl->words[m.addressMap().wordOf(a)];
    }
    return m.node(m.addressMap().homeOf(a))
        .mem()
        .readLine(line)[m.addressMap().wordOf(a)];
}

Outcome
runFifo()
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 23;
    Machine m(cfg);
    FifoLockService lock(m, 0, 1);
    const Addr counter = m.addressMap().addrOnNode(1, slot::locks + 2);
    for (NodeId p = 0; p < nodes; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            for (unsigned i = 0; i < iters; ++i) {
                co_await lock.acquire(t);
                const std::uint64_t v = co_await t.read(counter);
                co_await t.compute(10);
                co_await t.write(counter, v + 1);
                co_await lock.release(t);
                co_await t.compute(1 + (p * 7) % 23);
            }
        });
    }
    const RunResult r = m.run();
    const auto &waits = lock.grantWaits();
    Tick sum = 0, mx = 0;
    for (Tick w : waits) {
        sum += w;
        mx = std::max(mx, w);
    }
    return Outcome{r.cycles, double(sum) / waits.size(), mx,
                   finalWord(m, counter)};
}

Outcome
runSpin()
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 23;
    Machine m(cfg);
    SpinLock lock(m.addressMap().addrOnNode(0, slot::locks));
    const Addr counter = m.addressMap().addrOnNode(1, slot::locks + 2);
    std::vector<Tick> waits;
    for (NodeId p = 0; p < nodes; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            for (unsigned i = 0; i < iters; ++i) {
                const Tick before = t.now();
                co_await lock.acquire(t);
                waits.push_back(t.now() - before);
                const std::uint64_t v = co_await t.read(counter);
                co_await t.compute(10);
                co_await t.write(counter, v + 1);
                co_await lock.release(t);
                co_await t.compute(1 + (p * 7) % 23);
            }
        });
    }
    const RunResult r = m.run();
    Tick sum = 0, mx = 0;
    for (Tick w : waits) {
        sum += w;
        mx = std::max(mx, w);
    }
    return Outcome{r.cycles, double(sum) / waits.size(), mx,
                   finalWord(m, counter)};
}

} // namespace

int
main()
{
    std::cout << nodes << " nodes, " << iters
              << " critical sections each, LimitLESS4 machine:\n\n";
    const Outcome spin = runSpin();
    const Outcome fifo = runFifo();

    std::cout << std::left << std::setw(18) << "  lock"
              << std::right << std::setw(10) << "cycles" << std::setw(12)
              << "mean wait" << std::setw(12) << "max wait"
              << std::setw(9) << "count" << "\n";
    std::cout << std::left << std::setw(18) << "  test-and-set"
              << std::right << std::setw(10) << spin.cycles
              << std::setw(12) << std::fixed << std::setprecision(1)
              << spin.mean_wait << std::setw(12) << spin.max_wait
              << std::setw(9) << spin.final_count << "\n";
    std::cout << std::left << std::setw(18) << "  FIFO (IPI)"
              << std::right << std::setw(10) << fifo.cycles
              << std::setw(12) << fifo.mean_wait << std::setw(12)
              << fifo.max_wait << std::setw(9) << fifo.final_count
              << "\n";

    std::cout << "\nfairness (max/mean wait): test-and-set "
              << std::setprecision(1) << spin.max_wait / spin.mean_wait
              << "x vs FIFO " << fifo.max_wait / fifo.mean_wait << "x\n";

    const bool ok = spin.final_count == nodes * iters &&
                    fifo.final_count == nodes * iters;
    std::cout << (ok ? "\nboth locks preserved mutual exclusion (exact "
                       "counts).\n"
                     : "\nCOUNT MISMATCH!\n");
    return ok ? 0 : 1;
}
