/**
 * @file
 * Migratory-object demo: an object hops processor to processor around a
 * token ring, exercising the exclusive-ownership transitions (paper
 * Table 2 rows 4-6). Prints per-protocol timing and the ownership
 * hand-off counts, and shows the Read-Write copy really is exclusive at
 * every instant (checked by the coherence monitor during the run).
 */

#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/migratory.hh"

using namespace limitless;

int
main()
{
    std::cout << "Migratory object (4 lines) around a 16-node ring, 4 "
                 "full trips:\n\n";
    std::cout << "  " << std::left << std::setw(22) << "protocol"
              << std::right << std::setw(10) << "cycles" << std::setw(10)
              << "INVs" << std::setw(10) << "REPMs" << "\n";

    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(4),
          protocols::limitlessStall(4, 50), protocols::chained()}) {
        MachineConfig cfg;
        cfg.numNodes = 16;
        cfg.protocol = proto;
        cfg.seed = 13;

        Machine m(cfg);
        MigratoryParams mp;
        mp.rounds = 4;
        mp.objectLines = 4;
        Migratory wl(mp);
        wl.install(m);

        // Spot-check the single-writer invariant while the object hops.
        CoherenceMonitor monitor(m);
        for (Tick t = 500; t <= 20000; t += 500) {
            m.eventQueue().schedule(t, [&monitor]() {
                monitor.checkGlobalInvariants();
            }, EventPriority::stats);
        }

        const RunResult r = m.run();
        if (!r.completed) {
            std::cerr << "run did not complete\n";
            return 1;
        }
        wl.verify(m);
        monitor.checkQuiescent();

        std::cout << "  " << std::left << std::setw(22) << proto.name()
                  << std::right << std::setw(10) << r.cycles
                  << std::setw(10) << m.sumCounter("mem", "invs_sent")
                  << std::setw(10) << m.sumCounter("cache", "repm")
                  << "\n";
    }

    std::cout << "\nEach hold fetch-adds every object line, so ownership "
                 "migrates cleanly through\nINV/UPDATE exchanges; all "
                 "protocols produce the identical final object value.\n"
                 "(Migratory data is the paper's Section 6 motivation "
                 "for FIFO directory eviction.)\n";
    return 0;
}
