/**
 * @file
 * Hot-spot demo: the scenario that motivates the whole paper, distilled.
 *
 * One variable is read by every processor in the machine. Under a
 * limited directory the pointer array thrashes and the home node becomes
 * a network hot spot; under LimitLESS one bounded burst of software
 * traps absorbs the worker-set and everything afterwards is full-map
 * fast. The demo prints a side-by-side comparison across machine sizes,
 * showing the gap widen with scale.
 */

#include <iomanip>
#include <iostream>

#include "harness/experiment.hh"
#include "workload/hotspot.hh"

using namespace limitless;

int
main()
{
    std::cout << "Hot-spot read sharing: Dir4NB vs LimitLESS4 vs "
                 "Full-Map\n"
              << "(one variable read by all processors each iteration; "
                 "cycles to completion)\n\n";
    std::cout << "  " << std::setw(6) << "nodes" << std::setw(12)
              << "Dir4NB" << std::setw(12) << "LimitLESS4"
              << std::setw(12) << "Full-Map" << std::setw(14)
              << "Dir4NB/Full" << "\n";

    for (unsigned nodes : {16u, 32u, 64u}) {
        HotspotParams hp;
        hp.iterations = 15;
        hp.hotLines = 1;
        hp.privLines = 8;
        hp.writePeriod = 0; // pure read sharing, like the Weather bug
        auto make = [&]() { return std::make_unique<Hotspot>(hp); };

        Tick results[3] = {};
        const ProtocolParams protos[3] = {
            protocols::dirNB(4),
            protocols::limitlessStall(4, 50),
            protocols::fullMap(),
        };
        for (int i = 0; i < 3; ++i) {
            MachineConfig cfg;
            cfg.numNodes = nodes;
            cfg.protocol = protos[i];
            cfg.seed = 9;
            results[i] = runExperiment(cfg, make).cycles;
        }
        std::cout << "  " << std::setw(6) << nodes << std::setw(12)
                  << results[0] << std::setw(12) << results[1]
                  << std::setw(12) << results[2] << std::setw(13)
                  << std::fixed << std::setprecision(2)
                  << double(results[0]) / results[2] << "x\n";
    }

    std::cout << "\nThe limited directory's penalty grows with machine "
                 "size; LimitLESS stays at full-map\nperformance with "
                 "O(log N) directory bits per entry.\n";
    return 0;
}
