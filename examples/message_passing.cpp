/**
 * @file
 * IPI message-passing demo (paper Section 4.2): the
 * Interprocessor-Interrupt interface "can also be used to send
 * preemptive messages to remote processors (as in message-passing
 * machines)" — a single generic mechanism for network access.
 *
 * This example builds a tiny active-message ring on top of interrupt-
 * class packets: each node's software handler receives a token message,
 * appends its node id to the payload (the store-back path), and forwards
 * it. After a full circuit the payload names every node in order —
 * message passing and shared-memory coherence co-existing on one fabric.
 */

#include <iostream>
#include <vector>

#include "harness/experiment.hh"
#include "machine/machine.hh"

using namespace limitless;

int
main()
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 3;
    Machine m(cfg);

    std::vector<std::uint64_t> final_payload;
    bool done = false;

    // Register an active-message service on every node's trap
    // dispatcher: examine the header/operands, store the data back,
    // extend it, and launch the next hop — the receive/store-back/
    // transmit loop of Section 4.2. (The dispatcher already charges the
    // trap-entry cost to the processor.)
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        m.node(n).dispatcher().registerMessage(
            Opcode::IPI_MESSAGE,
            [&m, &final_payload, &done, n](const Packet &msg) {
                const std::uint64_t hops_left = msg.operands.at(0);
                std::vector<std::uint64_t> payload = msg.data;
                payload.push_back(n); // "store-back", then append
                if (hops_left == 0) {
                    final_payload = payload;
                    done = true;
                    return;
                }
                const NodeId next = (n + 1) % m.numNodes();
                m.node(n).ipi().send(makeInterruptPacket(
                    n, next, Opcode::IPI_MESSAGE, {hops_left - 1},
                    std::move(payload)));
            });
    }

    // Node 0 kicks off the token and also does shared-memory work, to
    // show both traffic classes share the network.
    const Addr counter = m.addressMap().addrOnNode(3, 0);
    for (NodeId p = 0; p < cfg.numNodes; ++p) {
        m.spawnOn(p, [&m, counter, p](ThreadApi &t) -> Task<> {
            if (p == 0) {
                m.node(0).ipi().send(makeInterruptPacket(
                    0, 1, Opcode::IPI_MESSAGE,
                    {m.numNodes() - 1}, {0}));
            }
            co_await t.fetchAdd(counter, 1);
            co_await t.compute(400); // stay alive while the token rides
        });
    }

    const RunResult r = m.run();
    if (!r.completed || !done) {
        std::cerr << "token never completed the ring\n";
        return 1;
    }

    std::cout << "token circled " << cfg.numNodes << " nodes in "
              << r.cycles << " cycles; path:";
    for (std::uint64_t n : final_payload)
        std::cout << " " << n;
    std::cout << "\ninterrupt messages delivered: "
              << m.sumCounter("ipi", "diverted")
              << ", launched: " << m.sumCounter("ipi", "sent") << "\n";
    std::cout << "shared-memory fetch-adds completed alongside: "
              << cfg.numNodes << "\n";

    // The path must visit 0,1,2,...,7 then return to 0.
    std::vector<std::uint64_t> expect = {0};
    for (NodeId n = 1; n < cfg.numNodes; ++n)
        expect.push_back(n);
    expect.push_back(0);
    return final_payload == expect ? 0 : 1;
}
