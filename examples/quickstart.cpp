/**
 * @file
 * Quickstart: build a 16-node LimitLESS machine, run a small parallel
 * program written as coroutines, and read the results and statistics.
 *
 * This walks through the whole public API surface:
 *   MachineConfig -> Machine -> spawnOn(thread programs) -> run() ->
 *   stats / verification.
 */

#include <iostream>

#include "machine/coherence_monitor.hh"
#include "machine/machine.hh"
#include "workload/barrier.hh"

using namespace limitless;

int
main()
{
    // 1. Describe the machine: 16 Alewife-like nodes on a 4x4 wormhole
    //    mesh, running the LimitLESS protocol with 4 hardware pointers
    //    and a 50-cycle software emulation latency.
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol.kind = ProtocolKind::limitless;
    cfg.protocol.pointers = 4;
    cfg.protocol.softwareLatency = 50;
    cfg.seed = 42;

    Machine m(cfg);
    const AddressMap &amap = m.addressMap();

    // 2. Lay out shared data. addrOnNode(home, slot) places a line on a
    //    specific home node; here one widely shared configuration word
    //    on node 0 and one result counter on node 1.
    const Addr config_word = amap.addrOnNode(0, 0);
    const Addr result_sum = amap.addrOnNode(1, 1);

    // 3. Write the parallel program as coroutines over ThreadApi and
    //    bind one to each node. Shared-memory synchronization (the
    //    combining-tree barrier) runs on the simulated protocol too.
    CombiningTreeBarrier barrier(amap, cfg.numNodes);
    for (NodeId p = 0; p < cfg.numNodes; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            if (p == 0)
                co_await t.write(config_word, 100);
            co_await barrier.wait(t, p);

            // Every node reads the shared word — its worker-set (16)
            // overflows the 4 hardware pointers, so the home node traps
            // into the LimitLESS software handler.
            const std::uint64_t scale = co_await t.read(config_word);

            // ...does some "work"...
            co_await t.compute(25);

            // ...and contributes to a shared sum with an atomic op.
            co_await t.fetchAdd(result_sum, scale + p);
        });
    }

    // 4. Run to completion and check coherence invariants.
    const RunResult r = m.run();
    CoherenceMonitor(m).checkQuiescent();

    // 5. Read results back out of the simulated memory system.
    const Addr line = amap.lineAddr(result_sum);
    std::uint64_t sum = m.node(1).mem().readLine(line)[amap.wordOf(
        result_sum)];
    for (NodeId p = 0; p < cfg.numNodes; ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite)
            sum = cl->words[amap.wordOf(result_sum)];
    }

    std::cout << "ran " << cfg.numNodes << " threads in " << r.cycles
              << " cycles (" << r.events << " events)\n";
    std::cout << "shared sum = " << sum << " (expected "
              << 16 * 100 + (15 * 16) / 2 << ")\n";
    std::cout << "LimitLESS overflow traps taken: "
              << m.sumCounter("mem", "read_traps") << " read, "
              << m.sumCounter("mem", "write_traps") << " write\n";
    std::cout << "mean remote miss latency: "
              << m.meanAccumulator("cache", "remote_latency")
              << " cycles\n";
    return sum == 16 * 100 + (15 * 16) / 2 ? 0 : 1;
}
