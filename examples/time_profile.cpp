/**
 * @file
 * Activity-profile demo: interval-sampled time series over a Weather run
 * render the machine's phase behaviour as ASCII heat strips — memory
 * requests pulse with the barrier episodes, and the limited directory's
 * hot-spot turns the home node's controller into a solid band of work
 * that LimitLESS (one bounded trap burst at the start) avoids.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "stats/sampler.hh"
#include "workload/weather.hh"

using namespace limitless;

namespace
{

void
profileRun(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 64;
    cfg.protocol = proto;
    cfg.seed = 7;
    Machine m(cfg);
    WeatherParams wp;
    wp.iterations = 20;
    wp.columnLines = 32;
    Weather wl(wp);
    wl.install(m);

    Sampler sampler(m.eventQueue(), /*interval=*/200);
    // Machine-wide request rate, plus the hot home node's controller
    // (node 0 homes the hot variable) and its trap activity.
    sampler.addSeries("mem requests (all)", [&m]() {
        return static_cast<double>(m.sumCounter("mem", "requests"));
    });
    sampler.addSeries("node0 requests", [&m]() {
        const auto *c = static_cast<const Counter *>(
            m.node(0).statSet("mem")->find("requests"));
        return static_cast<double>(c->value());
    });
    sampler.addSeries("evictions", [&m]() {
        return static_cast<double>(m.sumCounter("mem", "evictions"));
    });
    sampler.addSeries("LimitLESS traps", [&m]() {
        return static_cast<double>(m.sumCounter("mem", "read_traps") +
                                   m.sumCounter("mem", "write_traps"));
    });
    sampler.setStopPredicate([&m]() { return m.allThreadsDone(); });
    sampler.start();

    const RunResult r = m.run();
    wl.verify(m);
    std::cout << "\n" << proto.name() << " — " << r.cycles
              << " cycles, one column per ~" << sampler.interval()
              << " cycles:\n";
    sampler.printProfile(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Weather (unoptimized), 64 processors: activity over "
                 "time\n(darker = busier; barrier episodes pulse, the "
                 "Dir4NB hot spot saturates node 0)\n";
    profileRun(protocols::dirNB(4));
    profileRun(protocols::limitlessStall(4, 50));
    profileRun(protocols::fullMap());
    return 0;
}
