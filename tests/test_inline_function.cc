/** @file Unit tests for the small-buffer callback type. */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"

namespace limitless
{
namespace
{

using Fn = InlineFunction<int(), 48>;

TEST(InlineFunction, DefaultIsEmpty)
{
    Fn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    Fn null_fn(nullptr);
    EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFunction, SmallCaptureStoresInlineAndInvokes)
{
    int x = 41;
    Fn fn([&x]() { return x + 1; });
    ASSERT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.storedInline());
    EXPECT_EQ(fn(), 42);
}

TEST(InlineFunction, CaptureAtCapacityStaysInline)
{
    std::array<std::uint8_t, 48> blob{};
    blob[0] = 7;
    auto lambda = [blob]() { return static_cast<int>(blob[0]); };
    static_assert(sizeof(lambda) == 48);
    static_assert(Fn::fitsInline<decltype(lambda)>);
    Fn fn(std::move(lambda));
    EXPECT_TRUE(fn.storedInline());
    EXPECT_EQ(fn(), 7);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndStillWorks)
{
    std::array<std::uint8_t, 64> blob{};
    blob[63] = 9;
    auto lambda = [blob]() { return static_cast<int>(blob[63]); };
    static_assert(!Fn::fitsInline<decltype(lambda)>);
    Fn fn(std::move(lambda));
    EXPECT_FALSE(fn.storedInline());
    EXPECT_EQ(fn(), 9);
}

TEST(InlineFunction, MoveTransfersOwnershipAndEmptiesSource)
{
    int calls = 0;
    Fn a([&calls]() { return ++calls; });
    Fn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(b(), 1);
    Fn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    EXPECT_EQ(c(), 2);
}

TEST(InlineFunction, HoldsMoveOnlyCallable)
{
    // The reason the event core can't use std::function: move-only
    // payloads (owned packets, coroutine handles) must be schedulable.
    auto owned = std::make_unique<int>(5);
    InlineFunction<int(), 48> fn(
        [p = std::move(owned)]() { return *p; });
    EXPECT_EQ(fn(), 5);
}

TEST(InlineFunction, DestroysInlinePayload)
{
    auto counted = std::make_shared<int>(1);
    std::weak_ptr<int> watch = counted;
    {
        InlineFunction<int(), 48> fn(
            [p = std::move(counted)]() { return *p; });
        EXPECT_EQ(fn(), 1);
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, DestroysBoxedPayload)
{
    auto counted = std::make_shared<int>(2);
    std::weak_ptr<int> watch = counted;
    {
        std::array<std::uint8_t, 64> pad{};
        InlineFunction<int(), 48> fn(
            [p = std::move(counted), pad]() {
                return *p + static_cast<int>(pad[0]);
            });
        EXPECT_FALSE(fn.storedInline());
        EXPECT_EQ(fn(), 2);
    }
    EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, TakesArguments)
{
    InlineFunction<int(int, int), 48> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(20, 22), 42);
}

} // namespace
} // namespace limitless
