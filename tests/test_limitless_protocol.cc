/**
 * @file
 * Directed tests for the LimitLESS-specific machinery: pointer-overflow
 * handling in both models (stall approximation and full emulation via
 * the trap handler), Trap-On-Write semantics, meta-state interlocking,
 * the local bit, and the Ts accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "kernel/limitless_handler.hh"
#include "machine/address_map.hh"
#include "mem/memory_controller.hh"

namespace limitless
{
namespace
{

/** Controller-in-isolation harness (stall approximation). */
struct StallHarness
{
    EventQueue eq;
    AddressMap amap{8, 16};
    MemoryController mc;
    std::vector<PacketPtr> sent;
    Tick stalled = 0;

    explicit StallHarness(unsigned pointers = 2, Tick ts = 50,
                          bool trap_on_write = true)
        : mc(eq, 0, amap,
             [&] {
                 ProtocolParams p = protocols::limitlessStall(pointers, ts);
                 p.trapOnWrite = trap_on_write;
                 return p;
             }(),
             MemParams{})
    {
        mc.setSend([this](PacketPtr p) { sent.push_back(std::move(p)); });
        mc.setTrapStall([this](Tick t) { stalled += t; });
        mc.setDivert([](PacketPtr) { FAIL() << "unexpected divert"; });
    }

    Addr line() const { return amap.addrOnNode(0, 0); }

    void
    inject(Opcode op, NodeId src, std::vector<std::uint64_t> data = {})
    {
        PacketPtr pkt = opcodeCarriesData(op)
                            ? makeDataPacket(src, 0, op, line(), data)
                            : makeProtocolPacket(src, 0, op, line());
        mc.enqueue(std::move(pkt));
        eq.run();
    }

    unsigned
    count(Opcode op, NodeId dest) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += (p->opcode == op && p->dest == dest);
        return n;
    }
};

TEST(LimitlessStall, OverflowSpillsPointersToSoftwareAndCharges)
{
    StallHarness h(/*pointers=*/2, /*ts=*/50);
    h.inject(Opcode::RREQ, 1);
    h.inject(Opcode::RREQ, 2);
    EXPECT_EQ(h.stalled, 0u);
    h.inject(Opcode::RREQ, 3); // overflow
    // Requester is still served...
    EXPECT_EQ(h.count(Opcode::RDATA, 3), 1u);
    // ...but the trap spilled the old pointers into the bit vector,
    // stalled the home processor for Ts, and armed Trap-On-Write.
    EXPECT_EQ(h.stalled, 50u);
    EXPECT_TRUE(h.mc.softwareTable().contains(h.line(), 1));
    EXPECT_TRUE(h.mc.softwareTable().contains(h.line(), 2));
    EXPECT_EQ(h.mc.limitlessDir()->meta(h.line()),
              MetaState::trapOnWrite);
    // Hardware pointer array was emptied; the new reader is in hardware.
    EXPECT_TRUE(h.mc.limitlessDir()->contains(h.line(), 3));
    EXPECT_FALSE(h.mc.limitlessDir()->contains(h.line(), 1));
}

TEST(LimitlessStall, TrapOnWriteAbsorbsFurtherReadsInHardware)
{
    StallHarness h(2, 50);
    for (NodeId n = 1; n <= 3; ++n)
        h.inject(Opcode::RREQ, n); // one overflow trap
    const Tick after_first = h.stalled;
    h.inject(Opcode::RREQ, 4); // fits in the freed pointer array
    EXPECT_EQ(h.stalled, after_first) << "no extra trap";
    EXPECT_EQ(h.count(Opcode::RDATA, 4), 1u);
}

TEST(LimitlessStall, OverflowRDataIsDelayedByTs)
{
    StallHarness h(2, 50);
    h.inject(Opcode::RREQ, 1);
    h.inject(Opcode::RREQ, 2);
    const Tick before = h.eq.now();
    h.inject(Opcode::RREQ, 3);
    // The RDATA event fires Ts after the trap began.
    EXPECT_GE(h.eq.now(), before + 50);
}

TEST(LimitlessStall, WriteToOverflowedLineGathersFullWorkerSet)
{
    StallHarness h(2, 50);
    for (NodeId n = 1; n <= 5; ++n)
        h.inject(Opcode::RREQ, n);
    h.sent.clear();
    const Tick stall_before = h.stalled;
    h.inject(Opcode::WREQ, 1);
    EXPECT_GT(h.stalled, stall_before) << "write-gather trap charged";
    // Everyone except the writer gets invalidated, wherever their record
    // lived (hardware pointers or software vector).
    for (NodeId n = 2; n <= 5; ++n)
        EXPECT_EQ(h.count(Opcode::INV, n), 1u) << "node " << n;
    EXPECT_EQ(h.count(Opcode::INV, 1), 0u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    EXPECT_EQ(h.mc.ackCounter(h.line()), 4u);
    // Software state is freed; the line is back in hardware control.
    EXPECT_FALSE(h.mc.softwareTable().has(h.line()));
    EXPECT_EQ(h.mc.limitlessDir()->meta(h.line()), MetaState::normal);
    for (NodeId n = 2; n <= 5; ++n)
        h.inject(Opcode::ACKC, n);
    EXPECT_EQ(h.count(Opcode::WDATA, 1), 1u);
}

TEST(LimitlessStall, TrapAlwaysAblationTrapsEveryRead)
{
    StallHarness h(2, 50, /*trap_on_write=*/false);
    for (NodeId n = 1; n <= 3; ++n)
        h.inject(Opcode::RREQ, n); // overflow -> Trap-Always
    EXPECT_EQ(h.mc.limitlessDir()->meta(h.line()), MetaState::trapAlways);
    const Tick stall_before = h.stalled;
    h.inject(Opcode::RREQ, 4);
    EXPECT_EQ(h.stalled, stall_before + 50) << "every read traps now";
    EXPECT_EQ(h.count(Opcode::RDATA, 4), 1u);
}

TEST(LimitlessStall, LocalBitKeepsHomeNodeOutOfThePointerArray)
{
    StallHarness h(2, 50);
    h.inject(Opcode::RREQ, 0); // the home node itself
    h.inject(Opcode::RREQ, 1);
    h.inject(Opcode::RREQ, 2);
    // Two remote readers fit the two pointers; the local copy rides the
    // local bit, so no trap has happened yet.
    EXPECT_EQ(h.stalled, 0u);
    h.inject(Opcode::RREQ, 3);
    EXPECT_EQ(h.stalled, 50u);
}

TEST(LimitlessStall, OverflowFractionMatchesTrapCounts)
{
    StallHarness h(2, 50);
    for (NodeId n = 1; n <= 4; ++n)
        h.inject(Opcode::RREQ, n);
    // 4 requests, traps on the 3rd (overflow). The 4th read hits the
    // emptied array.
    EXPECT_NEAR(h.mc.overflowFraction(), 1.0 / 4.0, 1e-9);
}

// ------------------------------------------------------- Full emulation

/** Full machine (so the IPI + handler + processor path is real). */
TEST(LimitlessEmulation, TrapHandlerServicesOverflowEndToEnd)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = protocols::limitlessEmulated(2);
    cfg.seed = 3;

    Machine m(cfg);
    const Addr hot = m.addressMap().addrOnNode(0, 0);
    // One thread per node reads the same line; worker-set 16 overflows
    // the 2-pointer array repeatedly.
    for (NodeId p = 0; p < 16; ++p) {
        m.spawnOn(p, [hot](ThreadApi &t) -> Task<> {
            const std::uint64_t v = co_await t.read(hot);
            EXPECT_EQ(v, 0u);
        });
    }
    const RunResult r = m.run();
    EXPECT_TRUE(r.completed);
    // The handler took read-overflow traps and spilled into the table.
    EXPECT_GT(m.sumCounter("handler", "read_traps"), 0u);
    EXPECT_GT(m.sumCounter("ipi", "diverted"), 0u);
    const SoftwareDirTable &sw = m.node(0).mem().softwareTable();
    EXPECT_TRUE(sw.has(m.addressMap().lineAddr(hot)));
}

TEST(LimitlessEmulation, WriteReturnsLineToHardwareControl)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessEmulated(2);
    cfg.seed = 3;

    Machine m(cfg);
    const Addr hot = m.addressMap().addrOnNode(1, 0);
    // Stage 1: everyone reads (overflow). Stage 2: node 0 writes.
    // Simple handshake through a second flag line.
    const Addr flag = m.addressMap().addrOnNode(2, 1);
    for (NodeId p = 0; p < 8; ++p) {
        m.spawnOn(p, [&m, hot, flag, p](ThreadApi &t) -> Task<> {
            co_await t.read(hot);
            co_await t.fetchAdd(flag, 1);
            if (p == 0) {
                // Wait until all 8 have read, then write the hot line.
                for (;;) {
                    if ((co_await t.read(flag)) == 8)
                        break;
                    co_await t.compute(20);
                }
                co_await t.write(hot, 77);
            }
        });
    }
    const RunResult r = m.run();
    EXPECT_TRUE(r.completed);
    MemoryController &home = m.node(1).mem();
    const Addr line = m.addressMap().lineAddr(hot);
    EXPECT_GT(m.sumCounter("handler", "write_traps"), 0u);
    EXPECT_FALSE(home.softwareTable().has(line)) << "vector freed";
    EXPECT_EQ(home.limitlessDir()->meta(line), MetaState::normal);
    EXPECT_EQ(home.lineState(line), MemState::readWrite);
}

// ------------------------------------------------- Trap-window races

/** Controller-in-isolation harness for the full-emulation meta-state
 *  interlock: diverted packets are captured instead of IPI-queued, so
 *  a test can hold the software-ownership window open indefinitely. */
struct EmuHarness
{
    EventQueue eq;
    AddressMap amap{8, 16};
    MemoryController mc;
    std::vector<PacketPtr> sent;
    std::vector<PacketPtr> diverted;

    explicit EmuHarness(unsigned pointers = 2)
        : mc(eq, 0, amap, protocols::limitlessEmulated(pointers),
             MemParams{})
    {
        mc.setSend([this](PacketPtr p) { sent.push_back(std::move(p)); });
        mc.setDivert(
            [this](PacketPtr p) { diverted.push_back(std::move(p)); });
    }

    Addr line() const { return amap.addrOnNode(0, 0); }

    void
    inject(Opcode op, NodeId src, std::vector<std::uint64_t> data = {})
    {
        PacketPtr pkt = opcodeCarriesData(op)
                            ? makeDataPacket(src, 0, op, line(), data)
                            : makeProtocolPacket(src, 0, op, line());
        mc.enqueue(std::move(pkt));
        eq.run();
    }

    unsigned
    count(Opcode op, NodeId dest) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += (p->opcode == op && p->dest == dest);
        return n;
    }
};

TEST(TrapWindowRace, EvictionDuringTrapOnWriteIsDivertedNotApplied)
{
    // A dirty eviction (REPM) that lands while the line's directory is
    // in Trap-On-Write must be diverted to the software handler — the
    // hardware pointer array no longer describes the sharer set, so
    // applying the replacement in hardware would desynchronize it from
    // the software-held vector. The packet must also close the window
    // (Trans-In-Progress) so nothing else slips through mid-handler.
    EmuHarness h;
    h.inject(Opcode::WREQ, 1); // node 1 becomes the dirty owner
    ASSERT_EQ(h.count(Opcode::WDATA, 1), 1u);
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::readWrite);
    h.mc.limitlessDir()->setMeta(h.line(), MetaState::trapOnWrite);

    h.inject(Opcode::REPM, 1, {7, 7});
    ASSERT_EQ(h.diverted.size(), 1u);
    EXPECT_EQ(h.diverted[0]->opcode, Opcode::REPM);
    EXPECT_EQ(h.mc.limitlessDir()->meta(h.line()),
              MetaState::transInProgress);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readWrite)
        << "hardware FSM must not process the diverted eviction";
}

TEST(TrapWindowRace, RequestsDuringHandlerOwnershipAreBusyNacked)
{
    // While the kernel handler owns the line (Trans-In-Progress), every
    // hardware-level request must be interlocked with BUSY, never
    // serviced from the (stale) hardware state.
    EmuHarness h;
    h.inject(Opcode::RREQ, 1);
    ASSERT_EQ(h.count(Opcode::RDATA, 1), 1u);
    h.mc.limitlessDir()->setMeta(h.line(), MetaState::transInProgress);

    h.inject(Opcode::RREQ, 2);
    EXPECT_EQ(h.count(Opcode::BUSY, 2), 1u);
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 0u);
    h.inject(Opcode::WREQ, 3);
    EXPECT_EQ(h.count(Opcode::BUSY, 3), 1u);
    EXPECT_EQ(h.count(Opcode::WDATA, 3), 0u);

    // Reopening the window (handler done) services requests again.
    h.mc.limitlessDir()->setMeta(h.line(), MetaState::normal);
    h.inject(Opcode::RREQ, 2);
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
}

TEST(LimitlessEmulation, EffectiveTrapCostIsInThePaperRange)
{
    KernelCosts costs;
    // Paper Section 5: "the current estimate of this latency in the
    // Alewife machine is between 50 and 100 cycles".
    const Tick t = costs.typicalReadTrap(4);
    EXPECT_GE(t, 30u);
    EXPECT_LE(t, 100u);
}

} // namespace
} // namespace limitless
