/** @file Unit tests for the trap handler's software bit-vector table. */

#include <gtest/gtest.h>

#include <algorithm>

#include "kernel/software_dir.hh"

namespace limitless
{
namespace
{

TEST(SoftwareDir, StartsEmpty)
{
    SoftwareDirTable sw(64);
    EXPECT_FALSE(sw.has(0x40));
    EXPECT_EQ(sw.entries(), 0u);
    EXPECT_EQ(sw.numSharers(0x40), 0u);
}

TEST(SoftwareDir, AddSharerAllocatesVector)
{
    SoftwareDirTable sw(64);
    sw.addSharer(0x40, 17);
    EXPECT_TRUE(sw.has(0x40));
    EXPECT_TRUE(sw.contains(0x40, 17));
    EXPECT_FALSE(sw.contains(0x40, 18));
    EXPECT_EQ(sw.entries(), 1u);
    EXPECT_EQ(sw.allocations(), 1u);
}

TEST(SoftwareDir, BatchSpillSetsAllBits)
{
    SoftwareDirTable sw(64);
    sw.addSharers(0x40, {1, 5, 63});
    std::vector<NodeId> out;
    sw.sharers(0x40, out);
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, (std::vector<NodeId>{1, 5, 63}));
    EXPECT_EQ(sw.numSharers(0x40), 3u);
}

TEST(SoftwareDir, DuplicatesAreIdempotent)
{
    SoftwareDirTable sw(64);
    sw.addSharer(0x40, 5);
    sw.addSharer(0x40, 5);
    sw.addSharers(0x40, {5, 5});
    EXPECT_EQ(sw.numSharers(0x40), 1u);
}

TEST(SoftwareDir, FreeReleasesTheVector)
{
    SoftwareDirTable sw(64);
    sw.addSharer(0x40, 5);
    sw.free(0x40);
    EXPECT_FALSE(sw.has(0x40));
    EXPECT_EQ(sw.entries(), 0u);
}

TEST(SoftwareDir, EmptyBatchAllocatesNothing)
{
    SoftwareDirTable sw(64);
    sw.addSharers(0x40, {});
    EXPECT_FALSE(sw.has(0x40));
}

TEST(SoftwareDir, PeakTracksHighWaterMark)
{
    SoftwareDirTable sw(64);
    sw.addSharer(0x40, 1);
    sw.addSharer(0x80, 1);
    sw.addSharer(0xC0, 1);
    sw.free(0x40);
    sw.free(0x80);
    EXPECT_EQ(sw.entries(), 1u);
    EXPECT_EQ(sw.peakEntries(), 3u);
    EXPECT_GT(sw.footprintBytes(), 0u);
}

TEST(SoftwareDir, FullWorkerSetOfLargeMachine)
{
    SoftwareDirTable sw(1024);
    for (NodeId n = 0; n < 1024; ++n)
        sw.addSharer(0x40, n);
    EXPECT_EQ(sw.numSharers(0x40), 1024u);
    std::vector<NodeId> out;
    sw.sharers(0x40, out);
    EXPECT_EQ(out.size(), 1024u);
}

} // namespace
} // namespace limitless
