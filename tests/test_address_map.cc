/** @file Unit tests for the address map (line geometry, home mapping). */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "machine/address_map.hh"

namespace limitless
{
namespace
{

TEST(AddressMap, LineAlignment)
{
    AddressMap amap(16, 16);
    EXPECT_EQ(amap.lineAddr(0x0), 0x0u);
    EXPECT_EQ(amap.lineAddr(0xF), 0x0u);
    EXPECT_EQ(amap.lineAddr(0x10), 0x10u);
    EXPECT_EQ(amap.lineAddr(0x1237), 0x1230u);
    EXPECT_EQ(amap.wordsPerLine(), 2u);
}

TEST(AddressMap, WordIndexWithinLine)
{
    AddressMap amap(16, 16);
    EXPECT_EQ(amap.wordOf(0x10), 0u);
    EXPECT_EQ(amap.wordOf(0x18), 1u);
    AddressMap wide(4, 32);
    EXPECT_EQ(wide.wordsPerLine(), 4u);
    EXPECT_EQ(wide.wordOf(0x38), 3u);
}

TEST(AddressMap, InterleavedHomesRotate)
{
    AddressMap amap(4, 16);
    EXPECT_EQ(amap.homeOf(0x00), 0u);
    EXPECT_EQ(amap.homeOf(0x10), 1u);
    EXPECT_EQ(amap.homeOf(0x20), 2u);
    EXPECT_EQ(amap.homeOf(0x30), 3u);
    EXPECT_EQ(amap.homeOf(0x40), 0u);
    // Every address in a line has the same home.
    EXPECT_EQ(amap.homeOf(0x18), amap.homeOf(0x10));
}

TEST(AddressMap, RangedHomesAreContiguous)
{
    AddressMap amap(4, 16, 1 << 20, HomeMapping::ranged);
    EXPECT_EQ(amap.homeOf(0x0), 0u);
    EXPECT_EQ(amap.homeOf((1 << 20) - 16), 0u);
    EXPECT_EQ(amap.homeOf(1 << 20), 1u);
    EXPECT_EQ(amap.homeOf(3u << 20), 3u);
}

TEST(AddressMap, AddrOnNodeInvertsHomeOf)
{
    for (HomeMapping mapping :
         {HomeMapping::interleaved, HomeMapping::ranged}) {
        AddressMap amap(8, 16, 1 << 20, mapping);
        for (NodeId n = 0; n < 8; ++n) {
            for (std::uint64_t slot : {0ull, 1ull, 17ull, 4000ull}) {
                const Addr a = amap.addrOnNode(n, slot);
                EXPECT_EQ(amap.homeOf(a), n);
                EXPECT_EQ(amap.lineAddr(a), a) << "line aligned";
            }
        }
    }
}

TEST(AddressMap, DistinctSlotsGiveDistinctLines)
{
    AddressMap amap(8, 16);
    std::set<Addr> seen;
    for (NodeId n = 0; n < 8; ++n)
        for (std::uint64_t s = 0; s < 64; ++s)
            EXPECT_TRUE(seen.insert(amap.addrOnNode(n, s)).second);
}

TEST(AddressMap, ClusterInterleavingRoundTrips)
{
    // 16 nodes in 4-node chips: homeOf must still be inverted exactly
    // by addrOnNode for every (node, slot).
    AddressMap amap(16, 16, 1 << 22, HomeMapping::interleaved,
                    /*cluster_size=*/4);
    EXPECT_EQ(amap.clusterSize(), 4u);
    EXPECT_EQ(amap.numClusters(), 4u);
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_EQ(amap.clusterOf(n), n / 4);
        for (std::uint64_t slot : {0ull, 1ull, 17ull, 4000ull}) {
            const Addr a = amap.addrOnNode(n, slot);
            EXPECT_EQ(amap.homeOf(a), n);
            EXPECT_EQ(amap.lineAddr(a), a);
        }
    }
}

TEST(AddressMap, ClusterInterleavingSpreadsAcrossChipsFirst)
{
    // Consecutive lines visit one node per chip before touching a
    // second node of any chip: the line index's low digit is the chip.
    AddressMap amap(8, 16, 1 << 20, HomeMapping::interleaved,
                    /*cluster_size=*/2);
    EXPECT_EQ(amap.homeOf(0x00), 0u); // chip 0, node 0
    EXPECT_EQ(amap.homeOf(0x10), 2u); // chip 1, node 2
    EXPECT_EQ(amap.homeOf(0x20), 4u); // chip 2, node 4
    EXPECT_EQ(amap.homeOf(0x30), 6u); // chip 3, node 6
    EXPECT_EQ(amap.homeOf(0x40), 1u); // chip 0 again, second node
    EXPECT_EQ(amap.homeOf(0x50), 3u);
    EXPECT_EQ(amap.homeOf(0x60), 5u);
    EXPECT_EQ(amap.homeOf(0x70), 7u);
    EXPECT_EQ(amap.homeOf(0x80), 0u); // full period numNodes lines
}

TEST(AddressMap, ClusterSizeOneMatchesFlatMapping)
{
    AddressMap flat(8, 16);
    AddressMap c1(8, 16, 1 << 20, HomeMapping::interleaved,
                  /*cluster_size=*/1);
    for (Addr a = 0; a < 0x400; a += 16)
        EXPECT_EQ(c1.homeOf(a), flat.homeOf(a));
    for (NodeId n = 0; n < 8; ++n)
        for (std::uint64_t s = 0; s < 16; ++s)
            EXPECT_EQ(c1.addrOnNode(n, s), flat.addrOnNode(n, s));
}

TEST(AddressMap, ClusterHomesAreBalanced)
{
    AddressMap amap(16, 16, 1 << 20, HomeMapping::interleaved,
                    /*cluster_size=*/4);
    std::vector<unsigned> count(16, 0);
    for (Addr a = 0; a < 16 * 16 * 8; a += 16)
        ++count[amap.homeOf(a)];
    for (NodeId n = 0; n < 16; ++n)
        EXPECT_EQ(count[n], 8u) << "node " << n;
}

} // namespace
} // namespace limitless
