/** @file Unit tests for the address map (line geometry, home mapping). */

#include <gtest/gtest.h>

#include "machine/address_map.hh"

namespace limitless
{
namespace
{

TEST(AddressMap, LineAlignment)
{
    AddressMap amap(16, 16);
    EXPECT_EQ(amap.lineAddr(0x0), 0x0u);
    EXPECT_EQ(amap.lineAddr(0xF), 0x0u);
    EXPECT_EQ(amap.lineAddr(0x10), 0x10u);
    EXPECT_EQ(amap.lineAddr(0x1237), 0x1230u);
    EXPECT_EQ(amap.wordsPerLine(), 2u);
}

TEST(AddressMap, WordIndexWithinLine)
{
    AddressMap amap(16, 16);
    EXPECT_EQ(amap.wordOf(0x10), 0u);
    EXPECT_EQ(amap.wordOf(0x18), 1u);
    AddressMap wide(4, 32);
    EXPECT_EQ(wide.wordsPerLine(), 4u);
    EXPECT_EQ(wide.wordOf(0x38), 3u);
}

TEST(AddressMap, InterleavedHomesRotate)
{
    AddressMap amap(4, 16);
    EXPECT_EQ(amap.homeOf(0x00), 0u);
    EXPECT_EQ(amap.homeOf(0x10), 1u);
    EXPECT_EQ(amap.homeOf(0x20), 2u);
    EXPECT_EQ(amap.homeOf(0x30), 3u);
    EXPECT_EQ(amap.homeOf(0x40), 0u);
    // Every address in a line has the same home.
    EXPECT_EQ(amap.homeOf(0x18), amap.homeOf(0x10));
}

TEST(AddressMap, RangedHomesAreContiguous)
{
    AddressMap amap(4, 16, 1 << 20, HomeMapping::ranged);
    EXPECT_EQ(amap.homeOf(0x0), 0u);
    EXPECT_EQ(amap.homeOf((1 << 20) - 16), 0u);
    EXPECT_EQ(amap.homeOf(1 << 20), 1u);
    EXPECT_EQ(amap.homeOf(3u << 20), 3u);
}

TEST(AddressMap, AddrOnNodeInvertsHomeOf)
{
    for (HomeMapping mapping :
         {HomeMapping::interleaved, HomeMapping::ranged}) {
        AddressMap amap(8, 16, 1 << 20, mapping);
        for (NodeId n = 0; n < 8; ++n) {
            for (std::uint64_t slot : {0ull, 1ull, 17ull, 4000ull}) {
                const Addr a = amap.addrOnNode(n, slot);
                EXPECT_EQ(amap.homeOf(a), n);
                EXPECT_EQ(amap.lineAddr(a), a) << "line aligned";
            }
        }
    }
}

TEST(AddressMap, DistinctSlotsGiveDistinctLines)
{
    AddressMap amap(8, 16);
    std::set<Addr> seen;
    for (NodeId n = 0; n < 8; ++n)
        for (std::uint64_t s = 0; s < 64; ++s)
            EXPECT_TRUE(seen.insert(amap.addrOnNode(n, s)).second);
}

} // namespace
} // namespace limitless
