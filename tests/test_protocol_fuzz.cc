/**
 * @file
 * Randomized protocol fuzz: drive every scheme through RandomStress on
 * several machine sizes with Rng-derived seeds, then require (a) exact
 * workload results, (b) quiescent structural coherence, and (c) that
 * every (state, opcode) pair the controllers fired is declared by the
 * scheme's registered transition table — the end-to-end version of the
 * static exhaustiveness test.
 *
 * On failure the test prints the exact scheme + seed and a
 * copy-pasteable limitless-sim command line (including when the
 * machine panics: a panic hook emits the case before the postmortem),
 * then automatically re-runs the same seed on the minimal 4-node
 * machine to report whether the small config reproduces it — the
 * starting point for a limitless-check script.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <sstream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

struct FuzzCase
{
    ProtocolParams proto;
    unsigned nodes;
    std::uint64_t seed;
};

/** CLI spelling of a protocol, for the reproduce hint. */
std::string
protocolFlag(const ProtocolParams &p)
{
    std::ostringstream os;
    switch (p.kind) {
      case ProtocolKind::fullMap: os << "full-map"; break;
      case ProtocolKind::limited: os << "dir" << p.pointers << "nb"; break;
      case ProtocolKind::limitless:
        os << "limitless" << p.pointers;
        if (p.limitlessMode == LimitlessMode::fullEmulation)
            os << " --emulate";
        break;
      case ProtocolKind::chained: os << "chained"; break;
      case ProtocolKind::privateOnly: os << "private-only"; break;
    }
    return os.str();
}

std::string
reproduceHint(const FuzzCase &fc, unsigned ops)
{
    std::ostringstream os;
    os << "fuzz case: " << fc.proto.name() << " nodes=" << fc.nodes
       << " seed=" << fc.seed << "\n  reproduce: limitless-sim "
       << "--workload random-stress --protocol " << protocolFlag(fc.proto)
       << " --nodes " << fc.nodes << " --iterations " << ops << " --seed "
       << fc.seed;
    return os.str();
}

/** Case description printed by the panic hook, so even an abort deep in
 *  the machine names the failing seed + scheme before the postmortem. */
std::string g_activeCase;
PanicHook g_prevHook = nullptr;

void
fuzzPanicHook()
{
    if (!g_activeCase.empty())
        std::cerr << "\n==== protocol fuzz: failing case ====\n"
                  << g_activeCase << "\n\n";
    if (g_prevHook)
        g_prevHook();
}

/** Run one (proto, nodes, seed) stress case and return every coherence
 *  violation (empty = clean). Uses the monitor's non-aborting
 *  collectors so a failure is reported, not abort()ed. */
std::vector<std::string>
runCase(const ProtocolParams &proto, unsigned nodes, std::uint64_t seed,
        unsigned ops)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.seed = seed;
    // Tiny cache so replacements and spurious INVs exercise the rare
    // rows, not just the fill path.
    cfg.cache.cacheBytes = 16 * 16;

    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = ops;
    rp.counterLines = 4;
    rp.valueLines = 8;
    rp.seed = seed;
    RandomStress wl(rp);
    wl.install(m);

    std::vector<std::string> out;
    const RunResult r = m.run();
    if (!r.completed) {
        out.push_back("run did not complete");
        return out;
    }
    wl.verify(m);

    CoherenceMonitor monitor(m);
    for (const CoherenceViolation &v : monitor.collectGlobalViolations())
        out.push_back(v.what);
    for (const CoherenceViolation &v :
         monitor.collectQuiescentViolations())
        out.push_back(v.what);
    for (const CoherenceViolation &v :
         monitor.collectUndeclaredTransitions())
        out.push_back(v.what);
    return out;
}

class ProtocolFuzz : public testing::TestWithParam<FuzzCase>
{
  protected:
    void SetUp() override
    {
        g_activeCase = reproduceHint(GetParam(), 60);
        g_prevHook = setPanicHook(&fuzzPanicHook);
    }
    void TearDown() override
    {
        setPanicHook(g_prevHook);
        g_prevHook = nullptr;
        g_activeCase.clear();
    }
};

std::string
caseName(const testing::TestParamInfo<FuzzCase> &info)
{
    std::ostringstream os;
    os << info.param.proto.name() << "_" << info.param.nodes << "n_s"
       << info.param.seed;
    std::string s = os.str();
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

TEST_P(ProtocolFuzz, ObservedTransitionsAreDeclared)
{
    const FuzzCase &fc = GetParam();
    SCOPED_TRACE(g_activeCase);

    const std::vector<std::string> violations =
        runCase(fc.proto, fc.nodes, fc.seed, 60);
    if (violations.empty())
        return;

    std::ostringstream report;
    report << g_activeCase << "\n  violations:";
    for (const std::string &v : violations)
        report << "\n    " << v;

    // Automatic shrink: the same seed on the minimal 4-node machine
    // with a short script. When it reproduces there, the case is small
    // enough to study under limitless-check / --log.
    const unsigned min_nodes = 4, min_ops = 12;
    g_activeCase = reproduceHint(FuzzCase{fc.proto, min_nodes, fc.seed},
                                 min_ops);
    const std::vector<std::string> minimal =
        runCase(fc.proto, min_nodes, fc.seed, min_ops);
    report << "\n  minimal config (" << min_nodes << " nodes, " << min_ops
           << " ops): "
           << (minimal.empty() ? "does NOT reproduce" : "REPRODUCES");
    for (const std::string &v : minimal)
        report << "\n    " << v;

    FAIL() << report.str();
}

std::vector<FuzzCase>
makeCases()
{
    ProtocolParams privateOnly;
    privateOnly.kind = ProtocolKind::privateOnly;
    const std::vector<ProtocolParams> protos = {
        protocols::fullMap(),
        protocols::dirNB(2),
        protocols::limitlessStall(4, 50),
        protocols::limitlessEmulated(2),
        protocols::chained(),
        privateOnly,
    };
    // Derive the per-case seeds from the repo's own generator so the
    // sweep is deterministic but not hand-picked.
    Rng rng(0xf022eedull);
    std::vector<FuzzCase> cases;
    for (const auto &proto : protos)
        for (unsigned nodes : {4u, 9u, 16u})
            cases.push_back(FuzzCase{proto, nodes,
                                     rng.range(1, 1u << 20)});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolFuzz,
                         testing::ValuesIn(makeCases()), caseName);

} // namespace
} // namespace limitless
