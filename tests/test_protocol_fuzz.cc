/**
 * @file
 * Randomized protocol fuzz: drive every scheme through RandomStress on
 * several machine sizes with Rng-derived seeds, then require (a) exact
 * workload results, (b) quiescent structural coherence, and (c) that
 * every (state, opcode) pair the controllers fired is declared by the
 * scheme's registered transition table — the end-to-end version of the
 * static exhaustiveness test.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "sim/rng.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

struct FuzzCase
{
    ProtocolParams proto;
    unsigned nodes;
    std::uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<FuzzCase> &info)
{
    std::ostringstream os;
    os << info.param.proto.name() << "_" << info.param.nodes << "n_s"
       << info.param.seed;
    std::string s = os.str();
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

class ProtocolFuzz : public testing::TestWithParam<FuzzCase>
{
};

TEST_P(ProtocolFuzz, ObservedTransitionsAreDeclared)
{
    const FuzzCase &fc = GetParam();
    MachineConfig cfg;
    cfg.numNodes = fc.nodes;
    cfg.protocol = fc.proto;
    cfg.seed = fc.seed;
    // Tiny cache so replacements and spurious INVs exercise the rare
    // rows, not just the fill path.
    cfg.cache.cacheBytes = 16 * 16;

    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 60;
    rp.counterLines = 4;
    rp.valueLines = 8;
    rp.seed = fc.seed;
    RandomStress wl(rp);
    wl.install(m);

    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);

    wl.verify(m);
    CoherenceMonitor monitor(m);
    monitor.checkQuiescent();
    monitor.checkDeclaredTransitions();
}

std::vector<FuzzCase>
makeCases()
{
    ProtocolParams privateOnly;
    privateOnly.kind = ProtocolKind::privateOnly;
    const std::vector<ProtocolParams> protos = {
        protocols::fullMap(),
        protocols::dirNB(2),
        protocols::limitlessStall(4, 50),
        protocols::limitlessEmulated(2),
        protocols::chained(),
        privateOnly,
    };
    // Derive the per-case seeds from the repo's own generator so the
    // sweep is deterministic but not hand-picked.
    Rng rng(0xf022eedull);
    std::vector<FuzzCase> cases;
    for (const auto &proto : protos)
        for (unsigned nodes : {4u, 9u, 16u})
            cases.push_back(FuzzCase{proto, nodes,
                                     rng.range(1, 1u << 20)});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolFuzz,
                         testing::ValuesIn(makeCases()), caseName);

} // namespace
} // namespace limitless
