/** @file Unit tests for directory pointer-set storage schemes. */

#include <gtest/gtest.h>

#include <algorithm>

#include "directory/chained_dir.hh"
#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "directory/limitless_dir.hh"

namespace limitless
{
namespace
{

std::vector<NodeId>
sortedSharers(const DirectoryScheme &dir, Addr line)
{
    std::vector<NodeId> out;
    dir.sharers(line, out);
    std::sort(out.begin(), out.end());
    return out;
}

// ---------------------------------------------------------------- FullMap

TEST(FullMapDir, AddContainsRemove)
{
    FullMapDir dir(64);
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::added);
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::present);
    EXPECT_TRUE(dir.contains(0x40, 3));
    EXPECT_FALSE(dir.contains(0x40, 4));
    dir.remove(0x40, 3);
    EXPECT_FALSE(dir.contains(0x40, 3));
}

TEST(FullMapDir, NeverOverflows)
{
    FullMapDir dir(128);
    for (NodeId n = 0; n < 128; ++n)
        EXPECT_EQ(dir.tryAdd(0x40, n), DirAdd::added);
    EXPECT_EQ(dir.numSharers(0x40), 128u);
    EXPECT_EQ(sortedSharers(dir, 0x40).size(), 128u);
}

TEST(FullMapDir, ClearDropsAllSharers)
{
    FullMapDir dir(64);
    dir.tryAdd(0x40, 1);
    dir.tryAdd(0x40, 2);
    dir.clear(0x40);
    EXPECT_EQ(dir.numSharers(0x40), 0u);
}

TEST(FullMapDir, LinesAreIndependent)
{
    FullMapDir dir(64);
    dir.tryAdd(0x40, 1);
    dir.tryAdd(0x80, 2);
    EXPECT_TRUE(dir.contains(0x40, 1));
    EXPECT_FALSE(dir.contains(0x80, 1));
    EXPECT_TRUE(dir.contains(0x80, 2));
}

TEST(FullMapDir, MemoryOverheadGrowsLinearlyInN)
{
    FullMapDir dir(64);
    EXPECT_EQ(dir.bitsPerEntry(64), 64u);
    EXPECT_EQ(dir.bitsPerEntry(1024), 1024u);
    // Sizes that are not multiples of the 64-bit word still charge one
    // presence bit per node.
    FullMapDir odd(100);
    EXPECT_EQ(odd.bitsPerEntry(100), 100u);
    EXPECT_EQ(odd.bitsPerEntry(256), 256u);
}

TEST(FullMapDir, TracksSharersPastWordBoundariesAt1024Nodes)
{
    // The bit vector spans 16 words at 1024 nodes; sharers on both
    // sides of every word boundary must survive add/remove/sharers.
    FullMapDir dir(1024);
    const std::vector<NodeId> picks = {0,  63,  64,  65,  127, 128,
                                       511, 512, 767, 1023};
    for (NodeId n : picks)
        EXPECT_EQ(dir.tryAdd(0x40, n), DirAdd::added);
    EXPECT_EQ(dir.numSharers(0x40), picks.size());
    EXPECT_EQ(sortedSharers(dir, 0x40), picks);
    for (NodeId n : picks)
        EXPECT_TRUE(dir.contains(0x40, n));
    EXPECT_FALSE(dir.contains(0x40, 62));
    EXPECT_FALSE(dir.contains(0x40, 1022));
    dir.remove(0x40, 64);
    dir.remove(0x40, 1023);
    EXPECT_EQ(dir.numSharers(0x40), picks.size() - 2);
    EXPECT_FALSE(dir.contains(0x40, 64));
    EXPECT_TRUE(dir.contains(0x40, 65));
}

TEST(FullMapDir, OccupancyCountsAllWordsAt1024Nodes)
{
    FullMapDir dir(1024);
    for (NodeId n = 0; n < 1024; n += 3)
        dir.tryAdd(0x40, n);
    dir.tryAdd(0x80, 1000);
    DirOccupancy occ;
    dir.occupancy(occ);
    EXPECT_EQ(occ.entries, 2u);
    EXPECT_EQ(occ.pointersUsed, (1024u + 2u) / 3u + 1u);
    EXPECT_EQ(occ.pointerSlots, 2u * 1024u);
}

// ---------------------------------------------------------------- Limited

TEST(LimitedDir, OverflowsAtPointerLimit)
{
    LimitedDir dir(4);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(dir.tryAdd(0x40, n), DirAdd::added);
    EXPECT_EQ(dir.tryAdd(0x40, 9), DirAdd::overflow);
    // Already-present nodes do not overflow.
    EXPECT_EQ(dir.tryAdd(0x40, 2), DirAdd::present);
}

TEST(LimitedDir, RemoveFreesAPointer)
{
    LimitedDir dir(2);
    dir.tryAdd(0x40, 1);
    dir.tryAdd(0x40, 2);
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::overflow);
    dir.remove(0x40, 1);
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::added);
    EXPECT_EQ(sortedSharers(dir, 0x40), (std::vector<NodeId>{2, 3}));
}

TEST(LimitedDir, VictimSelectionIsRoundRobinAndDeterministic)
{
    LimitedDir dir(2);
    dir.tryAdd(0x40, 5);
    dir.tryAdd(0x40, 6);
    const NodeId v1 = dir.pickVictim(0x40);
    const NodeId v2 = dir.pickVictim(0x40);
    EXPECT_NE(v1, v2); // rotates
    EXPECT_TRUE(dir.contains(0x40, v1));
}

TEST(LimitedDir, PointerCostLogarithmicInN)
{
    LimitedDir dir(4);
    EXPECT_EQ(dir.bitsPerEntry(64), 4u * 6u);
    EXPECT_EQ(dir.bitsPerEntry(1024), 4u * 10u);
    EXPECT_EQ(LimitedDir::ceilLog2(1), 1u);
    EXPECT_EQ(LimitedDir::ceilLog2(2), 1u);
    EXPECT_EQ(LimitedDir::ceilLog2(3), 2u);
    EXPECT_EQ(LimitedDir::ceilLog2(64), 6u);
    EXPECT_EQ(LimitedDir::ceilLog2(65), 7u);
}

// -------------------------------------------------------------- LimitLESS

TEST(LimitlessDir, LocalBitNeverConsumesAPointer)
{
    LimitlessDir dir(/*self=*/7, /*pointers=*/2, /*local=*/true);
    EXPECT_EQ(dir.tryAdd(0x40, 1), DirAdd::added);
    EXPECT_EQ(dir.tryAdd(0x40, 2), DirAdd::added);
    // Pointer array full, but the home node still fits via the local bit
    // (paper Section 4.3: local reads never overflow).
    EXPECT_EQ(dir.tryAdd(0x40, 7), DirAdd::added);
    EXPECT_EQ(dir.tryAdd(0x40, 7), DirAdd::present);
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::overflow);
    EXPECT_EQ(dir.numSharers(0x40), 3u);
}

TEST(LimitlessDir, WithoutLocalBitHomeNodeCompetesForPointers)
{
    LimitlessDir dir(7, 2, false);
    dir.tryAdd(0x40, 1);
    dir.tryAdd(0x40, 2);
    EXPECT_EQ(dir.tryAdd(0x40, 7), DirAdd::overflow);
}

TEST(LimitlessDir, MetaStateDefaultsToNormal)
{
    LimitlessDir dir(0, 4, true);
    EXPECT_EQ(dir.meta(0x40), MetaState::normal);
    dir.setMeta(0x40, MetaState::trapOnWrite);
    EXPECT_EQ(dir.meta(0x40), MetaState::trapOnWrite);
    EXPECT_EQ(dir.meta(0x80), MetaState::normal);
}

TEST(LimitlessDir, PrevMetaRemembersWhyDiverted)
{
    LimitlessDir dir(0, 4, true);
    dir.setMeta(0x40, MetaState::trapOnWrite);
    dir.setMeta(0x40, MetaState::transInProgress);
    EXPECT_EQ(dir.prevMeta(0x40), MetaState::trapOnWrite);
}

TEST(LimitlessDir, SpillEmptiesPointersButKeepsLocalBit)
{
    LimitlessDir dir(7, 2, true);
    dir.tryAdd(0x40, 1);
    dir.tryAdd(0x40, 2);
    dir.tryAdd(0x40, 7); // local bit
    std::vector<NodeId> spilled;
    dir.spillPointers(0x40, spilled);
    std::sort(spilled.begin(), spilled.end());
    EXPECT_EQ(spilled, (std::vector<NodeId>{1, 2}));
    EXPECT_TRUE(dir.contains(0x40, 7));
    EXPECT_FALSE(dir.contains(0x40, 1));
    // Room for new pointers now.
    EXPECT_EQ(dir.tryAdd(0x40, 3), DirAdd::added);
}

TEST(LimitlessDir, EntryCostIsPointersPlusMetaPlusLocalBit)
{
    LimitlessDir dir(0, 4, true);
    EXPECT_EQ(dir.bitsPerEntry(64), 4u * 6u + 2u + 1u);
    LimitlessDir no_local(0, 4, false);
    EXPECT_EQ(no_local.bitsPerEntry(64), 4u * 6u + 2u);
}

TEST(LimitlessDir, MetaStateNames)
{
    EXPECT_STREQ(metaStateName(MetaState::normal), "Normal");
    EXPECT_STREQ(metaStateName(MetaState::transInProgress),
                 "Trans-In-Progress");
    EXPECT_STREQ(metaStateName(MetaState::trapOnWrite), "Trap-On-Write");
    EXPECT_STREQ(metaStateName(MetaState::trapAlways), "Trap-Always");
}

// ---------------------------------------------------------------- Chained

TEST(ChainedDir, HeadPushAndClear)
{
    ChainedDir dir;
    EXPECT_EQ(dir.head(0x40), invalidNode);
    dir.push(0x40, 3);
    EXPECT_EQ(dir.head(0x40), 3u);
    dir.push(0x40, 9);
    EXPECT_EQ(dir.head(0x40), 9u);
    EXPECT_EQ(dir.chainLength(0x40), 2u);
    dir.clear(0x40);
    EXPECT_EQ(dir.head(0x40), invalidNode);
    EXPECT_EQ(dir.chainLength(0x40), 0u);
}

TEST(ChainedDir, ConstantMemoryPerEntry)
{
    ChainedDir dir;
    EXPECT_EQ(dir.bitsPerEntry(64), 12u);   // head + count pointers
    EXPECT_EQ(dir.bitsPerEntry(1024), 20u);
}

} // namespace
} // namespace limitless
