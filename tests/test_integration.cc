/**
 * @file
 * End-to-end integration tests: full machines running real workloads
 * under every protocol, with workload data verification and quiescent
 * coherence checks (both performed inside runExperiment).
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "workload/hotspot.hh"
#include "workload/migratory.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"
#include "workload/weather.hh"
#include "workload/worker_set.hh"

namespace limitless
{
namespace
{

MachineConfig
smallMachine(ProtocolParams proto, NetworkKind net = NetworkKind::mesh)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = proto;
    cfg.network = net;
    cfg.seed = 7;
    return cfg;
}

std::vector<ProtocolParams>
allProtocols()
{
    return {
        protocols::fullMap(),
        protocols::dirNB(2),
        protocols::dirNB(4),
        protocols::limitlessStall(4, 50),
        protocols::limitlessEmulated(4),
        protocols::chained(),
    };
}

TEST(Integration, MultigridCompletesAndVerifiesUnderEveryProtocol)
{
    for (const auto &proto : allProtocols()) {
        MultigridParams wp;
        wp.iterations = 4;
        wp.interiorLines = 8;
        const auto out = runExperiment(
            smallMachine(proto),
            [&]() { return std::make_unique<Multigrid>(wp); });
        EXPECT_TRUE(out.completed) << out.label;
        EXPECT_GT(out.cycles, 0u) << out.label;
    }
}

TEST(Integration, WeatherCompletesAndVerifiesUnderEveryProtocol)
{
    for (const auto &proto : allProtocols()) {
        WeatherParams wp;
        wp.iterations = 4;
        wp.columnLines = 6;
        const auto out = runExperiment(
            smallMachine(proto),
            [&]() { return std::make_unique<Weather>(wp); });
        EXPECT_TRUE(out.completed) << out.label;
    }
}

TEST(Integration, HotspotCompletesUnderEveryProtocol)
{
    for (const auto &proto : allProtocols()) {
        HotspotParams hp;
        hp.iterations = 4;
        hp.hotLines = 2;
        hp.privLines = 4;
        const auto out = runExperiment(
            smallMachine(proto),
            [&]() { return std::make_unique<Hotspot>(hp); });
        EXPECT_TRUE(out.completed) << out.label;
    }
}

TEST(Integration, MigratoryCompletesUnderEveryProtocol)
{
    for (const auto &proto : allProtocols()) {
        MigratoryParams mp;
        mp.rounds = 2;
        mp.objectLines = 3;
        const auto out = runExperiment(
            smallMachine(proto),
            [&]() { return std::make_unique<Migratory>(mp); });
        EXPECT_TRUE(out.completed) << out.label;
    }
}

TEST(Integration, RandomStressVerifiesUnderEveryProtocol)
{
    for (const auto &proto : allProtocols()) {
        RandomStressParams rp;
        rp.opsPerProc = 80;
        const auto out = runExperiment(
            smallMachine(proto),
            [&]() { return std::make_unique<RandomStress>(rp); });
        EXPECT_TRUE(out.completed) << out.label;
    }
}

TEST(Integration, WorkerSetSweepRecordsWriteLatencies)
{
    WorkerSetParams wp;
    wp.workerSet = 6;
    wp.rounds = 3;
    const auto out = runExperiment(
        smallMachine(protocols::fullMap()),
        [&]() { return std::make_unique<WorkerSetSweep>(wp); });
    EXPECT_TRUE(out.completed);
}

TEST(Integration, IdealNetworkAlsoWorks)
{
    MultigridParams wp;
    wp.iterations = 3;
    const auto out = runExperiment(
        smallMachine(protocols::limitlessStall(4, 50), NetworkKind::ideal),
        [&]() { return std::make_unique<Multigrid>(wp); });
    EXPECT_TRUE(out.completed);
}

TEST(Integration, SingleNodeMachineDegenerateCase)
{
    MachineConfig cfg = smallMachine(protocols::fullMap());
    cfg.numNodes = 1;
    MultigridParams wp;
    wp.iterations = 2;
    const auto out = runExperiment(
        cfg, [&]() { return std::make_unique<Multigrid>(wp); });
    EXPECT_TRUE(out.completed);
}

TEST(Integration, NonSquareMeshWorks)
{
    MachineConfig cfg = smallMachine(protocols::dirNB(2));
    cfg.numNodes = 12; // resolves to a 4x3 mesh
    MultigridParams wp;
    wp.iterations = 2;
    const auto out = runExperiment(
        cfg, [&]() { return std::make_unique<Multigrid>(wp); });
    EXPECT_TRUE(out.completed);
}

} // namespace
} // namespace limitless
