/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace limitless
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); }, EventPriority::cpu);
    eq.schedule(5, [&]() { order.push_back(0); }, EventPriority::network);
    eq.schedule(5, [&]() { order.push_back(3); }, EventPriority::cpu);
    eq.schedule(5, [&]() { order.push_back(1); }, EventPriority::deliver);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 28u);
}

TEST(EventQueue, SameTickScheduleRunsThisTick)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { inner = true; });
    });
    eq.run();
    EXPECT_TRUE(inner);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t * 10, [&]() { ++count; });
    const auto ran = eq.runUntil(50);
    EXPECT_EQ(ran, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.pendingEvents(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 17; ++i)
        eq.schedule(i, []() {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 17u);
}

} // namespace
} // namespace limitless
