/** @file Unit tests for the deterministic event queue. */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"

namespace limitless
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(2); }, EventPriority::cpu);
    eq.schedule(5, [&]() { order.push_back(0); }, EventPriority::network);
    eq.schedule(5, [&]() { order.push_back(3); }, EventPriority::cpu);
    eq.schedule(5, [&]() { order.push_back(1); }, EventPriority::deliver);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 28u);
}

TEST(EventQueue, SameTickScheduleRunsThisTick)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(10, [&]() {
        eq.schedule(10, [&]() { inner = true; });
    });
    eq.run();
    EXPECT_TRUE(inner);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t * 10, [&]() { ++count; });
    const auto ran = eq.runUntil(50);
    EXPECT_EQ(ran, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.pendingEvents(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 17; ++i)
        eq.schedule(i, []() {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 17u);
}

TEST(EventQueue, CallbacksWithSmallCapturesStoreInline)
{
    // The whole point of the inline callback type: the simulator's hot
    // captures ([this], [this, ptr], [this, ptr, tick]) never allocate.
    struct Fake
    {
        int x;
    } fake{0};
    void *p = &fake;
    Tick t = 0;
    auto small = [&fake]() { ++fake.x; };
    auto medium = [&fake, p, t]() { (void)p; (void)t; ++fake.x; };
    static_assert(EventQueue::Callback::fitsInline<decltype(small)>);
    static_assert(EventQueue::Callback::fitsInline<decltype(medium)>);
    EventQueue::Callback cb(std::move(medium));
    EXPECT_TRUE(cb.storedInline());
}

/**
 * Property test: the timing-wheel + overflow-heap queue executes a large
 * random schedule in exactly the order a plain (tick, priority, seq)
 * min-heap would. The reference is a std::set ordered by that key —
 * semantically a binary heap with a total order, minus the wheel.
 *
 * Events may reschedule follow-ups (derived deterministically from the
 * parent id), so same-tick insertion during execution, wheel wrap-around
 * and heap->wheel migration are all exercised. Both executions must
 * visit identical id sequences.
 */
TEST(EventQueueProperty, MatchesReferenceHeapOver100kRandomEvents)
{
    constexpr int kInitial = 100'000;
    constexpr std::uint64_t kMaxTick = 1u << 20; // far beyond the wheel
    const std::uint32_t prios[] = {0, 10, 20, 30, 90};

    // Follow-up rule, a pure function of the parent id so the real and
    // reference runs derive the same children without sharing state.
    auto spawns = [](std::uint64_t id) { return id % 7 == 0; };
    auto childDelay = [](std::uint64_t id) { return (id * 2654435761u) % 2000; };
    auto childPrio = [&](std::uint64_t id) { return prios[id % 5]; };

    std::mt19937_64 rng(0xA1ECAFEu);
    std::vector<std::uint64_t> whens(kInitial);
    std::vector<std::uint32_t> initPrios(kInitial);
    for (int i = 0; i < kInitial; ++i) {
        whens[i] = rng() % kMaxTick;
        initPrios[i] = prios[rng() % 5];
    }

    // Real run.
    EventQueue eq;
    std::vector<std::uint64_t> real_order;
    real_order.reserve(kInitial * 2);
    std::uint64_t next_child = kInitial;
    std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
        real_order.push_back(id);
        if (spawns(id)) {
            const std::uint64_t child = next_child++;
            eq.schedule(eq.now() + childDelay(id),
                        [&fire, child]() { fire(child); },
                        childPrio(id));
        }
    };
    for (std::uint64_t i = 0; i < kInitial; ++i)
        eq.schedule(whens[i], [&fire, i]() { fire(i); }, initPrios[i]);
    eq.run();

    // Reference run: pop the (when, priority, seq) minimum each step.
    using Key = std::tuple<std::uint64_t, std::uint32_t, std::uint64_t,
                           std::uint64_t>; // when, prio, seq, id
    std::set<Key> ref;
    std::uint64_t seq = 0;
    for (std::uint64_t i = 0; i < kInitial; ++i)
        ref.insert({whens[i], initPrios[i], seq++, i});
    std::vector<std::uint64_t> ref_order;
    ref_order.reserve(real_order.size());
    std::uint64_t ref_next_child = kInitial;
    while (!ref.empty()) {
        const auto [when, prio, s, id] = *ref.begin();
        ref.erase(ref.begin());
        ref_order.push_back(id);
        if (spawns(id)) {
            const std::uint64_t child = ref_next_child++;
            ref.insert({when + childDelay(id), childPrio(id), seq++, child});
        }
    }

    ASSERT_EQ(real_order.size(), ref_order.size());
    // Element-wise compare without dumping 100k values on failure.
    for (std::size_t i = 0; i < real_order.size(); ++i)
        ASSERT_EQ(real_order[i], ref_order[i]) << "divergence at step " << i;
    EXPECT_EQ(eq.executedEvents(), real_order.size());
}

} // namespace
} // namespace limitless
