/**
 * @file
 * Update-mode coherence tests (Section 6 extension): writes to
 * designated lines refresh cached copies in place instead of
 * invalidating them.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"

namespace limitless
{
namespace
{

MachineConfig
machineFor(ProtocolParams proto, unsigned nodes = 8)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.seed = 61;
    return cfg;
}

TEST(UpdateMode, WriteRefreshesCachedCopiesWithoutInvalidation)
{
    Machine m(machineFor(protocols::limitlessStall(4, 50)));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    m.policy().markUpdateMode(m.addressMap().lineAddr(a));

    const Addr gate = m.addressMap().addrOnNode(1, 1);
    // Readers cache the line; the writer updates it; readers re-read
    // and must see the new value while keeping their copies resident.
    for (NodeId p = 1; p <= 4; ++p) {
        m.spawnOn(p, [&, a, gate](ThreadApi &t) -> Task<> {
            EXPECT_EQ(co_await t.read(a), 0u);
            co_await t.fetchAdd(gate, 1); // gate is a normal line
            while ((co_await t.read(gate)) != 5)
                co_await t.compute(10);
            EXPECT_EQ(co_await t.read(a), 99u);
        });
    }
    m.spawnOn(5, [&, a, gate](ThreadApi &t) -> Task<> {
        while ((co_await t.read(gate)) != 4)
            co_await t.compute(10);
        co_await t.write(a, 99);
        co_await t.fetchAdd(gate, 1);
    });
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();

    // Every reader still holds the line (no invalidation), refreshed.
    const Addr line = m.addressMap().lineAddr(a);
    for (NodeId p = 1; p <= 4; ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        ASSERT_NE(cl, nullptr) << "copy at node " << p << " invalidated";
        EXPECT_EQ(cl->state, CacheState::readOnly);
        EXPECT_EQ(cl->words[0], 99u);
    }
    EXPECT_GE(m.sumCounter("mem", "write_updates"), 1u);
    // (The gate line is ordinary invalidate-mode, so machine-wide INV
    // counts are nonzero; the update line's copies surviving above is
    // the no-invalidation property.)
}

TEST(UpdateMode, StoreReturnsOldValueAndSerializesAtHome)
{
    Machine m(machineFor(protocols::fullMap()));
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.policy().markUpdateMode(m.addressMap().lineAddr(a));
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        EXPECT_EQ(co_await t.swap(a, 5), 0u);
        EXPECT_EQ(co_await t.swap(a, 7), 5u);
        EXPECT_EQ(co_await t.fetchAdd(a, 3), 7u);
        EXPECT_EQ(co_await t.read(a), 10u);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(UpdateMode, ConcurrentFetchAddsSumExactly)
{
    // Atomicity now lives at the home, not in exclusive ownership.
    Machine m(machineFor(protocols::limitlessStall(2, 50)));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    m.policy().markUpdateMode(m.addressMap().lineAddr(a));
    for (NodeId p = 0; p < 8; ++p) {
        m.spawnOn(p, [a](ThreadApi &t) -> Task<> {
            for (int i = 0; i < 20; ++i)
                co_await t.fetchAdd(a, 1);
        });
    }
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
    const Addr line = m.addressMap().lineAddr(a);
    EXPECT_EQ(m.node(0).mem().readLine(line)[0], 8u * 20u);
}

TEST(UpdateMode, MixedUpdateAndInvalidateLinesCoexist)
{
    Machine m(machineFor(protocols::limitlessStall(4, 50)));
    const Addr upd = m.addressMap().addrOnNode(0, 0);
    const Addr inv = m.addressMap().addrOnNode(1, 1);
    m.policy().markUpdateMode(m.addressMap().lineAddr(upd));
    for (NodeId p = 0; p < 8; ++p) {
        m.spawnOn(p, [&, upd, inv](ThreadApi &t) -> Task<> {
            for (int i = 0; i < 10; ++i) {
                co_await t.fetchAdd(upd, 1);
                co_await t.fetchAdd(inv, 1);
                co_await t.read(upd);
                co_await t.compute(5);
            }
        });
    }
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
    const Addr uline = m.addressMap().lineAddr(upd);
    const Addr iline = m.addressMap().lineAddr(inv);
    EXPECT_EQ(m.node(0).mem().readLine(uline)[0], 80u);
    // The invalidate-mode counter may end dirty in a cache.
    std::uint64_t v = 0;
    bool dirty = false;
    for (NodeId p = 0; p < 8 && !dirty; ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(iline);
        if (cl && cl->state == CacheState::readWrite) {
            v = cl->words[m.addressMap().wordOf(inv)];
            dirty = true;
        }
    }
    if (!dirty)
        v = m.node(1).mem().readLine(iline)[m.addressMap().wordOf(inv)];
    EXPECT_EQ(v, 80u);
}

TEST(UpdateMode, ReadersNeverMissAfterFirstFetch)
{
    // The headline benefit: a producer/consumer pattern where consumers
    // keep hitting in cache across producer writes.
    Machine m(machineFor(protocols::fullMap()));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    m.policy().markUpdateMode(m.addressMap().lineAddr(a));
    const Addr phase = m.addressMap().addrOnNode(1, 1);

    for (NodeId p = 1; p <= 6; ++p) {
        m.spawnOn(p, [&, a, phase](ThreadApi &t) -> Task<> {
            co_await t.read(a); // prime the copy
            co_await t.fetchAdd(phase, 1);
            std::uint64_t last = 0;
            for (int i = 0; i < 30; ++i) {
                const std::uint64_t v = co_await t.read(a);
                EXPECT_GE(v, last);
                last = v;
                co_await t.compute(7);
            }
        });
    }
    m.spawnOn(7, [&, a, phase](ThreadApi &t) -> Task<> {
        while ((co_await t.read(phase)) != 6)
            co_await t.compute(10);
        for (std::uint64_t i = 1; i <= 10; ++i) {
            co_await t.write(a, i);
            co_await t.compute(25);
        }
    });
    ASSERT_TRUE(m.run().completed);

    // Consumers' reads after priming: all hits (the line was never
    // invalidated). Each consumer missed at most twice on this line.
    const std::uint64_t misses = m.sumCounter("cache", "misses");
    const std::uint64_t wupd = m.sumCounter("cache", "wupd");
    EXPECT_EQ(wupd, 10u);
    EXPECT_LT(misses, 40u) << "consumers should hit their updated copies";
}

} // namespace
} // namespace limitless
