/**
 * @file
 * Cache-controller unit tests against a captured message stream: request
 * generation, install/complete, replacement traffic, invalidation
 * service, BUSY retry, and set-conflict serialization — the cache half
 * of the protocol in isolation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache_controller.hh"
#include "machine/address_map.hh"

namespace limitless
{
namespace
{

struct CacheHarness
{
    EventQueue eq;
    AddressMap amap{4, 16};
    CacheController cache;
    std::vector<PacketPtr> sent;
    std::vector<std::uint64_t> completions;

    explicit CacheHarness(CacheParams params = {},
                          ProtocolKind proto = ProtocolKind::fullMap)
        : cache(eq, /*self=*/1, amap, params, proto, /*seed=*/5)
    {
        cache.setSend([this](PacketPtr p) { sent.push_back(std::move(p)); });
    }

    /** Issue an access and run the queue (request goes out). */
    CacheController::IssueClass
    access(MemOpKind kind, Addr a, std::uint64_t v = 0)
    {
        const auto klass = cache.access(
            MemOp{kind, a, v},
            [this](std::uint64_t value) { completions.push_back(value); });
        eq.run();
        return klass;
    }

    /** Deliver a memory-to-cache packet. */
    void
    reply(Opcode op, Addr a, std::vector<std::uint64_t> data = {},
          NodeId src = 0)
    {
        PacketPtr pkt = opcodeCarriesData(op)
                            ? makeDataPacket(src, 1, op, a, data)
                            : makeProtocolPacket(src, 1, op, a);
        if (op == Opcode::INV)
            pkt->operands.push_back(src);
        cache.handlePacket(std::move(pkt));
        eq.run();
    }

    unsigned
    count(Opcode op) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += p->opcode == op;
        return n;
    }

    const Packet *
    last() const
    {
        return sent.empty() ? nullptr : sent.back().get();
    }
};

TEST(CacheController, ReadMissSendsRreqToTheHome)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    EXPECT_EQ(h.access(MemOpKind::load, a),
              CacheController::IssueClass::miss);
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.last()->opcode, Opcode::RREQ);
    EXPECT_EQ(h.last()->dest, 2u);
    EXPECT_TRUE(h.completions.empty()) << "no data yet";
}

TEST(CacheController, RdataInstallsAndCompletesTheLoad)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {1234, 5678});
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0], 1234u);
    const CacheLine *cl = h.cache.array().lookup(h.amap.lineAddr(a));
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->state, CacheState::readOnly);
    // Second load: hit, served locally, no new message.
    const auto before = h.sent.size();
    EXPECT_EQ(h.access(MemOpKind::load, a + 8),
              CacheController::IssueClass::hit);
    EXPECT_EQ(h.completions.back(), 5678u);
    EXPECT_EQ(h.sent.size(), before);
}

TEST(CacheController, WriteNeedsExclusiveEvenWhenReadOnlyResident)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {0, 0});
    // Upgrade: WREQ, no REPM (same line stays resident).
    EXPECT_EQ(h.access(MemOpKind::store, a, 42),
              CacheController::IssueClass::miss);
    EXPECT_EQ(h.count(Opcode::WREQ), 1u);
    EXPECT_EQ(h.count(Opcode::REPM), 0u);
    h.reply(Opcode::WDATA, h.amap.lineAddr(a), {0, 0});
    const CacheLine *cl = h.cache.array().lookup(h.amap.lineAddr(a));
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->state, CacheState::readWrite);
    EXPECT_EQ(cl->words[0], 42u);
    // Subsequent store: pure hit.
    EXPECT_EQ(h.access(MemOpKind::store, a, 43),
              CacheController::IssueClass::hit);
    EXPECT_EQ(cl->words[0], 43u);
}

TEST(CacheController, DirtyVictimIsWrittenBackWithItsData)
{
    CacheParams params;
    params.cacheBytes = 4 * 16; // 4 sets
    CacheHarness h(params);
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::store, a, 0xBEEF);
    h.reply(Opcode::WDATA, h.amap.lineAddr(a), {0, 0});
    // Conflicting line (same set): slots spaced by numSets.
    const Addr b = h.amap.addrOnNode(2, 4);
    ASSERT_EQ(h.cache.array().indexOf(h.amap.lineAddr(a)),
              h.cache.array().indexOf(h.amap.lineAddr(b)));
    h.sent.clear();
    h.access(MemOpKind::load, b);
    ASSERT_EQ(h.count(Opcode::REPM), 1u);
    const Packet *repm = h.sent[0].get();
    EXPECT_EQ(repm->opcode, Opcode::REPM);
    EXPECT_EQ(repm->data[0], 0xBEEFu);
    EXPECT_EQ(h.count(Opcode::RREQ), 1u);
}

TEST(CacheController, CleanVictimIsDroppedSilently)
{
    CacheParams params;
    params.cacheBytes = 4 * 16;
    CacheHarness h(params);
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {0, 0});
    h.sent.clear();
    const Addr b = h.amap.addrOnNode(2, 4);
    h.access(MemOpKind::load, b);
    EXPECT_EQ(h.count(Opcode::REPM), 0u) << "no write-back for clean";
    EXPECT_EQ(h.count(Opcode::RREQ), 1u);
}

TEST(CacheController, InvOnReadOnlyAcksAndInvalidates)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {7, 8});
    h.sent.clear();
    h.reply(Opcode::INV, h.amap.lineAddr(a), {}, 2);
    ASSERT_EQ(h.count(Opcode::ACKC), 1u);
    EXPECT_EQ(h.last()->dest, 2u);
    EXPECT_EQ(h.cache.array().lookup(h.amap.lineAddr(a)), nullptr);
}

TEST(CacheController, InvOnDirtyReturnsDataViaUpdate)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::store, a, 0xAB);
    h.reply(Opcode::WDATA, h.amap.lineAddr(a), {0, 0});
    h.sent.clear();
    h.reply(Opcode::INV, h.amap.lineAddr(a), {}, 2);
    ASSERT_EQ(h.count(Opcode::UPDATE), 1u);
    EXPECT_EQ(h.last()->data[0], 0xABu);
    EXPECT_EQ(h.count(Opcode::ACKC), 0u);
}

TEST(CacheController, SpuriousInvForAbsentLineStillAcks)
{
    CacheHarness h;
    const Addr line = h.amap.lineAddr(h.amap.addrOnNode(2, 0));
    h.reply(Opcode::INV, line, {}, 2);
    EXPECT_EQ(h.count(Opcode::ACKC), 1u);
    const auto *spurious = static_cast<const Counter *>(
        h.cache.stats().find("spurious_invs"));
    EXPECT_EQ(spurious->value(), 1u);
}

TEST(CacheController, BusyTriggersRetryWithBackoff)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    ASSERT_EQ(h.count(Opcode::RREQ), 1u);
    const Tick before = h.eq.now();
    h.reply(Opcode::BUSY, h.amap.lineAddr(a));
    EXPECT_EQ(h.count(Opcode::RREQ), 2u) << "request resent";
    EXPECT_GT(h.eq.now(), before) << "after a backoff delay";
    // Second BUSY: the delay grows (exponential backoff).
    const Tick t1 = h.eq.now();
    h.reply(Opcode::BUSY, h.amap.lineAddr(a));
    EXPECT_EQ(h.count(Opcode::RREQ), 3u);
    EXPECT_GT(h.eq.now() - t1, 0u);
    // Eventually served.
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {5, 6});
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0], 5u);
}

TEST(CacheController, AccessesToALineWithPendingTxnAreSerialized)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    // Second access to the same line while the fill is outstanding.
    h.access(MemOpKind::load, a + 8);
    EXPECT_EQ(h.count(Opcode::RREQ), 1u) << "no duplicate request";
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {11, 22});
    // Both complete: the second from the freshly installed line.
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0], 11u);
    EXPECT_EQ(h.completions[1], 22u);
}

TEST(CacheController, FetchAddAppliesAtomicallyOnExclusiveData)
{
    CacheHarness h;
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::fetchAdd, a, 5);
    EXPECT_EQ(h.count(Opcode::WREQ), 1u) << "RMW needs ownership";
    h.reply(Opcode::WDATA, h.amap.lineAddr(a), {100, 0});
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0], 100u) << "returns the old value";
    const CacheLine *cl = h.cache.array().lookup(h.amap.lineAddr(a));
    EXPECT_EQ(cl->words[0], 105u);
}

TEST(CacheController, IdleReportsOutstandingWork)
{
    CacheHarness h;
    EXPECT_TRUE(h.cache.idle());
    const Addr a = h.amap.addrOnNode(2, 0);
    h.access(MemOpKind::load, a);
    EXPECT_FALSE(h.cache.idle());
    h.reply(Opcode::RDATA, h.amap.lineAddr(a), {0, 0});
    EXPECT_TRUE(h.cache.idle());
}

} // namespace
} // namespace limitless
