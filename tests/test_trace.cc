/**
 * @file
 * Trace substrate tests: serialization round-trips, capture semantics
 * (synchronization references excluded, episodes aligned), and
 * post-mortem replay across protocols — the ASIM Figure 6 methodology.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_replay.hh"
#include "workload/multigrid.hh"
#include "workload/weather.hh"

namespace limitless
{
namespace
{

MachineConfig
machineFor(ProtocolParams proto, unsigned nodes = 16)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.seed = 91;
    return cfg;
}

TraceLog
captureMultigrid(unsigned nodes, unsigned iterations)
{
    Machine m(machineFor(protocols::fullMap(), nodes));
    MultigridParams wp;
    wp.iterations = iterations;
    wp.interiorLines = 6;
    Multigrid wl(wp);
    wl.install(m);
    TraceCapture capture(m);
    const RunResult r = m.run();
    EXPECT_TRUE(r.completed);
    wl.verify(m);
    return capture.takeLog();
}

TEST(Trace, SaveLoadRoundTripsExactly)
{
    TraceLog log(3);
    log.append(0, TraceOp{TraceKind::read, 0x40, 0, 0});
    log.append(0, TraceOp{TraceKind::write, 0x80, 1234, 0});
    log.append(1, TraceOp{TraceKind::fetchAdd, 0xC0, 7, 0});
    log.append(1, TraceOp{TraceKind::compute, 0, 0, 55});
    log.append(2, TraceOp{TraceKind::barrier, 0, 0, 0});
    log.append(2, TraceOp{TraceKind::swap, 0x100, 9, 0});

    std::stringstream ss;
    log.save(ss);
    const TraceLog copy = TraceLog::load(ss);
    EXPECT_TRUE(copy == log);
    EXPECT_EQ(copy.totalOps(), 6u);
    EXPECT_EQ(copy.dataOps(), 4u);
}

TEST(Trace, CaptureExcludesBarrierInternals)
{
    Machine m(machineFor(protocols::fullMap(), 8));
    MultigridParams wp;
    wp.iterations = 2;
    wp.interiorLines = 4;
    Multigrid wl(wp);
    wl.install(m);
    TraceCapture capture(m);
    ASSERT_TRUE(m.run().completed);

    const TraceLog &log = capture.log();
    // Each proc ran 2 iterations x 2 barriers.
    for (unsigned p = 0; p < 8; ++p) {
        unsigned barriers = 0;
        for (const TraceOp &op : log.stream(p)) {
            barriers += op.kind == TraceKind::barrier;
            if (op.kind == TraceKind::fetchAdd) {
                ADD_FAILURE() << "barrier-internal fetch-add leaked into "
                                 "the trace (proc " << p << ")";
            }
        }
        EXPECT_EQ(barriers, 4u) << "proc " << p;
    }
    // The trace is far smaller than the raw op count (spins excluded).
    EXPECT_LT(log.dataOps(), m.sumCounter("proc", "ops"));
    EXPECT_GT(log.dataOps(), 0u);
}

TEST(Trace, ReplayExecutesEveryRecordUnderEveryProtocol)
{
    const TraceLog log = captureMultigrid(16, 3);
    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(2),
          protocols::limitlessStall(4, 50), protocols::chained()}) {
        Machine m(machineFor(proto, 16));
        TraceReplay replay(log);
        replay.install(m);
        const RunResult r = m.run();
        ASSERT_TRUE(r.completed) << proto.name();
        replay.verify(m);
        CoherenceMonitor(m).checkQuiescent();
        EXPECT_EQ(replay.opsReplayed(), log.totalOps()) << proto.name();
    }
}

TEST(Trace, ReplayIsDeterministic)
{
    const TraceLog log = captureMultigrid(8, 2);
    auto run_once = [&]() {
        Machine m(machineFor(protocols::limitlessStall(4, 50), 8));
        TraceReplay replay(log);
        replay.install(m);
        const RunResult r = m.run();
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Trace, WeatherTraceReplayPreservesTheFigure8Ordering)
{
    // The paper's methodology end to end: capture Weather once, replay
    // under limited and full-map directories; the hot-spot pathology
    // must survive the trace round trip.
    Machine cap(machineFor(protocols::fullMap(), 16));
    WeatherParams wp;
    wp.iterations = 6;
    wp.columnLines = 8;
    Weather wl(wp);
    wl.install(cap);
    TraceCapture capture(cap);
    ASSERT_TRUE(cap.run().completed);
    wl.verify(cap);
    const TraceLog log = capture.takeLog();

    Tick cycles[2] = {};
    int i = 0;
    for (const auto &proto :
         {protocols::dirNB(4), protocols::fullMap()}) {
        Machine m(machineFor(proto, 16));
        TraceReplay replay(log);
        replay.install(m);
        const RunResult r = m.run();
        ASSERT_TRUE(r.completed);
        replay.verify(m);
        cycles[i++] = r.cycles;
    }
    EXPECT_GT(cycles[0], cycles[1] * 5 / 4)
        << "Dir4NB must still thrash on the replayed hot variable";
}

TEST(Trace, ReplayRejectsMismatchedMachineSize)
{
    const TraceLog log = captureMultigrid(8, 1);
    Machine m(machineFor(protocols::fullMap(), 16));
    TraceReplay replay(log);
    EXPECT_DEATH(replay.install(m), "streams");
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream ss("not a trace at all");
    EXPECT_DEATH(TraceLog::load(ss), "bad header");
}

} // namespace
} // namespace limitless
