/** @file Unit tests for the interval sampler. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/sampler.hh"

namespace limitless
{
namespace
{

TEST(Sampler, RecordsPerIntervalDeltas)
{
    EventQueue eq;
    Counter counter("c", "");
    Sampler sampler(eq, 10);
    sampler.addCounter("rate", counter);
    // Bump the counter at known times.
    for (Tick t = 1; t <= 50; ++t) {
        eq.schedule(t, [&counter]() { counter += 2; });
    }
    sampler.setStopPredicate([&eq]() { return eq.now() >= 50; });
    sampler.start();
    eq.run();

    const auto &values = sampler.values("rate");
    ASSERT_GE(values.size(), 4u);
    for (double v : values)
        EXPECT_DOUBLE_EQ(v, 20.0); // 10 ticks x 2 per tick
}

TEST(Sampler, StopPredicateEndsSampling)
{
    EventQueue eq;
    Counter counter("c", "");
    Sampler sampler(eq, 5);
    sampler.addCounter("x", counter);
    sampler.setStopPredicate([&eq]() { return eq.now() >= 20; });
    sampler.start();
    // Keep the queue alive well past the stop point.
    eq.schedule(200, []() {});
    eq.run();
    EXPECT_LE(sampler.samples(), 5u);
    EXPECT_EQ(eq.now(), 200u) << "queue must drain past the sampler";
}

TEST(Sampler, ExplicitStopAlsoWorks)
{
    EventQueue eq;
    Counter counter("c", "");
    Sampler sampler(eq, 5);
    sampler.addCounter("x", counter);
    sampler.start();
    eq.schedule(18, [&sampler]() { sampler.stop(); });
    eq.run();
    EXPECT_LE(sampler.samples(), 4u);
}

TEST(Sampler, ProfileRendersOneRowPerSeries)
{
    EventQueue eq;
    Counter a("a", ""), b("b", "");
    Sampler sampler(eq, 2);
    sampler.addCounter("alpha", a);
    sampler.addCounter("beta", b);
    for (Tick t = 1; t <= 20; ++t)
        eq.schedule(t, [&a, t]() { a += t % 3; });
    sampler.setStopPredicate([&eq]() { return eq.now() >= 20; });
    sampler.start();
    eq.run();

    std::ostringstream os;
    sampler.printProfile(os, 8);
    const std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("peak"), std::string::npos);
}

TEST(Sampler, UnknownSeriesNameIsFatal)
{
    EventQueue eq;
    Sampler sampler(eq, 5);
    EXPECT_DEATH(sampler.values("nope"), "no series");
}

} // namespace
} // namespace limitless
