/**
 * @file
 * Coherence-monitor negative tests: a checker that cannot fail proves
 * nothing, so these corrupt machine state deliberately and assert the
 * monitor catches each class of violation. Plus home-FSM rejection of
 * malformed packets.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"

namespace limitless
{
namespace
{

MachineConfig
tiny()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = protocols::fullMap();
    cfg.seed = 3;
    return cfg;
}

/** Run a trivial program so caches hold known lines. */
void
prime(Machine &m, Addr a)
{
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> { co_await t.read(a); });
    m.spawnOn(1, [a](ThreadApi &t) -> Task<> { co_await t.read(a); });
    ASSERT_TRUE(m.run().completed);
}

TEST(CoherenceMonitorNegative, CleanMachinePasses)
{
    Machine m(tiny());
    prime(m, m.addressMap().addrOnNode(2, 0));
    CoherenceMonitor(m).checkQuiescent(); // must not abort
}

TEST(CoherenceMonitorNegative, DetectsTwoWriters)
{
    Machine m(tiny());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    prime(m, a);
    const Addr line = m.addressMap().lineAddr(a);
    // Corrupt: promote both read-only copies to Read-Write.
    m.node(0).cache().array().lookup(line)->state =
        CacheState::readWrite;
    m.node(1).cache().array().lookup(line)->state =
        CacheState::readWrite;
    EXPECT_DEATH(CoherenceMonitor(m).checkGlobalInvariants(),
                 "Read-Write copies");
}

TEST(CoherenceMonitorNegative, DetectsWriterAlongsideReaders)
{
    Machine m(tiny());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    prime(m, a);
    const Addr line = m.addressMap().lineAddr(a);
    m.node(0).cache().array().lookup(line)->state =
        CacheState::readWrite;
    EXPECT_DEATH(CoherenceMonitor(m).checkGlobalInvariants(),
                 "alongside");
}

TEST(CoherenceMonitorNegative, DetectsUntrackedCopy)
{
    Machine m(tiny());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    prime(m, a);
    const Addr line = m.addressMap().lineAddr(a);
    // Corrupt: erase node 1 from the directory while it holds a copy.
    m.node(2).mem().directory().remove(line, 1);
    EXPECT_DEATH(CoherenceMonitor(m).checkQuiescent(),
                 "neither the directory");
}

TEST(CoherenceMonitorNegative, DetectsStaleData)
{
    Machine m(tiny());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    prime(m, a);
    const Addr line = m.addressMap().lineAddr(a);
    // Corrupt: a read-only copy's words diverge from memory.
    m.node(1).cache().array().lookup(line)->words[0] ^= 0xDEAD;
    EXPECT_DEATH(CoherenceMonitor(m).checkQuiescent(), "memory has");
}

TEST(CoherenceMonitorNegative, DetectsStuckTransaction)
{
    Machine m(tiny());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    prime(m, a);
    const Addr line = m.addressMap().lineAddr(a);
    m.node(2).mem().setLineState(line, MemState::writeTransaction);
    EXPECT_DEATH(CoherenceMonitor(m).checkQuiescent(), "stuck");
}

// ----------------------------------------------- malformed-packet guards

TEST(HomeFsmGuards, RejectsRepmFromNonOwner)
{
    EventQueue eq;
    AddressMap amap(4, 16);
    MemoryController mc(eq, 0, amap, protocols::fullMap(), MemParams{});
    mc.setSend([](PacketPtr) {});
    const Addr line = amap.addrOnNode(0, 0);
    mc.enqueue(makeProtocolPacket(1, 0, Opcode::WREQ, line));
    eq.run();
    EXPECT_DEATH(
        {
            mc.enqueue(
                makeDataPacket(2, 0, Opcode::REPM, line, {1, 2}));
            eq.run();
        },
        "REPM from a non-owner");
}

TEST(HomeFsmGuards, RejectsPacketsForForeignLines)
{
    EventQueue eq;
    AddressMap amap(4, 16);
    MemoryController mc(eq, 0, amap, protocols::fullMap(), MemParams{});
    mc.setSend([](PacketPtr) {});
    const Addr foreign = amap.addrOnNode(2, 0);
    EXPECT_DEATH(
        mc.enqueue(makeProtocolPacket(1, 0, Opcode::RREQ, foreign)),
        "wrong home");
}

TEST(HomeFsmGuards, RejectsUpdateInReadOnly)
{
    EventQueue eq;
    AddressMap amap(4, 16);
    MemoryController mc(eq, 0, amap, protocols::fullMap(), MemParams{});
    mc.setSend([](PacketPtr) {});
    const Addr line = amap.addrOnNode(0, 0);
    // The transition engine panics on the undeclared (state, opcode)
    // pair, dumping the postmortem ring on the way out.
    EXPECT_DEATH(
        {
            mc.enqueue(
                makeDataPacket(1, 0, Opcode::UPDATE, line, {1, 2}));
            eq.run();
        },
        "no transition for \\(Read-Only, UPDATE\\)");
}

} // namespace
} // namespace limitless
