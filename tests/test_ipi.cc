/**
 * @file
 * IPI interface tests: queueing, edge-triggered interrupts, overflow
 * accounting, the packet-launch path, and end-to-end interrupt-class
 * message delivery between nodes of a machine.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "ipi/ipi_interface.hh"
#include "machine/machine.hh"

namespace limitless
{
namespace
{

TEST(Ipi, StartsEmpty)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 4);
    EXPECT_TRUE(ipi.empty());
    EXPECT_EQ(ipi.peek(), nullptr);
    EXPECT_EQ(ipi.pop(), nullptr);
}

TEST(Ipi, PushInterruptsOnEmptyToNonEmptyEdge)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 4);
    int interrupts = 0;
    ipi.setInterrupt([&]() { ++interrupts; });
    ipi.pushInput(makeProtocolPacket(1, 0, Opcode::RREQ, 0x40));
    EXPECT_EQ(interrupts, 1);
    ipi.pushInput(makeProtocolPacket(2, 0, Opcode::RREQ, 0x80));
    EXPECT_EQ(interrupts, 1) << "edge-triggered: no second interrupt";
    (void)ipi.pop();
    (void)ipi.pop();
    ipi.pushInput(makeProtocolPacket(3, 0, Opcode::RREQ, 0xC0));
    EXPECT_EQ(interrupts, 2);
}

TEST(Ipi, HeaderAndOperandsReadableBeforePop)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 4);
    ipi.setInterrupt([]() {});
    ipi.pushInput(makeInterruptPacket(5, 0, Opcode::IPI_MESSAGE,
                                      {10, 20}, {30}));
    const Packet *head = ipi.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->src, 5u);
    EXPECT_EQ(head->operands[1], 20u);
    PacketPtr popped = ipi.pop();
    EXPECT_EQ(popped->data[0], 30u);
    EXPECT_TRUE(ipi.empty());
}

TEST(Ipi, FifoOrder)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 8);
    ipi.setInterrupt([]() {});
    for (Addr a = 0x40; a <= 0x100; a += 0x40)
        ipi.pushInput(makeProtocolPacket(1, 0, Opcode::RREQ, a));
    Addr expect = 0x40;
    while (!ipi.empty()) {
        EXPECT_EQ(ipi.pop()->addr(), expect);
        expect += 0x40;
    }
}

TEST(Ipi, OverflowIsCountedNotDropped)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 2);
    ipi.setInterrupt([]() {});
    for (int i = 0; i < 5; ++i)
        ipi.pushInput(makeProtocolPacket(1, 0, Opcode::RREQ, 0x40 * i));
    const auto *overflows =
        static_cast<const Counter *>(ipi.stats().find("overflows"));
    EXPECT_EQ(overflows->value(), 3u);
    unsigned drained = 0;
    while (ipi.pop())
        ++drained;
    EXPECT_EQ(drained, 5u) << "overflow spills, never loses packets";
}

TEST(Ipi, SendLaunchesThroughTheSendPath)
{
    EventQueue eq;
    IpiInterface ipi(eq, 0, 4);
    PacketPtr captured;
    ipi.setSendPath([&](PacketPtr p) { captured = std::move(p); });
    ipi.send(makeInterruptPacket(0, 3, Opcode::IPI_MESSAGE, {7}));
    ASSERT_NE(captured, nullptr);
    EXPECT_EQ(captured->dest, 3u);
    const auto *sent =
        static_cast<const Counter *>(ipi.stats().find("sent"));
    EXPECT_EQ(sent->value(), 1u);
}

TEST(Ipi, InterruptClassPacketsRouteToIpiAcrossTheMachine)
{
    // End-to-end: a software message sent from node 1 lands in node 2's
    // IPI input queue (the Node dispatches interrupt-class packets there).
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = protocols::fullMap();
    Machine m(cfg);
    unsigned delivered = 0;
    std::uint64_t seen_operand = 0;
    std::size_t seen_words = 0;
    m.node(2).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &msg) {
            ++delivered;
            seen_operand = msg.operands.at(0);
            seen_words = msg.data.size();
        });
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        m.node(1).ipi().send(makeInterruptPacket(
            1, 2, Opcode::IPI_MESSAGE, {0xCAFE}, {1, 2, 3}));
        co_await t.compute(1);
    });
    m.spawnOn(2, [](ThreadApi &t) -> Task<> { co_await t.compute(80); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(seen_operand, 0xCAFEu);
    EXPECT_EQ(seen_words, 3u);
}

} // namespace
} // namespace limitless
