/**
 * @file
 * Directed tests for the memory-side FSM: every transition of the
 * paper's Table 2 / Figure 2, plus the message crossings the annotation
 * implies (REPM racing an INV), exercised against an isolated
 * MemoryController with captured output messages.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "machine/address_map.hh"
#include "mem/memory_controller.hh"

namespace limitless
{
namespace
{

/** Isolated home-node controller with captured sends. */
struct MemHarness
{
    EventQueue eq;
    AddressMap amap{4, 16};
    MemoryController mc;
    std::vector<PacketPtr> sent;
    std::vector<PacketPtr> diverted;

    explicit MemHarness(ProtocolParams proto, MemParams mem = {})
        : mc(eq, 0, amap, proto, mem)
    {
        mc.setSend([this](PacketPtr p) { sent.push_back(std::move(p)); });
        mc.setTrapStall([](Tick) {});
        mc.setDivert([this](PacketPtr p) {
            diverted.push_back(std::move(p));
        });
    }

    /** A line homed at node 0. */
    Addr line(std::uint64_t slot = 0) const
    {
        return amap.addrOnNode(0, slot);
    }

    void
    inject(Opcode op, NodeId src, Addr a,
           std::vector<std::uint64_t> data = {})
    {
        PacketPtr pkt;
        if (opcodeCarriesData(op))
            pkt = makeDataPacket(src, 0, op, a, data);
        else
            pkt = makeProtocolPacket(src, 0, op, a);
        mc.enqueue(std::move(pkt));
        eq.run();
    }

    /** Count of captured messages matching (op, dest). */
    unsigned
    count(Opcode op, NodeId dest) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += (p->opcode == op && p->dest == dest);
        return n;
    }

    const Packet *
    last() const
    {
        return sent.empty() ? nullptr : sent.back().get();
    }
};

// ------------------------------------------------------- Transitions 1-2

TEST(Table2, T1_ReadOnUncachedLineGrantsAndRecordsPointer)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::RREQ, 1, h.line());
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.last()->opcode, Opcode::RDATA);
    EXPECT_EQ(h.last()->dest, 1u);
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 1));
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
}

TEST(Table2, T1_MultipleReadersAccumulatePointers)
{
    MemHarness h(protocols::fullMap());
    for (NodeId n = 1; n < 4; ++n)
        h.inject(Opcode::RREQ, n, h.line());
    EXPECT_EQ(h.mc.directory().numSharers(h.line()), 3u);
    EXPECT_EQ(h.count(Opcode::RDATA, 1), 1u);
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
    EXPECT_EQ(h.count(Opcode::RDATA, 3), 1u);
}

TEST(Table2, T2_WriteOnUncachedLineGrantsExclusive)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 2, h.line());
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.last()->opcode, Opcode::WDATA);
    EXPECT_EQ(h.last()->dest, 2u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readWrite);
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 2));
}

TEST(Table2, T2_UpgradeWhenRequesterIsSoleSharer)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::RREQ, 2, h.line());
    h.inject(Opcode::WREQ, 2, h.line());
    EXPECT_EQ(h.count(Opcode::WDATA, 2), 1u);
    EXPECT_EQ(h.count(Opcode::INV, 2), 0u); // no self-invalidation
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readWrite);
}

// --------------------------------------------------------- Transition 3

TEST(Table2, T3_WriteWithSharersInvalidatesAndCountsAcks)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::RREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line());
    h.inject(Opcode::RREQ, 3, h.line());
    h.inject(Opcode::WREQ, 1, h.line()); // requester IS a sharer
    // INVs go to everyone but the requester (AckCtr = n - 1).
    EXPECT_EQ(h.count(Opcode::INV, 2), 1u);
    EXPECT_EQ(h.count(Opcode::INV, 3), 1u);
    EXPECT_EQ(h.count(Opcode::INV, 1), 0u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    EXPECT_EQ(h.mc.ackCounter(h.line()), 2u);
    // No data until all acks arrive.
    EXPECT_EQ(h.count(Opcode::WDATA, 1), 0u);

    h.inject(Opcode::ACKC, 2, h.line());
    EXPECT_EQ(h.count(Opcode::WDATA, 1), 0u);
    h.inject(Opcode::ACKC, 3, h.line());
    EXPECT_EQ(h.count(Opcode::WDATA, 1), 1u); // transition 8
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readWrite);
}

// ------------------------------------------------------ Transitions 4, 8

TEST(Table2, T4_WriteOverExclusiveOwnerForwardsViaInvalidate)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 1, h.line());
    h.sent.clear();
    h.inject(Opcode::WREQ, 2, h.line());
    EXPECT_EQ(h.count(Opcode::INV, 1), 1u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    // Owner returns dirty data via UPDATE; requester then gets it.
    h.inject(Opcode::UPDATE, 1, h.line(), {0xDEAD, 0xBEEF});
    EXPECT_EQ(h.count(Opcode::WDATA, 2), 1u);
    EXPECT_EQ(h.mc.readLine(h.line())[0], 0xDEADu);
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 2));
    EXPECT_FALSE(h.mc.directory().contains(h.line(), 1));
}

// ----------------------------------------------------- Transitions 5, 10

TEST(Table2, T5_T10_ReadOverExclusiveOwner)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 1, h.line());
    h.sent.clear();
    h.inject(Opcode::RREQ, 2, h.line());
    EXPECT_EQ(h.count(Opcode::INV, 1), 1u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readTransaction);
    h.inject(Opcode::UPDATE, 1, h.line(), {7, 8});
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
    EXPECT_EQ(h.mc.readLine(h.line())[1], 8u);
}

// --------------------------------------------------------- Transition 6

TEST(Table2, T6_ReplaceModifiedWritesBackAndEmptiesDirectory)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 3, h.line());
    h.inject(Opcode::REPM, 3, h.line(), {0x11, 0x22});
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
    EXPECT_EQ(h.mc.directory().numSharers(h.line()), 0u);
    EXPECT_EQ(h.mc.readLine(h.line())[0], 0x11u);
    EXPECT_EQ(h.mc.readLine(h.line())[1], 0x22u);
}

// ------------------------------------------------------- Transitions 7, 9

TEST(Table2, T7_RequestsDuringWriteTransactionAreHeldOff)
{
    // deferDepth 0 recovers the paper's pure BUSY behaviour.
    MemParams mem;
    mem.deferDepth = 0;
    MemHarness h(protocols::fullMap(), mem);
    h.inject(Opcode::RREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line());
    h.inject(Opcode::WREQ, 3, h.line());
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    h.sent.clear();
    h.inject(Opcode::RREQ, 1, h.line());
    EXPECT_EQ(h.count(Opcode::BUSY, 1), 1u);
    h.inject(Opcode::WREQ, 2, h.line());
    EXPECT_EQ(h.count(Opcode::BUSY, 2), 1u);
}

TEST(Table2, T7_DeferredRequestsReplayAfterTransaction)
{
    MemHarness h(protocols::fullMap()); // default deferDepth > 0
    h.inject(Opcode::RREQ, 1, h.line());
    h.inject(Opcode::WREQ, 3, h.line());
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    h.inject(Opcode::RREQ, 2, h.line()); // parked, no BUSY
    EXPECT_EQ(h.count(Opcode::BUSY, 2), 0u);
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 0u);
    h.inject(Opcode::ACKC, 1, h.line()); // completes the write
    // The parked read replays: node 2 is served (after the new owner is
    // invalidated through a read transaction).
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readTransaction);
    h.inject(Opcode::UPDATE, 3, h.line(), {1, 2});
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
}

TEST(Table2, T9_RequestsDuringReadTransactionAreHeldOff)
{
    MemParams mem;
    mem.deferDepth = 0;
    MemHarness h(protocols::fullMap(), mem);
    h.inject(Opcode::WREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line());
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::readTransaction);
    h.sent.clear();
    h.inject(Opcode::RREQ, 3, h.line());
    EXPECT_EQ(h.count(Opcode::BUSY, 3), 1u);
}

// ------------------------------------------------- Crossing-race handling

TEST(Table2, RepmCrossingInvDuringWriteTransaction)
{
    // Owner replaces its dirty line exactly as the home invalidates it:
    // REPM carries the data (no ack), the owner's ACKC to the INV closes
    // the transaction (DESIGN.md ack discipline).
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 1, h.line());
    h.inject(Opcode::WREQ, 2, h.line()); // INV -> 1 in flight
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    h.inject(Opcode::REPM, 1, h.line(), {0x77, 0x88});
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction)
        << "REPM alone must not complete the transaction";
    h.inject(Opcode::ACKC, 1, h.line());
    EXPECT_EQ(h.count(Opcode::WDATA, 2), 1u);
    EXPECT_EQ(h.mc.readLine(h.line())[0], 0x77u)
        << "replaced data must be visible to the new writer";
}

TEST(Table2, RepmCrossingInvDuringReadTransaction)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::WREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line());
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::readTransaction);
    h.inject(Opcode::REPM, 1, h.line(), {0x55, 0x66});
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readTransaction);
    h.inject(Opcode::ACKC, 1, h.line());
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
    EXPECT_EQ(h.mc.readLine(h.line())[0], 0x55u);
}

// ------------------------------------------- Limited-directory eviction

TEST(LimitedDirFsm, PointerOverflowEvictsAVictim)
{
    MemHarness h(protocols::dirNB(2));
    h.inject(Opcode::RREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line());
    h.sent.clear();
    h.inject(Opcode::RREQ, 3, h.line()); // overflow
    // One of the existing sharers is invalidated; requester waits.
    EXPECT_EQ(h.count(Opcode::INV, 1) + h.count(Opcode::INV, 2), 1u);
    EXPECT_EQ(h.count(Opcode::RDATA, 3), 0u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::evictTransaction);
    const NodeId victim = h.count(Opcode::INV, 1) ? 1 : 2;
    h.inject(Opcode::ACKC, victim, h.line());
    EXPECT_EQ(h.count(Opcode::RDATA, 3), 1u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
    EXPECT_FALSE(h.mc.directory().contains(h.line(), victim));
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 3));
}

TEST(LimitedDirFsm, SpuriousInvForDroppedCopyStillCompletesEviction)
{
    // The victim silently dropped its copy earlier; its cache answers the
    // INV with an ACKC anyway, and the eviction completes.
    MemHarness h(protocols::dirNB(1));
    h.inject(Opcode::RREQ, 1, h.line());
    h.inject(Opcode::RREQ, 2, h.line()); // evicts 1
    h.inject(Opcode::ACKC, 1, h.line());
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
}

// --------------------------------------------------------- Memory values

TEST(Table2, DataFlowsThroughWriteReadChain)
{
    MemHarness h(protocols::fullMap());
    const Addr a = h.line();
    h.inject(Opcode::WREQ, 1, a);
    h.inject(Opcode::REPM, 1, a, {100, 200});
    h.sent.clear();
    h.inject(Opcode::RREQ, 2, a);
    ASSERT_EQ(h.sent.size(), 1u);
    ASSERT_EQ(h.last()->data.size(), 2u);
    EXPECT_EQ(h.last()->data[0], 100u);
    EXPECT_EQ(h.last()->data[1], 200u);
}

TEST(Table2, UntouchedMemoryReadsAsZero)
{
    MemHarness h(protocols::fullMap());
    h.inject(Opcode::RREQ, 1, h.line(9));
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.last()->data[0], 0u);
}

} // namespace
} // namespace limitless
