/**
 * @file
 * Serial-vs-parallel kernel equivalence properties: the same seeded
 * workload run with --sim-threads 1, 2 and 4 must produce byte-identical
 * stats JSON and telemetry (CSV + JSON sidecar). This is the contract of
 * the conservative window-parallel kernel (sim/parallel_kernel.hh):
 * thread count changes wall-clock time only, never simulated behavior.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "obs/flight_recorder.hh"
#include "obs/telemetry.hh"
#include "sim/parallel_kernel.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

struct ParallelCase
{
    ProtocolParams proto;
    std::uint64_t seed;
    TopologyKind topo = TopologyKind::mesh;
    unsigned cluster = 1;
    bool hier = false;
};

std::string
caseName(const testing::TestParamInfo<ParallelCase> &info)
{
    std::ostringstream os;
    os << info.param.proto.name() << "_s" << info.param.seed << "_"
       << topologyKindName(info.param.topo);
    if (info.param.hier)
        os << "_hier" << info.param.cluster;
    std::string s = os.str();
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

/** Everything a run exports that must not depend on the thread count. */
struct RunDigest
{
    std::string stats;
    std::string telemetryCsv;
    std::string telemetryJson;
    Tick cycles = 0;
    unsigned partitions = 0;
};

RunDigest
runOnce(const ParallelCase &pc, unsigned sim_threads)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = pc.proto;
    cfg.seed = pc.seed;
    cfg.topology.kind = pc.topo;
    if (pc.topo == TopologyKind::expressMesh)
        cfg.topology.expressStride = 2;
    cfg.topology.clusterSize = pc.cluster;
    cfg.hier = pc.hier;
    cfg.simThreads = sim_threads;
    // Small cache so replacements happen, and a short telemetry window
    // so several sampled rows land in the CSV.
    cfg.cache.cacheBytes = 16 * 16;
    cfg.metricsInterval = 400;

    FlightRecorder::instance().latency().reset();

    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 120;
    rp.counterLines = 6;
    rp.valueLines = 10;
    rp.seed = pc.seed * 7919 + 13;
    RandomStress wl(rp);
    wl.install(m);

    const RunResult r = m.run();
    EXPECT_TRUE(r.completed);
    wl.verify(m);
    CoherenceMonitor(m).checkQuiescent();

    RunDigest d;
    d.cycles = r.cycles;
    d.partitions = m.numPartitions();
    // Host block (wall seconds) excluded: it is the one legitimately
    // thread-count-dependent output.
    std::ostringstream stats;
    m.dumpStatsJson(stats, r.cycles, nullptr);
    d.stats = stats.str();
    std::ostringstream csv, js;
    m.telemetry()->writeCsv(csv);
    m.telemetry()->writeJson(js);
    d.telemetryCsv = csv.str();
    d.telemetryJson = js.str();
    return d;
}

class ParallelSimProperty : public testing::TestWithParam<ParallelCase>
{
};

TEST_P(ParallelSimProperty, ThreadCountNeverChangesBehavior)
{
    const ParallelCase &pc = GetParam();
    const RunDigest serial = runOnce(pc, 1);
    ASSERT_EQ(serial.partitions, 1u);
    ASSERT_GT(serial.cycles, 0u);

    for (unsigned threads : {2u, 4u}) {
        const RunDigest par = runOnce(pc, threads);
        // The clamp can only reduce the partition count to the number of
        // partitionable units (clusters); 16 flat nodes / 4 chips always
        // leave at least two, so the parallel kernel really ran.
        EXPECT_GT(par.partitions, 1u) << "threads=" << threads;
        EXPECT_EQ(par.cycles, serial.cycles) << "threads=" << threads;
        EXPECT_EQ(par.stats, serial.stats) << "threads=" << threads;
        EXPECT_EQ(par.telemetryCsv, serial.telemetryCsv)
            << "threads=" << threads;
        EXPECT_EQ(par.telemetryJson, serial.telemetryJson)
            << "threads=" << threads;
    }
}

/** The utilization exports must account for every executed event: the
 *  per-partition counters in ParallelKernelStats sum exactly to the
 *  run's event total, every partition did real work, and the window
 *  counters are internally consistent. (The total is NOT compared to a
 *  serial run: the windowed kernel schedules per-shard network ticks,
 *  so the event count is thread-count-dependent by design — only the
 *  simulated behavior is not.) */
TEST(ParallelKernelStatsTest, PartitionEventsSumToRunTotal)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 7;
    cfg.topology.kind = TopologyKind::torus;
    cfg.simThreads = 4;
    cfg.pkTelemetry = true;
    cfg.cache.cacheBytes = 16 * 16;
    cfg.metricsInterval = 400;

    FlightRecorder::instance().latency().reset();
    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 120;
    rp.seed = 99;
    RandomStress wl(rp);
    wl.install(m);
    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);

    const ParallelKernelStats *pk = m.pkStats();
    ASSERT_NE(pk, nullptr);
    ASSERT_EQ(pk->partitions, m.numPartitions());
    ASSERT_GT(pk->partitions, 1u);
    std::uint64_t sum = 0;
    for (unsigned p = 0; p < pk->partitions; ++p) {
        EXPECT_GT(pk->parts[p].events, 0u) << "partition " << p;
        EXPECT_GE(pk->barrierWaitSeconds(p), 0.0) << "partition " << p;
        sum += pk->parts[p].events;
    }
    EXPECT_EQ(sum, r.events);
    EXPECT_GT(pk->windows, 0u);
    EXPECT_LE(pk->coupledWindows, pk->windows);
    EXPECT_GE(pk->lookahead, 1u);
    EXPECT_GE(pk->runSeconds, pk->serialTailSeconds);

    // pk.* telemetry columns ride along only when asked for.
    std::ostringstream csv;
    m.telemetry()->writeCsv(csv);
    EXPECT_NE(csv.str().find("pk.windows"), std::string::npos);
    EXPECT_NE(csv.str().find("pk.part_events.3"), std::string::npos);
    EXPECT_NE(csv.str().find("pk.barrier_wait_s.0"), std::string::npos);
}

/** Default config keeps the pk.* columns out of the telemetry CSV —
 *  that is what lets the byte-identical property above compare the CSV
 *  across thread counts. */
TEST(ParallelKernelStatsTest, PkColumnsAreOptIn)
{
    ParallelCase pc{protocols::limitlessStall(4, 50), 7,
                    TopologyKind::torus};
    const RunDigest par = runOnce(pc, 4);
    EXPECT_EQ(par.telemetryCsv.find("pk."), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    SerialVsParallel, ParallelSimProperty,
    testing::Values(
        ParallelCase{protocols::limitlessStall(4, 50), 7,
                     TopologyKind::mesh},
        ParallelCase{protocols::limitlessStall(4, 50), 23,
                     TopologyKind::torus},
        ParallelCase{protocols::fullMap(), 11, TopologyKind::mesh},
        ParallelCase{protocols::dirNB(4), 5, TopologyKind::expressMesh},
        ParallelCase{protocols::chained(), 3, TopologyKind::torus},
        // Two-level: chips of 4 nodes; partitions align to chips.
        ParallelCase{protocols::limitlessStall(4, 50), 17,
                     TopologyKind::mesh, 4, true},
        ParallelCase{protocols::dirNB(4), 29, TopologyKind::torus, 4,
                     true}),
    caseName);

} // namespace
} // namespace limitless
