/**
 * @file
 * Private-only caching baseline tests (paper Section 5.1: "a scheme that
 * only caches private data"): remote lines are never cached, reads are
 * serviced uncached, writes are performed at the home, and local lines
 * cache normally.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/hotspot.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

ProtocolParams
privateOnly()
{
    ProtocolParams p;
    p.kind = ProtocolKind::privateOnly;
    return p;
}

MachineConfig
machineFor(unsigned nodes = 8)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = privateOnly();
    cfg.seed = 37;
    return cfg;
}

TEST(PrivateOnly, RemoteLinesAreNeverCached)
{
    Machine m(machineFor());
    const Addr remote = m.addressMap().addrOnNode(3, 0);
    m.spawnOn(0, [&m, remote](ThreadApi &t) -> Task<> {
        co_await t.write(remote, 55);
        EXPECT_EQ(co_await t.read(remote), 55u);
        EXPECT_EQ(co_await t.read(remote), 55u);
    });
    ASSERT_TRUE(m.run().completed);
    const Addr line = m.addressMap().lineAddr(remote);
    EXPECT_EQ(m.node(0).cache().array().lookup(line), nullptr)
        << "remote data must not be cached";
    EXPECT_EQ(m.node(3).mem().readLine(line)[0], 55u)
        << "the write is performed at the home";
    // Every re-read paid a protocol round trip.
    EXPECT_GE(m.sumCounter("mem", "rreq"), 2u);
    CoherenceMonitor(m).checkQuiescent();
}

TEST(PrivateOnly, LocalLinesStillCacheNormally)
{
    Machine m(machineFor());
    const Addr local = m.addressMap().addrOnNode(0, 0);
    m.spawnOn(0, [&m, local](ThreadApi &t) -> Task<> {
        co_await t.write(local, 9);
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(co_await t.read(local), 9u);
    });
    ASSERT_TRUE(m.run().completed);
    const Addr line = m.addressMap().lineAddr(local);
    const CacheLine *cl = m.node(0).cache().array().lookup(line);
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->state, CacheState::readWrite);
    EXPECT_GE(m.sumCounter("cache", "hits"), 10u);
}

TEST(PrivateOnly, UncachedReadOfALocallyDirtyLineRecallsTheData)
{
    // Node 1's home line is cached dirty by node 1 itself; node 0's
    // uncached read must see the fresh value (RT recall, no pointer).
    Machine m(machineFor());
    const Addr a = m.addressMap().addrOnNode(1, 0);
    const Addr gate = m.addressMap().addrOnNode(2, 1);
    m.spawnOn(1, [&m, a, gate](ThreadApi &t) -> Task<> {
        co_await t.write(a, 0xFEED); // local: cached Read-Write
        co_await t.write(gate, 1);
    });
    m.spawnOn(0, [&m, a, gate](ThreadApi &t) -> Task<> {
        while ((co_await t.read(gate)) == 0)
            co_await t.compute(8);
        EXPECT_EQ(co_await t.read(a), 0xFEEDu);
    });
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
}

TEST(PrivateOnly, RemoteAtomicsSerializeAtTheHome)
{
    Machine m(machineFor());
    const Addr a = m.addressMap().addrOnNode(0, 0);
    for (NodeId p = 1; p < 8; ++p) {
        m.spawnOn(p, [a](ThreadApi &t) -> Task<> {
            for (int i = 0; i < 15; ++i)
                co_await t.fetchAdd(a, 1);
        });
    }
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(1); });
    ASSERT_TRUE(m.run().completed);
    const Addr line = m.addressMap().lineAddr(a);
    EXPECT_EQ(m.node(0).mem().readLine(line)[0], 7u * 15u);
}

TEST(PrivateOnly, WorkloadsVerify)
{
    {
        MultigridParams wp;
        wp.iterations = 3;
        wp.interiorLines = 5;
        const auto out = runExperiment(
            machineFor(12), [&] { return std::make_unique<Multigrid>(wp); });
        EXPECT_TRUE(out.completed);
    }
    {
        RandomStressParams rp;
        rp.opsPerProc = 70;
        const auto out = runExperiment(machineFor(12), [&] {
            return std::make_unique<RandomStress>(rp);
        });
        EXPECT_TRUE(out.completed);
    }
}

TEST(PrivateOnly, CachingSharedDataWinsWhenThereIsReuse)
{
    // The Section 1 motivation: caches win by exploiting temporal reuse
    // of read-shared data. A pure reuse kernel: every processor reads
    // the same two words 60 times — hits under any coherent cache after
    // the first touch, but 60 serialized round trips to the home when
    // shared data is uncached. (Interesting counterpoint found while
    // testing: for synchronization-heavy codes with little reuse,
    // private-only can win, because its remote atomics execute at the
    // memory instead of migrating exclusive ownership.)
    auto run = [](ProtocolParams proto) {
        MachineConfig cfg;
        cfg.numNodes = 32;
        cfg.protocol = proto;
        cfg.seed = 37;
        Machine m(cfg);
        const Addr hot_a = m.addressMap().addrOnNode(0, 0);
        const Addr hot_b = m.addressMap().addrOnNode(1, 1);
        for (NodeId p = 0; p < 32; ++p) {
            m.spawnOn(p, [hot_a, hot_b](ThreadApi &t) -> Task<> {
                for (int i = 0; i < 60; ++i) {
                    co_await t.read(hot_a);
                    co_await t.read(hot_b);
                    co_await t.compute(3);
                }
            });
        }
        const RunResult r = m.run();
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    const Tick priv = run(privateOnly());
    const Tick full = run(protocols::fullMap());
    EXPECT_GT(priv, full * 3)
        << "caching shared data must win big when it is re-used";
}

} // namespace
} // namespace limitless
