/** @file Unit tests for opcodes and the uniform packet format. */

#include <gtest/gtest.h>

#include "proto/packet.hh"
#include "proto/protocol_params.hh"

namespace limitless
{
namespace
{

TEST(Opcode, InterruptClassHasMsbSet)
{
    EXPECT_TRUE(isInterruptOpcode(Opcode::IPI_MESSAGE));
    EXPECT_TRUE(isInterruptOpcode(Opcode::IPI_LOCK_GRANT));
    EXPECT_FALSE(isInterruptOpcode(Opcode::RREQ));
    EXPECT_FALSE(isInterruptOpcode(Opcode::WDATA));
    EXPECT_TRUE(isProtocolOpcode(Opcode::ACKC));
}

TEST(Opcode, DataCarryingOpcodesMatchPaperTable3)
{
    // Paper Table 3: REPM, UPDATE, RDATA, WDATA carry data.
    EXPECT_TRUE(opcodeCarriesData(Opcode::REPM));
    EXPECT_TRUE(opcodeCarriesData(Opcode::UPDATE));
    EXPECT_TRUE(opcodeCarriesData(Opcode::RDATA));
    EXPECT_TRUE(opcodeCarriesData(Opcode::WDATA));
    EXPECT_FALSE(opcodeCarriesData(Opcode::RREQ));
    EXPECT_FALSE(opcodeCarriesData(Opcode::WREQ));
    EXPECT_FALSE(opcodeCarriesData(Opcode::ACKC));
    EXPECT_FALSE(opcodeCarriesData(Opcode::INV));
    EXPECT_FALSE(opcodeCarriesData(Opcode::BUSY));
}

TEST(Opcode, EveryOpcodeHasAName)
{
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPM,
                      Opcode::UPDATE, Opcode::ACKC, Opcode::REPC,
                      Opcode::RDATA, Opcode::WDATA, Opcode::INV,
                      Opcode::BUSY, Opcode::REPC_ACK,
                      Opcode::IPI_MESSAGE}) {
        EXPECT_STRNE(opcodeName(op), "UNKNOWN");
    }
}

TEST(Packet, LengthCountsHeaderOperandsAndData)
{
    // Paper Figure 4: header word + operands + data words.
    auto pkt = makeDataPacket(3, 5, Opcode::RDATA, 0x100, {1, 2});
    EXPECT_EQ(pkt->lengthWords(), 1u + 1u + 2u);
    EXPECT_EQ(pkt->src, 3u);
    EXPECT_EQ(pkt->dest, 5u);
    EXPECT_EQ(pkt->addr(), 0x100u);
}

TEST(Packet, ProtocolBuilderSetsAddressOperand)
{
    auto pkt = makeProtocolPacket(1, 2, Opcode::RREQ, 0xABCD0);
    EXPECT_TRUE(pkt->isProtocol());
    EXPECT_FALSE(pkt->isInterrupt());
    EXPECT_EQ(pkt->addr(), 0xABCD0u);
    EXPECT_TRUE(pkt->data.empty());
}

TEST(Packet, InterruptBuilderKeepsSoftwareDefinedLayout)
{
    auto pkt = makeInterruptPacket(7, 9, Opcode::IPI_MESSAGE,
                                   {11, 22, 33}, {44});
    EXPECT_TRUE(pkt->isInterrupt());
    EXPECT_EQ(pkt->operands.size(), 3u);
    EXPECT_EQ(pkt->data.size(), 1u);
    EXPECT_EQ(pkt->lengthWords(), 5u);
}

TEST(Packet, DescribeMentionsOpcodeAndEndpoints)
{
    auto pkt = makeProtocolPacket(1, 2, Opcode::WREQ, 0x40);
    const std::string desc = describePacket(*pkt);
    EXPECT_NE(desc.find("WREQ"), std::string::npos);
    EXPECT_NE(desc.find("1->2"), std::string::npos);
}

TEST(ProtocolParams, NamesMatchPaperNotation)
{
    ProtocolParams p;
    p.kind = ProtocolKind::fullMap;
    EXPECT_EQ(p.name(), "Full-Map");
    p.kind = ProtocolKind::limited;
    p.pointers = 4;
    EXPECT_EQ(p.name(), "Dir4NB");
    p.kind = ProtocolKind::limitless;
    p.softwareLatency = 50;
    EXPECT_EQ(p.name(), "LimitLESS4 Ts=50");
    p.kind = ProtocolKind::chained;
    EXPECT_EQ(p.name(), "Chained");
}

} // namespace
} // namespace limitless
