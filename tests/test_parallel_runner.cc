/** @file Determinism tests for the parallel sweep runner. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

/** Effective hardware concurrency as the runner computes it. */
unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

TEST(ParallelRunner, ZeroJobsMeansHardwareConcurrency)
{
    EXPECT_EQ(ParallelRunner(0).jobs(), hardwareJobs());
    EXPECT_EQ(ParallelRunner(3).jobs(), std::min(3u, hardwareJobs()));
}

TEST(ParallelRunner, JobsClampToHardwareConcurrency)
{
    // Asking for more workers than the host has cores clamps (with a
    // one-line stderr warning) instead of oversubscribing; sane requests
    // are never clamped upward.
    const unsigned hw = hardwareJobs();
    EXPECT_EQ(ParallelRunner(hw + 17).jobs(), hw);
    EXPECT_EQ(ParallelRunner(1).jobs(), 1u);
    EXPECT_EQ(ParallelRunner(hw).jobs(), hw);
}

TEST(ParallelRunner, OutputFlushedInSubmissionOrderDespiteDelays)
{
    // Later tasks finish first (reverse-proportional sleep); the shared
    // stream must still read as if the sweep ran serially, with no
    // interleaved or reordered lines.
    constexpr std::size_t n = 6;
    ParallelRunner runner(4);
    std::ostringstream out;
    const ParallelRunner::Task<int> task =
        [](std::size_t i, std::ostream &os) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds((n - 1 - i) * 5));
            os << "task " << i << " line one\n";
            os << "task " << i << " line two\n";
            return static_cast<int>(i * i);
        };
    const std::vector<int> results = runner.map<int>(n, task, out);

    std::string expect;
    ASSERT_EQ(results.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(results[i], static_cast<int>(i * i));
        expect += "task " + std::to_string(i) + " line one\n";
        expect += "task " + std::to_string(i) + " line two\n";
    }
    EXPECT_EQ(out.str(), expect);
}

TEST(ParallelRunner, SweepMatchesSerialByteForByte)
{
    // The real guarantee the figure benches rely on: an N-thread sweep
    // of independent machine experiments produces exactly the rows (and
    // row order) of a serial run.
    struct Cell
    {
        ProtocolParams proto;
        std::uint32_t seed;
    };
    std::vector<Cell> cells;
    for (const ProtocolParams &p :
         {protocols::fullMap(), protocols::dirNB(2),
          protocols::limitlessStall(2, 50)})
        for (std::uint32_t seed : {7u, 23u})
            cells.push_back({p, seed});

    const ParallelRunner::Task<Tick> task =
        [&cells](std::size_t i, std::ostream &os) {
            MachineConfig cfg;
            cfg.numNodes = 8;
            cfg.protocol = cells[i].proto;
            cfg.seed = cells[i].seed;
            const ExperimentOutcome o = runExperiment(cfg, []() {
                RandomStressParams rp;
                rp.opsPerProc = 40;
                return std::make_unique<RandomStress>(rp);
            });
            EXPECT_TRUE(o.completed);
            os << o.label << " seed=" << cells[i].seed
               << " cycles=" << o.cycles << " pkts=" << o.networkPackets
               << "\n";
            return o.cycles;
        };

    std::ostringstream serial_out;
    const std::vector<Tick> serial =
        ParallelRunner(1).map<Tick>(cells.size(), task, serial_out);

    std::ostringstream par_out;
    const std::vector<Tick> par =
        ParallelRunner(4).map<Tick>(cells.size(), task, par_out);

    EXPECT_EQ(par, serial);
    EXPECT_EQ(par_out.str(), serial_out.str());
    EXPECT_NE(serial_out.str().find("cycles="), std::string::npos);
}

TEST(ParallelRunner, MixedTopologyFanOutMergesDeterministically)
{
    // A sweep whose cells differ in interconnect (mesh, torus, express
    // mesh) and cluster mapping: the ExperimentOutcome rows a parallel
    // fan-out merges back must match a serial sweep cell for cell, and
    // each topology must produce a self-consistent completed run.
    std::vector<TopologyParams> topos(4);
    topos[0].kind = TopologyKind::mesh;
    topos[1].kind = TopologyKind::torus;
    topos[2].kind = TopologyKind::expressMesh;
    topos[2].expressStride = 2;
    topos[3].kind = TopologyKind::torus;
    topos[3].clusterSize = 2;

    const ParallelRunner::Task<Tick> task =
        [&topos](std::size_t i, std::ostream &os) {
            MachineConfig cfg;
            cfg.numNodes = 16;
            cfg.topology = topos[i % topos.size()];
            cfg.protocol = protocols::limitlessStall(2, 50);
            cfg.seed = 11 + i / topos.size();
            const ExperimentOutcome o = runExperiment(cfg, []() {
                RandomStressParams rp;
                rp.opsPerProc = 30;
                return std::make_unique<RandomStress>(rp);
            });
            EXPECT_TRUE(o.completed);
            EXPECT_GT(o.cycles, 0u);
            os << topologyKindName(cfg.topology.kind) << " c"
               << cfg.topology.clusterSize << " cycles=" << o.cycles
               << " pkts=" << o.networkPackets << "\n";
            return o.cycles;
        };

    std::ostringstream serial_out;
    const std::vector<Tick> serial =
        ParallelRunner(1).map<Tick>(2 * topos.size(), task, serial_out);

    std::ostringstream par_out;
    const std::vector<Tick> par =
        ParallelRunner(4).map<Tick>(2 * topos.size(), task, par_out);

    EXPECT_EQ(par, serial);
    EXPECT_EQ(par_out.str(), serial_out.str());
    EXPECT_NE(par_out.str().find("torus"), std::string::npos);
    EXPECT_NE(par_out.str().find("express"), std::string::npos);
}

TEST(ParallelRunner, LowestIndexExceptionWins)
{
    ParallelRunner runner(2);
    std::ostringstream out;
    const ParallelRunner::Task<int> task =
        [](std::size_t i, std::ostream &) -> int {
            if (i >= 1)
                throw std::runtime_error("boom " + std::to_string(i));
            return 0;
        };
    try {
        runner.map<int>(4, task, out);
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 1");
    }
}

TEST(ParallelRunner, ParsesJobsFlagForms)
{
    auto parse = [](std::vector<std::string> args) {
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>("prog"));
        for (std::string &a : args)
            argv.push_back(a.data());
        return parseJobsFlag(static_cast<int>(argv.size()), argv.data());
    };
    EXPECT_EQ(parse({}), 1u);
    EXPECT_EQ(parse({"--jobs", "4"}), 4u);
    EXPECT_EQ(parse({"-j", "2"}), 2u);
    EXPECT_EQ(parse({"--jobs=8"}), 8u);
    EXPECT_EQ(parse({"--trials", "3", "--jobs", "6"}), 6u);

    bool consumes = false;
    EXPECT_TRUE(isJobsFlag("--jobs", consumes));
    EXPECT_TRUE(consumes);
    EXPECT_TRUE(isJobsFlag("--jobs=8", consumes));
    EXPECT_FALSE(consumes);
    EXPECT_FALSE(isJobsFlag("--seed", consumes));
}

} // namespace
} // namespace limitless
