/**
 * @file
 * Directed tests for the chained-directory protocol: chain construction
 * through RDATA old-head operands, sequential invalidation walks, the
 * REPC replacement transaction, and the linear write-latency property
 * the paper attributes to chained schemes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/worker_set.hh"

namespace limitless
{
namespace
{

MachineConfig
chainedMachine(unsigned nodes = 16)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::chained();
    cfg.seed = 5;
    return cfg;
}

TEST(Chained, ReadersFormAChainAtTheDirectory)
{
    Machine m(chainedMachine(8));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    for (NodeId p = 1; p <= 4; ++p) {
        m.spawnOn(p, [a](ThreadApi &t) -> Task<> {
            co_await t.read(a);
        });
    }
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(1); });
    ASSERT_TRUE(m.run().completed);
    ChainedDir *dir = m.node(0).mem().chainedDir();
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->chainLength(m.addressMap().lineAddr(a)), 4u);
    EXPECT_NE(dir->head(m.addressMap().lineAddr(a)), invalidNode);
    CoherenceMonitor(m).checkQuiescent();
}

TEST(Chained, ChainMembersLinkThroughTheirForwardPointers)
{
    Machine m(chainedMachine(8));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    const Addr gate = m.addressMap().addrOnNode(1, 1);
    // Serialize the readers so the chain order is deterministic:
    // 1 reads first, then 2, then 3.
    for (NodeId p = 1; p <= 3; ++p) {
        m.spawnOn(p, [a, gate, p](ThreadApi &t) -> Task<> {
            while ((co_await t.read(gate)) != p - 1)
                co_await t.compute(10);
            co_await t.read(a);
            co_await t.write(gate, p);
        });
    }
    ASSERT_TRUE(m.run().completed);
    const Addr line = m.addressMap().lineAddr(a);
    EXPECT_EQ(m.node(0).mem().chainedDir()->head(line), 3u);
    const CacheLine *c3 = m.node(3).cache().array().lookup(line);
    ASSERT_NE(c3, nullptr);
    EXPECT_EQ(c3->chainNext, 2u);
    const CacheLine *c2 = m.node(2).cache().array().lookup(line);
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c2->chainNext, 1u);
    const CacheLine *c1 = m.node(1).cache().array().lookup(line);
    ASSERT_NE(c1, nullptr);
    EXPECT_EQ(c1->chainNext, invalidNode);
}

TEST(Chained, WriteWalksTheWholeChain)
{
    Machine m(chainedMachine(8));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    const Addr gate = m.addressMap().addrOnNode(1, 1);
    for (NodeId p = 1; p <= 4; ++p) {
        m.spawnOn(p, [a, gate, p](ThreadApi &t) -> Task<> {
            co_await t.read(a);
            co_await t.fetchAdd(gate, 1);
        });
    }
    m.spawnOn(5, [&m, a, gate](ThreadApi &t) -> Task<> {
        while ((co_await t.read(gate)) != 4)
            co_await t.compute(10);
        co_await t.write(a, 99);
    });
    ASSERT_TRUE(m.run().completed);
    const Addr line = m.addressMap().lineAddr(a);
    // All four readers invalidated, writer owns the line.
    for (NodeId p = 1; p <= 4; ++p)
        EXPECT_EQ(m.node(p).cache().array().lookup(line), nullptr);
    const CacheLine *cw = m.node(5).cache().array().lookup(line);
    ASSERT_NE(cw, nullptr);
    EXPECT_EQ(cw->state, CacheState::readWrite);
    EXPECT_GE(m.sumCounter("mem", "invs_sent"), 4u)
        << "at least one INV per chain member";
    CoherenceMonitor(m).checkQuiescent();
}

TEST(Chained, ReplacementUsesRepcNotSilentDrop)
{
    // Force a set conflict so a chained read-only line is replaced.
    MachineConfig cfg = chainedMachine(4);
    cfg.cache.cacheBytes = 4 * 16; // 4 sets: trivial to conflict
    Machine m(cfg);
    const AddressMap &amap = m.addressMap();
    const Addr a = amap.addrOnNode(1, 0);
    // Same cache set as `a`: slots spaced by numSets lines.
    const Addr b = amap.addrOnNode(1, 4);
    ASSERT_EQ(m.node(0).cache().array().indexOf(amap.lineAddr(a)),
              m.node(0).cache().array().indexOf(amap.lineAddr(b)));
    m.spawnOn(0, [a, b](ThreadApi &t) -> Task<> {
        co_await t.read(a);
        co_await t.read(b); // evicts `a` via REPC
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_GE(m.sumCounter("cache", "repc"), 1u);
    // The chain for `a` is gone; `b` is resident.
    EXPECT_EQ(m.node(1).mem().chainedDir()->head(amap.lineAddr(a)),
              invalidNode);
    EXPECT_NE(m.node(0).cache().array().lookup(amap.lineAddr(b)), nullptr);
    CoherenceMonitor(m).checkQuiescent();
}

TEST(Chained, WriteLatencyGrowsLinearlyWithChainLength)
{
    // The paper's criticism of chained directories: invalidations are
    // transmitted sequentially, so write latency ~ worker-set size.
    double lat4 = 0, lat12 = 0;
    for (unsigned w : {4u, 12u}) {
        MachineConfig cfg = chainedMachine(16);
        WorkerSetParams wp;
        wp.workerSet = w;
        wp.rounds = 5;
        auto wl = std::make_unique<WorkerSetSweep>(wp);
        Machine m(cfg);
        wl->install(m);
        ASSERT_TRUE(m.run().completed);
        wl->verify(m);
        (w == 4 ? lat4 : lat12) = wl->meanWriteLatency();
    }
    EXPECT_GT(lat12, lat4 * 1.8)
        << "sequential walk should scale with the chain";
}

TEST(Chained, FullMapInvalidatesInParallelByContrast)
{
    double lat4 = 0, lat12 = 0;
    for (unsigned w : {4u, 12u}) {
        MachineConfig cfg = chainedMachine(16);
        cfg.protocol = protocols::fullMap();
        WorkerSetParams wp;
        wp.workerSet = w;
        wp.rounds = 5;
        auto wl = std::make_unique<WorkerSetSweep>(wp);
        Machine m(cfg);
        wl->install(m);
        ASSERT_TRUE(m.run().completed);
        wl->verify(m);
        (w == 4 ? lat4 : lat12) = wl->meanWriteLatency();
    }
    EXPECT_LT(lat12, lat4 * 2.5)
        << "overlapped INVs should grow much slower than 3x";
}

} // namespace
} // namespace limitless
