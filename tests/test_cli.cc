/** @file CLI parser + harness factory tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/cli.hh"
#include "harness/result_table.hh"

namespace limitless
{
namespace
{

const std::map<std::string, bool> knownFlags = {
    {"workload", true}, {"nodes", true}, {"emulate", false},
};

CliOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::vector<std::string> storage;
    storage = std::move(args);
    argv.push_back(const_cast<char *>("prog"));
    for (auto &s : storage)
        argv.push_back(const_cast<char *>(s.c_str()));
    return CliOptions::parse(static_cast<int>(argv.size()), argv.data(),
                             knownFlags);
}

TEST(Cli, ParsesValueAndBooleanFlags)
{
    const CliOptions opts =
        parseArgs({"--workload", "weather", "--nodes", "32", "--emulate"});
    EXPECT_EQ(opts.str("workload"), "weather");
    EXPECT_EQ(opts.num("nodes", 0), 32u);
    EXPECT_TRUE(opts.has("emulate"));
    EXPECT_FALSE(opts.has("missing"));
    EXPECT_EQ(opts.num("missing", 7), 7u);
    EXPECT_EQ(opts.str("missing", "dflt"), "dflt");
}

TEST(Cli, RejectsUnknownFlags)
{
    EXPECT_DEATH(parseArgs({"--bogus"}), "unknown flag");
}

TEST(Cli, RejectsMissingValues)
{
    EXPECT_DEATH(parseArgs({"--nodes"}), "needs a value");
}

TEST(Cli, RejectsNonNumericValues)
{
    const CliOptions opts = parseArgs({"--nodes", "lots"});
    EXPECT_DEATH(opts.num("nodes", 0), "not a number");
}

TEST(Cli, ProtocolSpecParsing)
{
    EXPECT_EQ(parseProtocol("full-map").kind, ProtocolKind::fullMap);
    EXPECT_EQ(parseProtocol("FullMap").kind, ProtocolKind::fullMap);
    EXPECT_EQ(parseProtocol("chained").kind, ProtocolKind::chained);
    EXPECT_EQ(parseProtocol("private-only").kind,
              ProtocolKind::privateOnly);

    const ProtocolParams d2 = parseProtocol("dir2nb");
    EXPECT_EQ(d2.kind, ProtocolKind::limited);
    EXPECT_EQ(d2.pointers, 2u);

    const ProtocolParams l8 = parseProtocol("limitless8");
    EXPECT_EQ(l8.kind, ProtocolKind::limitless);
    EXPECT_EQ(l8.pointers, 8u);

    EXPECT_DEATH(parseProtocol("nonsense"), "unknown protocol");
    EXPECT_DEATH(parseProtocol("dir0nb"), "unknown protocol");
}

TEST(Cli, WorkloadFactoryCoversEveryAdvertisedName)
{
    for (const std::string &name : workloadNames()) {
        WorkloadFactory factory = makeWorkloadFactory(name, 2);
        std::unique_ptr<Workload> wl = factory();
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_FALSE(wl->name().empty());
    }
    EXPECT_DEATH(makeWorkloadFactory("nope", 0), "unknown workload");
}

TEST(ResultTable, RowLookupAndCsv)
{
    ResultTable table("t");
    ExperimentOutcome a;
    a.label = "Dir4NB";
    a.cycles = 1000;
    a.mcycles = 0.001;
    table.add(a);
    ExperimentOutcome b;
    b.label = "Full-Map";
    b.cycles = 500;
    b.mcycles = 0.0005;
    table.add(b);

    EXPECT_EQ(table.row("Dir4").cycles, 1000u);
    EXPECT_EQ(table.row("Full").cycles, 500u);
    EXPECT_DEATH(table.row("Chained"), "no row");

    std::ostringstream csv;
    table.printCsv(csv);
    EXPECT_NE(csv.str().find("\"Dir4NB\",1000"), std::string::npos);
    EXPECT_NE(csv.str().find("scheme,cycles"), std::string::npos);

    std::ostringstream bars;
    table.printBars(bars);
    EXPECT_NE(bars.str().find("#"), std::string::npos);
    EXPECT_NE(bars.str().find("Mcycles"), std::string::npos);
}

} // namespace
} // namespace limitless
