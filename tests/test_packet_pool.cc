/** @file Unit tests for packet frame recycling. */

#include <gtest/gtest.h>

#include <thread>

#include "proto/packet.hh"
#include "proto/packet_pool.hh"

namespace limitless
{
namespace
{

TEST(PacketPool, RecyclesReleasedFrames)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    const std::uint64_t recycled0 = pool.recycled();

    Packet *first;
    {
        PacketPtr pkt = makeProtocolPacket(1, 2, Opcode::RREQ, 0x40);
        first = pkt.get();
    } // released to the pool, not freed

    EXPECT_EQ(pool.freeFrames(), 1u);
    PacketPtr again = makeProtocolPacket(3, 4, Opcode::WREQ, 0x80);
    EXPECT_EQ(again.get(), first) << "frame should be recycled LIFO";
    EXPECT_EQ(pool.recycled(), recycled0 + 1);
    EXPECT_EQ(again->src, 3u);
    EXPECT_EQ(again->dest, 4u);
    EXPECT_EQ(again->opcode, Opcode::WREQ);
    ASSERT_EQ(again->operands.size(), 1u);
    EXPECT_EQ(again->addr(), 0x80u);
    EXPECT_TRUE(again->data.empty());
    EXPECT_EQ(again->injectTick, 0u);
}

TEST(PacketPool, RecyclingClearsTracerTags)
{
    // Regression: a recycled frame must not leak its previous life's
    // transaction-tracer tags — a stale txnId would attribute an
    // unrelated packet's hops to a finished transaction.
    PacketPool &pool = PacketPool::local();
    pool.trim();

    Packet *first;
    {
        PacketPtr pkt = makeProtocolPacket(1, 2, Opcode::RREQ, 0x40);
        pkt->txnId = 0xdeadbeefcafe;
        pkt->causeSpan = 7;
        pkt->legSpan = 9;
        pkt->injectTick = 1234;
        first = pkt.get();
    }
    PacketPtr again = makeProtocolPacket(3, 4, Opcode::WREQ, 0x80);
    ASSERT_EQ(again.get(), first) << "frame should be recycled LIFO";
    EXPECT_EQ(again->txnId, 0u);
    EXPECT_EQ(again->causeSpan, 0u);
    EXPECT_EQ(again->legSpan, 0u);
    EXPECT_EQ(again->injectTick, 0u);
}

TEST(PacketPool, CloneCopiesTracerTags)
{
    PacketPtr orig = makeProtocolPacket(0, 1, Opcode::WREQ, 0x40);
    orig->txnId = 42;
    orig->causeSpan = 3;
    orig->legSpan = 5;
    PacketPtr copy = clonePacket(*orig);
    EXPECT_EQ(copy->txnId, 42u);
    EXPECT_EQ(copy->causeSpan, 3u);
    EXPECT_EQ(copy->legSpan, 5u);
}

TEST(PacketPool, RecycledFramesKeepVectorCapacity)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();

    std::size_t cap;
    {
        PacketPtr pkt = makeDataPacket(0, 1, Opcode::RDATA, 0x100,
                                       std::vector<std::uint64_t>(16, 7));
        cap = pkt->data.capacity();
        ASSERT_GE(cap, 16u);
    }
    PacketPtr next = allocPacket();
    EXPECT_TRUE(next->data.empty());
    EXPECT_GE(next->data.capacity(), cap)
        << "recycling must preserve vector capacity";
}

TEST(PacketPool, RawReleaseAndRewrapRoundTrips)
{
    // The network layers release() the pointer into event captures and
    // rewrap with PacketPtr(raw); the deleter is stateless so the rewrap
    // must return the frame to the same thread-local pool.
    PacketPool &pool = PacketPool::local();
    pool.trim();

    PacketPtr pkt = makeProtocolPacket(0, 1, Opcode::RREQ, 0x40);
    Packet *raw = pkt.release();
    EXPECT_EQ(pool.freeFrames(), 0u);
    {
        PacketPtr rewrapped(raw);
    }
    EXPECT_EQ(pool.freeFrames(), 1u);
}

TEST(PacketPool, ClonePacketDeepCopies)
{
    PacketPtr orig = makeInterruptPacket(2, 5, Opcode::IPI_MESSAGE,
                                         {0x40, 1, 2}, {10, 11});
    PacketPtr copy = clonePacket(*orig);
    EXPECT_NE(copy.get(), orig.get());
    EXPECT_EQ(copy->src, orig->src);
    EXPECT_EQ(copy->dest, orig->dest);
    EXPECT_EQ(copy->opcode, orig->opcode);
    EXPECT_EQ(copy->operands, orig->operands);
    EXPECT_EQ(copy->data, orig->data);
    copy->operands[0] = 0xdead;
    EXPECT_EQ(orig->operands[0], 0x40u);
}

TEST(PacketPool, PoolsAreThreadLocal)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    { PacketPtr pkt = allocPacket(); }
    ASSERT_EQ(pool.freeFrames(), 1u);

    std::size_t other_free = 99;
    std::uint64_t other_allocs = 99;
    std::thread([&]() {
        other_free = PacketPool::local().freeFrames();
        { PacketPtr pkt = allocPacket(); }
        other_allocs = PacketPool::local().freshAllocs();
    }).join();
    EXPECT_EQ(other_free, 0u) << "new thread starts with an empty pool";
    EXPECT_EQ(other_allocs, 1u);
    EXPECT_EQ(pool.freeFrames(), 1u) << "other thread must not touch ours";
}

TEST(PacketPool, TrimDropsFreeList)
{
    PacketPool &pool = PacketPool::local();
    { PacketPtr a = allocPacket(); PacketPtr b = allocPacket(); }
    EXPECT_GE(pool.freeFrames(), 2u);
    pool.trim();
    EXPECT_EQ(pool.freeFrames(), 0u);
}

} // namespace
} // namespace limitless
