/**
 * @file
 * Weak-ordering tests: store buffering, same-thread forwarding, fence
 * semantics, atomic drain (release consistency), and full workloads
 * verifying under the weak model on every protocol — the paper's claim
 * that "the LimitLESS directory scheme can also be used with a
 * weakly-ordered memory model".
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"
#include "workload/weather.hh"

namespace limitless
{
namespace
{

MachineConfig
weakMachine(ProtocolParams proto, unsigned nodes = 16)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.proc.memoryModel = MemoryModel::weak;
    cfg.seed = 97;
    return cfg;
}

TEST(WeakOrdering, BufferedStoreDoesNotBlockTheThread)
{
    Machine m(weakMachine(protocols::fullMap(), 4));
    const Addr remote = m.addressMap().addrOnNode(3, 0);
    Tick store_time = 0;
    m.spawnOn(0, [&, remote](ThreadApi &t) -> Task<> {
        const Tick start = t.now();
        co_await t.write(remote, 7); // remote store: buffered
        store_time = t.now() - start;
        co_await t.fence(); // make it globally visible before exit
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_LE(store_time, 2u) << "store must retire into the buffer";
    // After the fence + drain the value is in the coherent system.
    EXPECT_EQ(m.node(3).mem().readLine(
                  m.addressMap().lineAddr(remote))[0], 0u)
        << "line should be held dirty by node 0's cache";
    const CacheLine *cl =
        m.node(0).cache().array().lookup(m.addressMap().lineAddr(remote));
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->words[0], 7u);
}

TEST(WeakOrdering, LoadForwardsFromTheStoreBuffer)
{
    Machine m(weakMachine(protocols::fullMap(), 4));
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        co_await t.write(a, 41);
        // Immediately readable through forwarding, long before the
        // store is globally performed.
        const Tick start = t.now();
        const std::uint64_t v = co_await t.read(a);
        EXPECT_EQ(v, 41u);
        EXPECT_LE(t.now() - start, 2u);
        co_await t.fence();
    });
    EXPECT_TRUE(m.run().completed);
    const auto *fw = static_cast<const Counter *>(
        m.node(0).statSet("proc")->find("store_forwards"));
    EXPECT_GE(fw->value(), 1u);
}

TEST(WeakOrdering, FenceWaitsForEveryBufferedStore)
{
    Machine m(weakMachine(protocols::fullMap(), 4));
    const AddressMap &amap = m.addressMap();
    Tick fence_time = 0;
    m.spawnOn(0, [&](ThreadApi &t) -> Task<> {
        for (unsigned i = 0; i < 4; ++i)
            co_await t.write(amap.addrOnNode(3, i), i + 1);
        const Tick start = t.now();
        co_await t.fence();
        fence_time = t.now() - start;
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_GT(fence_time, 10u) << "fence must wait out the drain";
    for (unsigned i = 0; i < 4; ++i) {
        const Addr line = amap.lineAddr(amap.addrOnNode(3, i));
        const CacheLine *cl = m.node(0).cache().array().lookup(line);
        ASSERT_NE(cl, nullptr);
        EXPECT_EQ(cl->words[0], i + 1);
    }
}

TEST(WeakOrdering, FenceIsFreeUnderSequentialConsistency)
{
    MachineConfig cfg = weakMachine(protocols::fullMap(), 4);
    cfg.proc.memoryModel = MemoryModel::sequential;
    Machine m(cfg);
    m.spawnOn(0, [](ThreadApi &t) -> Task<> {
        const Tick start = t.now();
        co_await t.fence();
        EXPECT_EQ(t.now(), start);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(WeakOrdering, AtomicsDrainTheBufferFirst)
{
    // Release consistency: a fetch-add issued after buffered stores must
    // not be observed before them.
    Machine m(weakMachine(protocols::fullMap(), 4));
    const Addr data = m.addressMap().addrOnNode(2, 0);
    const Addr flag = m.addressMap().addrOnNode(3, 1);
    unsigned violations = 0;
    m.spawnOn(0, [&, data, flag](ThreadApi &t) -> Task<> {
        co_await t.write(data, 123);    // buffered
        co_await t.fetchAdd(flag, 1);   // drains, then publishes
    });
    m.spawnOn(1, [&, data, flag](ThreadApi &t) -> Task<> {
        while ((co_await t.read(flag)) == 0)
            co_await t.compute(6);
        if ((co_await t.read(data)) != 123)
            ++violations;
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(violations, 0u);
}

TEST(WeakOrdering, StoreBufferBackpressureStallsWhenFull)
{
    MachineConfig cfg = weakMachine(protocols::fullMap(), 4);
    cfg.proc.storeBufferDepth = 2;
    Machine m(cfg);
    const AddressMap &amap = m.addressMap();
    m.spawnOn(0, [&](ThreadApi &t) -> Task<> {
        // 10 remote stores through a 2-deep buffer: the thread must
        // stall sometimes, but everything still lands.
        for (unsigned i = 0; i < 10; ++i)
            co_await t.write(amap.addrOnNode(3, i), 100 + i);
        co_await t.fence();
    });
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
    for (unsigned i = 0; i < 10; ++i) {
        const Addr line = amap.lineAddr(amap.addrOnNode(3, i));
        const CacheLine *cl = m.node(0).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite) {
            EXPECT_EQ(cl->words[0], 100 + i);
        } else {
            EXPECT_EQ(m.node(3).mem().readLine(line)[0], 100 + i);
        }
    }
}

TEST(WeakOrdering, WorkloadsVerifyUnderWeakOrderingOnEveryProtocol)
{
    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(2),
          protocols::limitlessStall(4, 50),
          protocols::limitlessEmulated(4), protocols::chained()}) {
        {
            MultigridParams wp;
            wp.iterations = 3;
            wp.interiorLines = 6;
            Machine m(weakMachine(proto));
            Multigrid wl(wp);
            wl.install(m);
            ASSERT_TRUE(m.run().completed) << proto.name();
            wl.verify(m);
            CoherenceMonitor(m).checkQuiescent();
        }
        {
            RandomStressParams rp;
            rp.opsPerProc = 60;
            Machine m(weakMachine(proto));
            RandomStress wl(rp);
            wl.install(m);
            ASSERT_TRUE(m.run().completed) << proto.name();
            wl.verify(m);
        }
    }
}

TEST(WeakOrdering, HidesWriteLatency)
{
    // A write-heavy kernel (scatter to remote homes) should speed up
    // under weak ordering: the thread no longer blocks per store.
    auto run = [&](MemoryModel model) {
        MachineConfig cfg = weakMachine(protocols::fullMap(), 16);
        cfg.proc.memoryModel = model;
        Machine m(cfg);
        for (NodeId p = 0; p < 16; ++p) {
            m.spawnOn(p, [&m, p](ThreadApi &t) -> Task<> {
                const AddressMap &amap = m.addressMap();
                for (unsigned i = 0; i < 30; ++i) {
                    co_await t.write(
                        amap.addrOnNode((p + 1 + i) % 16, p * 64 + i),
                        i);
                    co_await t.compute(4);
                }
                co_await t.fence();
            });
        }
        const RunResult r = m.run();
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    const Tick sc = run(MemoryModel::sequential);
    const Tick weak = run(MemoryModel::weak);
    EXPECT_LT(weak, sc * 3 / 4) << "weak ordering should hide >25% here";
}

} // namespace
} // namespace limitless
