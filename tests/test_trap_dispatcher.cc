/**
 * @file
 * Trap-dispatcher unit tests: in-order queue drain, protocol/message
 * routing, multi-service fan-out, processor occupancy charging, and the
 * unhandled-packet accounting.
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "check/explorer.hh"
#include "harness/experiment.hh"
#include "machine/machine.hh"
#include "mem/memory_controller.hh"

namespace limitless
{
namespace
{

MachineConfig
emulated(unsigned nodes = 4)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::limitlessEmulated(2);
    cfg.seed = 53;
    return cfg;
}

TEST(TrapDispatcher, DeliversMessagesInArrivalOrder)
{
    Machine m(emulated());
    std::vector<std::uint64_t> seen;
    m.node(2).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE,
        [&seen](const Packet &pkt) {
            seen.push_back(pkt.operands.at(0));
        });
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        for (std::uint64_t k = 1; k <= 5; ++k)
            m.node(1).ipi().send(makeInterruptPacket(
                1, 2, Opcode::IPI_MESSAGE, {k}));
        co_await t.compute(1);
    });
    m.spawnOn(2, [](ThreadApi &t) -> Task<> { co_await t.compute(200); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(TrapDispatcher, MultipleServicesShareAnOpcode)
{
    Machine m(emulated());
    unsigned a_hits = 0, b_hits = 0;
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &pkt) {
            if (pkt.operands.at(0) == 100)
                ++a_hits;
        });
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &pkt) {
            if (pkt.operands.at(0) == 200)
                ++b_hits;
        });
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {100}));
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {200}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(150); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(a_hits, 1u);
    EXPECT_EQ(b_hits, 1u);
}

TEST(TrapDispatcher, ChargesOccupancyToTheProcessor)
{
    Machine m(emulated());
    m.node(0).dispatcher().registerMessage(Opcode::IPI_MESSAGE,
                                           [](const Packet &) {});
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        for (int k = 0; k < 10; ++k)
            m.node(1).ipi().send(
                makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {1}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(400); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_GE(m.node(0).processor().stallCycles(), 10u)
        << "each trap preempts the application";
    const auto *msgs = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("messages"));
    EXPECT_EQ(msgs->value(), 10u);
}

TEST(TrapDispatcher, CountsUnhandledInterrupts)
{
    Machine m(emulated());
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {9}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(100); });
    ASSERT_TRUE(m.run().completed);
    const auto *unhandled = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("unhandled"));
    EXPECT_EQ(unhandled->value(), 1u);
}

TEST(TrapDispatcher, ProtocolTrapsAndMessagesInterleaveSafely)
{
    // Overflow traps (protocol packets) and active messages share the
    // queue; both must be serviced without interference.
    Machine m(emulated(8));
    const Addr hot = m.addressMap().addrOnNode(0, 0);
    unsigned messages = 0;
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &) { ++messages; });
    for (NodeId p = 1; p < 8; ++p) {
        m.spawnOn(p, [&m, hot, p](ThreadApi &t) -> Task<> {
            co_await t.read(hot); // overflows the 2-pointer entry
            m.node(p).ipi().send(
                makeInterruptPacket(p, 0, Opcode::IPI_MESSAGE, {p}));
            co_await t.compute(5);
        });
    }
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(600); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(messages, 7u);
    EXPECT_GT(m.sumCounter("handler", "read_traps"), 0u);
    const auto *proto_traps = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("protocol_traps"));
    EXPECT_GT(proto_traps->value(), 0u);
}

TEST(TrapWindowRace, RequestDuringWriteGatherIsNotGrantedData)
{
    // End-to-end version of the trap-window interlock. The
    // Trans-In-Progress meta-state itself is sub-step: the handler is
    // IPI-dispatched and completes within one event drain, restoring
    // Normal mode and handing the line back to hardware as a
    // Write-Transaction awaiting ACKCs (handler handleWrite, paper
    // §4.4). So the window that is *observable between steps* — and that
    // a real concurrent requester can race into — is that hardware
    // gather: invalidations in flight, acknowledgment counter armed.
    //
    // Search the limitless full-emulation state space for a reachable
    // state where the home line sits in that post-trap gather while
    // another node's RREQ/WREQ is already in flight toward the home,
    // deliver the request into the window, and require that it is
    // interlocked (deferred or BUSY-nacked), never answered with data
    // from the still-unacknowledged line.
    //
    // The rmw script (every node loads, then stores, line 0) makes the
    // window easy to reach with one hardware pointer: the loads overflow
    // into Trap-On-Write, the first store trips the write-gather trap,
    // and the remaining nodes' requests race into it.
    CheckConfig cfg;
    cfg.protocol = protocols::limitlessEmulated(1);
    cfg.nodes = 3;
    cfg.script = "rmw";

    std::deque<Schedule> frontier{Schedule{}};
    std::set<std::string> seen;
    unsigned windows = 0, expanded = 0;
    while (!frontier.empty() && windows == 0 && expanded < 20000) {
        const Schedule sched = frontier.front();
        frontier.pop_front();
        ++expanded;
        auto w = replaySchedule(cfg, sched);
        if (!seen.insert(w->fingerprint()).second)
            continue;

        Machine &m = w->machine();
        const Addr line = cfg.lineSet(m.addressMap())[0];
        const NodeId home = m.addressMap().homeOf(line);
        const bool in_window =
            m.node(home).mem().lineState(line) ==
                MemState::writeTransaction &&
            m.sumCounter("handler", "write_traps") > 0;

        for (const Choice &c : w->enabled()) {
            const bool racing_request =
                c.kind == Choice::Kind::deliver && c.node == home &&
                c.line == line &&
                (c.opcode == Opcode::RREQ || c.opcode == Opcode::WREQ);
            if (in_window && racing_request) {
                const NodeId requester = c.src;
                ASSERT_TRUE(w->apply(c));
                EXPECT_FALSE(w->checkStep().any());
                // Still gathering: the race must not have produced a
                // grant. Any data packet home->requester now in flight
                // would be an answer to the delivered request (the
                // requester was idle, its earlier replies consumed).
                EXPECT_EQ(m.node(home).mem().lineState(line),
                          MemState::writeTransaction);
                w->network().forEachChannel(
                    [&](NodeId src, NodeId dest, const Packet &head,
                        std::size_t) {
                        if (src == home && dest == requester)
                            EXPECT_TRUE(head.opcode != Opcode::RDATA &&
                                        head.opcode != Opcode::WDATA)
                                << describePacket(head)
                                << " granted inside the gather window";
                    });
                ++windows;
                break;
            }
            Schedule next = sched;
            next.push_back(c);
            frontier.push_back(std::move(next));
        }
    }
    EXPECT_GT(windows, 0u)
        << "no reachable write-gather window with a racing request in "
        << expanded << " expansions — script or search broken";
}

} // namespace
} // namespace limitless
