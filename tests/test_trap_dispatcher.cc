/**
 * @file
 * Trap-dispatcher unit tests: in-order queue drain, protocol/message
 * routing, multi-service fan-out, processor occupancy charging, and the
 * unhandled-packet accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "machine/machine.hh"

namespace limitless
{
namespace
{

MachineConfig
emulated(unsigned nodes = 4)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::limitlessEmulated(2);
    cfg.seed = 53;
    return cfg;
}

TEST(TrapDispatcher, DeliversMessagesInArrivalOrder)
{
    Machine m(emulated());
    std::vector<std::uint64_t> seen;
    m.node(2).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE,
        [&seen](const Packet &pkt) {
            seen.push_back(pkt.operands.at(0));
        });
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        for (std::uint64_t k = 1; k <= 5; ++k)
            m.node(1).ipi().send(makeInterruptPacket(
                1, 2, Opcode::IPI_MESSAGE, {k}));
        co_await t.compute(1);
    });
    m.spawnOn(2, [](ThreadApi &t) -> Task<> { co_await t.compute(200); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(TrapDispatcher, MultipleServicesShareAnOpcode)
{
    Machine m(emulated());
    unsigned a_hits = 0, b_hits = 0;
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &pkt) {
            if (pkt.operands.at(0) == 100)
                ++a_hits;
        });
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &pkt) {
            if (pkt.operands.at(0) == 200)
                ++b_hits;
        });
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {100}));
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {200}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(150); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(a_hits, 1u);
    EXPECT_EQ(b_hits, 1u);
}

TEST(TrapDispatcher, ChargesOccupancyToTheProcessor)
{
    Machine m(emulated());
    m.node(0).dispatcher().registerMessage(Opcode::IPI_MESSAGE,
                                           [](const Packet &) {});
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        for (int k = 0; k < 10; ++k)
            m.node(1).ipi().send(
                makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {1}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(400); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_GE(m.node(0).processor().stallCycles(), 10u)
        << "each trap preempts the application";
    const auto *msgs = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("messages"));
    EXPECT_EQ(msgs->value(), 10u);
}

TEST(TrapDispatcher, CountsUnhandledInterrupts)
{
    Machine m(emulated());
    m.spawnOn(1, [&m](ThreadApi &t) -> Task<> {
        m.node(1).ipi().send(
            makeInterruptPacket(1, 0, Opcode::IPI_MESSAGE, {9}));
        co_await t.compute(1);
    });
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(100); });
    ASSERT_TRUE(m.run().completed);
    const auto *unhandled = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("unhandled"));
    EXPECT_EQ(unhandled->value(), 1u);
}

TEST(TrapDispatcher, ProtocolTrapsAndMessagesInterleaveSafely)
{
    // Overflow traps (protocol packets) and active messages share the
    // queue; both must be serviced without interference.
    Machine m(emulated(8));
    const Addr hot = m.addressMap().addrOnNode(0, 0);
    unsigned messages = 0;
    m.node(0).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE, [&](const Packet &) { ++messages; });
    for (NodeId p = 1; p < 8; ++p) {
        m.spawnOn(p, [&m, hot, p](ThreadApi &t) -> Task<> {
            co_await t.read(hot); // overflows the 2-pointer entry
            m.node(p).ipi().send(
                makeInterruptPacket(p, 0, Opcode::IPI_MESSAGE, {p}));
            co_await t.compute(5);
        });
    }
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(600); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(messages, 7u);
    EXPECT_GT(m.sumCounter("handler", "read_traps"), 0u);
    const auto *proto_traps = static_cast<const Counter *>(
        m.node(0).statSet("trap")->find("protocol_traps"));
    EXPECT_GT(proto_traps->value(), 0u);
}

} // namespace
} // namespace limitless
