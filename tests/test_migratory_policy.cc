/**
 * @file
 * Migratory-line policy tests (Section 6 extension): FIFO software
 * eviction on LimitLESS pointer overflow instead of bit-vector
 * allocation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/migratory.hh"

namespace limitless
{
namespace
{

TEST(MigratoryPolicy, OverflowEvictsInsteadOfSpilling)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessStall(2, 50);
    cfg.seed = 71;
    Machine m(cfg);
    const Addr a = m.addressMap().addrOnNode(0, 0);
    const Addr line = m.addressMap().lineAddr(a);
    m.policy().markMigratory(line);

    // Five readers overflow the 2-pointer entry three times.
    for (NodeId p = 1; p <= 5; ++p) {
        m.spawnOn(p, [a, p](ThreadApi &t) -> Task<> {
            co_await t.compute(p * 40); // serialize arrivals
            co_await t.read(a);
        });
    }
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();

    MemoryController &home = m.node(0).mem();
    EXPECT_FALSE(home.softwareTable().has(line))
        << "migratory lines must not allocate bit vectors";
    EXPECT_EQ(home.softwareTable().allocations(), 0u);
    const auto *evicts = static_cast<const Counter *>(
        home.stats().find("migratory_evictions"));
    EXPECT_EQ(evicts->value(), 3u);
    // Only the 2 newest readers keep copies.
    EXPECT_EQ(home.directory().numSharers(line), 2u);
}

TEST(MigratoryPolicy, MigratoryWorkloadStillVerifies)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessStall(2, 50);
    cfg.seed = 71;
    Machine m(cfg);
    MigratoryParams mp;
    mp.rounds = 3;
    mp.objectLines = 3;
    // Mark the whole migrating object.
    for (unsigned k = 0; k < mp.objectLines; ++k)
        m.policy().markMigratory(m.addressMap().addrOnNode(0, k));
    Migratory wl(mp);
    wl.install(m);
    ASSERT_TRUE(m.run().completed);
    wl.verify(m);
    CoherenceMonitor(m).checkQuiescent();
}

TEST(MigratoryPolicy, UnmarkedLinesStillSpillNormally)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessStall(2, 50);
    cfg.seed = 71;
    Machine m(cfg);
    const Addr a = m.addressMap().addrOnNode(0, 0);
    for (NodeId p = 1; p <= 5; ++p) {
        m.spawnOn(p, [a, p](ThreadApi &t) -> Task<> {
            co_await t.compute(p * 40);
            co_await t.read(a);
        });
    }
    ASSERT_TRUE(m.run().completed);
    MemoryController &home = m.node(0).mem();
    EXPECT_TRUE(home.softwareTable().has(m.addressMap().lineAddr(a)));
    const auto *evicts = static_cast<const Counter *>(
        home.stats().find("migratory_evictions"));
    EXPECT_EQ(evicts->value(), 0u);
    // All five readers keep copies (hardware pointers + spilled vector).
    CoherenceMonitor(m).checkQuiescent();
}

} // namespace
} // namespace limitless
