/**
 * @file
 * Unit and property tests for the topology hierarchy: coordinate
 * arithmetic, the distance/routing contract every implementation must
 * satisfy (symmetry, hop-decreasing nextHop, reverse channels), the
 * torus wrap distance, the express-mesh route-length bound, and a
 * golden routing dump for one 4x4 torus.
 *
 * Regenerate the golden after an intentional routing change with
 *   LIMITLESS_UPDATE_GOLDEN=1 ./test_topology
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "network/topology.hh"

namespace limitless
{
namespace
{

/** The shapes the property tests sweep: non-square on purpose. */
std::vector<std::shared_ptr<const Topology>>
propertyTopologies()
{
    std::vector<std::shared_ptr<const Topology>> topos;
    topos.push_back(std::make_shared<MeshTopology>(5, 4));
    topos.push_back(std::make_shared<MeshTopology>(8, 1));
    topos.push_back(std::make_shared<TorusTopology>(5, 4));
    topos.push_back(std::make_shared<TorusTopology>(2, 2));
    topos.push_back(std::make_shared<ExpressMeshTopology>(8, 8, 4));
    topos.push_back(std::make_shared<ExpressMeshTopology>(9, 2, 3));
    return topos;
}

TEST(Topology, CoordinatesRoundTrip)
{
    MeshTopology topo(8, 8);
    EXPECT_EQ(topo.numNodes(), 64u);
    for (NodeId n = 0; n < 64; ++n)
        EXPECT_EQ(topo.nodeAt(topo.xOf(n), topo.yOf(n)), n);
}

TEST(Topology, ManhattanDistance)
{
    MeshTopology topo(8, 8);
    EXPECT_EQ(topo.hops(0, 0), 0u);
    EXPECT_EQ(topo.hops(0, 7), 7u);
    EXPECT_EQ(topo.hops(0, 63), 14u);
    EXPECT_EQ(topo.hops(topo.nodeAt(2, 3), topo.nodeAt(5, 1)), 5u);
}

TEST(Topology, NonSquareMesh)
{
    MeshTopology topo(4, 3);
    EXPECT_EQ(topo.numNodes(), 12u);
    EXPECT_EQ(topo.xOf(11), 3u);
    EXPECT_EQ(topo.yOf(11), 2u);
    EXPECT_EQ(topo.hops(0, 11), 5u);
}

TEST(Topology, SingleNodeMesh)
{
    MeshTopology topo(1, 1);
    EXPECT_EQ(topo.numNodes(), 1u);
    EXPECT_EQ(topo.hops(0, 0), 0u);
}

TEST(Topology, HopSymmetryAndIdentity)
{
    for (const auto &topo : propertyTopologies()) {
        const unsigned n = topo->numNodes();
        for (NodeId a = 0; a < n; ++a) {
            EXPECT_EQ(topo->hops(a, a), 0u) << topo->name();
            for (NodeId b = a + 1; b < n; ++b) {
                EXPECT_EQ(topo->hops(a, b), topo->hops(b, a))
                    << topo->name() << " " << a << "," << b;
                EXPECT_GT(topo->hops(a, b), 0u) << topo->name();
            }
        }
    }
}

TEST(Topology, TriangleInequalityOnMetricTopologies)
{
    // Mesh and torus distances are metrics. The express mesh is
    // deliberately excluded: its hops() is the monotone
    // jumps-then-walks route length, which forgoes overshoot
    // shortcuts, so d(a,c) can exceed d(a,b) + d(b,c) (see
    // docs/TOPOLOGY.md).
    for (const auto &topo : propertyTopologies()) {
        if (topo->kind() == TopologyKind::expressMesh)
            continue;
        const unsigned n = topo->numNodes();
        for (NodeId a = 0; a < n; ++a)
            for (NodeId b = 0; b < n; ++b)
                for (NodeId c = 0; c < n; ++c)
                    EXPECT_LE(topo->hops(a, c),
                              topo->hops(a, b) + topo->hops(b, c))
                        << topo->name() << " " << a << "," << b << ","
                        << c;
    }
}

TEST(Topology, TorusWrapDistanceIsMinOfTheTwoWays)
{
    TorusTopology topo(8, 4);
    for (unsigned x1 = 0; x1 < 8; ++x1) {
        for (unsigned x2 = 0; x2 < 8; ++x2) {
            const unsigned d = x1 > x2 ? x1 - x2 : x2 - x1;
            EXPECT_EQ(topo.hops(topo.nodeAt(x1, 0), topo.nodeAt(x2, 0)),
                      std::min(d, 8 - d));
        }
    }
    for (unsigned y1 = 0; y1 < 4; ++y1) {
        for (unsigned y2 = 0; y2 < 4; ++y2) {
            const unsigned d = y1 > y2 ? y1 - y2 : y2 - y1;
            EXPECT_EQ(topo.hops(topo.nodeAt(0, y1), topo.nodeAt(0, y2)),
                      std::min(d, 4 - d));
        }
    }
    // Corner to corner wraps both dimensions.
    EXPECT_EQ(topo.hops(topo.nodeAt(0, 0), topo.nodeAt(7, 3)), 2u);
}

TEST(Topology, ExpressHopsNeverExceedMeshHops)
{
    MeshTopology mesh(8, 8);
    for (unsigned stride : {2u, 3u, 4u}) {
        ExpressMeshTopology express(8, 8, stride);
        for (NodeId a = 0; a < 64; ++a)
            for (NodeId b = 0; b < 64; ++b)
                EXPECT_LE(express.hops(a, b), mesh.hops(a, b))
                    << "stride " << stride;
    }
    // And they do help: corner to corner with stride 4 is 2 jumps per
    // dimension plus 3 walks.
    ExpressMeshTopology express(8, 8, 4);
    EXPECT_EQ(express.hops(0, 63), (7 / 4 + 7 % 4) * 2u);
}

TEST(Topology, NextHopDecreasesHopsByExactlyOne)
{
    for (const auto &topo : propertyTopologies()) {
        const unsigned n = topo->numNodes();
        for (NodeId a = 0; a < n; ++a) {
            for (NodeId b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                NodeId at = a;
                unsigned remaining = topo->hops(a, b);
                while (at != b) {
                    const NodeId next = topo->nextHop(at, b);
                    ASSERT_EQ(topo->hops(next, b), remaining - 1)
                        << topo->name() << " " << a << "->" << b
                        << " at " << at;
                    at = next;
                    --remaining;
                }
                EXPECT_EQ(remaining, 0u);
            }
        }
    }
}

TEST(Topology, NextChannelPointsAtTheNextHop)
{
    for (const auto &topo : propertyTopologies()) {
        const unsigned n = topo->numNodes();
        for (NodeId a = 0; a < n; ++a) {
            for (NodeId b = 0; b < n; ++b) {
                if (a == b)
                    continue;
                const unsigned ch = topo->nextChannel(a, b);
                ASSERT_LT(ch, topo->neighbors(a).size());
                EXPECT_EQ(topo->neighbors(a)[ch], topo->nextHop(a, b));
            }
        }
    }
}

TEST(Topology, ReverseChannelRoundTrips)
{
    // neighbors(m)[reverseChannel(n, c)] == n for every link, including
    // the width-2 torus where E and W reach the same neighbor and a
    // naive search is ambiguous.
    for (const auto &topo : propertyTopologies()) {
        const unsigned n = topo->numNodes();
        for (NodeId a = 0; a < n; ++a) {
            for (unsigned c = 0; c < topo->neighbors(a).size(); ++c) {
                const NodeId m = topo->neighbors(a)[c];
                const unsigned rc = topo->reverseChannel(a, c);
                ASSERT_LT(rc, topo->neighbors(m).size()) << topo->name();
                EXPECT_EQ(topo->neighbors(m)[rc], a)
                    << topo->name() << " " << a << " ch " << c;
            }
        }
    }
}

TEST(Topology, TorusReverseOfReverseIsIdentity)
{
    // On the width-2 ring both channels at a node reach the same
    // neighbor; pairing must still be an involution per physical link.
    TorusTopology topo(2, 2);
    for (NodeId a = 0; a < 4; ++a) {
        for (unsigned c = 0; c < topo.neighbors(a).size(); ++c) {
            const NodeId m = topo.neighbors(a)[c];
            const unsigned rc = topo.reverseChannel(a, c);
            EXPECT_EQ(topo.reverseChannel(m, rc), c)
                << a << " ch " << c;
        }
    }
}

TEST(Topology, AverageHopsMatchesBruteForce)
{
    for (const auto &topo : propertyTopologies()) {
        const unsigned n = topo->numNodes();
        double total = 0;
        for (NodeId a = 0; a < n; ++a)
            for (NodeId b = 0; b < n; ++b)
                total += topo->hops(a, b);
        EXPECT_NEAR(topo->averageHops(),
                    total / (double(n) * double(n)), 1e-9)
            << topo->name() << " " << topo->width() << "x"
            << topo->height();
    }
}

TEST(Topology, MakeTopologyFactorizesSquarely)
{
    TopologyParams p;
    EXPECT_EQ(makeTopology(p, 64)->width(), 8u);
    EXPECT_EQ(makeTopology(p, 64)->height(), 8u);
    EXPECT_EQ(makeTopology(p, 1024)->width(), 32u);
    // Non-square counts come out wider than tall.
    EXPECT_EQ(makeTopology(p, 12)->width(), 4u);
    EXPECT_EQ(makeTopology(p, 12)->height(), 3u);
    EXPECT_EQ(makeTopology(p, 2)->width(), 2u);
    EXPECT_EQ(makeTopology(p, 2)->height(), 1u);
    // Explicit width wins.
    p.width = 16;
    EXPECT_EQ(makeTopology(p, 64)->height(), 4u);
}

TEST(Topology, MakeTopologyBuildsTheRequestedKind)
{
    TopologyParams p;
    p.kind = TopologyKind::torus;
    EXPECT_EQ(makeTopology(p, 16)->kind(), TopologyKind::torus);
    p.kind = TopologyKind::expressMesh;
    p.expressStride = 2;
    const auto topo = makeTopology(p, 64);
    EXPECT_EQ(topo->kind(), TopologyKind::expressMesh);
    EXPECT_EQ(static_cast<const ExpressMeshTopology &>(*topo).stride(),
              2u);
}

TEST(Topology, ParseTopologyKind)
{
    TopologyParams p;
    EXPECT_TRUE(parseTopologyKind("mesh", p));
    EXPECT_EQ(p.kind, TopologyKind::mesh);
    EXPECT_TRUE(parseTopologyKind("torus", p));
    EXPECT_EQ(p.kind, TopologyKind::torus);
    EXPECT_TRUE(parseTopologyKind("express", p));
    EXPECT_EQ(p.kind, TopologyKind::expressMesh);
    EXPECT_TRUE(parseTopologyKind("express:2", p));
    EXPECT_EQ(p.expressStride, 2u);
    EXPECT_FALSE(parseTopologyKind("hypercube", p));
}

/** Full route enumeration for one 4x4 torus, one line per pair. */
std::string
torusRoutingDump()
{
    TorusTopology topo(4, 4);
    std::ostringstream os;
    os << "torus 4x4 routing v1\n";
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            os << s << ">" << d << ":";
            NodeId at = s;
            while (at != d) {
                const unsigned ch = topo.nextChannel(at, d);
                os << " " << topo.neighbors(at)[ch]
                   << (topo.channelWrap(at, ch) ? "w" : "");
                at = topo.neighbors(at)[ch];
            }
            os << "\n";
        }
    }
    return os.str();
}

TEST(Topology, GoldenTorusRouting)
{
    const std::string path =
        std::string(LIMITLESS_GOLDEN_DIR) + "/topology_torus4x4.txt";
    const std::string dump = torusRoutingDump();
    if (std::getenv("LIMITLESS_UPDATE_GOLDEN")) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << path;
        os << dump;
        return;
    }
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << "missing golden " << path
                           << " (set LIMITLESS_UPDATE_GOLDEN=1 to write)";
    std::ostringstream golden;
    golden << is.rdbuf();
    EXPECT_EQ(dump, golden.str())
        << "torus routing changed; regenerate the golden if intended";
}

} // namespace
} // namespace limitless
