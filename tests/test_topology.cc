/** @file Unit tests for mesh topology arithmetic. */

#include <gtest/gtest.h>

#include "network/topology.hh"

namespace limitless
{
namespace
{

TEST(Topology, CoordinatesRoundTrip)
{
    MeshTopology topo(8, 8);
    EXPECT_EQ(topo.numNodes(), 64u);
    for (NodeId n = 0; n < 64; ++n)
        EXPECT_EQ(topo.nodeAt(topo.xOf(n), topo.yOf(n)), n);
}

TEST(Topology, ManhattanDistance)
{
    MeshTopology topo(8, 8);
    EXPECT_EQ(topo.hops(0, 0), 0u);
    EXPECT_EQ(topo.hops(0, 7), 7u);
    EXPECT_EQ(topo.hops(0, 63), 14u);
    EXPECT_EQ(topo.hops(topo.nodeAt(2, 3), topo.nodeAt(5, 1)), 5u);
    // Symmetry.
    for (NodeId a : {0u, 9u, 27u, 63u})
        for (NodeId b : {5u, 14u, 40u})
            EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
}

TEST(Topology, NonSquareMesh)
{
    MeshTopology topo(4, 3);
    EXPECT_EQ(topo.numNodes(), 12u);
    EXPECT_EQ(topo.xOf(11), 3u);
    EXPECT_EQ(topo.yOf(11), 2u);
    EXPECT_EQ(topo.hops(0, 11), 5u);
}

TEST(Topology, AverageHopsMatchesBruteForce)
{
    MeshTopology topo(4, 4);
    double total = 0;
    for (NodeId a = 0; a < 16; ++a)
        for (NodeId b = 0; b < 16; ++b)
            total += topo.hops(a, b);
    EXPECT_NEAR(topo.averageHops(), total / (16.0 * 16.0), 1e-9);
}

TEST(Topology, SingleNodeMesh)
{
    MeshTopology topo(1, 1);
    EXPECT_EQ(topo.numNodes(), 1u);
    EXPECT_EQ(topo.hops(0, 0), 0u);
}

} // namespace
} // namespace limitless
