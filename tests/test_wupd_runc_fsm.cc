/**
 * @file
 * Directed memory-FSM tests for the reproduction's extension opcodes:
 * WUPD (write-update) in every reachable state, the silent (kernel)
 * variant, and RUNC (uncached read) including the dirty-line recall.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "machine/address_map.hh"
#include "mem/memory_controller.hh"

namespace limitless
{
namespace
{

struct Harness
{
    EventQueue eq;
    AddressMap amap{4, 16};
    MemoryController mc;
    std::vector<PacketPtr> sent;

    explicit Harness(ProtocolParams proto = protocols::fullMap())
        : mc(eq, 0, amap, proto, MemParams{})
    {
        mc.setSend([this](PacketPtr p) { sent.push_back(std::move(p)); });
        mc.setTrapStall([](Tick) {});
        mc.setDivert([](PacketPtr) { FAIL() << "unexpected divert"; });
    }

    Addr line(std::uint64_t slot = 0) const
    {
        return amap.addrOnNode(0, slot);
    }

    void
    inject(PacketPtr pkt)
    {
        mc.enqueue(std::move(pkt));
        eq.run();
    }

    void
    wupd(NodeId src, Addr a, unsigned word, MemOpKind kind,
         std::uint64_t value, bool silent = false)
    {
        auto pkt = makeProtocolPacket(src, 0, Opcode::WUPD, a);
        pkt->operands.push_back(word);
        pkt->operands.push_back(static_cast<std::uint64_t>(kind));
        pkt->operands.push_back(value);
        if (silent)
            pkt->operands.push_back(1);
        inject(std::move(pkt));
    }

    unsigned
    count(Opcode op, NodeId dest = invalidNode) const
    {
        unsigned n = 0;
        for (const auto &p : sent)
            n += p->opcode == op &&
                 (dest == invalidNode || p->dest == dest);
        return n;
    }

    const Packet *
    lastOf(Opcode op) const
    {
        for (auto it = sent.rbegin(); it != sent.rend(); ++it)
            if ((*it)->opcode == op)
                return it->get();
        return nullptr;
    }
};

TEST(WupdFsm, UnsharedLineAppliesAndAcksImmediately)
{
    Harness h;
    h.wupd(2, h.line(), 0, MemOpKind::store, 77);
    ASSERT_EQ(h.count(Opcode::WACK, 2), 1u);
    EXPECT_EQ(h.lastOf(Opcode::WACK)->operands.at(1), 0u) << "old value";
    EXPECT_EQ(h.mc.readLine(h.line())[0], 77u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
}

TEST(WupdFsm, FetchAddAtMemoryReturnsOldValue)
{
    Harness h;
    h.wupd(2, h.line(), 1, MemOpKind::fetchAdd, 5);
    h.wupd(3, h.line(), 1, MemOpKind::fetchAdd, 7);
    ASSERT_EQ(h.count(Opcode::WACK), 2u);
    EXPECT_EQ(h.lastOf(Opcode::WACK)->operands.at(1), 5u);
    EXPECT_EQ(h.mc.readLine(h.line())[1], 12u);
}

TEST(WupdFsm, SharersAreRefreshedAndAckedBeforeTheWack)
{
    Harness h;
    h.inject(makeProtocolPacket(1, 0, Opcode::RREQ, h.line()));
    h.inject(makeProtocolPacket(2, 0, Opcode::RREQ, h.line()));
    h.sent.clear();
    h.wupd(3, h.line(), 0, MemOpKind::store, 9);
    EXPECT_EQ(h.count(Opcode::MUPD, 1), 1u);
    EXPECT_EQ(h.count(Opcode::MUPD, 2), 1u);
    EXPECT_EQ(h.count(Opcode::WACK, 3), 0u) << "not before the acks";
    EXPECT_EQ(h.lastOf(Opcode::MUPD)->data[0], 9u)
        << "refresh carries the updated line";
    // Acks arrive.
    auto ack1 = makeProtocolPacket(1, 0, Opcode::ACKC, h.line());
    h.inject(std::move(ack1));
    EXPECT_EQ(h.count(Opcode::WACK, 3), 0u);
    auto ack2 = makeProtocolPacket(2, 0, Opcode::ACKC, h.line());
    h.inject(std::move(ack2));
    EXPECT_EQ(h.count(Opcode::WACK, 3), 1u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly)
        << "update-mode lines never become exclusive";
    // The sharer set is intact.
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 1));
    EXPECT_TRUE(h.mc.directory().contains(h.line(), 2));
}

TEST(WupdFsm, SilentVariantSuppressesTheWack)
{
    Harness h;
    h.wupd(2, h.line(), 0, MemOpKind::store, 5, /*silent=*/true);
    EXPECT_EQ(h.count(Opcode::WACK), 0u);
    EXPECT_EQ(h.mc.readLine(h.line())[0], 5u);
}

TEST(WupdFsm, DirtyLineIsRecalledThenApplied)
{
    Harness h;
    h.inject(makeProtocolPacket(1, 0, Opcode::WREQ, h.line()));
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::readWrite);
    h.sent.clear();
    h.wupd(2, h.line(), 0, MemOpKind::fetchAdd, 10);
    EXPECT_EQ(h.count(Opcode::INV, 1), 1u) << "owner recalled";
    EXPECT_EQ(h.count(Opcode::WACK), 0u);
    // Owner returns its dirty data (word0 = 100).
    h.inject(makeDataPacket(1, 0, Opcode::UPDATE, h.line(), {100, 0}));
    ASSERT_EQ(h.count(Opcode::WACK, 2), 1u);
    EXPECT_EQ(h.lastOf(Opcode::WACK)->operands.at(1), 100u)
        << "old value comes from the recalled data";
    EXPECT_EQ(h.mc.readLine(h.line())[0], 110u);
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
}

// ------------------------------------------------------------- RUNC

TEST(RuncFsm, ReadsWithoutRecordingAPointer)
{
    Harness h;
    h.inject(makeProtocolPacket(2, 0, Opcode::RUNC, h.line()));
    ASSERT_EQ(h.count(Opcode::RDATA, 2), 1u);
    EXPECT_EQ(h.mc.directory().numSharers(h.line()), 0u);
}

TEST(RuncFsm, DirtyLineIsRecalledForTheUncachedReader)
{
    Harness h;
    h.inject(makeProtocolPacket(1, 0, Opcode::WREQ, h.line()));
    h.sent.clear();
    h.inject(makeProtocolPacket(2, 0, Opcode::RUNC, h.line()));
    EXPECT_EQ(h.count(Opcode::INV, 1), 1u);
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 0u);
    h.inject(makeDataPacket(1, 0, Opcode::UPDATE, h.line(), {42, 43}));
    ASSERT_EQ(h.count(Opcode::RDATA, 2), 1u);
    EXPECT_EQ(h.lastOf(Opcode::RDATA)->data[0], 42u);
    EXPECT_EQ(h.mc.directory().numSharers(h.line()), 0u)
        << "the uncached reader is not tracked";
    EXPECT_EQ(h.mc.lineState(h.line()), MemState::readOnly);
}

TEST(RuncFsm, DeferredDuringTransactions)
{
    Harness h;
    h.inject(makeProtocolPacket(1, 0, Opcode::RREQ, h.line()));
    h.inject(makeProtocolPacket(3, 0, Opcode::WREQ, h.line()));
    ASSERT_EQ(h.mc.lineState(h.line()), MemState::writeTransaction);
    h.sent.clear();
    h.inject(makeProtocolPacket(2, 0, Opcode::RUNC, h.line()));
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 0u) << "parked";
    h.inject(makeProtocolPacket(1, 0, Opcode::ACKC, h.line()));
    // Write completes; the parked RUNC replays (dirty recall of node 3).
    EXPECT_EQ(h.count(Opcode::WDATA, 3), 1u);
    EXPECT_EQ(h.count(Opcode::INV, 3), 1u);
    h.inject(makeDataPacket(3, 0, Opcode::UPDATE, h.line(), {7, 8}));
    EXPECT_EQ(h.count(Opcode::RDATA, 2), 1u);
}

} // namespace
} // namespace limitless
