/** @file Unit tests for the contention-free network model. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "network/ideal_network.hh"

namespace limitless
{
namespace
{

struct Fixture
{
    EventQueue eq;
    IdealNetwork net{eq, std::make_shared<MeshTopology>(4, 4)};
    std::vector<PacketPtr> received;

    Fixture()
    {
        for (NodeId n = 0; n < 16; ++n) {
            net.setReceiver(n, [this](PacketPtr pkt) {
                received.push_back(std::move(pkt));
            });
        }
    }
};

TEST(IdealNetwork, DeliversToTheRightNode)
{
    Fixture f;
    f.net.send(makeProtocolPacket(0, 5, Opcode::RREQ, 0x40));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.received[0]->dest, 5u);
    EXPECT_EQ(f.received[0]->opcode, Opcode::RREQ);
}

TEST(IdealNetwork, LatencyGrowsWithDistanceAndLength)
{
    // Near, short packet.
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 1, Opcode::RREQ, 0x40));
        f.eq.run();
        EXPECT_GT(f.eq.now(), 0u);
    }
    Tick near_t, far_t, data_t;
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 1, Opcode::RREQ, 0x40));
        f.eq.run();
        near_t = f.eq.now();
    }
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        far_t = f.eq.now();
    }
    {
        Fixture f;
        f.net.send(makeDataPacket(0, 1, Opcode::RDATA, 0x40,
                                  {1, 2, 3, 4}));
        f.eq.run();
        data_t = f.eq.now();
    }
    EXPECT_GT(far_t, near_t);  // more hops
    EXPECT_GT(data_t, near_t); // more words
}

TEST(IdealNetwork, PreservesPointToPointFifoOrder)
{
    Fixture f;
    // A long packet then a short one on the same pair: the short one has
    // lower raw latency but must not overtake.
    f.net.send(makeDataPacket(0, 5, Opcode::RDATA, 0x40,
                              std::vector<std::uint64_t>(8, 1)));
    f.net.send(makeProtocolPacket(0, 5, Opcode::INV, 0x80));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 2u);
    EXPECT_EQ(f.received[0]->opcode, Opcode::RDATA);
    EXPECT_EQ(f.received[1]->opcode, Opcode::INV);
}

TEST(IdealNetwork, BusyWhilePacketsInFlight)
{
    Fixture f;
    EXPECT_FALSE(f.net.busy());
    f.net.send(makeProtocolPacket(0, 9, Opcode::RREQ, 0x40));
    EXPECT_TRUE(f.net.busy());
    f.eq.run();
    EXPECT_FALSE(f.net.busy());
}

TEST(IdealNetwork, SelfSendDelivers)
{
    Fixture f;
    f.net.send(makeProtocolPacket(3, 3, Opcode::ACKC, 0x40));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 1u);
}

TEST(IdealNetwork, CountsPacketsAndWords)
{
    Fixture f;
    f.net.send(makeProtocolPacket(0, 1, Opcode::RREQ, 0x40));
    f.net.send(makeDataPacket(2, 3, Opcode::RDATA, 0x40, {1, 2}));
    f.eq.run();
    const auto *packets =
        static_cast<const Counter *>(f.net.stats().find("packets"));
    const auto *words =
        static_cast<const Counter *>(f.net.stats().find("words"));
    EXPECT_EQ(packets->value(), 2u);
    EXPECT_EQ(words->value(), 2u + 4u);
}

} // namespace
} // namespace limitless
