/**
 * @file
 * Property-based tests: parameterized sweeps over (protocol, seed,
 * machine shape) running randomized workloads, checking global coherence
 * invariants during the run, quiescent structural invariants afterwards,
 * exact data results, and protocol health (no stale acks, no losses).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "obs/flight_recorder.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

struct PropertyCase
{
    ProtocolParams proto;
    unsigned nodes;
    std::uint64_t seed;
    NetworkKind net;
    unsigned cluster = 1; ///< nodes per chip (cluster-interleaved homes)
    bool hier = false;    ///< two-level directory mode
};

std::string
caseName(const testing::TestParamInfo<PropertyCase> &info)
{
    std::ostringstream os;
    os << info.param.proto.name() << "_" << info.param.nodes << "n_s"
       << info.param.seed
       << (info.param.net == NetworkKind::mesh ? "_mesh" : "_ideal");
    if (info.param.cluster > 1)
        os << "_c" << info.param.cluster;
    if (info.param.hier)
        os << "_hier";
    std::string s = os.str();
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

class ProtocolProperty : public testing::TestWithParam<PropertyCase>
{
};

TEST_P(ProtocolProperty, RandomStressMaintainsCoherence)
{
    const PropertyCase &pc = GetParam();
    MachineConfig cfg;
    cfg.numNodes = pc.nodes;
    cfg.protocol = pc.proto;
    cfg.network = pc.net;
    cfg.seed = pc.seed;
    cfg.topology.clusterSize = pc.cluster;
    cfg.hier = pc.hier;
    // Small cache so replacements (REPM/REPC, spurious INVs) happen.
    cfg.cache.cacheBytes = 16 * 16;

    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 120;
    rp.counterLines = 6;
    rp.valueLines = 10;
    rp.seed = pc.seed * 7919 + 13;
    RandomStress wl(rp);
    wl.install(m);

    // Interleave execution with the always-true invariants: periodic
    // checker events fire throughout the run (they abort on violation).
    CoherenceMonitor monitor(m);
    for (Tick t = 300; t <= 9000; t += 300) {
        m.eventQueue().schedule(t, [&monitor]() {
            monitor.checkGlobalInvariants();
        }, EventPriority::stats);
    }
    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);

    wl.verify(m);                 // exact counter sums, well-formed tags
    monitor.checkQuiescent();     // structural directory/cache agreement

    // Protocol health: the ack discipline promises no stray acks, and
    // every request is eventually satisfied (completion already proves
    // the latter).
    EXPECT_EQ(m.sumCounter("mem", "stale_acks"), 0u);
}

std::vector<PropertyCase>
makeCases()
{
    std::vector<PropertyCase> cases;
    const std::vector<ProtocolParams> protos = {
        protocols::fullMap(),
        protocols::dirNB(1),
        protocols::dirNB(2),
        protocols::dirNB(4),
        protocols::limitlessStall(1, 25),
        protocols::limitlessStall(4, 100),
        protocols::limitlessEmulated(2),
        protocols::limitlessEmulated(4),
        protocols::chained(),
    };
    for (const auto &proto : protos)
        for (std::uint64_t seed : {11ull, 29ull})
            cases.push_back(PropertyCase{proto, 16, seed,
                                         NetworkKind::mesh});
    // Shape / network variations on a couple of protocols.
    cases.push_back(PropertyCase{protocols::dirNB(2), 12, 3,
                                 NetworkKind::mesh});
    cases.push_back(PropertyCase{protocols::limitlessStall(4, 50), 9, 4,
                                 NetworkKind::ideal});
    cases.push_back(PropertyCase{protocols::fullMap(), 2, 5,
                                 NetworkKind::mesh});
    // Two-level (hier) machines: four 4-node chips, replacements and
    // recalls hammering the chip-home FSM under every scheme. The
    // limitless configs overflow at both levels (1-2 pointers).
    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(2),
          protocols::limitlessStall(1, 25), protocols::limitlessEmulated(2),
          protocols::chained()})
        cases.push_back(PropertyCase{proto, 16, 17, NetworkKind::mesh,
                                     4, true});
    cases.push_back(PropertyCase{protocols::limitlessStall(2, 50), 16, 23,
                                 NetworkKind::ideal, 8, true});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolProperty,
                         testing::ValuesIn(makeCases()), caseName);

// --------------------------------------------------- Determinism property

class DeterminismProperty
    : public testing::TestWithParam<ProtocolParams>
{
};

TEST_P(DeterminismProperty, IdenticalSeedsGiveIdenticalCycleCounts)
{
    auto run_once = [&]() {
        MachineConfig cfg;
        cfg.numNodes = 16;
        cfg.protocol = GetParam();
        cfg.seed = 123;
        RandomStressParams rp;
        rp.opsPerProc = 80;
        return runExperiment(cfg, [&] {
            return std::make_unique<RandomStress>(rp);
        }).cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DeterminismProperty,
    testing::Values(protocols::fullMap(), protocols::dirNB(2),
                    protocols::limitlessStall(4, 50),
                    protocols::limitlessEmulated(4), protocols::chained()),
    [](const testing::TestParamInfo<ProtocolParams> &info) {
        std::string s = info.param.name();
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

// ------------------------------------- Hier degenerate-shape equivalence

/** Run RandomStress on @p cfg and return the full stats-JSON document
 *  (host block omitted — it would carry wall-clock noise). */
std::string
statsJsonFor(MachineConfig cfg, std::uint64_t seed)
{
    FlightRecorder::instance().latency().reset();
    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 90;
    rp.seed = seed;
    RandomStress wl(rp);
    wl.install(m);
    const RunResult r = m.run();
    EXPECT_TRUE(r.completed);
    wl.verify(m);
    CoherenceMonitor(m).checkQuiescent();
    std::ostringstream os;
    m.dumpStatsJson(os, r.cycles, nullptr);
    return os.str();
}

TEST(HierDegenerate, ClusterOfOneIsByteIdenticalToFlat)
{
    // hier with a 1-node cluster has no chips to delegate to: the
    // machine must degenerate to the flat directory — same routing,
    // same timing, byte-identical stats (including the absence of every
    // hier-gated JSON field). The CLI rejects this shape up front; the
    // config-level contract is what keeps flat runs bit-stable.
    MachineConfig flat;
    flat.numNodes = 16;
    flat.protocol = protocols::limitlessStall(2, 50);
    flat.seed = 31;
    MachineConfig degenerate = flat;
    degenerate.hier = true;
    EXPECT_EQ(statsJsonFor(flat, 99), statsJsonFor(degenerate, 99));
}

TEST(HierDegenerate, PrivateOnlyIgnoresHier)
{
    // Private-only has no read sharing to delegate: --hier with real
    // chips still degenerates to the flat machine.
    MachineConfig flat;
    flat.numNodes = 16;
    flat.protocol.kind = ProtocolKind::privateOnly;
    flat.topology.clusterSize = 4;
    flat.seed = 31;
    MachineConfig hier = flat;
    hier.hier = true;
    EXPECT_EQ(statsJsonFor(flat, 99), statsJsonFor(hier, 99));
}

// ----------------------------------- Cross-protocol result equivalence

TEST(CrossProtocol, DeterministicResultsAgreeAcrossAllProtocols)
{
    // Data-race-free outputs (the stress counters) must be identical
    // under every protocol: same increments, same sums — only timing may
    // differ. RandomStress::verify already checks sums against host
    // tallies; here we additionally check cycle counts differ (the
    // protocols really are different machines).
    std::vector<Tick> cycles;
    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(1),
          protocols::limitlessStall(2, 100), protocols::chained()}) {
        MachineConfig cfg;
        cfg.numNodes = 16;
        cfg.protocol = proto;
        cfg.seed = 55;
        RandomStressParams rp;
        rp.opsPerProc = 100;
        const auto out = runExperiment(cfg, [&] {
            return std::make_unique<RandomStress>(rp);
        });
        cycles.push_back(out.cycles);
    }
    EXPECT_NE(cycles[0], cycles[1]);
}

} // namespace
} // namespace limitless
