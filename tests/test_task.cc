/** @file Unit tests for the coroutine Task type (sim/task.hh). */

#include <gtest/gtest.h>

#include <coroutine>
#include <vector>

#include "sim/task.hh"

namespace limitless
{
namespace
{

/** Minimal manual awaitable: suspends and parks the handle. */
struct ManualGate
{
    std::coroutine_handle<> parked;

    auto
    wait()
    {
        struct Awaiter
        {
            ManualGate *gate;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h) noexcept
            {
                gate->parked = h;
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{this};
    }

    void
    release()
    {
        auto h = parked;
        parked = nullptr;
        h.resume();
    }
};

TEST(Task, RunsLazilyUntilStart)
{
    bool ran = false;
    auto make = [&]() -> Task<> {
        ran = true;
        co_return;
    };
    Task<> t = make();
    EXPECT_FALSE(ran);
    EXPECT_FALSE(t.done());
    t.start();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(t.done());
}

TEST(Task, SuspendsAtAwaitAndResumes)
{
    ManualGate gate;
    std::vector<int> order;
    auto make = [&]() -> Task<> {
        order.push_back(1);
        co_await gate.wait();
        order.push_back(2);
    };
    Task<> t = make();
    t.start();
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_FALSE(t.done());
    gate.release();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(t.done());
}

TEST(Task, NestedTasksResumeTheParent)
{
    ManualGate gate;
    std::vector<int> order;
    auto child = [&]() -> Task<int> {
        order.push_back(2);
        co_await gate.wait();
        order.push_back(3);
        co_return 42;
    };
    auto parent = [&]() -> Task<> {
        order.push_back(1);
        const int v = co_await child();
        order.push_back(4);
        EXPECT_EQ(v, 42);
    };
    Task<> t = parent();
    t.start();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    gate.release(); // resumes child, whose completion resumes parent
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(t.done());
}

TEST(Task, DeeplyNestedCompletionChain)
{
    ManualGate gate;
    int depth_reached = 0;
    // 64 levels of nesting; symmetric transfer must not blow the stack
    // and completion must cascade back up.
    std::function<Task<>(int)> rec = [&](int depth) -> Task<> {
        if (depth == 64) {
            depth_reached = depth;
            co_await gate.wait();
            co_return;
        }
        co_await rec(depth + 1);
    };
    Task<> t = rec(0);
    t.start();
    EXPECT_EQ(depth_reached, 64);
    EXPECT_FALSE(t.done());
    gate.release();
    EXPECT_TRUE(t.done());
}

TEST(Task, ValueTaskReturnsResult)
{
    auto make = []() -> Task<int> { co_return 7; };
    Task<int> t = make();
    t.start();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 7);
}

TEST(Task, ChildExceptionPropagatesToParentAwait)
{
    auto child = []() -> Task<> {
        throw std::runtime_error("boom");
        co_return;
    };
    bool caught = false;
    auto parent = [&]() -> Task<> {
        try {
            co_await child();
        } catch (const std::runtime_error &) {
            caught = true;
        }
    };
    Task<> t = parent();
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(caught);
}

TEST(Task, RootExceptionSurfacesViaRethrow)
{
    auto make = []() -> Task<> {
        throw std::logic_error("top");
        co_return;
    };
    Task<> t = make();
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.rethrowIfFailed(), std::logic_error);
}

TEST(Task, DestroyingSuspendedTaskFreesTheFrame)
{
    ManualGate gate;
    bool destroyed = false;
    struct Sentinel
    {
        bool *flag;
        ~Sentinel() { *flag = true; }
    };
    {
        auto make = [&]() -> Task<> {
            Sentinel s{&destroyed};
            co_await gate.wait();
        };
        Task<> t = make();
        t.start();
        EXPECT_FALSE(destroyed);
    } // Task destructor destroys the suspended frame
    EXPECT_TRUE(destroyed);
}

TEST(Task, MoveTransfersOwnership)
{
    ManualGate gate;
    auto make = [&]() -> Task<> { co_await gate.wait(); };
    Task<> a = make();
    a.start();
    Task<> b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    gate.release();
    EXPECT_TRUE(b.done());
}

} // namespace
} // namespace limitless
