/**
 * @file
 * Combining-tree barrier and spin-lock tests over real coherent shared
 * memory, across protocols and tree arities.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "workload/barrier.hh"
#include "workload/spin_lock.hh"

namespace limitless
{
namespace
{

MachineConfig
machineFor(ProtocolParams proto, unsigned nodes)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.seed = 31;
    return cfg;
}

/** All threads alternate compute and barrier; phases must stay aligned. */
void
runBarrierPhaseTest(ProtocolParams proto, unsigned nodes, unsigned fan_in,
                    unsigned episodes)
{
    Machine m(machineFor(proto, nodes));
    CombiningTreeBarrier barrier(m.addressMap(), nodes, fan_in);
    std::vector<unsigned> phase(nodes, 0);
    std::vector<unsigned> violations(nodes, 0);

    for (unsigned p = 0; p < nodes; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            for (unsigned e = 1; e <= episodes; ++e) {
                co_await t.compute(1 + (p * 7) % 23); // skewed arrivals
                ++phase[p];
                co_await barrier.wait(t, p);
                // After the barrier, no thread may still be in an
                // earlier phase.
                for (unsigned q = 0; q < nodes; ++q)
                    if (phase[q] < e)
                        ++violations[p];
            }
        });
    }
    ASSERT_TRUE(m.run().completed);
    for (unsigned p = 0; p < nodes; ++p) {
        EXPECT_EQ(violations[p], 0u) << "proc " << p;
        EXPECT_EQ(barrier.episodes(p), episodes);
    }
}

TEST(Barrier, SynchronizesAllProcsFullMap)
{
    runBarrierPhaseTest(protocols::fullMap(), 16, 2, 6);
}

TEST(Barrier, SynchronizesUnderLimitedDirectory)
{
    runBarrierPhaseTest(protocols::dirNB(2), 16, 2, 6);
}

TEST(Barrier, SynchronizesUnderLimitless)
{
    runBarrierPhaseTest(protocols::limitlessStall(4, 50), 16, 2, 6);
}

TEST(Barrier, WideFanInWorksToo)
{
    runBarrierPhaseTest(protocols::fullMap(), 16, 4, 4);
}

TEST(Barrier, FanInLargerThanProcsDegeneratesToOneNode)
{
    runBarrierPhaseTest(protocols::fullMap(), 3, 8, 5);
}

TEST(Barrier, SingleParticipantNeverBlocks)
{
    Machine m(machineFor(protocols::fullMap(), 1));
    CombiningTreeBarrier barrier(m.addressMap(), 1, 2);
    m.spawnOn(0, [&](ThreadApi &t) -> Task<> {
        for (int e = 0; e < 4; ++e)
            co_await barrier.wait(t, 0);
    });
    EXPECT_TRUE(m.run().completed);
    EXPECT_EQ(barrier.episodes(0), 4u);
}

TEST(Barrier, TreeSizeMatchesFanIn)
{
    AddressMap amap(64, 16);
    CombiningTreeBarrier b2(amap, 64, 2);
    CombiningTreeBarrier b4(amap, 64, 4);
    EXPECT_EQ(b4.treeNodes(), 16u + 4u + 1u);
    EXPECT_EQ(b2.treeNodes(), 32u + 16u + 8u + 4u + 2u + 1u);
}

// --------------------------------------------------------------- SpinLock

std::uint64_t
slotBase()
{
    return 0x2037;
}

void
runLockTest(ProtocolParams proto)
{
    const unsigned nodes = 8;
    const unsigned iters = 15;
    Machine m(machineFor(proto, nodes));
    SpinLock lock(m.addressMap().addrOnNode(0, slotBase()));
    const Addr counter = m.addressMap().addrOnNode(1, slotBase() + 1);
    unsigned in_section = 0;
    unsigned violations = 0;

    for (unsigned p = 0; p < nodes; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            for (unsigned i = 0; i < iters; ++i) {
                co_await lock.acquire(t);
                if (++in_section != 1)
                    ++violations; // mutual exclusion broken
                const std::uint64_t v = co_await t.read(counter);
                co_await t.compute(3);
                co_await t.write(counter, v + 1);
                --in_section;
                co_await lock.release(t);
            }
        });
    }
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(violations, 0u);
    // The unlocked read-modify-write is race-free under the lock, so the
    // count is exact.
    const Addr line = m.addressMap().lineAddr(counter);
    std::uint64_t v = 0;
    bool found = false;
    for (unsigned p = 0; p < nodes && !found; ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite) {
            v = cl->words[m.addressMap().wordOf(counter)];
            found = true;
        }
    }
    if (!found)
        v = m.node(1).mem().readLine(line)[m.addressMap().wordOf(counter)];
    EXPECT_EQ(v, nodes * iters);
}

TEST(SpinLock, MutualExclusionFullMap)
{
    runLockTest(protocols::fullMap());
}

TEST(SpinLock, MutualExclusionLimitedDir)
{
    runLockTest(protocols::dirNB(2));
}

TEST(SpinLock, MutualExclusionLimitless)
{
    runLockTest(protocols::limitlessStall(2, 50));
}

TEST(SpinLock, MutualExclusionChained)
{
    runLockTest(protocols::chained());
}

} // namespace
} // namespace limitless
