/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace limitless
{
namespace
{

TEST(Stats, CounterIncrements)
{
    StatSet set("t");
    Counter &c = set.counter("events", "things that happened");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorTracksMoments)
{
    StatSet set("t");
    Accumulator &a = set.accumulator("lat", "latency");
    a.reset();
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 10.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 30.0);
}

TEST(Stats, EmptyAccumulatorIsZero)
{
    StatSet set("t");
    Accumulator &a = set.accumulator("lat", "latency");
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(a.maximum(), 0.0);
}

TEST(Stats, HistogramBucketsByPowersOfTwo)
{
    StatSet set("t");
    Histogram &h = set.histogram("dist", "distribution", 8);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(1000);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u); // 0 and 1
    EXPECT_EQ(h.bucket(1), 2u); // 2 and 3
    EXPECT_EQ(h.bucket(7), 1u); // clamped into the top bucket
}

TEST(Stats, DistributionCountsExactValues)
{
    StatSet set("t");
    Distribution &d = set.distribution("ws", "worker sets", 16);
    d.sample(1);
    d.sample(1);
    d.sample(4);
    d.sample(100); // clamped to the top slot
    EXPECT_EQ(d.at(1), 2u);
    EXPECT_EQ(d.at(4), 1u);
    EXPECT_EQ(d.at(16), 1u);
}

TEST(Stats, FindLocatesStatsByName)
{
    StatSet set("node0.cache");
    set.counter("hits", "cache hits");
    set.counter("misses", "cache misses");
    EXPECT_NE(set.find("hits"), nullptr);
    EXPECT_NE(set.find("misses"), nullptr);
    EXPECT_EQ(set.find("nothing"), nullptr);
}

TEST(Stats, DumpIncludesPrefixNameAndDescription)
{
    StatSet set("cache");
    Counter &c = set.counter("hits", "accesses satisfied locally");
    c += 3;
    std::ostringstream os;
    set.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("cache.hits"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
    EXPECT_NE(text.find("accesses satisfied locally"), std::string::npos);
}

TEST(Stats, DuplicateNameAborts)
{
    StatSet set("t");
    set.counter("x", "first");
    EXPECT_DEATH(set.counter("x", "second"), "duplicate");
}

TEST(Stats, ResetAllClearsEverything)
{
    StatSet set("t");
    Counter &c = set.counter("c", "");
    Accumulator &a = set.accumulator("a", "");
    c += 7;
    a.sample(1.0);
    set.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

} // namespace
} // namespace limitless
