/**
 * @file
 * Transaction-tracer tests: reservoir quantile math and merge
 * (ParallelRunner result folding), span-tree structural properties on
 * real machine runs (every span closed, children nested inside their
 * parent, critical path tiling the transaction exactly), consistency of
 * the streamed quantiles with the LatencyTracker's folded means, the
 * unfinished-transaction accounting, the schema export, and the Chrome
 * trace_event emission of finalized span trees.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "machine/coherence_monitor.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "stats/reservoir.hh"
#include "workload/weather.hh"

namespace limitless
{
namespace
{

// ------------------------------------------------ reservoir quantiles

TEST(QuantileReservoir, ExactQuantilesOnSmallStream)
{
    QuantileReservoir r;
    for (int v = 1; v <= 100; ++v)
        r.add(static_cast<double>(v));
    EXPECT_TRUE(r.exact());
    EXPECT_EQ(r.count(), 100u);
    EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(r.quantile(1.0), 100.0);
    EXPECT_NEAR(r.quantile(0.50), 50.5, 1.0);
    EXPECT_NEAR(r.quantile(0.95), 95.0, 1.0);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
}

TEST(QuantileReservoir, MergeOfExactReservoirsIsExact)
{
    QuantileReservoir a, b;
    for (int v = 1; v <= 50; ++v)
        a.add(static_cast<double>(v));
    for (int v = 51; v <= 100; ++v)
        b.add(static_cast<double>(v));
    a.merge(b);
    EXPECT_TRUE(a.exact());
    EXPECT_EQ(a.count(), 100u);
    // Identical to the single-stream reservoir above.
    EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);
    EXPECT_NEAR(a.quantile(0.50), 50.5, 1.0);
    EXPECT_DOUBLE_EQ(a.mean(), 50.5);
}

TEST(QuantileReservoir, SampledModeStaysWithinStreamBounds)
{
    QuantileReservoir r(64); // force sampling
    for (int v = 0; v < 10'000; ++v)
        r.add(static_cast<double>(v % 1000));
    EXPECT_FALSE(r.exact());
    EXPECT_EQ(r.count(), 10'000u);
    EXPECT_GE(r.quantile(0.5), 0.0);
    EXPECT_LE(r.quantile(0.5), 999.0);
    // A uniform stream's sampled median should land near the middle.
    EXPECT_NEAR(r.quantile(0.5), 500.0, 250.0);
}

TEST(PhaseReservoirs, MergeSumsCounts)
{
    PhaseSample s{};
    s.reqNet = 3;
    s.home = 1;
    s.total = 4;
    PhaseReservoirs a, b;
    a.add(s);
    b.add(s);
    b.add(s);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.reqNet.quantile(0.99), 3.0);
}

// ------------------------------------------- span-tree machine runs

MachineConfig
small4(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = proto;
    cfg.seed = 7;
    return cfg;
}

/** Run 4-node weather with the tracer retaining *every* transaction,
 *  so structural properties are checked over the full population. */
std::vector<const TxnRecord *>
traceWeather(ProtocolParams proto)
{
    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    MachineConfig cfg = small4(proto);
    Machine m(cfg);
    fr.txn().enable(/*top_k=*/1u << 20);
    WeatherParams wp;
    wp.iterations = 8;
    wp.columnLines = 16;
    Weather wl(wp);
    wl.install(m); // workload must outlive run(): coroutines reference it
    EXPECT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
    return fr.txn().top();
}

void
checkSpanTreeInvariants(const std::vector<const TxnRecord *> &records)
{
    ASSERT_FALSE(records.empty());
    for (const TxnRecord *rec : records) {
        const std::vector<TxnSpan> &spans = rec->spans;
        ASSERT_FALSE(spans.empty());
        EXPECT_STREQ(spans[0].kind, "txn");
        EXPECT_EQ(spans[0].parent, 0u);
        EXPECT_EQ(spans[0].start, rec->start);
        EXPECT_EQ(spans[0].end, rec->end);
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const TxnSpan &s = spans[i];
            // Property: every opened span was closed, forward in time.
            EXPECT_GE(s.end, s.start)
                << "txn " << rec->id << " span " << i + 1 << " ("
                << s.kind << ") never closed";
            if (i == 0)
                continue;
            // Property: parents precede children...
            ASSERT_GE(s.parent, 1u);
            ASSERT_LE(s.parent, i);
            // ...and children nest inside the parent's [start, end].
            const TxnSpan &p = spans[s.parent - 1];
            EXPECT_GE(s.start, p.start)
                << "txn " << rec->id << " span " << i + 1 << " ("
                << s.kind << ") starts before parent " << p.kind;
            EXPECT_LE(s.end, p.end)
                << "txn " << rec->id << " span " << i + 1 << " ("
                << s.kind << ") ends after parent " << p.kind;
        }
        // The critical path tiles [start, end] exactly: contiguous
        // segments, no gaps, no overlap, full coverage.
        ASSERT_FALSE(rec->critical.empty());
        EXPECT_EQ(rec->critical.front().start, rec->start);
        EXPECT_EQ(rec->critical.back().end, rec->end);
        for (std::size_t i = 0; i < rec->critical.size(); ++i) {
            const TxnCritSeg &seg = rec->critical[i];
            EXPECT_GE(seg.span, 1u);
            EXPECT_LE(seg.span, spans.size());
            EXPECT_LT(seg.start, seg.end);
            if (i) {
                EXPECT_EQ(seg.start, rec->critical[i - 1].end);
            }
        }
    }
}

TEST(TxnTracer, SpanTreesWellFormedStallApprox)
{
    checkSpanTreeInvariants(traceWeather(protocols::limitlessStall(2, 50)));
    FlightRecorder::instance().txn().disable();
}

TEST(TxnTracer, SpanTreesWellFormedFullEmulation)
{
    const auto records = traceWeather(protocols::limitlessEmulated(2));
    checkSpanTreeInvariants(records);
    // Full emulation must produce trap_emulate spans somewhere.
    bool saw_emulate = false;
    for (const TxnRecord *rec : records)
        for (const TxnSpan &s : rec->spans)
            if (std::string(s.kind) == "trap_emulate")
                saw_emulate = true;
    EXPECT_TRUE(saw_emulate);
    FlightRecorder::instance().txn().disable();
}

TEST(TxnTracer, QuantilesConsistentWithLatencyTrackerMeans)
{
    traceWeather(protocols::limitlessStall(2, 50));
    FlightRecorder &fr = FlightRecorder::instance();
    const PhaseBreakdown p = fr.latency().snapshot();
    const PhaseReservoirs &q = fr.txn().quantiles();

    // Same samples, same folded attribution: the reservoirs' means must
    // agree with the LatencyTracker's (both exact at this scale).
    ASSERT_EQ(q.count(), p.completed);
    EXPECT_TRUE(q.total.exact());
    EXPECT_NEAR(q.total.mean(), p.total, 1e-9 * (1.0 + p.total));
    EXPECT_NEAR(q.reqNet.mean(), p.reqNet, 1e-9 * (1.0 + p.reqNet));
    EXPECT_NEAR(q.home.mean(), p.home, 1e-9 * (1.0 + p.home));
    EXPECT_NEAR(q.trap.mean(), p.trap, 1e-9 * (1.0 + p.trap));
    EXPECT_NEAR(q.inv.mean(), p.inv, 1e-9 * (1.0 + p.inv));
    EXPECT_NEAR(q.replyNet.mean(), p.replyNet, 1e-9 * (1.0 + p.replyNet));
    // Quantiles bracket the mean sanely.
    EXPECT_LE(q.total.quantile(0.50), q.total.quantile(0.95));
    EXPECT_LE(q.total.quantile(0.95), q.total.quantile(0.99));
    fr.txn().disable();
}

TEST(TxnTracer, NoUnfinishedTransactionsAtQuiescence)
{
    traceWeather(protocols::limitlessStall(2, 50));
    FlightRecorder &fr = FlightRecorder::instance();
    EXPECT_EQ(fr.latency().inFlight(), 0u);
    EXPECT_EQ(fr.txn().openCount(), 0u);
    EXPECT_GT(fr.txn().completedCount(), 0u);
    fr.txn().disable();
}

TEST(TxnTracer, ExportIsValidVersionedJson)
{
    traceWeather(protocols::limitlessStall(2, 50));
    FlightRecorder &fr = FlightRecorder::instance();
    std::ostringstream os;
    fr.txn().writeJson(os);
    fr.txn().disable();
    const std::string text = os.str();
    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    EXPECT_NE(text.find("\"schema\": \"limitless-txn-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"phase_quantiles\""), std::string::npos);
    EXPECT_NE(text.find("\"critical\""), std::string::npos);
    EXPECT_NE(text.find("\"unfinished\": 0"), std::string::npos);
}

TEST(TxnTracer, StatsJsonExportsUnfinishedAndQuantiles)
{
    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    MachineConfig cfg = small4(protocols::limitlessStall(2, 50));
    Machine m(cfg);
    fr.txn().enable(4);
    WeatherParams wp;
    wp.iterations = 4;
    wp.columnLines = 8;
    Weather wl(wp);
    wl.install(m);
    ASSERT_TRUE(m.run().completed);

    std::ostringstream os;
    m.dumpStatsJson(os);
    fr.txn().disable();
    const std::string text = os.str();
    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    EXPECT_NE(text.find("\"unfinished_remote\": 0"), std::string::npos);
    EXPECT_NE(text.find("\"phase_quantiles\""), std::string::npos);
    EXPECT_NE(text.find("\"p99\""), std::string::npos);
}

TEST(TxnTracer, ChromeTraceCarriesSpanSlices)
{
    const std::string path = "txn_trace_chrome_test.json";
    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    ASSERT_TRUE(fr.traceOpen(path));
    {
        MachineConfig cfg = small4(protocols::limitlessStall(2, 50));
        Machine m(cfg);
        fr.txn().enable(8);
        WeatherParams wp;
        wp.iterations = 4;
        wp.columnLines = 8;
        Weather wl(wp);
        wl.install(m);
        ASSERT_TRUE(m.run().completed);
    }
    fr.traceClose();
    fr.txn().disable();

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    // Finalized span trees emit "txn"-category slices plus flow arrows
    // binding the network legs across nodes.
    EXPECT_NE(text.find("\"cat\":\"txn\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
    std::remove(path.c_str());
}

// -------------------------------------- harness / sweep integration

TEST(TxnTracer, RunExperimentCarriesQuantilesAcrossParallelRunner)
{
    const std::string trace_a = "txn_sweep_a_test.json";
    const std::string trace_b = "txn_sweep_b_test.json";
    WeatherParams wp;
    wp.iterations = 4;
    wp.columnLines = 8;
    auto runOne = [&wp](std::uint64_t seed, const std::string &path) {
        MachineConfig cfg;
        cfg.numNodes = 4;
        cfg.protocol = protocols::limitlessStall(2, 50);
        cfg.seed = seed;
        cfg.txnTraceOut = path;
        return runExperiment(
            cfg, [&wp]() { return std::make_unique<Weather>(wp); });
    };

    // Two runs on worker threads: each thread-local recorder captures
    // its own run; outcomes carry the reservoirs back for merging.
    ParallelRunner runner(2);
    const std::vector<std::string> paths = {trace_a, trace_b};
    std::ostringstream sink;
    const ParallelRunner::Task<ExperimentOutcome> task =
        [&](std::size_t i, std::ostream &) {
            return runOne(100 + i, paths[i]);
        };
    const auto outcomes = runner.map<ExperimentOutcome>(2, task, sink);

    ASSERT_EQ(outcomes.size(), 2u);
    PhaseReservoirs merged;
    std::uint64_t completed = 0;
    for (const ExperimentOutcome &o : outcomes) {
        EXPECT_GT(o.txnCompleted, 0u);
        EXPECT_EQ(o.txnQuantiles.count(), o.txnCompleted);
        EXPECT_FALSE(o.txnTracePath.empty());
        merged.merge(o.txnQuantiles);
        completed += o.txnCompleted;
    }
    EXPECT_EQ(merged.count(), completed);
    // Merged quantiles stay inside the per-run envelopes.
    const double hi =
        std::max(outcomes[0].txnQuantiles.total.quantile(1.0),
                 outcomes[1].txnQuantiles.total.quantile(1.0));
    EXPECT_LE(merged.total.quantile(0.99), hi);

    for (const std::string &p : paths) {
        std::ifstream in(p);
        EXPECT_TRUE(in.is_open()) << p;
        std::stringstream buf;
        buf << in.rdbuf();
        std::string err;
        EXPECT_TRUE(jsonValidate(buf.str(), &err)) << p << ": " << err;
        std::remove(p.c_str());
    }
}

} // namespace
} // namespace limitless
