/** @file Unit tests for the xoshiro256** generator. */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

namespace limitless
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsTheStream)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02); // law of large numbers
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(17);
    unsigned buckets[10] = {};
    for (int i = 0; i < 100000; ++i)
        ++buckets[r.below(10)];
    for (unsigned b : buckets) {
        EXPECT_GT(b, 9000u);
        EXPECT_LT(b, 11000u);
    }
}

} // namespace
} // namespace limitless
