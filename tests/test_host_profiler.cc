/**
 * @file
 * Host self-profiler unit tests (obs/host_profiler.hh): scope nesting
 * builds the expected path tree, self time tiles under inclusive time,
 * per-thread trees merge commutatively at snapshot, a disabled profiler
 * records nothing, and — the overhead-guard contract — enabling it
 * never perturbs the deterministic simulation outputs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "machine/machine.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "obs/telemetry.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

/** Fresh profiler per test; every test leaves it disabled and empty. */
class HostProfilerTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        HostProfiler::reset();
        HostProfiler::enable();
    }

    void
    TearDown() override
    {
        HostProfiler::disable();
        HostProfiler::reset();
        HostProfiler::setSliceSink(nullptr);
    }
};

std::map<std::string, HostProfiler::Scope>
byPath()
{
    std::map<std::string, HostProfiler::Scope> m;
    for (const HostProfiler::Scope &s : HostProfiler::snapshot())
        m.emplace(s.path, s);
    return m;
}

void
spin()
{
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
}

TEST_F(HostProfilerTest, NestingBuildsPaths)
{
    {
        PROF_SCOPE("outer");
        spin();
        {
            PROF_SCOPE("inner");
            spin();
        }
        {
            PROF_SCOPE("inner");
            spin();
        }
    }
    {
        PROF_SCOPE("outer");
        spin();
    }
    const auto m = byPath();
    ASSERT_EQ(m.size(), 2u);
    ASSERT_TRUE(m.count("outer"));
    ASSERT_TRUE(m.count("outer;inner"));
    EXPECT_EQ(m.at("outer").count, 2u);
    EXPECT_EQ(m.at("outer;inner").count, 2u);
}

TEST_F(HostProfilerTest, SelfTimeTilesUnderInclusive)
{
    {
        PROF_SCOPE("a");
        spin();
        {
            PROF_SCOPE("b");
            spin();
        }
        {
            PROF_SCOPE("c");
            spin();
        }
    }
    const auto m = byPath();
    ASSERT_EQ(m.size(), 3u);
    const auto &a = m.at("a");
    const auto &b = m.at("a;b");
    const auto &c = m.at("a;c");
    EXPECT_GT(a.wallNs, 0u);
    // Children nest inside the parent interval, so inclusive time
    // dominates their sum, and self is exactly the remainder.
    EXPECT_GE(a.wallNs, b.wallNs + c.wallNs);
    EXPECT_EQ(a.selfNs, a.wallNs - b.wallNs - c.wallNs);
    EXPECT_LE(a.selfNs, a.wallNs);
    // Leaves have no children: self equals inclusive.
    EXPECT_EQ(b.selfNs, b.wallNs);
    EXPECT_EQ(c.selfNs, c.wallNs);
}

TEST_F(HostProfilerTest, CrossThreadMergeIsCommutative)
{
    {
        PROF_SCOPE("work");
        spin();
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < 3; ++i) {
                PROF_SCOPE("work");
                spin();
                PROF_SCOPE("sub");
                spin();
            }
        });
    for (std::thread &t : threads)
        t.join();
    const auto m = byPath();
    ASSERT_TRUE(m.count("work"));
    ASSERT_TRUE(m.count("work;sub"));
    // 1 main-thread call + 4 threads x 3 iterations.
    EXPECT_EQ(m.at("work").count, 13u);
    EXPECT_EQ(m.at("work;sub").count, 12u);
    EXPECT_GE(m.at("work").wallNs, m.at("work;sub").wallNs);
}

TEST_F(HostProfilerTest, DisabledRecordsNothing)
{
    HostProfiler::disable();
    {
        PROF_SCOPE("ghost");
        spin();
    }
    EXPECT_TRUE(HostProfiler::snapshot().empty());
    std::ostringstream folded;
    HostProfiler::writeFolded(folded);
    EXPECT_TRUE(folded.str().empty());
}

TEST_F(HostProfilerTest, SliceSinkSeesEveryClose)
{
    static int calls;
    static std::uint64_t lastDur;
    calls = 0;
    lastDur = 0;
    HostProfiler::setSliceSink(
        [](const char *, std::uint64_t, std::uint64_t durNs) {
            ++calls;
            lastDur = durNs;
        });
    {
        PROF_SCOPE("sliced");
        spin();
    }
    HostProfiler::setSliceSink(nullptr);
    EXPECT_EQ(calls, 1);
    EXPECT_GT(lastDur, 0u);
}

TEST_F(HostProfilerTest, FoldedExportIsSortedAndParsable)
{
    {
        PROF_SCOPE("z");
        PROF_SCOPE("a");
        spin();
    }
    {
        PROF_SCOPE("a");
        spin();
    }
    std::ostringstream folded;
    HostProfiler::writeFolded(folded);
    std::istringstream in(folded.str());
    std::string prev, path;
    std::uint64_t self;
    int lines = 0;
    while (in >> path >> self) {
        EXPECT_GT(path, prev);
        prev = path;
        ++lines;
    }
    EXPECT_EQ(lines, 3); // a, z, z;a
}

/** Overhead-guard contract: a profiled run is behavior-identical to an
 *  unprofiled one — same deterministic stats JSON and telemetry CSV,
 *  byte for byte. (The profiler only reads the host clock; it must
 *  never touch simulation state.) */
TEST_F(HostProfilerTest, ProfilingNeverPerturbsSimulation)
{
    const auto digest = [](bool profiled) {
        if (profiled)
            HostProfiler::enable();
        else
            HostProfiler::disable();
        MachineConfig cfg;
        cfg.numNodes = 16;
        cfg.protocol = protocols::limitlessStall(4, 50);
        cfg.seed = 42;
        cfg.cache.cacheBytes = 16 * 16;
        cfg.metricsInterval = 400;
        FlightRecorder::instance().latency().reset();
        Machine m(cfg);
        RandomStressParams rp;
        rp.opsPerProc = 80;
        rp.seed = 4242;
        RandomStress wl(rp);
        wl.install(m);
        const RunResult r = m.run();
        EXPECT_TRUE(r.completed);
        std::ostringstream stats, csv;
        m.dumpStatsJson(stats, r.cycles, nullptr);
        m.telemetry()->writeCsv(csv);
        return stats.str() + "\x1f" + csv.str();
    };
    const std::string off = digest(false);
    const std::string on = digest(true);
    EXPECT_EQ(off, on);
    EXPECT_FALSE(HostProfiler::snapshot().empty());
}

} // namespace
} // namespace limitless
