/**
 * @file
 * Processor-model tests: coroutine thread programs, hit/miss timing,
 * context switching on remote misses only, multi-context interleaving,
 * trap stalls, and the atomic read-modify-write primitives.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/machine.hh"

namespace limitless
{
namespace
{

MachineConfig
tinyMachine(unsigned nodes = 4)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = protocols::fullMap();
    cfg.seed = 21;
    return cfg;
}

TEST(Processor, ComputeAdvancesSimulatedTime)
{
    Machine m(tinyMachine());
    Tick seen = 0;
    m.spawnOn(0, [&seen](ThreadApi &t) -> Task<> {
        const Tick start = t.now();
        co_await t.compute(100);
        seen = t.now() - start;
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(seen, 100u);
}

TEST(Processor, ZeroCycleComputeDoesNotSuspend)
{
    Machine m(tinyMachine());
    m.spawnOn(0, [](ThreadApi &t) -> Task<> {
        const Tick start = t.now();
        co_await t.compute(0);
        EXPECT_EQ(t.now(), start);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(Processor, LoadReturnsStoredValue)
{
    Machine m(tinyMachine());
    const Addr a = m.addressMap().addrOnNode(1, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        co_await t.write(a, 1234);
        const std::uint64_t v = co_await t.read(a);
        EXPECT_EQ(v, 1234u);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(Processor, CacheHitIsFastRemoteMissIsSlow)
{
    Machine m(tinyMachine());
    const Addr remote = m.addressMap().addrOnNode(3, 0);
    Tick miss_t = 0, hit_t = 0;
    m.spawnOn(0, [&, remote](ThreadApi &t) -> Task<> {
        Tick s = t.now();
        co_await t.read(remote);
        miss_t = t.now() - s;
        s = t.now();
        co_await t.read(remote);
        hit_t = t.now() - s;
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_GE(miss_t, 10u);
    EXPECT_LE(hit_t, 3u);
    EXPECT_GT(miss_t, 4 * hit_t);
}

TEST(Processor, FetchAddReturnsOldValueAtomically)
{
    Machine m(tinyMachine());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        EXPECT_EQ(co_await t.fetchAdd(a, 5), 0u);
        EXPECT_EQ(co_await t.fetchAdd(a, 3), 5u);
        EXPECT_EQ(co_await t.read(a), 8u);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(Processor, SwapExchanges)
{
    Machine m(tinyMachine());
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        EXPECT_EQ(co_await t.swap(a, 42), 0u);
        EXPECT_EQ(co_await t.swap(a, 43), 42u);
    });
    EXPECT_TRUE(m.run().completed);
}

TEST(Processor, ConcurrentFetchAddsFromManyNodesSumExactly)
{
    Machine m(tinyMachine(4));
    const Addr a = m.addressMap().addrOnNode(0, 0);
    for (NodeId p = 0; p < 4; ++p) {
        m.spawnOn(p, [a](ThreadApi &t) -> Task<> {
            for (int i = 0; i < 25; ++i)
                co_await t.fetchAdd(a, 1);
        });
    }
    ASSERT_TRUE(m.run().completed);
    // Final value: read through a fresh access on node 0's memory.
    const Addr line = m.addressMap().lineAddr(a);
    std::uint64_t v = 0;
    bool dirty = false;
    for (NodeId p = 0; p < 4 && !dirty; ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite) {
            v = cl->words[0];
            dirty = true;
        }
    }
    if (!dirty)
        v = m.node(0).mem().readLine(line)[0];
    EXPECT_EQ(v, 100u);
}

TEST(Processor, ContextSwitchOnlyOnRemoteMisses)
{
    MachineConfig cfg = tinyMachine(4);
    Machine m(cfg);
    const Addr remote = m.addressMap().addrOnNode(2, 0);
    const Addr local = m.addressMap().addrOnNode(0, 1);
    // Two contexts on node 0: one blocks remotely, the other computes.
    m.spawnOn(0, [remote](ThreadApi &t) -> Task<> {
        co_await t.read(remote);
    });
    m.spawnOn(0, [local](ThreadApi &t) -> Task<> {
        co_await t.read(local); // local miss: no switch charged for this
        co_await t.compute(5);
    });
    ASSERT_TRUE(m.run().completed);
    const auto *sw = static_cast<const Counter *>(
        m.node(0).statSet("proc")->find("switches"));
    const auto *rm = static_cast<const Counter *>(
        m.node(0).statSet("proc")->find("remote_misses"));
    EXPECT_GE(rm->value(), 1u);
    EXPECT_GE(sw->value(), 1u);
}

TEST(Processor, MultipleContextsOverlapRemoteLatency)
{
    // With context switching, two threads issuing remote misses finish
    // faster than twice the single-thread time.
    auto run_with_threads = [&](unsigned threads) {
        Machine m(tinyMachine(16)); // 4x4 mesh: remote latency >> switch
        const AddressMap &amap = m.addressMap();
        for (unsigned c = 0; c < threads; ++c) {
            m.spawnOn(0, [&amap, c](ThreadApi &t) -> Task<> {
                for (unsigned i = 0; i < 20; ++i)
                    co_await t.read(amap.addrOnNode(
                        15, c * 64 + i)); // distinct cold far lines
            });
        }
        const RunResult r = m.run();
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    const Tick one = run_with_threads(1);
    const Tick two = run_with_threads(2);
    EXPECT_LT(two, 2 * one) << "latency tolerance via rapid switching";
}

TEST(Processor, StallForDelaysApplicationWork)
{
    Machine m(tinyMachine());
    m.spawnOn(0, [](ThreadApi &t) -> Task<> {
        co_await t.compute(10);
        co_await t.compute(10);
    });
    m.node(0).processor().stallFor(500);
    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.cycles, 500u);
    EXPECT_EQ(m.node(0).processor().stallCycles(), 500u);
}

TEST(Processor, SpawnBeyondHardwareContextsAborts)
{
    MachineConfig cfg = tinyMachine();
    cfg.proc.contexts = 2;
    Machine m(cfg);
    auto noop = [](ThreadApi &t) -> Task<> { co_await t.compute(1); };
    m.spawnOn(0, noop);
    m.spawnOn(0, noop);
    EXPECT_DEATH(m.spawnOn(0, noop), "more threads");
}

TEST(Processor, SequentialConsistencyWithinAThread)
{
    // Program order: a store followed by a load to a *different* address
    // completes in order (the processor blocks on each access).
    Machine m(tinyMachine());
    const Addr x = m.addressMap().addrOnNode(1, 0);
    const Addr y = m.addressMap().addrOnNode(2, 0);
    std::vector<int> order;
    m.spawnOn(0, [&, x, y](ThreadApi &t) -> Task<> {
        co_await t.write(x, 1);
        order.push_back(1);
        co_await t.read(y);
        order.push_back(2);
        co_await t.write(y, 2);
        order.push_back(3);
    });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

} // namespace
} // namespace limitless
