/**
 * @file
 * Unit tests for the telemetry primitives (Log2Histogram, the pull-based
 * gauge/rate/ratio columns, CSV round-trip) plus the end-to-end
 * cross-check the windowed overflow fraction was designed around: m per
 * window, weighted by that window's request count, must recover the
 * run-level m exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/parallel_runner.hh"
#include "machine/machine.hh"
#include "obs/telemetry.hh"
#include "workload/weather.hh"

namespace limitless
{
namespace
{

TEST(Log2Histogram, BucketBoundaries)
{
    // Matches stats::Histogram: bucket 0 is [0,2), bucket i is
    // [2^i, 2^(i+1)).
    EXPECT_EQ(Log2Histogram::bucketFor(0, 16), 0u);
    EXPECT_EQ(Log2Histogram::bucketFor(1, 16), 0u);
    EXPECT_EQ(Log2Histogram::bucketFor(2, 16), 1u);
    EXPECT_EQ(Log2Histogram::bucketFor(3, 16), 1u);
    EXPECT_EQ(Log2Histogram::bucketFor(4, 16), 2u);
    EXPECT_EQ(Log2Histogram::bucketFor(7, 16), 2u);
    EXPECT_EQ(Log2Histogram::bucketFor(8, 16), 3u);
    EXPECT_EQ(Log2Histogram::lowerBound(0), 0u);
    EXPECT_EQ(Log2Histogram::upperBound(0), 1u);
    EXPECT_EQ(Log2Histogram::lowerBound(3), 8u);
    EXPECT_EQ(Log2Histogram::upperBound(3), 15u);

    Log2Histogram h(10);
    EXPECT_EQ(h.label(0), "0-1");
    EXPECT_EQ(h.label(2), "4-7");
    EXPECT_EQ(h.label(9), "512+");

    // Every boundary value lands where the bounds say it must.
    for (unsigned i = 0; i + 1 < 16; ++i) {
        EXPECT_EQ(Log2Histogram::bucketFor(Log2Histogram::lowerBound(i), 16),
                  i);
        EXPECT_EQ(Log2Histogram::bucketFor(Log2Histogram::upperBound(i), 16),
                  i);
    }
}

TEST(Log2Histogram, OverflowBucketAbsorbsLargeValues)
{
    Log2Histogram h(4);
    EXPECT_EQ(h.overflowBucket(), 3u);
    h.sample(7);                      // bucket 2: [4,8)
    h.sample(8);                      // overflow lower bound
    h.sample(std::uint64_t{1} << 40); // far past the last bucket
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Log2Histogram, MergeAddsCounts)
{
    Log2Histogram a(8), b(8);
    a.sample(1);
    a.sample(5);
    b.sample(5);
    b.sample(300); // overflow (>= 128)
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.bucket(a.overflowBucket()), 1u);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.bucket(2), 0u);
}

TEST(Log2Histogram, MergeAcrossParallelRunnerJobs)
{
    // The fan-out pattern the benches use: per-job histograms merged
    // after the sweep must equal one histogram fed serially.
    const std::size_t kJobs = 4, kPerJob = 1000;
    auto valueFor = [](std::size_t job, std::size_t i) {
        return static_cast<std::uint64_t>((job * 37 + i * 13) % 600);
    };

    ParallelRunner runner(kJobs);
    const ParallelRunner::Task<Log2Histogram> task =
        [&](std::size_t job, std::ostream &) {
            Log2Histogram h(10);
            for (std::size_t i = 0; i < kPerJob; ++i)
                h.sample(valueFor(job, i));
            return h;
        };
    std::ostringstream sink;
    std::vector<Log2Histogram> parts =
        runner.map<Log2Histogram>(kJobs, task, sink);

    Log2Histogram merged(10), serial(10);
    for (const Log2Histogram &p : parts)
        merged.merge(p);
    for (std::size_t job = 0; job < kJobs; ++job)
        for (std::size_t i = 0; i < kPerJob; ++i)
            serial.sample(valueFor(job, i));

    ASSERT_EQ(merged.count(), serial.count());
    for (unsigned b = 0; b < merged.numBuckets(); ++b)
        EXPECT_EQ(merged.bucket(b), serial.bucket(b)) << "bucket " << b;
}

TEST(Telemetry, GaugeIsPulledOnlyAtSampleInstants)
{
    EventQueue eq;
    Telemetry t(eq, 10);
    double level = 0.0;
    unsigned pulls = 0;
    t.addGauge("level", [&]() {
        ++pulls;
        return level;
    });
    for (Tick tick = 1; tick <= 40; ++tick)
        eq.schedule(tick, [&level]() { level += 1.0; });
    t.start([&eq]() { return eq.now() >= 40; });
    eq.run();
    t.finish();

    const auto &v = t.values("level");
    ASSERT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v[i], 10.0 * (i + 1));
    // Pull-based: the probe ran once per window, never in between.
    EXPECT_EQ(pulls, 4u);
}

TEST(Telemetry, RateRecordsWindowDeltasThatSumToTotal)
{
    EventQueue eq;
    Telemetry t(eq, 10);
    double total = 0.0;
    t.addRate("rate", [&total]() { return total; });
    for (Tick tick = 1; tick <= 50; ++tick)
        eq.schedule(tick, [&total]() { total += 2.0; });
    t.start([&eq]() { return eq.now() >= 50; });
    eq.run();
    t.finish();

    const auto &v = t.values("rate");
    ASSERT_EQ(v.size(), 5u);
    double sum = 0.0;
    for (double d : v) {
        EXPECT_DOUBLE_EQ(d, 20.0);
        sum += d;
    }
    EXPECT_DOUBLE_EQ(sum, total);
}

TEST(Telemetry, RatioIsPerWindowAndZeroWhenDenominatorIdle)
{
    EventQueue eq;
    Telemetry t(eq, 10);
    double num = 0.0, den = 0.0;
    t.addRatio("m", [&num]() { return num; }, [&den]() { return den; });
    // Window 1: 2/10. Window 2: idle (ratio must be 0, not NaN).
    // Window 3: 9/10.
    for (Tick tick = 1; tick <= 10; ++tick)
        eq.schedule(tick, [&num, &den, tick]() {
            den += 1.0;
            if (tick <= 2)
                num += 1.0;
        });
    for (Tick tick = 21; tick <= 30; ++tick)
        eq.schedule(tick, [&num, &den, tick]() {
            den += 1.0;
            if (tick <= 29)
                num += 1.0;
        });
    t.start([&eq]() { return eq.now() >= 30; });
    eq.run();
    t.finish();

    const auto &v = t.values("m");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 0.2);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 0.9);
}

TEST(Telemetry, FinishRecordsThePartialTailWindow)
{
    EventQueue eq;
    Telemetry t(eq, 100);
    double total = 0.0;
    t.addRate("rate", [&total]() { return total; });
    eq.schedule(3, [&total]() { total += 5.0; });
    eq.schedule(7, [&total]() { total += 5.0; });
    t.start([]() { return false; });
    // Stop before the first interval event: no full window ever fires.
    eq.runUntil(50);
    t.finish();

    ASSERT_EQ(t.windows(), 1u);
    EXPECT_DOUBLE_EQ(t.values("rate")[0], 10.0);
}

TEST(Telemetry, CsvRoundTripsSchemaHeaderAndRows)
{
    EventQueue eq;
    Telemetry t(eq, 10);
    double total = 0.0;
    t.addRate("a.rate", [&total]() { return total; });
    t.addGauge("b.gauge", [&total]() { return total; });
    for (Tick tick = 1; tick <= 20; ++tick)
        eq.schedule(tick, [&total]() { total += 1.0; });
    t.start([&eq]() { return eq.now() >= 20; });
    eq.run();
    t.finish();

    std::ostringstream os;
    t.writeCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, std::string("# schema: ") + Telemetry::csvSchema());
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "tick,a.rate,b.gauge");
    std::size_t rows = 0;
    while (std::getline(in, line) && !line.empty())
        ++rows;
    EXPECT_EQ(rows, t.windows());

    EXPECT_EQ(telemetryJsonPathFor("foo.csv"), "foo.json");
    EXPECT_EQ(telemetryJsonPathFor("foo.dat"), "foo.dat.json");
}

TEST(Telemetry, WindowedOverflowFractionRecoversRunLevelM)
{
    // The acceptance cross-check: on the paper's pathological workload
    // (64-node Weather, hot variable shared by all readers, LimitLESS4),
    // the per-window m values from the CSV, weighted by each window's
    // request delta, must average to the run-level m = traps/requests.
    MachineConfig cfg;
    cfg.numNodes = 64;
    cfg.seed = 1991;
    cfg.protocol.kind = ProtocolKind::limitless;
    cfg.protocol.pointers = 4;
    cfg.protocol.softwareLatency = 50;
    cfg.protocol.limitlessMode = LimitlessMode::stallApprox;
    cfg.metricsInterval = 2000;

    Machine machine(cfg);
    WeatherParams wp;
    wp.iterations = 6;
    wp.columnLines = 16;
    Weather wl(wp);
    wl.install(machine);
    const RunResult run = machine.run();
    ASSERT_TRUE(run.completed);

    const Telemetry *t = machine.telemetry();
    ASSERT_NE(t, nullptr);
    ASSERT_GE(t->windows(), 2u) << "need several windows for the check";

    const auto &m = t->values("mem.m");
    const auto &reqs = t->values("mem.reqs");
    ASSERT_EQ(m.size(), reqs.size());
    double weighted = 0.0, total_reqs = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
        weighted += m[i] * reqs[i];
        total_reqs += reqs[i];
    }
    ASSERT_GT(total_reqs, 0.0);
    const double run_m = machine.overflowFraction();
    EXPECT_GT(run_m, 0.0) << "LimitLESS4 under 64 sharers must trap";
    EXPECT_NEAR(weighted / total_reqs, run_m, 1e-12);

    // The worker-set profile (the paper's Trap-Always measurement) saw
    // traffic, and the hot variable's full-machine worker set landed in
    // the top buckets.
    const Log2Histogram *ws = t->histogram("worker_set");
    ASSERT_NE(ws, nullptr);
    EXPECT_GT(ws->count(), 0u);
    std::uint64_t beyond_pointers = 0;
    for (unsigned b = Log2Histogram::bucketFor(8, ws->numBuckets());
         b < ws->numBuckets(); ++b)
        beyond_pointers += ws->bucket(b);
    EXPECT_GT(beyond_pointers, 0u)
        << "worker sets past the 4-pointer array must show up";
}

} // namespace
} // namespace limitless
