/**
 * @file
 * Workload-level behaviour tests: sharing patterns produce exactly the
 * directory pressure they are designed to (worker-sets, hot spots,
 * traps), and verification catches the values each workload promises.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "workload/hotspot.hh"
#include "workload/migratory.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"
#include "workload/weather.hh"
#include "workload/worker_set.hh"

namespace limitless
{
namespace
{

MachineConfig
machine16(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = proto;
    cfg.seed = 77;
    return cfg;
}

TEST(WorkloadMultigrid, SmallWorkerSetsNeverOverflowLimitless)
{
    // Multigrid's boundary lines have worker-set 2; with 4 pointers the
    // LimitLESS machine should take (almost) no traps — the property
    // Figure 7 relies on.
    MultigridParams wp;
    wp.iterations = 5;
    const auto out =
        runExperiment(machine16(protocols::limitlessStall(4, 50)),
                      [&] { return std::make_unique<Multigrid>(wp); });
    EXPECT_EQ(out.readTraps + out.writeTraps, 0u);
}

TEST(WorkloadMultigrid, LimitedDirectoryTakesNoEvictionsEither)
{
    MultigridParams wp;
    wp.iterations = 5;
    const auto out = runExperiment(
        machine16(protocols::dirNB(4)),
        [&] { return std::make_unique<Multigrid>(wp); });
    EXPECT_EQ(out.evictions, 0u);
}

TEST(WorkloadWeather, UnoptimizedHotVariableThrashesLimitedDirectory)
{
    // The hot-spot penalty grows with machine size (the whole point of
    // Figure 8); at 32 nodes it is already a solid 1.5x.
    MachineConfig cfg = machine16(protocols::dirNB(4));
    cfg.numNodes = 32;
    WeatherParams wp;
    wp.iterations = 8;
    const auto limited = runExperiment(
        cfg, [&] { return std::make_unique<Weather>(wp); });
    cfg.protocol = protocols::fullMap();
    const auto full = runExperiment(
        cfg, [&] { return std::make_unique<Weather>(wp); });
    EXPECT_GT(limited.evictions, 100u) << "pointer thrashing";
    EXPECT_GT(limited.cycles, full.cycles * 3 / 2);
}

TEST(WorkloadWeather, OptimizedVariantRescuesLimitedDirectory)
{
    WeatherParams wp;
    wp.iterations = 8;
    wp.optimizeHotVariable = true;
    const auto limited = runExperiment(
        machine16(protocols::dirNB(4)),
        [&] { return std::make_unique<Weather>(wp); });
    const auto full = runExperiment(
        machine16(protocols::fullMap()),
        [&] { return std::make_unique<Weather>(wp); });
    EXPECT_LT(limited.cycles, full.cycles * 5 / 4)
        << "paper 5.2: flagged read-only makes Dir4NB competitive";
}

TEST(WorkloadWeather, LimitlessAbsorbsTheHotVariableWithBoundedTraps)
{
    WeatherParams wp;
    wp.iterations = 8;
    const auto out =
        runExperiment(machine16(protocols::limitlessStall(4, 50)),
                      [&] { return std::make_unique<Weather>(wp); });
    // Worker-set build-up is one-time: roughly (N - pointers) / pointers
    // traps for the hot line, far fewer than iterations * N.
    EXPECT_GT(out.readTraps, 0u);
    EXPECT_LT(out.readTraps, 16u * 8u / 4u);
    EXPECT_EQ(out.evictions, 0u);
}

TEST(WorkloadWeather, PairwiseVariablesBreakLimitless1)
{
    WeatherParams wp;
    wp.iterations = 8;
    const auto one =
        runExperiment(machine16(protocols::limitlessStall(1, 50)),
                      [&] { return std::make_unique<Weather>(wp); });
    const auto four =
        runExperiment(machine16(protocols::limitlessStall(4, 50)),
                      [&] { return std::make_unique<Weather>(wp); });
    EXPECT_GT(one.readTraps + one.writeTraps,
              4 * (four.readTraps + four.writeTraps))
        << "worker-set-2 variables trap every iteration with one pointer";
    EXPECT_GT(one.cycles, four.cycles);
}

TEST(WorkloadHotspot, WritePeriodControlsRecurringOverflow)
{
    HotspotParams one_time;
    one_time.iterations = 8;
    one_time.writePeriod = 0; // never re-dirtied
    HotspotParams recurring = one_time;
    recurring.writePeriod = 1;

    const auto once =
        runExperiment(machine16(protocols::limitlessStall(4, 50)),
                      [&] { return std::make_unique<Hotspot>(one_time); });
    const auto often = runExperiment(
        machine16(protocols::limitlessStall(4, 50)),
        [&] { return std::make_unique<Hotspot>(recurring); });
    EXPECT_GT(often.readTraps, 2 * once.readTraps);
    EXPECT_GT(often.overflowFraction, once.overflowFraction);
}

TEST(WorkloadWorkerSet, MeanLatencyReflectsInvalidations)
{
    WorkerSetParams small;
    small.workerSet = 2;
    small.rounds = 6;
    WorkerSetParams large = small;
    large.workerSet = 12;

    for (auto proto : {protocols::fullMap(), protocols::chained()}) {
        auto ws_small = std::make_unique<WorkerSetSweep>(small);
        Machine m1(machine16(proto));
        ws_small->install(m1);
        ASSERT_TRUE(m1.run().completed);
        ws_small->verify(m1);

        auto ws_large = std::make_unique<WorkerSetSweep>(large);
        Machine m2(machine16(proto));
        ws_large->install(m2);
        ASSERT_TRUE(m2.run().completed);
        ws_large->verify(m2);

        EXPECT_GT(ws_large->meanWriteLatency(),
                  ws_small->meanWriteLatency())
            << proto.name();
    }
}

TEST(WorkloadMigratory, OwnershipMigratesThroughRWTransitions)
{
    MigratoryParams mp;
    mp.rounds = 3;
    mp.objectLines = 2;
    const auto out = runExperiment(
        machine16(protocols::fullMap()),
        [&] { return std::make_unique<Migratory>(mp); });
    EXPECT_TRUE(out.completed);
    // Each hand-off invalidates the previous owner: at least
    // (procs * rounds - 1) * lines ownership transfers.
    EXPECT_GT(out.invsSent, 16u * 3u - 1u);
}

TEST(WorkloadRandomStress, DifferentSeedsBothVerify)
{
    for (std::uint64_t seed : {1ull, 999ull}) {
        RandomStressParams rp;
        rp.opsPerProc = 60;
        rp.seed = seed;
        const auto out = runExperiment(
            machine16(protocols::limitlessStall(2, 50)),
            [&] { return std::make_unique<RandomStress>(rp); });
        EXPECT_TRUE(out.completed);
    }
}

TEST(WorkloadNames, AreStable)
{
    EXPECT_EQ(Multigrid().name(), "multigrid");
    EXPECT_EQ(Weather().name(), "weather");
    WeatherParams wo;
    wo.optimizeHotVariable = true;
    EXPECT_EQ(Weather(wo).name(), "weather(opt)");
    EXPECT_EQ(Hotspot().name(), "hotspot");
    EXPECT_EQ(Migratory().name(), "migratory");
    EXPECT_EQ(RandomStress().name(), "random-stress");
    EXPECT_EQ(WorkerSetSweep().name(), "worker-set");
}

} // namespace
} // namespace limitless
