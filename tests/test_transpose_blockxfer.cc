/**
 * @file
 * Tests for the all-to-all Transpose workload and the IPI block-transfer
 * service (paper Section 4.2's store-back capability).
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "kernel/block_transfer.hh"
#include "machine/coherence_monitor.hh"
#include "workload/transpose.hh"

namespace limitless
{
namespace
{

TEST(Transpose, VerifiesUnderEveryProtocol)
{
    for (const auto &proto :
         {protocols::fullMap(), protocols::dirNB(2),
          protocols::limitlessStall(4, 50),
          protocols::limitlessEmulated(4), protocols::chained()}) {
        MachineConfig cfg;
        cfg.numNodes = 9; // 3x3: asymmetric all-to-all
        cfg.protocol = proto;
        cfg.seed = 43;
        TransposeParams tp;
        tp.rounds = 2;
        const auto out = runExperiment(
            cfg, [&] { return std::make_unique<Transpose>(tp); });
        EXPECT_TRUE(out.completed) << proto.name();
        // All-to-all with worker-set 2: no traps, no evictions.
        EXPECT_EQ(out.readTraps, 0u) << proto.name();
        EXPECT_EQ(out.evictions, 0u) << proto.name();
    }
}

TEST(Transpose, TrafficIsAllToAllNotHotSpot)
{
    MachineConfig cfg;
    cfg.numNodes = 16;
    cfg.protocol = protocols::fullMap();
    cfg.seed = 43;
    Machine m(cfg);
    TransposeParams tp;
    tp.rounds = 2;
    Transpose wl(tp);
    wl.install(m);
    ASSERT_TRUE(m.run().completed);
    wl.verify(m);

    // Every home services a comparable number of requests: the max/min
    // ratio across nodes stays small (contrast: Weather's node 0).
    std::uint64_t lo = ~0ull, hi = 0;
    for (unsigned i = 0; i < 16; ++i) {
        const auto *c = static_cast<const Counter *>(
            m.node(i).statSet("mem")->find("requests"));
        lo = std::min(lo, c->value());
        hi = std::max(hi, c->value());
    }
    EXPECT_LT(hi, lo * 2) << "load should be spread evenly";
}

// ------------------------------------------------------- Block transfer

TEST(BlockTransfer, MovesLinesCoherentlyBetweenNodes)
{
    MachineConfig cfg;
    cfg.numNodes = 8;
    cfg.protocol = protocols::limitlessStall(4, 50);
    cfg.seed = 47;
    Machine m(cfg);
    BlockTransferService xfer(m, 1);
    const AddressMap &amap = m.addressMap();
    const Addr src = amap.addrOnNode(1, 0x40);
    const Addr dst = amap.addrOnNode(5, 0x80);
    const unsigned lines = 6;

    // A reader on node 6 caches one destination line *before* the
    // transfer; the store-back must refresh that copy.
    const Addr watched = dst + 2 * amap.lineBytes();
    bool checked = false;
    m.spawnOn(6, [&, watched](ThreadApi &t) -> Task<> {
        EXPECT_EQ(co_await t.read(watched), 0u);
        // Wait until the transfer completes, then re-read.
        for (;;) {
            const std::uint64_t v = co_await t.read(watched);
            if (v != 0) {
                EXPECT_EQ(v, 100u + 2 * amap.wordsPerLine());
                checked = true;
                break;
            }
            co_await t.compute(15);
        }
    });

    m.spawnOn(1, [&](ThreadApi &t) -> Task<> {
        // Fill the source lines through the coherent interface.
        for (unsigned k = 0; k < lines; ++k) {
            for (unsigned w = 0; w < amap.wordsPerLine(); ++w) {
                co_await t.write(src + k * amap.lineBytes() +
                                     w * bytesPerWord,
                                 100 + k * amap.wordsPerLine() + w);
            }
        }
        // The transfer reads the payload coherently (hits in this
        // cache), so no explicit flush is needed.
        co_await xfer.transfer(t, amap.lineAddr(src),
                               amap.lineAddr(dst), lines);
    });
    ASSERT_TRUE(m.run().completed);
    CoherenceMonitor(m).checkQuiescent();
    EXPECT_TRUE(checked);
    EXPECT_EQ(xfer.packetsSent(), lines);

    // Destination memory holds the payload (lines interleave across
    // homes, so consult each line's own home).
    for (unsigned k = 0; k < lines; ++k) {
        const Addr line = amap.lineAddr(dst) + k * amap.lineBytes();
        const LineWords &mem =
            m.node(amap.homeOf(line)).mem().readLine(line);
        for (unsigned w = 0; w < amap.wordsPerLine(); ++w)
            EXPECT_EQ(mem[w], 100 + k * amap.wordsPerLine() + w)
                << "line " << k << " word " << w;
    }
}

TEST(BlockTransfer, RejectsNonLocalSource)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = protocols::fullMap();
    Machine m(cfg);
    BlockTransferService xfer(m, 2);
    const Addr remote_src = m.addressMap().addrOnNode(3, 0);
    m.spawnOn(0, [&](ThreadApi &t) -> Task<> {
        co_await xfer.transfer(t, remote_src,
                               m.addressMap().addrOnNode(1, 0), 1);
    });
    EXPECT_DEATH(m.run(), "not homed locally");
}

} // namespace
} // namespace limitless
