/** @file Unit tests for the flit-level wormhole mesh. */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "network/flit_fifo.hh"
#include "network/mesh_network.hh"
#include "sim/rng.hh"

namespace limitless
{
namespace
{

struct Fixture
{
    EventQueue eq;
    MeshNetwork net;
    std::vector<PacketPtr> received;
    std::map<NodeId, std::vector<Tick>> arrivals;

    explicit Fixture(unsigned w = 4, unsigned h = 4,
                     WormholeParams params = {})
        : Fixture(std::make_shared<MeshTopology>(w, h), params)
    {
    }

    explicit Fixture(std::shared_ptr<const Topology> topo,
                     WormholeParams params = {})
        : net(eq, topo, params)
    {
        for (NodeId n = 0; n < topo->numNodes(); ++n) {
            net.setReceiver(n, [this, n](PacketPtr pkt) {
                arrivals[n].push_back(eq.now());
                received.push_back(std::move(pkt));
            });
        }
    }
};

TEST(FlitFifo, GrowsOnDemandPreservingOrder)
{
    FlitFifo fifo;
    const std::size_t seed_cap = fifo.capacity();
    // Interleave pushes and pops across several growth steps and check
    // strict FIFO order survives the ring unwrap.
    unsigned pushed = 0, popped = 0;
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 40; ++i) {
            Flit f{};
            f.dest = static_cast<NodeId>(pushed++);
            fifo.push_back(f);
        }
        for (int i = 0; i < 15; ++i) {
            ASSERT_EQ(fifo.front().dest, popped);
            fifo.pop_front();
            ++popped;
        }
    }
    EXPECT_GT(fifo.capacity(), seed_cap);
    while (!fifo.empty()) {
        ASSERT_EQ(fifo.front().dest, popped);
        fifo.pop_front();
        ++popped;
    }
    EXPECT_EQ(popped, pushed);
}

TEST(FlitFifo, BoundedFifoPanicsOnOverflow)
{
    FlitFifo fifo;
    fifo.setBound(4);
    Flit f{};
    for (int i = 0; i < 4; ++i)
        fifo.push_back(f);
    EXPECT_DEATH(fifo.push_back(f), "flit fifo overflow");
}

TEST(MeshNetwork, DeliversAcrossTheMesh)
{
    Fixture f;
    f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.received[0]->dest, 15u);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, LatencyScalesWithHops)
{
    Tick near_t, far_t;
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 1, Opcode::RREQ, 0x40));
        f.eq.run();
        near_t = f.eq.now();
    }
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        far_t = f.eq.now();
    }
    EXPECT_GT(far_t, near_t);
    EXPECT_GE(far_t - near_t, 4u); // at least a cycle per extra hop
}

TEST(MeshNetwork, WormholePacketsDoNotInterleave)
{
    // Two long packets from different sources to the same destination:
    // with a single channel the ejection link serializes them.
    Fixture f;
    const std::vector<std::uint64_t> payload(8, 7);
    f.net.send(makeDataPacket(0, 5, Opcode::RDATA, 0x40, payload));
    f.net.send(makeDataPacket(10, 5, Opcode::RDATA, 0x80, payload));
    f.eq.run();
    ASSERT_EQ(f.arrivals[5].size(), 2u);
    const unsigned flits = f.net.flitsForPacket(
        *makeDataPacket(0, 5, Opcode::RDATA, 0x40, payload));
    // Second tail can eject no earlier than one packet's worth of flits
    // after the first (ejection consumes one flit per cycle).
    EXPECT_GE(f.arrivals[5][1] - f.arrivals[5][0], flits - 1);
}

TEST(MeshNetwork, PreservesPointToPointFifoOrder)
{
    Fixture f;
    for (int i = 0; i < 5; ++i)
        f.net.send(makeProtocolPacket(0, 12, Opcode::RREQ, 0x40 * (i + 1)));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f.received[i]->addr(), 0x40u * (i + 1));
}

TEST(MeshNetwork, ManyToOneCreatesHotSpotQueueing)
{
    // All nodes fire a data packet at node 0 simultaneously; the spread
    // between first and last arrival must cover the ejection
    // serialization (one flit per cycle at the hot node).
    Fixture f(4, 4);
    unsigned flits = 0;
    for (NodeId n = 1; n < 16; ++n) {
        auto pkt = makeDataPacket(n, 0, Opcode::RDATA, 0x40, {1, 2});
        flits = f.net.flitsForPacket(*pkt);
        f.net.send(std::move(pkt));
    }
    f.eq.run();
    ASSERT_EQ(f.arrivals[0].size(), 15u);
    const Tick spread = f.arrivals[0].back() - f.arrivals[0].front();
    EXPECT_GE(spread, static_cast<Tick>(14 * (flits - 1)));
}

TEST(MeshNetwork, RandomTrafficAllDelivered)
{
    Fixture f(4, 4);
    Rng rng(99);
    unsigned sent = 0;
    for (int i = 0; i < 200; ++i) {
        const NodeId src = rng.below(16);
        const NodeId dst = rng.below(16);
        f.net.send(makeProtocolPacket(src, dst, Opcode::RREQ,
                                      0x40 * (i + 1)));
        ++sent;
    }
    f.eq.run();
    EXPECT_EQ(f.received.size(), sent);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, SingleRowMeshWorks)
{
    Fixture f(8, 1);
    f.net.send(makeProtocolPacket(0, 7, Opcode::RREQ, 0x40));
    f.net.send(makeProtocolPacket(7, 0, Opcode::RREQ, 0x80));
    f.eq.run();
    EXPECT_EQ(f.received.size(), 2u);
}

TEST(MeshNetwork, TinyInputFifosStillDeliverEverything)
{
    WormholeParams params;
    params.inputFifoFlits = 2; // minimum legal buffering
    Fixture f(4, 4, params);
    for (NodeId n = 1; n < 16; ++n)
        f.net.send(makeDataPacket(n, 0, Opcode::RDATA, 0x40,
                                  std::vector<std::uint64_t>(6, n)));
    f.eq.run();
    EXPECT_EQ(f.arrivals[0].size(), 15u);
}

TEST(MeshNetwork, SlowNetworkClockStretchesLatency)
{
    Tick fast_t, slow_t;
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        fast_t = f.eq.now();
    }
    {
        WormholeParams params;
        params.clockPeriod = 2;
        Fixture f(4, 4, params);
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        slow_t = f.eq.now();
    }
    EXPECT_GT(slow_t, fast_t);
}

TEST(MeshNetwork, TorusRandomTrafficAllDelivered)
{
    // The wrap rings plus the dateline VC discipline: saturate a small
    // torus with random traffic and require full delivery (this is the
    // test that hangs if the 2-VC dateline scheme has a cycle).
    Fixture f(std::make_shared<TorusTopology>(4, 4));
    Rng rng(7);
    unsigned sent = 0;
    for (int i = 0; i < 300; ++i) {
        const NodeId src = rng.below(16);
        const NodeId dst = rng.below(16);
        f.net.send(makeProtocolPacket(src, dst, Opcode::RREQ,
                                      0x40 * (i + 1)));
        ++sent;
    }
    f.eq.run();
    EXPECT_EQ(f.received.size(), sent);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, TorusWrapIsFasterThanMeshWalk)
{
    // Corner to corner: 14 mesh hops but only 4 torus hops (wrap both
    // dimensions), so the torus delivery must complete sooner.
    Tick mesh_t, torus_t;
    {
        Fixture f(8, 8);
        f.net.send(makeProtocolPacket(0, 63, Opcode::RREQ, 0x40));
        f.eq.run();
        mesh_t = f.eq.now();
    }
    {
        Fixture f(std::make_shared<TorusTopology>(8, 8));
        f.net.send(makeProtocolPacket(0, 63, Opcode::RREQ, 0x40));
        f.eq.run();
        torus_t = f.eq.now();
    }
    EXPECT_LT(torus_t, mesh_t);
}

TEST(MeshNetwork, TorusWidthTwoRingDelivers)
{
    // Width-2 rings have duplicate neighbors (E and W reach the same
    // node), the case reverseChannel() must disambiguate.
    Fixture f(std::make_shared<TorusTopology>(2, 2));
    for (NodeId src = 0; src < 4; ++src)
        for (NodeId dst = 0; dst < 4; ++dst)
            if (src != dst)
                f.net.send(makeProtocolPacket(src, dst, Opcode::RREQ,
                                              0x40 * (src * 4 + dst + 1)));
    f.eq.run();
    EXPECT_EQ(f.received.size(), 12u);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, ExpressMeshDeliversAndBeatsPlainMesh)
{
    Tick mesh_t, express_t;
    {
        Fixture f(8, 8);
        f.net.send(makeProtocolPacket(0, 63, Opcode::RREQ, 0x40));
        f.eq.run();
        mesh_t = f.eq.now();
    }
    {
        Fixture f(std::make_shared<ExpressMeshTopology>(8, 8, 4));
        f.net.send(makeProtocolPacket(0, 63, Opcode::RREQ, 0x40));
        f.eq.run();
        express_t = f.eq.now();
    }
    EXPECT_LT(express_t, mesh_t);
}

TEST(MeshNetwork, ExpressMeshRandomTrafficAllDelivered)
{
    Fixture f(std::make_shared<ExpressMeshTopology>(8, 8, 3));
    Rng rng(11);
    unsigned sent = 0;
    for (int i = 0; i < 300; ++i) {
        const NodeId src = rng.below(64);
        const NodeId dst = rng.below(64);
        f.net.send(makeProtocolPacket(src, dst, Opcode::RREQ,
                                      0x40 * (i + 1)));
        ++sent;
    }
    f.eq.run();
    EXPECT_EQ(f.received.size(), sent);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, HotSpotInjectionFifoGrowsInsteadOfOverflowing)
{
    // Every node fires a burst of multi-flit packets at node 0 in the
    // same cycle. The injection (Local) fifo at each source is
    // unbounded and must grow past its initial 16-flit ring; the
    // neighbor fifos stay at their credit bound. This is the
    // regression test for the old fixed-capacity flit ring, scaled to
    // a 32x32 machine.
    Fixture f(32, 32);
    unsigned flits = 0;
    for (NodeId n = 1; n < 1024; ++n) {
        for (int burst = 0; burst < 4; ++burst) {
            auto pkt = makeDataPacket(n, 0, Opcode::RDATA,
                                      0x40 * (burst + 1),
                                      std::vector<std::uint64_t>(4, n));
            flits = f.net.flitsForPacket(*pkt);
            f.net.send(std::move(pkt));
        }
    }
    ASSERT_GT(flits, 1u);
    f.eq.run();
    EXPECT_EQ(f.arrivals[0].size(), 4u * 1023u);
    // Each source queues ~24 flits at injection; some fifo must have
    // outgrown the 16-flit seed capacity.
    EXPECT_GT(f.net.maxFifoCapacity(), 16u);
    EXPECT_FALSE(f.net.busy());
}

} // namespace
} // namespace limitless
