/** @file Unit tests for the flit-level wormhole mesh. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "network/mesh_network.hh"
#include "sim/rng.hh"

namespace limitless
{
namespace
{

struct Fixture
{
    EventQueue eq;
    MeshNetwork net;
    std::vector<PacketPtr> received;
    std::map<NodeId, std::vector<Tick>> arrivals;

    explicit Fixture(unsigned w = 4, unsigned h = 4,
                     MeshNetworkParams params = {})
        : net(eq, MeshTopology(w, h), params)
    {
        for (NodeId n = 0; n < w * h; ++n) {
            net.setReceiver(n, [this, n](PacketPtr pkt) {
                arrivals[n].push_back(eq.now());
                received.push_back(std::move(pkt));
            });
        }
    }
};

TEST(MeshNetwork, DeliversAcrossTheMesh)
{
    Fixture f;
    f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 1u);
    EXPECT_EQ(f.received[0]->dest, 15u);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, LatencyScalesWithHops)
{
    Tick near_t, far_t;
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 1, Opcode::RREQ, 0x40));
        f.eq.run();
        near_t = f.eq.now();
    }
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        far_t = f.eq.now();
    }
    EXPECT_GT(far_t, near_t);
    EXPECT_GE(far_t - near_t, 4u); // at least a cycle per extra hop
}

TEST(MeshNetwork, WormholePacketsDoNotInterleave)
{
    // Two long packets from different sources to the same destination:
    // with a single channel the ejection link serializes them.
    Fixture f;
    const std::vector<std::uint64_t> payload(8, 7);
    f.net.send(makeDataPacket(0, 5, Opcode::RDATA, 0x40, payload));
    f.net.send(makeDataPacket(10, 5, Opcode::RDATA, 0x80, payload));
    f.eq.run();
    ASSERT_EQ(f.arrivals[5].size(), 2u);
    const unsigned flits = f.net.flitsForPacket(
        *makeDataPacket(0, 5, Opcode::RDATA, 0x40, payload));
    // Second tail can eject no earlier than one packet's worth of flits
    // after the first (ejection consumes one flit per cycle).
    EXPECT_GE(f.arrivals[5][1] - f.arrivals[5][0], flits - 1);
}

TEST(MeshNetwork, PreservesPointToPointFifoOrder)
{
    Fixture f;
    for (int i = 0; i < 5; ++i)
        f.net.send(makeProtocolPacket(0, 12, Opcode::RREQ, 0x40 * (i + 1)));
    f.eq.run();
    ASSERT_EQ(f.received.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f.received[i]->addr(), 0x40u * (i + 1));
}

TEST(MeshNetwork, ManyToOneCreatesHotSpotQueueing)
{
    // All nodes fire a data packet at node 0 simultaneously; the spread
    // between first and last arrival must cover the ejection
    // serialization (one flit per cycle at the hot node).
    Fixture f(4, 4);
    unsigned flits = 0;
    for (NodeId n = 1; n < 16; ++n) {
        auto pkt = makeDataPacket(n, 0, Opcode::RDATA, 0x40, {1, 2});
        flits = f.net.flitsForPacket(*pkt);
        f.net.send(std::move(pkt));
    }
    f.eq.run();
    ASSERT_EQ(f.arrivals[0].size(), 15u);
    const Tick spread = f.arrivals[0].back() - f.arrivals[0].front();
    EXPECT_GE(spread, static_cast<Tick>(14 * (flits - 1)));
}

TEST(MeshNetwork, RandomTrafficAllDelivered)
{
    Fixture f(4, 4);
    Rng rng(99);
    unsigned sent = 0;
    for (int i = 0; i < 200; ++i) {
        const NodeId src = rng.below(16);
        const NodeId dst = rng.below(16);
        f.net.send(makeProtocolPacket(src, dst, Opcode::RREQ,
                                      0x40 * (i + 1)));
        ++sent;
    }
    f.eq.run();
    EXPECT_EQ(f.received.size(), sent);
    EXPECT_FALSE(f.net.busy());
}

TEST(MeshNetwork, SingleRowMeshWorks)
{
    Fixture f(8, 1);
    f.net.send(makeProtocolPacket(0, 7, Opcode::RREQ, 0x40));
    f.net.send(makeProtocolPacket(7, 0, Opcode::RREQ, 0x80));
    f.eq.run();
    EXPECT_EQ(f.received.size(), 2u);
}

TEST(MeshNetwork, TinyInputFifosStillDeliverEverything)
{
    MeshNetworkParams params;
    params.inputFifoFlits = 2; // minimum legal buffering
    Fixture f(4, 4, params);
    for (NodeId n = 1; n < 16; ++n)
        f.net.send(makeDataPacket(n, 0, Opcode::RDATA, 0x40,
                                  std::vector<std::uint64_t>(6, n)));
    f.eq.run();
    EXPECT_EQ(f.arrivals[0].size(), 15u);
}

TEST(MeshNetwork, SlowNetworkClockStretchesLatency)
{
    Tick fast_t, slow_t;
    {
        Fixture f;
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        fast_t = f.eq.now();
    }
    {
        MeshNetworkParams params;
        params.clockPeriod = 2;
        Fixture f(4, 4, params);
        f.net.send(makeProtocolPacket(0, 15, Opcode::RREQ, 0x40));
        f.eq.run();
        slow_t = f.eq.now();
    }
    EXPECT_GT(slow_t, fast_t);
}

} // namespace
} // namespace limitless
