/**
 * @file
 * Model-checker suite: exhaustive clean sweeps over every directory
 * scheme, the injected-bug demonstration (a flipped table guard must
 * yield a minimized, replayable counterexample), trace round-trips,
 * and the coverage machinery. The full standard sweep runs as the
 * limitless-check tool's own CI test; here the configs stay small so
 * the tier-1 suite stays fast.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/coverage.hh"
#include "check/explorer.hh"
#include "check/minimize.hh"
#include "check/trace_io.hh"
#include "harness/experiment.hh"

namespace limitless
{
namespace
{

CheckConfig
smokeConfig(ProtocolParams proto, unsigned nodes = 2)
{
    CheckConfig cfg;
    cfg.protocol = proto;
    cfg.nodes = nodes;
    cfg.script = "smoke";
    return cfg;
}

ProtocolParams
privateOnlyParams()
{
    ProtocolParams p;
    p.kind = ProtocolKind::privateOnly;
    return p;
}

// --- Exhaustive clean sweeps ---------------------------------------

struct SchemeCase
{
    const char *tag;
    ProtocolParams proto;
};

std::string
schemeName(const testing::TestParamInfo<SchemeCase> &info)
{
    return info.param.tag;
}

class CheckerSweep : public testing::TestWithParam<SchemeCase>
{
};

TEST_P(CheckerSweep, SmokeIsExhaustiveAndClean)
{
    const ExploreResult r =
        explore(smokeConfig(GetParam().proto), ExploreLimits{});
    EXPECT_TRUE(r.ok()) << violationKindName(r.cex->kind);
    EXPECT_TRUE(r.stats.exhaustive());
    EXPECT_GT(r.stats.states, 10u);
    EXPECT_GT(r.stats.terminals, 0u);
}

TEST_P(CheckerSweep, ConflictIsExhaustiveAndClean)
{
    CheckConfig cfg;
    cfg.protocol = GetParam().proto;
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.script = "conflict";
    const ExploreResult r = explore(cfg, ExploreLimits{});
    EXPECT_TRUE(r.ok()) << violationKindName(r.cex->kind);
    EXPECT_TRUE(r.stats.exhaustive());
    EXPECT_GT(r.stats.states, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CheckerSweep,
    testing::Values(
        SchemeCase{"full_map", protocols::fullMap()},
        SchemeCase{"limited1", protocols::dirNB(1)},
        SchemeCase{"limitless1", protocols::limitlessStall(1, 8)},
        SchemeCase{"limitless1_emu", protocols::limitlessEmulated(1)},
        SchemeCase{"chained", protocols::chained()},
        SchemeCase{"private_only", privateOnlyParams()}),
    schemeName);

TEST(CheckerSweepExtra, LimitlessOverflowThreeNodesIsClean)
{
    // Two remote sharers against one hardware pointer: the pointer
    // overflow / trap path is on every nontrivial schedule.
    const ExploreResult r =
        explore(smokeConfig(protocols::limitlessStall(1, 8), 3),
                ExploreLimits{});
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.exhaustive());
    EXPECT_GT(r.stats.states, 500u);
}

// --- Determinism of replay-based exploration -----------------------

TEST(CheckerWorld, ReplayReachesIdenticalFingerprint)
{
    const CheckConfig cfg = smokeConfig(protocols::fullMap());
    CheckWorld a(cfg);
    Schedule schedule;
    // Walk a fixed path: always take the first enabled choice.
    for (int i = 0; i < 6 && !a.enabled().empty(); ++i) {
        const Choice c = a.enabled().front();
        ASSERT_TRUE(a.apply(c));
        schedule.push_back(c);
    }
    const std::unique_ptr<CheckWorld> b = replaySchedule(cfg, schedule);
    EXPECT_EQ(a.fingerprint(), b->fingerprint());
}

TEST(CheckerWorld, InapplicableChoicesAreRejectedWithoutSideEffects)
{
    CheckWorld w(smokeConfig(protocols::fullMap()));
    const std::string before = w.fingerprint();
    Choice deliver;
    deliver.kind = Choice::Kind::deliver;
    deliver.src = 0;
    deliver.node = 1;
    std::string why;
    EXPECT_FALSE(w.apply(deliver, &why)); // nothing in flight yet
    EXPECT_EQ(why, "channel empty");
    EXPECT_EQ(before, w.fingerprint());
}

// --- Injected bugs: counterexample, minimization, replay -----------

TEST(CheckerFaultInjection, FlippedAckGuardDeadlocksAndReplays)
{
    // rt_finish is guarded on data_seen: with the guard inverted the
    // home never leaves Read-Transaction, so the conflicting requests
    // park in the defer buffer forever.
    const std::uint16_t row =
        findRowByLabel(ProtocolKind::fullMap, TableSide::home,
                       "rt_finish");
    GuardFlipScope flip(ProtocolKind::fullMap, TableSide::home, row);

    CheckConfig cfg;
    cfg.protocol = protocols::fullMap();
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.script = "conflict";

    const ExploreResult r = explore(cfg, ExploreLimits{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.cex->kind, ViolationKind::deadlock);

    const Schedule minimized =
        minimizeSchedule(cfg, r.cex->schedule, r.cex->kind);
    EXPECT_LE(minimized.size(), r.cex->schedule.size());
    EXPECT_TRUE(scheduleViolates(cfg, minimized, r.cex->kind));

    // Round-trip through the trace format and replay.
    CheckTrace trace;
    trace.config = cfg;
    trace.flips = {GuardFlip{ProtocolKind::fullMap, TableSide::home, row}};
    trace.violation = r.cex->kind;
    trace.messages = r.cex->messages;
    trace.schedule = minimized;
    std::stringstream buf;
    writeTrace(buf, trace);
    CheckTrace parsed;
    std::string error;
    ASSERT_TRUE(parseTrace(buf, parsed, &error)) << error;
    EXPECT_TRUE(replayTrace(parsed));
}

TEST(CheckerFaultInjection, FlippedWriteTrapGuardBreaksSafety)
{
    // ro_write_gather's guard routes overflowed writes through the
    // trap handler; inverted, a write is granted while the software
    // directory still tracks readers — a single-writer violation.
    const std::uint16_t row =
        findRowByLabel(ProtocolKind::limitless, TableSide::home,
                       "ro_write_gather");
    GuardFlipScope flip(ProtocolKind::limitless, TableSide::home, row);

    const CheckConfig cfg =
        smokeConfig(protocols::limitlessStall(1, 8), 3);
    const ExploreResult r = explore(cfg, ExploreLimits{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.cex->kind, ViolationKind::safety);

    const Schedule minimized =
        minimizeSchedule(cfg, r.cex->schedule, r.cex->kind);
    EXPECT_LE(minimized.size(), r.cex->schedule.size());
    EXPECT_TRUE(scheduleViolates(cfg, minimized, r.cex->kind));
}

TEST(CheckerFaultInjection, CleanTablesNeverViolateUnderSameConfigs)
{
    // The same two configs the injection tests use must be clean
    // without the flips, so the counterexamples above are attributable
    // to the injected bug alone.
    CheckConfig conflict;
    conflict.protocol = protocols::fullMap();
    conflict.nodes = 2;
    conflict.lines = 2;
    conflict.script = "conflict";
    EXPECT_TRUE(explore(conflict, ExploreLimits{}).ok());
    EXPECT_TRUE(
        explore(smokeConfig(protocols::limitlessStall(1, 8), 3),
                ExploreLimits{})
            .ok());
}

// --- Trace format ---------------------------------------------------

TEST(CheckerTrace, RoundTripPreservesEveryField)
{
    CheckTrace t;
    t.config.protocol = protocols::limitlessEmulated(2);
    t.config.protocol.trapOnWrite = false;
    t.config.nodes = 3;
    t.config.lines = 2;
    t.config.script = "conflict";
    t.config.opsPerNode = 5;
    t.config.deferDepth = 2;
    t.config.seed = 99;
    t.flips = {GuardFlip{ProtocolKind::limitless, TableSide::cache, 7}};
    t.violation = ViolationKind::safety;
    t.messages = {"line 0x80: two writers", "second message"};
    Choice issue;
    issue.kind = Choice::Kind::issue;
    issue.node = 2;
    Choice deliver;
    deliver.kind = Choice::Kind::deliver;
    deliver.src = 1;
    deliver.node = 0;
    deliver.opcode = Opcode::WREQ;
    deliver.line = 0x80;
    t.schedule = {issue, deliver};

    std::stringstream buf;
    writeTrace(buf, t);
    CheckTrace p;
    std::string error;
    ASSERT_TRUE(parseTrace(buf, p, &error)) << error;

    EXPECT_EQ(p.config.protocol.kind, ProtocolKind::limitless);
    EXPECT_EQ(p.config.protocol.pointers, 2u);
    EXPECT_EQ(p.config.protocol.limitlessMode,
              LimitlessMode::fullEmulation);
    EXPECT_FALSE(p.config.protocol.trapOnWrite);
    EXPECT_EQ(p.config.nodes, 3u);
    EXPECT_EQ(p.config.lines, 2u);
    EXPECT_EQ(p.config.script, "conflict");
    EXPECT_EQ(p.config.opsPerNode, 5u);
    EXPECT_EQ(p.config.deferDepth, 2u);
    EXPECT_EQ(p.config.seed, 99u);
    ASSERT_EQ(p.flips.size(), 1u);
    EXPECT_EQ(p.flips[0].side, TableSide::cache);
    EXPECT_EQ(p.flips[0].row, 7u);
    EXPECT_EQ(p.violation, ViolationKind::safety);
    EXPECT_EQ(p.messages, t.messages);
    ASSERT_EQ(p.schedule.size(), 2u);
    EXPECT_EQ(p.schedule[0].kind, Choice::Kind::issue);
    EXPECT_EQ(p.schedule[0].node, 2u);
    EXPECT_EQ(p.schedule[1].kind, Choice::Kind::deliver);
    EXPECT_EQ(p.schedule[1].src, 1u);
    EXPECT_EQ(p.schedule[1].opcode, Opcode::WREQ);
    EXPECT_EQ(p.schedule[1].line, 0x80u);
}

TEST(CheckerTrace, ParserRejectsGarbage)
{
    CheckTrace t;
    std::string error;
    std::stringstream empty("not a trace\n");
    EXPECT_FALSE(parseTrace(empty, t, &error));
    std::stringstream truncated(
        "limitless-check-trace-v1\nkind full_map\nschedule\nissue 0\n");
    EXPECT_FALSE(parseTrace(truncated, t, &error));
    EXPECT_NE(error.find("truncated"), std::string::npos);
    std::stringstream badkey(
        "limitless-check-trace-v1\nwibble 3\nschedule\nend\n");
    EXPECT_FALSE(parseTrace(badkey, t, &error));
}

// --- Coverage -------------------------------------------------------

TEST(CheckerCoverage, ObserverSeesFiredRows)
{
    CoverageScope scope;
    ASSERT_TRUE(explore(smokeConfig(protocols::fullMap()),
                        ExploreLimits{})
                    .ok());
    const std::uint16_t grant = findRowByLabel(
        ProtocolKind::fullMap, TableSide::home, "ro_grant_read");
    EXPECT_TRUE(scope.covered(ProtocolKind::fullMap, TableSide::home,
                              grant));
    const std::vector<TableCoverage> cov =
        collectCoverage(scope, {ProtocolKind::fullMap});
    ASSERT_EQ(cov.size(), 2u); // home + cache side
    EXPECT_GT(cov[0].coveredRows, 0u);
    EXPECT_LT(cov[0].coveredRows, cov[0].rows()); // smoke leaves dead rows
    std::ostringstream report;
    writeCoverageReport(report, cov);
    EXPECT_NE(report.str().find("ro_grant_read"), std::string::npos);
    EXPECT_NE(report.str().find("dead rows:"), std::string::npos);
}

} // namespace
} // namespace limitless
