/**
 * @file
 * Parameterized machine-shape sweeps: line size, home mapping, cache
 * size (down to pathological), hardware contexts, memory model, and IPI
 * queue capacity. Every shape must run the verifying workloads to
 * completion with coherence intact — configuration-space robustness.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"

namespace limitless
{
namespace
{

struct ShapeCase
{
    unsigned lineBytes;
    HomeMapping mapping;
    std::uint64_t cacheBytes;
    unsigned contexts;
    MemoryModel model;
    std::size_t ipiCapacity;
    ProtocolParams proto;
};

std::string
shapeName(const testing::TestParamInfo<ShapeCase> &info)
{
    const ShapeCase &c = info.param;
    std::ostringstream os;
    os << "line" << c.lineBytes << "_"
       << (c.mapping == HomeMapping::interleaved ? "il" : "rg") << "_c"
       << c.cacheBytes << "_ctx" << c.contexts << "_"
       << (c.model == MemoryModel::weak ? "wo" : "sc") << "_q"
       << c.ipiCapacity << "_" << c.proto.name();
    std::string s = os.str();
    for (char &ch : s)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return s;
}

class MachineShape : public testing::TestWithParam<ShapeCase>
{
};

TEST_P(MachineShape, RandomStressVerifies)
{
    const ShapeCase &c = GetParam();
    MachineConfig cfg;
    cfg.numNodes = 12;
    cfg.lineBytes = c.lineBytes;
    cfg.mapping = c.mapping;
    cfg.cache.cacheBytes = c.cacheBytes;
    cfg.proc.contexts = c.contexts;
    cfg.proc.memoryModel = c.model;
    cfg.ipiInputCapacity = c.ipiCapacity;
    cfg.protocol = c.proto;
    cfg.seed = 19;

    Machine m(cfg);
    RandomStressParams rp;
    rp.opsPerProc = 90;
    RandomStress wl(rp);
    wl.install(m);
    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);
    wl.verify(m);
    CoherenceMonitor(m).checkQuiescent();
}

TEST_P(MachineShape, MultigridVerifies)
{
    const ShapeCase &c = GetParam();
    MachineConfig cfg;
    cfg.numNodes = 12;
    cfg.lineBytes = c.lineBytes;
    cfg.mapping = c.mapping;
    cfg.cache.cacheBytes = c.cacheBytes;
    cfg.proc.contexts = c.contexts;
    cfg.proc.memoryModel = c.model;
    cfg.ipiInputCapacity = c.ipiCapacity;
    cfg.protocol = c.proto;
    cfg.seed = 19;

    Machine m(cfg);
    MultigridParams wp;
    wp.iterations = 3;
    wp.interiorLines = 5;
    Multigrid wl(wp);
    wl.install(m);
    const RunResult r = m.run();
    ASSERT_TRUE(r.completed);
    wl.verify(m);
    CoherenceMonitor(m).checkQuiescent();
}

std::vector<ShapeCase>
makeShapes()
{
    // Shapes chosen to stress specific machinery; keep the cross product
    // small and meaningful rather than exhaustive.
    const auto il = HomeMapping::interleaved;
    const auto rg = HomeMapping::ranged;
    const auto sc = MemoryModel::sequential;
    const auto wo = MemoryModel::weak;
    return {
        // Wide lines (4 words): word indexing, packet sizes.
        {32, il, 64 * 1024, 1, sc, 16, protocols::fullMap()},
        {32, il, 64 * 1024, 1, sc, 16, protocols::limitlessStall(2, 50)},
        // Ranged home mapping.
        {16, rg, 64 * 1024, 1, sc, 16, protocols::dirNB(2)},
        {16, rg, 64 * 1024, 1, sc, 16, protocols::limitlessEmulated(4)},
        // Pathologically tiny cache: constant replacement traffic.
        {16, il, 8 * 16, 1, sc, 16, protocols::fullMap()},
        {16, il, 8 * 16, 1, sc, 16, protocols::limitlessStall(1, 25)},
        {16, il, 8 * 16, 1, sc, 16, protocols::chained()},
        // Multiple hardware contexts sharing one cache.
        {16, il, 64 * 1024, 2, sc, 16, protocols::dirNB(4)},
        {16, il, 64 * 1024, 2, sc, 16, protocols::limitlessEmulated(2)},
        // Weak ordering across shapes.
        {32, il, 64 * 1024, 1, wo, 16, protocols::limitlessStall(4, 50)},
        {16, rg, 8 * 16, 1, wo, 16, protocols::dirNB(2)},
        // One-slot IPI queue: constant overflow into the receive queue.
        {16, il, 64 * 1024, 1, sc, 1, protocols::limitlessEmulated(1)},
        // Everything at once: tiny cache, two contexts, weak ordering,
        // one-slot IPI queue, one hardware pointer, full emulation.
        {16, il, 8 * 16, 2, wo, 1, protocols::limitlessEmulated(1)},
        {32, rg, 8 * 32, 2, wo, 1, protocols::limitlessEmulated(2)},
    };
}

INSTANTIATE_TEST_SUITE_P(Shapes, MachineShape,
                         testing::ValuesIn(makeShapes()), shapeName);

TEST(MachineRobustness, DrainedQueueWithLiveThreadsIsDetected)
{
    // A thread parked on an awaitable nothing will ever resume: the
    // event queue drains while the thread is still live, which the run
    // loop must report as a deadlock rather than hang.
    struct Never
    {
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) noexcept {}
        void await_resume() const noexcept {}
    };
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.protocol = protocols::fullMap();
    Machine m(cfg);
    m.spawnOn(0, [](ThreadApi &t) -> Task<> {
        co_await t.compute(5);
        co_await Never{};
    });
    EXPECT_DEATH(m.run(), "deadlock");
}

TEST(MachineRobustness, MaxCyclesCapReturnsIncomplete)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.protocol = protocols::fullMap();
    Machine m(cfg);
    m.spawnOn(0, [](ThreadApi &t) -> Task<> {
        for (int i = 0; i < 1000; ++i)
            co_await t.compute(100);
    });
    const RunResult r = m.run(/*max_cycles=*/500);
    EXPECT_FALSE(r.completed);
    EXPECT_LT(r.cycles, 100000u);
}

TEST(MachineRobustness, StatsDumpMentionsEveryComponent)
{
    MachineConfig cfg;
    cfg.numNodes = 2;
    cfg.protocol = protocols::limitlessEmulated(2);
    Machine m(cfg);
    m.spawnOn(0, [&m](ThreadApi &t) -> Task<> {
        co_await t.read(m.addressMap().addrOnNode(1, 0));
    });
    ASSERT_TRUE(m.run().completed);
    std::ostringstream os;
    m.dumpStats(os);
    const std::string text = os.str();
    for (const char *needle :
         {"proc.ops", "cache.hits", "mem.rreq", "ipi.diverted",
          "handler.traps"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace limitless
