/**
 * @file
 * FIFO lock service tests (Section 6 extension): mutual exclusion,
 * exact counting under contention, strict first-come-first-served grant
 * order, and coexistence with shared-memory coherence traffic.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hh"
#include "kernel/fifo_lock.hh"
#include "workload/workload.hh"

namespace limitless
{
namespace
{

MachineConfig
machineFor(ProtocolParams proto, unsigned nodes = 8)
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.protocol = proto;
    cfg.seed = 41;
    return cfg;
}

void
runLockWorkload(Machine &m, FifoLockService &lock, unsigned iters,
                unsigned &violations, Addr counter)
{
    unsigned in_section = 0;
    for (NodeId p = 0; p < m.numNodes(); ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            for (unsigned i = 0; i < iters; ++i) {
                co_await lock.acquire(t);
                if (++in_section != 1)
                    ++violations;
                const std::uint64_t v = co_await t.read(counter);
                co_await t.compute(4);
                co_await t.write(counter, v + 1);
                --in_section;
                co_await lock.release(t);
                co_await t.compute(1 + (p * 5) % 17);
            }
        });
    }
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(violations, 0u);
}

std::uint64_t
finalWord(Machine &m, Addr a)
{
    const Addr line = m.addressMap().lineAddr(a);
    for (NodeId p = 0; p < m.numNodes(); ++p) {
        const CacheLine *cl = m.node(p).cache().array().lookup(line);
        if (cl && cl->state == CacheState::readWrite)
            return cl->words[m.addressMap().wordOf(a)];
    }
    return m.node(m.addressMap().homeOf(a))
        .mem()
        .readLine(line)[m.addressMap().wordOf(a)];
}

TEST(FifoLock, MutualExclusionAndExactCount)
{
    for (const auto &proto :
         {protocols::fullMap(), protocols::limitlessStall(4, 50),
          protocols::limitlessEmulated(4)}) {
        Machine m(machineFor(proto));
        FifoLockService lock(m, /*home=*/2, /*id=*/7);
        const Addr counter = m.addressMap().addrOnNode(1, slot::locks);
        unsigned violations = 0;
        runLockWorkload(m, lock, 10, violations, counter);
        EXPECT_EQ(finalWord(m, counter), 8u * 10u) << proto.name();
    }
}

TEST(FifoLock, GrantsFollowRequestArrivalOrder)
{
    Machine m(machineFor(protocols::fullMap()));
    FifoLockService lock(m, 0, 1);
    // Node 7 takes the lock first and holds it while everyone else
    // queues in a staggered, known order; grants must replay that order.
    std::vector<NodeId> expected = {7, 1, 2, 3, 4, 5, 6};
    const Addr ready = m.addressMap().addrOnNode(3, slot::locks + 2);
    m.spawnOn(7, [&](ThreadApi &t) -> Task<> {
        co_await lock.acquire(t);
        co_await t.write(ready, 1);
        co_await t.compute(3000); // hold while the queue builds
        co_await lock.release(t);
    });
    for (NodeId p = 1; p <= 6; ++p) {
        m.spawnOn(p, [&, p](ThreadApi &t) -> Task<> {
            while ((co_await t.read(ready)) == 0)
                co_await t.compute(10);
            co_await t.compute(p * 100); // staggered arrival
            co_await lock.acquire(t);
            co_await lock.release(t);
        });
    }
    m.spawnOn(0, [](ThreadApi &t) -> Task<> { co_await t.compute(1); });
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(lock.grantOrder(), expected);
    EXPECT_GE(lock.maxQueueDepth(), 5u);
}

TEST(FifoLock, WaitTimesAreBoundedAndFair)
{
    Machine m(machineFor(protocols::fullMap()));
    FifoLockService lock(m, 4, 2);
    const Addr counter = m.addressMap().addrOnNode(2, slot::locks + 4);
    unsigned violations = 0;
    runLockWorkload(m, lock, 8, violations, counter);

    const auto &waits = lock.grantWaits();
    ASSERT_EQ(waits.size(), 8u * 8u);
    // FIFO service: no request waits more than ~(queue length) critical
    // sections; starvation would show up as an outlier.
    const Tick max_wait = *std::max_element(waits.begin(), waits.end());
    Tick sum = 0;
    for (Tick w : waits)
        sum += w;
    const double mean = static_cast<double>(sum) / waits.size();
    EXPECT_LT(max_wait, mean * 6.0) << "an outlier wait means unfairness";
}

TEST(FifoLock, TwoIndependentLocksDoNotInterfere)
{
    Machine m(machineFor(protocols::fullMap()));
    FifoLockService lock_a(m, 0, 10);
    FifoLockService lock_b(m, 1, 11);
    const Addr ca = m.addressMap().addrOnNode(2, slot::locks + 6);
    const Addr cb = m.addressMap().addrOnNode(3, slot::locks + 8);
    for (NodeId p = 0; p < 8; ++p) {
        FifoLockService &lock = (p % 2) ? lock_a : lock_b;
        const Addr c = (p % 2) ? ca : cb;
        m.spawnOn(p, [&, c](ThreadApi &t) -> Task<> {
            for (int i = 0; i < 6; ++i) {
                co_await lock.acquire(t);
                const std::uint64_t v = co_await t.read(c);
                co_await t.write(c, v + 1);
                co_await lock.release(t);
            }
        });
    }
    ASSERT_TRUE(m.run().completed);
    EXPECT_EQ(finalWord(m, ca), 4u * 6u);
    EXPECT_EQ(finalWord(m, cb), 4u * 6u);
}

} // namespace
} // namespace limitless
