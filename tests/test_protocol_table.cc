/**
 * @file
 * Transition-table exhaustiveness tests.
 *
 * The tables are data, so the protocol's message coverage is checkable
 * by inspection: each scheme's declared (state, opcode) set is compared
 * against an exact expected set — removing a transition (or adding an
 * undocumented one) fails the test before any simulation runs. Also
 * checks structural invariants every table must satisfy: a guarded row
 * group ends in an unconditional fallback, and all five schemes agree
 * on the shared hardware subset of the protocol.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "proto/protocol_table.hh"
#include "proto/states.hh"

namespace limitless
{
namespace
{

using Pair = std::pair<std::uint8_t, Opcode>;
using PairSet = std::set<Pair>;

constexpr std::uint8_t hRO =
    static_cast<std::uint8_t>(MemState::readOnly);
constexpr std::uint8_t hRW =
    static_cast<std::uint8_t>(MemState::readWrite);
constexpr std::uint8_t hRT =
    static_cast<std::uint8_t>(MemState::readTransaction);
constexpr std::uint8_t hWT =
    static_cast<std::uint8_t>(MemState::writeTransaction);
constexpr std::uint8_t hET =
    static_cast<std::uint8_t>(MemState::evictTransaction);

constexpr std::uint8_t cI =
    static_cast<std::uint8_t>(CacheState::invalid);
constexpr std::uint8_t cRO =
    static_cast<std::uint8_t>(CacheState::readOnly);
constexpr std::uint8_t cRW =
    static_cast<std::uint8_t>(CacheState::readWrite);

const TableInfo &
table(ProtocolKind kind, TableSide side)
{
    registerAllProtocolTables();
    const TableInfo *t =
        ProtocolTableRegistry::instance().find(kind, side);
    EXPECT_NE(t, nullptr);
    return *t;
}

PairSet
declaredPairs(const TableInfo &t)
{
    PairSet pairs;
    for (const TransitionRow &row : t.rows)
        pairs.insert({row.state, row.opcode});
    return pairs;
}

/** Expected home-side pairs for the four pointer-directory schemes
 *  (full-map, limited, limitless, private); @p evict adds the limited /
 *  limitless pointer-eviction state. */
PairSet
pointerHomePairs(bool evict)
{
    PairSet s;
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::WUPD,
                      Opcode::RUNC, Opcode::ACKC})
        s.insert({hRO, op});
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::WUPD,
                      Opcode::RUNC, Opcode::REPM, Opcode::ACKC})
        s.insert({hRW, op});
    for (std::uint8_t st : {hRT, hWT})
        for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPC,
                          Opcode::WUPD, Opcode::RUNC, Opcode::UPDATE,
                          Opcode::REPM, Opcode::ACKC})
            s.insert({st, op});
    if (evict)
        for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPC,
                          Opcode::WUPD, Opcode::RUNC, Opcode::ACKC})
            s.insert({hET, op});
    return s;
}

PairSet
chainedHomePairs()
{
    PairSet s;
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPC,
                      Opcode::ACKC})
        s.insert({hRO, op});
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPM,
                      Opcode::REPC})
        s.insert({hRW, op});
    for (std::uint8_t st : {hRT, hWT})
        for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPC,
                          Opcode::UPDATE, Opcode::REPM, Opcode::ACKC})
            s.insert({st, op});
    for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPC,
                      Opcode::ACKC})
        s.insert({hET, op});
    return s;
}

/** Cache-side pairs; chained swaps MUPD/WACK for REPC_ACK. */
PairSet
cachePairs(bool chained)
{
    PairSet s;
    for (Opcode op : {Opcode::RDATA, Opcode::WDATA, Opcode::INV,
                      Opcode::BUSY})
        s.insert({cI, op});
    for (Opcode op : {Opcode::WDATA, Opcode::INV, Opcode::BUSY})
        s.insert({cRO, op});
    s.insert({cRW, Opcode::INV});
    if (chained) {
        s.insert({cI, Opcode::REPC_ACK});
        s.insert({cRO, Opcode::REPC_ACK});
    } else {
        for (Opcode op : {Opcode::MUPD, Opcode::WACK})
            for (std::uint8_t st : {cI, cRO})
                s.insert({st, op});
    }
    return s;
}

// --------------------------------------------------------- exact coverage

TEST(ProtocolTableExhaustive, FullMapHome)
{
    EXPECT_EQ(declaredPairs(table(ProtocolKind::fullMap,
                                  TableSide::home)),
              pointerHomePairs(false));
}

TEST(ProtocolTableExhaustive, PrivateHome)
{
    EXPECT_EQ(declaredPairs(table(ProtocolKind::privateOnly,
                                  TableSide::home)),
              pointerHomePairs(false));
}

TEST(ProtocolTableExhaustive, LimitedHome)
{
    EXPECT_EQ(declaredPairs(table(ProtocolKind::limited,
                                  TableSide::home)),
              pointerHomePairs(true));
}

TEST(ProtocolTableExhaustive, LimitlessHome)
{
    EXPECT_EQ(declaredPairs(table(ProtocolKind::limitless,
                                  TableSide::home)),
              pointerHomePairs(true));
}

TEST(ProtocolTableExhaustive, ChainedHome)
{
    EXPECT_EQ(declaredPairs(table(ProtocolKind::chained,
                                  TableSide::home)),
              chainedHomePairs());
}

TEST(ProtocolTableExhaustive, CacheSides)
{
    for (ProtocolKind kind :
         {ProtocolKind::fullMap, ProtocolKind::limited,
          ProtocolKind::limitless, ProtocolKind::privateOnly})
        EXPECT_EQ(declaredPairs(table(kind, TableSide::cache)),
                  cachePairs(false))
            << "scheme " << table(kind, TableSide::cache).scheme;
    EXPECT_EQ(declaredPairs(table(ProtocolKind::chained,
                                  TableSide::cache)),
              cachePairs(true));
}

// ------------------------------------------------- structural invariants

/** Every (state, opcode) group must end in an unconditional row, or a
 *  run where all guards fail would panic on a declared pair. */
TEST(ProtocolTableStructure, GuardChainsEndUnconditional)
{
    registerAllProtocolTables();
    for (const TableInfo *t :
         ProtocolTableRegistry::instance().tables()) {
        std::map<Pair, const TransitionRow *> last;
        for (const TransitionRow &row : t->rows)
            last[{row.state, row.opcode}] = &row;
        for (const auto &[pair, row] : last) {
            EXPECT_STREQ(row->guardName, "-")
                << t->scheme << "/" << tableSideName(t->side) << " ("
                << t->stateName(pair.first) << ", "
                << opcodeName(pair.second)
                << ") can fall through every guard";
        }
    }
}

/** Transition ids must match declaration order (the flight recorder
 *  tags trace events with them). */
TEST(ProtocolTableStructure, IdsAreDense)
{
    registerAllProtocolTables();
    for (const TableInfo *t :
         ProtocolTableRegistry::instance().tables())
        for (std::size_t i = 0; i < t->rows.size(); ++i)
            EXPECT_EQ(t->rows[i].id, i) << t->scheme;
}

/**
 * The hardware subset every DirNNB variant shares (paper Table 3): all
 * five schemes must serve the same request/ack skeleton, whatever they
 * bolt on top.
 */
TEST(ProtocolTableStructure, SchemesAgreeOnSharedHardwareSubset)
{
    registerAllProtocolTables();
    for (ProtocolKind kind :
         {ProtocolKind::fullMap, ProtocolKind::limited,
          ProtocolKind::limitless, ProtocolKind::chained,
          ProtocolKind::privateOnly}) {
        const TableInfo &home = table(kind, TableSide::home);
        for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::ACKC})
            EXPECT_TRUE(home.declares(hRO, op)) << home.scheme;
        for (Opcode op : {Opcode::RREQ, Opcode::WREQ, Opcode::REPM})
            EXPECT_TRUE(home.declares(hRW, op)) << home.scheme;
        for (std::uint8_t st : {hRT, hWT})
            for (Opcode op : {Opcode::UPDATE, Opcode::REPM,
                              Opcode::ACKC})
                EXPECT_TRUE(home.declares(st, op)) << home.scheme;

        const TableInfo &cache = table(kind, TableSide::cache);
        for (Opcode op : {Opcode::RDATA, Opcode::WDATA, Opcode::INV,
                          Opcode::BUSY})
            EXPECT_TRUE(cache.declares(cI, op)) << cache.scheme;
        for (Opcode op : {Opcode::WDATA, Opcode::INV, Opcode::BUSY})
            EXPECT_TRUE(cache.declares(cRO, op)) << cache.scheme;
        EXPECT_TRUE(cache.declares(cRW, Opcode::INV)) << cache.scheme;
    }
}

TEST(ProtocolTableStructure, RegistryHoldsAllTenTables)
{
    registerAllProtocolTables();
    const auto &tables = ProtocolTableRegistry::instance().tables();
    EXPECT_EQ(tables.size(), 10u);
    for (ProtocolKind kind :
         {ProtocolKind::fullMap, ProtocolKind::limited,
          ProtocolKind::limitless, ProtocolKind::chained,
          ProtocolKind::privateOnly})
        for (TableSide side : {TableSide::home, TableSide::cache})
            EXPECT_NE(ProtocolTableRegistry::instance().find(kind, side),
                      nullptr);
}

} // namespace
} // namespace limitless
