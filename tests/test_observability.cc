/**
 * @file
 * Flight-recorder subsystem tests: JSON helpers, the Chrome trace_event
 * stream, the remote-miss phase decomposition (phases must sum exactly
 * to the end-to-end latency and match the cache's own accumulator), the
 * postmortem ring dump on invariant violations, machine stats-JSON
 * export, and the Welford variance machinery in Accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/cli.hh"
#include "harness/experiment.hh"
#include "machine/coherence_monitor.hh"
#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/latency_tracker.hh"
#include "workload/weather.hh"

namespace limitless
{
namespace
{

// ------------------------------------------------------- JSON helpers

TEST(Json, EscapeQuotesBackslashesAndControls)
{
    std::ostringstream os;
    jsonEscape(os, "a\"b\\c\nd\x01");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Json, ValidateAcceptsValidDocuments)
{
    for (const char *doc :
         {"{}", "[]", "[1,2,3]", "-1.5e+3", "true", "null",
          "{\"a\":{\"b\":[1,{\"c\":\"x\\n\"}]},\"d\":0.25}",
          "  {\"k\": \"v\"}  "}) {
        std::string err;
        EXPECT_TRUE(jsonValidate(doc, &err)) << doc << ": " << err;
    }
}

TEST(Json, ValidateRejectsInvalidDocuments)
{
    for (const char *doc :
         {"{", "[1,]", "{\"a\":}", "01", "\"unterminated", "{} {}",
          "{\"a\" 1}", "nul", ""}) {
        EXPECT_FALSE(jsonValidate(doc)) << doc;
    }
}

// ----------------------------------------------- latency tracker unit

TEST(LatencyTracker, PhasesSumToTotalOnScriptedStamps)
{
    LatencyTracker lt;
    lt.onInject(0, 1, 0x40, false);
    lt.onHomeArrival(10, 1, 0x40);
    lt.onReplySent(15, 1, 0x40);
    lt.onComplete(25, 1, 0x40);

    const PhaseBreakdown p = lt.snapshot();
    EXPECT_EQ(p.completed, 1u);
    EXPECT_DOUBLE_EQ(p.reqNet, 10.0);
    EXPECT_DOUBLE_EQ(p.home, 5.0);
    EXPECT_DOUBLE_EQ(p.replyNet, 10.0);
    EXPECT_DOUBLE_EQ(p.trap, 0.0);
    EXPECT_DOUBLE_EQ(p.inv, 0.0);
    EXPECT_DOUBLE_EQ(p.total, 25.0);
    EXPECT_DOUBLE_EQ(p.sum(), p.total);
}

TEST(LatencyTracker, OverlappingWindowsStillSumExactly)
{
    // Trap charge larger than the home window: the deficit fold must
    // bleed phases rather than report a negative residual.
    LatencyTracker lt;
    lt.onInject(0, 2, 0x80, true);
    lt.onHomeArrival(10, 2, 0x80);
    lt.onTrap(2, 0x80, 50);
    lt.onReplySent(15, 2, 0x80);
    lt.onComplete(25, 2, 0x80);

    const PhaseBreakdown p = lt.snapshot();
    EXPECT_EQ(p.completed, 1u);
    EXPECT_GE(p.reqNet, 0.0);
    EXPECT_GE(p.home, 0.0);
    EXPECT_GE(p.trap, 0.0);
    EXPECT_GE(p.inv, 0.0);
    EXPECT_GE(p.replyNet, 0.0);
    EXPECT_DOUBLE_EQ(p.total, 25.0);
    EXPECT_NEAR(p.sum(), p.total, 1e-9);
}

// ------------------------------------- end-to-end phase decomposition

MachineConfig
small(ProtocolParams proto)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.protocol = proto;
    cfg.seed = 7;
    return cfg;
}

/** Two nodes read then one writes a line homed on a third node, so the
 *  run exercises request, home service, fan-out, and reply phases. */
void
runSharingScript(Machine &m)
{
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> {
        co_await t.read(a);
        co_await t.write(a, 1);
        co_await t.read(a);
    });
    m.spawnOn(1, [a](ThreadApi &t) -> Task<> {
        co_await t.read(a);
        co_await t.read(a);
    });
    m.spawnOn(3, [a](ThreadApi &t) -> Task<> { co_await t.read(a); });
    ASSERT_TRUE(m.run().completed);
}

TEST(PhaseDecomposition, PhasesMatchMeasuredRemoteLatency)
{
    FlightRecorder::instance().latency().reset();
    Machine m(small(protocols::fullMap()));
    runSharingScript(m);

    const PhaseBreakdown p =
        FlightRecorder::instance().latency().snapshot();
    ASSERT_GT(p.completed, 0u);
    EXPECT_NEAR(p.sum(), p.total, 1e-6);

    // Every remote miss in this script is a plain RREQ/WREQ, so the
    // tracker's population is exactly the cache's remote_latency one
    // and the mean end-to-end latencies must agree.
    const auto *acc = static_cast<const Accumulator *>(
        m.node(0).statSet("cache")->find("remote_latency"));
    ASSERT_NE(acc, nullptr);
    std::uint64_t remote_count = 0;
    double remote_sum = 0.0;
    for (unsigned i = 0; i < m.numNodes(); ++i) {
        const auto *a = static_cast<const Accumulator *>(
            m.node(i).statSet("cache")->find("remote_latency"));
        remote_count += a->count();
        remote_sum += a->sum();
    }
    ASSERT_EQ(remote_count, p.completed);
    EXPECT_NEAR(remote_sum / static_cast<double>(remote_count), p.total,
                1e-6);
}

TEST(PhaseDecomposition, LimitlessTrapPhaseIsCharged)
{
    FlightRecorder::instance().latency().reset();
    // One pointer forces an overflow trap once the second and third
    // sharers arrive.
    Machine m(small(protocols::limitlessStall(1, 50)));
    runSharingScript(m);

    const PhaseBreakdown p =
        FlightRecorder::instance().latency().snapshot();
    ASSERT_GT(p.completed, 0u);
    EXPECT_GT(p.trap, 0.0);
    EXPECT_NEAR(p.sum(), p.total, 1e-6);
}

// -------------------------------------------------- trace round trip

TEST(TraceStream, EmitsValidTraceEventJson)
{
    const std::string path = "trace_roundtrip_test.json";
    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    ASSERT_TRUE(fr.traceOpen(path));
    {
        Machine m(small(protocols::limitlessStall(1, 50)));
        runSharingScript(m);
    }
    fr.traceClose();

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    // The script must have produced network, cache, and trap events.
    EXPECT_NE(text.find("\"cat\":\"net\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"miss_done\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"ptr_overflow\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceStream, LineFilterRestrictsStream)
{
    const std::string path = "trace_filter_test.json";
    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    ASSERT_TRUE(fr.traceOpen(path));
    fr.setLineFilter({0xdeadbeef000ull}); // matches nothing
    {
        Machine m(small(protocols::fullMap()));
        runSharingScript(m);
    }
    fr.traceClose();
    fr.setLineFilter({});

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    // Nothing matched the filter, so the array holds no events.
    EXPECT_EQ(text.find("\"name\""), std::string::npos);
    std::remove(path.c_str());
}

// ------------------------------------------- postmortem on violation

TEST(PostmortemRing, ViolationDumpsEventHistoryForLine)
{
    Machine m(small(protocols::fullMap()));
    const Addr a = m.addressMap().addrOnNode(2, 0);
    m.spawnOn(0, [a](ThreadApi &t) -> Task<> { co_await t.read(a); });
    m.spawnOn(1, [a](ThreadApi &t) -> Task<> { co_await t.read(a); });
    ASSERT_TRUE(m.run().completed);

    const Addr line = m.addressMap().lineAddr(a);
    m.node(0).cache().array().lookup(line)->state =
        CacheState::readWrite;
    m.node(1).cache().array().lookup(line)->state =
        CacheState::readWrite;
    // The dump header carries the trigger tick and reason (satellite
    // fix: correlating a panic dump with telemetry windows needs both).
    EXPECT_DEATH(CoherenceMonitor(m).checkGlobalInvariants(),
                 "postmortem @[0-9]+ \\(coherence violation\\): "
                 "last .* protocol events for line");
}

// -------------------------------------------------- stats JSON export

TEST(StatsJson, MachineExportIsValidJson)
{
    FlightRecorder::instance().latency().reset();
    Machine m(small(protocols::limitlessStall(1, 50)));
    runSharingScript(m);

    std::ostringstream os;
    m.dumpStatsJson(os, 12345);
    const std::string text = os.str();
    std::string err;
    ASSERT_TRUE(jsonValidate(text, &err)) << err;
    EXPECT_NE(text.find("\"schema\": \"limitless-stats-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"phases\""), std::string::npos);
    EXPECT_NE(text.find("\"aggregate\""), std::string::npos);
    EXPECT_NE(text.find("\"network\""), std::string::npos);
    EXPECT_NE(text.find("\"cycles\": 12345"), std::string::npos);
}

// -------------------------------------------------- Welford variance

TEST(WelfordAccumulator, VarianceAndStddev)
{
    Accumulator acc("t", "test");
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        acc.sample(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
    EXPECT_NEAR(acc.variance(), 2.0, 1e-12);
    EXPECT_NEAR(acc.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(WelfordAccumulator, MergeMatchesDirectAccumulation)
{
    Accumulator a("a", ""), b("b", ""), direct("d", "");
    for (double v : {1.0, 10.0, 2.5}) {
        a.sample(v);
        direct.sample(v);
    }
    for (double v : {100.0, -3.0}) {
        b.sample(v);
        direct.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), direct.count());
    EXPECT_NEAR(a.mean(), direct.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), direct.variance(), 1e-9);
    EXPECT_NEAR(a.minimum(), direct.minimum(), 1e-12);
    EXPECT_NEAR(a.maximum(), direct.maximum(), 1e-12);
}

TEST(WelfordAccumulator, MergeIntoEmptyCopiesSamplesNotIdentity)
{
    Accumulator empty("kept-name", "kept-desc"), other("other", "");
    other.sample(4.0);
    other.sample(8.0);
    empty.merge(other);
    EXPECT_EQ(empty.name(), "kept-name");
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 6.0);
}

TEST(WelfordAccumulator, JsonIncludesStddev)
{
    Accumulator acc("t", "test");
    acc.sample(1.0);
    acc.sample(3.0);
    std::ostringstream os;
    acc.json(os);
    std::string err;
    EXPECT_TRUE(jsonValidate(os.str(), &err)) << err;
    EXPECT_NE(os.str().find("\"stddev\":1"), std::string::npos);
}

// ----------------------------------------------------- CLI =-values

TEST(CliOptions, AcceptsEqualsSeparatedValues)
{
    const char *argv[] = {"prog", "--nodes=16", "--trace-out=t.json",
                          "--dump-stats"};
    const auto opts = CliOptions::parse(
        4, const_cast<char **>(argv),
        {{"nodes", true}, {"trace-out", true}, {"dump-stats", false}});
    EXPECT_EQ(opts.num("nodes", 0), 16u);
    EXPECT_EQ(opts.str("trace-out"), "t.json");
    EXPECT_TRUE(opts.has("dump-stats"));
}

} // namespace
} // namespace limitless
