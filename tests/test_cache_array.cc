/** @file Unit tests for the direct-mapped cache array. */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace limitless
{
namespace
{

TEST(CacheArray, GeometryFromSize)
{
    AddressMap amap(16, 16);
    CacheArray cache(64 * 1024, amap);
    EXPECT_EQ(cache.numSets(), 4096u);
}

TEST(CacheArray, LookupMissesOnEmptyCache)
{
    AddressMap amap(16, 16);
    CacheArray cache(1024, amap);
    EXPECT_EQ(cache.lookup(0x40), nullptr);
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(CacheArray, InstallThenLookup)
{
    AddressMap amap(16, 16);
    CacheArray cache(1024, amap);
    const std::uint64_t words[2] = {0xAA, 0xBB};
    cache.install(0x40, CacheState::readOnly, words, 2);
    CacheLine *cl = cache.lookup(0x40);
    ASSERT_NE(cl, nullptr);
    EXPECT_EQ(cl->state, CacheState::readOnly);
    EXPECT_EQ(cl->words[0], 0xAAu);
    EXPECT_EQ(cl->words[1], 0xBBu);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST(CacheArray, DirectMappedConflictEvicts)
{
    AddressMap amap(16, 16);
    CacheArray cache(1024, amap); // 64 sets
    const std::uint64_t words[2] = {1, 2};
    const Addr a = 0x40;
    const Addr b = a + 64 * 16; // same set, different tag
    ASSERT_EQ(cache.indexOf(a), cache.indexOf(b));
    cache.install(a, CacheState::readOnly, words, 2);
    cache.install(b, CacheState::readWrite, words, 2);
    EXPECT_EQ(cache.lookup(a), nullptr);
    ASSERT_NE(cache.lookup(b), nullptr);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST(CacheArray, DistinctSetsCoexist)
{
    AddressMap amap(16, 16);
    CacheArray cache(1024, amap);
    const std::uint64_t words[2] = {1, 2};
    for (Addr a = 0; a < 64 * 16; a += 16)
        cache.install(a, CacheState::readOnly, words, 2);
    EXPECT_EQ(cache.validLines(), 64u);
}

TEST(CacheArray, ForEachValidVisitsExactlyValidLines)
{
    AddressMap amap(16, 16);
    CacheArray cache(1024, amap);
    const std::uint64_t words[2] = {1, 2};
    cache.install(0x40, CacheState::readOnly, words, 2);
    cache.install(0x80, CacheState::readWrite, words, 2);
    unsigned count = 0;
    cache.forEachValid([&](const CacheLine &cl) {
        ++count;
        EXPECT_TRUE(cl.valid());
    });
    EXPECT_EQ(count, 2u);
}

TEST(CacheArray, StateNamesForDebugging)
{
    EXPECT_STREQ(cacheStateName(CacheState::invalid), "Invalid");
    EXPECT_STREQ(cacheStateName(CacheState::readOnly), "Read-Only");
    EXPECT_STREQ(cacheStateName(CacheState::readWrite), "Read-Write");
}

} // namespace
} // namespace limitless
