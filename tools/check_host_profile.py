#!/usr/bin/env python3
"""Validate the host-profiler and parallel-kernel exports.

Invariants the simulator promises (docs/OBSERVABILITY.md §9):

  * the folded file is non-empty; every line is "path self_ns" where
    path is semicolon-separated non-empty frames; lines are sorted and
    unique; every multi-frame path's parent path is present too (the
    profiler emits every interior node of the scope tree);
  * in the stats-JSON host_profile block: count >= 1, self <= wall,
    and self_ns is exactly wall minus the children's wall (clamped at
    zero) — the parent/child tiling invariant;
  * with --expect-pk: host.parallel_kernel exists, its partition list
    matches sim_threads, windows >= coupled_windows, the serial tail
    is within the run time, and per-partition event counts are
    positive; the telemetry CSV (when given) carries the pk.* columns
    with per-partition series for every partition.

Usage: check_host_profile.py --folded PROF.folded [--stats STATS.json]
                             [--telemetry TELEM.csv] [--expect-pk]
Exit status 0 when every invariant holds, 1 otherwise.
"""

import json
import re
import sys

FOLDED_RE = re.compile(r"^([^ ;][^ ]*) (\d+)$")


def fail(msg):
    print(f"check_host_profile: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_folded(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path}: empty folded profile")
    paths = []
    for i, line in enumerate(lines, 1):
        m = FOLDED_RE.match(line)
        if not m:
            fail(f"{path}:{i}: not a 'stack self_ns' line: {line!r}")
        stack = m.group(1)
        frames = stack.split(";")
        if any(not f for f in frames):
            fail(f"{path}:{i}: empty frame in {stack!r}")
        paths.append(stack)
    if paths != sorted(paths):
        fail(f"{path}: stacks not sorted")
    if len(set(paths)) != len(paths):
        fail(f"{path}: duplicate stacks")
    present = set(paths)
    for stack in paths:
        frames = stack.split(";")
        if len(frames) > 1 and ";".join(frames[:-1]) not in present:
            fail(f"{path}: interior node missing for {stack!r}")
    return paths


def check_profile_block(stats_path, stats):
    host = stats.get("host")
    if host is None:
        fail(f"{stats_path}: no host block")
    prof = host.get("host_profile")
    if prof is None:
        fail(f"{stats_path}: no host.host_profile block")
    scopes = prof.get("scopes")
    if not scopes:
        fail(f"{stats_path}: host_profile has no scopes")
    by_path = {}
    for s in scopes:
        if s["count"] < 1:
            fail(f"{stats_path}: scope {s['path']}: count < 1")
        if s["self_ns"] > s["wall_ns"]:
            fail(f"{stats_path}: scope {s['path']}: self > inclusive")
        if s["path"] in by_path:
            fail(f"{stats_path}: duplicate scope {s['path']}")
        by_path[s["path"]] = s
    # Parent/child tiling: self is exactly wall minus children (>= 0).
    kids_wall = {}
    for path in by_path:
        frames = path.split(";")
        if len(frames) > 1:
            parent = ";".join(frames[:-1])
            if parent not in by_path:
                fail(f"{stats_path}: scope {path} has no parent scope")
            kids_wall[parent] = kids_wall.get(parent, 0) + \
                by_path[path]["wall_ns"]
    for path, s in by_path.items():
        want = max(s["wall_ns"] - kids_wall.get(path, 0), 0)
        if s["self_ns"] != want:
            fail(f"{stats_path}: scope {path}: self_ns {s['self_ns']} "
                 f"!= wall - children = {want}")
    return by_path


def check_pk_block(stats_path, stats):
    pk = stats.get("host", {}).get("parallel_kernel")
    if pk is None:
        fail(f"{stats_path}: no host.parallel_kernel block")
    parts = pk["partitions"]
    if len(parts) != pk["sim_threads"]:
        fail(f"{stats_path}: {len(parts)} partitions for "
             f"sim_threads {pk['sim_threads']}")
    if pk["coupled_windows"] > pk["windows"]:
        fail(f"{stats_path}: coupled_windows > windows")
    if pk["lookahead"] < 1:
        fail(f"{stats_path}: lookahead < 1")
    if pk["serial_tail_seconds"] > pk["run_seconds"]:
        fail(f"{stats_path}: serial tail exceeds run time")
    for p in parts:
        if p["events"] <= 0:
            fail(f"{stats_path}: partition {p['id']}: no events")
        if p["barrier_wait_seconds"] < 0:
            fail(f"{stats_path}: partition {p['id']}: negative wait")
    return len(parts)


def check_pk_telemetry(telem_path, nparts):
    try:
        with open(telem_path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {telem_path}: {e}")
    header = next((l for l in lines if l.startswith("tick,")), None)
    if header is None:
        fail(f"{telem_path}: no CSV header")
    cols = header.split(",")
    for want in ("pk.windows", "pk.coupled_windows", "pk.serial_tail_s"):
        if want not in cols:
            fail(f"{telem_path}: missing column {want}")
    for p in range(nparts):
        for want in (f"pk.part_events.{p}", f"pk.barrier_wait_s.{p}"):
            if want not in cols:
                fail(f"{telem_path}: missing column {want}")
    rows = [l.split(",") for l in lines
            if l and not l.startswith(("#", "tick,"))]
    if not rows:
        fail(f"{telem_path}: no data rows")
    for r in rows:
        if len(r) != len(cols):
            fail(f"{telem_path}: ragged row ({len(r)} fields, "
                 f"{len(cols)} columns)")
    ev_cols = [cols.index(f"pk.part_events.{p}") for p in range(nparts)]
    total = sum(float(r[c]) for r in rows for c in ev_cols)
    if total <= 0:
        fail(f"{telem_path}: pk.part_events columns sum to zero")


def main(argv):
    folded = stats_path = telem_path = None
    expect_pk = False
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--folded":
            folded = args.pop(0)
        elif arg == "--stats":
            stats_path = args.pop(0)
        elif arg == "--telemetry":
            telem_path = args.pop(0)
        elif arg == "--expect-pk":
            expect_pk = True
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            fail(f"unknown argument {arg!r}")
    if not folded:
        fail("--folded is required")

    stacks = check_folded(folded)
    summary = [f"{len(stacks)} folded stacks"]

    if stats_path:
        try:
            with open(stats_path) as f:
                stats = json.load(f)
        except (OSError, ValueError) as e:
            fail(f"cannot read {stats_path}: {e}")
        scopes = check_profile_block(stats_path, stats)
        summary.append(f"{len(scopes)} profile scopes")
        if expect_pk:
            nparts = check_pk_block(stats_path, stats)
            summary.append(f"{nparts} partitions")
            if telem_path:
                check_pk_telemetry(telem_path, nparts)
                summary.append("pk telemetry columns")
    print(f"check_host_profile: OK: {', '.join(summary)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
