/**
 * @file
 * limitless-sim: the command-line front end (the role ASIM's driver
 * plays in paper Figure 6). Runs one (workload, protocol, machine)
 * configuration and reports execution time and the headline statistics;
 * can capture the run as a post-mortem trace or replay a previously
 * captured trace.
 *
 * Examples:
 *   limitless-sim --workload weather --protocol dir4nb --nodes 64
 *   limitless-sim --workload weather --protocol limitless4 --ts 100
 *   limitless-sim --workload multigrid --protocol full-map \
 *                 --capture-trace mg.trace
 *   limitless-sim --replay-trace mg.trace --protocol limitless4
 *   limitless-sim --workload random-stress --protocol chained \
 *                 --memory-model weak --dump-stats
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <unordered_set>

#include "check/trace_io.hh"
#include "harness/cli.hh"
#include "machine/coherence_monitor.hh"
#include "mem/home/hier_home.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "proto/protocol_table.hh"
#include "sim/log.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_replay.hh"

using namespace limitless;

namespace
{

void
usage()
{
    std::cout <<
        "limitless-sim — LimitLESS directory coherence simulator\n\n"
        "  --workload <name>      one of: ";
    for (const auto &name : workloadNames())
        std::cout << name << " ";
    std::cout <<
        "\n"
        "  --protocol <name>      full-map | dir<i>nb | limitless<i> | "
        "chained | private-only\n"
        "  --nodes <n>            machine size (default 64)\n"
        "  --iterations <n>       workload main-loop length (default: "
        "workload's own)\n"
        "  --ts <cycles>          LimitLESS software latency (default "
        "50)\n"
        "  --emulate              run the full LimitLESS trap handler "
        "instead of the\n"
        "                         paper's stall approximation\n"
        "  --no-trap-on-write     disable the Trap-On-Write "
        "optimization (D1)\n"
        "  --no-local-bit         disable the Local Bit (D3)\n"
        "  --network <mesh|ideal> fabric model (default mesh)\n"
        "  --sim-threads <n>      host threads for the conservative\n"
        "                         window-parallel kernel (default 1);\n"
        "                         results are bit-identical for any n\n"
        "  --topology <name>      mesh | torus | express[:stride] "
        "(default mesh)\n"
        "  --cluster <n>          nodes per chip: cluster-interleaved "
        "home mapping\n"
        "  --hier                 two-level directories: per-chip homes "
        "under the\n"
        "                         inter-chip directory (requires "
        "--cluster >= 2)\n"
        "  --memory-model <sc|weak>\n"
        "  --seed <n>             RNG seed (default 1)\n"
        "  --capture-trace <file> record the run as a post-mortem trace\n"
        "  --replay-trace <file>  replay a captured trace (ignores "
        "--workload)\n"
        "  --replay-check <file>  step through a limitless-check "
        "counterexample trace\n"
        "                         (exits 0 when the recorded violation "
        "reproduces)\n"
        "  --dump-stats           print every per-node statistic\n"
        "  --trace-out <file>     stream protocol events as Chrome "
        "trace_event JSON\n"
        "                         (open at ui.perfetto.dev)\n"
        "  --trace-lines <a,b,..> restrict the streamed trace to these "
        "line addresses\n"
        "  --stats-json <file>    write the machine's stats as JSON\n"
        "  --txn-trace-out <file> per-transaction causal traces: span "
        "trees, critical\n"
        "                         paths, per-phase p50/p95/p99 "
        "(limitless-txn-v1 JSON)\n"
        "  --txn-top <k>          slowest transactions kept in full "
        "(default 16)\n"
        "  --metrics-interval <n> sample telemetry every n cycles "
        "(0 = off)\n"
        "  --metrics-out <file>   telemetry CSV path (default "
        "telemetry.csv;\n"
        "                         a .json sidecar is written alongside)\n"
        "  --prof-out <file>      profile the simulator itself: "
        "collapsed-stack\n"
        "                         flamegraph lines (scope self-ns), plus "
        "a\n"
        "                         host_profile stats-JSON block and "
        "cat:host\n"
        "                         slices in --trace-out\n"
        "  --dump-protocol-table  print every scheme's transition tables "
        "and exit\n"
        "  --dump-hier-table      print the chip-side (two-level) "
        "transition tables\n"
        "                         and exit\n"
        "  --log <tag>            enable debug logging (mem, cache, net, "
        "handler, all)\n"
        "  --help\n";
}

/**
 * Chrome-slice sink for PROF scopes: "cat":"host" complete events on
 * pid 1 with microsecond timestamps since profiler enable, merged into
 * the same --trace-out stream as the simulated-machine events. Only
 * reachable in serial runs (--trace-out is rejected with
 * --sim-threads > 1), so no locking; capped so a long run cannot
 * balloon the trace file.
 */
void
hostSliceSink(const char *name, std::uint64_t startNs, std::uint64_t durNs)
{
    static std::uint64_t emitted = 0;
    if (emitted >= 200'000)
        return;
    std::ostream *os = FlightRecorder::instance().traceRawEvent(0);
    if (!os)
        return;
    ++emitted;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"cat\": \"host\", \"ph\": \"X\", "
                  "\"pid\": 1, \"tid\": 0, \"ts\": %llu.%03llu, "
                  "\"dur\": %llu.%03llu}",
                  name,
                  static_cast<unsigned long long>(startNs / 1000),
                  static_cast<unsigned long long>(startNs % 1000),
                  static_cast<unsigned long long>(durNs / 1000),
                  static_cast<unsigned long long>(durNs % 1000));
    *os << buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::map<std::string, bool> known = {
        {"workload", true},      {"protocol", true},
        {"nodes", true},         {"iterations", true},
        {"ts", true},            {"emulate", false},
        {"no-trap-on-write", false}, {"no-local-bit", false},
        {"network", true},       {"memory-model", true},
        {"seed", true},          {"capture-trace", true},
        {"replay-trace", true},  {"replay-check", true},
        {"dump-stats", false},
        {"log", true},           {"help", false},
        {"trace-out", true},     {"trace-lines", true},
        {"stats-json", true},    {"dump-protocol-table", false},
        {"metrics-interval", true}, {"metrics-out", true},
        {"txn-trace-out", true}, {"txn-top", true},
        {"topology", true},      {"cluster", true},
        {"hier", false},         {"dump-hier-table", false},
        {"sim-threads", true},   {"prof-out", true},
    };
    const CliOptions opts = CliOptions::parse(argc, argv, known);
    if (opts.has("help") || argc == 1) {
        usage();
        return 0;
    }
    if (opts.has("dump-protocol-table")) {
        registerAllProtocolTables();
        ProtocolTableRegistry::instance().dump(std::cout);
        return 0;
    }
    if (opts.has("dump-hier-table")) {
        // Chip-side tables only: the flat dump's golden file stays
        // untouched by the two-level mode.
        registerAllHierTables();
        ProtocolTableRegistry::instance().dump(std::cout);
        return 0;
    }
    if (opts.has("log"))
        Log::enable(opts.str("log"));
    if (opts.has("replay-check")) {
        CheckTrace trace;
        std::string error;
        if (!loadTrace(opts.str("replay-check"), trace, &error))
            fatal("--replay-check: %s", error.c_str());
        const bool reproduced = replayTrace(trace, &std::cout);
        std::cout << (reproduced ? "REPRODUCED" : "NOT REPRODUCED")
                  << ": " << violationKindName(trace.violation) << " in "
                  << trace.config.name() << "\n";
        return reproduced ? 0 : 1;
    }

    if (opts.has("prof-out"))
        HostProfiler::enable();

    MachineConfig cfg;
    cfg.numNodes = static_cast<unsigned>(opts.num("nodes", 64));
    cfg.seed = opts.num("seed", 1);
    cfg.protocol = parseProtocol(opts.str("protocol", "limitless4"));
    if (opts.has("ts"))
        cfg.protocol.softwareLatency = opts.num("ts", 50);
    if (opts.has("emulate"))
        cfg.protocol.limitlessMode = LimitlessMode::fullEmulation;
    if (opts.has("no-trap-on-write"))
        cfg.protocol.trapOnWrite = false;
    if (opts.has("no-local-bit"))
        cfg.protocol.localBit = false;
    if (opts.str("network", "mesh") == "ideal")
        cfg.network = NetworkKind::ideal;
    if (opts.has("topology") &&
        !parseTopologyKind(opts.str("topology"), cfg.topology))
        fatal("--topology: unknown topology '%s'",
              opts.str("topology").c_str());
    if (opts.has("cluster")) {
        cfg.topology.clusterSize =
            static_cast<unsigned>(opts.num("cluster", 1));
        if (!cfg.topology.clusterSize ||
            cfg.numNodes % cfg.topology.clusterSize)
            fatal("--cluster %u must divide --nodes %u evenly",
                  cfg.topology.clusterSize, cfg.numNodes);
    }
    if (opts.has("hier")) {
        if (cfg.topology.clusterSize < 2)
            fatal("--hier needs chips of at least 2 nodes: pass "
                  "--cluster <n> with n >= 2 (got cluster size %u)",
                  cfg.topology.clusterSize);
        cfg.hier = true;
    }
    if (opts.str("memory-model", "sc") == "weak")
        cfg.proc.memoryModel = MemoryModel::weak;
    cfg.metricsInterval =
        static_cast<Tick>(opts.num("metrics-interval", 0));
    cfg.telemetryOut = opts.str("metrics-out", "telemetry.csv");
    cfg.txnTraceOut = opts.str("txn-trace-out", "");
    cfg.txnTopK = static_cast<std::size_t>(opts.num("txn-top", 16));
    cfg.simThreads = static_cast<unsigned>(opts.num("sim-threads", 1));
    // Parallel runs always export the pk.* utilization columns (and the
    // parallel_kernel stats block): anyone driving --sim-threads from
    // this CLI is exactly the audience for the imbalance telemetry.
    cfg.pkTelemetry = cfg.simThreads > 1;
    if (cfg.simThreads > 1) {
        // The parallel kernel reproduces stats, telemetry and figures
        // bit-identically, but the streaming observers assume a single
        // host thread; reject the combinations up front.
        if (cfg.network == NetworkKind::ideal)
            fatal("--sim-threads needs the mesh network: the ideal "
                  "network's same-tick delivery leaves no "
                  "cross-partition lookahead");
        if (opts.has("trace-out"))
            fatal("--sim-threads does not support --trace-out "
                  "(the event trace streams from one thread)");
        if (!cfg.txnTraceOut.empty())
            fatal("--sim-threads does not support --txn-trace-out");
        if (opts.has("capture-trace"))
            fatal("--sim-threads does not support --capture-trace");
        if (opts.has("log"))
            fatal("--sim-threads does not support --log "
                  "(debug logging interleaves across threads)");
    }

    FlightRecorder &fr = FlightRecorder::instance();
    fr.latency().reset();
    if (opts.has("trace-out") && !fr.traceOpen(opts.str("trace-out")))
        fatal("cannot write trace '%s'", opts.str("trace-out").c_str());
    if (opts.has("trace-lines")) {
        std::unordered_set<Addr> lines;
        const std::string list = opts.str("trace-lines");
        if (list.empty())
            fatal("--trace-lines: expected a comma-separated address list");
        std::size_t pos = 0;
        while (pos < list.size()) {
            std::size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            const std::string tok = list.substr(pos, comma - pos);
            try {
                lines.insert(std::stoull(tok, nullptr, 0));
            } catch (...) {
                fatal("--trace-lines: '%s' is not an address",
                      tok.c_str());
            }
            pos = comma + 1;
        }
        fr.setLineFilter(std::move(lines));
    }
    if (opts.has("prof-out") && opts.has("trace-out"))
        HostProfiler::setSliceSink(&hostSliceSink);

    Machine machine(cfg);

    std::unique_ptr<Workload> workload;
    if (opts.has("replay-trace")) {
        std::ifstream in(opts.str("replay-trace"));
        if (!in)
            fatal("cannot open trace '%s'",
                  opts.str("replay-trace").c_str());
        workload = std::make_unique<TraceReplay>(TraceLog::load(in));
    } else {
        workload = makeWorkloadFactory(
            opts.str("workload", "weather"),
            static_cast<unsigned>(opts.num("iterations", 0)),
            opts.has("seed") ? cfg.seed : 0)();
    }
    workload->install(machine);

    std::unique_ptr<TraceCapture> capture;
    if (opts.has("capture-trace"))
        capture = std::make_unique<TraceCapture>(machine);

    const RunResult run = machine.run();
    if (!run.completed)
        fatal("run did not complete");
    workload->verify(machine);
    CoherenceMonitor(machine).checkQuiescent();
    fr.traceClose();

    if (capture) {
        std::ofstream out(opts.str("capture-trace"));
        if (!out)
            fatal("cannot write trace '%s'",
                  opts.str("capture-trace").c_str());
        capture->log().save(out);
        std::cout << "trace: " << capture->log().totalOps()
                  << " records -> " << opts.str("capture-trace") << "\n";
    }

    std::cout << "workload:          " << workload->name() << "\n"
              << "protocol:          " << cfg.protocol.name() << "\n"
              << "nodes:             " << cfg.numNodes << " ("
              << machine.topology().width() << "x"
              << machine.topology().height() << " "
              << topologyKindName(machine.topology().kind()) << ")\n"
              << "seed:              " << cfg.seed << "\n"
              << "execution time:    " << run.cycles << " cycles ("
              << run.cycles / 1e6 << " Mcycles)\n"
              << "simulator events:  " << run.events << "\n"
              << "host wall time:    " << run.hostSeconds << " s ("
              << run.eventsPerSecond() / 1e6 << " Mevents/s)\n"
              << "remote latency:    "
              << machine.meanAccumulator("cache", "remote_latency")
              << " cycles mean\n"
              << "cache hits/misses: "
              << machine.sumCounter("cache", "hits") << " / "
              << machine.sumCounter("cache", "misses") << "\n"
              << "invalidations:     "
              << machine.sumCounter("mem", "invs_sent") << "\n"
              << "pointer evictions: "
              << machine.sumCounter("mem", "evictions") << "\n"
              << "LimitLESS traps:   "
              << machine.sumCounter("mem", "read_traps") << " read, "
              << machine.sumCounter("mem", "write_traps")
              << " write (m = " << machine.overflowFraction() << ")\n";
    if (machine.addressMap().hier()) {
        const std::uint64_t creq = machine.sumCounter("chip", "rreq") +
                                   machine.sumCounter("chip", "wreq");
        const std::uint64_t ctraps =
            machine.sumCounter("chip", "read_traps") +
            machine.sumCounter("chip", "write_traps");
        std::cout << "chip level:        " << creq << " requests, "
                  << machine.sumCounter("chip", "local_grants")
                  << " local grants, "
                  << machine.sumCounter("chip", "parent_reqs")
                  << " to global home\n"
                  << "chip traps:        "
                  << machine.sumCounter("chip", "read_traps") << " read, "
                  << machine.sumCounter("chip", "write_traps")
                  << " write (chip m = "
                  << (creq ? static_cast<double>(ctraps) / creq : 0.0)
                  << ")\n";
    }

    const PhaseBreakdown phases = fr.latency().snapshot();
    if (phases.completed) {
        std::cout << "remote phases:     req_net " << phases.reqNet
                  << " + home " << phases.home << " + trap "
                  << phases.trap << " + inv " << phases.inv
                  << " + reply_net " << phases.replyNet << " = "
                  << phases.total << " cycles over " << phases.completed
                  << " misses\n";
        if (machine.addressMap().hier())
            std::cout << "  two-level split: chip_home "
                      << phases.chipHome << " + global_home "
                      << phases.globalHome << " (of home), "
                      << "inter_chip_inv " << phases.interChipInv
                      << " (of inv)\n";
    }

    if (opts.has("trace-out"))
        std::cout << "event trace:       " << opts.str("trace-out")
                  << "\n";
    if (!cfg.txnTraceOut.empty()) {
        const TxnTracer &txn = fr.txn();
        std::cout << "txn traces:        " << machine.writeTxnTrace()
                  << " (" << txn.completedCount() << " transactions, top "
                  << std::min<std::uint64_t>(txn.topK(),
                                             txn.completedCount())
                  << " kept, " << txn.openCount() << " unfinished)\n";
        const QuantileReservoir &t = txn.quantiles().total;
        if (t.count())
            std::cout << "txn total latency: p50 " << t.quantile(0.50)
                      << "  p95 " << t.quantile(0.95) << "  p99 "
                      << t.quantile(0.99) << " cycles"
                      << (t.exact() ? " (exact)" : " (sampled)") << "\n";
    }
    if (machine.telemetry()) {
        const std::string json = machine.writeTelemetry(cfg.telemetryOut);
        std::cout << "telemetry:         " << cfg.telemetryOut << " + "
                  << json << "\n";
    }
    if (opts.has("stats-json")) {
        std::ofstream out(opts.str("stats-json"));
        if (!out)
            fatal("cannot write stats '%s'",
                  opts.str("stats-json").c_str());
        machine.dumpStatsJson(out, run.cycles, &run);
        std::cout << "stats json:        " << opts.str("stats-json")
                  << "\n";
    }
    if (opts.has("prof-out")) {
        HostProfiler::setSliceSink(nullptr);
        std::ofstream out(opts.str("prof-out"));
        if (!out)
            fatal("cannot write profile '%s'",
                  opts.str("prof-out").c_str());
        HostProfiler::writeFolded(out);
        std::cout << "host profile:      " << opts.str("prof-out")
                  << " (collapsed stacks)\n";
    }

    if (opts.has("dump-stats"))
        machine.dumpStats(std::cout);
    return 0;
}
