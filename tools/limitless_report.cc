/**
 * @file
 * limitless-report: turn one run's telemetry (CSV + JSON sidecar,
 * written by --metrics-interval) and optional --stats-json into a
 * single self-contained HTML report — inline CSS/JS, no external
 * dependencies, openable from a CI artifact or a laptop.
 *
 * The report renders small-multiple time-series charts (one metric per
 * chart, grouped by subsystem prefix), the Figure-10-style worker-set
 * and trap-service log2 histograms, the remote-miss latency phase
 * breakdown as a stacked bar, and the mesh hotspot table.
 *
 * Examples:
 *   limitless-report --telemetry telemetry.csv
 *   limitless-report --telemetry TELEM_fig8_weather_limited_Dir4NB.csv \
 *                    --stats-json stats.json --out dir4nb.html
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "harness/cli.hh"
#include "obs/json.hh"
#include "obs/telemetry.hh"
#include "sim/log.hh"

using namespace limitless;

namespace
{

void
usage()
{
    std::cout <<
        "limitless-report — self-contained HTML report from telemetry\n\n"
        "  --telemetry <file.csv>  telemetry CSV from --metrics-interval "
        "(the .json\n"
        "                          sidecar is picked up automatically)\n"
        "  --stats-json <file>     stats JSON from --stats-json, for the "
        "latency\n"
        "                          phase breakdown (optional)\n"
        "  --txn <file.json>       transaction trace from --txn-trace-out "
        "(optional;\n"
        "                          adds the tail-latency table and the "
        "per-transaction\n"
        "                          waterfalls)\n"
        "                          at least one of --telemetry/--txn is "
        "required\n"
        "  --out <file>            output HTML (default report.html)\n"
        "  --title <text>          report title (default: derived from "
        "the CSV)\n"
        "  --help\n";
}

std::string
readFile(const std::string &path, bool *ok = nullptr)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (ok) {
            *ok = false;
            return "";
        }
        fatal("cannot read '%s'", path.c_str());
    }
    if (ok)
        *ok = true;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Reject inputs that are not what they claim before emitting a report
 *  that would render empty: wrong schema line, missing header, or a
 *  CSV with zero sample windows. */
void
validateCsv(const std::string &csv, const std::string &path)
{
    std::istringstream in(csv);
    std::string line;
    if (!std::getline(in, line) ||
        line != std::string("# schema: ") + Telemetry::csvSchema())
        fatal("%s: not a telemetry CSV (expected '# schema: %s')",
              path.c_str(), Telemetry::csvSchema());
    if (!std::getline(in, line) || line.compare(0, 5, "tick,") != 0)
        fatal("%s: missing 'tick,...' header row", path.c_str());
    if (!std::getline(in, line) || line.empty())
        fatal("%s: no sample rows (zero windows)", path.c_str());
}

// The page skeleton. Colors are the validated reference palette
// (docs/OBSERVABILITY.md records the validation): series slots 1-8
// light/dark, ink tokens, hairline grid. Dark mode is its own stepped
// set, switched by OS preference or the toggle (data-theme wins).
const char *kHead = R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
  --series-7: #9085e9; --series-8: #e66767;
}
* { box-sizing: border-box; }
body { margin: 0; }
.viz-root {
  background: var(--page); color: var(--ink-1); min-height: 100vh;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; padding: 24px;
}
header { display: flex; align-items: baseline; gap: 16px;
  flex-wrap: wrap; margin-bottom: 4px; }
h1 { font-size: 20px; margin: 0; }
h2 { font-size: 16px; margin: 28px 0 4px; }
h3 { font-size: 13px; font-weight: 600; color: var(--ink-2);
  margin: 16px 0 8px; }
.meta { color: var(--ink-2); font-size: 13px; }
#theme-toggle { margin-left: auto; font: inherit; font-size: 12px;
  color: var(--ink-2); background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 10px; cursor: pointer; }
.grid { display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(330px, 1fr)); }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 12px 6px; }
.card .name { font-size: 12px; color: var(--ink-2); margin: 0 0 4px; }
.card .desc { font-size: 11px; color: var(--ink-3); margin: 0 0 4px; }
svg { display: block; width: 100%; height: auto; }
svg text { font-family: inherit; }
.gridline { stroke: var(--grid); stroke-width: 1; }
.baseline { stroke: var(--axis); stroke-width: 1; }
.axis-label { fill: var(--ink-3); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.val-label { fill: var(--ink-3); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.series-line { fill: none; stroke-width: 2; stroke-linejoin: round;
  stroke-linecap: round; }
.crosshair { stroke: var(--axis); stroke-width: 1; }
.hoverdot { stroke: var(--surface-1); stroke-width: 2; }
.s1 { fill: var(--series-1); } .s2 { fill: var(--series-2); }
.s3 { fill: var(--series-3); } .s4 { fill: var(--series-4); }
.s5 { fill: var(--series-5); } .s6 { fill: var(--series-6); }
.st1 { stroke: var(--series-1); }
.legend { display: flex; flex-wrap: wrap; gap: 6px 18px;
  margin: 10px 0 4px; font-size: 12px; color: var(--ink-2); }
.legend .item { display: flex; align-items: center; gap: 6px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 2px;
  display: inline-block; }
.legend .val { color: var(--ink-1);
  font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; font-size: 13px; margin-top: 4px; }
th { text-align: right; font-weight: 600; color: var(--ink-3);
  padding: 4px 14px 4px 0; border-bottom: 1px solid var(--axis); }
td { text-align: right; padding: 4px 14px 4px 0;
  font-variant-numeric: tabular-nums;
  border-bottom: 1px solid var(--grid); }
.tooltip { position: fixed; pointer-events: none; z-index: 10;
  background: var(--surface-1); color: var(--ink-1);
  border: 1px solid var(--border); border-radius: 6px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  padding: 5px 9px; font-size: 12px;
  font-variant-numeric: tabular-nums; display: none; }
.tooltip .tt-name { color: var(--ink-2); }
footer { margin-top: 32px; color: var(--ink-3); font-size: 11px; }
.error { color: var(--ink-1); background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; padding: 16px; }
</style>
</head>
<body>
<div class="viz-root">
<header>
  <h1 id="title"></h1>
  <div class="meta" id="meta"></div>
  <button id="theme-toggle" type="button">dark</button>
</header>
<main id="report"></main>
<footer id="foot"></footer>
<div class="tooltip" id="tooltip"></div>
</div>
<script>
'use strict';
)html";

// The renderer. Mark/interaction conventions: one metric per chart (one
// axis, no dual scales), 2px lines, hairline grids, hover crosshair +
// tooltip everywhere, text in ink tokens only, legend + visible values
// for the multi-series stacked bar, table views for per-router and
// per-node detail.
const char *kScript = R"js(
function parseCsv(text) {
  const lines = text.split('\n').map(s => s.trim()).filter(s => s);
  const data = lines.filter(s => s[0] !== '#');
  if (!data.length) throw new Error('telemetry CSV is empty');
  const header = data[0].split(',');
  if (header[0] !== 'tick') throw new Error('telemetry CSV header must start with tick');
  const rows = data.slice(1).map(s => s.split(',').map(Number));
  return {header: header, rows: rows};
}

function fmt(v) {
  if (!isFinite(v)) return '–';
  const a = Math.abs(v);
  if (a >= 1e9) return (v / 1e9).toFixed(a >= 1e10 ? 0 : 1) + 'G';
  if (a >= 1e6) return (v / 1e6).toFixed(a >= 1e7 ? 0 : 1) + 'M';
  if (a >= 1e3) return (v / 1e3).toFixed(a >= 1e4 ? 0 : 1) + 'k';
  if (a === 0) return '0';
  if (a < 0.01) return v.toExponential(1);
  if (a < 1) return v.toFixed(3);
  return Number.isInteger(v) ? String(v) : v.toFixed(2);
}

function el(tag, cls, text) {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}

function svgEl(tag, attrs) {
  const e = document.createElementNS('http://www.w3.org/2000/svg', tag);
  for (const k in attrs) e.setAttribute(k, attrs[k]);
  return e;
}

const tooltip = document.getElementById('tooltip');
function showTip(ev, name, value) {
  tooltip.innerHTML = '';
  tooltip.appendChild(el('span', 'tt-name', name + ' '));
  tooltip.appendChild(el('strong', '', value));
  tooltip.style.display = 'block';
  const w = tooltip.offsetWidth, winW = window.innerWidth;
  let x = ev.clientX + 14;
  if (x + w > winW - 8) x = ev.clientX - w - 14;
  tooltip.style.left = x + 'px';
  tooltip.style.top = (ev.clientY + 12) + 'px';
}
function hideTip() { tooltip.style.display = 'none'; }

function maxOf(vals) {
  let m = -Infinity;
  for (const v of vals) if (v > m) m = v;
  return m;
}
function minOf(vals) {
  let m = Infinity;
  for (const v of vals) if (v < m) m = v;
  return m;
}

/* One small-multiple time-series chart: a single 2px line on its own
 * axis, 0-anchored unless values go negative, crosshair hover. */
function lineChart(name, ticks, vals) {
  const W = 330, H = 130, ML = 46, MR = 10, MT = 8, MB = 18;
  const pw = W - ML - MR, ph = H - MT - MB;
  let lo = Math.min(0, minOf(vals)), hi = maxOf(vals);
  if (!(hi > lo)) hi = lo + 1;
  const X = i => ML + (ticks.length < 2 ? pw / 2 : pw * i / (ticks.length - 1));
  const Y = v => MT + ph - ph * (v - lo) / (hi - lo);
  const svg = svgEl('svg', {viewBox: '0 0 ' + W + ' ' + H});
  for (const f of [1, 0.5]) {
    const v = lo + (hi - lo) * f, y = Y(v);
    svg.appendChild(svgEl('line',
      {x1: ML, x2: W - MR, y1: y, y2: y, 'class': 'gridline'}));
    const t = svgEl('text',
      {x: ML - 5, y: y + 3, 'text-anchor': 'end', 'class': 'axis-label'});
    t.textContent = fmt(v);
    svg.appendChild(t);
  }
  const y0 = Y(Math.max(lo, 0));
  svg.appendChild(svgEl('line',
    {x1: ML, x2: W - MR, y1: y0, y2: y0, 'class': 'baseline'}));
  for (const [i, anchor] of [[0, 'start'], [ticks.length - 1, 'end']]) {
    const t = svgEl('text', {x: X(i), y: H - 5, 'text-anchor': anchor,
                             'class': 'axis-label'});
    t.textContent = fmt(ticks[i]);
    svg.appendChild(t);
  }
  let pts = '';
  for (let i = 0; i < vals.length; i++)
    pts += (i ? ' ' : '') + X(i).toFixed(1) + ',' + Y(vals[i]).toFixed(1);
  svg.appendChild(svgEl('polyline',
    {points: pts, 'class': 'series-line st1'}));
  const cross = svgEl('line',
    {x1: 0, x2: 0, y1: MT, y2: MT + ph, 'class': 'crosshair',
     visibility: 'hidden'});
  const dot = svgEl('circle',
    {r: 4, 'class': 'hoverdot s1', visibility: 'hidden'});
  svg.appendChild(cross);
  svg.appendChild(dot);
  const hot = svgEl('rect', {x: ML, y: MT, width: pw, height: ph,
                             fill: 'transparent'});
  hot.addEventListener('mousemove', ev => {
    const r = svg.getBoundingClientRect();
    const px = (ev.clientX - r.left) * W / r.width;
    let i = Math.round((px - ML) / pw * (ticks.length - 1));
    i = Math.max(0, Math.min(ticks.length - 1, i));
    const x = X(i), y = Y(vals[i]);
    cross.setAttribute('x1', x); cross.setAttribute('x2', x);
    cross.setAttribute('visibility', 'visible');
    dot.setAttribute('cx', x); dot.setAttribute('cy', y);
    dot.setAttribute('visibility', 'visible');
    showTip(ev, '@' + fmt(ticks[i]), fmt(vals[i]));
  });
  hot.addEventListener('mouseleave', () => {
    cross.setAttribute('visibility', 'hidden');
    dot.setAttribute('visibility', 'hidden');
    hideTip();
  });
  svg.appendChild(hot);
  const card = el('div', 'card');
  card.appendChild(el('p', 'name', name));
  card.appendChild(svg);
  return card;
}

/* Bar with a rounded data-end anchored on a square baseline. */
function barPath(x, w, yTop, yBase, r) {
  r = Math.min(r, w / 2, Math.abs(yBase - yTop));
  return 'M' + x + ',' + yBase +
         ' L' + x + ',' + (yTop + r) +
         ' Q' + x + ',' + yTop + ' ' + (x + r) + ',' + yTop +
         ' L' + (x + w - r) + ',' + yTop +
         ' Q' + (x + w) + ',' + yTop + ' ' + (x + w) + ',' + (yTop + r) +
         ' L' + (x + w) + ',' + yBase + ' Z';
}

/* Vertical bar chart used for the log2 histograms (Figure-10 style) and
 * the per-node breakdown. labelEvery: 1 labels each bar's value; 0
 * labels only the max (selective labeling for dense charts). */
function barChart(labels, counts, opts) {
  const W = 460, H = 185, ML = 42, MR = 8, MT = 16, MB = 24;
  const pw = W - ML - MR, ph = H - MT - MB;
  const hi = Math.max(1, maxOf(counts));
  const n = counts.length;
  const gap = n > 24 ? 1 : 2;
  const bw = Math.max(1, pw / n - gap);
  const Y = v => MT + ph - ph * v / hi;
  const svg = svgEl('svg', {viewBox: '0 0 ' + W + ' ' + H});
  for (const f of [1, 0.5]) {
    const y = Y(hi * f);
    svg.appendChild(svgEl('line',
      {x1: ML, x2: W - MR, y1: y, y2: y, 'class': 'gridline'}));
    const t = svgEl('text',
      {x: ML - 5, y: y + 3, 'text-anchor': 'end', 'class': 'axis-label'});
    t.textContent = fmt(hi * f);
    svg.appendChild(t);
  }
  svg.appendChild(svgEl('line', {x1: ML, x2: W - MR, y1: MT + ph,
                                 y2: MT + ph, 'class': 'baseline'}));
  const maxIdx = counts.indexOf(maxOf(counts));
  for (let i = 0; i < n; i++) {
    const x = ML + (pw / n) * i + gap / 2;
    if (counts[i] > 0) {
      const p = svgEl('path',
        {d: barPath(x, bw, Y(counts[i]), MT + ph, 4), 'class': 's1'});
      p.addEventListener('mousemove',
        ev => showTip(ev, labels[i], fmt(counts[i]) +
          (opts.pctOf ? ' (' + (100 * counts[i] / opts.pctOf).toFixed(1)
                        + '%)' : '')));
      p.addEventListener('mouseleave', hideTip);
      svg.appendChild(p);
    }
    if (counts[i] > 0 && (opts.labelEvery ? true : i === maxIdx)) {
      const t = svgEl('text', {x: x + bw / 2, y: Y(counts[i]) - 4,
                               'text-anchor': 'middle',
                               'class': 'val-label'});
      t.textContent = fmt(counts[i]);
      svg.appendChild(t);
    }
    if (opts.labelEvery || i % Math.ceil(n / 8) === 0) {
      const t = svgEl('text', {x: x + bw / 2, y: H - 5,
                               'text-anchor': 'middle',
                               'class': 'axis-label'});
      t.textContent = labels[i];
      svg.appendChild(t);
    }
  }
  return svg;
}

function histCard(name, h) {
  let n = h.buckets.length;
  while (n > 4 && h.buckets[n - 1] === 0) n--;
  const card = el('div', 'card');
  card.appendChild(el('p', 'name', name));
  card.appendChild(el('p', 'desc',
    h.desc + ' — ' + fmt(h.count) + ' samples'));
  card.appendChild(barChart(h.labels.slice(0, n), h.buckets.slice(0, n),
                            {labelEvery: 1, pctOf: h.count}));
  return card;
}

/* Latency phase breakdown: one horizontal stacked bar (categorical
 * slots 1-5 in palette order), 2px surface gaps between segments, and a
 * legend that carries name + value visibly (the low-contrast light
 * slots lean on these labels, per the palette's relief rule). */
const PHASES = [
  ['req_net', 'request net', 1], ['home', 'home service', 2],
  ['trap', 'software trap', 3], ['inv', 'invalidation', 4],
  ['reply_net', 'reply net', 5]];
function phaseCard(phases) {
  const W = 680, H = 34, R = 4, GAP = 2;
  const total = phases.total > 0 ? phases.total : 1;
  const card = el('div', 'card');
  card.appendChild(el('p', 'name',
    'mean remote-miss latency by phase — ' + fmt(phases.total) +
    ' cycles over ' + fmt(phases.count) + ' misses'));
  const svg = svgEl('svg', {viewBox: '0 0 ' + W + ' ' + H});
  const clipId = 'phase-clip';
  const clip = svgEl('clipPath', {id: clipId});
  clip.appendChild(svgEl('rect', {x: 0, y: 0, width: W, height: H,
                                  rx: R}));
  svg.appendChild(clip);
  const g = svgEl('g', {'clip-path': 'url(#' + clipId + ')'});
  let x = 0;
  for (const [key, label, slot] of PHASES) {
    const v = phases[key] || 0;
    const w = W * v / total;
    if (w <= 0) continue;
    const r = svgEl('rect', {x: x, y: 0, width: Math.max(0, w - GAP),
                             height: H, 'class': 's' + slot});
    r.addEventListener('mousemove', ev => showTip(ev, label,
      fmt(v) + ' cyc (' + (100 * v / total).toFixed(1) + '%)'));
    r.addEventListener('mouseleave', hideTip);
    g.appendChild(r);
    x += w;
  }
  svg.appendChild(g);
  card.appendChild(svg);
  const legend = el('div', 'legend');
  for (const [key, label, slot] of PHASES) {
    const item = el('span', 'item');
    const sw = el('span', 'swatch');
    sw.style.background = 'var(--series-' + slot + ')';
    item.appendChild(sw);
    item.appendChild(el('span', '', label));
    item.appendChild(el('span', 'val', fmt(phases[key] || 0) + ' cyc ('
      + (100 * (phases[key] || 0) / total).toFixed(1) + '%)'));
    legend.appendChild(item);
  }
  card.appendChild(legend);
  return card;
}

function hotspotCard(rows) {
  const card = el('div', 'card');
  card.appendChild(el('p', 'name',
    'mesh hotspots — top routers by flit-hops forwarded'));
  const table = el('table');
  const hr = el('tr');
  for (const h of ['router', 'x', 'y', 'flit-hops'])
    hr.appendChild(el('th', '', h));
  table.appendChild(hr);
  for (const r of rows) {
    const tr = el('tr');
    for (const v of [r.router, r.x, r.y, fmt(r.flit_hops)])
      tr.appendChild(el('td', '', String(v)));
    table.appendChild(tr);
  }
  card.appendChild(table);
  return card;
}

/* Transaction-tracer views (--txn): the per-phase tail-latency table
 * and one waterfall card per retained slowest transaction — a row per
 * span (children indented under their parent), the extracted critical
 * path as the bottom strip. Span kinds reuse the phase palette slots. */
const KIND_SLOT = {
  req_net: 1, busy_net: 1, busy_backoff: 6,
  queue_home: 2, home_service: 2,
  trap_charge: 3, trap_queue: 3, trap_emulate: 3,
  inv_sharer: 4, inv_net: 4, ack_net: 4,
  reply_net: 5, txn: 7, net: 7};

function tailCard(q) {
  const card = el('div', 'card');
  card.appendChild(el('p', 'name',
    'remote-miss latency quantiles by phase (cycles)'));
  const table = el('table');
  const hr = el('tr');
  const corner = el('th', '', 'phase');
  corner.style.textAlign = 'left';
  hr.appendChild(corner);
  for (const h of ['p50', 'p95', 'p99', 'mean', 'samples'])
    hr.appendChild(el('th', '', h));
  table.appendChild(hr);
  const rows = PHASES.map(p => [p[0], p[1]]);
  rows.push(['total', 'total']);
  for (const [key, label] of rows) {
    const r = q[key];
    if (!r) continue;
    const tr = el('tr');
    const name = el('td', '', label);
    name.style.textAlign = 'left';
    tr.appendChild(name);
    for (const v of [r.p50, r.p95, r.p99, r.mean])
      tr.appendChild(el('td', '', fmt(v)));
    tr.appendChild(el('td', '',
      fmt(r.count) + (r.exact ? '' : ' (sampled)')));
    table.appendChild(tr);
  }
  card.appendChild(table);
  return card;
}

function spanDepth(spans, s) {
  let d = 0;
  while (s.parent) { s = spans[s.parent - 1]; d++; }
  return d;
}

function waterfallCard(t) {
  const rows = t.spans.filter(s => s.kind !== 'txn');
  const W = 680, ML = 185, MR = 8, RH = 15, GAP = 3;
  const H = (rows.length + 1) * (RH + GAP) + 24;
  const t0 = t.start, dur = Math.max(1, t.end - t.start);
  const X = ts => ML + (W - ML - MR) * (ts - t0) / dur;
  const card = el('div', 'card');
  card.appendChild(el('p', 'name',
    'txn #' + t.id + ' — node ' + t.requester +
    (t.write ? ' write ' : ' read ') + t.line + ' — ' +
    fmt(t.phases.total) + ' cycles'));
  const svg = svgEl('svg', {viewBox: '0 0 ' + W + ' ' + H});
  for (const f of [0, 0.5, 1]) {
    const x = ML + (W - ML - MR) * f;
    svg.appendChild(svgEl('line',
      {x1: x, x2: x, y1: 0, y2: H - 18, 'class': 'gridline'}));
    const tx = svgEl('text',
      {x: x, y: H - 6, 'class': 'axis-label',
       'text-anchor': f === 0 ? 'start' : f === 1 ? 'end' : 'middle'});
    tx.textContent = '+' + fmt(dur * f);
    svg.appendChild(tx);
  }
  rows.forEach((s, i) => {
    const y = i * (RH + GAP);
    const label = svgEl('text',
      {x: ML - 8 - 12 * spanDepth(t.spans, s), y: y + RH - 4,
       'text-anchor': 'end', 'class': 'axis-label'});
    label.textContent = s.kind + ' @' + s.node;
    svg.appendChild(label);
    const x0 = X(s.start), x1 = Math.max(X(s.end), x0 + 2);
    const r = svgEl('rect', {x: x0, y: y, width: x1 - x0, height: RH,
      rx: 3, 'class': 's' + (KIND_SLOT[s.kind] || 7)});
    const tip = s.kind + (s.detail ? ' (' + s.detail + ')' : '') +
      (s.peer !== undefined ? ' → node ' + s.peer : '');
    r.addEventListener('mousemove', ev => showTip(ev, tip,
      fmt(s.end - s.start) + ' cyc @ +' + fmt(s.start - t0)));
    r.addEventListener('mouseleave', hideTip);
    svg.appendChild(r);
  });
  const cy = rows.length * (RH + GAP) + 2;
  const clabel = svgEl('text', {x: ML - 8, y: cy + RH - 4,
    'text-anchor': 'end', 'class': 'axis-label'});
  clabel.textContent = 'critical path';
  svg.appendChild(clabel);
  for (const seg of t.critical) {
    const x0 = X(seg.start), x1 = Math.max(X(seg.end), x0 + 1);
    const r = svgEl('rect', {x: x0, y: cy, width: x1 - x0, height: RH,
      'class': 's' + (KIND_SLOT[seg.kind] || 7)});
    r.addEventListener('mousemove', ev => showTip(ev, seg.kind,
      fmt(seg.end - seg.start) + ' cyc @ +' + fmt(seg.start - t0)));
    r.addEventListener('mouseleave', hideTip);
    svg.appendChild(r);
  }
  card.appendChild(svg);
  return card;
}

const GROUPS = [
  ['proc', 'Processors'], ['cache', 'Caches'],
  ['mem', 'Home controllers'], ['dir', 'Directory occupancy'],
  ['trap', 'Trap kernel'], ['kern', 'Kernel'], ['net', 'Network'],
  ['pk', 'Parallel kernel']];

// Worker utilization panel for --sim-threads runs, built from the
// host.parallel_kernel stats block (end-of-run summary, present only
// when the windowed kernel ran).
function pkCard(pk) {
  const card = el('div', 'card');
  const coupled = pk.windows > 0 ? pk.coupled_windows / pk.windows : 0;
  card.appendChild(el('p', 'name',
    pk.sim_threads + ' sim threads · lookahead ' + fmt(pk.lookahead) +
    ' cyc · ' + fmt(pk.windows) + ' windows (' +
    (coupled * 100).toFixed(1) + '% coupled) · serial tail ' +
    (pk.serial_tail_fraction * 100).toFixed(1) + '% of ' +
    pk.run_seconds.toFixed(2) + ' s · ' +
    fmt(pk.cross_partition_flits) + ' cross-partition flits'));
  const parts = pk.partitions || [];
  if (!parts.length) return card;
  const ids = parts.map(p => String(p.id));
  const events = parts.map(p => p.events);
  const maxEv = Math.max(...events, 1);
  const minEv = Math.min(...events);
  card.appendChild(el('p', 'name', 'events per partition (imbalance ' +
    ((1 - minEv / maxEv) * 100).toFixed(1) + '%)'));
  card.appendChild(barChart(ids, events, {labelEvery: 1}));
  card.appendChild(el('p', 'name', 'barrier wait per worker (s)'));
  card.appendChild(barChart(ids, parts.map(p => p.barrier_wait_seconds),
                            {labelEvery: 1}));
  if (pk.run_seconds > 0) {
    card.appendChild(el('p', 'name',
      'worker utilization (1 − wait / run time, %)'));
    card.appendChild(barChart(ids, parts.map(p => Math.max(0,
      100 * (1 - p.barrier_wait_seconds / pk.run_seconds))),
      {labelEvery: 1}));
  }
  return card;
}

function render() {
  document.getElementById('title').textContent = TITLE;
  document.title = TITLE;
  const main = document.getElementById('report');
  const csv = TELEMETRY_CSV === null ? null : parseCsv(TELEMETRY_CSV);

  const meta = [];
  if (TELEMETRY && TELEMETRY.meta) {
    for (const k of ['protocol', 'nodes', 'seed'])
      if (TELEMETRY.meta[k] !== undefined)
        meta.push(k + ' ' + TELEMETRY.meta[k]);
    meta.push('interval ' + fmt(TELEMETRY.interval) + ' cyc');
  }
  if (csv) meta.push(csv.rows.length + ' windows');
  if (TXN) meta.push(fmt(TXN.completed) + ' transactions traced');
  document.getElementById('meta').textContent = meta.join(' · ');

  if (csv) {
    const ticks = csv.rows.map(r => r[0]);
    main.appendChild(el('h2', '', 'Time series'));
    const byGroup = {};
    for (let c = 1; c < csv.header.length; c++) {
      const name = csv.header[c];
      const prefix = name.indexOf('.') > 0 ?
        name.slice(0, name.indexOf('.')) : name;
      (byGroup[prefix] = byGroup[prefix] || []).push(c);
    }
    const order = GROUPS.map(g => g[0]);
    const prefixes = Object.keys(byGroup).sort((a, b) => {
      const ia = order.indexOf(a), ib = order.indexOf(b);
      return (ia < 0 ? 99 : ia) - (ib < 0 ? 99 : ib);
    });
    for (const p of prefixes) {
      const title = (GROUPS.find(g => g[0] === p) || [p, p])[1];
      main.appendChild(el('h3', '', title));
      const grid = el('div', 'grid');
      for (const c of byGroup[p])
        grid.appendChild(lineChart(csv.header[c], ticks,
                                   csv.rows.map(r => r[c])));
      main.appendChild(grid);
    }
  }

  if (TELEMETRY && TELEMETRY.histograms &&
      Object.keys(TELEMETRY.histograms).length) {
    main.appendChild(el('h2', '', 'Histograms'));
    const grid = el('div', 'grid');
    grid.style.gridTemplateColumns =
      'repeat(auto-fill, minmax(470px, 1fr))';
    for (const name in TELEMETRY.histograms)
      grid.appendChild(histCard(name, TELEMETRY.histograms[name]));
    main.appendChild(grid);
  }

  if (STATS && STATS.phases && STATS.phases.count > 0) {
    main.appendChild(el('h2', '', 'Latency phases'));
    main.appendChild(phaseCard(STATS.phases));
  }

  if (TXN && TXN.phase_quantiles) {
    main.appendChild(el('h2', '', 'Tail latency'));
    main.appendChild(tailCard(TXN.phase_quantiles));
  }
  if (TXN && TXN.top && TXN.top.length) {
    main.appendChild(el('h2', '',
      'Slowest transactions (top ' + TXN.top.length + ')'));
    const grid = el('div', 'grid');
    grid.style.gridTemplateColumns =
      'repeat(auto-fill, minmax(690px, 1fr))';
    for (const t of TXN.top) grid.appendChild(waterfallCard(t));
    main.appendChild(grid);
  }

  const summaries = (TELEMETRY && TELEMETRY.summaries) || {};
  if (summaries.net_hotspots && summaries.net_hotspots.length) {
    main.appendChild(el('h2', '', 'Network hotspots'));
    main.appendChild(hotspotCard(summaries.net_hotspots));
  }
  if (summaries.trap_cycles_per_node &&
      maxOf(summaries.trap_cycles_per_node) > 0) {
    main.appendChild(el('h2', '', 'Emulation occupancy'));
    const card = el('div', 'card');
    card.appendChild(el('p', 'name',
      'cumulative trap cycles per node (dispatcher + inline charges)'));
    const v = summaries.trap_cycles_per_node;
    card.appendChild(barChart(v.map((_, i) => String(i)), v,
                              {labelEvery: 0}));
    main.appendChild(card);
  }
  if (STATS && STATS.host && STATS.host.parallel_kernel) {
    main.appendChild(el('h2', '', 'Parallel kernel utilization'));
    main.appendChild(pkCard(STATS.host.parallel_kernel));
  }

  const foot = [];
  if (csv) foot.push('telemetry schema ' +
    (TELEMETRY ? TELEMETRY.schema + ' v' + TELEMETRY.schema_version
               : 'csv only'));
  if (STATS) foot.push('stats schema ' + STATS.schema + ' v' +
                       STATS.schema_version);
  if (TXN) foot.push('txn schema ' + TXN.schema + ' v' + TXN.version);
  document.getElementById('foot').textContent =
    foot.join(' · ') + ' · generated by limitless-report';
}

document.getElementById('theme-toggle').addEventListener('click', () => {
  const root = document.documentElement;
  const dark = root.dataset.theme === 'dark' ||
    (root.dataset.theme !== 'light' &&
     window.matchMedia('(prefers-color-scheme: dark)').matches);
  root.dataset.theme = dark ? 'light' : 'dark';
  document.getElementById('theme-toggle').textContent =
    dark ? 'dark' : 'light';
});

try {
  render();
} catch (err) {
  const box = el('div', 'error',
    'report failed to render: ' + err.message);
  document.getElementById('report').appendChild(box);
}
</script>
</body>
</html>
)js";

} // namespace

int
main(int argc, char **argv)
{
    const std::map<std::string, bool> known = {
        {"telemetry", true}, {"stats-json", true},
        {"out", true},       {"title", true},
        {"txn", true},       {"help", false},
    };
    const CliOptions opts = CliOptions::parse(argc, argv, known);
    if (opts.has("help") || argc == 1) {
        usage();
        return 0;
    }
    if (!opts.has("telemetry") && !opts.has("txn"))
        fatal("--telemetry <file.csv> or --txn <file.json> is required");

    const bool haveCsv = opts.has("telemetry");
    const std::string csvPath = opts.str("telemetry", "");
    std::string csv;
    if (haveCsv) {
        csv = readFile(csvPath);
        validateCsv(csv, csvPath);
    }

    // Sidecar JSON (histograms + summaries). Optional: a report from a
    // bare CSV still renders the time-series sections.
    const std::string jsonPath =
        haveCsv ? telemetryJsonPathFor(csvPath) : "";
    bool haveJson = false;
    const std::string telemJson =
        haveCsv ? readFile(jsonPath, &haveJson) : "";
    if (haveJson &&
        telemJson.find(Telemetry::jsonSchema()) == std::string::npos)
        fatal("%s: not a telemetry JSON sidecar (expected schema %s)",
              jsonPath.c_str(), Telemetry::jsonSchema());

    bool haveTxn = false;
    std::string txnJson;
    if (opts.has("txn")) {
        txnJson = readFile(opts.str("txn"));
        haveTxn = true;
        if (txnJson.find("limitless-txn-v") == std::string::npos)
            fatal("%s: not a transaction trace (expected schema "
                  "limitless-txn-v1)",
                  opts.str("txn").c_str());
    }

    bool haveStats = false;
    std::string statsJson;
    if (opts.has("stats-json")) {
        statsJson = readFile(opts.str("stats-json"));
        haveStats = true;
        if (statsJson.find("limitless-stats-v") == std::string::npos)
            fatal("%s: not a limitless-sim stats JSON",
                  opts.str("stats-json").c_str());
    }

    const std::string title =
        opts.has("title")
            ? opts.str("title")
            : "LimitLESS telemetry — " +
                  baseName(haveCsv ? csvPath : opts.str("txn"));
    const std::string outPath = opts.str("out", "report.html");
    std::ofstream out(outPath);
    if (!out)
        fatal("cannot write '%s'", outPath.c_str());

    out << kHead;
    out << "const TITLE = ";
    jsonEscape(out, title);
    out << ";\nconst TELEMETRY_CSV = ";
    if (haveCsv)
        jsonEscape(out, csv);
    else
        out << "null";
    out << ";\nconst TELEMETRY = "
        << (haveJson ? telemJson : std::string("null"))
        << ";\nconst STATS = " << (haveStats ? statsJson : "null")
        << ";\nconst TXN = " << (haveTxn ? txnJson : "null") << ";\n";
    out << kScript;
    if (!out)
        fatal("write to '%s' failed", outPath.c_str());
    out.close();

    std::cout << "report: " << outPath << " (from "
              << (haveCsv ? csvPath : opts.str("txn"))
              << (haveJson ? " + " + jsonPath : "")
              << (haveStats ? " + " + opts.str("stats-json") : "")
              << (haveTxn && haveCsv ? " + " + opts.str("txn") : "")
              << ")\n";
    return 0;
}
