#!/usr/bin/env python3
"""Validate a limitless-txn-v1 transaction-trace export.

Structural invariants the simulator promises (docs/OBSERVABILITY.md §8):

  * schema/version match limitless-txn-v1 / 1;
  * no transaction is left unfinished at the end of a quiesced run;
  * per transaction: span ids are 1-based and dense, the root is span 1
    with kind "txn" covering [start, end], every parent precedes its
    children, every span is closed with end >= start, and children nest
    inside their parent's window;
  * the critical path tiles [start, end] exactly — contiguous segments,
    no gaps or overlap, each attributed to a real span;
  * the folded phase attribution sums to the end-to-end latency;
  * quantiles are monotone (p50 <= p95 <= p99) with a sane sample count.

Usage: check_txn_trace.py TRACE.json [--allow-unfinished]
Exit status 0 when every invariant holds, 1 otherwise.
"""

import json
import sys

PHASE_KEYS = ("req_net", "home", "trap", "inv", "reply_net", "total")


def fail(msg):
    print(f"check_txn_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_spans(txn):
    tid = txn["id"]
    spans = txn["spans"]
    if not spans:
        fail(f"txn {tid}: no spans")
    for i, s in enumerate(spans):
        if s["id"] != i + 1:
            fail(f"txn {tid}: span ids not dense at index {i}")
        if s["end"] < s["start"]:
            fail(f"txn {tid} span {s['id']} ({s['kind']}): never closed")
    root = spans[0]
    if root["kind"] != "txn" or root["parent"] != 0:
        fail(f"txn {tid}: span 1 is not the root")
    if root["start"] != txn["start"] or root["end"] != txn["end"]:
        fail(f"txn {tid}: root span does not cover [start, end]")
    for s in spans[1:]:
        if not 1 <= s["parent"] < s["id"]:
            fail(f"txn {tid} span {s['id']}: parent does not precede it")
        p = spans[s["parent"] - 1]
        if s["start"] < p["start"] or s["end"] > p["end"]:
            fail(f"txn {tid} span {s['id']} ({s['kind']}): "
                 f"escapes parent {p['id']} ({p['kind']})")


def check_critical(txn):
    tid = txn["id"]
    crit = txn["critical"]
    if not crit:
        fail(f"txn {tid}: empty critical path")
    if crit[0]["start"] != txn["start"] or crit[-1]["end"] != txn["end"]:
        fail(f"txn {tid}: critical path does not cover [start, end]")
    nspans = len(txn["spans"])
    prev_end = txn["start"]
    for seg in crit:
        if seg["start"] != prev_end:
            fail(f"txn {tid}: critical path gap/overlap at {seg['start']}")
        if seg["end"] <= seg["start"]:
            fail(f"txn {tid}: empty critical segment at {seg['start']}")
        if not 1 <= seg["span"] <= nspans:
            fail(f"txn {tid}: critical segment cites unknown span "
                 f"{seg['span']}")
        prev_end = seg["end"]


def check_phases(txn):
    tid = txn["id"]
    ph = txn["phases"]
    folded = sum(ph[k] for k in PHASE_KEYS if k != "total")
    if abs(folded - ph["total"]) > 1e-6:
        fail(f"txn {tid}: phases sum {folded} != total {ph['total']}")
    if abs(ph["total"] - (txn["end"] - txn["start"])) > 1e-6:
        fail(f"txn {tid}: total {ph['total']} != end - start")


def check_quantiles(doc):
    q = doc["phase_quantiles"]
    for key in PHASE_KEYS:
        r = q[key]
        if not r["p50"] <= r["p95"] <= r["p99"]:
            fail(f"quantiles for {key} are not monotone")
        if r["count"] != doc["completed"]:
            fail(f"quantile count for {key} != completed")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    allow_unfinished = "--allow-unfinished" in argv
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        doc = json.load(f)

    if doc.get("schema") != "limitless-txn-v1" or doc.get("version") != 1:
        fail(f"unexpected schema {doc.get('schema')!r} "
             f"v{doc.get('version')!r}")
    if doc["unfinished"] and not allow_unfinished:
        fail(f"{doc['unfinished']} unfinished transaction(s) — a "
             "completion path dropped its latency stamp")
    if doc["completed"]:
        check_quantiles(doc)
    if len(doc["top"]) > doc["top_k"]:
        fail(f"{len(doc['top'])} retained records exceed top_k "
             f"{doc['top_k']}")
    totals = [t["end"] - t["start"] for t in doc["top"]]
    if totals != sorted(totals, reverse=True):
        fail("top records are not sorted slowest-first")
    for txn in doc["top"]:
        check_spans(txn)
        check_critical(txn)
        check_phases(txn)

    print(f"check_txn_trace: OK: {doc['completed']} completed, "
          f"{len(doc['top'])} retained, all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
