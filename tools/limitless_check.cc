/**
 * @file
 * limitless-check: exhaustive protocol model checker over the
 * guarded-action tables. With no arguments it runs the standard sweep —
 * every directory scheme over the smoke (2 nodes, 1 line), conflict
 * (2 nodes, 2 lines) and update (2 nodes, 1 line) scripts, exploring
 * every interleaving of packet deliveries and processor issues through
 * the same TransitionTable rows the simulator runs. Exits nonzero on
 * the first violation, after minimizing the counterexample and (with
 * --trace-out) writing a trace that `limitless-sim --replay-check` can
 * step through. See docs/CHECKER.md.
 *
 * Examples:
 *   limitless-check                       # standard sweep + coverage
 *   limitless-check --protocol limitless1 --nodes 3 --script conflict
 *   limitless-check --flip-guard limitless:home:4 --trace-out cex.trace
 *   limitless-check --replay cex.trace
 *   limitless-check --coverage cov.txt    # write the coverage report
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "check/coverage.hh"
#include "check/explorer.hh"
#include "check/minimize.hh"
#include "check/trace_io.hh"
#include "harness/cli.hh"
#include "harness/parallel_runner.hh"
#include "sim/log.hh"

using namespace limitless;

namespace
{

void
usage()
{
    std::cout <<
        "limitless-check — exhaustive protocol model checker\n\n"
        "  (no arguments)           run the standard sweep: every scheme "
        "x every script\n"
        "  --protocol <name>        full-map | dir<i>nb | limitless<i> | "
        "chained | private-only\n"
        "  --emulate                limitless: full trap-handler "
        "emulation instead of stall\n"
        "  --pointers <n>           hardware pointers (default 1 — "
        "smallest overflow point)\n"
        "  --nodes <n>              machine size, 2-4 (default 2)\n"
        "  --lines <n>              distinct cache lines (default per "
        "script)\n"
        "  --script <name>          smoke | conflict | update (default "
        "smoke)\n"
        "  --topology <name>        mesh | torus | express[:stride] "
        "(default mesh)\n"
        "  --cluster <n>            nodes per chip for the home mapping "
        "(default 1)\n"
        "  --hier                   two-level directories (needs "
        "--cluster >= 2)\n"
        "  --ops <n>                ops per node (0 = script's natural "
        "length)\n"
        "  --max-states <n>         state cap (default 200000)\n"
        "  --max-depth <n>          schedule-depth cap (default 64)\n"
        "  --budget-ms <n>          wall-clock budget per config "
        "(0 = none)\n"
        "  --jobs <n>               explore configs on n threads "
        "(default 1; 0 = all cores);\n"
        "                           output and results stay in config "
        "order\n"
        "  --flip-guard <k:s:row>   invert a table row's guard, e.g. "
        "limitless:home:4\n"
        "                           (row may be a numeric id or a row "
        "label)\n"
        "  --trace-out <file>       write the minimized counterexample "
        "trace\n"
        "  --replay <file>          replay a trace instead of exploring\n"
        "  --coverage <file>        write the row-coverage report "
        "(use - for stdout)\n"
        "  --json                   machine-readable per-config results "
        "on stdout\n"
        "  --quiet                  only report violations\n"
        "  --help\n";
}

/** "kind:side:row" -> GuardFlip; row may be an id or a row label. */
GuardFlip
parseFlipSpec(const std::string &spec)
{
    std::istringstream is(spec);
    std::string kind_s, side_s, row_s;
    if (!std::getline(is, kind_s, ':') ||
        !std::getline(is, side_s, ':') || !std::getline(is, row_s))
        fatal("--flip-guard: expected <kind>:<side>:<row>, got '%s'",
              spec.c_str());
    GuardFlip f;
    f.kind = checkKindFromName(kind_s);
    if (side_s == "home")
        f.side = TableSide::home;
    else if (side_s == "cache")
        f.side = TableSide::cache;
    else
        fatal("--flip-guard: side must be home or cache, got '%s'",
              side_s.c_str());
    if (!row_s.empty() &&
        row_s.find_first_not_of("0123456789") == std::string::npos)
        f.row = static_cast<std::uint16_t>(std::stoul(row_s));
    else
        f.row = findRowByLabel(f.kind, f.side, row_s);
    return f;
}

struct ConfigOutcome
{
    CheckConfig cfg;
    ExploreResult result;
};

void
printStats(std::ostream &os, const CheckConfig &cfg, const ExploreStats &s)
{
    os << "  " << cfg.name() << ": " << s.states << " states, "
       << s.transitions << " transitions, " << s.terminals
       << " terminals, depth " << s.maxDepth << ", "
       << s.elapsedMs << " ms"
       << (s.exhaustive() ? "" : "  [TRUNCATED]") << "\n";
}

void
printJson(std::ostream &os, const CheckConfig &cfg, const ExploreResult &r)
{
    const ExploreStats &s = r.stats;
    os << "{\"config\": \"" << cfg.name() << "\", \"states\": "
       << s.states << ", \"transitions\": " << s.transitions
       << ", \"terminals\": " << s.terminals << ", \"max_depth\": "
       << s.maxDepth << ", \"elapsed_ms\": " << s.elapsedMs
       << ", \"exhaustive\": " << (s.exhaustive() ? "true" : "false")
       << ", \"violation\": \""
       << violationKindName(r.cex ? r.cex->kind : ViolationKind::none)
       << "\"}\n";
}

void
printCounterexample(const CheckConfig &cfg, const Counterexample &cex,
                    std::size_t original_len)
{
    std::cout << "VIOLATION in " << cfg.name() << ": "
              << violationKindName(cex.kind) << "\n";
    for (const std::string &m : cex.messages)
        std::cout << "  " << m << "\n";
    std::cout << "  counterexample (" << cex.schedule.size()
              << " choices, minimized from " << original_len << "):\n";
    for (const Choice &c : cex.schedule)
        std::cout << "    " << describeChoice(c) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::map<std::string, bool> known = {
        {"protocol", true},  {"emulate", false}, {"pointers", true},
        {"nodes", true},     {"lines", true},    {"script", true},
        {"ops", true},       {"max-states", true}, {"max-depth", true},
        {"budget-ms", true}, {"flip-guard", true}, {"trace-out", true},
        {"replay", true},    {"coverage", true}, {"json", false},
        {"quiet", false},    {"help", false},    {"jobs", true},
        {"topology", true},  {"cluster", true},  {"hier", false},
    };
    const CliOptions opts = CliOptions::parse(argc, argv, known);
    if (opts.has("help")) {
        usage();
        return 0;
    }

    if (opts.has("replay")) {
        CheckTrace trace;
        std::string error;
        if (!loadTrace(opts.str("replay"), trace, &error))
            fatal("--replay: %s", error.c_str());
        const bool reproduced =
            replayTrace(trace, opts.has("quiet") ? nullptr : &std::cout);
        std::cout << (reproduced ? "REPRODUCED" : "NOT REPRODUCED")
                  << ": " << violationKindName(trace.violation) << " in "
                  << trace.config.name() << "\n";
        return reproduced ? 0 : 1;
    }

    std::vector<GuardFlip> flips;
    if (opts.has("flip-guard")) {
        flips.push_back(parseFlipSpec(opts.str("flip-guard")));
        DispatchHooks::instance().flipGuard(flips[0].kind, flips[0].side,
                                            flips[0].row);
    }

    ExploreLimits limits;
    limits.maxStates = opts.num("max-states", limits.maxStates);
    limits.maxDepth =
        static_cast<unsigned>(opts.num("max-depth", limits.maxDepth));
    limits.maxMillis = opts.num("budget-ms", 0);

    // Build the config list: one explicit config, or the standard
    // sweep (every scheme x every script; limitless both modes).
    std::vector<CheckConfig> configs;
    if (opts.has("protocol")) {
        CheckConfig cfg;
        cfg.protocol = parseProtocol(opts.str("protocol"));
        if (opts.has("pointers"))
            cfg.protocol.pointers =
                static_cast<unsigned>(opts.num("pointers", 1));
        if (opts.has("emulate"))
            cfg.protocol.limitlessMode = LimitlessMode::fullEmulation;
        cfg.script = opts.str("script", "smoke");
        cfg.nodes = static_cast<unsigned>(opts.num("nodes", 2));
        cfg.lines = static_cast<unsigned>(
            opts.num("lines", cfg.script == "conflict" ? 2 : 1));
        cfg.opsPerNode = static_cast<unsigned>(opts.num("ops", 0));
        if (opts.has("topology") &&
            !parseTopologyKind(opts.str("topology"), cfg.topology))
            fatal("--topology: unknown topology '%s'",
                  opts.str("topology").c_str());
        if (opts.has("cluster")) {
            cfg.topology.clusterSize =
                static_cast<unsigned>(opts.num("cluster", 1));
            if (!cfg.topology.clusterSize ||
                cfg.nodes % cfg.topology.clusterSize)
                fatal("--cluster %u must divide --nodes %u evenly",
                      cfg.topology.clusterSize, cfg.nodes);
        }
        if (opts.has("hier")) {
            if (cfg.topology.clusterSize < 2)
                fatal("--hier needs chips of at least 2 nodes: pass "
                      "--cluster <n> with n >= 2 (got cluster size %u)",
                      cfg.topology.clusterSize);
            cfg.hier = true;
        }
        configs.push_back(cfg);
    } else {
        // Keep the software-extension stall short so the LimitLESS
        // stall window interleaves within the depth bound.
        std::vector<ProtocolParams> protos;
        protos.push_back(protocols::fullMap());
        protos.push_back(protocols::dirNB(1));
        protos.push_back(protocols::limitlessStall(1, 8));
        {
            ProtocolParams p = protocols::limitlessStall(1, 8);
            p.limitlessMode = LimitlessMode::fullEmulation;
            protos.push_back(p);
        }
        protos.push_back(protocols::chained());
        {
            ProtocolParams p;
            p.kind = ProtocolKind::privateOnly;
            protos.push_back(p);
        }
        for (const ProtocolParams &p : protos) {
            for (const char *script :
                 {"smoke", "conflict", "update", "rmw"}) {
                // The write-update path (WUPD) exists only in the
                // pointer schemes; chained and private-only homes
                // never see update-mode traffic.
                const bool pointer_scheme =
                    p.kind == ProtocolKind::fullMap ||
                    p.kind == ProtocolKind::limited ||
                    p.kind == ProtocolKind::limitless;
                if (std::string(script) == "update" && !pointer_scheme)
                    continue;
                CheckConfig cfg;
                cfg.protocol = p;
                cfg.script = script;
                cfg.nodes = 2;
                cfg.lines = cfg.script == "conflict" ? 2 : 1;
                configs.push_back(cfg);
            }
        }
        // Three-node smoke configs: a third node is what drives the
        // second-sharer rows — pointer eviction (limited), overflow
        // traps (LimitLESS), longer chains (chained), mid-transaction
        // defers (full-map) and remote recalls (private).
        for (const ProtocolParams &p : protos) {
            CheckConfig cfg;
            cfg.protocol = p;
            cfg.script = "smoke";
            cfg.nodes = 3;
            configs.push_back(cfg);
        }
        // No zero-depth-defer config: a BUSY-nacked cache spins its
        // retry loop inside one drain (retry exit needs a packet
        // delivery, which only happens between drains), so the BUSY
        // rows are inherently outside this drain model — they are
        // covered by the random-stress fuzz tier instead (see
        // docs/CHECKER.md).
        {
            // Trap-Always (no Trap-On-Write): after an overflow every
            // request traps, driving the ro_sw_read row.
            CheckConfig cfg;
            cfg.protocol = protocols::limitlessStall(1, 8);
            cfg.protocol.trapOnWrite = false;
            cfg.script = "smoke";
            cfg.nodes = 3;
            configs.push_back(cfg);
        }
        // Cluster-interleaved torus configs: a 2x2 torus of two 2-node
        // chips. The checker's ControlledNetwork explores all delivery
        // interleavings regardless of link structure, so what these add
        // is the cluster-interleaved home mapping (homeOf splits the
        // line index into chip and within-chip digits) under full
        // interleaving exploration.
        for (ProtocolKind kind :
             {ProtocolKind::fullMap, ProtocolKind::limitless}) {
            CheckConfig cfg;
            cfg.protocol = kind == ProtocolKind::limitless
                               ? protocols::limitlessStall(1, 8)
                               : protocols::fullMap();
            cfg.script = "smoke";
            cfg.nodes = 4;
            cfg.topology.kind = TopologyKind::torus;
            cfg.topology.width = 2;
            cfg.topology.height = 2;
            cfg.topology.clusterSize = 2;
            configs.push_back(cfg);
        }
        // Two-chip two-level configs: the same 2x2 torus of two 2-node
        // chips with --hier, exploring every interleaving of the
        // chip-home FSM against the unmodified global tables — both
        // levels run LimitLESS software spill in the limitless1 config
        // (1 pointer at each level). The rmw config adds the chip-level
        // write-gather / local-recall rows on top of the read path.
        {
            auto hierConfig = [](ProtocolParams p) {
                CheckConfig cfg;
                cfg.protocol = p;
                cfg.script = "smoke";
                cfg.nodes = 4;
                cfg.topology.kind = TopologyKind::torus;
                cfg.topology.width = 2;
                cfg.topology.height = 2;
                cfg.topology.clusterSize = 2;
                cfg.hier = true;
                return cfg;
            };
            configs.push_back(hierConfig(protocols::fullMap()));
            configs.push_back(hierConfig(protocols::dirNB(1)));
            configs.push_back(
                hierConfig(protocols::limitlessStall(1, 8)));
            configs.push_back(hierConfig(protocols::chained()));
            CheckConfig rmw =
                hierConfig(protocols::limitlessStall(1, 8));
            rmw.script = "rmw";
            configs.push_back(rmw);
        }
    }

    CoverageScope coverage_scope;
    const bool quiet = opts.has("quiet");
    const bool json = opts.has("json");
    const unsigned jobs = static_cast<unsigned>(opts.num("jobs", 1));
    bool violated = false;

    // One task per config; each task's lines go to a private buffer the
    // runner flushes in config order, so --jobs output is byte-identical
    // to a serial sweep of the same configs.
    auto explore_one = [&](std::size_t i,
                           std::ostream &os) -> ExploreResult {
        ExploreResult result = explore(configs[i], limits);
        if (json)
            printJson(os, configs[i], result);
        else if (!quiet)
            printStats(os, configs[i], result.stats);
        return result;
    };

    std::vector<ExploreResult> results;
    if (jobs == 1) {
        // Serial: stop at the first violation, like the sweep always has.
        for (std::size_t i = 0; i < configs.size(); ++i) {
            results.push_back(explore_one(i, std::cout));
            if (!results.back().ok())
                break;
        }
    } else {
        ParallelRunner runner(jobs);
        results = runner.map<ExploreResult>(configs.size(), explore_one,
                                            std::cout);
    }

    // Report the first violation in config (submission) order — the same
    // one a serial sweep reports — and minimize it serially.
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok())
            continue;
        const CheckConfig &cfg = configs[i];
        ExploreResult &result = results[i];

        violated = true;
        const std::size_t original_len = result.cex->schedule.size();
        Counterexample cex = *result.cex;
        cex.schedule =
            minimizeSchedule(cfg, cex.schedule, cex.kind);
        printCounterexample(cfg, cex, original_len);

        if (opts.has("trace-out")) {
            CheckTrace trace;
            trace.config = cfg;
            trace.flips = flips;
            trace.violation = cex.kind;
            trace.messages = cex.messages;
            trace.schedule = cex.schedule;
            std::string error;
            if (!saveTrace(opts.str("trace-out"), trace, &error))
                fatal("--trace-out: %s", error.c_str());
            std::cout << "  trace: " << opts.str("trace-out")
                      << "  (replay: limitless-sim --replay-check "
                      << opts.str("trace-out") << ")\n";
        }
        break; // one counterexample per run: later configs share hooks
    }

    if (opts.has("coverage") && !violated) {
        std::vector<ProtocolKind> kinds;
        for (const CheckConfig &cfg : configs) {
            if (std::find(kinds.begin(), kinds.end(),
                          cfg.protocol.kind) == kinds.end())
                kinds.push_back(cfg.protocol.kind);
        }
        const std::vector<TableCoverage> cov =
            collectCoverage(coverage_scope, kinds);
        const std::string path = opts.str("coverage");
        if (path == "-") {
            writeCoverageReport(std::cout, cov);
        } else {
            std::ofstream os(path);
            if (!os)
                fatal("cannot write coverage report '%s'", path.c_str());
            writeCoverageReport(os, cov);
            if (!quiet)
                std::cout << "coverage report: " << path << "\n";
        }
    }

    DispatchHooks::instance().clearFlips();
    if (!violated && !quiet && !json)
        std::cout << "OK: " << configs.size()
                  << " config(s) explored, no violations\n";
    return violated ? 1 : 0;
}
