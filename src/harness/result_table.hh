/**
 * @file
 * Paper-style result rendering: each figure bench prints one horizontal
 * bar per coherence scheme, scaled like Figures 7-10 of the paper, plus a
 * machine-readable table.
 */

#ifndef LIMITLESS_HARNESS_RESULT_TABLE_HH
#define LIMITLESS_HARNESS_RESULT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace limitless
{

/** Accumulates figure rows and renders them. */
class ResultTable
{
  public:
    explicit ResultTable(std::string title) : _title(std::move(title)) {}

    void add(const ExperimentOutcome &outcome) { _rows.push_back(outcome); }

    /** Bar chart in the style of the paper's execution-time figures. */
    void printBars(std::ostream &os) const;

    /** Aligned detail table (cycles, latency, m, traps, retries). */
    void printDetails(std::ostream &os) const;

    /** Per-phase remote-latency decomposition (req_net / home / trap /
     *  inv / reply_net), one row per scheme. */
    void printPhases(std::ostream &os) const;

    /** CSV for downstream plotting. */
    void printCsv(std::ostream &os) const;

    const std::vector<ExperimentOutcome> &rows() const { return _rows; }

    /** Row lookup by label substring; aborts if absent. */
    const ExperimentOutcome &row(const std::string &label_part) const;

  private:
    std::string _title;
    std::vector<ExperimentOutcome> _rows;
};

} // namespace limitless

#endif // LIMITLESS_HARNESS_RESULT_TABLE_HH
