/**
 * @file
 * Small command-line option parser and the flag → MachineConfig /
 * Workload factories used by the limitless-sim driver (tools/).
 *
 * Flags are --name value or --name (boolean); unknown flags are fatal so
 * typos never silently fall back to defaults.
 */

#ifndef LIMITLESS_HARNESS_CLI_HH
#define LIMITLESS_HARNESS_CLI_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "directory/limited_dir.hh"
#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Parsed command line. */
class CliOptions
{
  public:
    /**
     * Parse argv. @p known maps flag name -> true if it takes a value.
     * Aborts (fatal) on unknown flags or missing values.
     */
    static CliOptions parse(int argc, char **argv,
                            const std::map<std::string, bool> &known);

    bool has(const std::string &flag) const
    {
        return _values.count(flag) != 0;
    }

    std::string str(const std::string &flag,
                    const std::string &fallback = "") const;
    std::uint64_t num(const std::string &flag,
                      std::uint64_t fallback) const;

  private:
    std::map<std::string, std::string> _values;
};

/**
 * Protocol spec parser: "full-map", "dir4nb", "limitless4" (with
 * optional --ts / --emulate modifiers applied by the caller),
 * "chained", "private-only". Aborts on unknown names.
 */
ProtocolParams parseProtocol(const std::string &name);

/**
 * Workload factory by name: multigrid, weather, weather-opt, hotspot,
 * worker-set, migratory, random-stress. Size knobs: @p iterations
 * scales the main loop (0 keeps each workload's default); @p seed
 * seeds the workload's own RNG where it has one (0 keeps the
 * workload's default seed).
 */
WorkloadFactory makeWorkloadFactory(const std::string &name,
                                    unsigned iterations,
                                    std::uint64_t seed = 0);

/** Names accepted by makeWorkloadFactory, for --help. */
std::vector<std::string> workloadNames();

} // namespace limitless

#endif // LIMITLESS_HARNESS_CLI_HH
