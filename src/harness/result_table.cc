#include "harness/result_table.hh"

#include <algorithm>
#include <iomanip>

#include "sim/log.hh"

namespace limitless
{

void
ResultTable::printBars(std::ostream &os) const
{
    os << "\n== " << _title << " ==\n";
    double max_mc = 0.0;
    std::size_t label_w = 0;
    for (const auto &r : _rows) {
        max_mc = std::max(max_mc, r.mcycles);
        label_w = std::max(label_w, r.label.size());
    }
    const unsigned bar_max = 48;
    for (const auto &r : _rows) {
        const unsigned len = max_mc > 0
            ? static_cast<unsigned>(r.mcycles / max_mc * bar_max + 0.5)
            : 0;
        os << "  " << std::left << std::setw(static_cast<int>(label_w))
           << r.label << "  " << std::right << std::fixed
           << std::setprecision(3) << std::setw(7) << r.mcycles
           << " Mcycles |" << std::string(len, '#') << "\n";
    }
}

void
ResultTable::printDetails(std::ostream &os) const
{
    os << "\n  " << std::left << std::setw(26) << "scheme" << std::right
       << std::setw(10) << "cycles" << std::setw(10) << "remote_T"
       << std::setw(8) << "m" << std::setw(9) << "rtraps"
       << std::setw(9) << "wtraps" << std::setw(9) << "evicts"
       << std::setw(9) << "retries" << std::setw(9) << "invs" << "\n";
    for (const auto &r : _rows) {
        os << "  " << std::left << std::setw(26) << r.label << std::right
           << std::setw(10) << r.cycles << std::setw(10) << std::fixed
           << std::setprecision(1) << r.remoteLatency << std::setw(8)
           << std::setprecision(3) << r.overflowFraction << std::setw(9)
           << r.readTraps << std::setw(9) << r.writeTraps << std::setw(9)
           << r.evictions << std::setw(9) << r.busyRetries << std::setw(9)
           << r.invsSent << "\n";
    }
}

void
ResultTable::printPhases(std::ostream &os) const
{
    os << "\n  remote-miss latency by phase (mean cycles)\n";
    os << "  " << std::left << std::setw(26) << "scheme" << std::right
       << std::setw(8) << "count" << std::setw(9) << "req_net"
       << std::setw(8) << "home" << std::setw(8) << "trap"
       << std::setw(8) << "inv" << std::setw(10) << "reply_net"
       << std::setw(8) << "total" << "\n";
    for (const auto &r : _rows) {
        const PhaseBreakdown &p = r.phases;
        os << "  " << std::left << std::setw(26) << r.label << std::right
           << std::setw(8) << p.completed << std::fixed
           << std::setprecision(1) << std::setw(9) << p.reqNet
           << std::setw(8) << p.home << std::setw(8) << p.trap
           << std::setw(8) << p.inv << std::setw(10) << p.replyNet
           << std::setw(8) << p.total << "\n";
    }
}

void
ResultTable::printCsv(std::ostream &os) const
{
    os << "scheme,cycles,mcycles,remote_latency,overflow_fraction,"
          "read_traps,write_traps,evictions,busy_retries,invs_sent,"
          "phase_req_net,phase_home,phase_trap,phase_inv,phase_reply_net,"
          "phase_total\n";
    for (const auto &r : _rows) {
        os << '"' << r.label << '"' << ',' << r.cycles << ','
           << r.mcycles << ',' << r.remoteLatency << ','
           << r.overflowFraction << ',' << r.readTraps << ','
           << r.writeTraps << ',' << r.evictions << ',' << r.busyRetries
           << ',' << r.invsSent << ',' << r.phases.reqNet << ','
           << r.phases.home << ',' << r.phases.trap << ','
           << r.phases.inv << ',' << r.phases.replyNet << ','
           << r.phases.total << "\n";
    }
}

const ExperimentOutcome &
ResultTable::row(const std::string &label_part) const
{
    for (const auto &r : _rows)
        if (r.label.find(label_part) != std::string::npos)
            return r;
    fatal("result table '%s': no row matching '%s'", _title.c_str(),
          label_part.c_str());
}

} // namespace limitless
