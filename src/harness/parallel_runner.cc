#include "harness/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include <iostream>

#include "obs/host_profiler.hh"
#include "proto/protocol_table.hh"
#include "sim/log.hh"

namespace limitless
{

ParallelRunner::ParallelRunner(unsigned jobs) : _jobs(jobs)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (_jobs == 0) {
        _jobs = hw;
    } else if (_jobs > hw) {
        // Oversubscribing simulation threads only adds context-switch
        // overhead; clamp and say so once rather than silently thrash.
        std::cerr << "parallel-runner: clamping --jobs " << _jobs
                  << " to " << hw << " hardware threads\n";
        _jobs = hw;
    }
}

void
ParallelRunner::run(std::size_t n, const Task<void> &task, std::ostream &out)
{
    runImpl(n, task, out);
}

void
ParallelRunner::runImpl(
    std::size_t n,
    const std::function<void(std::size_t, std::ostream &)> &task,
    std::ostream &out)
{
    if (n == 0)
        return;

    if (_jobs == 1 || n == 1) {
        // Serial: run inline, writing straight to the shared stream —
        // byte-identical to the pre-parallelism code path.
        for (std::size_t i = 0; i < n; ++i)
            task(i, out);
        return;
    }

    // The protocol tables register lazily into a process-global vector on
    // first dispatch; force them all now so workers only ever read it.
    registerAllProtocolTables();

    struct TaskSlot
    {
        std::string output;
        bool done = false;
    };
    std::vector<TaskSlot> slots(n);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};

    std::mutex mu;               // guards slots[i].done, flushed, firstError
    std::size_t flushed = 0;     // all slots below this are on `out`
    std::exception_ptr firstError;
    std::size_t firstErrorIdx = n;

    auto worker = [&]() {
        while (!abort.load(std::memory_order_relaxed)) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            std::ostringstream os;
            std::exception_ptr err;
            try {
                // Worker threads are joined per map() call and their
                // profiler trees retire commutatively on thread exit, so
                // sweep scopes aggregate independent of scheduling.
                PROF_SCOPE("runner.task");
                task(i, os);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mu);
            slots[i].output = os.str();
            slots[i].done = true;
            if (err) {
                abort.store(true, std::memory_order_relaxed);
                if (i < firstErrorIdx) {
                    firstErrorIdx = i;
                    firstError = err;
                }
            }
            // Flush the completed prefix in submission order; exactly one
            // thread holds the lock, so lines never interleave.
            while (flushed < n && slots[flushed].done) {
                out << slots[flushed].output;
                slots[flushed].output.clear();
                ++flushed;
            }
        }
    };

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(_jobs, n));
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    out.flush();
    if (firstError)
        std::rethrow_exception(firstError);
}

bool
isJobsFlag(const char *arg, bool &consumes_next)
{
    consumes_next = false;
    if (!std::strcmp(arg, "--jobs") || !std::strcmp(arg, "-j")) {
        consumes_next = true;
        return true;
    }
    return !std::strncmp(arg, "--jobs=", 7);
}

unsigned
parseJobsFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (!std::strcmp(arg, "--jobs") || !std::strcmp(arg, "-j")) {
            if (i + 1 >= argc)
                fatal("%s requires a value", arg);
            value = argv[i + 1];
        } else if (!std::strncmp(arg, "--jobs=", 7)) {
            value = arg + 7;
        } else {
            continue;
        }
        char *end = nullptr;
        const long jobs = std::strtol(value, &end, 10);
        if (!end || *end != '\0' || jobs < 0)
            fatal("bad --jobs value '%s'", value);
        return static_cast<unsigned>(jobs);
    }
    return 1;
}

} // namespace limitless
