/**
 * @file
 * Thread-pool fan-out for independent experiment configs.
 *
 * Sweeps (figure benches, the checker's standard sweep, scaling studies)
 * run many fully independent simulations: each Machine owns its own
 * EventQueue and every per-run global is thread-local (flight recorder,
 * packet pool), so configs can run on separate threads without sharing
 * state. The ParallelRunner fans tasks across `jobs` worker threads and
 * keeps the OUTPUT deterministic:
 *
 *  - each task writes its human-readable output to a private buffer;
 *  - buffers are flushed to the shared stream in submission (index)
 *    order, as soon as the contiguous prefix is complete, so no two
 *    tasks' log lines ever interleave;
 *  - results come back as a vector indexed by submission order, so a
 *    ResultTable built from them is byte-identical to a serial run.
 *
 * With jobs == 1 the runner degenerates to an inline loop writing
 * directly to the output stream — the exact pre-parallelism behaviour.
 */

#ifndef LIMITLESS_HARNESS_PARALLEL_RUNNER_HH
#define LIMITLESS_HARNESS_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <vector>

namespace limitless
{

/** Fans independent tasks across a fixed-size thread pool. */
class ParallelRunner
{
  public:
    /** @param jobs worker count; 0 means "one per hardware thread".
     *  Values above the hardware thread count clamp to it (with a
     *  one-line warning on stderr) — oversubscription only thrashes. */
    explicit ParallelRunner(unsigned jobs);

    unsigned jobs() const { return _jobs; }

    /** A task: (submission index, per-task output stream) -> result. */
    template <typename R>
    using Task = std::function<R(std::size_t, std::ostream &)>;

    /**
     * Run tasks 0..n-1 and return their results in submission order.
     * Task output is flushed to @p out in submission order (see file
     * comment). A task that throws stops the sweep: remaining unstarted
     * tasks are skipped and the lowest-index exception rethrows here
     * after all workers join.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n, const Task<R> &task, std::ostream &out)
    {
        std::vector<R> results(n);
        runImpl(
            n,
            [&](std::size_t i, std::ostream &os) {
                results[i] = task(i, os);
            },
            out);
        return results;
    }

    /** Result-less variant of map(). */
    void run(std::size_t n, const Task<void> &task, std::ostream &out);

  private:
    void runImpl(std::size_t n,
                 const std::function<void(std::size_t, std::ostream &)> &task,
                 std::ostream &out);

    unsigned _jobs;
};

/**
 * Parse a `--jobs N` / `--jobs=N` argument pair (tools and benches share
 * the flag). Returns the job count (default 1 — serial) and removes
 * nothing from argv; callers that do their own argv scanning should skip
 * the flag and its value. N == 0 means one job per hardware thread.
 */
unsigned parseJobsFlag(int argc, char **argv);

/** True when argv[i] is the --jobs flag (so scanners can skip it). */
bool isJobsFlag(const char *arg, bool &consumes_next);

} // namespace limitless

#endif // LIMITLESS_HARNESS_PARALLEL_RUNNER_HH
