#include "harness/cli.hh"

#include <algorithm>
#include <cctype>

#include "directory/limited_dir.hh"
#include "sim/log.hh"
#include "workload/hotspot.hh"
#include "workload/migratory.hh"
#include "workload/multigrid.hh"
#include "workload/random_stress.hh"
#include "workload/transpose.hh"
#include "workload/weather.hh"
#include "workload/worker_set.hh"

namespace limitless
{

CliOptions
CliOptions::parse(int argc, char **argv,
                  const std::map<std::string, bool> &known)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '%s' (flags start with --)",
                  arg.c_str());
        arg = arg.substr(2);
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline = true;
        }
        auto it = known.find(arg);
        if (it == known.end())
            fatal("unknown flag --%s", arg.c_str());
        if (it->second) {
            if (has_inline) {
                opts._values[arg] = inline_value;
            } else {
                if (i + 1 >= argc)
                    fatal("flag --%s needs a value", arg.c_str());
                opts._values[arg] = argv[++i];
            }
        } else {
            if (has_inline)
                fatal("flag --%s takes no value", arg.c_str());
            opts._values[arg] = "1";
        }
    }
    return opts;
}

std::string
CliOptions::str(const std::string &flag, const std::string &fallback) const
{
    auto it = _values.find(flag);
    return it == _values.end() ? fallback : it->second;
}

std::uint64_t
CliOptions::num(const std::string &flag, std::uint64_t fallback) const
{
    auto it = _values.find(flag);
    if (it == _values.end())
        return fallback;
    try {
        return std::stoull(it->second);
    } catch (...) {
        fatal("flag --%s: '%s' is not a number", flag.c_str(),
              it->second.c_str());
    }
}

ProtocolParams
parseProtocol(const std::string &name)
{
    std::string s = name;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "full-map" || s == "fullmap" || s == "full")
        return protocols::fullMap();
    if (s == "chained")
        return protocols::chained();
    if (s == "private-only" || s == "private") {
        ProtocolParams p;
        p.kind = ProtocolKind::privateOnly;
        return p;
    }
    // dir<i>nb / limitless<i>
    auto digits = [](const std::string &str, std::size_t pos) {
        unsigned v = 0;
        while (pos < str.size() && std::isdigit(
                   static_cast<unsigned char>(str[pos]))) {
            v = v * 10 + (str[pos] - '0');
            ++pos;
        }
        return v;
    };
    if (s.rfind("dir", 0) == 0) {
        const unsigned p = digits(s, 3);
        if (p >= 1 && p <= LimitedDir::maxPointers)
            return protocols::dirNB(p);
    }
    if (s.rfind("limitless", 0) == 0) {
        const unsigned p = digits(s, 9);
        if (p >= 1 && p <= LimitedDir::maxPointers)
            return protocols::limitlessStall(p, 50);
    }
    fatal("unknown protocol '%s' (try full-map, dir4nb, limitless4, "
          "chained, private-only)",
          name.c_str());
}

WorkloadFactory
makeWorkloadFactory(const std::string &name, unsigned iterations,
                    std::uint64_t seed)
{
    if (name == "multigrid") {
        MultigridParams wp;
        if (iterations)
            wp.iterations = iterations;
        return [wp] { return std::make_unique<Multigrid>(wp); };
    }
    if (name == "weather" || name == "weather-opt") {
        WeatherParams wp;
        wp.optimizeHotVariable = name == "weather-opt";
        if (iterations)
            wp.iterations = iterations;
        return [wp] { return std::make_unique<Weather>(wp); };
    }
    if (name == "hotspot") {
        HotspotParams hp;
        if (iterations)
            hp.iterations = iterations;
        return [hp] { return std::make_unique<Hotspot>(hp); };
    }
    if (name == "worker-set") {
        WorkerSetParams wp;
        if (iterations)
            wp.rounds = iterations;
        return [wp] { return std::make_unique<WorkerSetSweep>(wp); };
    }
    if (name == "migratory") {
        MigratoryParams mp;
        if (iterations)
            mp.rounds = iterations;
        return [mp] { return std::make_unique<Migratory>(mp); };
    }
    if (name == "transpose") {
        TransposeParams tp;
        if (iterations)
            tp.rounds = iterations;
        return [tp] { return std::make_unique<Transpose>(tp); };
    }
    if (name == "random-stress") {
        RandomStressParams rp;
        if (iterations)
            rp.opsPerProc = iterations;
        if (seed)
            rp.seed = seed;
        return [rp] { return std::make_unique<RandomStress>(rp); };
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"multigrid",  "weather",   "weather-opt",
            "hotspot",    "worker-set", "migratory",
            "transpose",  "random-stress"};
}

} // namespace limitless
