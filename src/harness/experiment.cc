#include "harness/experiment.hh"

#include "machine/coherence_monitor.hh"
#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

ExperimentOutcome
runExperiment(const MachineConfig &cfg,
              const WorkloadFactory &make_workload,
              const std::string &label)
{
    // The latency tracker is process-global; start each experiment with
    // a clean slate so phases reflect this run only.
    FlightRecorder::instance().latency().reset();

    Machine machine(cfg);
    std::unique_ptr<Workload> wl = make_workload();
    wl->install(machine);

    const RunResult run = machine.run();
    if (!run.completed)
        fatal("experiment '%s': did not complete", label.c_str());

    wl->verify(machine);
    CoherenceMonitor(machine).checkQuiescent();

    std::string telemetry_path;
    if (machine.telemetry() && !cfg.telemetryOut.empty()) {
        machine.writeTelemetry(cfg.telemetryOut);
        telemetry_path = cfg.telemetryOut;
    }

    ExperimentOutcome out;
    out.telemetryPath = telemetry_path;
    out.label = label.empty() ? cfg.protocol.name() : label;
    out.cycles = run.cycles;
    out.mcycles = static_cast<double>(run.cycles) / 1e6;
    out.completed = run.completed;
    out.remoteLatency = machine.meanAccumulator("cache", "remote_latency");
    out.overflowFraction = machine.overflowFraction();
    out.busyRetries = machine.sumCounter("cache", "busy_retries");
    out.evictions = machine.sumCounter("mem", "evictions");
    out.readTraps = machine.sumCounter("mem", "read_traps");
    out.writeTraps = machine.sumCounter("mem", "write_traps");
    out.invsSent = machine.sumCounter("mem", "invs_sent");
    if (const StatSet *net = machine.network().statSet())
        if (const Stat *s = net->find("packets"))
            out.networkPackets = static_cast<const Counter *>(s)->value();
    out.phases = FlightRecorder::instance().latency().snapshot();
    if (cfg.simThreads > 1)
        out.simThreads = cfg.simThreads;
    const TxnTracer &txn = FlightRecorder::instance().txn();
    if (txn.enabled()) {
        if (!cfg.txnTraceOut.empty())
            out.txnTracePath = machine.writeTxnTrace();
        out.txnQuantiles = txn.quantiles();
        out.txnCompleted = txn.completedCount();
    }
    return out;
}

namespace protocols
{

ProtocolParams
fullMap()
{
    ProtocolParams p;
    p.kind = ProtocolKind::fullMap;
    return p;
}

ProtocolParams
dirNB(unsigned pointers)
{
    ProtocolParams p;
    p.kind = ProtocolKind::limited;
    p.pointers = pointers;
    return p;
}

ProtocolParams
limitlessStall(unsigned pointers, Tick ts)
{
    ProtocolParams p;
    p.kind = ProtocolKind::limitless;
    p.pointers = pointers;
    p.softwareLatency = ts;
    p.limitlessMode = LimitlessMode::stallApprox;
    return p;
}

ProtocolParams
limitlessEmulated(unsigned pointers)
{
    ProtocolParams p;
    p.kind = ProtocolKind::limitless;
    p.pointers = pointers;
    p.limitlessMode = LimitlessMode::fullEmulation;
    return p;
}

ProtocolParams
chained()
{
    ProtocolParams p;
    p.kind = ProtocolKind::chained;
    return p;
}

} // namespace protocols

} // namespace limitless
