/**
 * @file
 * Experiment runner shared by the bench binaries: build a machine from a
 * config, install a fresh workload, run to completion, verify the
 * workload's data, check coherence invariants, and collect the headline
 * numbers the paper's figures report.
 */

#ifndef LIMITLESS_HARNESS_EXPERIMENT_HH
#define LIMITLESS_HARNESS_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>

#include "machine/machine.hh"
#include "obs/latency_tracker.hh"
#include "obs/txn_tracer.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Everything a figure row needs. */
struct ExperimentOutcome
{
    std::string label;
    Tick cycles = 0;
    double mcycles = 0.0;
    bool completed = false;
    double remoteLatency = 0.0;   ///< mean remote miss latency (Th proxy)
    double overflowFraction = 0.0; ///< the model's m
    std::uint64_t busyRetries = 0;
    std::uint64_t evictions = 0;
    std::uint64_t readTraps = 0;
    std::uint64_t writeTraps = 0;
    std::uint64_t invsSent = 0;
    std::uint64_t networkPackets = 0;

    /** Telemetry CSV written for this run (cfg.metricsInterval > 0 and
     *  cfg.telemetryOut set); empty when telemetry was off. */
    std::string telemetryPath;

    /** Mean per-phase decomposition of the remote-miss latency (request
     *  network / home service / software trap / invalidation fan-out /
     *  reply network), from the flight recorder's latency tracker. */
    PhaseBreakdown phases;

    /** Transaction-trace JSON written for this run (cfg.txnTraceOut
     *  set); empty when the tracer was off. */
    std::string txnTracePath;

    /** Per-phase latency reservoirs (p50/p95/p99) from the transaction
     *  tracer; count() == 0 when the tracer was off. Copied out of the
     *  worker thread's recorder, so a sweep can merge() outcomes from a
     *  ParallelRunner into machine-wide quantiles. */
    PhaseReservoirs txnQuantiles;

    /** Remote transactions the tracer completed (tracer on only). */
    std::uint64_t txnCompleted = 0;

    /** Parallel-kernel thread count the run asked for (cfg.simThreads
     *  when > 1); 0 for serial runs so the JSON key is omitted and
     *  pre-existing bench rows stay byte-identical. */
    unsigned simThreads = 0;
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/**
 * Run one (machine config, workload) experiment end to end.
 *
 * Verifies workload data and quiescent coherence invariants; any
 * violation aborts, so a bench that prints a row also certifies
 * correctness of that configuration.
 */
ExperimentOutcome runExperiment(const MachineConfig &cfg,
                                const WorkloadFactory &make_workload,
                                const std::string &label = "");

/** Convenience protocol configs used across figures. */
namespace protocols
{
    ProtocolParams fullMap();
    ProtocolParams dirNB(unsigned pointers);
    ProtocolParams limitlessStall(unsigned pointers, Tick ts);
    ProtocolParams limitlessEmulated(unsigned pointers);
    ProtocolParams chained();
}

} // namespace limitless

#endif // LIMITLESS_HARNESS_EXPERIMENT_HH
