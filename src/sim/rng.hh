/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * std::mt19937_64 would work, but a hand-rolled xoshiro keeps the state
 * small (32 bytes), is faster, and guarantees identical streams across
 * standard libraries, which matters for reproducible experiments.
 */

#ifndef LIMITLESS_SIM_RNG_HH
#define LIMITLESS_SIM_RNG_HH

#include <cassert>
#include <cstdint>

namespace limitless
{

/** Seedable xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64 expansion. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : _s)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound > 0);
        // Debiased via rejection sampling on the top range.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t _s[4];
};

} // namespace limitless

#endif // LIMITLESS_SIM_RNG_HH
