#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace limitless
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    assert(when >= _now && "cannot schedule into the past");
    _heap.push(Entry{when, priority, _seq++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() is const; the callback must be moved out, so
    // copy the cheap fields and move the callback via const_cast, which is
    // safe because we pop immediately and never re-compare the entry.
    Entry &top = const_cast<Entry &>(_heap.top());
    assert(top.when >= _now);
    _now = top.when;
    Callback cb = std::move(top.cb);
    _heap.pop();
    ++_executed;
    cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!_heap.empty() && _heap.top().when <= limit) {
        runOne();
        ++n;
    }
    if (_now < limit && !_heap.empty())
        _now = limit;
    else if (_heap.empty() && _now < limit)
        _now = limit;
    return n;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

Tick
EventQueue::nextEventTick() const
{
    return _heap.empty() ? maxTick : _heap.top().when;
}

} // namespace limitless
