#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/host_profiler.hh"

namespace limitless
{

EventQueue::EventQueue() : _slots(wheelSpan)
{
    // Pre-size the overflow heap so steady-state scheduling never grows
    // it; wheel buckets keep whatever capacity they reach, so after
    // warm-up a schedule() is a plain store into an existing vector.
    _overflow.reserve(1024);
}

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    assert(when >= _now && "cannot schedule into the past");
    Entry e(when, static_cast<std::uint32_t>(priority), _seq++,
            std::move(cb));
    if (when == _now && _sortedTick == _now) {
        // The current tick's bucket is mid-execution and sorted; insert
        // the new entry's index in order past the cursor so the walk
        // stays the global minimum. The entry itself just appends.
        std::vector<Entry> &slot = _slots[when & wheelMask];
        const auto pos = std::lower_bound(
            _order.begin() + static_cast<std::ptrdiff_t>(_cursor),
            _order.end(), e,
            [&slot](std::uint32_t idx, const Entry &b) {
                return slot[idx].before(b);
            });
        _order.insert(pos, static_cast<std::uint32_t>(slot.size()));
        slot.push_back(std::move(e));
    } else if (when - _now < wheelSpan)
        wheelInsert(std::move(e));
    else {
        _overflow.push_back(std::move(e));
        std::push_heap(_overflow.begin(), _overflow.end(), OverflowLater{});
    }
    ++_size;
}

void
EventQueue::wheelInsert(Entry &&e)
{
    const std::size_t slot = e.when & wheelMask;
    _slots[slot].push_back(std::move(e));
    _occupied[slot / 64] |= std::uint64_t{1} << (slot % 64);
}

void
EventQueue::migrateOverflow()
{
    while (!_overflow.empty() && _overflow.front().when - _now < wheelSpan) {
        std::pop_heap(_overflow.begin(), _overflow.end(), OverflowLater{});
        Entry e = std::move(_overflow.back());
        _overflow.pop_back();
        wheelInsert(std::move(e));
    }
}

Tick
EventQueue::wheelNextTick() const
{
    // Scan the occupancy bitmap circularly from now's slot. Every wheel
    // entry's tick is within [now, now + span), so the first occupied
    // slot at circular distance d holds exactly the events for now + d.
    constexpr std::size_t words = wheelSpan / 64;
    const std::size_t base = _now & wheelMask;
    const std::size_t baseWord = base / 64;
    const unsigned baseBit = base % 64;

    // First word: only bits at or above the base bit belong to [now, ...).
    std::uint64_t w = _occupied[baseWord] & (~std::uint64_t{0} << baseBit);
    if (w)
        return _now + (std::countr_zero(w) - baseBit);
    for (std::size_t i = 1; i <= words; ++i) {
        const std::size_t wi = (baseWord + i) % words;
        w = _occupied[wi];
        if (wi == baseWord) // wrapped: bits below base are now + span - ...
            w &= ~(~std::uint64_t{0} << baseBit);
        if (w) {
            const std::size_t slot = wi * 64 + std::countr_zero(w);
            const std::size_t dist = (slot + wheelSpan - base) & wheelMask;
            return _now + dist;
        }
    }
    return maxTick;
}

Tick
EventQueue::nextEventTick() const
{
    if (_size == 0)
        return maxTick;
    // Un-migrated overflow entries still carry their true tick, so the
    // minimum over both structures is exact without mutating state.
    const Tick wheel = wheelNextTick();
    const Tick over = _overflow.empty() ? maxTick : _overflow.front().when;
    return wheel < over ? wheel : over;
}

void
EventQueue::enterTick()
{
    // Enter the next occupied tick: advance _now, migrate overflow
    // entries the window now covers, and sort the tick's bucket once
    // so the cursor walk pops minima in O(1).
    const Tick t = nextEventTick();
    assert(t != maxTick && t >= _now);
    _now = t;
    migrateOverflow();

    std::vector<Entry> &entered = _slots[t & wheelMask];
    assert(!entered.empty());
    // Sort indices, not entries: moving 4-byte indices is far
    // cheaper than shuffling Entry objects (each move invokes the
    // InlineFunction manager), and the entries stay put so indices
    // stay valid across the bucket's push_backs.
    _order.resize(entered.size());
    for (std::uint32_t i = 0; i < _order.size(); ++i)
        _order[i] = i;
    std::sort(_order.begin(), _order.end(),
              [&entered](std::uint32_t a, std::uint32_t b) {
                  return entered[a].before(entered[b]);
              });
    _sortedTick = t;
    _cursor = 0;
}

void
EventQueue::finishBucket()
{
    std::vector<Entry> &slot = _slots[_now & wheelMask];
    slot.clear();
    _order.clear();
    _cursor = 0;
    _sortedTick = maxTick;
    const std::size_t s = _now & wheelMask;
    _occupied[s / 64] &= ~(std::uint64_t{1} << (s % 64));
}

bool
EventQueue::runOne()
{
    if (_size == 0)
        return false;

    if (_sortedTick != _now)
        enterTick();

    std::vector<Entry> &slot = _slots[_now & wheelMask];
    assert(_cursor < _order.size());
    Callback cb = std::move(slot[_order[_cursor]].cb);
    ++_cursor;
    --_size;
    ++_executed;
    cb();

    // Entries behind the cursor are spent; once the callback has had its
    // chance to add same-tick work, a fully-walked bucket resets.
    if (_cursor >= _order.size())
        finishBucket();
    return true;
}

std::uint64_t
EventQueue::runBurst(std::uint64_t max)
{
    PROF_SCOPE("eq.burst");
    std::uint64_t n = 0;
    while (n < max && _size != 0) {
        if (_sortedTick != _now)
            enterTick();
        // Dispatch the whole bucket through one tight loop. The slot and
        // order vectors must be re-indexed every iteration: a callback's
        // same-tick schedule() push_back can reallocate either one.
        while (n < max && _cursor < _order.size()) {
            Callback cb =
                std::move(_slots[_now & wheelMask][_order[_cursor]].cb);
            ++_cursor;
            --_size;
            ++_executed;
            ++n;
            cb();
        }
        if (_cursor >= _order.size())
            finishBucket();
    }
    return n;
}

void
EventQueue::advanceTo(Tick t)
{
    assert(t >= _now && "cannot advance into the past");
    assert(_sortedTick == maxTick && "advanceTo with a bucket mid-walk");
    assert(nextEventTick() >= t && "advanceTo would skip pending events");
    // Every wheel entry was inserted with when - now < span at a now no
    // later than t, and none is earlier than t, so all occupied slots
    // stay inside the new [t, t + span) window: no rehash needed.
    _now = t;
}

std::uint64_t
EventQueue::runTickBelow(Tick t, int prioLimit)
{
    const auto limit = static_cast<std::uint32_t>(prioLimit);
    std::uint64_t n = 0;
    while (_size != 0 && nextEventTick() == t) {
        if (_sortedTick != t)
            enterTick();
        std::vector<Entry> &slot = _slots[t & wheelMask];
        if (slot[_order[_cursor]].priority >= limit)
            break; // bucket stays mid-walk for runTickRemainder()
        Callback cb = std::move(slot[_order[_cursor]].cb);
        ++_cursor;
        --_size;
        ++_executed;
        ++n;
        cb();
        if (_cursor >= _order.size())
            finishBucket();
    }
    return n;
}

std::uint64_t
EventQueue::runTickRemainder(Tick t)
{
    std::uint64_t n = 0;
    while (_size != 0 && nextEventTick() == t) {
        if (_sortedTick != t)
            enterTick();
        std::vector<Entry> &slot = _slots[t & wheelMask];
        Callback cb = std::move(slot[_order[_cursor]].cb);
        ++_cursor;
        --_size;
        ++_executed;
        ++n;
        cb();
        if (_cursor >= _order.size())
            finishBucket();
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (_size != 0 && nextEventTick() <= limit) {
        runOne();
        ++n;
    }
    if (_now < limit)
        _now = limit;
    return n;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

} // namespace limitless
