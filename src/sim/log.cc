#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace limitless
{

void
Log::debug(Tick now, const char *tag, const char *fmt, ...)
{
    if (!enabled(tag))
        return;
    std::fprintf(stderr, "%10llu [%s] ",
                 static_cast<unsigned long long>(now), tag);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

namespace
{

PanicHook panicHook = nullptr;

} // namespace

PanicHook
setPanicHook(PanicHook hook)
{
    PanicHook prev = panicHook;
    panicHook = hook;
    return prev;
}

[[noreturn]] void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "panic: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    // Give the flight recorder a chance to dump its event ring, but
    // never recurse if the dump itself panics.
    static bool inPanic = false;
    if (panicHook && !inPanic) {
        inPanic = true;
        panicHook();
    }
    std::abort();
}

[[noreturn]] void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fatal: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

} // namespace limitless
