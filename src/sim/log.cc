#include "sim/log.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace limitless
{

void
Log::debug(Tick now, const char *tag, const char *fmt, ...)
{
    if (!enabled(tag))
        return;
    std::fprintf(stderr, "%10llu [%s] ",
                 static_cast<unsigned long long>(now), tag);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

namespace
{

// Atomic so parallel sweep workers (each thread's flight recorder installs
// the same hook on first use) can race here without UB.
std::atomic<PanicHook> panicHook{nullptr};

} // namespace

PanicHook
setPanicHook(PanicHook hook)
{
    return panicHook.exchange(hook);
}

[[noreturn]] void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "panic: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    // Give the flight recorder a chance to dump its event ring, but
    // never recurse if the dump itself panics.
    static bool inPanic = false;
    PanicHook hook = panicHook.load();
    if (hook && !inPanic) {
        inPanic = true;
        hook();
    }
    std::abort();
}

[[noreturn]] void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fatal: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

} // namespace limitless
