#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace limitless
{

[[noreturn]] void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "panic: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::abort();
}

[[noreturn]] void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "fatal: ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

} // namespace limitless
