/**
 * @file
 * Fundamental scalar types shared by every simulator component.
 */

#ifndef LIMITLESS_SIM_TYPES_HH
#define LIMITLESS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace limitless
{

/** Simulated time, in processor clock cycles (33 MHz in Alewife terms). */
using Tick = std::uint64_t;

/** Identifier of a processing node (processor + cache + memory + NIC). */
using NodeId = std::uint32_t;

/** A globally shared physical address, in bytes. */
using Addr = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "never" / unscheduled. */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Machine word size in bytes (Alewife is a 32-bit machine; we model
 *  64-bit words so workloads can store generation counters comfortably). */
inline constexpr unsigned bytesPerWord = 8;

} // namespace limitless

#endif // LIMITLESS_SIM_TYPES_HH
