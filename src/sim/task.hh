/**
 * @file
 * Coroutine task type used to express workload thread programs.
 *
 * A workload is written as an ordinary C++20 coroutine:
 *
 * @code
 * Task<> worker(ThreadApi &mem, ...)
 * {
 *     std::uint64_t v = co_await mem.read(addr);
 *     co_await mem.write(addr + 8, v + 1);
 *     co_await barrier.wait(mem);           // nested Task<>
 * }
 * @endcode
 *
 * Leaf awaitables (read/write/compute, defined in src/proc) suspend out to
 * the simulated processor, which resumes the coroutine when the memory
 * operation completes in simulated time. Task<T> itself only provides the
 * structured nesting: awaiting a child task transfers control into it and
 * resumes the parent when the child finishes (symmetric transfer, so deep
 * nesting does not grow the native stack).
 */

#ifndef LIMITLESS_SIM_TASK_HH
#define LIMITLESS_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace limitless
{

template <typename T = void>
class Task;

namespace task_detail
{

/** Behaviour shared by Task promises regardless of result type. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { error = std::current_exception(); }
};

} // namespace task_detail

/**
 * Lazily-started coroutine task returning T.
 *
 * The Task object owns the coroutine frame. A root task is kicked off with
 * start(); child tasks start when co_awaited.
 */
template <typename T>
class Task
{
  public:
    struct promise_type : task_detail::PromiseBase
    {
        T value{};

        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_value(T v) { value = std::move(v); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : _h(h) {}

    Task(Task &&other) noexcept : _h(std::exchange(other._h, nullptr)) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _h = std::exchange(other._h, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return !_h || _h.done(); }

    /** Start a root task (runs until its first suspension). */
    void
    start()
    {
        assert(_h && !_h.done());
        _h.resume();
    }

    /** Rethrow an exception that escaped the coroutine body, if any. */
    void
    rethrowIfFailed() const
    {
        if (_h && _h.promise().error)
            std::rethrow_exception(_h.promise().error);
    }

    /** Result after completion (root-task use). */
    const T &
    result() const
    {
        assert(done());
        rethrowIfFailed();
        return _h.promise().value;
    }

    /** Awaiting a Task starts it and resumes the awaiter on completion. */
    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> child;

            bool await_ready() const noexcept
            {
                return !child || child.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                child.promise().continuation = parent;
                return child;
            }

            T
            await_resume()
            {
                if (child.promise().error)
                    std::rethrow_exception(child.promise().error);
                return std::move(child.promise().value);
            }
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _h;
};

/** Void specialization. */
template <>
class Task<void>
{
  public:
    struct promise_type : task_detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_void() {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : _h(h) {}

    Task(Task &&other) noexcept : _h(std::exchange(other._h, nullptr)) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _h = std::exchange(other._h, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(_h); }
    bool done() const { return !_h || _h.done(); }

    void
    start()
    {
        assert(_h && !_h.done());
        _h.resume();
    }

    void
    rethrowIfFailed() const
    {
        if (_h && _h.promise().error)
            std::rethrow_exception(_h.promise().error);
    }

    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> child;

            bool await_ready() const noexcept
            {
                return !child || child.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                child.promise().continuation = parent;
                return child;
            }

            void
            await_resume()
            {
                if (child.promise().error)
                    std::rethrow_exception(child.promise().error);
            }
        };
        return Awaiter{_h};
    }

  private:
    void
    destroy()
    {
        if (_h) {
            _h.destroy();
            _h = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _h;
};

} // namespace limitless

#endif // LIMITLESS_SIM_TASK_HH
