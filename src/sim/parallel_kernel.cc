#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

#include "obs/host_profiler.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace limitless
{

ParallelKernel::ParallelKernel(std::vector<EventQueue *> queues,
                               ParallelCoupling *coupling, Tick lookahead,
                               ParallelKernelStats *stats)
    : _queues(std::move(queues)), _coupling(coupling), _stats(stats)
{
    if (_queues.empty())
        panic("parallel kernel needs at least one partition");
    if (lookahead < 1)
        panic("parallel kernel needs a lookahead of at least one tick "
              "(topology reported %llu): with zero cross-partition "
              "latency, same-window execution would be unsound",
              static_cast<unsigned long long>(lookahead));
    if (_stats) {
        if (_stats->partitions != _queues.size())
            panic("parallel kernel stats sized for %u partitions, run "
                  "has %zu",
                  _stats->partitions, _queues.size());
        _stats->lookahead = lookahead;
    }
}

void
ParallelKernel::run(const Hooks &hooks)
{
    using Clock = std::chrono::steady_clock;
    const unsigned P = static_cast<unsigned>(_queues.size());
    const Clock::time_point runStart = Clock::now();

    // Written only by the coordinator between barriers; each barrier
    // arrival publishes the write to every worker (and the workers'
    // queue mutations back to the coordinator).
    struct Window
    {
        Tick t = 0;
        bool net = false;
        bool stop = false;
    };
    Window window;

    std::barrier bar(static_cast<std::ptrdiff_t>(P));

    // Barrier arrival, optionally timed into the partition's wait
    // counter: a partition that always arrives last waits ~0 and is the
    // bottleneck; large waits mark partitions starved by imbalance.
    auto wait = [&](unsigned p) {
        if (!_stats) {
            bar.arrive_and_wait();
            return;
        }
        PROF_SCOPE("pk.barrier");
        const Clock::time_point t0 = Clock::now();
        bar.arrive_and_wait();
        _stats->parts[p].barrierWaitNs.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count()),
            std::memory_order_relaxed);
    };

    // Pick the next window: the globally earliest pending tick over
    // every partition queue and the coupling. All queues align on it so
    // same-tick schedules land in the mid-execution ordered-insert path
    // exactly as they would serially.
    auto publish = [&]() {
        const Tick net_t =
            _coupling ? _coupling->nextCoupledTick() : maxTick;
        Tick t = net_t;
        for (EventQueue *q : _queues)
            t = std::min(t, q->nextEventTick());
        if (t == maxTick) {
            window.stop = true; // drained everywhere: the run is over
            return;
        }
        for (EventQueue *q : _queues)
            q->advanceTo(t);
        window.t = t;
        window.net = net_t == t;
        window.stop = false;
    };

    auto body = [&](unsigned p) {
        PROF_SCOPE("pk.worker");
        if (hooks.threadInit)
            hooks.threadInit(p);
        if (p == 0)
            publish();
        for (;;) {
            wait(p); // window published
            if (window.stop)
                break;
            const Tick t = window.t;
            if (window.net) {
                {
                    PROF_SCOPE("pk.plan");
                    _coupling->planShard(p);
                }
                wait(p);
                {
                    PROF_SCOPE("pk.apply");
                    _coupling->applyShard(p);
                }
                wait(p);
                {
                    PROF_SCOPE("pk.drain");
                    _coupling->drainShard(p);
                }
                wait(p);
            }
            {
                PROF_SCOPE("pk.exec");
                _queues[p]->runTickBelow(t, EventPriority::stats);
            }
            wait(p); // window executed below stats
            if (p != 0)
                continue;
            // Coordinator tail, serial while the workers park at the
            // window barrier: flush the coupling's stat shards first so
            // the samplers and monitors in the stats remainder observe
            // exactly the serial kernel's counter values.
            PROF_SCOPE("pk.tail");
            const Clock::time_point tail0 =
                _stats ? Clock::now() : Clock::time_point{};
            if (_stats) {
                _stats->windows += 1;
                if (window.net)
                    _stats->coupledWindows += 1;
            }
            if (_coupling)
                _coupling->coupledEpilogue(t, window.net);
            for (EventQueue *q : _queues)
                q->runTickRemainder(t);
            if (hooks.onWindow && !hooks.onWindow(t))
                window.stop = true;
            else
                publish();
            if (_stats)
                _stats->serialTailSeconds +=
                    std::chrono::duration<double>(Clock::now() - tail0)
                        .count();
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(P - 1);
    for (unsigned p = 1; p < P; ++p)
        workers.emplace_back(body, p);
    body(0);
    for (std::thread &w : workers)
        w.join();

    if (_stats)
        _stats->runSeconds +=
            std::chrono::duration<double>(Clock::now() - runStart).count();
}

} // namespace limitless
