#include "sim/parallel_kernel.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace limitless
{

ParallelKernel::ParallelKernel(std::vector<EventQueue *> queues,
                               ParallelCoupling *coupling, Tick lookahead)
    : _queues(std::move(queues)), _coupling(coupling)
{
    if (_queues.empty())
        panic("parallel kernel needs at least one partition");
    if (lookahead < 1)
        panic("parallel kernel needs a lookahead of at least one tick "
              "(topology reported %llu): with zero cross-partition "
              "latency, same-window execution would be unsound",
              static_cast<unsigned long long>(lookahead));
}

void
ParallelKernel::run(const Hooks &hooks)
{
    const unsigned P = static_cast<unsigned>(_queues.size());

    // Written only by the coordinator between barriers; each barrier
    // arrival publishes the write to every worker (and the workers'
    // queue mutations back to the coordinator).
    struct Window
    {
        Tick t = 0;
        bool net = false;
        bool stop = false;
    };
    Window window;

    std::barrier bar(static_cast<std::ptrdiff_t>(P));

    // Pick the next window: the globally earliest pending tick over
    // every partition queue and the coupling. All queues align on it so
    // same-tick schedules land in the mid-execution ordered-insert path
    // exactly as they would serially.
    auto publish = [&]() {
        const Tick net_t =
            _coupling ? _coupling->nextCoupledTick() : maxTick;
        Tick t = net_t;
        for (EventQueue *q : _queues)
            t = std::min(t, q->nextEventTick());
        if (t == maxTick) {
            window.stop = true; // drained everywhere: the run is over
            return;
        }
        for (EventQueue *q : _queues)
            q->advanceTo(t);
        window.t = t;
        window.net = net_t == t;
        window.stop = false;
    };

    auto body = [&](unsigned p) {
        if (hooks.threadInit)
            hooks.threadInit(p);
        if (p == 0)
            publish();
        for (;;) {
            bar.arrive_and_wait(); // window published
            if (window.stop)
                break;
            const Tick t = window.t;
            if (window.net) {
                _coupling->planShard(p);
                bar.arrive_and_wait();
                _coupling->applyShard(p);
                bar.arrive_and_wait();
                _coupling->drainShard(p);
                bar.arrive_and_wait();
            }
            _queues[p]->runTickBelow(t, EventPriority::stats);
            bar.arrive_and_wait(); // window executed below stats
            if (p != 0)
                continue;
            // Coordinator tail, serial while the workers park at the
            // window barrier: flush the coupling's stat shards first so
            // the samplers and monitors in the stats remainder observe
            // exactly the serial kernel's counter values.
            if (_coupling)
                _coupling->coupledEpilogue(t, window.net);
            for (EventQueue *q : _queues)
                q->runTickRemainder(t);
            if (hooks.onWindow && !hooks.onWindow(t))
                window.stop = true;
            else
                publish();
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(P - 1);
    for (unsigned p = 1; p < P; ++p)
        workers.emplace_back(body, p);
    body(0);
    for (std::thread &w : workers)
        w.join();
}

} // namespace limitless
