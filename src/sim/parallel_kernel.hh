/**
 * @file
 * Conservative parallel discrete-event kernel.
 *
 * One simulated machine's nodes are sharded into P spatial partitions,
 * each driven by its own EventQueue that preserves the deterministic
 * (tick, priority, seq) order *within* the partition. Partitions
 * synchronize with a bounded-window conservative protocol: the
 * coordinator picks the globally earliest pending tick T, every
 * partition executes its tick-T events concurrently, and a barrier
 * separates windows. The protocol is safe because the only
 * cross-partition influence is the interconnect, whose minimum
 * cross-node latency (Topology::minHopLookahead, >= 1 network clock)
 * guarantees that nothing a partition does at tick T can affect another
 * partition before tick T + lookahead — i.e. never inside the current
 * window.
 *
 * The fabric itself spans partitions, so its per-tick work runs as
 * three barrier-separated phases through the ParallelCoupling
 * interface: a read-only *plan* over stable state, a partition-local
 * *apply* that stages cross-partition flit movements into per-(src,dst)
 * SPSC channels, and a *drain* that lands the staged movements at the
 * destination partition. Each phase only writes partition-owned state,
 * and the barriers between phases publish every write before anyone
 * reads it, so the combined effect is bit-identical to the serial
 * network tick for any thread count (docs/PERFORMANCE.md has the
 * argument in full).
 *
 * The window tail (events at priority EventPriority::stats and above:
 * telemetry samplers, monitors) runs serially on the coordinator —
 * those observers read machine-wide state and are rare, so serializing
 * them costs nothing and keeps their view identical to the serial
 * kernel's.
 */

#ifndef LIMITLESS_SIM_PARALLEL_KERNEL_HH
#define LIMITLESS_SIM_PARALLEL_KERNEL_HH

#include <functional>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

class EventQueue;

/**
 * The one simulation object that spans partitions (the wormhole
 * fabric). Its per-tick work is decomposed into three phases the kernel
 * runs on every partition's thread, barrier-separated; bookkeeping that
 * must be serial (stat-shard flushes, next-tick computation) lands in
 * the epilogue on the coordinator thread while the workers are parked
 * at the window barrier.
 */
class ParallelCoupling
{
  public:
    virtual ~ParallelCoupling() = default;

    /** Earliest tick at which the coupling has work; maxTick = idle.
     *  Only called from the coordinator between windows. */
    virtual Tick nextCoupledTick() const = 0;

    /** Phase 1: plan partition @p p's share against stable pre-tick
     *  state. Must not write anything another partition reads. */
    virtual void planShard(unsigned p) = 0;

    /** Phase 2: apply partition-local effects of the plan; stage
     *  cross-partition effects into SPSC channels. */
    virtual void applyShard(unsigned p) = 0;

    /** Phase 3: land every staged effect addressed to partition @p p,
     *  in source-partition order (deterministic). */
    virtual void drainShard(unsigned p) = 0;

    /**
     * Serial window epilogue on the coordinator (workers parked):
     * flush per-partition stat shards, recompute the next coupled
     * tick. @p window is the tick just executed; @p ranCoupled says
     * whether the three phases ran this window.
     */
    virtual void coupledEpilogue(Tick window, bool ranCoupled) = 0;
};

/**
 * The windowed SPMD loop. The caller's thread acts as partition 0's
 * worker *and* the coordinator; P-1 further threads are spawned for
 * the run and joined before run() returns, so a serial caller sees a
 * plain blocking call.
 */
class ParallelKernel
{
  public:
    struct Hooks
    {
        /** Runs once on each partition's thread (including the caller
         *  thread for partition 0) before the first window; the seam
         *  for thread_local setup (flight-recorder defer buffers). */
        std::function<void(unsigned p)> threadInit;

        /**
         * Runs on the coordinator after every fully-executed window.
         * Return false to stop the run (completion, max-cycles,
         * watchdog). The run also stops by itself when every queue and
         * the coupling are drained.
         */
        std::function<bool(Tick window)> onWindow;
    };

    /**
     * @param queues   one EventQueue per partition, index = partition
     * @param coupling the cross-partition fabric, or nullptr when the
     *                 partitions are fully independent
     * @param lookahead minimum cross-partition latency in ticks
     *                  (Topology::minHopLookahead); must be >= 1 or
     *                  windowed execution would be unsound
     */
    ParallelKernel(std::vector<EventQueue *> queues,
                   ParallelCoupling *coupling, Tick lookahead);

    /** Execute windows until drained or hooks.onWindow returns false. */
    void run(const Hooks &hooks);

  private:
    std::vector<EventQueue *> _queues;
    ParallelCoupling *_coupling;
};

} // namespace limitless

#endif // LIMITLESS_SIM_PARALLEL_KERNEL_HH
