/**
 * @file
 * Conservative parallel discrete-event kernel.
 *
 * One simulated machine's nodes are sharded into P spatial partitions,
 * each driven by its own EventQueue that preserves the deterministic
 * (tick, priority, seq) order *within* the partition. Partitions
 * synchronize with a bounded-window conservative protocol: the
 * coordinator picks the globally earliest pending tick T, every
 * partition executes its tick-T events concurrently, and a barrier
 * separates windows. The protocol is safe because the only
 * cross-partition influence is the interconnect, whose minimum
 * cross-node latency (Topology::minHopLookahead, >= 1 network clock)
 * guarantees that nothing a partition does at tick T can affect another
 * partition before tick T + lookahead — i.e. never inside the current
 * window.
 *
 * The fabric itself spans partitions, so its per-tick work runs as
 * three barrier-separated phases through the ParallelCoupling
 * interface: a read-only *plan* over stable state, a partition-local
 * *apply* that stages cross-partition flit movements into per-(src,dst)
 * SPSC channels, and a *drain* that lands the staged movements at the
 * destination partition. Each phase only writes partition-owned state,
 * and the barriers between phases publish every write before anyone
 * reads it, so the combined effect is bit-identical to the serial
 * network tick for any thread count (docs/PERFORMANCE.md has the
 * argument in full).
 *
 * The window tail (events at priority EventPriority::stats and above:
 * telemetry samplers, monitors) runs serially on the coordinator —
 * those observers read machine-wide state and are rare, so serializing
 * them costs nothing and keeps their view identical to the serial
 * kernel's.
 */

#ifndef LIMITLESS_SIM_PARALLEL_KERNEL_HH
#define LIMITLESS_SIM_PARALLEL_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

class EventQueue;

/**
 * Host-side utilization accounting for one parallel run: window counts,
 * per-partition barrier-wait time (the load-imbalance signal), and the
 * serial stats-tail fraction. Purely observational — collecting it
 * never changes simulated results.
 *
 * Write/read discipline: the scalar fields are written only by the
 * coordinator (partition 0) and read in the serial window tail
 * (telemetry samplers) or after run() — never concurrently with a
 * writer. Each partition's barrierWaitNs is written only by that
 * partition's thread, but a worker records its wait *after* waking from
 * a barrier, concurrently with the coordinator's serial tail — so that
 * one field is a relaxed atomic (monotone counter; a sampler may miss
 * the latest addition but never tears).
 */
struct ParallelKernelStats
{
    struct alignas(64) Part
    {
        std::atomic<std::uint64_t> barrierWaitNs{0};
        /** Events executed by this partition; filled by the machine
         *  after run() from the queue's executed counter. */
        std::uint64_t events = 0;
    };

    explicit ParallelKernelStats(unsigned partitions)
        : partitions(partitions),
          parts(std::make_unique<Part[]>(partitions))
    {
    }

    unsigned partitions;
    std::unique_ptr<Part[]> parts;

    std::uint64_t windows = 0;        ///< windows executed
    std::uint64_t coupledWindows = 0; ///< windows that ran the fabric
    Tick lookahead = 0;               ///< window bound (min hop latency)
    double serialTailSeconds = 0.0;   ///< coordinator-only stats tail
    double runSeconds = 0.0;          ///< whole run() wall time

    double
    barrierWaitSeconds(unsigned p) const
    {
        return static_cast<double>(
                   parts[p].barrierWaitNs.load(std::memory_order_relaxed)) *
               1e-9;
    }
};

/**
 * The one simulation object that spans partitions (the wormhole
 * fabric). Its per-tick work is decomposed into three phases the kernel
 * runs on every partition's thread, barrier-separated; bookkeeping that
 * must be serial (stat-shard flushes, next-tick computation) lands in
 * the epilogue on the coordinator thread while the workers are parked
 * at the window barrier.
 */
class ParallelCoupling
{
  public:
    virtual ~ParallelCoupling() = default;

    /** Earliest tick at which the coupling has work; maxTick = idle.
     *  Only called from the coordinator between windows. */
    virtual Tick nextCoupledTick() const = 0;

    /** Phase 1: plan partition @p p's share against stable pre-tick
     *  state. Must not write anything another partition reads. */
    virtual void planShard(unsigned p) = 0;

    /** Phase 2: apply partition-local effects of the plan; stage
     *  cross-partition effects into SPSC channels. */
    virtual void applyShard(unsigned p) = 0;

    /** Phase 3: land every staged effect addressed to partition @p p,
     *  in source-partition order (deterministic). */
    virtual void drainShard(unsigned p) = 0;

    /**
     * Serial window epilogue on the coordinator (workers parked):
     * flush per-partition stat shards, recompute the next coupled
     * tick. @p window is the tick just executed; @p ranCoupled says
     * whether the three phases ran this window.
     */
    virtual void coupledEpilogue(Tick window, bool ranCoupled) = 0;
};

/**
 * The windowed SPMD loop. The caller's thread acts as partition 0's
 * worker *and* the coordinator; P-1 further threads are spawned for
 * the run and joined before run() returns, so a serial caller sees a
 * plain blocking call.
 */
class ParallelKernel
{
  public:
    struct Hooks
    {
        /** Runs once on each partition's thread (including the caller
         *  thread for partition 0) before the first window; the seam
         *  for thread_local setup (flight-recorder defer buffers). */
        std::function<void(unsigned p)> threadInit;

        /**
         * Runs on the coordinator after every fully-executed window.
         * Return false to stop the run (completion, max-cycles,
         * watchdog). The run also stops by itself when every queue and
         * the coupling are drained.
         */
        std::function<bool(Tick window)> onWindow;
    };

    /**
     * @param queues   one EventQueue per partition, index = partition
     * @param coupling the cross-partition fabric, or nullptr when the
     *                 partitions are fully independent
     * @param lookahead minimum cross-partition latency in ticks
     *                  (Topology::minHopLookahead); must be >= 1 or
     *                  windowed execution would be unsound
     * @param stats    optional utilization accounting, filled during
     *                 run(); nullptr keeps the loop free of clock reads
     */
    ParallelKernel(std::vector<EventQueue *> queues,
                   ParallelCoupling *coupling, Tick lookahead,
                   ParallelKernelStats *stats = nullptr);

    /** Execute windows until drained or hooks.onWindow returns false. */
    void run(const Hooks &hooks);

  private:
    std::vector<EventQueue *> _queues;
    ParallelCoupling *_coupling;
    ParallelKernelStats *_stats;
};

} // namespace limitless

#endif // LIMITLESS_SIM_PARALLEL_KERNEL_HH
