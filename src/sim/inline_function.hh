/**
 * @file
 * Small-buffer type-erased callable for the event core.
 *
 * std::function heap-allocates once a capture outgrows its tiny internal
 * buffer (16 bytes on libstdc++), which puts an allocator round trip on
 * every scheduled event. InlineFunction stores the callable inline in a
 * caller-chosen buffer (48 bytes by default — enough for a `this`
 * pointer plus a handful of words, which covers every hot scheduling
 * site in the simulator) and only falls back to the heap for oversized
 * captures. It is move-only, so callables owning move-only resources
 * (PacketPtr, coroutine handles) can be scheduled directly.
 *
 * Use `InlineFunction<void()>::fitsInline<F>` in a static_assert at a
 * hot call site to prove its capture never allocates.
 */

#ifndef LIMITLESS_SIM_INLINE_FUNCTION_HH
#define LIMITLESS_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace limitless
{

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction; // undefined; only the R(Args...) partial below

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    static constexpr std::size_t inlineCapacity = Capacity;

    /** True when F is stored in the inline buffer (no allocation). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(f));
            _vt = &inlineVTable<Fn>;
        } else {
            // Oversized capture: box it; the buffer holds only Fn*.
            ::new (static_cast<void *>(_buf))
                Fn *(new Fn(std::forward<F>(f)));
            _vt = &boxedVTable<Fn>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return _vt != nullptr; }

    R
    operator()(Args... args) const
    {
        return _vt->invoke(const_cast<unsigned char *>(_buf),
                           std::forward<Args>(args)...);
    }

    void
    reset() noexcept
    {
        if (_vt) {
            _vt->destroy(_buf);
            _vt = nullptr;
        }
    }

    /** True when the held callable lives in the inline buffer. */
    bool storedInline() const noexcept { return _vt && _vt->isInline; }

  private:
    struct VTable
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *from, void *to) noexcept; ///< move + destroy
        void (*destroy)(void *) noexcept;
        bool isInline;
    };

    template <typename Fn>
    static constexpr VTable inlineVTable = {
        [](void *buf, Args &&...args) -> R {
            return (*static_cast<Fn *>(buf))(std::forward<Args>(args)...);
        },
        [](void *from, void *to) noexcept {
            Fn *src = static_cast<Fn *>(from);
            ::new (to) Fn(std::move(*src));
            src->~Fn();
        },
        [](void *buf) noexcept { static_cast<Fn *>(buf)->~Fn(); },
        true,
    };

    template <typename Fn>
    static constexpr VTable boxedVTable = {
        [](void *buf, Args &&...args) -> R {
            return (**static_cast<Fn **>(buf))(std::forward<Args>(args)...);
        },
        [](void *from, void *to) noexcept {
            ::new (to) Fn *(*static_cast<Fn **>(from));
        },
        [](void *buf) noexcept { delete *static_cast<Fn **>(buf); },
        false,
    };

    void
    moveFrom(InlineFunction &&other) noexcept
    {
        if (other._vt) {
            other._vt->relocate(other._buf, _buf);
            _vt = other._vt;
            other._vt = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[Capacity];
    const VTable *_vt = nullptr;
};

} // namespace limitless

#endif // LIMITLESS_SIM_INLINE_FUNCTION_HH
