/**
 * @file
 * Lightweight tagged logging for simulator debugging.
 *
 * Logging is off by default; tests and debugging sessions enable it per
 * component tag. Formatting cost is avoided entirely when a tag is
 * disabled.
 */

#ifndef LIMITLESS_SIM_LOG_HH
#define LIMITLESS_SIM_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "sim/types.hh"

/**
 * Mark a function as taking a printf-style format string so the
 * compiler cross-checks arguments against it. @p fmtIdx / @p vaIdx are
 * 1-based parameter positions (static member functions have no
 * implicit `this`).
 */
#if defined(__GNUC__) || defined(__clang__)
#define LIMITLESS_PRINTF(fmtIdx, vaIdx) \
    __attribute__((format(printf, fmtIdx, vaIdx)))
#else
#define LIMITLESS_PRINTF(fmtIdx, vaIdx)
#endif

namespace limitless
{

/** Global debug-log configuration (per-process, not per-machine). */
class Log
{
  public:
    /** Enable a component tag, e.g. "mem", "cache", "net", or "all". */
    static void enable(const std::string &tag) { tags().insert(tag); }
    static void disable(const std::string &tag) { tags().erase(tag); }
    static void disableAll() { tags().clear(); }

    static bool
    enabled(const char *tag)
    {
        const auto &t = tags();
        if (t.empty())
            return false;
        return t.count("all") || t.count(tag);
    }

    /** printf-style debug line, prefixed by tick and tag. */
    static void debug(Tick now, const char *tag, const char *fmt, ...)
        LIMITLESS_PRINTF(3, 4);

  private:
    static std::unordered_set<std::string> &
    tags()
    {
        static std::unordered_set<std::string> instance;
        return instance;
    }
};

/**
 * Abort with a message: a simulator bug (never the user's fault).
 * Mirrors gem5's panic().
 */
[[noreturn]] void panic(const char *fmt, ...) LIMITLESS_PRINTF(1, 2);

/**
 * Exit with a message: a configuration / usage error.
 * Mirrors gem5's fatal().
 */
[[noreturn]] void fatal(const char *fmt, ...) LIMITLESS_PRINTF(1, 2);

/**
 * Hook run by panic() after the message and before abort(), used by the
 * flight recorder to dump its postmortem event ring. Returns the
 * previous hook. Reentrant panics skip the hook.
 */
using PanicHook = void (*)();
PanicHook setPanicHook(PanicHook hook);

} // namespace limitless

#endif // LIMITLESS_SIM_LOG_HH
