/**
 * @file
 * Lightweight tagged logging for simulator debugging.
 *
 * Logging is off by default; tests and debugging sessions enable it per
 * component tag. Formatting cost is avoided entirely when a tag is
 * disabled.
 */

#ifndef LIMITLESS_SIM_LOG_HH
#define LIMITLESS_SIM_LOG_HH

#include <cstdio>
#include <string>
#include <unordered_set>

#include "sim/types.hh"

namespace limitless
{

/** Global debug-log configuration (per-process, not per-machine). */
class Log
{
  public:
    /** Enable a component tag, e.g. "mem", "cache", "net", or "all". */
    static void enable(const std::string &tag) { tags().insert(tag); }
    static void disable(const std::string &tag) { tags().erase(tag); }
    static void disableAll() { tags().clear(); }

    static bool
    enabled(const char *tag)
    {
        const auto &t = tags();
        if (t.empty())
            return false;
        return t.count("all") || t.count(tag);
    }

    /** printf-style debug line, prefixed by tick and tag. */
    template <typename... Args>
    static void
    debug(Tick now, const char *tag, const char *fmt, Args... args)
    {
        if (!enabled(tag))
            return;
        std::fprintf(stderr, "%10llu [%s] ",
                     static_cast<unsigned long long>(now), tag);
        std::fprintf(stderr, fmt, args...);
        std::fputc('\n', stderr);
    }

    static void
    debug(Tick now, const char *tag, const char *msg)
    {
        if (!enabled(tag))
            return;
        std::fprintf(stderr, "%10llu [%s] %s\n",
                     static_cast<unsigned long long>(now), tag, msg);
    }

  private:
    static std::unordered_set<std::string> &
    tags()
    {
        static std::unordered_set<std::string> instance;
        return instance;
    }
};

/**
 * Abort with a message: a simulator bug (never the user's fault).
 * Mirrors gem5's panic().
 */
[[noreturn]] void panic(const char *fmt, ...);

/**
 * Exit with a message: a configuration / usage error.
 * Mirrors gem5's fatal().
 */
[[noreturn]] void fatal(const char *fmt, ...);

} // namespace limitless

#endif // LIMITLESS_SIM_LOG_HH
