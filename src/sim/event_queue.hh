/**
 * @file
 * Deterministic event queue driving the whole simulation.
 *
 * A single EventQueue instance serializes every component of one simulated
 * machine. Events at the same tick execute in (priority, insertion-order)
 * order, which makes runs bit-reproducible for a fixed seed.
 */

#ifndef LIMITLESS_SIM_EVENT_QUEUE_HH
#define LIMITLESS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

/** Scheduling priorities for same-tick events (lower runs first). */
namespace EventPriority
{
    inline constexpr int network = 0;   ///< move flits before consumers
    inline constexpr int deliver = 10;  ///< hand packets to controllers
    inline constexpr int ctrl = 20;     ///< cache / memory controller work
    inline constexpr int cpu = 30;      ///< processor issue / resume
    inline constexpr int stats = 90;    ///< samplers and monitors
}

/**
 * Priority-queue based discrete event scheduler.
 *
 * Not thread-safe; one queue per simulated machine.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute tick; must be >= now()
     * @param cb   callback to run
     * @param priority same-tick ordering (EventPriority)
     */
    void schedule(Tick when, Callback cb, int priority = EventPriority::ctrl);

    /** Schedule relative to now(). */
    void
    scheduleIn(Tick delta, Callback cb, int priority = EventPriority::ctrl)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    /** Execute the single earliest event. @return false if queue empty. */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit. Events scheduled exactly at @p limit still run.
     *
     * @return number of events executed
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return number of events executed. */
    std::uint64_t run();

    bool empty() const { return _heap.empty(); }
    std::size_t pendingEvents() const { return _heap.size(); }
    std::uint64_t executedEvents() const { return _executed; }

    /** Earliest pending tick, or maxTick when empty. */
    Tick nextEventTick() const;

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace limitless

#endif // LIMITLESS_SIM_EVENT_QUEUE_HH
