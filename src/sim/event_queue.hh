/**
 * @file
 * Deterministic event queue driving the whole simulation.
 *
 * A single EventQueue instance serializes every component of one simulated
 * machine. Events at the same tick execute in (priority, insertion-order)
 * order, which makes runs bit-reproducible for a fixed seed.
 *
 * Internally the queue is a single-level timing wheel over the near
 * horizon (the next `wheelSpan` ticks, which covers network hops,
 * controller latencies and trap costs — the overwhelming majority of
 * schedules) with a binary-heap overflow for far-future events. Both
 * structures order entries by the same (tick, priority, seq) key, so the
 * execution order is bit-identical to a plain priority queue; a property
 * test (tests/test_event_queue.cc) cross-checks this against a reference
 * heap scheduler on randomized workloads. Callbacks are stored in an
 * InlineFunction so scheduling an event never touches the allocator for
 * captures up to 48 bytes.
 */

#ifndef LIMITLESS_SIM_EVENT_QUEUE_HH
#define LIMITLESS_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace limitless
{

/** Scheduling priorities for same-tick events (lower runs first). */
namespace EventPriority
{
    inline constexpr int network = 0;   ///< move flits before consumers
    inline constexpr int deliver = 10;  ///< hand packets to controllers
    inline constexpr int ctrl = 20;     ///< cache / memory controller work
    inline constexpr int cpu = 30;      ///< processor issue / resume
    inline constexpr int stats = 90;    ///< samplers and monitors
}

/**
 * Timing-wheel based discrete event scheduler.
 *
 * Not thread-safe; one queue per simulated machine.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<void(), 48>;

    EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute tick; must be >= now()
     * @param cb   callback to run
     * @param priority same-tick ordering (EventPriority)
     */
    void schedule(Tick when, Callback cb, int priority = EventPriority::ctrl);

    /** Schedule relative to now(). */
    void
    scheduleIn(Tick delta, Callback cb, int priority = EventPriority::ctrl)
    {
        schedule(_now + delta, std::move(cb), priority);
    }

    /** Execute the single earliest event. @return false if queue empty. */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p limit. Events scheduled exactly at @p limit still run.
     *
     * @return number of events executed
     */
    std::uint64_t runUntil(Tick limit);

    /** Run until the queue is empty. @return number of events executed. */
    std::uint64_t run();

    /**
     * Execute up to @p max earliest events through one batched loop.
     * Identical (tick, priority, seq) execution order to @p max calls of
     * runOne(), but the tick-entry work (advance, overflow migration,
     * bucket sort) is hoisted out of the per-event path: a whole wheel
     * slot's entries dispatch through one tight indirect-call loop.
     *
     * @return number of events executed (< max only when drained)
     */
    std::uint64_t runBurst(std::uint64_t max);

    /**
     * Advance now() to @p t without executing anything. Requires that no
     * event is pending before @p t and no tick bucket is mid-execution.
     * Used by the parallel kernel to align partition queues on a window
     * boundary chosen globally (the queue's own nextEventTick() may be
     * later than the window start).
     */
    void advanceTo(Tick t);

    /**
     * Execute events at exactly tick @p t whose priority is below
     * @p prioLimit, stopping (bucket mid-walk) at the first event at or
     * above the limit. Events a callback schedules for the same tick are
     * honoured, exactly as in runOne(). No-op when the earliest pending
     * event is not at @p t.
     *
     * Parallel kernel: each partition runs its tick-@p t events below
     * EventPriority::stats concurrently, then the coordinator finishes
     * every queue's remainder serially (samplers and monitors observe
     * cross-partition state).
     *
     * @return number of events executed
     */
    std::uint64_t runTickBelow(Tick t, int prioLimit);

    /** Execute every remaining event at exactly tick @p t (including any
     *  the callbacks add at @p t). @return number executed. */
    std::uint64_t runTickRemainder(Tick t);

    bool empty() const { return _size == 0; }
    std::size_t pendingEvents() const { return _size; }
    std::uint64_t executedEvents() const { return _executed; }

    /** Earliest pending tick, or maxTick when empty. */
    Tick nextEventTick() const;

  private:
    /** Near-horizon window: events within `wheelSpan` ticks of now()
     *  land in the wheel; everything else waits in the overflow heap
     *  until the window reaches it. */
    static constexpr unsigned wheelBits = 10;
    static constexpr Tick wheelSpan = Tick{1} << wheelBits;
    static constexpr Tick wheelMask = wheelSpan - 1;

    struct Entry
    {
        Tick when;
        std::uint32_t priority;
        std::uint64_t seq;
        Callback cb;

        // Entries are moved, never copied: deleting the copy operations
        // proves no container churn silently duplicates a callback.
        Entry(Tick w, std::uint32_t p, std::uint64_t s, Callback c)
            : when(w), priority(p), seq(s), cb(std::move(c))
        {}
        Entry(Entry &&) noexcept = default;
        Entry &operator=(Entry &&) noexcept = default;
        Entry(const Entry &) = delete;
        Entry &operator=(const Entry &) = delete;

        /** Strict-weak order: earlier (when, priority, seq) first. */
        bool
        before(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    /** Min-heap comparator for the overflow vector (std::push_heap is a
     *  max-heap, so invert). */
    struct OverflowLater
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            return b.before(a);
        }
    };

    void wheelInsert(Entry &&e);
    /** Move overflow entries inside the window [_now, _now + span). */
    void migrateOverflow();
    /** Advance to the earliest occupied tick and sort its bucket. */
    void enterTick();
    /** Reset a fully-walked bucket (slot, order, occupancy bit). */
    void finishBucket();
    /** Earliest occupied wheel tick, or maxTick when the wheel is empty. */
    Tick wheelNextTick() const;

    std::vector<std::vector<Entry>> _slots; ///< one bucket per wheel slot
    std::uint64_t _occupied[wheelSpan / 64] = {}; ///< slot bitmap
    std::vector<Entry> _overflow;           ///< min-heap beyond the window
    std::size_t _size = 0;                  ///< wheel + overflow entries
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;

    /**
     * Execution state of the current tick's bucket. On entering a tick
     * the bucket is sorted once and `_cursor` walks it, so popping the
     * minimum is O(1) instead of a per-event scan; same-tick schedules
     * insert in order past the cursor. `_sortedTick == maxTick` means no
     * bucket is mid-execution.
     */
    Tick _sortedTick = maxTick;
    std::size_t _cursor = 0;
    /** Execution order (indices into the sorted bucket). Sorting and
     *  same-tick inserts move these 4-byte indices instead of whole
     *  entries, so a callback never pays an InlineFunction move. */
    std::vector<std::uint32_t> _order;
};

} // namespace limitless

#endif // LIMITLESS_SIM_EVENT_QUEUE_HH
