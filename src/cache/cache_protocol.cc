/**
 * @file
 * Cache-side transition tables: the cache half of every protocol as
 * guarded actions over CacheCtx (paper Table 1 cache states). The
 * dispatch state is the line's residency state — Invalid covers both
 * "never cached" and "dropped/invalidated" — so spurious-INV tolerance,
 * upgrade WDATA and the chained force-drop fall out as ordinary rows
 * instead of branches.
 *
 * The actions are static members of CacheController (they drive its
 * private transaction map and statistics); this file owns the table
 * composition per scheme.
 */

#include <cassert>

#include "cache/cache_controller.hh"
#include "proto/states.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

constexpr std::uint8_t csI =
    static_cast<std::uint8_t>(CacheState::invalid);
constexpr std::uint8_t csRO =
    static_cast<std::uint8_t>(CacheState::readOnly);
constexpr std::uint8_t csRW =
    static_cast<std::uint8_t>(CacheState::readWrite);

/** INVs name the home in operand 1 (handler-forwarded INVs keep their
 *  IPI source in src); fall back to src for direct hardware INVs. */
NodeId
invHome(const Packet &pkt)
{
    return pkt.operands.size() > 1
               ? static_cast<NodeId>(pkt.operands[1])
               : pkt.src;
}

} // namespace

// --------------------------------------------------------------------
// Guards
// --------------------------------------------------------------------

bool
CacheController::txnUncached(const CacheCtx &c)
{
    auto it = c.cc._txns.find(c.pkt->addr());
    return it != c.cc._txns.end() && it->second.uncachedRead;
}

// --------------------------------------------------------------------
// Fill / completion actions
// --------------------------------------------------------------------

void
CacheController::rdataUncached(CacheCtx &c)
{
    // Private-only: complete the load straight from the packet; nothing
    // is installed.
    CacheController &cc = c.cc;
    const Addr line = c.pkt->addr();
    auto it = cc._txns.find(line);
    assert(it != cc._txns.end());
    assert(!it->second.forWrite);
    assert(c.pkt->data.size() >= cc._amap.wordsPerLine());
    Txn txn = std::move(it->second);
    cc._txns.erase(it);
    const std::uint64_t value = c.pkt->data[cc._amap.wordOf(txn.op.addr)];
    cc.finish(std::move(txn), value);
    cc.drainWaiting();
}

void
CacheController::rdataInstall(CacheCtx &c)
{
    CacheController &cc = c.cc;
    const Addr line = c.pkt->addr();
    auto it = cc._txns.find(line);
    if (it == cc._txns.end())
        panic("node %u: RDATA for line %#llx with no transaction",
              cc._self, (unsigned long long)line);
    assert(!it->second.forWrite);
    assert(c.pkt->data.size() >= cc._amap.wordsPerLine());
    CacheLine &cl = cc._array.install(line, CacheState::readOnly,
                                      c.pkt->data.data(),
                                      cc._amap.wordsPerLine());
    if (cc._protocol == ProtocolKind::chained &&
        c.pkt->operands.size() > 1)
        cl.chainNext = static_cast<NodeId>(c.pkt->operands[1]);
    c.cl = &cl;
    cc.completeTxn(line, cl);
}

void
CacheController::wdataInstall(CacheCtx &c)
{
    CacheController &cc = c.cc;
    const Addr line = c.pkt->addr();
    auto it = cc._txns.find(line);
    if (it == cc._txns.end())
        panic("node %u: WDATA for line %#llx with no transaction",
              cc._self, (unsigned long long)line);
    assert(it->second.forWrite);
    assert(c.pkt->data.size() >= cc._amap.wordsPerLine());
    CacheLine &cl = cc._array.install(line, CacheState::readWrite,
                                      c.pkt->data.data(),
                                      cc._amap.wordsPerLine());
    c.cl = &cl;
    cc.completeTxn(line, cl);
}

void
CacheController::wackComplete(CacheCtx &c)
{
    // Update-mode write performed at the home; the old word value rides
    // in operand 1. Any resident read-only copy stays (MUPD refreshed
    // it), so the line's state is untouched.
    CacheController &cc = c.cc;
    const Addr line = c.pkt->addr();
    auto it = cc._txns.find(line);
    if (it == cc._txns.end())
        panic("node %u: WACK for line %#llx with no transaction",
              cc._self, (unsigned long long)line);
    assert(it->second.updateWrite);
    Txn txn = std::move(it->second);
    cc._txns.erase(it);
    cc.finish(std::move(txn), c.pkt->operands.at(1));
    cc.drainWaiting();
}

// --------------------------------------------------------------------
// Invalidation / refresh actions
// --------------------------------------------------------------------

void
CacheController::invSpurious(CacheCtx &c)
{
    // Stale directory pointer (we dropped the copy silently) or a
    // crossing with our own REPM; acknowledge regardless.
    CacheController &cc = c.cc;
    cc.noteInvReceived(*c.pkt);
    cc._statSpuriousInvs += 1;
    cc.sendAck(invHome(*c.pkt), c.pkt->addr(), invalidNode, c.pkt.get());
}

void
CacheController::invCleanAck(CacheCtx &c)
{
    // Clean copy: acknowledge; in chained mode the ack carries our chain
    // successor so the home can continue the sequential walk.
    CacheController &cc = c.cc;
    cc.noteInvReceived(*c.pkt);
    const NodeId next = c.cl->chainNext;
    c.cl->chainNext = invalidNode;
    cc.sendAck(invHome(*c.pkt), c.pkt->addr(), next, c.pkt.get());
}

void
CacheController::invWriteback(CacheCtx &c)
{
    // Dirty copy: return the data (paper transition 8/10 input).
    CacheController &cc = c.cc;
    cc.noteInvReceived(*c.pkt);
    const Addr line = c.pkt->addr();
    auto upd = makeDataPacket(cc._self, invHome(*c.pkt), Opcode::UPDATE,
                              line, c.cl->words.data(),
                              cc._amap.wordsPerLine());
    // The writeback answers the INV: carry its transaction tags so the
    // ack leg nests under the per-sharer invalidation span.
    upd->txnId = c.pkt->txnId;
    upd->causeSpan = c.pkt->causeSpan;
    cc._send(std::move(upd));
}

void
CacheController::mupdRefresh(CacheCtx &c)
{
    // Refresh a cached copy of an update-mode line in place.
    CacheController &cc = c.cc;
    for (unsigned w = 0; w < cc._amap.wordsPerLine(); ++w)
        c.cl->words[w] = c.pkt->data[w];
    cc.sendAck(c.pkt->src, c.pkt->addr(), invalidNode, c.pkt.get());
}

void
CacheController::mupdSpurious(CacheCtx &c)
{
    CacheController &cc = c.cc;
    cc._statSpuriousInvs += 1;
    cc.sendAck(c.pkt->src, c.pkt->addr(), invalidNode, c.pkt.get());
}

// --------------------------------------------------------------------
// Flow-control actions
// --------------------------------------------------------------------

void
CacheController::busyRetry(CacheCtx &c)
{
    c.cc.handleBusy(*c.pkt);
}

void
CacheController::repcResume(CacheCtx &c)
{
    // Find the transaction whose eviction this grant unblocks.
    CacheController &cc = c.cc;
    const Addr victim = c.pkt->addr();
    for (auto &[line, txn] : cc._txns) {
        if (txn.awaitingRepc && txn.repcLine == victim) {
            txn.awaitingRepc = false;
            // The chain walk normally invalidated our copy already;
            // force-drop in case the walk found the chain empty.
            if (c.cl)
                c.cl->state = CacheState::invalid;
            cc.startRequest(line, txn);
            return;
        }
    }
    panic("node %u: REPC_ACK for line %#llx with no waiting txn",
          cc._self, (unsigned long long)victim);
}

// --------------------------------------------------------------------
// Table composition
// --------------------------------------------------------------------

using CacheTable = TransitionTable<CacheCtx>;

const TransitionTable<CacheCtx> &
CacheController::tableFor(ProtocolKind kind)
{
    // Row builders live in member scope so they can name the private
    // static actions.

    /** Rows shared by every scheme: fills, invalidations, BUSY retry. */
    static constexpr auto addCacheCoreRows = [](CacheTable &t) {
        t.add(csI, Opcode::RDATA, "install_ro", rdataInstall, csRO);
        t.add(csI, Opcode::WDATA, "install_rw", wdataInstall, csRW);
        t.add(csRO, Opcode::WDATA, "upgrade_rw", wdataInstall, csRW);
        t.add(csI, Opcode::INV, "inv_spurious", invSpurious, csI);
        t.add(csRO, Opcode::INV, "inv_clean_ack", invCleanAck, csI);
        t.add(csRW, Opcode::INV, "inv_writeback", invWriteback, csI);
        t.add(csI, Opcode::BUSY, "busy_retry", busyRetry, csI);
        t.add(csRO, Opcode::BUSY, "busy_retry", busyRetry, csRO);
    };

    /** Update-mode rows (WUPD-capable schemes: all pointer schemes). */
    static constexpr auto addUpdateModeRows = [](CacheTable &t) {
        t.add(csRO, Opcode::MUPD, "mupd_refresh", mupdRefresh, csRO);
        t.add(csI, Opcode::MUPD, "mupd_spurious", mupdSpurious, csI);
        t.add(csI, Opcode::WACK, "wack_complete", wackComplete, csI);
        t.add(csRO, Opcode::WACK, "wack_complete", wackComplete, csRO);
    };

    switch (kind) {
      case ProtocolKind::fullMap: {
        static const CacheTable &t = [] () -> const CacheTable & {
            static CacheTable t("full-map", ProtocolKind::fullMap,
                                TableSide::cache, cacheSideStateName);
            addCacheCoreRows(t);
            addUpdateModeRows(t);
            t.registerSelf();
            return t;
        }();
        return t;
      }
      case ProtocolKind::limited: {
        static const CacheTable &t = [] () -> const CacheTable & {
            static CacheTable t("limited", ProtocolKind::limited,
                                TableSide::cache, cacheSideStateName);
            addCacheCoreRows(t);
            addUpdateModeRows(t);
            t.registerSelf();
            return t;
        }();
        return t;
      }
      case ProtocolKind::limitless: {
        static const CacheTable &t = [] () -> const CacheTable & {
            static CacheTable t("limitless", ProtocolKind::limitless,
                                TableSide::cache, cacheSideStateName);
            addCacheCoreRows(t);
            addUpdateModeRows(t);
            t.registerSelf();
            return t;
        }();
        return t;
      }
      case ProtocolKind::chained: {
        static const CacheTable &t = [] () -> const CacheTable & {
            static CacheTable t("chained", ProtocolKind::chained,
                                TableSide::cache, cacheSideStateName);
            addCacheCoreRows(t);
            // Chained replacement grant: resume the parked request. The
            // walk usually invalidated our copy already (Invalid row);
            // the Read-Only row force-drops it when the chain was found
            // empty.
            t.add(csI, Opcode::REPC_ACK, "repc_resume", repcResume, csI);
            t.add(csRO, Opcode::REPC_ACK, "repc_resume", repcResume,
                  csI);
            t.registerSelf();
            return t;
        }();
        return t;
      }
      case ProtocolKind::privateOnly: {
        static const CacheTable &t = [] () -> const CacheTable & {
            static CacheTable t("private", ProtocolKind::privateOnly,
                                TableSide::cache, cacheSideStateName);
            // Uncached remote read completes without an install; the
            // guard keeps local fills on the ordinary install row.
            t.add(csI, Opcode::RDATA, "uncached_done", txnUncached,
                  "txn_uncached", rdataUncached, csI);
            addCacheCoreRows(t);
            addUpdateModeRows(t);
            t.registerSelf();
            return t;
        }();
        return t;
      }
    }
    panic("unknown protocol kind %d", static_cast<int>(kind));
}

} // namespace limitless
