/**
 * @file
 * Direct-mapped cache storage (64K bytes of 16-byte lines per Alewife
 * node). Stores real data words so end-to-end value correctness is
 * checkable, not just timing.
 */

#ifndef LIMITLESS_CACHE_CACHE_ARRAY_HH
#define LIMITLESS_CACHE_CACHE_ARRAY_HH

#include <array>
#include <cassert>
#include <vector>

#include "machine/address_map.hh"
#include "proto/states.hh"
#include "sim/types.hh"

namespace limitless
{

/** One cache line. */
struct CacheLine
{
    Addr tag = 0; ///< line-aligned address
    CacheState state = CacheState::invalid;
    /** Chain pointer for the chained-directory protocol. */
    NodeId chainNext = invalidNode;
    std::array<std::uint64_t, AddressMap::maxWordsPerLine> words{};

    bool valid() const { return state != CacheState::invalid; }
};

/** Direct-mapped tag + data array. */
class CacheArray
{
  public:
    CacheArray(std::uint64_t cache_bytes, const AddressMap &amap)
        : _amap(amap), _numSets(cache_bytes / amap.lineBytes()),
          _sets(_numSets)
    {
        assert(_numSets >= 1);
        assert((_numSets & (_numSets - 1)) == 0 &&
               "set count must be a power of two");
    }

    std::size_t numSets() const { return _numSets; }

    std::size_t
    indexOf(Addr line) const
    {
        return (line >> _amap.lineShift()) & (_numSets - 1);
    }

    /** Line currently resident in the set the address maps to. */
    CacheLine &setFor(Addr line) { return _sets[indexOf(line)]; }
    const CacheLine &setFor(Addr line) const { return _sets[indexOf(line)]; }

    /** Matching valid line, or nullptr. */
    CacheLine *
    lookup(Addr line)
    {
        CacheLine &cl = setFor(line);
        return (cl.valid() && cl.tag == line) ? &cl : nullptr;
    }

    const CacheLine *
    lookup(Addr line) const
    {
        const CacheLine &cl = setFor(line);
        return (cl.valid() && cl.tag == line) ? &cl : nullptr;
    }

    /** Overwrite the set with a new resident line. */
    CacheLine &
    install(Addr line, CacheState state,
            const std::uint64_t *data, unsigned words)
    {
        CacheLine &cl = setFor(line);
        cl.tag = line;
        cl.state = state;
        cl.chainNext = invalidNode;
        for (unsigned i = 0; i < words; ++i)
            cl.words[i] = data[i];
        return cl;
    }

    /** Number of valid lines (for tests / occupancy stats). */
    std::size_t
    validLines() const
    {
        std::size_t n = 0;
        for (const auto &cl : _sets)
            n += cl.valid();
        return n;
    }

    /** Iterate valid lines (coherence-monitor support). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &cl : _sets)
            if (cl.valid())
                fn(cl);
    }

  private:
    const AddressMap &_amap;
    std::size_t _numSets;
    std::vector<CacheLine> _sets;
};

} // namespace limitless

#endif // LIMITLESS_CACHE_CACHE_ARRAY_HH
