/**
 * @file
 * Cache-side coherence controller.
 *
 * Implements the cache half of the DirNNB protocol family (paper Table 1
 * cache states, Table 3 messages): request generation (RREQ/WREQ),
 * response installation (RDATA/WDATA), invalidation service (INV ->
 * ACKC/UPDATE), dirty replacement (REPM), and BUSY-retry with binary
 * exponential backoff.
 *
 * For the chained protocol it additionally maintains the per-line forward
 * pointer, forwards INVs down the chain, and replaces shared lines via an
 * explicit REPC transaction (see DESIGN.md section 7 for the documented
 * simplification versus full SCI rollout).
 */

#ifndef LIMITLESS_CACHE_CACHE_CONTROLLER_HH
#define LIMITLESS_CACHE_CACHE_CONTROLLER_HH

#include <deque>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache_array.hh"
#include "cache/mem_op.hh"
#include "machine/address_map.hh"
#include "machine/coherence_policy.hh"
#include "proto/packet.hh"
#include "proto/protocol_params.hh"
#include "proto/protocol_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/stats.hh"

namespace limitless
{

class CacheController;

/**
 * Dispatch context for one incoming cache-side packet: the controller,
 * the packet, and the lookup result for its line (null when the line is
 * not resident — the Invalid state rows). Install actions repoint cl at
 * the filled line.
 */
struct CacheCtx
{
    CacheController &cc;
    PacketPtr &pkt;
    CacheLine *cl;

    /** Engine hook: apply a transition's static next state. A null cl
     *  (nothing resident, nothing installed) has no state to write. */
    void
    setState(std::uint8_t s)
    {
        if (cl)
            cl->state = static_cast<CacheState>(s);
    }
};

/** Cache controller tuning. */
struct CacheParams
{
    std::uint64_t cacheBytes = 64 * 1024;
    Tick hitLatency = 1;   ///< processor-visible hit time
    Tick retryBase = 12;   ///< BUSY backoff base delay
    unsigned retryCapShift = 5; ///< backoff doubles up to base << cap
};

/** The per-node cache and its protocol engine. */
class CacheController
{
  public:
    /** Invoked when an access completes; argument is the loaded /
     *  pre-modification word value. */
    using Completion = std::function<void(std::uint64_t)>;
    /** Outgoing message path, provided by the node. */
    using SendFn = std::function<void(PacketPtr)>;

    /** What the processor learns at issue time (context-switch cue). */
    enum class IssueClass { hit, miss };

    CacheController(EventQueue &eq, NodeId self, const AddressMap &amap,
                    const CacheParams &params, ProtocolKind protocol,
                    std::uint64_t seed);

    void setSend(SendFn fn) { _send = std::move(fn); }

    /** Optional static coherence-type table (update-mode lines). */
    void setPolicy(const CoherencePolicy *policy) { _policy = policy; }

    /**
     * Issue a memory operation. The completion callback fires when the
     * access is globally performed (sequential consistency: the caller
     * must not issue its next access for the same thread until then).
     */
    IssueClass access(const MemOp &op, Completion done);

    /** Protocol packet arriving from the network / local memory. */
    void handlePacket(PacketPtr pkt);

    NodeId nodeId() const { return _self; }
    ProtocolKind protocol() const { return _protocol; }

    /**
     * The cache-side transition table for @p kind (built + registered on
     * first use; see src/cache/cache_protocol.cc). The controller
     * dispatches every incoming packet through it.
     */
    static const TransitionTable<CacheCtx> &tableFor(ProtocolKind kind);

    /** Iterate the (state, opcode) pairs this controller has fired
     *  (coherence-monitor cross-check against the declared table). */
    template <typename Fn>
    void
    forEachObservedTransition(Fn &&fn) const
    {
        for (std::uint32_t packed : _observed)
            fn(static_cast<std::uint8_t>(packed >> 16),
               static_cast<Opcode>(packed & 0xffff));
    }

    /** Home node of an address (exposed for the processor's
     *  switch-on-remote-miss policy). */
    NodeId homeOf(Addr a) const { return _amap.homeOf(_amap.lineAddr(a)); }
    CacheArray &array() { return _array; }
    const CacheArray &array() const { return _array; }
    StatSet &stats() { return _stats; }

    bool idle() const { return _txns.empty() && _waiting.empty(); }
    std::size_t outstanding() const { return _txns.size(); }
    /** Accesses queued behind an in-flight transaction on the same line
     *  (telemetry gauge: MSHR-style backlog at the sample instant). */
    std::size_t waitingAccesses() const { return _waiting.size(); }

    /**
     * Serialize the controller's protocol-relevant state (resident
     * lines, outstanding transactions, queued accesses) in a
     * deterministic text form. The model checker fingerprints machine
     * states with this; timing-only fields (retry counts, issue ticks)
     * are deliberately excluded — see docs/CHECKER.md.
     */
    void checkpoint(std::ostream &os) const;

  private:
    /** Outstanding miss / upgrade / replacement transaction on a line. */
    struct Txn
    {
        MemOp op;
        Completion done;
        bool forWrite = false;
        unsigned retries = 0;
        Tick issued = 0;
        bool remote = false;
        /** Chained mode: REPC phase pending before the real request. */
        bool awaitingRepc = false;
        Addr repcLine = 0; ///< line being evicted via REPC
        /** Update-mode write: completes on WACK, no line install. */
        bool updateWrite = false;
        /** Private-only uncached read: completes on RDATA, no install. */
        bool uncachedRead = false;
    };

    struct WaitingAccess
    {
        MemOp op;
        Completion done;
    };

    void startAccess(const MemOp &op, Completion done, bool &was_hit);
    void startRequest(Addr line, Txn &txn);
    void evictForSet(Addr line, Txn *txn_needing_repc);
    void completeTxn(Addr line, CacheLine &cl);
    void finish(Txn txn, std::uint64_t value);
    void applyOp(const MemOp &op, CacheLine &cl, std::uint64_t &out);
    void handleBusy(const Packet &pkt);
    void scheduleRetry(Addr line);
    void drainWaiting();
    void noteInvReceived(const Packet &pkt);
    /** Acknowledge an INV/MUPD; @p cause is the packet being answered
     *  (its tracer tags ride on the ACK), or nullptr. */
    void sendAck(NodeId to, Addr line, NodeId chain_next,
                 const Packet *cause);

    /** @name Transition-table guards and actions (cache_protocol.cc). */
    /// @{
    static bool txnUncached(const CacheCtx &c);
    static void rdataUncached(CacheCtx &c);
    static void rdataInstall(CacheCtx &c);
    static void wdataInstall(CacheCtx &c);
    static void invSpurious(CacheCtx &c);
    static void invCleanAck(CacheCtx &c);
    static void invWriteback(CacheCtx &c);
    static void mupdRefresh(CacheCtx &c);
    static void mupdSpurious(CacheCtx &c);
    static void wackComplete(CacheCtx &c);
    static void busyRetry(CacheCtx &c);
    static void repcResume(CacheCtx &c);
    /// @}

    EventQueue &_eq;
    NodeId _self;
    const AddressMap &_amap;
    CacheParams _params;
    ProtocolKind _protocol;
    const CoherencePolicy *_policy = nullptr;
    CacheArray _array;
    SendFn _send;
    Rng _rng;

    const TransitionTable<CacheCtx> *_table = nullptr;
    std::unordered_map<Addr, Txn> _txns;
    std::deque<WaitingAccess> _waiting;
    std::unordered_set<std::uint32_t> _observed; ///< fired (state, op)
    bool _drainScheduled = false;

    StatSet _stats{"cache"};
    Counter &_statLoads;
    Counter &_statStores;
    Counter &_statHits;
    Counter &_statMisses;
    Counter &_statUpgrades;
    Counter &_statRepm;
    Counter &_statRepc;
    Counter &_statWupd;
    Counter &_statInvsReceived;
    Counter &_statSpuriousInvs;
    Counter &_statBusyRetries;
    Accumulator &_statRemoteLatency;
    Accumulator &_statLocalMissLatency;
};

} // namespace limitless

#endif // LIMITLESS_CACHE_CACHE_CONTROLLER_HH
