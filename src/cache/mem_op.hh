/**
 * @file
 * Processor-level memory operations presented to the cache.
 *
 * Loads and stores model ordinary SPARCLE accesses. fetchAdd and swap
 * model the atomic read-modify-write primitives a shared-memory runtime
 * needs for locks and combining-tree barriers; under an invalidation
 * protocol they are implemented by obtaining an exclusive (Read-Write)
 * copy and modifying it locally, so they need no protocol extensions.
 */

#ifndef LIMITLESS_CACHE_MEM_OP_HH
#define LIMITLESS_CACHE_MEM_OP_HH

#include <cstdint>

#include "sim/types.hh"

namespace limitless
{

/** Kinds of memory access. */
enum class MemOpKind : std::uint8_t
{
    load,     ///< read a word
    store,    ///< write a word
    fetchAdd, ///< atomically add `value`, return the old word
    swap,     ///< atomically write `value`, return the old word
};

/** True if the operation needs write permission. */
constexpr bool
opNeedsWrite(MemOpKind k)
{
    return k != MemOpKind::load;
}

/** One word-granularity memory access. */
struct MemOp
{
    MemOpKind kind = MemOpKind::load;
    Addr addr = 0;            ///< word-aligned byte address
    std::uint64_t value = 0;  ///< store datum / add amount / swap datum
};

} // namespace limitless

#endif // LIMITLESS_CACHE_MEM_OP_HH
