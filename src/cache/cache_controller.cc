#include "cache/cache_controller.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <ostream>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "sim/log.hh"

namespace limitless
{

CacheController::CacheController(EventQueue &eq, NodeId self,
                                 const AddressMap &amap,
                                 const CacheParams &params,
                                 ProtocolKind protocol, std::uint64_t seed)
    : _eq(eq), _self(self), _amap(amap), _params(params),
      _protocol(protocol), _array(params.cacheBytes, amap),
      _rng(seed ^ (0xcac4eull + self)),
      _statLoads(_stats.counter("loads", "processor load operations")),
      _statStores(_stats.counter("stores", "processor store/rmw ops")),
      _statHits(_stats.counter("hits", "accesses satisfied locally")),
      _statMisses(_stats.counter("misses", "accesses requiring protocol")),
      _statUpgrades(_stats.counter("upgrades", "RO->RW permission misses")),
      _statRepm(_stats.counter("repm", "dirty lines replaced")),
      _statRepc(_stats.counter("repc", "chained clean replacements")),
      _statWupd(_stats.counter("wupd", "update-mode writes issued")),
      _statInvsReceived(_stats.counter("invs", "invalidations received")),
      _statSpuriousInvs(
          _stats.counter("spurious_invs", "INVs for absent lines")),
      _statBusyRetries(_stats.counter("busy_retries", "BUSY nack retries")),
      _statRemoteLatency(_stats.accumulator(
          "remote_latency", "remote miss latency (cycles)")),
      _statLocalMissLatency(_stats.accumulator(
          "local_miss_latency", "local-home miss latency (cycles)"))
{
    _table = &tableFor(protocol);
}

CacheController::IssueClass
CacheController::access(const MemOp &op, Completion done)
{
    bool was_hit = false;
    startAccess(op, std::move(done), was_hit);
    return was_hit ? IssueClass::hit : IssueClass::miss;
}

void
CacheController::applyOp(const MemOp &op, CacheLine &cl, std::uint64_t &out)
{
    std::uint64_t &word = cl.words[_amap.wordOf(op.addr)];
    switch (op.kind) {
      case MemOpKind::load:
        out = word;
        break;
      case MemOpKind::store:
        out = word;
        word = op.value;
        break;
      case MemOpKind::fetchAdd:
        out = word;
        word += op.value;
        break;
      case MemOpKind::swap:
        out = word;
        word = op.value;
        break;
    }
}

void
CacheController::startAccess(const MemOp &op, Completion done,
                             bool &was_hit)
{
    assert(op.addr % bytesPerWord == 0 && "accesses are word aligned");
    const Addr line = _amap.lineAddr(op.addr);
    const bool write = opNeedsWrite(op.kind);

    if (op.kind == MemOpKind::load)
        _statLoads += 1;
    else
        _statStores += 1;

    // Block behind any outstanding transaction touching the same line or
    // the same direct-mapped set (the in-flight fill owns that set). The
    // empty() gate keeps the hash probe off the common hit path.
    if (!_txns.empty()) {
        const std::size_t set = _array.indexOf(line);
        bool blocked = _txns.count(line) > 0;
        if (!blocked) {
            for (const auto &[tline, txn] : _txns) {
                if (_array.indexOf(tline) == set ||
                    (txn.awaitingRepc &&
                     _array.indexOf(txn.repcLine) == set)) {
                    blocked = true;
                    break;
                }
            }
        }
        if (blocked) {
            _waiting.push_back(WaitingAccess{op, std::move(done)});
            was_hit = false;
            return;
        }
    }

    CacheLine *cl = _array.lookup(line);
    const bool hit =
        cl && (write ? cl->state == CacheState::readWrite : cl->valid());
    if (hit) {
        _statHits += 1;
        was_hit = true;
        std::uint64_t value = 0;
        applyOp(op, *cl, value);
        _eq.schedule(_eq.now() + _params.hitLatency,
                     [done = std::move(done), value]() { done(value); },
                     EventPriority::cpu);
        return;
    }

    const bool private_only_remote =
        _protocol == ProtocolKind::privateOnly &&
        _amap.homeOf(line) != _self;

    // Private-only caching (paper Section 5.1 baseline): remote reads
    // are serviced uncached.
    if (private_only_remote && !write) {
        _statMisses += 1;
        was_hit = false;
        Txn txn;
        txn.op = op;
        txn.done = std::move(done);
        txn.uncachedRead = true;
        txn.issued = _eq.now();
        txn.remote = true;
        auto [rit, rok] = _txns.emplace(line, std::move(txn));
        assert(rok);
        startRequest(line, rit->second);
        return;
    }

    // Update-mode lines route writes through the write-update path: the
    // operation is performed at the home and cached copies are refreshed
    // in place (paper Section 6), so no ownership or install is needed.
    // Private-only remote writes use the same mechanism: the operation
    // is performed at the home, nothing is cached.
    if (write && ((_policy && _policy->isUpdateMode(line)) ||
                  private_only_remote)) {
        assert(!(cl && cl->state == CacheState::readWrite) &&
               "update-mode line held exclusively (policy violation)");
        _statMisses += 1;
        _statWupd += 1;
        was_hit = false;
        Txn txn;
        txn.op = op;
        txn.done = std::move(done);
        txn.forWrite = true;
        txn.updateWrite = true;
        txn.issued = _eq.now();
        txn.remote = _amap.homeOf(line) != _self;
        auto [uit, uok] = _txns.emplace(line, std::move(txn));
        assert(uok);
        startRequest(line, uit->second);
        return;
    }

    // Miss (or upgrade). Build the transaction first, then deal with the
    // set's current occupant.
    _statMisses += 1;
    was_hit = false;
    Txn txn;
    txn.op = op;
    txn.done = std::move(done);
    txn.forWrite = write;
    txn.issued = _eq.now();
    txn.remote = _amap.homeOf(line) != _self;

    // Only plain remote RREQ/WREQ misses feed the phase decomposition;
    // the uncached-read and write-update paths have no fill to time.
    if (txn.remote) {
        FlightRecorder &fr = FlightRecorder::instance();
        fr.latency().onInject(_eq.now(), _self, line, write);
        fr.txn().onInject(_eq.now(), _self, line, write);
    }

    const bool upgrade = cl && write && cl->state == CacheState::readOnly;
    if (upgrade)
        _statUpgrades += 1;

    if (!upgrade) {
        CacheLine &victim = _array.setFor(line);
        if (victim.valid()) {
            if (victim.state == CacheState::readWrite) {
                _statRepm += 1;
                auto pkt = makeDataPacket(
                    _self, _amap.requestTargetFor(victim.tag, _self),
                    Opcode::REPM, victim.tag, victim.words.data(),
                    _amap.wordsPerLine());
                victim.state = CacheState::invalid;
                _send(std::move(pkt));
            } else if (_protocol == ProtocolKind::chained) {
                // Chained lines may not be dropped silently: ask the home
                // node to unlink (it invalidates the whole chain; see
                // DESIGN.md). The real request is sent after REPC_ACK.
                _statRepc += 1;
                txn.awaitingRepc = true;
                txn.repcLine = victim.tag;
                auto pkt = makeProtocolPacket(
                    _self, _amap.requestTargetFor(victim.tag, _self),
                    Opcode::REPC, victim.tag);
                auto [it, ok] = _txns.emplace(line, std::move(txn));
                assert(ok);
                (void)it;
                _send(std::move(pkt));
                return;
            } else {
                victim.state = CacheState::invalid; // silent clean drop
            }
        }
    }

    auto [it, ok] = _txns.emplace(line, std::move(txn));
    assert(ok);
    startRequest(line, it->second);
}

void
CacheController::startRequest(Addr line, Txn &txn)
{
    if (txn.uncachedRead) {
        _send(makeProtocolPacket(_self, _amap.homeOf(line), Opcode::RUNC,
                                 line));
        return;
    }
    if (txn.updateWrite) {
        auto pkt = makeProtocolPacket(_self, _amap.homeOf(line),
                                      Opcode::WUPD, line);
        pkt->operands.push_back(_amap.wordOf(txn.op.addr));
        pkt->operands.push_back(static_cast<std::uint64_t>(txn.op.kind));
        pkt->operands.push_back(txn.op.value);
        _send(std::move(pkt));
        return;
    }
    const Opcode op = txn.forWrite ? Opcode::WREQ : Opcode::RREQ;
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "miss_req";
        ev.cat = EventCat::cache;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = _self;
        ev.dest = _amap.requestTargetFor(line, _self);
        ev.detail = txn.retries ? "retry" : nullptr;
        FR_RECORD(ev);
    }
    auto pkt = makeProtocolPacket(
        _self, _amap.requestTargetFor(line, _self), op, line);
    FlightRecorder::instance().txn().tagRequest(*pkt, _self);
    _send(std::move(pkt));
}

void
CacheController::handlePacket(PacketPtr pkt)
{
    PROF_SCOPE("cache.dispatch");
    assert(pkt);
    if (Log::enabled("cache"))
        Log::debug(_eq.now(), "cache", "node %u rx %s", _self,
                   describePacket(*pkt).c_str());
    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    CacheCtx ctx{*this, pkt, _array.lookup(line)};
    const auto pre = static_cast<std::uint8_t>(
        ctx.cl ? ctx.cl->state : CacheState::invalid);
    const auto &tr = _table->fire(ctx, pre, op);
    _observed.insert((static_cast<std::uint32_t>(pre) << 16) |
                     static_cast<std::uint16_t>(op));
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "transition";
        ev.cat = EventCat::cache;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = tr.label;
        ev.arg = tr.id;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
}

void
CacheController::completeTxn(Addr line, CacheLine &cl)
{
    auto it = _txns.find(line);
    assert(it != _txns.end());
    Txn txn = std::move(it->second);
    _txns.erase(it);

    std::uint64_t value = 0;
    applyOp(txn.op, cl, value);
    finish(std::move(txn), value);
    drainWaiting();
}

void
CacheController::finish(Txn txn, std::uint64_t value)
{
    const double lat = static_cast<double>(_eq.now() - txn.issued);
    const Addr line = _amap.lineAddr(txn.op.addr);
    if (txn.remote)
        _statRemoteLatency.sample(lat);
    else
        _statLocalMissLatency.sample(lat);
    if (txn.remote && !txn.updateWrite && !txn.uncachedRead)
        FlightRecorder::instance().latency().onComplete(_eq.now(), _self,
                                                        line);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "miss_done";
        ev.cat = EventCat::cache;
        ev.node = _self;
        ev.line = line;
        ev.detail = txn.remote ? "remote" : "local";
        ev.arg = static_cast<std::uint64_t>(lat);
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    _eq.schedule(_eq.now(),
                 [done = std::move(txn.done), value]() { done(value); },
                 EventPriority::cpu);
}

void
CacheController::noteInvReceived(const Packet &pkt)
{
    _statInvsReceived += 1;
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "inv_rx";
        ev.cat = EventCat::cache;
        ev.node = _self;
        ev.line = pkt.addr();
        ev.src = pkt.src;
        FR_RECORD(ev);
    }
}

void
CacheController::sendAck(NodeId to, Addr line, NodeId chain_next,
                         const Packet *cause)
{
    auto ack = makeProtocolPacket(_self, to, Opcode::ACKC, line);
    ack->operands.push_back(chain_next);
    if (cause) {
        ack->txnId = cause->txnId;
        ack->causeSpan = cause->causeSpan;
    }
    _send(std::move(ack));
}

void
CacheController::handleBusy(const Packet &pkt)
{
    const Addr line = pkt.addr();
    Txn *txn = nullptr;
    bool retry_repc = false;
    Addr main_line = line; ///< the line the transaction is keyed under
    auto it = _txns.find(line);
    if (it != _txns.end() && !it->second.awaitingRepc) {
        txn = &it->second;
    } else {
        for (auto &[tline, t] : _txns) {
            if (t.awaitingRepc && t.repcLine == line) {
                txn = &t;
                retry_repc = true;
                main_line = tline;
                break;
            }
        }
        if (!txn && it != _txns.end())
            txn = &it->second; // BUSY for the main line of a REPC txn
    }
    if (!txn)
        panic("node %u: BUSY for line %#llx with no transaction", _self,
              (unsigned long long)line);

    _statBusyRetries += 1;
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "busy_rx";
        ev.cat = EventCat::cache;
        ev.node = _self;
        ev.line = line;
        ev.src = pkt.src;
        ev.arg = txn->retries;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    const unsigned shift =
        std::min(txn->retries, _params.retryCapShift);
    const std::uint64_t round = txn->retries;
    ++txn->retries;
    const Tick delay = (_params.retryBase << shift) +
                       _rng.below(_params.retryBase);
    FlightRecorder::instance().txn().onBusyBackoff(_self, main_line,
                                                   _eq.now(), delay,
                                                   round);
    const Addr key = retry_repc ? txn->repcLine : line;
    const bool is_repc = retry_repc;
    // The transaction may not be erased while a retry is pending (only
    // completion erases it, and completion needs the home's response,
    // which the BUSY just denied), so capturing the key is safe.
    _eq.schedule(_eq.now() + delay, [this, key, is_repc]() {
        if (is_repc) {
            for (auto &[tline, t] : _txns) {
                (void)tline;
                if (t.awaitingRepc && t.repcLine == key) {
                    _send(makeProtocolPacket(
                        _self, _amap.requestTargetFor(key, _self),
                        Opcode::REPC, key));
                    return;
                }
            }
            panic("node %u: REPC retry lost its transaction", _self);
        }
        auto it2 = _txns.find(key);
        if (it2 == _txns.end())
            panic("node %u: retry lost its transaction", _self);
        startRequest(key, it2->second);
    }, EventPriority::ctrl);
}

void
CacheController::checkpoint(std::ostream &os) const
{
    os << "cache" << _self << "{";
    // Resident lines, in set order (the array is a fixed-size vector).
    for (std::size_t s = 0; s < _array.numSets(); ++s) {
        const CacheLine &cl = _array.setFor(s * _amap.lineBytes());
        if (!cl.valid())
            continue;
        os << "L" << std::hex << cl.tag << std::dec << ":"
           << cacheStateName(cl.state);
        if (cl.chainNext != invalidNode)
            os << ">" << cl.chainNext;
        os << "=";
        for (unsigned w = 0; w < _amap.wordsPerLine(); ++w)
            os << cl.words[w] << (w + 1 < _amap.wordsPerLine() ? "," : "");
        os << ";";
    }
    // Outstanding transactions, in line order. Timing-only fields
    // (retries, issued tick, remote flag) are excluded on purpose.
    std::map<Addr, const Txn *> ordered;
    for (const auto &[line, txn] : _txns)
        ordered.emplace(line, &txn);
    for (const auto &[line, txn] : ordered) {
        os << "T" << std::hex << line << std::dec << ":"
           << static_cast<int>(txn->op.kind) << "@" << std::hex
           << txn->op.addr << std::dec << "v" << txn->op.value
           << (txn->forWrite ? "w" : "") << (txn->updateWrite ? "u" : "")
           << (txn->uncachedRead ? "n" : "");
        if (txn->awaitingRepc)
            os << "r" << std::hex << txn->repcLine << std::dec;
        os << ";";
    }
    for (const WaitingAccess &w : _waiting)
        os << "W" << static_cast<int>(w.op.kind) << "@" << std::hex
           << w.op.addr << std::dec << "v" << w.op.value << ";";
    os << "}";
}

void
CacheController::drainWaiting()
{
    if (_waiting.empty() || _drainScheduled)
        return;
    _drainScheduled = true;
    _eq.schedule(_eq.now(), [this]() {
        _drainScheduled = false;
        std::deque<WaitingAccess> pending;
        pending.swap(_waiting);
        for (auto &w : pending) {
            bool was_hit = false;
            startAccess(w.op, std::move(w.done), was_hit);
        }
    }, EventPriority::ctrl);
}

} // namespace limitless
