/**
 * @file
 * Full-map directory (Censier & Feautrier): one presence bit per node per
 * line. Never overflows; total storage grows as O(N * memory).
 */

#ifndef LIMITLESS_DIRECTORY_FULL_MAP_DIR_HH
#define LIMITLESS_DIRECTORY_FULL_MAP_DIR_HH

#include <unordered_map>
#include <vector>

#include "directory/directory.hh"

namespace limitless
{

/** Bit-vector directory; entries materialize lazily per touched line. */
class FullMapDir : public DirectoryScheme
{
  public:
    explicit FullMapDir(unsigned num_nodes)
        : _numNodes(num_nodes), _wordsPerEntry((num_nodes + 63) / 64)
    {}

    DirAdd tryAdd(Addr line, NodeId n) override;
    bool canAdd(Addr, NodeId) const override { return true; }
    bool contains(Addr line, NodeId n) const override;
    void remove(Addr line, NodeId n) override;
    void clear(Addr line) override;
    void sharers(Addr line, std::vector<NodeId> &out) const override;
    std::size_t numSharers(Addr line) const override;
    void occupancy(DirOccupancy &out) const override;

    const char *name() const override { return "full-map"; }

    std::uint64_t
    bitsPerEntry(unsigned num_nodes) const override
    {
        return num_nodes;
    }

  private:
    using Bits = std::vector<std::uint64_t>;

    unsigned _numNodes;
    unsigned _wordsPerEntry;
    std::unordered_map<Addr, Bits> _entries;
};

} // namespace limitless

#endif // LIMITLESS_DIRECTORY_FULL_MAP_DIR_HH
