#include "directory/full_map_dir.hh"

#include <bit>
#include <cassert>

#include "obs/flight_recorder.hh"

namespace limitless
{

DirAdd
FullMapDir::tryAdd(Addr line, NodeId n)
{
    assert(n < _numNodes);
    auto [it, created] = _entries.try_emplace(line, Bits(_wordsPerEntry, 0));
    std::uint64_t &word = it->second[n / 64];
    const std::uint64_t mask = 1ull << (n % 64);
    if (word & mask)
        return DirAdd::present;
    word |= mask;
    return DirAdd::added;
}

bool
FullMapDir::contains(Addr line, NodeId n) const
{
    auto it = _entries.find(line);
    if (it == _entries.end())
        return false;
    return (it->second[n / 64] >> (n % 64)) & 1;
}

void
FullMapDir::remove(Addr line, NodeId n)
{
    auto it = _entries.find(line);
    if (it == _entries.end())
        return;
    it->second[n / 64] &= ~(1ull << (n % 64));
}

void
FullMapDir::clear(Addr line)
{
    auto it = _entries.find(line);
    if (it == _entries.end())
        return;
    // A clear is the full map's only wholesale transition (ownership
    // change / write fan-out); record how many sharers it dropped.
    TraceEvent ev;
    ev.ts = FlightRecorder::instance().now();
    ev.name = "dir_clear";
    ev.cat = EventCat::dir;
    ev.line = line;
    ev.arg = numSharers(line);
    ev.hasArg = true;
    FR_RECORD(ev);
    _entries.erase(it);
}

void
FullMapDir::sharers(Addr line, std::vector<NodeId> &out) const
{
    auto it = _entries.find(line);
    if (it == _entries.end())
        return;
    for (unsigned w = 0; w < _wordsPerEntry; ++w) {
        std::uint64_t bits = it->second[w];
        while (bits) {
            const unsigned b = std::countr_zero(bits);
            out.push_back(w * 64 + b);
            bits &= bits - 1;
        }
    }
}

std::size_t
FullMapDir::numSharers(Addr line) const
{
    auto it = _entries.find(line);
    if (it == _entries.end())
        return 0;
    std::size_t n = 0;
    for (unsigned w = 0; w < _wordsPerEntry; ++w)
        n += std::popcount(it->second[w]);
    return n;
}

void
FullMapDir::occupancy(DirOccupancy &out) const
{
    out.entries += _entries.size();
    for (const auto &[line, bits] : _entries) {
        (void)line;
        for (unsigned w = 0; w < _wordsPerEntry; ++w)
            out.pointersUsed += std::popcount(bits[w]);
        out.pointerSlots += _numNodes;
    }
}

} // namespace limitless
