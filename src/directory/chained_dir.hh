/**
 * @file
 * Chained-directory storage (paper Section 1's comparison baseline; an
 * SCI-flavoured scheme [James et al. 1990]).
 *
 * The directory stores only a head pointer per line; the sharing list is
 * distributed through the caches as singly linked forward pointers.
 * Invalidations therefore propagate *sequentially* down the chain, which
 * is exactly the write-latency disadvantage the paper attributes to
 * chained schemes.
 */

#ifndef LIMITLESS_DIRECTORY_CHAINED_DIR_HH
#define LIMITLESS_DIRECTORY_CHAINED_DIR_HH

#include <cstdint>
#include <unordered_map>

#include "directory/limited_dir.hh"
#include "sim/types.hh"

namespace limitless
{

/** Head-pointer directory for the chained protocol. */
class ChainedDir
{
  public:
    /** Head of the sharing chain, or invalidNode when uncached. */
    NodeId
    head(Addr line) const
    {
        auto it = _entries.find(line);
        return it == _entries.end() ? invalidNode : it->second.head;
    }

    std::uint32_t
    chainLength(Addr line) const
    {
        auto it = _entries.find(line);
        return it == _entries.end() ? 0 : it->second.length;
    }

    void
    push(Addr line, NodeId new_head)
    {
        Entry &e = _entries.try_emplace(line).first->second;
        e.head = new_head;
        ++e.length;
    }

    void
    clear(Addr line)
    {
        _entries.erase(line);
    }

    /** Directory overhead: one node pointer plus a small count. */
    std::uint64_t
    bitsPerEntry(unsigned num_nodes) const
    {
        return 2 * LimitedDir::ceilLog2(num_nodes);
    }

  private:
    struct Entry
    {
        NodeId head = invalidNode;
        std::uint32_t length = 0;
    };

    std::unordered_map<Addr, Entry> _entries;
};

} // namespace limitless

#endif // LIMITLESS_DIRECTORY_CHAINED_DIR_HH
