/**
 * @file
 * Limited directory (Dir_i NB, Agarwal et al. 1988): a small fixed number
 * of pointers per entry, no broadcast. tryAdd() reports overflow when all
 * pointers are in use; the memory FSM then evicts a victim copy.
 */

#ifndef LIMITLESS_DIRECTORY_LIMITED_DIR_HH
#define LIMITLESS_DIRECTORY_LIMITED_DIR_HH

#include <array>
#include <cassert>
#include <unordered_map>

#include "directory/directory.hh"

namespace limitless
{

/** Fixed-size pointer array per entry. */
class LimitedDir : public DirectoryScheme
{
  public:
    /** Most hardware pointers any configuration may use. */
    static constexpr unsigned maxPointers = 16;

    explicit LimitedDir(unsigned pointers) : _pointers(pointers)
    {
        assert(pointers >= 1 && pointers <= maxPointers);
    }

    DirAdd tryAdd(Addr line, NodeId n) override;
    bool canAdd(Addr line, NodeId n) const override;
    bool contains(Addr line, NodeId n) const override;
    void remove(Addr line, NodeId n) override;
    void clear(Addr line) override;
    void sharers(Addr line, std::vector<NodeId> &out) const override;
    std::size_t numSharers(Addr line) const override;
    void occupancy(DirOccupancy &out) const override;

    const char *name() const override { return "limited"; }

    std::uint64_t
    bitsPerEntry(unsigned num_nodes) const override
    {
        return _pointers * ceilLog2(num_nodes);
    }

    unsigned pointers() const { return _pointers; }

    /**
     * Round-robin victim choice for pointer eviction; deterministic so
     * runs reproduce exactly.
     */
    NodeId pickVictim(Addr line);

    static std::uint64_t
    ceilLog2(std::uint64_t v)
    {
        std::uint64_t bits = 0;
        while ((1ull << bits) < v)
            ++bits;
        return bits ? bits : 1;
    }

  protected:
    struct Entry
    {
        std::array<NodeId, maxPointers> ptr{};
        std::uint8_t used = 0;
        std::uint8_t nextVictim = 0;
    };

    Entry *find(Addr line);
    const Entry *find(Addr line) const;
    Entry &findOrCreate(Addr line);

    unsigned _pointers;
    std::unordered_map<Addr, Entry> _entries;
};

} // namespace limitless

#endif // LIMITLESS_DIRECTORY_LIMITED_DIR_HH
