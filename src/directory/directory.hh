/**
 * @file
 * Pointer-set storage behind a directory entry.
 *
 * The memory-side protocol FSM (src/mem) is identical for the full-map,
 * limited, and LimitLESS schemes (paper Section 3.2: "the LimitLESS
 * protocol has the same state transition diagram as the full-map
 * protocol"); what differs is the pointer-set storage, captured by this
 * interface. The chained directory does not fit a pointer-set abstraction
 * and has its own FSM.
 */

#ifndef LIMITLESS_DIRECTORY_DIRECTORY_HH
#define LIMITLESS_DIRECTORY_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

/** Outcome of recording a new sharer. */
enum class DirAdd
{
    added,    ///< recorded in a free pointer
    present,  ///< already recorded
    overflow, ///< no pointer available (limited / LimitLESS hardware)
};

/**
 * Point-in-time pointer-storage occupancy, for telemetry gauges: how full
 * the hardware pointer arrays are across all materialized entries.
 */
struct DirOccupancy
{
    std::uint64_t entries = 0;      ///< lines with a materialized entry
    std::uint64_t pointersUsed = 0; ///< pointers / presence bits in use
    std::uint64_t pointerSlots = 0; ///< hardware slots across those entries
};

/** Abstract pointer-set directory storage. */
class DirectoryScheme
{
  public:
    virtual ~DirectoryScheme() = default;

    /** Record node n as a sharer of line. */
    virtual DirAdd tryAdd(Addr line, NodeId n) = 0;

    /**
     * Pure overflow probe: would tryAdd(line, n) succeed? Used as a
     * transition guard; unlike tryAdd it must not mutate the entry or
     * record trace events.
     */
    virtual bool canAdd(Addr line, NodeId n) const = 0;

    virtual bool contains(Addr line, NodeId n) const = 0;

    /** Forget one sharer (no-op if absent). */
    virtual void remove(Addr line, NodeId n) = 0;

    /** Forget all sharers. */
    virtual void clear(Addr line) = 0;

    /** Append all recorded sharers to @p out. */
    virtual void sharers(Addr line, std::vector<NodeId> &out) const = 0;

    virtual std::size_t numSharers(Addr line) const = 0;

    /** Accumulate current pointer-array occupancy into @p out. Walks the
     *  entry table, so callers sample it (telemetry windows), never poll
     *  it on the protocol hot path. */
    virtual void occupancy(DirOccupancy &out) const = 0;

    virtual const char *name() const = 0;

    /**
     * Directory storage per memory line, in bits, for the memory-overhead
     * comparison (paper Section 1: full-map grows O(N^2) in total).
     */
    virtual std::uint64_t bitsPerEntry(unsigned num_nodes) const = 0;
};

} // namespace limitless

#endif // LIMITLESS_DIRECTORY_DIRECTORY_HH
