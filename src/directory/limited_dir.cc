#include "directory/limited_dir.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"

namespace limitless
{

LimitedDir::Entry *
LimitedDir::find(Addr line)
{
    auto it = _entries.find(line);
    return it == _entries.end() ? nullptr : &it->second;
}

const LimitedDir::Entry *
LimitedDir::find(Addr line) const
{
    auto it = _entries.find(line);
    return it == _entries.end() ? nullptr : &it->second;
}

LimitedDir::Entry &
LimitedDir::findOrCreate(Addr line)
{
    return _entries.try_emplace(line).first->second;
}

DirAdd
LimitedDir::tryAdd(Addr line, NodeId n)
{
    Entry &e = findOrCreate(line);
    for (unsigned i = 0; i < e.used; ++i)
        if (e.ptr[i] == n)
            return DirAdd::present;
    if (e.used >= _pointers) {
        TraceEvent ev;
        ev.ts = FlightRecorder::instance().now();
        ev.name = "ptr_overflow";
        ev.cat = EventCat::dir;
        ev.line = line;
        ev.src = n;
        ev.arg = e.used;
        ev.hasArg = true;
        FR_RECORD(ev);
        return DirAdd::overflow;
    }
    e.ptr[e.used++] = n;
    return DirAdd::added;
}

bool
LimitedDir::canAdd(Addr line, NodeId n) const
{
    const Entry *e = find(line);
    if (!e)
        return true;
    for (unsigned i = 0; i < e->used; ++i)
        if (e->ptr[i] == n)
            return true;
    return e->used < _pointers;
}

bool
LimitedDir::contains(Addr line, NodeId n) const
{
    const Entry *e = find(line);
    if (!e)
        return false;
    for (unsigned i = 0; i < e->used; ++i)
        if (e->ptr[i] == n)
            return true;
    return false;
}

void
LimitedDir::remove(Addr line, NodeId n)
{
    Entry *e = find(line);
    if (!e)
        return;
    for (unsigned i = 0; i < e->used; ++i) {
        if (e->ptr[i] == n) {
            e->ptr[i] = e->ptr[e->used - 1];
            --e->used;
            return;
        }
    }
}

void
LimitedDir::clear(Addr line)
{
    // Keep the entry object (it may carry scheme-specific extra state in
    // subclasses); just drop the pointers.
    Entry *e = find(line);
    if (e)
        e->used = 0;
}

void
LimitedDir::sharers(Addr line, std::vector<NodeId> &out) const
{
    const Entry *e = find(line);
    if (!e)
        return;
    for (unsigned i = 0; i < e->used; ++i)
        out.push_back(e->ptr[i]);
}

std::size_t
LimitedDir::numSharers(Addr line) const
{
    const Entry *e = find(line);
    return e ? e->used : 0;
}

void
LimitedDir::occupancy(DirOccupancy &out) const
{
    out.entries += _entries.size();
    for (const auto &[line, e] : _entries) {
        (void)line;
        out.pointersUsed += e.used;
        out.pointerSlots += _pointers;
    }
}

NodeId
LimitedDir::pickVictim(Addr line)
{
    Entry *e = find(line);
    assert(e && e->used > 0);
    const NodeId victim = e->ptr[e->nextVictim % e->used];
    e->nextVictim = (e->nextVictim + 1) % _pointers;
    return victim;
}

} // namespace limitless
