/**
 * @file
 * LimitLESS hardware directory entry: a limited pointer array extended
 * with the two meta-state bits of paper Table 4 and the Local Bit of
 * paper Section 4.3.
 *
 * The hardware entry only ever stores up to p pointers; the software side
 * of the scheme (bit vectors in a hash table in the home node's local
 * memory) lives in src/kernel/software_dir.hh and is consulted by the
 * trap handler, not by this class.
 */

#ifndef LIMITLESS_DIRECTORY_LIMITLESS_DIR_HH
#define LIMITLESS_DIRECTORY_LIMITLESS_DIR_HH

#include <array>
#include <cassert>
#include <unordered_map>

#include "directory/directory.hh"
#include "directory/limited_dir.hh"
#include "proto/states.hh"

namespace limitless
{

/** LimitLESS hardware directory: pointers + meta state + local bit. */
class LimitlessDir : public DirectoryScheme
{
  public:
    /**
     * @param self          node this directory lives on (for the local bit)
     * @param pointers      hardware pointers per entry
     * @param use_local_bit reserve a dedicated bit for the home node
     */
    LimitlessDir(NodeId self, unsigned pointers, bool use_local_bit)
        : _self(self), _pointers(pointers), _useLocalBit(use_local_bit)
    {
        assert(pointers >= 1 && pointers <= LimitedDir::maxPointers);
    }

    DirAdd tryAdd(Addr line, NodeId n) override;
    bool canAdd(Addr line, NodeId n) const override;
    bool contains(Addr line, NodeId n) const override;
    void remove(Addr line, NodeId n) override;
    void clear(Addr line) override;
    void sharers(Addr line, std::vector<NodeId> &out) const override;
    std::size_t numSharers(Addr line) const override;
    void occupancy(DirOccupancy &out) const override;

    const char *name() const override { return "limitless"; }

    std::uint64_t
    bitsPerEntry(unsigned num_nodes) const override
    {
        // p pointers + 2 meta-state bits + 1 local bit.
        return _pointers * LimitedDir::ceilLog2(num_nodes) + 2 +
               (_useLocalBit ? 1 : 0);
    }

    unsigned pointers() const { return _pointers; }
    NodeId self() const { return _self; }

    MetaState meta(Addr line) const;
    void setMeta(Addr line, MetaState m);

    /** Meta state before the most recent setMeta (the trap handler uses
     *  this to learn why a packet was diverted). */
    MetaState prevMeta(Addr line) const;

    /**
     * Empty the hardware pointer array into @p out (the trap handler's
     * "empty the pointers into the software vector" step). The local bit
     * is preserved in hardware: the home node's copy stays tracked there
     * so local reads keep hitting in hardware.
     */
    void spillPointers(Addr line, std::vector<NodeId> &out);

    /** True when the entry's pointer array is completely full. */
    bool pointersFull(Addr line) const;

  private:
    struct Entry
    {
        std::array<NodeId, LimitedDir::maxPointers> ptr{};
        std::uint8_t used = 0;
        bool localBit = false;
        MetaState meta = MetaState::normal;
        MetaState prevMeta = MetaState::normal;
    };

    Entry *find(Addr line);
    const Entry *find(Addr line) const;

    NodeId _self;
    unsigned _pointers;
    bool _useLocalBit;
    std::unordered_map<Addr, Entry> _entries;
};

} // namespace limitless

#endif // LIMITLESS_DIRECTORY_LIMITLESS_DIR_HH
