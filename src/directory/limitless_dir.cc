#include "directory/limitless_dir.hh"

#include "obs/flight_recorder.hh"

namespace limitless
{

namespace
{

// Directories have no clock of their own; timestamp events off the
// machine clock the FlightRecorder was registered with.
TraceEvent
dirEvent(const char *name, NodeId node, Addr line)
{
    FlightRecorder &fr = FlightRecorder::instance();
    TraceEvent ev;
    ev.ts = fr.now();
    ev.name = name;
    ev.cat = EventCat::dir;
    ev.node = node;
    ev.line = line;
    return ev;
}

} // namespace

LimitlessDir::Entry *
LimitlessDir::find(Addr line)
{
    auto it = _entries.find(line);
    return it == _entries.end() ? nullptr : &it->second;
}

const LimitlessDir::Entry *
LimitlessDir::find(Addr line) const
{
    auto it = _entries.find(line);
    return it == _entries.end() ? nullptr : &it->second;
}

DirAdd
LimitlessDir::tryAdd(Addr line, NodeId n)
{
    Entry &e = _entries.try_emplace(line).first->second;
    if (_useLocalBit && n == _self) {
        if (e.localBit)
            return DirAdd::present;
        e.localBit = true;
        return DirAdd::added;
    }
    for (unsigned i = 0; i < e.used; ++i)
        if (e.ptr[i] == n)
            return DirAdd::present;
    if (e.used >= _pointers) {
        TraceEvent ev = dirEvent("ptr_overflow", _self, line);
        ev.src = n;
        ev.arg = e.used;
        ev.hasArg = true;
        FR_RECORD(ev);
        return DirAdd::overflow;
    }
    e.ptr[e.used++] = n;
    return DirAdd::added;
}

bool
LimitlessDir::canAdd(Addr line, NodeId n) const
{
    const Entry *e = find(line);
    if (!e)
        return true;
    if (_useLocalBit && n == _self)
        return true;
    for (unsigned i = 0; i < e->used; ++i)
        if (e->ptr[i] == n)
            return true;
    return e->used < _pointers;
}

bool
LimitlessDir::contains(Addr line, NodeId n) const
{
    const Entry *e = find(line);
    if (!e)
        return false;
    if (_useLocalBit && n == _self)
        return e->localBit;
    for (unsigned i = 0; i < e->used; ++i)
        if (e->ptr[i] == n)
            return true;
    return false;
}

void
LimitlessDir::remove(Addr line, NodeId n)
{
    Entry *e = find(line);
    if (!e)
        return;
    if (_useLocalBit && n == _self) {
        e->localBit = false;
        return;
    }
    for (unsigned i = 0; i < e->used; ++i) {
        if (e->ptr[i] == n) {
            e->ptr[i] = e->ptr[e->used - 1];
            --e->used;
            return;
        }
    }
}

void
LimitlessDir::clear(Addr line)
{
    Entry *e = find(line);
    if (!e)
        return;
    e->used = 0;
    e->localBit = false;
    // Meta state is controlled explicitly by the FSM / trap handler.
}

void
LimitlessDir::sharers(Addr line, std::vector<NodeId> &out) const
{
    const Entry *e = find(line);
    if (!e)
        return;
    if (e->localBit)
        out.push_back(_self);
    for (unsigned i = 0; i < e->used; ++i)
        out.push_back(e->ptr[i]);
}

std::size_t
LimitlessDir::numSharers(Addr line) const
{
    const Entry *e = find(line);
    if (!e)
        return 0;
    return e->used + (e->localBit ? 1 : 0);
}

MetaState
LimitlessDir::meta(Addr line) const
{
    const Entry *e = find(line);
    return e ? e->meta : MetaState::normal;
}

void
LimitlessDir::setMeta(Addr line, MetaState m)
{
    Entry &e = _entries.try_emplace(line).first->second;
    e.prevMeta = e.meta;
    e.meta = m;
    if (e.prevMeta != m) {
        TraceEvent ev = dirEvent("meta", _self, line);
        ev.detail = metaStateName(m);
        FR_RECORD(ev);
    }
}

MetaState
LimitlessDir::prevMeta(Addr line) const
{
    const Entry *e = find(line);
    return e ? e->prevMeta : MetaState::normal;
}

void
LimitlessDir::spillPointers(Addr line, std::vector<NodeId> &out)
{
    Entry *e = find(line);
    if (!e)
        return;
    for (unsigned i = 0; i < e->used; ++i)
        out.push_back(e->ptr[i]);
    {
        TraceEvent ev = dirEvent("spill", _self, line);
        ev.arg = e->used;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    e->used = 0;
}

bool
LimitlessDir::pointersFull(Addr line) const
{
    const Entry *e = find(line);
    return e && e->used >= _pointers;
}

void
LimitlessDir::occupancy(DirOccupancy &out) const
{
    out.entries += _entries.size();
    for (const auto &[line, e] : _entries) {
        (void)line;
        out.pointersUsed += e.used + (e.localBit ? 1 : 0);
        out.pointerSlots += _pointers + (_useLocalBit ? 1 : 0);
    }
}

} // namespace limitless
