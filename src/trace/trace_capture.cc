#include "trace/trace_capture.hh"

#include "sim/log.hh"

namespace limitless
{

TraceCapture::TraceCapture(Machine &m)
    : _m(m), _log(m.numNodes()), _barrierDepth(m.numNodes(), 0)
{
    for (unsigned i = 0; i < m.numNodes(); ++i)
        m.node(i).processor().setTraceSink(this);
}

TraceCapture::~TraceCapture()
{
    for (unsigned i = 0; i < _m.numNodes(); ++i)
        _m.node(i).processor().setTraceSink(nullptr);
}

void
TraceCapture::onMemOp(NodeId node, const MemOp &op)
{
    if (_barrierDepth.at(node) > 0)
        return; // synchronization-internal reference: not data

    TraceOp rec;
    switch (op.kind) {
      case MemOpKind::load:
        rec.kind = TraceKind::read;
        break;
      case MemOpKind::store:
        rec.kind = TraceKind::write;
        break;
      case MemOpKind::fetchAdd:
        rec.kind = TraceKind::fetchAdd;
        break;
      case MemOpKind::swap:
        rec.kind = TraceKind::swap;
        break;
    }
    rec.addr = op.addr;
    rec.value = op.value;
    _log.append(node, rec);
}

void
TraceCapture::onCompute(NodeId node, Tick cycles)
{
    if (_barrierDepth.at(node) > 0)
        return; // spin pacing inside the barrier

    TraceOp rec;
    rec.kind = TraceKind::compute;
    rec.cycles = cycles;
    _log.append(node, rec);
}

void
TraceCapture::onAnnotate(NodeId node, std::uint64_t tag)
{
    if (tag == trace_tag::barrierEnter) {
        ++_barrierDepth.at(node);
        return;
    }
    if (tag == trace_tag::barrierExit) {
        if (_barrierDepth.at(node) == 0)
            panic("trace capture: barrier exit without enter");
        if (--_barrierDepth.at(node) == 0) {
            TraceOp rec;
            rec.kind = TraceKind::barrier;
            _log.append(node, rec);
        }
        return;
    }
    // Unknown annotations are ignored (future synchronization types).
}

} // namespace limitless
