#include "trace/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/log.hh"

namespace limitless
{

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::read: return "R";
      case TraceKind::write: return "W";
      case TraceKind::fetchAdd: return "A";
      case TraceKind::swap: return "S";
      case TraceKind::compute: return "C";
      case TraceKind::barrier: return "B";
    }
    return "?";
}

void
TraceLog::save(std::ostream &os) const
{
    os << "limitless-trace v1 procs " << procs() << "\n";
    for (unsigned p = 0; p < procs(); ++p) {
        os << "P " << p << " ops " << _streams[p].size() << "\n";
        for (const TraceOp &op : _streams[p]) {
            switch (op.kind) {
              case TraceKind::read:
                os << "R " << op.addr << "\n";
                break;
              case TraceKind::write:
                os << "W " << op.addr << " " << op.value << "\n";
                break;
              case TraceKind::fetchAdd:
                os << "A " << op.addr << " " << op.value << "\n";
                break;
              case TraceKind::swap:
                os << "S " << op.addr << " " << op.value << "\n";
                break;
              case TraceKind::compute:
                os << "C " << op.cycles << "\n";
                break;
              case TraceKind::barrier:
                os << "B\n";
                break;
            }
        }
    }
}

TraceLog
TraceLog::load(std::istream &is)
{
    std::string magic, version, procs_word;
    unsigned procs = 0;
    is >> magic >> version >> procs_word >> procs;
    if (magic != "limitless-trace" || version != "v1" ||
        procs_word != "procs" || procs == 0)
        fatal("trace load: bad header");

    TraceLog log(procs);
    for (unsigned i = 0; i < procs; ++i) {
        std::string p_word, ops_word;
        unsigned proc = 0;
        std::size_t count = 0;
        is >> p_word >> proc >> ops_word >> count;
        if (p_word != "P" || ops_word != "ops" || proc >= procs)
            fatal("trace load: bad stream header for section %u", i);
        for (std::size_t k = 0; k < count; ++k) {
            std::string kind;
            is >> kind;
            TraceOp op;
            if (kind == "R") {
                op.kind = TraceKind::read;
                is >> op.addr;
            } else if (kind == "W") {
                op.kind = TraceKind::write;
                is >> op.addr >> op.value;
            } else if (kind == "A") {
                op.kind = TraceKind::fetchAdd;
                is >> op.addr >> op.value;
            } else if (kind == "S") {
                op.kind = TraceKind::swap;
                is >> op.addr >> op.value;
            } else if (kind == "C") {
                op.kind = TraceKind::compute;
                is >> op.cycles;
            } else if (kind == "B") {
                op.kind = TraceKind::barrier;
            } else {
                fatal("trace load: bad record kind '%s'", kind.c_str());
            }
            log.append(proc, op);
        }
        if (!is)
            fatal("trace load: truncated stream for proc %u", proc);
    }
    return log;
}

} // namespace limitless
