/**
 * @file
 * Memory-reference traces with embedded synchronization annotations.
 *
 * ASIM's second input path (paper Figure 6) is a *dynamic post-mortem
 * trace scheduler*: "a technique that generates a parallel trace from a
 * uniprocessor execution trace that has embedded synchronization
 * information. The post-mortem scheduler is coupled with the memory
 * system simulator and incorporates feedback from the network in
 * issuing trace requests." The Weather results in the paper come from
 * this path.
 *
 * This module provides the trace substrate: a per-processor stream of
 * data references, compute delays, and synchronization (barrier)
 * annotations, with a plain-text serialization so traces can be captured
 * once and replayed across protocol configurations — exactly the
 * paper's methodology.
 */

#ifndef LIMITLESS_TRACE_TRACE_HH
#define LIMITLESS_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "cache/mem_op.hh"
#include "sim/types.hh"

namespace limitless
{

/** Kinds of trace record. */
enum class TraceKind : std::uint8_t
{
    read,
    write,
    fetchAdd,
    swap,
    compute,
    barrier, ///< synchronization annotation (episode boundary)
};

const char *traceKindName(TraceKind k);

/** One trace record. */
struct TraceOp
{
    TraceKind kind = TraceKind::read;
    Addr addr = 0;            ///< data ops only
    std::uint64_t value = 0;  ///< store datum / add amount / swap datum
    Tick cycles = 0;          ///< compute ops only

    bool
    operator==(const TraceOp &other) const
    {
        return kind == other.kind && addr == other.addr &&
               value == other.value && cycles == other.cycles;
    }
};

/** Annotation tags threaded through ThreadApi::annotate(). */
namespace trace_tag
{
    inline constexpr std::uint64_t barrierEnter = 0xB000'0001;
    inline constexpr std::uint64_t barrierExit = 0xB000'0002;
}

/** A whole machine's worth of per-processor trace streams. */
class TraceLog
{
  public:
    explicit TraceLog(unsigned procs) : _streams(procs) {}

    unsigned procs() const { return _streams.size(); }

    void
    append(unsigned proc, TraceOp op)
    {
        _streams.at(proc).push_back(op);
    }

    const std::vector<TraceOp> &
    stream(unsigned proc) const
    {
        return _streams.at(proc);
    }

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &s : _streams)
            n += s.size();
        return n;
    }

    std::size_t
    dataOps() const
    {
        std::size_t n = 0;
        for (const auto &s : _streams)
            for (const TraceOp &op : s)
                n += (op.kind != TraceKind::compute &&
                      op.kind != TraceKind::barrier);
        return n;
    }

    bool operator==(const TraceLog &other) const
    {
        return _streams == other._streams;
    }

    /** Plain-text serialization ("P <proc>" sections, one op per line). */
    void save(std::ostream &os) const;
    static TraceLog load(std::istream &is);

  private:
    std::vector<std::vector<TraceOp>> _streams;
};

} // namespace limitless

#endif // LIMITLESS_TRACE_TRACE_HH
