/**
 * @file
 * Trace capture: attach to a Machine before a run and record every
 * processor's reference stream into a TraceLog.
 *
 * Synchronization-library operations (between barrierEnter/barrierExit
 * annotations) are *not* recorded as data references; a single barrier
 * record marks the episode boundary instead. Replay re-synthesizes the
 * synchronization live, which is exactly how the paper's post-mortem
 * scheduler treats embedded synchronization information: the data
 * references are fixed by the trace, the synchronization (and therefore
 * the interleaving) responds to the simulated memory system.
 */

#ifndef LIMITLESS_TRACE_TRACE_CAPTURE_HH
#define LIMITLESS_TRACE_TRACE_CAPTURE_HH

#include <vector>

#include "machine/machine.hh"
#include "trace/trace.hh"

namespace limitless
{

/** Records one machine run into a TraceLog. */
class TraceCapture : public TraceSink
{
  public:
    /** Attaches to every processor of @p m; detach by destroying. */
    explicit TraceCapture(Machine &m);
    ~TraceCapture() override;

    TraceCapture(const TraceCapture &) = delete;
    TraceCapture &operator=(const TraceCapture &) = delete;

    const TraceLog &log() const { return _log; }
    TraceLog takeLog() { return std::move(_log); }

    // TraceSink interface.
    void onMemOp(NodeId node, const MemOp &op) override;
    void onCompute(NodeId node, Tick cycles) override;
    void onAnnotate(NodeId node, std::uint64_t tag) override;

  private:
    Machine &_m;
    TraceLog _log;
    std::vector<unsigned> _barrierDepth; ///< per node
};

} // namespace limitless

#endif // LIMITLESS_TRACE_TRACE_CAPTURE_HH
