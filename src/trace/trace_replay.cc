#include "trace/trace_replay.hh"

#include "sim/log.hh"

namespace limitless
{

void
TraceReplay::install(Machine &m)
{
    if (_log.procs() != m.numNodes())
        fatal("trace replay: trace has %u streams, machine has %u nodes",
              _log.procs(), m.numNodes());

    // Barrier counts must agree across streams (SPMD episodes).
    _barriers.assign(_log.procs(), 0);
    for (unsigned p = 0; p < _log.procs(); ++p)
        for (const TraceOp &op : _log.stream(p))
            _barriers[p] += op.kind == TraceKind::barrier;
    for (unsigned p = 1; p < _log.procs(); ++p) {
        if (_barriers[p] != _barriers[0])
            fatal("trace replay: proc %u has %zu barrier records, proc 0 "
                  "has %zu — the trace is not episode-aligned",
                  p, _barriers[p], _barriers[0]);
    }

    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), m.numNodes(), _fanIn, slot::barrier);
    _replayed.assign(_log.procs(), 0);
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        m.spawnOn(p, [this, p](ThreadApi &t) {
            return worker(t, p);
        });
    }
}

Task<>
TraceReplay::worker(ThreadApi &t, unsigned p)
{
    for (const TraceOp &op : _log.stream(p)) {
        switch (op.kind) {
          case TraceKind::read:
            co_await t.read(op.addr);
            break;
          case TraceKind::write:
            co_await t.write(op.addr, op.value);
            break;
          case TraceKind::fetchAdd:
            co_await t.fetchAdd(op.addr, op.value);
            break;
          case TraceKind::swap:
            co_await t.swap(op.addr, op.value);
            break;
          case TraceKind::compute:
            co_await t.compute(op.cycles);
            break;
          case TraceKind::barrier:
            co_await _barrier->wait(t, p);
            break;
        }
        ++_replayed[p];
    }
}

void
TraceReplay::verify(Machine &m) const
{
    (void)m;
    for (unsigned p = 0; p < _log.procs(); ++p) {
        if (_replayed[p] != _log.stream(p).size())
            panic("trace replay: proc %u replayed %zu of %zu records", p,
                  _replayed[p], _log.stream(p).size());
    }
}

std::size_t
TraceReplay::opsReplayed() const
{
    std::size_t n = 0;
    for (std::size_t c : _replayed)
        n += c;
    return n;
}

} // namespace limitless
