/**
 * @file
 * Post-mortem trace replay (the paper's Figure 6 right branch).
 *
 * Replays a TraceLog as a Workload: each processor's data references are
 * issued in trace order, paced by the simulated memory system (network
 * feedback, as in Kurihara's dynamic post-mortem scheduler), and barrier
 * records are re-synthesized live with a combining-tree barrier so the
 * interleaving across processors responds to the protocol under test.
 *
 * Capture a trace once (TraceCapture), then replay it under any protocol
 * configuration — the paper's exact Weather methodology.
 */

#ifndef LIMITLESS_TRACE_TRACE_REPLAY_HH
#define LIMITLESS_TRACE_TRACE_REPLAY_HH

#include <memory>

#include "trace/trace.hh"
#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Replay workload over a captured trace. */
class TraceReplay : public Workload
{
  public:
    /**
     * @param log       the trace (streams must match the machine size)
     * @param barrier_fan_in arity for the re-synthesized barriers
     */
    explicit TraceReplay(TraceLog log, unsigned barrier_fan_in = 2)
        : _log(std::move(log)), _fanIn(barrier_fan_in)
    {}

    std::string name() const override { return "trace-replay"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

    std::size_t opsReplayed() const;

  private:
    Task<> worker(ThreadApi &t, unsigned p);

    TraceLog _log;
    unsigned _fanIn;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::size_t> _replayed;
    /** Barrier records per proc; every proc must have the same count or
     *  the replay would deadlock — checked at install. */
    std::vector<std::size_t> _barriers;
};

} // namespace limitless

#endif // LIMITLESS_TRACE_TRACE_REPLAY_HH
