/**
 * @file
 * Flit buffer for the wormhole fabric's router ports.
 *
 * The mesh probes and advances these FIFOs on every network cycle for
 * every active router, so the common operations (empty / front / pop)
 * must be a couple of loads — a std::deque's segmented iterators showed
 * up hard in profiles. The power-of-two ring grows on demand; a port
 * may additionally declare a hard bound (its credit allotment), and a
 * push past the bound panics rather than silently reordering packets:
 * credits are supposed to make that unreachable, and at 1024 nodes a
 * silent wraparound would corrupt packet order far from the bug.
 */

#ifndef LIMITLESS_NETWORK_FLIT_FIFO_HH
#define LIMITLESS_NETWORK_FLIT_FIFO_HH

#include <cstddef>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace limitless
{

struct Packet;

/** One flit on the wire; packets decompose into 1 routing flit plus
 *  flitsPerWord flits per word. */
struct Flit
{
    Packet *pkt;  ///< owning fabric frees in-flight flits on teardown
    bool head;
    bool tail;
    NodeId dest;
};

/** Growable ring buffer of flits with an optional hard bound. */
class FlitFifo
{
  public:
    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return _buf.size(); }
    std::size_t bound() const { return _bound; }
    const Flit &front() const { return _buf[_head]; }

    /** i-th element from the front (teardown scan). */
    const Flit &at(std::size_t i) const
    {
        return _buf[(_head + i) & _mask];
    }

    /**
     * Cap occupancy at @p flits (0 = unbounded). Bounded ports are the
     * credit-controlled mesh inputs; the Local injection port stays
     * unbounded and simply grows.
     */
    void
    setBound(std::size_t flits)
    {
        _bound = flits;
    }

    void
    push_back(const Flit &f)
    {
        if (_bound && _count >= _bound)
            panic("flit fifo overflow: %zu flits buffered, bound %zu — "
                  "credit flow control violated",
                  _count, _bound);
        if (_count == _buf.size())
            grow();
        _buf[(_head + _count) & _mask] = f;
        ++_count;
    }

    void
    pop_front()
    {
        _head = (_head + 1) & _mask;
        --_count;
    }

  private:
    void
    grow()
    {
        // Unwrap into a buffer of twice the capacity.
        std::vector<Flit> bigger(_buf.size() * 2);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = _buf[(_head + i) & _mask];
        _buf.swap(bigger);
        _mask = _buf.size() - 1;
        _head = 0;
    }

    std::vector<Flit> _buf = std::vector<Flit>(16);
    std::size_t _mask = 15;
    std::size_t _head = 0;
    std::size_t _count = 0;
    std::size_t _bound = 0;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_FLIT_FIFO_HH
