/**
 * @file
 * Contention-free network model.
 *
 * Every packet arrives after base + hops * perHop + serialization latency,
 * with point-to-point FIFO ordering enforced. Useful for protocol unit
 * tests and as the "no hot-spot contention" ablation (design decision D5):
 * the paper notes that earlier directory studies missed the Weather
 * pathology precisely because their network model had no hot-spot
 * behaviour.
 */

#ifndef LIMITLESS_NETWORK_IDEAL_NETWORK_HH
#define LIMITLESS_NETWORK_IDEAL_NETWORK_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "network/network.hh"
#include "network/topology.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Latency parameters for the ideal model. Defaults are calibrated to
 *  the wormhole mesh's zero-load latency (one cycle per hop for the
 *  head flit, one cycle per word of serialization), so swapping network
 *  models isolates *contention* effects only. */
struct IdealNetworkParams
{
    Tick baseLatency = 2;    ///< fixed launch + eject overhead
    Tick perHopLatency = 1;  ///< per mesh hop
    Tick perWordLatency = 1; ///< serialization cost per packet word
};

/** Fixed-latency, infinite-bandwidth network. */
class IdealNetwork : public Network
{
  public:
    IdealNetwork(EventQueue &eq, std::shared_ptr<const Topology> topo,
                 IdealNetworkParams params = {});

    void send(PacketPtr pkt) override;
    void setReceiver(NodeId node, Receiver recv) override;
    unsigned numNodes() const override { return _topo->numNodes(); }
    bool busy() const override { return _inFlight != 0; }

    const Topology &topology() const { return *_topo; }

    StatSet &stats() { return _stats; }
    const StatSet *statSet() const override { return &_stats; }

  private:
    EventQueue &_eq;
    std::shared_ptr<const Topology> _topo;
    IdealNetworkParams _params;
    std::vector<Receiver> _receivers;
    /** Last delivery tick per (src, dest), for FIFO ordering. */
    std::unordered_map<std::uint64_t, Tick> _lastDelivery;
    std::uint64_t _inFlight = 0;

    StatSet _stats{"net"};
    Counter &_statPackets;
    Counter &_statWords;
    Accumulator &_statLatency;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_IDEAL_NETWORK_HH
