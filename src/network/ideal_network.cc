#include "network/ideal_network.hh"

#include <algorithm>

#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

TraceEvent
netEvent(Tick ts, const char *name, const Packet &pkt, NodeId node)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.name = name;
    ev.cat = EventCat::net;
    ev.node = node;
    if (isProtocolOpcode(pkt.opcode) && !pkt.operands.empty())
        ev.line = pkt.addr();
    ev.op = pkt.opcode;
    ev.hasOp = true;
    ev.src = pkt.src;
    ev.dest = pkt.dest;
    return ev;
}

} // namespace

IdealNetwork::IdealNetwork(EventQueue &eq,
                           std::shared_ptr<const Topology> topo,
                           IdealNetworkParams params)
    : _eq(eq), _topo(std::move(topo)), _params(params),
      _receivers(_topo->numNodes()),
      _statPackets(_stats.counter("packets", "packets delivered")),
      _statWords(_stats.counter("words", "packet words delivered")),
      _statLatency(_stats.accumulator("latency", "packet latency (cycles)"))
{
}

void
IdealNetwork::setReceiver(NodeId node, Receiver recv)
{
    _receivers.at(node) = std::move(recv);
}

void
IdealNetwork::send(PacketPtr pkt)
{
    assert(pkt);
    assert(pkt->src < numNodes() && pkt->dest < numNodes());
    const Tick lat = _params.baseLatency +
                     _params.perHopLatency * _topo->hops(pkt->src, pkt->dest) +
                     _params.perWordLatency * pkt->lengthWords();
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pkt->src) << 32) | pkt->dest;
    Tick arrive = _eq.now() + lat;
    auto [it, inserted] = _lastDelivery.try_emplace(key, 0);
    // FIFO per source/destination pair: never deliver before (or at the
    // same tick as) a previously sent packet on the same pair.
    arrive = std::max(arrive, it->second + 1);
    it->second = arrive;

    ++_inFlight;
    _statPackets += 1;
    _statWords += pkt->lengthWords();
    _statLatency.sample(static_cast<double>(arrive - _eq.now()));
    FR_RECORD(netEvent(_eq.now(), "send", *pkt, pkt->src));

    Packet *raw = pkt.release();
    auto delivery = [this, raw]() {
        PacketPtr owned(raw);
        --_inFlight;
        FR_RECORD(netEvent(_eq.now(), "recv", *owned, owned->dest));
        Receiver &recv = _receivers.at(owned->dest);
        if (!recv)
            panic("ideal network: no receiver at node %u", owned->dest);
        if (Log::enabled("net"))
            Log::debug(_eq.now(), "net", "deliver %s",
                       describePacket(*owned).c_str());
        recv(std::move(owned));
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(delivery)>,
                  "ideal-network delivery event must not heap-allocate");
    _eq.schedule(arrive, std::move(delivery), EventPriority::deliver);
}

} // namespace limitless
