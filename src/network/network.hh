/**
 * @file
 * Abstract interconnection network interface.
 *
 * A Network moves whole packets between node endpoints. Implementations
 * model contention at different fidelities (IdealNetwork, MeshNetwork).
 * Both preserve point-to-point FIFO ordering, which the coherence protocol
 * relies on as a simplifying assumption (deterministic X-Y wormhole
 * routing with one virtual channel provides this naturally in hardware).
 */

#ifndef LIMITLESS_NETWORK_NETWORK_HH
#define LIMITLESS_NETWORK_NETWORK_HH

#include <functional>

#include "proto/packet.hh"
#include "sim/types.hh"

namespace limitless
{

class StatSet;

/** Packet-moving fabric connecting all nodes of a machine. */
class Network
{
  public:
    using Receiver = std::function<void(PacketPtr)>;

    virtual ~Network() = default;

    /** Inject a packet; pkt->src and pkt->dest must be valid node ids. */
    virtual void send(PacketPtr pkt) = 0;

    /** Register the delivery callback for a node's network input. */
    virtual void setReceiver(NodeId node, Receiver recv) = 0;

    /** Number of endpoint nodes. */
    virtual unsigned numNodes() const = 0;

    /** True while any packet is in flight (used by deadlock watchdogs). */
    virtual bool busy() const = 0;

    /** The fabric's stats, if the implementation keeps any. */
    virtual const StatSet *statSet() const { return nullptr; }
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_NETWORK_HH
