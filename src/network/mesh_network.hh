/**
 * @file
 * Flit-level 2-D mesh with wormhole routing (paper Section 2: "the nodes
 * communicate via messages through a direct network with a mesh topology
 * using wormhole routing").
 *
 * Model:
 *  - dimension-ordered X-Y routing (deadlock-free, preserves p2p FIFO);
 *  - one virtual channel; an output port is held by a packet from its head
 *    flit until its tail flit passes (wormhole, no interleaving);
 *  - credit-based flow control against finite input FIFOs;
 *  - one flit per output port per network cycle; ejection consumes one
 *    flit per cycle, so heavily contended home nodes back up the fabric —
 *    this is the hot-spot behaviour Figure 8 of the paper depends on.
 *
 * Packets are decomposed into 1 routing flit + flitsPerWord flits per
 * packet word. The whole fabric is a single clocked object that sleeps
 * when no flits are in flight.
 */

#ifndef LIMITLESS_NETWORK_MESH_NETWORK_HH
#define LIMITLESS_NETWORK_MESH_NETWORK_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "network/network.hh"
#include "network/topology.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Mesh configuration. */
struct MeshNetworkParams
{
    unsigned flitsPerWord = 1;  ///< flits per packet word (calibrated so Th~40)
    unsigned inputFifoFlits = 8; ///< per-port buffering
    Tick clockPeriod = 1;       ///< network cycle in processor cycles
};

/** Wormhole-routed mesh network. */
class MeshNetwork : public Network
{
  public:
    MeshNetwork(EventQueue &eq, MeshTopology topo,
                MeshNetworkParams params = {});
    ~MeshNetwork() override;

    void send(PacketPtr pkt) override;
    void setReceiver(NodeId node, Receiver recv) override;
    unsigned numNodes() const override { return _topo.numNodes(); }
    bool busy() const override { return _activeFlits != 0; }

    StatSet &stats() { return _stats; }
    const StatSet *statSet() const override { return &_stats; }

    /**
     * Per-router telemetry, allocated on demand so the un-instrumented
     * hot path pays exactly one pointer test per flit hop. flitHops is
     * cumulative per router (the mesh hotspot top-k is derived from it);
     * the window peak is a reset-on-read high-water mark of flits
     * buffered in any single router.
     */
    struct MeshTelemetry
    {
        std::vector<std::uint64_t> flitHops; ///< per router, cumulative
        unsigned windowPeakDepth = 0;
    };

    void enableTelemetry();
    const MeshTelemetry *meshTelemetry() const { return _telem.get(); }

    /** Highest per-router buffered-flit count since the last call
     *  (telemetry gauge; resets the high-water mark). */
    unsigned
    takeWindowPeakDepth()
    {
        if (!_telem)
            return 0;
        const unsigned peak = _telem->windowPeakDepth;
        _telem->windowPeakDepth = 0;
        return peak;
    }

    /** Flits a given packet occupies on the wire. */
    unsigned
    flitsForPacket(const Packet &pkt) const
    {
        return 1 + pkt.lengthWords() * _params.flitsPerWord;
    }

  private:
    /** Port indices; Local is both injection input and ejection output. */
    enum Port { N = 0, E = 1, S = 2, W = 3, Local = 4, numPorts = 5 };

    struct Flit
    {
        Packet *pkt;  ///< owning MeshNetwork frees in-flight on teardown
        bool head;
        bool tail;
        NodeId dest;
    };

    /**
     * Growable ring buffer of flits. The mesh probes and advances these
     * FIFOs on every network cycle for every active router, so the
     * common operations (empty / front / pop) must be a couple of loads
     * — a std::deque's segmented iterators showed up hard in profiles.
     * Mesh ports are bounded by inputFifoFlits; only the Local
     * (injection) port ever grows.
     */
    class FlitFifo
    {
      public:
        bool empty() const { return _count == 0; }
        std::size_t size() const { return _count; }
        const Flit &front() const { return _buf[_head]; }
        /** i-th element from the front (teardown scan). */
        const Flit &at(std::size_t i) const
        {
            return _buf[(_head + i) & _mask];
        }

        void
        push_back(const Flit &f)
        {
            if (_count == _buf.size())
                grow();
            _buf[(_head + _count) & _mask] = f;
            ++_count;
        }

        void
        pop_front()
        {
            _head = (_head + 1) & _mask;
            --_count;
        }

      private:
        void grow();

        std::vector<Flit> _buf = std::vector<Flit>(16);
        std::size_t _mask = 15;
        std::size_t _head = 0;
        std::size_t _count = 0;
    };

    struct InputPort
    {
        FlitFifo fifo;
    };

    struct OutputPort
    {
        int owner = -1; ///< input index holding this port, -1 if free
        unsigned rr = 0; ///< round-robin arbitration pointer
    };

    struct Router
    {
        std::array<InputPort, numPorts> in;
        std::array<OutputPort, numPorts> out;
        unsigned flits = 0; ///< total flits buffered in this router
        /** Bit per input port with flits queued; every FIFO push/pop
         *  (send, applyMove) keeps it in sync so the planner iterates
         *  set bits instead of probing all five FIFOs. */
        std::uint8_t nonEmptyMask = 0;
        /** Bit per output port currently owned by a packet. */
        std::uint8_t ownerMask = 0;
    };

    /** A planned single-flit move, applied after all routers plan. */
    struct Move
    {
        unsigned fromRouter;
        unsigned fromPort;
        unsigned toRouter; ///< meaningful unless eject
        unsigned toPort;
        bool eject;
        bool releaseOwner;
        unsigned outPort; ///< output being traversed at fromRouter
    };

    void tick();
    void planRouter(unsigned r);
    void applyMove(const Move &move);
    unsigned routeOutput(unsigned router, NodeId dest) const;
    unsigned neighborOf(unsigned router, unsigned out_port) const;
    unsigned inputPortAtNeighbor(unsigned out_port) const;
    void scheduleTickIfNeeded();
    void deliver(Packet *raw);

    /** Track a router's flit count crossing zero in the active bitmap. */
    void
    noteFlits(unsigned r, unsigned delta_add, unsigned delta_sub)
    {
        Router &router = _routers[r];
        router.flits += delta_add;
        router.flits -= delta_sub;
        if (_telem && delta_add && router.flits > _telem->windowPeakDepth)
            _telem->windowPeakDepth = router.flits;
        if (router.flits)
            _activeRouters[r / 64] |= std::uint64_t{1} << (r % 64);
        else
            _activeRouters[r / 64] &= ~(std::uint64_t{1} << (r % 64));
    }

    EventQueue &_eq;
    MeshTopology _topo;
    MeshNetworkParams _params;
    std::vector<Router> _routers;
    std::vector<Receiver> _receivers;
    std::unique_ptr<MeshTelemetry> _telem; ///< null unless enabled
    std::uint64_t _activeFlits = 0;
    bool _tickScheduled = false;

    /** Per-tick planning scratch, hoisted so tick() never allocates. */
    std::vector<Move> _moves;
    std::vector<std::uint8_t> _staged;

    /**
     * X-Y routing and neighbor lookups precomputed per (router, dest) /
     * (router, port): the planner consults them for every output port of
     * every active router every cycle, and the modulo arithmetic in
     * routeOutput() dominated the tick before they were tabulated.
     */
    std::vector<std::uint8_t> _routeTable;  ///< [r * numNodes + dest]
    std::vector<std::uint32_t> _neighborTable; ///< [r * numPorts + port]

    /** One bit per router with flits buffered; tick() scans set bits. */
    std::vector<std::uint64_t> _activeRouters;

    StatSet _stats{"net"};
    Counter &_statPackets;
    Counter &_statFlits;
    Counter &_statFlitHops;
    Accumulator &_statLatency;
    Counter &_statBlockedCycles;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_MESH_NETWORK_HH
