/**
 * @file
 * Flit-level 2-D mesh with wormhole routing (paper Section 2: "the nodes
 * communicate via messages through a direct network with a mesh topology
 * using wormhole routing").
 *
 * Model:
 *  - dimension-ordered X-Y routing (deadlock-free, preserves p2p FIFO);
 *  - one virtual channel; an output port is held by a packet from its head
 *    flit until its tail flit passes (wormhole, no interleaving);
 *  - credit-based flow control against finite input FIFOs;
 *  - one flit per output port per network cycle; ejection consumes one
 *    flit per cycle, so heavily contended home nodes back up the fabric —
 *    this is the hot-spot behaviour Figure 8 of the paper depends on.
 *
 * Packets are decomposed into 1 routing flit + flitsPerWord flits per
 * packet word. The whole fabric is a single clocked object that sleeps
 * when no flits are in flight.
 */

#ifndef LIMITLESS_NETWORK_MESH_NETWORK_HH
#define LIMITLESS_NETWORK_MESH_NETWORK_HH

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "network/network.hh"
#include "network/topology.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Mesh configuration. */
struct MeshNetworkParams
{
    unsigned flitsPerWord = 1;  ///< flits per packet word (calibrated so Th~40)
    unsigned inputFifoFlits = 8; ///< per-port buffering
    Tick clockPeriod = 1;       ///< network cycle in processor cycles
};

/** Wormhole-routed mesh network. */
class MeshNetwork : public Network
{
  public:
    MeshNetwork(EventQueue &eq, MeshTopology topo,
                MeshNetworkParams params = {});
    ~MeshNetwork() override;

    void send(PacketPtr pkt) override;
    void setReceiver(NodeId node, Receiver recv) override;
    unsigned numNodes() const override { return _topo.numNodes(); }
    bool busy() const override { return _activeFlits != 0; }

    StatSet &stats() { return _stats; }
    const StatSet *statSet() const override { return &_stats; }

    /** Flits a given packet occupies on the wire. */
    unsigned
    flitsForPacket(const Packet &pkt) const
    {
        return 1 + pkt.lengthWords() * _params.flitsPerWord;
    }

  private:
    /** Port indices; Local is both injection input and ejection output. */
    enum Port { N = 0, E = 1, S = 2, W = 3, Local = 4, numPorts = 5 };

    struct Flit
    {
        Packet *pkt;  ///< owning MeshNetwork frees in-flight on teardown
        bool head;
        bool tail;
        NodeId dest;
    };

    struct InputPort
    {
        std::deque<Flit> fifo;
    };

    struct OutputPort
    {
        int owner = -1; ///< input index holding this port, -1 if free
        unsigned rr = 0; ///< round-robin arbitration pointer
    };

    struct Router
    {
        std::array<InputPort, numPorts> in;
        std::array<OutputPort, numPorts> out;
        unsigned flits = 0; ///< total flits buffered in this router
    };

    /** A planned single-flit move, applied after all routers plan. */
    struct Move
    {
        unsigned fromRouter;
        unsigned fromPort;
        unsigned toRouter; ///< meaningful unless eject
        unsigned toPort;
        bool eject;
        bool releaseOwner;
        unsigned outPort; ///< output being traversed at fromRouter
    };

    void tick();
    void planRouter(unsigned r, std::vector<Move> &moves,
                    std::vector<std::uint8_t> &staged);
    void applyMove(const Move &move);
    unsigned routeOutput(unsigned router, NodeId dest) const;
    unsigned neighborOf(unsigned router, unsigned out_port) const;
    unsigned inputPortAtNeighbor(unsigned out_port) const;
    void scheduleTickIfNeeded();
    void deliver(Packet *raw);

    EventQueue &_eq;
    MeshTopology _topo;
    MeshNetworkParams _params;
    std::vector<Router> _routers;
    std::vector<Receiver> _receivers;
    std::unordered_map<Packet *, Tick> _injectTick;
    std::uint64_t _activeFlits = 0;
    bool _tickScheduled = false;

    StatSet _stats{"net"};
    Counter &_statPackets;
    Counter &_statFlits;
    Counter &_statFlitHops;
    Accumulator &_statLatency;
    Counter &_statBlockedCycles;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_MESH_NETWORK_HH
