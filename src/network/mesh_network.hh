/**
 * @file
 * Flit-level wormhole-routed fabric (paper Section 2: "the nodes
 * communicate via messages through a direct network with a mesh topology
 * using wormhole routing").
 *
 * Model:
 *  - routing, channel structure and VC discipline come from the
 *    Topology (mesh: dimension-ordered X-Y; torus: dimension-ordered
 *    with dateline VCs; express mesh: jumps-then-walks);
 *  - an output port is held by a packet from its head flit until its
 *    tail flit passes (wormhole, no interleaving);
 *  - credit-based flow control against finite input FIFOs, per virtual
 *    channel;
 *  - one flit per output port per network cycle; ejection consumes one
 *    flit per cycle, so heavily contended home nodes back up the fabric —
 *    this is the hot-spot behaviour Figure 8 of the paper depends on.
 *
 * Router ports are per-neighbor (plus one Local injection/ejection
 * port, always last), not a fixed five: a torus corner has four links x
 * two VCs, a mesh corner just two. Packets are decomposed into
 * 1 routing flit + flitsPerWord flits per packet word. The whole fabric
 * is a single clocked object that sleeps when no flits are in flight.
 */

#ifndef LIMITLESS_NETWORK_MESH_NETWORK_HH
#define LIMITLESS_NETWORK_MESH_NETWORK_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "network/flit_fifo.hh"
#include "network/network.hh"
#include "network/topology.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_kernel.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Wormhole fabric configuration (buffering and timing; the shape is
 *  the Topology's business). */
struct WormholeParams
{
    unsigned flitsPerWord = 1;  ///< flits per packet word (calibrated so Th~40)
    unsigned inputFifoFlits = 8; ///< per-port, per-VC buffering
    Tick clockPeriod = 1;       ///< network cycle in processor cycles
};

/**
 * Wormhole-routed network over an arbitrary grid Topology.
 *
 * The fabric is the one simulation object spanning node partitions, so
 * it doubles as the parallel kernel's ParallelCoupling: in shard mode
 * (setShard) the serial per-cycle tick() is replaced by the three
 * barrier-separated phases planShard / applyShard / drainShard, with
 * all cross-partition flit movement staged through per-(src,dst)
 * partition channels and every statistic accumulated into
 * per-partition shards that the window epilogue folds back — in an
 * order chosen so the folded values are bit-identical to the serial
 * kernel's (docs/PERFORMANCE.md lays out the argument). The serial
 * path is never touched by shard-mode code: with setShard never
 * called, behaviour is byte-identical to previous releases.
 */
class MeshNetwork : public Network, public ParallelCoupling
{
  public:
    MeshNetwork(EventQueue &eq, std::shared_ptr<const Topology> topo,
                WormholeParams params = {});
    ~MeshNetwork() override;

    void send(PacketPtr pkt) override;
    void setReceiver(NodeId node, Receiver recv) override;
    unsigned numNodes() const override { return _numNodes; }
    bool busy() const override { return _activeFlits != 0; }

    const Topology &topology() const { return *_topo; }

    StatSet &stats() { return _stats; }
    const StatSet *statSet() const override { return &_stats; }

    /** Most ports any router may have (8 express links x 2 VCs +
     *  Local would be 17, but no shipped topology combines them; the
     *  masks below are 16 bits wide). */
    static constexpr unsigned maxPorts = 16;

    /**
     * Per-router telemetry, allocated on demand so the un-instrumented
     * hot path pays exactly one pointer test per flit hop. flitHops is
     * cumulative per router (the mesh hotspot top-k is derived from it);
     * the window peak is a reset-on-read high-water mark of flits
     * buffered in any single router.
     */
    struct MeshTelemetry
    {
        std::vector<std::uint64_t> flitHops; ///< per router, cumulative
        unsigned windowPeakDepth = 0;
    };

    void enableTelemetry();
    const MeshTelemetry *meshTelemetry() const { return _telem.get(); }

    /** Highest per-router buffered-flit count since the last call
     *  (telemetry gauge; resets the high-water mark). */
    unsigned
    takeWindowPeakDepth()
    {
        if (!_telem)
            return 0;
        const unsigned peak = _telem->windowPeakDepth;
        _telem->windowPeakDepth = 0;
        return peak;
    }

    /** Flits a given packet occupies on the wire. */
    unsigned
    flitsForPacket(const Packet &pkt) const
    {
        return 1 + pkt.lengthWords() * _params.flitsPerWord;
    }

    /** Peak capacity (in flits) any single input FIFO has reached;
     *  exercised by the hotspot overflow regression test. */
    std::size_t
    maxFifoCapacity() const
    {
        std::size_t cap = 0;
        for (const FlitFifo &fifo : _inPorts)
            if (fifo.capacity() > cap)
                cap = fifo.capacity();
        return cap;
    }

    /**
     * Enter shard mode for the parallel kernel: @p part_of maps each
     * router to its partition (contiguous, ascending), @p queues is the
     * per-partition event queue array. From here on the kernel drives
     * the fabric through the ParallelCoupling phases and no tick events
     * are ever scheduled; send() and delivery switch to per-partition
     * accounting. Call before any packet is injected.
     */
    void setShard(std::vector<unsigned> part_of,
                  std::vector<EventQueue *> queues);

    /**
     * Flits handed to a *different* partition's routers since shard
     * mode began (cumulative; 0 in serial mode). The inter-partition
     * traffic signal for the pk.* utilization telemetry. Only safe to
     * read where shard counters are stable: the serial window tail or
     * after the run.
     */
    std::uint64_t
    crossPartitionFlits() const
    {
        std::uint64_t total = 0;
        for (const Shard &sh : _shards)
            total += sh.xpartFlits;
        return total;
    }

    // ParallelCoupling (parallel kernel's view of the fabric).
    Tick nextCoupledTick() const override { return _netNext; }
    void planShard(unsigned p) override;
    void applyShard(unsigned p) override;
    void drainShard(unsigned p) override;
    void coupledEpilogue(Tick window, bool ranCoupled) override;

  private:
    struct OutputPort
    {
        int owner = -1; ///< input index holding this port, -1 if free
        unsigned rr = 0; ///< round-robin arbitration pointer
    };

    struct Router
    {
        unsigned flits = 0; ///< total flits buffered in this router
        /** Bit per input port with flits queued; every FIFO push/pop
         *  (send, applyMove) keeps it in sync so the planner iterates
         *  set bits instead of probing every FIFO. */
        std::uint16_t nonEmptyMask = 0;
        /** Bit per output port currently owned by a packet. */
        std::uint16_t ownerMask = 0;
    };

    /** A planned single-flit move, applied after all routers plan. */
    struct Move
    {
        unsigned fromRouter;
        unsigned fromPort;
        unsigned toRouter; ///< meaningful unless eject
        unsigned toPort;
        bool eject;
        bool releaseOwner;
        unsigned outPort; ///< output being traversed at fromRouter
    };

    /** One staged cross-partition (or same-partition, for ordering)
     *  flit movement; fromRouter drives the exact peak-depth
     *  reconstruction and is ascending within a channel. */
    struct StagedPush
    {
        Flit flit;
        std::uint32_t toRouter;
        std::uint32_t fromRouter;
        std::uint8_t toPort;
    };

    /**
     * Per-partition accounting, folded into the real counters by the
     * window epilogue (coordinator thread, workers parked) in an order
     * that reproduces the serial kernel's values exactly: integer
     * counters are commutative, latency samples replay in partition
     * (= ascending-router = serial move) order into the
     * order-sensitive Welford accumulator, and the window peak merges
     * by max. Cache-line aligned so two partitions' hot counters never
     * false-share.
     */
    struct alignas(64) Shard
    {
        std::vector<Move> moves;      ///< plan scratch
        std::vector<double> latency;  ///< deliver samples, in order
        std::vector<unsigned> poppedRouters; ///< _tickPops to clear
        std::uint64_t packets = 0;
        std::uint64_t flits = 0;
        std::uint64_t flitHops = 0;
        std::uint64_t blocked = 0;
        /** Flits staged to another partition; cumulative, *not* folded
         *  or reset by the epilogue (host-utilization observability,
         *  not a simulated-machine statistic). */
        std::uint64_t xpartFlits = 0;
        std::int64_t activeDelta = 0; ///< +injected -ejected flits
        unsigned peak = 0;            ///< windowPeakDepth candidate
    };

    void tick();
    void planRouter(unsigned r, std::vector<Move> &moves,
                    std::uint64_t &blocked);
    void applyMove(const Move &move);
    void applyMoveShard(const Move &move, unsigned p);
    void scheduleTickIfNeeded();
    void deliver(Packet *raw);
    void deliverShard(Packet *raw, unsigned p);

    /**
     * Active-router bitmap updates in shard mode: a 64-router word can
     * straddle a partition boundary, so the bit flips must be atomic
     * (relaxed is enough — the phase barriers order everything else).
     */
    void
    noteFlitsShard(unsigned r, bool nowActive)
    {
        std::atomic_ref<std::uint64_t> word(_activeRouters[r / 64]);
        if (nowActive)
            word.fetch_or(std::uint64_t{1} << (r % 64),
                          std::memory_order_relaxed);
        else
            word.fetch_and(~(std::uint64_t{1} << (r % 64)),
                           std::memory_order_relaxed);
    }

    unsigned numPortsOf(unsigned r) const
    {
        return _portBase[r + 1] - _portBase[r];
    }

    /** Track a router's flit count crossing zero in the active bitmap. */
    void
    noteFlits(unsigned r, unsigned delta_add, unsigned delta_sub)
    {
        Router &router = _routers[r];
        router.flits += delta_add;
        router.flits -= delta_sub;
        if (_telem && delta_add && router.flits > _telem->windowPeakDepth)
            _telem->windowPeakDepth = router.flits;
        if (router.flits)
            _activeRouters[r / 64] |= std::uint64_t{1} << (r % 64);
        else
            _activeRouters[r / 64] &= ~(std::uint64_t{1} << (r % 64));
    }

    EventQueue &_eq;
    std::shared_ptr<const Topology> _topo;
    WormholeParams _params;
    unsigned _numNodes;
    unsigned _vcs; ///< virtual channels per link (1 or 2)
    std::vector<Router> _routers;
    std::vector<Receiver> _receivers;
    std::unique_ptr<MeshTelemetry> _telem; ///< null unless enabled
    std::uint64_t _activeFlits = 0;
    bool _tickScheduled = false;

    /** Per-tick planning scratch, hoisted so tick() never allocates. */
    std::vector<Move> _moves;
    std::vector<std::uint8_t> _staged;

    /**
     * Flat per-port state: router r owns indices [_portBase[r],
     * _portBase[r+1]). Port layout per router: channel c's VC v at
     * index c * vcs + v, the Local injection/ejection port last —
     * which preserves the N, E, S, W, Local arbitration order of the
     * original fixed-five-port mesh router.
     */
    std::vector<std::uint32_t> _portBase; ///< size numNodes + 1
    std::vector<FlitFifo> _inPorts;
    std::vector<OutputPort> _outPorts;

    /**
     * Routing and link lookups precomputed per (router, dest) / port:
     * the planner consults them for every waiting head flit of every
     * active router every cycle, and virtual calls or modulo
     * arithmetic there dominated the tick before they were tabulated.
     *
     * _routeTable holds channel * vcs + datelineBaseVc, or localSelf
     * for dest == router; with two VCs the dateline carry bit is OR'd
     * in from the input port's VC when input and output channels share
     * a dimension class (_chanDimMask).
     */
    static constexpr std::uint8_t localSelf = 0xFF;
    std::vector<std::uint8_t> _routeTable;  ///< [r * numNodes + dest]
    std::vector<std::uint16_t> _chanDimMask; ///< bit per channel: dim
    std::vector<std::uint32_t> _destRouter; ///< per port: link target
    std::vector<std::uint8_t> _destPort;    ///< per port: input there

    /** One bit per router with flits buffered; tick() scans set bits. */
    std::vector<std::uint64_t> _activeRouters;

    // ---- shard mode (parallel kernel) ----
    bool _shard = false;
    unsigned _numParts = 0;
    std::vector<unsigned> _partOf;         ///< router -> partition
    std::vector<unsigned> _partLo;         ///< partition -> first router
    std::vector<EventQueue *> _shardQueues; ///< partition clocks/queues
    std::vector<Shard> _shards;
    /**
     * SPSC channels, index src * P + dst: written only by partition
     * src's applyShard, drained and cleared only by partition dst's
     * drainShard, with a barrier between. Draining src = 0..P-1 in
     * order restores the serial kernel's ascending-fromRouter push
     * order (partitions are contiguous router ranges).
     */
    std::vector<std::vector<StagedPush>> _chan;
    /** Flits popped from each router this window (telemetry only):
     *  reconstructs the serial kernel's intermediate buffer depths for
     *  the exact windowPeakDepth. Owned by the router's partition;
     *  reset via Shard::poppedRouters at the end of drainShard. */
    std::vector<std::uint16_t> _tickPops;
    /** Next fabric cycle under the kernel (maxTick = no flits in
     *  flight); recomputed by every window epilogue exactly as the
     *  serial scheduleTickIfNeeded would. */
    Tick _netNext = maxTick;

    StatSet _stats{"net"};
    Counter &_statPackets;
    Counter &_statFlits;
    Counter &_statFlitHops;
    Accumulator &_statLatency;
    Counter &_statBlockedCycles;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_MESH_NETWORK_HH
