#include "network/mesh_network.hh"

#include <bit>
#include <cassert>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

TraceEvent
netEvent(Tick ts, const char *name, const Packet &pkt, NodeId node)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.name = name;
    ev.cat = EventCat::net;
    ev.node = node;
    if (isProtocolOpcode(pkt.opcode) && !pkt.operands.empty())
        ev.line = pkt.addr();
    ev.op = pkt.opcode;
    ev.hasOp = true;
    ev.src = pkt.src;
    ev.dest = pkt.dest;
    return ev;
}

} // namespace

MeshNetwork::MeshNetwork(EventQueue &eq, std::shared_ptr<const Topology> topo,
                         WormholeParams params)
    : _eq(eq), _topo(std::move(topo)), _params(params),
      _numNodes(_topo->numNodes()), _vcs(_topo->numVcs()),
      _routers(_numNodes), _receivers(_numNodes),
      _statPackets(_stats.counter("packets", "packets delivered")),
      _statFlits(_stats.counter("flits", "flits injected")),
      _statFlitHops(_stats.counter("flit_hops", "flit-hops traversed")),
      _statLatency(
          _stats.accumulator("latency", "packet latency (cycles)")),
      _statBlockedCycles(
          _stats.counter("blocked", "output-port cycles blocked on credit"))
{
    assert(_params.flitsPerWord >= 1);
    assert(_params.inputFifoFlits >= 2);
    assert(_vcs >= 1 && _vcs <= 2 && "fabric supports 1 or 2 VCs");
    _moves.reserve(32);

    const unsigned n = _numNodes;
    const Topology &topof = *_topo;

    // Port layout: channel c's VC v at index c * vcs + v, Local last.
    _portBase.resize(n + 1);
    _portBase[0] = 0;
    for (unsigned r = 0; r < n; ++r) {
        const unsigned deg =
            static_cast<unsigned>(topof.neighbors(r).size());
        const unsigned ports = deg * _vcs + 1;
        assert(ports <= maxPorts && "router exceeds port-mask width");
        _portBase[r + 1] = _portBase[r] + ports;
    }
    const std::uint32_t total = _portBase[n];
    _inPorts.resize(total);
    _outPorts.resize(total);
    _staged.resize(total, 0);
    _activeRouters.resize((n + 63) / 64, 0);

    // Neighbor ports are credit-bounded; Local (last) grows on demand.
    for (unsigned r = 0; r < n; ++r)
        for (std::uint32_t p = _portBase[r]; p + 1 < _portBase[r + 1]; ++p)
            _inPorts[p].setBound(_params.inputFifoFlits);

    // Tabulate routing, dimension classes and link endpoints once; the
    // planner consults them for every waiting head flit of every active
    // router every cycle.
    _chanDimMask.assign(n, 0);
    _destRouter.resize(total, 0);
    _destPort.resize(total, 0);
    for (unsigned r = 0; r < n; ++r) {
        const auto &nbrs = topof.neighbors(r);
        for (unsigned c = 0; c < nbrs.size(); ++c) {
            if (topof.channelDim(r, c))
                _chanDimMask[r] |= std::uint16_t{1} << c;
            const unsigned rev = topof.reverseChannel(r, c);
            for (unsigned v = 0; v < _vcs; ++v) {
                const std::uint32_t port = _portBase[r] + c * _vcs + v;
                _destRouter[port] = nbrs[c];
                _destPort[port] =
                    static_cast<std::uint8_t>(rev * _vcs + v);
            }
        }
    }
    _routeTable.resize(std::size_t{n} * n);
    for (unsigned r = 0; r < n; ++r) {
        for (unsigned d = 0; d < n; ++d) {
            std::uint8_t entry = localSelf;
            if (d != r) {
                const unsigned ch = topof.nextChannel(r, d);
                const unsigned base_vc =
                    _vcs == 2 && topof.channelWrap(r, ch) ? 1 : 0;
                entry = static_cast<std::uint8_t>(ch * _vcs + base_vc);
            }
            _routeTable[std::size_t{r} * n + d] = entry;
        }
    }
}

MeshNetwork::~MeshNetwork()
{
    // Retire any packets still in flight at teardown. Every undelivered
    // packet has exactly one tail flit buffered somewhere (delivery — and
    // hence removal from the fabric — happens when the tail ejects), so
    // freeing on tail flits frees each in-flight packet exactly once.
    for (FlitFifo &fifo : _inPorts) {
        for (std::size_t i = 0; i < fifo.size(); ++i) {
            if (fifo.at(i).tail)
                PacketDeleter{}(fifo.at(i).pkt);
        }
    }
}

void
MeshNetwork::setReceiver(NodeId node, Receiver recv)
{
    _receivers.at(node) = std::move(recv);
}

void
MeshNetwork::send(PacketPtr pkt)
{
    assert(pkt);
    assert(pkt->src < numNodes() && pkt->dest < numNodes());
    const unsigned flits = flitsForPacket(*pkt);
    if (_shard) {
        // Shard mode: the caller is the thread owning src's partition
        // (node work only runs there), so every touched structure —
        // src's router, the partition shard, the partition clock — is
        // single-writer. No tick event is scheduled; the epilogue's
        // activeDelta fold makes the kernel run the fabric next tick.
        const unsigned p = _partOf[pkt->src];
        EventQueue &eq = *_shardQueues[p];
        FR_RECORD(netEvent(eq.now(), "send", *pkt, pkt->src));
        Packet *raw = pkt.release();
        raw->injectTick = eq.now();

        const unsigned local = numPortsOf(raw->src) - 1;
        FlitFifo &fifo = _inPorts[_portBase[raw->src] + local];
        for (unsigned i = 0; i < flits; ++i)
            fifo.push_back(Flit{raw, i == 0, i == flits - 1, raw->dest});
        Router &router = _routers[raw->src];
        router.nonEmptyMask |= std::uint16_t{1} << local;
        router.flits += flits;
        Shard &sh = _shards[p];
        if (_telem && router.flits > sh.peak)
            sh.peak = router.flits;
        if (router.flits == flits)
            noteFlitsShard(raw->src, true);
        sh.activeDelta += flits;
        sh.flits += flits;
        return;
    }
    FR_RECORD(netEvent(_eq.now(), "send", *pkt, pkt->src));
    Packet *raw = pkt.release();
    raw->injectTick = _eq.now();

    const unsigned local = numPortsOf(raw->src) - 1;
    FlitFifo &fifo = _inPorts[_portBase[raw->src] + local];
    for (unsigned i = 0; i < flits; ++i)
        fifo.push_back(Flit{raw, i == 0, i == flits - 1, raw->dest});
    _routers[raw->src].nonEmptyMask |= std::uint16_t{1} << local;
    noteFlits(raw->src, flits, 0);
    _activeFlits += flits;
    _statFlits += flits;
    scheduleTickIfNeeded();
}

void
MeshNetwork::scheduleTickIfNeeded()
{
    if (_tickScheduled || _activeFlits == 0)
        return;
    _tickScheduled = true;
    auto fire = [this]() {
        _tickScheduled = false;
        tick();
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(fire)>,
                  "mesh tick event must not heap-allocate");
    _eq.schedule(_eq.now() + _params.clockPeriod, std::move(fire),
                 EventPriority::network);
}

void
MeshNetwork::planRouter(unsigned r, std::vector<Move> &moves,
                        std::uint64_t &blocked)
{
    Router &router = _routers[r];
    const std::uint32_t base = _portBase[r];
    const unsigned num_ports = _portBase[r + 1] - base;
    const unsigned local = num_ports - 1;
    const std::uint8_t *routes =
        &_routeTable[std::size_t{r} * _numNodes];

    // One pass over the occupied inputs: note which output each waiting
    // head flit wants. Head flits at the front of a FIFO are by
    // construction not part of a packet that already owns an output, so
    // `contend` and the owner continuations below partition the inputs.
    std::uint16_t contend[maxPorts] = {};
    const unsigned nonEmpty = router.nonEmptyMask;
    unsigned outputs = router.ownerMask;
    for (unsigned bits = nonEmpty; bits; bits &= bits - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        const Flit &front = _inPorts[base + i].front();
        if (!front.head)
            continue;
        const std::uint8_t rp = routes[front.dest];
        unsigned o;
        if (rp == localSelf) {
            o = local;
        } else if (_vcs == 1) {
            o = rp;
        } else {
            // Dateline rule: a packet already on VC1 stays on VC1 while
            // it continues in the same dimension class; crossing
            // dimensions (or injecting) resets to the link's base VC.
            unsigned carry = 0;
            if (i != local && (i & 1)) {
                const std::uint16_t dims = _chanDimMask[r];
                carry = ((dims >> (i >> 1)) & 1) ==
                        ((dims >> (rp >> 1)) & 1);
            }
            o = rp | carry;
        }
        contend[o] |= std::uint16_t{1} << i;
        outputs |= 1u << o;
    }

    for (unsigned obits = outputs; obits; obits &= obits - 1) {
        const unsigned o = static_cast<unsigned>(std::countr_zero(obits));
        OutputPort &op = _outPorts[base + o];
        int src = op.owner;
        if (src == -1 && contend[o]) {
            // Arbitrate a new packet onto this output, round-robin.
            for (unsigned k = 0; k < num_ports; ++k) {
                unsigned i = op.rr + k;
                if (i >= num_ports)
                    i -= num_ports;
                if (!(contend[o] & (std::uint16_t{1} << i)))
                    continue;
                src = static_cast<int>(i);
                op.rr = i + 1 == num_ports ? 0 : i + 1;
                op.owner = src;
                router.ownerMask |= std::uint16_t{1} << o;
                break;
            }
        }
        if (src == -1)
            continue;
        if (!(nonEmpty & (std::uint16_t{1} << src)))
            continue; // wormhole bubble: next flit not here yet

        const Flit &flit = _inPorts[base + src].front();

        Move move{};
        move.fromRouter = r;
        move.fromPort = static_cast<unsigned>(src);
        move.outPort = o;
        move.releaseOwner = flit.tail;
        if (o == local) {
            move.eject = true;
        } else {
            move.eject = false;
            move.toRouter = _destRouter[base + o];
            move.toPort = _destPort[base + o];
            const std::uint32_t idx =
                _portBase[move.toRouter] + move.toPort;
            if (_inPorts[idx].size() + _staged[idx] >=
                _params.inputFifoFlits) {
                blocked += 1;
                continue; // no credit downstream
            }
            ++_staged[idx];
        }
        moves.push_back(move);
    }
}

void
MeshNetwork::applyMove(const Move &move)
{
    Router &router = _routers[move.fromRouter];
    FlitFifo &in = _inPorts[_portBase[move.fromRouter] + move.fromPort];
    assert(!in.empty());
    Flit flit = in.front();
    in.pop_front();
    if (in.empty())
        router.nonEmptyMask &= ~(std::uint16_t{1} << move.fromPort);
    noteFlits(move.fromRouter, 0, 1);
    _statFlitHops += 1;
    if (_telem)
        ++_telem->flitHops[move.fromRouter];

    if (move.releaseOwner) {
        OutputPort &op =
            _outPorts[_portBase[move.fromRouter] + move.outPort];
        op.owner = -1;
        router.ownerMask &= ~(std::uint16_t{1} << move.outPort);
    }

    if (move.eject) {
        --_activeFlits;
        if (flit.tail)
            deliver(flit.pkt);
    } else {
        _inPorts[_portBase[move.toRouter] + move.toPort].push_back(flit);
        _routers[move.toRouter].nonEmptyMask |=
            std::uint16_t{1} << move.toPort;
        noteFlits(move.toRouter, 1, 0);
    }
}

void
MeshNetwork::enableTelemetry()
{
    if (_telem)
        return;
    _telem = std::make_unique<MeshTelemetry>();
    _telem->flitHops.assign(_routers.size(), 0);
}

void
MeshNetwork::tick()
{
    PROF_SCOPE("net.tick");
    // Plan all single-hop moves against pre-cycle state, then apply, so a
    // flit advances at most one hop per network cycle. The scratch vectors
    // are members: tick() runs every network cycle and must not allocate.
    _moves.clear();
    std::fill(_staged.begin(), _staged.end(), std::uint8_t{0});
    std::uint64_t blocked = 0;
    for (std::size_t w = 0; w < _activeRouters.size(); ++w) {
        std::uint64_t bits = _activeRouters[w];
        while (bits) {
            planRouter(static_cast<unsigned>(
                           w * 64 + std::countr_zero(bits)),
                       _moves, blocked);
            bits &= bits - 1;
        }
    }
    _statBlockedCycles += blocked;
    for (const Move &move : _moves)
        applyMove(move);
    scheduleTickIfNeeded();
}

void
MeshNetwork::deliver(Packet *raw)
{
    _statLatency.sample(static_cast<double>(_eq.now() - raw->injectTick));
    _statPackets += 1;

    PacketPtr owned(raw);
    FR_RECORD(netEvent(_eq.now(), "recv", *owned, owned->dest));
    Receiver &recv = _receivers.at(owned->dest);
    if (!recv)
        panic("mesh network: no receiver at node %u", owned->dest);
    if (Log::enabled("net"))
        Log::debug(_eq.now(), "net", "deliver %s",
                   describePacket(*owned).c_str());
    // Hand off at deliver priority so controllers see the packet after all
    // of this cycle's flit movement completes.
    Packet *pending = owned.release();
    auto handoff = [this, pending]() {
        PacketPtr p(pending);
        _receivers.at(p->dest)(std::move(p));
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(handoff)>,
                  "mesh delivery event must not heap-allocate");
    _eq.schedule(_eq.now(), std::move(handoff), EventPriority::deliver);
}

// ---------------------------------------------------------------------
// Shard mode: the fabric as the parallel kernel's cross-partition
// coupling. Every method below is unreachable unless setShard() ran.
// ---------------------------------------------------------------------

void
MeshNetwork::setShard(std::vector<unsigned> part_of,
                      std::vector<EventQueue *> queues)
{
    assert(!_shard && "setShard called twice");
    assert(part_of.size() == _numNodes);
    assert(!queues.empty());
    assert(_activeFlits == 0 && "setShard with flits already in flight");
    _shard = true;
    _partOf = std::move(part_of);
    _shardQueues = std::move(queues);
    _numParts = static_cast<unsigned>(_shardQueues.size());

    // Partitions must be contiguous ascending router ranges — that is
    // what makes draining channels in source-partition order equal to
    // the serial kernel's ascending-fromRouter push order.
    _partLo.assign(_numParts + 1, 0);
    _partLo[_numParts] = _numNodes;
    assert(_partOf[0] == 0 && "partition 0 must start at router 0");
    for (unsigned r = 1; r < _numNodes; ++r) {
        assert(_partOf[r] >= _partOf[r - 1] &&
               _partOf[r] <= _partOf[r - 1] + 1 &&
               "partitions must be contiguous ascending");
        if (_partOf[r] != _partOf[r - 1])
            _partLo[_partOf[r]] = r;
    }
    assert(_partOf[_numNodes - 1] == _numParts - 1 &&
           "every partition must own at least one router");

    _shards = std::vector<Shard>(_numParts);
    for (Shard &sh : _shards)
        sh.moves.reserve(32);
    _chan.assign(std::size_t{_numParts} * _numParts, {});
    _tickPops.assign(_numNodes, 0);
}

void
MeshNetwork::planShard(unsigned p)
{
    Shard &sh = _shards[p];
    sh.moves.clear();
    const unsigned lo = _partLo[p];
    const unsigned hi = _partLo[p + 1];
    // Scan the partition's slice of the active bitmap. The bitmap is
    // stable during the plan phase (only apply/drain/send flip bits),
    // so plain reads are safe even on boundary words.
    for (unsigned w = lo / 64; w <= (hi - 1) / 64; ++w) {
        std::uint64_t bits = _activeRouters[w];
        if (w == lo / 64)
            bits &= ~std::uint64_t{0} << (lo % 64);
        if (w == (hi - 1) / 64 && hi % 64)
            bits &= ~(~std::uint64_t{0} << (hi % 64));
        while (bits) {
            planRouter(static_cast<unsigned>(
                           w * 64 + std::countr_zero(bits)),
                       sh.moves, sh.blocked);
            bits &= bits - 1;
        }
    }
}

void
MeshNetwork::applyShard(unsigned p)
{
    Shard &sh = _shards[p];
    for (const Move &move : sh.moves)
        applyMoveShard(move, p);
}

void
MeshNetwork::applyMoveShard(const Move &move, unsigned p)
{
    Shard &sh = _shards[p];
    Router &router = _routers[move.fromRouter];
    FlitFifo &in = _inPorts[_portBase[move.fromRouter] + move.fromPort];
    assert(!in.empty());
    Flit flit = in.front();
    in.pop_front();
    if (in.empty())
        router.nonEmptyMask &= ~(std::uint16_t{1} << move.fromPort);
    --router.flits;
    if (!router.flits)
        noteFlitsShard(move.fromRouter, false);
    sh.flitHops += 1;
    if (_telem) {
        ++_telem->flitHops[move.fromRouter];
        if (!_tickPops[move.fromRouter]++)
            sh.poppedRouters.push_back(move.fromRouter);
    }

    if (move.releaseOwner) {
        OutputPort &op =
            _outPorts[_portBase[move.fromRouter] + move.outPort];
        op.owner = -1;
        router.ownerMask &= ~(std::uint16_t{1} << move.outPort);
    }

    if (move.eject) {
        sh.activeDelta -= 1;
        if (flit.tail)
            deliverShard(flit.pkt, p);
    } else {
        // Stage the push — even for a same-partition destination, so
        // the drain phase lands all pushes in the serial order. The
        // plan-phase credit reservation is consumed here; the slot is
        // clean for the next window's plan.
        const std::uint32_t idx = _portBase[move.toRouter] + move.toPort;
        _staged[idx] = 0;
        const unsigned dst = _partOf[move.toRouter];
        if (dst != p)
            sh.xpartFlits += 1;
        _chan[std::size_t{p} * _numParts + dst].push_back(
            StagedPush{flit, move.toRouter, move.fromRouter,
                       static_cast<std::uint8_t>(move.toPort)});
    }
}

void
MeshNetwork::drainShard(unsigned p)
{
    Shard &sh = _shards[p];
    for (unsigned q = 0; q < _numParts; ++q) {
        std::vector<StagedPush> &ch =
            _chan[std::size_t{q} * _numParts + p];
        for (const StagedPush &sp : ch) {
            const unsigned t = sp.toRouter;
            _inPorts[_portBase[t] + sp.toPort].push_back(sp.flit);
            Router &router = _routers[t];
            router.nonEmptyMask |= std::uint16_t{1} << sp.toPort;
            ++router.flits;
            if (router.flits == 1)
                noteFlitsShard(t, true);
            if (_telem) {
                // Exact serial intermediate depth: in the serial apply
                // order, pushes from routers below t land before t's
                // own pops (counted in _tickPops by the apply phase),
                // pushes from above land after.
                const unsigned depth =
                    router.flits +
                    (sp.fromRouter < t ? _tickPops[t] : 0);
                if (depth > sh.peak)
                    sh.peak = depth;
            }
        }
        ch.clear();
    }
    if (_telem) {
        for (unsigned r : sh.poppedRouters)
            _tickPops[r] = 0;
        sh.poppedRouters.clear();
    }
}

void
MeshNetwork::deliverShard(Packet *raw, unsigned p)
{
    Shard &sh = _shards[p];
    EventQueue &eq = *_shardQueues[p];
    sh.latency.push_back(static_cast<double>(eq.now() - raw->injectTick));
    sh.packets += 1;

    PacketPtr owned(raw);
    FR_RECORD(netEvent(eq.now(), "recv", *owned, owned->dest));
    Receiver &recv = _receivers.at(owned->dest);
    if (!recv)
        panic("mesh network: no receiver at node %u", owned->dest);
    // Ejection happens at the destination router, which this partition
    // owns, so the handoff lands on the partition's own queue — in
    // apply order, which is the serial schedule order restricted to
    // this partition's routers.
    Packet *pending = owned.release();
    auto handoff = [this, pending]() {
        PacketPtr pp(pending);
        _receivers.at(pp->dest)(std::move(pp));
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(handoff)>,
                  "mesh delivery event must not heap-allocate");
    eq.schedule(eq.now(), std::move(handoff), EventPriority::deliver);
}

void
MeshNetwork::coupledEpilogue(Tick window, bool ranCoupled)
{
    (void)ranCoupled;
    // Fold the partition shards, partition-major — which is ascending
    // router order, i.e. exactly the order the serial kernel would have
    // produced these updates within the window. Integer counters are
    // order-free; the latency accumulator (Welford) is not, hence the
    // ordered replay.
    for (Shard &sh : _shards) {
        _statPackets += sh.packets;
        _statFlits += sh.flits;
        _statFlitHops += sh.flitHops;
        _statBlockedCycles += sh.blocked;
        sh.packets = sh.flits = sh.flitHops = sh.blocked = 0;
        _activeFlits = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(_activeFlits) + sh.activeDelta);
        sh.activeDelta = 0;
        for (const double v : sh.latency)
            _statLatency.sample(v);
        sh.latency.clear();
        if (_telem && sh.peak > _telem->windowPeakDepth)
            _telem->windowPeakDepth = sh.peak;
        sh.peak = 0;
    }
    // Exactly the serial scheduleTickIfNeeded: while flits are in
    // flight the fabric clocks every cycle, and a send into an idle
    // fabric wakes it one clock later.
    _netNext = _activeFlits ? window + _params.clockPeriod : maxTick;
}

} // namespace limitless
