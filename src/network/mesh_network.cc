#include "network/mesh_network.hh"

#include <bit>
#include <cassert>

#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

TraceEvent
netEvent(Tick ts, const char *name, const Packet &pkt, NodeId node)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.name = name;
    ev.cat = EventCat::net;
    ev.node = node;
    if (isProtocolOpcode(pkt.opcode) && !pkt.operands.empty())
        ev.line = pkt.addr();
    ev.op = pkt.opcode;
    ev.hasOp = true;
    ev.src = pkt.src;
    ev.dest = pkt.dest;
    return ev;
}

} // namespace

MeshNetwork::MeshNetwork(EventQueue &eq, MeshTopology topo,
                         MeshNetworkParams params)
    : _eq(eq), _topo(topo), _params(params),
      _routers(_topo.numNodes()), _receivers(_topo.numNodes()),
      _statPackets(_stats.counter("packets", "packets delivered")),
      _statFlits(_stats.counter("flits", "flits injected")),
      _statFlitHops(_stats.counter("flit_hops", "flit-hops traversed")),
      _statLatency(
          _stats.accumulator("latency", "packet latency (cycles)")),
      _statBlockedCycles(
          _stats.counter("blocked", "output-port cycles blocked on credit"))
{
    assert(_params.flitsPerWord >= 1);
    assert(_params.inputFifoFlits >= 2);
    _moves.reserve(32);
    _staged.resize(_routers.size() * numPorts, 0);
    _activeRouters.resize((_routers.size() + 63) / 64, 0);

    // Tabulate X-Y routing and neighbor ids once; the planner consults
    // both for every output port of every active router every cycle.
    const unsigned n = _topo.numNodes();
    _routeTable.resize(std::size_t{n} * n);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned d = 0; d < n; ++d)
            _routeTable[std::size_t{r} * n + d] =
                static_cast<std::uint8_t>(routeOutput(r, d));
    _neighborTable.resize(std::size_t{n} * numPorts, 0);
    for (unsigned r = 0; r < n; ++r) {
        const unsigned x = _topo.xOf(r);
        const unsigned y = _topo.yOf(r);
        if (y > 0)
            _neighborTable[r * numPorts + N] = _topo.nodeAt(x, y - 1);
        if (y + 1 < _topo.height())
            _neighborTable[r * numPorts + S] = _topo.nodeAt(x, y + 1);
        if (x + 1 < _topo.width())
            _neighborTable[r * numPorts + E] = _topo.nodeAt(x + 1, y);
        if (x > 0)
            _neighborTable[r * numPorts + W] = _topo.nodeAt(x - 1, y);
    }
}

void
MeshNetwork::FlitFifo::grow()
{
    // Unwrap into a buffer of twice the capacity; only the unbounded
    // Local (injection) port ever gets here.
    std::vector<Flit> bigger(_buf.size() * 2);
    for (std::size_t i = 0; i < _count; ++i)
        bigger[i] = _buf[(_head + i) & _mask];
    _buf.swap(bigger);
    _mask = _buf.size() - 1;
    _head = 0;
}

MeshNetwork::~MeshNetwork()
{
    // Retire any packets still in flight at teardown. Every undelivered
    // packet has exactly one tail flit buffered somewhere (delivery — and
    // hence removal from the fabric — happens when the tail ejects), so
    // freeing on tail flits frees each in-flight packet exactly once.
    for (Router &router : _routers) {
        for (InputPort &ip : router.in) {
            for (std::size_t i = 0; i < ip.fifo.size(); ++i) {
                if (ip.fifo.at(i).tail)
                    PacketDeleter{}(ip.fifo.at(i).pkt);
            }
        }
    }
}

void
MeshNetwork::setReceiver(NodeId node, Receiver recv)
{
    _receivers.at(node) = std::move(recv);
}

void
MeshNetwork::send(PacketPtr pkt)
{
    assert(pkt);
    assert(pkt->src < numNodes() && pkt->dest < numNodes());
    const unsigned flits = flitsForPacket(*pkt);
    FR_RECORD(netEvent(_eq.now(), "send", *pkt, pkt->src));
    Packet *raw = pkt.release();
    raw->injectTick = _eq.now();

    Router &router = _routers[raw->src];
    for (unsigned i = 0; i < flits; ++i) {
        router.in[Local].fifo.push_back(
            Flit{raw, i == 0, i == flits - 1, raw->dest});
    }
    router.nonEmptyMask |= std::uint8_t{1} << Local;
    noteFlits(raw->src, flits, 0);
    _activeFlits += flits;
    _statFlits += flits;
    scheduleTickIfNeeded();
}

void
MeshNetwork::scheduleTickIfNeeded()
{
    if (_tickScheduled || _activeFlits == 0)
        return;
    _tickScheduled = true;
    auto fire = [this]() {
        _tickScheduled = false;
        tick();
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(fire)>,
                  "mesh tick event must not heap-allocate");
    _eq.schedule(_eq.now() + _params.clockPeriod, std::move(fire),
                 EventPriority::network);
}

unsigned
MeshNetwork::routeOutput(unsigned router, NodeId dest) const
{
    // Dimension-ordered X-Y routing: correct X first, then Y.
    const unsigned x = _topo.xOf(router);
    const unsigned y = _topo.yOf(router);
    const unsigned dx = _topo.xOf(dest);
    const unsigned dy = _topo.yOf(dest);
    if (dx > x)
        return E;
    if (dx < x)
        return W;
    if (dy > y)
        return S;
    if (dy < y)
        return N;
    return Local;
}

unsigned
MeshNetwork::neighborOf(unsigned router, unsigned out_port) const
{
    const unsigned x = _topo.xOf(router);
    const unsigned y = _topo.yOf(router);
    switch (out_port) {
      case N: return _topo.nodeAt(x, y - 1);
      case S: return _topo.nodeAt(x, y + 1);
      case E: return _topo.nodeAt(x + 1, y);
      case W: return _topo.nodeAt(x - 1, y);
      default: panic("neighborOf: bad port %u", out_port);
    }
}

unsigned
MeshNetwork::inputPortAtNeighbor(unsigned out_port) const
{
    switch (out_port) {
      case N: return S;
      case S: return N;
      case E: return W;
      case W: return E;
      default: panic("inputPortAtNeighbor: bad port %u", out_port);
    }
}

void
MeshNetwork::planRouter(unsigned r)
{
    Router &router = _routers[r];
    const std::uint8_t *routes = &_routeTable[std::size_t{r} * numNodes()];

    // One pass over the occupied inputs: note which output each waiting
    // head flit wants. Head flits at the front of a FIFO are by
    // construction not part of a packet that already owns an output, so
    // `contend` and the owner continuations below partition the inputs.
    // This is semantically the output-major double loop the planner used
    // to run, minus the 5x5 re-probing of the FIFOs: only occupied
    // inputs and outputs that are owned or contended are visited.
    std::uint8_t contend[numPorts] = {};
    const unsigned nonEmpty = router.nonEmptyMask;
    unsigned outputs = router.ownerMask;
    for (unsigned bits = nonEmpty; bits; bits &= bits - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
        const Flit &front = router.in[i].fifo.front();
        if (front.head) {
            const unsigned o = routes[front.dest];
            contend[o] |= std::uint8_t{1} << i;
            outputs |= 1u << o;
        }
    }

    for (unsigned obits = outputs; obits; obits &= obits - 1) {
        const unsigned o = static_cast<unsigned>(std::countr_zero(obits));
        OutputPort &op = router.out[o];
        int src = op.owner;
        if (src == -1 && contend[o]) {
            // Arbitrate a new packet onto this output, round-robin.
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned i = (op.rr + k) % numPorts;
                if (!(contend[o] & (std::uint8_t{1} << i)))
                    continue;
                src = static_cast<int>(i);
                op.rr = (i + 1) % numPorts;
                op.owner = src;
                router.ownerMask |= std::uint8_t{1} << o;
                break;
            }
        }
        if (src == -1)
            continue;
        if (!(nonEmpty & (std::uint8_t{1} << src)))
            continue; // wormhole bubble: next flit not here yet

        InputPort &ip = router.in[src];
        const Flit &flit = ip.fifo.front();

        Move move{};
        move.fromRouter = r;
        move.fromPort = static_cast<unsigned>(src);
        move.outPort = o;
        move.releaseOwner = flit.tail;
        if (o == Local) {
            move.eject = true;
        } else {
            move.eject = false;
            move.toRouter = _neighborTable[r * numPorts + o];
            move.toPort = inputPortAtNeighbor(o);
            const auto &downstream =
                _routers[move.toRouter].in[move.toPort].fifo;
            const unsigned idx = move.toRouter * numPorts + move.toPort;
            if (downstream.size() + _staged[idx] >= _params.inputFifoFlits) {
                _statBlockedCycles += 1;
                continue; // no credit downstream
            }
            ++_staged[idx];
        }
        _moves.push_back(move);
    }
}

void
MeshNetwork::applyMove(const Move &move)
{
    Router &router = _routers[move.fromRouter];
    InputPort &ip = router.in[move.fromPort];
    assert(!ip.fifo.empty());
    Flit flit = ip.fifo.front();
    ip.fifo.pop_front();
    if (ip.fifo.empty())
        router.nonEmptyMask &= ~(std::uint8_t{1} << move.fromPort);
    noteFlits(move.fromRouter, 0, 1);
    _statFlitHops += 1;
    if (_telem)
        ++_telem->flitHops[move.fromRouter];

    if (move.releaseOwner) {
        router.out[move.outPort].owner = -1;
        router.ownerMask &= ~(std::uint8_t{1} << move.outPort);
    }

    if (move.eject) {
        --_activeFlits;
        if (flit.tail)
            deliver(flit.pkt);
    } else {
        Router &to = _routers[move.toRouter];
        to.in[move.toPort].fifo.push_back(flit);
        to.nonEmptyMask |= std::uint8_t{1} << move.toPort;
        noteFlits(move.toRouter, 1, 0);
    }
}

void
MeshNetwork::enableTelemetry()
{
    if (_telem)
        return;
    _telem = std::make_unique<MeshTelemetry>();
    _telem->flitHops.assign(_routers.size(), 0);
}

void
MeshNetwork::tick()
{
    // Plan all single-hop moves against pre-cycle state, then apply, so a
    // flit advances at most one hop per network cycle. The scratch vectors
    // are members: tick() runs every network cycle and must not allocate.
    _moves.clear();
    std::fill(_staged.begin(), _staged.end(), std::uint8_t{0});
    for (std::size_t w = 0; w < _activeRouters.size(); ++w) {
        std::uint64_t bits = _activeRouters[w];
        while (bits) {
            planRouter(static_cast<unsigned>(
                w * 64 + std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
    for (const Move &move : _moves)
        applyMove(move);
    scheduleTickIfNeeded();
}

void
MeshNetwork::deliver(Packet *raw)
{
    _statLatency.sample(static_cast<double>(_eq.now() - raw->injectTick));
    _statPackets += 1;

    PacketPtr owned(raw);
    FR_RECORD(netEvent(_eq.now(), "recv", *owned, owned->dest));
    Receiver &recv = _receivers.at(owned->dest);
    if (!recv)
        panic("mesh network: no receiver at node %u", owned->dest);
    if (Log::enabled("net"))
        Log::debug(_eq.now(), "net", "deliver %s",
                   describePacket(*owned).c_str());
    // Hand off at deliver priority so controllers see the packet after all
    // of this cycle's flit movement completes.
    Packet *pending = owned.release();
    auto handoff = [this, pending]() {
        PacketPtr p(pending);
        _receivers.at(p->dest)(std::move(p));
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(handoff)>,
                  "mesh delivery event must not heap-allocate");
    _eq.schedule(_eq.now(), std::move(handoff), EventPriority::deliver);
}

} // namespace limitless
