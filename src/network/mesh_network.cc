#include "network/mesh_network.hh"

#include <cassert>

#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

TraceEvent
netEvent(Tick ts, const char *name, const Packet &pkt, NodeId node)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.name = name;
    ev.cat = EventCat::net;
    ev.node = node;
    if (isProtocolOpcode(pkt.opcode) && !pkt.operands.empty())
        ev.line = pkt.addr();
    ev.op = pkt.opcode;
    ev.hasOp = true;
    ev.src = pkt.src;
    ev.dest = pkt.dest;
    return ev;
}

} // namespace

MeshNetwork::MeshNetwork(EventQueue &eq, MeshTopology topo,
                         MeshNetworkParams params)
    : _eq(eq), _topo(topo), _params(params),
      _routers(_topo.numNodes()), _receivers(_topo.numNodes()),
      _statPackets(_stats.counter("packets", "packets delivered")),
      _statFlits(_stats.counter("flits", "flits injected")),
      _statFlitHops(_stats.counter("flit_hops", "flit-hops traversed")),
      _statLatency(
          _stats.accumulator("latency", "packet latency (cycles)")),
      _statBlockedCycles(
          _stats.counter("blocked", "output-port cycles blocked on credit"))
{
    assert(_params.flitsPerWord >= 1);
    assert(_params.inputFifoFlits >= 2);
}

MeshNetwork::~MeshNetwork()
{
    // Free any packets still in flight at teardown.
    for (auto &[pkt, tick] : _injectTick) {
        (void)tick;
        delete pkt;
    }
}

void
MeshNetwork::setReceiver(NodeId node, Receiver recv)
{
    _receivers.at(node) = std::move(recv);
}

void
MeshNetwork::send(PacketPtr pkt)
{
    assert(pkt);
    assert(pkt->src < numNodes() && pkt->dest < numNodes());
    const unsigned flits = flitsForPacket(*pkt);
    FR_RECORD(netEvent(_eq.now(), "send", *pkt, pkt->src));
    Packet *raw = pkt.release();
    _injectTick.emplace(raw, _eq.now());

    Router &router = _routers[raw->src];
    for (unsigned i = 0; i < flits; ++i) {
        router.in[Local].fifo.push_back(
            Flit{raw, i == 0, i == flits - 1, raw->dest});
    }
    router.flits += flits;
    _activeFlits += flits;
    _statFlits += flits;
    scheduleTickIfNeeded();
}

void
MeshNetwork::scheduleTickIfNeeded()
{
    if (_tickScheduled || _activeFlits == 0)
        return;
    _tickScheduled = true;
    _eq.schedule(_eq.now() + _params.clockPeriod, [this]() {
        _tickScheduled = false;
        tick();
    }, EventPriority::network);
}

unsigned
MeshNetwork::routeOutput(unsigned router, NodeId dest) const
{
    // Dimension-ordered X-Y routing: correct X first, then Y.
    const unsigned x = _topo.xOf(router);
    const unsigned y = _topo.yOf(router);
    const unsigned dx = _topo.xOf(dest);
    const unsigned dy = _topo.yOf(dest);
    if (dx > x)
        return E;
    if (dx < x)
        return W;
    if (dy > y)
        return S;
    if (dy < y)
        return N;
    return Local;
}

unsigned
MeshNetwork::neighborOf(unsigned router, unsigned out_port) const
{
    const unsigned x = _topo.xOf(router);
    const unsigned y = _topo.yOf(router);
    switch (out_port) {
      case N: return _topo.nodeAt(x, y - 1);
      case S: return _topo.nodeAt(x, y + 1);
      case E: return _topo.nodeAt(x + 1, y);
      case W: return _topo.nodeAt(x - 1, y);
      default: panic("neighborOf: bad port %u", out_port);
    }
}

unsigned
MeshNetwork::inputPortAtNeighbor(unsigned out_port) const
{
    switch (out_port) {
      case N: return S;
      case S: return N;
      case E: return W;
      case W: return E;
      default: panic("inputPortAtNeighbor: bad port %u", out_port);
    }
}

void
MeshNetwork::planRouter(unsigned r, std::vector<Move> &moves,
                        std::vector<std::uint8_t> &staged)
{
    Router &router = _routers[r];
    for (unsigned o = 0; o < numPorts; ++o) {
        OutputPort &op = router.out[o];
        int src = op.owner;
        if (src == -1) {
            // Arbitrate a new packet onto this output, round-robin.
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned i = (op.rr + k) % numPorts;
                const auto &fifo = router.in[i].fifo;
                if (fifo.empty() || !fifo.front().head)
                    continue;
                if (routeOutput(r, fifo.front().dest) != o)
                    continue;
                src = static_cast<int>(i);
                op.rr = (i + 1) % numPorts;
                op.owner = src;
                break;
            }
        }
        if (src == -1)
            continue;

        InputPort &ip = router.in[src];
        if (ip.fifo.empty())
            continue; // wormhole bubble: next flit not here yet
        const Flit &flit = ip.fifo.front();

        Move move{};
        move.fromRouter = r;
        move.fromPort = static_cast<unsigned>(src);
        move.outPort = o;
        move.releaseOwner = flit.tail;
        if (o == Local) {
            move.eject = true;
        } else {
            move.eject = false;
            move.toRouter = neighborOf(r, o);
            move.toPort = inputPortAtNeighbor(o);
            const auto &downstream =
                _routers[move.toRouter].in[move.toPort].fifo;
            const unsigned idx = move.toRouter * numPorts + move.toPort;
            if (downstream.size() + staged[idx] >= _params.inputFifoFlits) {
                _statBlockedCycles += 1;
                continue; // no credit downstream
            }
            ++staged[idx];
        }
        moves.push_back(move);
    }
}

void
MeshNetwork::applyMove(const Move &move)
{
    Router &router = _routers[move.fromRouter];
    InputPort &ip = router.in[move.fromPort];
    assert(!ip.fifo.empty());
    Flit flit = ip.fifo.front();
    ip.fifo.pop_front();
    --router.flits;
    _statFlitHops += 1;

    if (move.releaseOwner)
        router.out[move.outPort].owner = -1;

    if (move.eject) {
        --_activeFlits;
        if (flit.tail)
            deliver(flit.pkt);
    } else {
        Router &to = _routers[move.toRouter];
        to.in[move.toPort].fifo.push_back(flit);
        ++to.flits;
    }
}

void
MeshNetwork::tick()
{
    // Plan all single-hop moves against pre-cycle state, then apply, so a
    // flit advances at most one hop per network cycle.
    std::vector<Move> moves;
    moves.reserve(32);
    std::vector<std::uint8_t> staged(_routers.size() * numPorts, 0);
    for (unsigned r = 0; r < _routers.size(); ++r) {
        if (_routers[r].flits == 0)
            continue;
        planRouter(r, moves, staged);
    }
    for (const Move &move : moves)
        applyMove(move);
    scheduleTickIfNeeded();
}

void
MeshNetwork::deliver(Packet *raw)
{
    auto it = _injectTick.find(raw);
    assert(it != _injectTick.end());
    _statLatency.sample(static_cast<double>(_eq.now() - it->second));
    _injectTick.erase(it);
    _statPackets += 1;

    PacketPtr owned(raw);
    FR_RECORD(netEvent(_eq.now(), "recv", *owned, owned->dest));
    Receiver &recv = _receivers.at(owned->dest);
    if (!recv)
        panic("mesh network: no receiver at node %u", owned->dest);
    if (Log::enabled("net"))
        Log::debug(_eq.now(), "net", "deliver %s",
                   describePacket(*owned).c_str());
    // Hand off at deliver priority so controllers see the packet after all
    // of this cycle's flit movement completes.
    Packet *pending = owned.release();
    _eq.schedule(_eq.now(), [this, pending]() {
        PacketPtr p(pending);
        _receivers.at(p->dest)(std::move(p));
    }, EventPriority::deliver);
}

} // namespace limitless
