#include "network/topology.hh"

#include "sim/log.hh"

namespace limitless
{

namespace
{

/** Direction encoding shared by the grid topologies: N, E, S, W. */
enum Dir { dirN = 0, dirE = 1, dirS = 2, dirW = 3 };

/** X dimension for E/W, Y for N/S. */
inline unsigned
dimOfDir(unsigned dir)
{
    return dir == dirE || dir == dirW ? 0 : 1;
}

} // namespace

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::mesh: return "mesh";
      case TopologyKind::torus: return "torus";
      case TopologyKind::expressMesh: return "express";
    }
    return "?";
}

unsigned
Topology::reverseChannel(NodeId n, unsigned channel) const
{
    // Generic case: the link n -> m is the unique channel at m whose
    // endpoint is n. Topologies with duplicate links override.
    const NodeId m = _neighbors[n][channel];
    const auto &back = _neighbors[m];
    for (unsigned c = 0; c < back.size(); ++c)
        if (back[c] == n)
            return c;
    panic("topology: no reverse channel for %u -> %u", n, m);
}

double
Topology::averageHops() const
{
    // Brute force over ordered pairs; topologies with closed forms
    // override. Only used for reporting, never on a hot path.
    const unsigned n = numNodes();
    std::uint64_t total = 0;
    for (NodeId a = 0; a < n; ++a)
        for (NodeId b = 0; b < n; ++b)
            total += hops(a, b);
    return static_cast<double>(total) / (static_cast<double>(n) * n);
}

// ---------------------------------------------------------------- mesh

MeshTopology::MeshTopology(unsigned width, unsigned height)
    : Topology(width, height)
{
    const unsigned n = numNodes();
    _neighbors.resize(n);
    _dirChannel.assign(n, {-1, -1, -1, -1});
    for (NodeId node = 0; node < n; ++node) {
        const unsigned x = xOf(node);
        const unsigned y = yOf(node);
        auto add = [&](unsigned dir, NodeId to) {
            _dirChannel[node][dir] =
                static_cast<std::int8_t>(_neighbors[node].size());
            _neighbors[node].push_back(to);
        };
        // N, E, S, W: the arbitration order of the original router.
        if (y > 0)
            add(dirN, nodeAt(x, y - 1));
        if (x + 1 < width)
            add(dirE, nodeAt(x + 1, y));
        if (y + 1 < height)
            add(dirS, nodeAt(x, y + 1));
        if (x > 0)
            add(dirW, nodeAt(x - 1, y));
    }
}

unsigned
MeshTopology::nextChannel(NodeId at, NodeId dest) const
{
    // Dimension-ordered X-Y routing: correct X first, then Y.
    const unsigned x = xOf(at), y = yOf(at);
    const unsigned dx = xOf(dest), dy = yOf(dest);
    unsigned dir;
    if (dx > x)
        dir = dirE;
    else if (dx < x)
        dir = dirW;
    else if (dy > y)
        dir = dirS;
    else if (dy < y)
        dir = dirN;
    else
        panic("mesh nextChannel: at == dest (%u)", at);
    return static_cast<unsigned>(_dirChannel[at][dir]);
}

unsigned
MeshTopology::channelDim(NodeId n, unsigned channel) const
{
    for (unsigned dir = 0; dir < 4; ++dir)
        if (_dirChannel[n][dir] == static_cast<std::int8_t>(channel))
            return dimOfDir(dir);
    panic("mesh channelDim: bad channel %u at node %u", channel, n);
}

double
MeshTopology::averageHops() const
{
    // Mean |i - j| over a line of n nodes is (n^2 - 1) / (3n); the mesh
    // dimensions are independent under uniform traffic.
    auto line_mean = [](double n) { return (n * n - 1.0) / (3.0 * n); };
    return line_mean(_width) + line_mean(_height);
}

// --------------------------------------------------------------- torus

TorusTopology::TorusTopology(unsigned width, unsigned height)
    : Topology(width, height)
{
    const unsigned n = numNodes();
    _neighbors.resize(n);
    _dirChannel.assign(n, {-1, -1, -1, -1});
    for (NodeId node = 0; node < n; ++node) {
        const unsigned x = xOf(node);
        const unsigned y = yOf(node);
        auto add = [&](unsigned dir, NodeId to) {
            _dirChannel[node][dir] =
                static_cast<std::int8_t>(_neighbors[node].size());
            _neighbors[node].push_back(to);
        };
        // Same N, E, S, W order as the mesh; a dimension of extent 1
        // contributes no links.
        if (height > 1)
            add(dirN, nodeAt(x, (y + height - 1) % height));
        if (width > 1)
            add(dirE, nodeAt((x + 1) % width, y));
        if (height > 1)
            add(dirS, nodeAt(x, (y + 1) % height));
        if (width > 1)
            add(dirW, nodeAt((x + width - 1) % width, y));
    }
}

unsigned
TorusTopology::hops(NodeId a, NodeId b) const
{
    auto ring = [](unsigned from, unsigned to, unsigned extent) {
        const unsigned d = from > to ? from - to : to - from;
        return d < extent - d ? d : extent - d;
    };
    return ring(xOf(a), xOf(b), _width) + ring(yOf(a), yOf(b), _height);
}

unsigned
TorusTopology::nextChannel(NodeId at, NodeId dest) const
{
    // Dimension order X then Y; shorter way around the ring, ties
    // toward the + direction (E / S).
    const unsigned x = xOf(at), y = yOf(at);
    const unsigned dx = xOf(dest), dy = yOf(dest);
    unsigned dir;
    if (x != dx) {
        const unsigned plus = (dx + _width - x) % _width;
        dir = plus <= _width - plus ? dirE : dirW;
    } else if (y != dy) {
        const unsigned plus = (dy + _height - y) % _height;
        dir = plus <= _height - plus ? dirS : dirN;
    } else {
        panic("torus nextChannel: at == dest (%u)", at);
    }
    return static_cast<unsigned>(_dirChannel[at][dir]);
}

unsigned
TorusTopology::reverseChannel(NodeId n, unsigned channel) const
{
    // On a width-2 ring the E and W links reach the same node, so pair
    // directions explicitly: the flit leaving on E arrives on the far
    // end's W input, and so on.
    for (unsigned dir = 0; dir < 4; ++dir) {
        if (_dirChannel[n][dir] != static_cast<std::int8_t>(channel))
            continue;
        const unsigned back = (dir + 2) % 4; // N<->S, E<->W
        const NodeId m = _neighbors[n][channel];
        return static_cast<unsigned>(_dirChannel[m][back]);
    }
    panic("torus reverseChannel: bad channel %u at node %u", channel, n);
}

unsigned
TorusTopology::channelDim(NodeId n, unsigned channel) const
{
    for (unsigned dir = 0; dir < 4; ++dir)
        if (_dirChannel[n][dir] == static_cast<std::int8_t>(channel))
            return dimOfDir(dir);
    panic("torus channelDim: bad channel %u at node %u", channel, n);
}

bool
TorusTopology::channelWrap(NodeId n, unsigned channel) const
{
    // The dateline sits between column W-1 and column 0 (row H-1 and
    // row 0 for the Y rings): exactly one wrap link per direction per
    // ring, so VC1 carries a packet at most once past it.
    const unsigned x = xOf(n), y = yOf(n);
    for (unsigned dir = 0; dir < 4; ++dir) {
        if (_dirChannel[n][dir] != static_cast<std::int8_t>(channel))
            continue;
        switch (dir) {
          case dirE: return x == _width - 1;
          case dirW: return x == 0;
          case dirS: return y == _height - 1;
          case dirN: return y == 0;
        }
    }
    panic("torus channelWrap: bad channel %u at node %u", channel, n);
}

double
TorusTopology::averageHops() const
{
    // Mean ring distance over ordered pairs, per dimension.
    auto ring_mean = [](unsigned n) {
        std::uint64_t total = 0;
        for (unsigned d = 1; d < n; ++d)
            total += d < n - d ? d : n - d;
        return static_cast<double>(total) / n;
    };
    return ring_mean(_width) + ring_mean(_height);
}

// -------------------------------------------------------- express mesh

ExpressMeshTopology::ExpressMeshTopology(unsigned width, unsigned height,
                                         unsigned stride)
    : Topology(width, height), _stride(stride)
{
    assert(stride >= 2 && "express stride must be >= 2");
    const unsigned n = numNodes();
    _neighbors.resize(n);
    _dirChannel.assign(n, {-1, -1, -1, -1, -1, -1, -1, -1});
    for (NodeId node = 0; node < n; ++node) {
        const unsigned x = xOf(node);
        const unsigned y = yOf(node);
        auto add = [&](unsigned slot, NodeId to) {
            _dirChannel[node][slot] =
                static_cast<std::int8_t>(_neighbors[node].size());
            _neighbors[node].push_back(to);
        };
        // Walk links first (mesh order), then the express skips.
        if (y > 0)
            add(dirN, nodeAt(x, y - 1));
        if (x + 1 < width)
            add(dirE, nodeAt(x + 1, y));
        if (y + 1 < height)
            add(dirS, nodeAt(x, y + 1));
        if (x > 0)
            add(dirW, nodeAt(x - 1, y));
        if (y >= stride)
            add(4 + dirN, nodeAt(x, y - stride));
        if (x + stride < width)
            add(4 + dirE, nodeAt(x + stride, y));
        if (y + stride < height)
            add(4 + dirS, nodeAt(x, y + stride));
        if (x >= stride)
            add(4 + dirW, nodeAt(x - stride, y));
    }
}

unsigned
ExpressMeshTopology::hops(NodeId a, NodeId b) const
{
    return lineHops(xOf(a), xOf(b)) + lineHops(yOf(a), yOf(b));
}

unsigned
ExpressMeshTopology::nextChannel(NodeId at, NodeId dest) const
{
    // Jumps-then-walks, X before Y. A jump toward the destination is
    // always in bounds when the remaining distance is >= stride.
    const unsigned x = xOf(at), y = yOf(at);
    const unsigned dx = xOf(dest), dy = yOf(dest);
    unsigned dir;
    unsigned d;
    if (x != dx) {
        dir = dx > x ? dirE : dirW;
        d = dx > x ? dx - x : x - dx;
    } else if (y != dy) {
        dir = dy > y ? dirS : dirN;
        d = dy > y ? dy - y : y - dy;
    } else {
        panic("express nextChannel: at == dest (%u)", at);
    }
    const unsigned slot = d >= _stride ? 4 + dir : dir;
    return static_cast<unsigned>(_dirChannel[at][slot]);
}

unsigned
ExpressMeshTopology::channelDim(NodeId n, unsigned channel) const
{
    for (unsigned slot = 0; slot < 8; ++slot)
        if (_dirChannel[n][slot] == static_cast<std::int8_t>(channel))
            return dimOfDir(slot % 4);
    panic("express channelDim: bad channel %u at node %u", channel, n);
}

// ------------------------------------------------------------- factory

std::shared_ptr<const Topology>
makeTopology(const TopologyParams &params, unsigned num_nodes)
{
    unsigned w = params.width;
    if (!w) {
        unsigned best = 1;
        for (unsigned d = 1; d * d <= num_nodes; ++d)
            if (num_nodes % d == 0)
                best = d;
        w = num_nodes / best; // wider than tall for non-squares
    }
    const unsigned h = params.height ? params.height : num_nodes / w;
    if (w * h != num_nodes)
        fatal("topology: %ux%u grid cannot cover %u nodes", w, h,
              num_nodes);
    switch (params.kind) {
      case TopologyKind::mesh:
        return std::make_shared<MeshTopology>(w, h);
      case TopologyKind::torus:
        return std::make_shared<TorusTopology>(w, h);
      case TopologyKind::expressMesh:
        return std::make_shared<ExpressMeshTopology>(
            w, h, params.expressStride);
    }
    fatal("topology: bad kind");
}

bool
parseTopologyKind(const std::string &text, TopologyParams &params)
{
    std::string kind = text;
    std::string arg;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        kind = text.substr(0, colon);
        arg = text.substr(colon + 1);
    }
    if (kind == "mesh") {
        params.kind = TopologyKind::mesh;
    } else if (kind == "torus") {
        params.kind = TopologyKind::torus;
    } else if (kind == "express" || kind == "express-mesh") {
        params.kind = TopologyKind::expressMesh;
        if (!arg.empty())
            params.expressStride =
                static_cast<unsigned>(std::stoul(arg));
    } else {
        return false;
    }
    return true;
}

} // namespace limitless
