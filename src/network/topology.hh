/**
 * @file
 * 2-D mesh topology arithmetic shared by network models.
 */

#ifndef LIMITLESS_NETWORK_TOPOLOGY_HH
#define LIMITLESS_NETWORK_TOPOLOGY_HH

#include <cassert>
#include <cstdlib>

#include "sim/types.hh"

namespace limitless
{

/** Coordinates and distances on a width x height mesh. */
class MeshTopology
{
  public:
    MeshTopology(unsigned width, unsigned height)
        : _width(width), _height(height)
    {
        assert(width >= 1 && height >= 1);
    }

    unsigned width() const { return _width; }
    unsigned height() const { return _height; }
    unsigned numNodes() const { return _width * _height; }

    unsigned xOf(NodeId n) const { return n % _width; }
    unsigned yOf(NodeId n) const { return n / _width; }

    NodeId
    nodeAt(unsigned x, unsigned y) const
    {
        assert(x < _width && y < _height);
        return y * _width + x;
    }

    /** Manhattan hop distance. */
    unsigned
    hops(NodeId a, NodeId b) const
    {
        int dx = static_cast<int>(xOf(a)) - static_cast<int>(xOf(b));
        int dy = static_cast<int>(yOf(a)) - static_cast<int>(yOf(b));
        return static_cast<unsigned>(std::abs(dx) + std::abs(dy));
    }

    /** Average hop distance over all ordered pairs (analytic). */
    double averageHops() const;

  private:
    unsigned _width;
    unsigned _height;
};

} // namespace limitless

#endif // LIMITLESS_NETWORK_TOPOLOGY_HH
