/**
 * @file
 * Interconnect topology abstraction.
 *
 * The paper's machine is a 64-node 8x8 wormhole mesh, but the scaling
 * story (256-1024 nodes, eventually multi-chip two-level coherence)
 * needs the interconnect behind an interface: distances, routing and
 * channel structure all become per-topology while the flit-level fabric
 * (MeshNetwork) stays a single generic wormhole engine.
 *
 * Three concrete topologies:
 *  - MeshTopology: generalized N x M mesh, dimension-ordered X-Y
 *    routing. Exactly the paper's machine shape.
 *  - TorusTopology: wrap-around mesh; per-dimension distance is
 *    min(d, W - d). Dimension-ordered routing plus a dateline virtual
 *    channel (numVcs() == 2) for deadlock freedom on the wrap rings.
 *  - ExpressMeshTopology: mesh where every node also has +/-k "express"
 *    skip links per dimension. Routing is jumps-then-walks per
 *    dimension (monotone toward the destination), so route length is
 *    floor(d/k) + d%k per dimension and the channel-dependency graph
 *    stays acyclic with a single VC.
 *
 * A topology owns the *shape* (neighbors, channels, distances, VC
 * discipline); the fabric owns the *dynamics* (buffers, credits,
 * arbitration, wormhole ownership).
 */

#ifndef LIMITLESS_NETWORK_TOPOLOGY_HH
#define LIMITLESS_NETWORK_TOPOLOGY_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

enum class TopologyKind { mesh, torus, expressMesh };

const char *topologyKindName(TopologyKind kind);

/** Shape of the machine's interconnect, as configured. */
struct TopologyParams
{
    TopologyKind kind = TopologyKind::mesh;
    /** Grid width; 0 picks the most square factorization of numNodes. */
    unsigned width = 0;
    unsigned height = 0; ///< derived from width and numNodes when 0
    /** Express-link stride k: every node gains +/-k links per
     *  dimension (expressMesh only). */
    unsigned expressStride = 4;
    /**
     * Nodes per chip/cluster. Contiguous node-id ranges of this size
     * form one "chip"; the address map interleaves lines cluster-aware
     * so each cluster's nodes are home to consecutive line groups. This
     * is the addressing seam the future two-level (Rainbow-style)
     * directory delegates through. 1 = flat machine, the paper's
     * configuration.
     */
    unsigned clusterSize = 1;
};

/**
 * Abstract interconnect topology over a width x height node grid.
 *
 * All three implementations are grid-shaped (node id = y * width + x),
 * so coordinates live in the base; what varies is the edge set, the
 * distance metric, the routing function and the VC discipline.
 *
 * Channel model: neighbors(n) lists the outgoing links of node n in a
 * fixed order; a "channel" is an index into that list. The fabric
 * instantiates numVcs() virtual channels (input buffers + output
 * ownership) per link and consults vcOut()/channelDim()/channelWrap()
 * to implement the topology's deadlock-avoidance discipline without
 * knowing which topology it runs.
 */
class Topology
{
  public:
    Topology(unsigned width, unsigned height)
        : _width(width), _height(height)
    {
        assert(width >= 1 && height >= 1);
    }

    virtual ~Topology() = default;

    virtual TopologyKind kind() const = 0;
    const char *name() const { return topologyKindName(kind()); }

    unsigned width() const { return _width; }
    unsigned height() const { return _height; }
    unsigned numNodes() const { return _width * _height; }

    unsigned xOf(NodeId n) const { return n % _width; }
    unsigned yOf(NodeId n) const { return n / _width; }

    NodeId
    nodeAt(unsigned x, unsigned y) const
    {
        assert(x < _width && y < _height);
        return y * _width + x;
    }

    /** Hop distance along this topology's routes. Symmetric, zero iff
     *  a == b, and nextHop() decreases it by exactly one per hop. */
    virtual unsigned hops(NodeId a, NodeId b) const = 0;

    /** Outgoing links of @p n, in channel order. */
    const std::vector<NodeId> &
    neighbors(NodeId n) const
    {
        return _neighbors[n];
    }

    /** Channel (index into neighbors(at)) a packet for @p dest takes
     *  out of @p at. Requires at != dest. */
    virtual unsigned nextChannel(NodeId at, NodeId dest) const = 0;

    /** Next node on the route from @p at to @p dest (at != dest). */
    NodeId
    nextHop(NodeId at, NodeId dest) const
    {
        return _neighbors[at][nextChannel(at, dest)];
    }

    /** Channel at the link's far end that points back along the same
     *  physical link (for duplicate-neighbor cases, e.g. a width-2
     *  torus ring, index search alone is ambiguous). */
    virtual unsigned reverseChannel(NodeId n, unsigned channel) const;

    /** Virtual channels per link the fabric must provision. */
    virtual unsigned numVcs() const { return 1; }

    /**
     * Dimension class of a channel (0 = X, 1 = Y). Two channels in the
     * same class carry a packet's VC forward under the dateline rule;
     * crossing classes resets it.
     */
    virtual unsigned
    channelDim(NodeId n, unsigned channel) const
    {
        (void)n;
        (void)channel;
        return 0;
    }

    /** True when the channel is a wrap (dateline) link: packets
     *  traversing it switch to the high VC for the rest of the ring. */
    virtual bool
    channelWrap(NodeId n, unsigned channel) const
    {
        (void)n;
        (void)channel;
        return false;
    }

    /** Average hop distance over all ordered pairs. */
    virtual double averageHops() const;

    /**
     * Conservative parallel-simulation lookahead: a lower bound, in
     * network clock cycles, on the time between a packet entering the
     * fabric at one node and any observable effect at a *different*
     * node. Every topology's wormhole router takes at least one cycle
     * to move a flit across one hop, so the bound is 1 for all current
     * fabrics; a topology with zero-latency links would have to say so
     * here (and would defeat window parallelism). The parallel kernel
     * sizes its synchronization window with this bound.
     */
    virtual Tick minHopLookahead() const { return 1; }

  protected:
    /** Derived constructors fill the adjacency lists. */
    std::vector<std::vector<NodeId>> _neighbors;

    unsigned _width;
    unsigned _height;
};

/** The paper's machine: N x M mesh, dimension-ordered X-Y routing.
 *  Channel order is N, E, S, W (present links only), Local implied
 *  last by the fabric — the arbitration order of the original
 *  fixed-five-port router. */
class MeshTopology : public Topology
{
  public:
    MeshTopology(unsigned width, unsigned height);

    TopologyKind kind() const override { return TopologyKind::mesh; }

    unsigned
    hops(NodeId a, NodeId b) const override
    {
        const int dx = static_cast<int>(xOf(a)) - static_cast<int>(xOf(b));
        const int dy = static_cast<int>(yOf(a)) - static_cast<int>(yOf(b));
        return static_cast<unsigned>((dx < 0 ? -dx : dx) +
                                     (dy < 0 ? -dy : dy));
    }

    unsigned nextChannel(NodeId at, NodeId dest) const override;
    unsigned channelDim(NodeId n, unsigned channel) const override;

    /** Analytic: mean |i-j| on a line of n nodes is (n^2-1)/(3n). */
    double averageHops() const override;

    /** Nearest neighbour is one link = one router cycle away. */
    Tick minHopLookahead() const override { return 1; }

  private:
    /** Per node: channel index of the N/E/S/W link, -1 if absent. */
    std::vector<std::array<std::int8_t, 4>> _dirChannel;
};

/** Wrap-around mesh. Dimension-ordered routing (X ring first, then Y
 *  ring, shorter way around, ties resolved toward +), with the classic
 *  dateline discipline: two VCs per link, packets start a ring on VC0
 *  and switch to VC1 at the wrap link, which breaks the ring's channel
 *  dependency cycle. */
class TorusTopology : public Topology
{
  public:
    TorusTopology(unsigned width, unsigned height);

    TopologyKind kind() const override { return TopologyKind::torus; }

    unsigned hops(NodeId a, NodeId b) const override;
    unsigned nextChannel(NodeId at, NodeId dest) const override;
    unsigned reverseChannel(NodeId n, unsigned channel) const override;
    unsigned numVcs() const override { return 2; }
    unsigned channelDim(NodeId n, unsigned channel) const override;
    bool channelWrap(NodeId n, unsigned channel) const override;
    double averageHops() const override;

    /** Wrap links cost the same single cycle as interior links. */
    Tick minHopLookahead() const override { return 1; }

  private:
    /** Per node: channel index of the N/E/S/W link, -1 when the
     *  dimension is degenerate (width or height 1). */
    std::vector<std::array<std::int8_t, 4>> _dirChannel;
};

/**
 * Mesh with express links: every node has +/-stride skip channels per
 * dimension (in bounds). Routing is monotone jumps-then-walks: while
 * the remaining per-dimension distance is >= stride, take the express
 * link toward the destination (always in bounds); then walk. Route
 * length per dimension is floor(d/k) + d%k — never longer than the
 * mesh's d, and each hop decreases it by exactly one.
 *
 * hops() reports that route length. It is deliberately *not* a metric:
 * overshooting past the destination on an express link and walking
 * back can be shorter, but such routes reverse direction mid-dimension
 * and reintroduce the channel-dependency cycles that the monotone
 * discipline (and hence single-VC deadlock freedom) rules out. See
 * docs/TOPOLOGY.md.
 */
class ExpressMeshTopology : public Topology
{
  public:
    ExpressMeshTopology(unsigned width, unsigned height, unsigned stride);

    TopologyKind kind() const override
    {
        return TopologyKind::expressMesh;
    }

    unsigned stride() const { return _stride; }

    unsigned hops(NodeId a, NodeId b) const override;
    unsigned nextChannel(NodeId at, NodeId dest) const override;
    unsigned channelDim(NodeId n, unsigned channel) const override;

    /** An express jump spans stride nodes but still takes one router
     *  cycle, so the cross-node bound stays 1 (not stride). */
    Tick minHopLookahead() const override { return 1; }

  private:
    /** Per-dimension route length: jumps + remainder walks. */
    unsigned
    lineHops(unsigned from, unsigned to) const
    {
        const unsigned d = from > to ? from - to : to - from;
        return d / _stride + d % _stride;
    }

    /** Per node: channel index of walk N/E/S/W then jump N/E/S/W
     *  (same direction encoding), -1 if absent. */
    std::vector<std::array<std::int8_t, 8>> _dirChannel;

    unsigned _stride;
};

/**
 * Resolve @p params against @p num_nodes and build the topology.
 * width 0 picks the most square factorization (wider than tall);
 * panics if width x height cannot cover num_nodes exactly.
 */
std::shared_ptr<const Topology> makeTopology(const TopologyParams &params,
                                             unsigned num_nodes);

/** Parse "mesh" / "torus" / "express" (+ optional ":stride") into
 *  params; returns false on an unrecognized name. */
bool parseTopologyKind(const std::string &text, TopologyParams &params);

} // namespace limitless

#endif // LIMITLESS_NETWORK_TOPOLOGY_HH
