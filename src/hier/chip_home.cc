#include "hier/chip_home.hh"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "mem/home/hier_home.hh"
#include "obs/flight_recorder.hh"
#include "obs/telemetry.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

/** Parent BUSY backoff, mirroring the cache side's retry policy but
 *  deterministic (no jitter draw — the chip home serializes per line,
 *  so two chip homes never need decorrelating against each other the
 *  way many caches do). */
constexpr Tick chipRetryBase = 12;
constexpr unsigned chipRetryCapShift = 5;

} // namespace

ChipHomeController::ChipHomeController(EventQueue &eq, NodeId self,
                                       const AddressMap &amap,
                                       const ProtocolParams &proto,
                                       const MemParams &params)
    : _eq(eq), _self(self), _amap(amap), _proto(proto), _params(params),
      _swTable(amap.numNodes()),
      _statRequests(_stats.counter("requests", "protocol packets serviced")),
      _statReads(_stats.counter("rreq", "local read requests")),
      _statWrites(_stats.counter("wreq", "local write requests")),
      _statBusyNacks(_stats.counter("busy_nacks", "BUSY responses sent")),
      _statInvsSent(
          _stats.counter("invs_sent", "local invalidations sent")),
      _statParentReqs(_stats.counter(
          "parent_reqs", "misses forwarded to the global home")),
      _statParentInvs(_stats.counter(
          "parent_invs", "invalidations received from the global home")),
      _statParentRetries(_stats.counter(
          "parent_retries", "parent BUSY-nack retry rounds")),
      _statLocalGrants(_stats.counter(
          "local_grants", "requests satisfied from the chip copy")),
      _statEvictions(
          _stats.counter("evictions", "chip-dir pointer evictions")),
      _statReadTraps(_stats.counter(
          "read_traps", "chip-level pointer-overflow (read) traps")),
      _statWriteTraps(_stats.counter(
          "write_traps", "chip-level software write-gather traps")),
      _statTrapCycles(_stats.counter(
          "trap_cycles", "cycles spent in chip-level Ts emulation")),
      _statStaleAcks(
          _stats.counter("stale_acks", "acknowledgments ignored")),
      _statWorkerSet(_stats.distribution(
          "worker_set", "local sharers invalidated per chip write",
          amap.clusterSize()))
{
    switch (_proto.kind) {
      case ProtocolKind::fullMap:
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
      case ProtocolKind::limited:
        _dir = std::make_unique<LimitedDir>(_proto.pointers);
        break;
      case ProtocolKind::limitless: {
        auto ldir = std::make_unique<LimitlessDir>(_self, _proto.pointers,
                                                   _proto.localBit);
        _ldir = ldir.get();
        _dir = std::move(ldir);
        break;
      }
      case ProtocolKind::chained:
        // Chip-level chaining is not modelled: the chained scheme's
        // distributed lists live at the global level (between chip
        // homes); within a chip the handful of local sharers fit a
        // plain map. See docs/HIERARCHY.md.
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
      case ProtocolKind::privateOnly:
        panic("private-only scheme has no chip home");
    }
    _policy = &home::hierChipPolicyFor(_proto.kind);
}

double
ChipHomeController::overflowFraction() const
{
    const double reqs = static_cast<double>(_statReads.value() +
                                            _statWrites.value());
    if (reqs == 0)
        return 0.0;
    return (_statReadTraps.value() + _statWriteTraps.value()) / reqs;
}

bool
ChipHomeController::wantsResponse(Addr line, Opcode op) const
{
    const ChipState st = lineState(line);
    switch (op) {
      case Opcode::RDATA:
        return st == ChipState::hFillRead;
      case Opcode::WDATA:
        return st == ChipState::hFillWrite;
      case Opcode::BUSY:
        return st == ChipState::hFillRead ||
               st == ChipState::hFillWrite ||
               st == ChipState::hFillWriteInv;
      case Opcode::INV:
        // Local caches are only invalidated by their own chip home (via
        // loopback when they share its node), so a remote INV here is
        // always the global home recalling the chip's copy.
        return true;
      case Opcode::MUPD:
        // Update-mode lines are unsupported under --hier: a chip home
        // cannot refresh copies it granted from a single MUPD. Routing
        // it into the chip table panics on the undeclared pair, which
        // is the documented loud failure. Home-chip sharers (tracked
        // directly by the global home) still work.
        return true;
      default:
        return false;
    }
}

std::size_t
ChipHomeController::workerSetSize(Addr line) const
{
    std::vector<NodeId> all;
    chipSharers(line, all);
    return all.size();
}

void
ChipHomeController::chipSharers(Addr line, std::vector<NodeId> &out) const
{
    _dir->sharers(line, out);
    _swTable.sharers(line, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

// --------------------------------------------------------------------
// Service loop (mirrors MemoryController)
// --------------------------------------------------------------------

void
ChipHomeController::enqueue(PacketPtr pkt)
{
    assert(pkt && pkt->isProtocol());
    assert(_amap.chipHomeOf(pkt->addr(), _amap.clusterOf(_self)) ==
               _self &&
           "packet routed to the wrong chip home");
    assert(_amap.clusterOf(_amap.homeOf(pkt->addr())) !=
               _amap.clusterOf(_self) &&
           "home-chip lines are serviced by the global home directly");
    _queue.push_back(std::move(pkt));
    scheduleService();
}

void
ChipHomeController::scheduleService()
{
    if (_serviceScheduled || _queue.empty())
        return;
    _serviceScheduled = true;
    const Tick when = std::max(_eq.now(), _busyUntil);
    _eq.schedule(when, [this]() {
        _serviceScheduled = false;
        service();
    }, EventPriority::ctrl);
}

void
ChipHomeController::service()
{
    assert(!_queue.empty());
    PacketPtr pkt = std::move(_queue.front());
    _queue.pop_front();
    _extraDelay = 0;
    _statRequests += 1;
    if (Log::enabled("chip"))
        Log::debug(_eq.now(), "chip", "chip %u [%s] sv %s", _self,
                   chipStateName(lineState(pkt->addr())),
                   describePacket(*pkt).c_str());

    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    const ChipState pre = lineState(line);
    const std::uint64_t txn_id = pkt->txnId;
    const std::uint32_t txn_leg = pkt->legSpan;
    const std::uint32_t txn_cause = pkt->causeSpan;
    // Re-stamped on deferred replay, so earlier rounds land in req_net.
    if (op == Opcode::RREQ || op == Opcode::WREQ)
        FlightRecorder::instance().latency().onChipArrival(_eq.now(), src,
                                                           line);
    if (txn_id && (op == Opcode::ACKC || op == Opcode::UPDATE))
        FlightRecorder::instance().txn().onInvAck(txn_id, txn_cause,
                                                  _eq.now());
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "chip_service";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = chipStateName(pre);
        FR_RECORD(ev);
    }

    process(pkt);
    const ChipState post = lineState(line);
    if (post != pre) {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "chip_fsm_state";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.detail = chipStateName(post);
        FR_RECORD(ev);
    }
    _busyUntil = _eq.now() + _params.serviceCycles + _extraDelay;
    if (txn_id && (op == Opcode::RREQ || op == Opcode::WREQ))
        FlightRecorder::instance().txn().onHomeService(
            txn_id, txn_leg, _self, op, _eq.now(), _busyUntil);
    scheduleService();
}

void
ChipHomeController::process(PacketPtr &pkt)
{
    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    _curTxn = pkt->txnId;
    ChipLine &cl = lineFor(line);
    home::ChipCtx ctx{*this, pkt, cl};

    if (_wsProfile && (op == Opcode::RREQ || op == Opcode::WREQ))
        _wsProfile->sample(workerSetSize(line));

    const auto pre = static_cast<std::uint8_t>(cl.state);
    const auto &tr = _policy->table->fire(ctx, pre, op);
    _observed.insert((static_cast<std::uint32_t>(pre) << 16) |
                     static_cast<std::uint16_t>(op));
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "chip_transition";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = tr.label;
        ev.arg = tr.id;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
}

// --------------------------------------------------------------------
// Send helpers
// --------------------------------------------------------------------

void
ChipHomeController::dispatch(PacketPtr pkt)
{
    if (pkt->txnId == 0 && _curTxn != 0)
        pkt->txnId = _curTxn;
    if (_extraDelay == 0) {
        _send(std::move(pkt));
        return;
    }
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + _extraDelay, [this, raw]() {
        _send(PacketPtr(raw));
    }, EventPriority::ctrl);
}

void
ChipHomeController::grantRead(NodeId to, Addr line)
{
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const ChipLine &cl = lineFor(line);
    // Local relays never carry a chain operand: chip-level chaining is
    // not modelled, and the cache treats a missing operand as no chain.
    dispatch(makeDataPacket(_self, to, Opcode::RDATA, line,
                            cl.data.data(), _amap.wordsPerLine()));
}

void
ChipHomeController::grantWrite(NodeId to, Addr line)
{
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const ChipLine &cl = lineFor(line);
    dispatch(makeDataPacket(_self, to, Opcode::WDATA, line,
                            cl.data.data(), _amap.wordsPerLine()));
}

void
ChipHomeController::sendInvLocal(NodeId to, Addr line)
{
    _statInvsSent += 1;
    const NodeId pending = lineFor(line).pending;
    if (pending != invalidNode)
        FlightRecorder::instance().latency().onInvStart(
            _eq.now() + _extraDelay, pending, line);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "chip_inv_tx";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.dest = to;
        FR_RECORD(ev);
    }
    auto pkt = makeProtocolPacket(_self, to, Opcode::INV, line);
    pkt->operands.push_back(_self);
    if (_curTxn) {
        pkt->txnId = _curTxn;
        FlightRecorder::instance().txn().onInvSend(
            *pkt, _self, _eq.now() + _extraDelay);
    }
    dispatch(std::move(pkt));
}

void
ChipHomeController::forwardToParent(Addr line, bool write)
{
    ChipLine &cl = lineFor(line);
    _statParentReqs += 1;
    if (cl.pending != invalidNode)
        FlightRecorder::instance().latency().onParentForward(
            _eq.now() + _extraDelay, cl.pending, line, _self);
    dispatch(makeProtocolPacket(
        _self, parentOf(line), write ? Opcode::WREQ : Opcode::RREQ, line));
}

void
ChipHomeController::retryParent(Addr line)
{
    ChipLine &cl = lineFor(line);
    _statParentRetries += 1;
    const Tick delay =
        chipRetryBase
        << std::min<std::uint32_t>(cl.retries, chipRetryCapShift);
    cl.retries += 1;
    if (_curTxn && cl.pending != invalidNode)
        FlightRecorder::instance().txn().onBusyBackoff(
            cl.pending, line, _eq.now(), delay, cl.retries);
    const std::uint64_t txn = _curTxn;
    _eq.schedule(_eq.now() + delay, [this, line, txn]() {
        ChipLine &l = lineFor(line);
        if (l.state != ChipState::hFillRead &&
            l.state != ChipState::hFillWrite &&
            l.state != ChipState::hFillWriteInv)
            return; // the fill resolved another way meanwhile
        _curTxn = txn;
        forwardToParent(line, l.pendingIsWrite);
        _curTxn = 0;
    }, EventPriority::ctrl);
}

void
ChipHomeController::ackParent(Addr line)
{
    ChipLine &cl = lineFor(line);
    auto pkt =
        makeProtocolPacket(_self, parentOf(line), Opcode::ACKC, line);
    // Chained parent level: echo the successor from our fill so the
    // global chain walk can continue past this chip (mirrors the cache
    // side's sendAck).
    pkt->operands.push_back(cl.parentChainNext);
    cl.parentChainNext = invalidNode;
    dispatch(std::move(pkt));
}

void
ChipHomeController::updateParent(Addr line)
{
    const ChipLine &cl = lineFor(line);
    dispatch(makeDataPacket(_self, parentOf(line), Opcode::UPDATE, line,
                            cl.data.data(), _amap.wordsPerLine()));
}

void
ChipHomeController::ackReplace(NodeId to, Addr line)
{
    dispatch(makeProtocolPacket(_self, to, Opcode::REPC_ACK, line));
}

void
ChipHomeController::storeData(Addr line, const Packet &pkt)
{
    ChipLine &cl = lineFor(line);
    const unsigned n =
        std::min<unsigned>(pkt.data.size(), _amap.wordsPerLine());
    for (unsigned i = 0; i < n; ++i)
        cl.data[i] = pkt.data[i];
}

void
ChipHomeController::fillFromParent(Addr line, const Packet &pkt)
{
    FlightRecorder::instance().latency().onParentConsumed(_eq.now(),
                                                          _self, line);
    storeData(line, pkt);
    ChipLine &cl = lineFor(line);
    cl.retries = 0;
    if (pkt.operands.size() > 1)
        cl.parentChainNext = static_cast<NodeId>(pkt.operands[1]);
}

void
ChipHomeController::deferOrBusy(PacketPtr &pkt, ChipLine &cl)
{
    assert(opcodeIsHomeRequest(pkt->opcode));
    if (cl.deferred.size() < _params.deferDepth) {
        cl.deferred.push_back(std::move(pkt));
        return;
    }
    _statBusyNacks += 1;
    dispatch(makeProtocolPacket(_self, pkt->src, Opcode::BUSY,
                                pkt->addr()));
}

void
ChipHomeController::replayDeferred(ChipLine &cl)
{
    for (auto it = cl.deferred.rbegin(); it != cl.deferred.rend(); ++it)
        _queue.push_front(std::move(*it));
    cl.deferred.clear();
    scheduleService();
}

void
ChipHomeController::chargeTrap(Tick cycles, NodeId requester, Addr line)
{
    _extraDelay = cycles;
    _statTrapCycles += cycles;
    if (_trapServiceHist)
        _trapServiceHist->sample(cycles);
    FlightRecorder::instance().latency().onTrap(requester, line, cycles);
    if (_curTxn)
        FlightRecorder::instance().txn().onTrapCharge(_curTxn, _self,
                                                      _eq.now(), cycles);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "chip_trap_charge";
        ev.cat = EventCat::trap;
        ev.node = _self;
        ev.line = line;
        ev.src = requester;
        ev.arg = cycles;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    if (_trapStall)
        _trapStall(cycles);
}

// --------------------------------------------------------------------
// Checkpoint (checker fingerprint)
// --------------------------------------------------------------------

namespace
{

void
checkpointPacket(std::ostream &os, const Packet &pkt)
{
    os << opcodeName(pkt.opcode) << pkt.src << ">" << pkt.dest << "(";
    for (std::size_t i = 0; i < pkt.operands.size(); ++i)
        os << (i ? "," : "") << pkt.operands[i];
    os << "|";
    for (std::size_t i = 0; i < pkt.data.size(); ++i)
        os << (i ? "," : "") << pkt.data[i];
    os << ")";
}

} // namespace

void
ChipHomeController::checkpoint(std::ostream &os) const
{
    std::set<Addr> lines;
    for (const auto &[line, cl] : _lines)
        lines.insert(line);

    os << "chip" << _self << "{";
    for (Addr line : lines) {
        const ChipLine &cl = _lines.find(line)->second;
        os << "L" << std::hex << line << std::dec << ":"
           << chipStateName(cl.state) << ",a" << cl.ackCtr << ",p";
        if (cl.pending != invalidNode)
            os << cl.pending;
        if (cl.pendingIsWrite)
            os << "w";
        os << (cl.dirty ? ",D" : "") << (cl.dataSeen ? ",d" : "")
           << (cl.parentInvPending ? ",P" : "");
        if (cl.parentChainNext != invalidNode)
            os << ",n" << cl.parentChainNext;
        if (cl.evictVictim != invalidNode)
            os << ",e" << cl.evictVictim;
        for (const PacketPtr &pkt : cl.deferred) {
            os << ",q";
            checkpointPacket(os, *pkt);
        }
        std::vector<NodeId> sharers;
        _dir->sharers(line, sharers);
        std::sort(sharers.begin(), sharers.end());
        os << "/dir";
        for (NodeId n : sharers)
            os << "." << n;
        if (_ldir)
            os << "/meta" << metaStateName(_ldir->meta(line));
        if (_swTable.has(line)) {
            sharers.clear();
            _swTable.sharers(line, sharers);
            std::sort(sharers.begin(), sharers.end());
            os << "/sw";
            for (NodeId n : sharers)
                os << "." << n;
        }
        // The chip copy's words matter for safety whenever the chip
        // holds (or is filling) data.
        if (cl.state != ChipState::hInvalid) {
            os << "/m";
            for (unsigned w = 0; w < _amap.wordsPerLine(); ++w)
                os << (w ? "," : "") << cl.data[w];
        }
        os << ";";
    }
    for (const PacketPtr &pkt : _queue) {
        os << "Q";
        checkpointPacket(os, *pkt);
        os << ";";
    }
    os << "}";
}

} // namespace limitless
