/**
 * @file
 * Chip-home (per-chip directory) line states for the two-level mode.
 *
 * The chip home sits between a chip's caches and the global home: it is
 * a *cache of the chip's sharing state* — toward its local caches it
 * behaves like a home directory, toward the global home it behaves like
 * a single cache (so the unmodified global tables naturally track one
 * pointer per sharing chip). Its stable states therefore mirror the
 * cache side (invalid / read-shared / exclusively owned) and its
 * transients mirror the home side's transactions, with extra crossing
 * states for invalidations that arrive from *both* directions at once.
 * See docs/HIERARCHY.md for the full walk-through.
 */

#ifndef LIMITLESS_HIER_CHIP_STATES_HH
#define LIMITLESS_HIER_CHIP_STATES_HH

#include <cstdint>

namespace limitless
{

/** Chip-home per-line states (two-level mode). */
enum class ChipState : std::uint8_t
{
    hInvalid,  ///< chip holds no copy
    hCopy,     ///< chip holds data read-shared; local readers tracked
               ///< in the chip directory (possibly zero — the chip
               ///< copy is sticky and never evicted)
    hOwned,    ///< one local cache holds the line read-write; the chip
               ///< is the exclusive owner at the global level
    hFillRead, ///< RREQ forwarded to the global home, reply pending
    hFillWrite,    ///< WREQ forwarded to the global home, reply pending
    hFillWriteInv, ///< parent INV crossed our WREQ: invalidating the
                   ///< kept local copies before acking the parent
    hWriteInv, ///< local write: invalidating the chip's other readers
    hRecall,   ///< recalling the local owner's dirty data (local
               ///< request or parent invalidation)
    hParentInv, ///< parent INV in hCopy: invalidating local readers
    hChipET,   ///< chip directory full on a local read: evicting one
               ///< local pointer (limited/LimitLESS chip directories)
};

const char *chipStateName(ChipState s);

/** chipStateName over the transition engine's untyped state index. */
const char *chipSideStateName(std::uint8_t s);

} // namespace limitless

#endif // LIMITLESS_HIER_CHIP_STATES_HH
