/**
 * @file
 * Per-chip home controller: the middle tier of the two-level (--hier)
 * directory mode.
 *
 * One controller per node (like the memory controller, each node
 * chip-homes the slice of remote lines whose within-chip interleave
 * digit matches its own — see AddressMap::chipHomeOf). Toward the
 * chip's caches it acts as a home directory: it tracks local sharers in
 * a real per-chip DirectoryScheme (full-map, limited, or LimitLESS with
 * software spill — the same pointer-overflow economics as the global
 * level, operating independently), grants read copies out of its own
 * data buffer, and fans local invalidations out itself. Toward the
 * global home it acts as a single cache: it requests with RREQ/WREQ,
 * acknowledges INV with ACKC, and writes dirty data back with UPDATE —
 * so the *unmodified* global tables track one pointer per sharing chip
 * and the global LimitLESS software spill absorbs chip-sharer overflow
 * exactly as it absorbs cache-sharer overflow in flat mode.
 *
 * All protocol behavior lives in the per-scheme chip transition tables
 * of src/mem/home/hier_home.cc (TableSide::chip); process() is a single
 * table dispatch, mirroring the MemoryController. The chip copy is
 * sticky: the controller never evicts a chip-level copy on its own
 * (a deliberate idealization — the global directory reclaims chip
 * pointers through its own eviction/invalidation machinery), so the
 * chip FSM needs no capacity-eviction path toward the parent.
 */

#ifndef LIMITLESS_HIER_CHIP_HOME_HH
#define LIMITLESS_HIER_CHIP_HOME_HH

#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "directory/directory.hh"
#include "directory/limitless_dir.hh"
#include "hier/chip_states.hh"
#include "kernel/software_dir.hh"
#include "machine/address_map.hh"
#include "mem/memory_controller.hh"
#include "proto/packet.hh"
#include "proto/protocol_params.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

namespace home
{
struct HierPolicy;
} // namespace home

/** The chip home's per-line protocol state. */
struct ChipLine
{
    ChipState state = ChipState::hInvalid;
    /** Chip data differs from global memory (granted locally without a
     *  parent round trip; written back on parent recall). */
    bool dirty = false;
    bool dataSeen = false; ///< hRecall: the owner's crossed REPM arrived
    /** A parent INV arrived while a local transaction was in flight:
     *  answer the parent when the local fan-out completes. */
    bool parentInvPending = false;
    bool pendingIsWrite = false;
    std::uint32_t ackCtr = 0;
    NodeId pending = invalidNode;
    /** Chained parent level: old-head operand of the parent's RDATA,
     *  echoed back on our next ACKC so the global chain walk can
     *  continue past this chip. */
    NodeId parentChainNext = invalidNode;
    NodeId evictVictim = invalidNode; ///< hChipET victim
    std::uint32_t retries = 0;        ///< BUSY backoff rounds (parent)
    LineWords data{};                 ///< the chip-level copy
    std::deque<PacketPtr> deferred;   ///< parked local requests
};

/** The per-node chip-home controller (two-level mode only). */
class ChipHomeController
{
  public:
    using SendFn = std::function<void(PacketPtr)>;
    using TrapStallFn = std::function<void(Tick)>;

    ChipHomeController(EventQueue &eq, NodeId self, const AddressMap &amap,
                       const ProtocolParams &proto,
                       const MemParams &params);

    void setSend(SendFn fn) { _send = std::move(fn); }
    void setTrapStall(TrapStallFn fn) { _trapStall = std::move(fn); }
    void
    setTelemetrySinks(Log2Histogram *worker_set,
                      Log2Histogram *trap_service)
    {
        _wsProfile = worker_set;
        _trapServiceHist = trap_service;
    }

    /** Protocol packet arriving from the chip's caches or the parent. */
    void enqueue(PacketPtr pkt);

    NodeId nodeId() const { return _self; }
    const ProtocolParams &protocol() const { return _proto; }
    StatSet &stats() { return _stats; }
    bool idle() const { return _queue.empty() && !_serviceScheduled; }
    std::size_t queueDepth() const { return _queue.size(); }
    Tick now() const { return _eq.now(); }

    /**
     * Should a response-class packet (RDATA/WDATA/BUSY/INV/MUPD)
     * addressed to this node be consumed by the chip home rather than
     * the local cache? State-dependent: the parent's data replies are
     * only expected mid-fill, INV always belongs to the chip level
     * (local caches are only ever invalidated by their chip home), and
     * everything else is the cache's. Node::deliver consults this after
     * establishing that the packet is non-local and this node chip-homes
     * the line for its chip.
     */
    bool wantsResponse(Addr line, Opcode op) const;

    /** Fraction of local requests that took the chip software path. */
    double overflowFraction() const;

    // ------------------------------------------------------------------
    // Transition-action API (driven by the tables in hier_home.cc)
    // ------------------------------------------------------------------

    ChipLine &
    lineFor(Addr line)
    {
        if (line == _mruLineAddr)
            return *_mruLine;
        ChipLine &cl = _lines.try_emplace(line).first->second;
        _mruLineAddr = line;
        _mruLine = &cl;
        return cl;
    }

    /** Grant a read copy to a local cache out of the chip data. */
    void grantRead(NodeId to, Addr line);
    /** Grant exclusive ownership to a local cache out of the chip data. */
    void grantWrite(NodeId to, Addr line);
    /** Invalidate a local cache's copy (removes it from the chip dir). */
    void sendInvLocal(NodeId to, Addr line);
    /** Forward the pending miss to the global home (RREQ/WREQ). */
    void forwardToParent(Addr line, bool write);
    /** Consume a parent data reply: stamp, copy the payload into the
     *  chip buffer, capture the chained old-head operand. */
    void fillFromParent(Addr line, const Packet &pkt);
    /** Re-forward after a parent BUSY nack, with binary backoff. */
    void retryParent(Addr line);
    /** Acknowledge a parent INV (clean chip); echoes parentChainNext. */
    void ackParent(Addr line);
    /** Write the dirty chip data back to the parent (closes its INV). */
    void updateParent(Addr line);
    /** Chained protocol: unblock a local cache's clean replacement. */
    void ackReplace(NodeId to, Addr line);
    /** Copy a data packet's payload into the chip data buffer. */
    void storeData(Addr line, const Packet &pkt);

    void deferOrBusy(PacketPtr &pkt, ChipLine &cl);
    void replayDeferred(ChipLine &cl);

    /** Charge Ts emulation cycles for a chip-level software trap. */
    void chargeTrap(Tick cycles, NodeId requester, Addr line);

    /** @name Statistics hooks for transition actions. */
    /// @{
    void noteRead() { _statReads += 1; }
    void noteWrite() { _statWrites += 1; }
    void noteEviction() { _statEvictions += 1; }
    void noteStaleAck() { _statStaleAcks += 1; }
    void noteParentInv() { _statParentInvs += 1; }
    void noteLocalGrant() { _statLocalGrants += 1; }
    void noteReadTrapTaken() { _statReadTraps += 1; }
    void noteWriteTrapTaken() { _statWriteTraps += 1; }
    void noteWorkerSet(std::size_t n) { _statWorkerSet.sample(n); }
    /// @}

    // ------------------------------------------------------------------
    // Monitor / checker access
    // ------------------------------------------------------------------

    DirectoryScheme &directory() { return *_dir; }
    const DirectoryScheme &directory() const { return *_dir; }
    /** Non-null only for the LimitLESS protocol (chip meta-states). */
    LimitlessDir *limitlessDir() { return _ldir; }
    const LimitlessDir *limitlessDir() const { return _ldir; }
    SoftwareDirTable &softwareTable() { return _swTable; }
    const SoftwareDirTable &softwareTable() const { return _swTable; }

    ChipState
    lineState(Addr line) const
    {
        if (line == _mruLineAddr)
            return _mruLine->state;
        auto it = _lines.find(line);
        return it == _lines.end() ? ChipState::hInvalid
                                  : it->second.state;
    }

    bool
    lineDirty(Addr line) const
    {
        auto it = _lines.find(line);
        return it != _lines.end() && it->second.dirty;
    }

    /** The chip-level copy's words (monitor value check). */
    const LineWords *
    lineData(Addr line) const
    {
        auto it = _lines.find(line);
        return it == _lines.end() ? nullptr : &it->second.data;
    }

    /** Union of hardware-pointer and software-spilled local sharers. */
    void chipSharers(Addr line, std::vector<NodeId> &out) const;

    std::size_t workerSetSize(Addr line) const;

    const AddressMap &addressMap() const { return _amap; }

    /** Deterministic protocol-state serialization (checker fingerprint;
     *  same exclusions as MemoryController::checkpoint). */
    void checkpoint(std::ostream &os) const;

    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &[line, cl] : _lines)
            fn(line, cl.state);
    }

    template <typename Fn>
    void
    forEachObservedTransition(Fn &&fn) const
    {
        for (std::uint32_t packed : _observed)
            fn(static_cast<std::uint8_t>(packed >> 16),
               static_cast<Opcode>(packed & 0xffff));
    }

  private:
    void scheduleService();
    void service();
    void process(PacketPtr &pkt);
    void dispatch(PacketPtr pkt);
    NodeId parentOf(Addr line) const { return _amap.homeOf(line); }

    EventQueue &_eq;
    NodeId _self;
    const AddressMap &_amap;
    ProtocolParams _proto;
    MemParams _params;
    SendFn _send;
    TrapStallFn _trapStall;
    const home::HierPolicy *_policy = nullptr;

    std::unique_ptr<DirectoryScheme> _dir;
    LimitlessDir *_ldir = nullptr; ///< alias into _dir
    SoftwareDirTable _swTable;

    std::unordered_map<Addr, ChipLine> _lines;
    Addr _mruLineAddr = Addr(-1);
    ChipLine *_mruLine = nullptr;
    std::unordered_set<std::uint32_t> _observed;

    Log2Histogram *_wsProfile = nullptr;
    Log2Histogram *_trapServiceHist = nullptr;

    std::deque<PacketPtr> _queue;
    bool _serviceScheduled = false;
    Tick _busyUntil = 0;
    Tick _extraDelay = 0;
    std::uint64_t _curTxn = 0;

    StatSet _stats{"chip"};
    Counter &_statRequests;
    Counter &_statReads;
    Counter &_statWrites;
    Counter &_statBusyNacks;
    Counter &_statInvsSent;
    Counter &_statParentReqs;
    Counter &_statParentInvs;
    Counter &_statParentRetries;
    Counter &_statLocalGrants;
    Counter &_statEvictions;
    Counter &_statReadTraps;
    Counter &_statWriteTraps;
    Counter &_statTrapCycles;
    Counter &_statStaleAcks;
    Distribution &_statWorkerSet;
};

} // namespace limitless

#endif // LIMITLESS_HIER_CHIP_HOME_HH
