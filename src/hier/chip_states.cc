#include "hier/chip_states.hh"

namespace limitless
{

const char *
chipStateName(ChipState s)
{
    switch (s) {
      case ChipState::hInvalid:
        return "hInvalid";
      case ChipState::hCopy:
        return "hCopy";
      case ChipState::hOwned:
        return "hOwned";
      case ChipState::hFillRead:
        return "hFillRead";
      case ChipState::hFillWrite:
        return "hFillWrite";
      case ChipState::hFillWriteInv:
        return "hFillWriteInv";
      case ChipState::hWriteInv:
        return "hWriteInv";
      case ChipState::hRecall:
        return "hRecall";
      case ChipState::hParentInv:
        return "hParentInv";
      case ChipState::hChipET:
        return "hChipET";
    }
    return "hUnknown";
}

const char *
chipSideStateName(std::uint8_t s)
{
    return chipStateName(static_cast<ChipState>(s));
}

} // namespace limitless
