/**
 * @file
 * SPARCLE-like processor model.
 *
 * The processor executes workload "thread programs" written as C++20
 * coroutines (sim/task.hh). It models the Alewife timing interface rather
 * than an instruction set:
 *
 *  - up to 4 hardware register contexts; a context switch costs 11 cycles
 *    and is taken only on memory requests that need the interconnect
 *    (remote misses) — paper Section 2;
 *  - explicit compute() costs stand in for instruction execution;
 *  - a fast synchronous trap architecture: trap code (the LimitLESS
 *    handler) preempts the processor, modelled by stallFor(), which
 *    pushes back every future dispatch of application work.
 */

#ifndef LIMITLESS_PROC_PROCESSOR_HH
#define LIMITLESS_PROC_PROCESSOR_HH

#include <algorithm>
#include <coroutine>
#include <deque>
#include <functional>
#include <optional>
#include <memory>
#include <vector>

#include "cache/cache_controller.hh"
#include "cache/mem_op.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/task.hh"
#include "stats/stats.hh"

namespace limitless
{

class Processor;

/** Observer of a processor's issued operation stream (trace capture). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onMemOp(NodeId node, const MemOp &op) = 0;
    virtual void onCompute(NodeId node, Tick cycles) = 0;
    virtual void onAnnotate(NodeId node, std::uint64_t tag) = 0;
};

namespace proc_detail
{
struct MemAwaitable;
struct ComputeAwaitable;
struct FenceAwaitable;
}

/** Memory consistency model (paper Section 2: Alewife enforces
 *  sequential consistency, "but the LimitLESS directory scheme can also
 *  be used with a weakly-ordered memory model"). */
enum class MemoryModel
{
    /** Every access blocks the issuing thread until globally performed. */
    sequential,
    /**
     * Plain stores retire into a FIFO store buffer and drain in the
     * background; loads forward from the buffer; atomics and fences
     * drain it first. Release consistency for barrier/lock-synchronized
     * programs.
     */
    weak,
};

/** Processor tuning. */
struct ProcParams
{
    unsigned contexts = 4;        ///< hardware register frames
    Tick contextSwitchCycles = 11;
    Tick trapEntryCycles = 5;     ///< synchronous trap dispatch cost
    MemoryModel memoryModel = MemoryModel::sequential;
    unsigned storeBufferDepth = 8; ///< weak ordering only
};

/**
 * Per-thread environment handed to workload coroutines; provides the
 * awaitable memory operations.
 */
class ThreadApi
{
  public:
    ThreadApi(Processor &proc, unsigned ctx) : _proc(&proc), _ctx(ctx) {}

    /** Awaitable returning the loaded word. */
    auto read(Addr a);
    /** Awaitable; returns the overwritten word. */
    auto write(Addr a, std::uint64_t v);
    /** Awaitable atomic fetch-and-add; returns the old word. */
    auto fetchAdd(Addr a, std::uint64_t delta);
    /** Awaitable atomic swap; returns the old word. */
    auto swap(Addr a, std::uint64_t v);
    /** Awaitable: occupy the processor for @p cycles. */
    auto compute(Tick cycles);

    /** Zero-cost annotation visible to an attached TraceSink (used by
     *  synchronization libraries to mark episode boundaries). */
    void annotate(std::uint64_t tag);

    /** Awaitable memory fence: under weak ordering, blocks until every
     *  buffered store is globally performed. No-op under SC. */
    auto fence();

    NodeId nodeId() const;
    unsigned contextId() const { return _ctx; }
    Tick now() const;
    Rng &rng();

  private:
    friend class Processor;
    Processor *_proc;
    unsigned _ctx;
};

/** One simulated processor with multiple hardware contexts. */
class Processor
{
  public:
    using ThreadFn = std::function<Task<>(ThreadApi &)>;

    Processor(EventQueue &eq, NodeId self, CacheController &cache,
              const ProcParams &params, std::uint64_t seed);

    /** Bind a thread program to the next free hardware context. */
    void spawn(ThreadFn fn);

    /** Kick off all spawned threads (call once, at simulation start). */
    void start();

    /** Preempt application work for @p cycles (trap handlers, Ts). */
    void stallFor(Tick cycles);

    /** Invoked each time a thread program runs to completion. */
    void setOnThreadDone(std::function<void()> fn)
    {
        _onThreadDone = std::move(fn);
    }

    /** Attach / detach a trace-capture sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { _sink = sink; }
    void noteAnnotation(std::uint64_t tag)
    {
        if (_sink)
            _sink->onAnnotate(_self, tag);
    }

    bool allDone() const { return _live == 0; }
    unsigned liveThreads() const { return _live; }
    NodeId nodeId() const { return _self; }
    Tick now() const;
    Rng &rng() { return _rng; }
    StatSet &stats() { return _stats; }
    ProcParams params() const { return _params; }

    /** Total trap-preemption cycles accumulated (for utilization). */
    Tick stallCycles() const { return _stallAccum; }

  private:
    friend class ThreadApi;
    friend struct proc_detail::MemAwaitable;
    friend struct proc_detail::ComputeAwaitable;
    friend struct proc_detail::FenceAwaitable;

    enum class CtxState
    {
        idle,      ///< no thread bound
        ready,     ///< resumable, waiting for the pipeline
        running,   ///< currently executing (or bound-waiting on a hit)
        waiting,   ///< blocked on a memory transaction
        computing, ///< executing a compute() block
        finished,
    };

    struct Ctx
    {
        Task<> task;
        std::unique_ptr<ThreadApi> api;
        ThreadFn fn;
        CtxState state = CtxState::idle;
        std::coroutine_handle<> resumePoint;
        std::uint64_t *resultSlot = nullptr;
        bool started = false;
    };

    // Awaitable entry points.
    void issueMem(unsigned ctx, const MemOp &op,
                  std::coroutine_handle<> h, std::uint64_t *result);
    void issueCompute(unsigned ctx, Tick cycles, std::coroutine_handle<> h);
    bool fenceReady() const;
    void issueFence(unsigned ctx, std::coroutine_handle<> h);

    // Weak-ordering store buffer.
    bool tryBufferStore(unsigned ctx, const MemOp &op,
                        std::coroutine_handle<> h, std::uint64_t *result);
    bool forwardFromStoreBuffer(const MemOp &op, std::uint64_t &value);
    void drainStoreBuffer();
    void onBufferedStoreDone(std::uint64_t id);
    std::size_t storeBufferOccupancy() const;

    void onMemComplete(unsigned ctx, std::uint64_t value);
    void resumeCtx(unsigned ctx);
    void maybeDispatch();
    void dispatchNow();
    /**
     * Schedule a cpu-priority step, deferring past any active stall.
     * Templated on the callable so the capture lands directly in the
     * event entry's inline storage — no std::function box per step.
     */
    template <typename F>
    void
    scheduleCpu(Tick when, F fn)
    {
        const Tick target = std::max(when, _stallUntil);
        auto step = [this, fn = std::move(fn)]() mutable {
            if (_eq.now() < _stallUntil) {
                // A trap extended the stall after we were scheduled.
                scheduleCpu(_stallUntil, std::move(fn));
                return;
            }
            fn();
        };
        static_assert(EventQueue::Callback::fitsInline<decltype(step)>,
                      "cpu step event must not heap-allocate");
        _eq.schedule(target, std::move(step), EventPriority::cpu);
    }

    bool _remoteCheck(Addr addr) const;

    EventQueue &_eq;
    NodeId _self;
    CacheController &_cache;
    ProcParams _params;
    Rng _rng;

    std::vector<Ctx> _ctxs;
    std::function<void()> _onThreadDone;
    TraceSink *_sink = nullptr;

    // Weak-ordering state: FIFO store buffer + waiters. Independent
    // stores drain concurrently (weak ordering does not order stores to
    // different addresses); same-line stores serialize in the cache.
    std::deque<MemOp> _storeBuffer;
    std::vector<std::pair<std::uint64_t, MemOp>> _inFlightStores;
    std::uint64_t _nextStoreId = 0;
    std::vector<std::coroutine_handle<>> _fenceWaiters;
    std::vector<unsigned> _fenceWaiterCtx;
    /** A thread stalled on a full buffer (store) or on a drain (atomic). */
    struct StalledOp
    {
        MemOp op;
        std::coroutine_handle<> resume;
        std::uint64_t *result;
        unsigned ctx;
        bool isAtomic;
    };
    std::optional<StalledOp> _stalledOp;

    int _bound = -1;      ///< context currently holding the pipeline
    unsigned _live = 0;
    unsigned _lastDispatched = 0;
    bool _haveLastRun = false;
    Tick _stallUntil = 0;
    Tick _stallAccum = 0;
    bool _dispatchScheduled = false;

    StatSet _stats{"proc"};
    Counter &_statOps;
    Counter &_statComputeCycles;
    Counter &_statSwitches;
    Counter &_statRemoteMisses;
    Counter &_statThreadsFinished;
    Counter &_statStallCycles;
    Counter &_statBufferedStores;
    Counter &_statStoreForwards;
    Counter &_statFences;
};

// ----------------------------------------------------------------------
// Awaitable definitions (header-only: they capture coroutine handles).
// ----------------------------------------------------------------------

namespace proc_detail
{

struct MemAwaitable
{
    Processor *proc;
    unsigned ctx;
    MemOp op;
    std::uint64_t result = 0;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        proc->issueMem(ctx, op, h, &result);
    }

    std::uint64_t await_resume() const noexcept { return result; }
};

struct ComputeAwaitable
{
    Processor *proc;
    unsigned ctx;
    Tick cycles;

    bool await_ready() const noexcept { return cycles == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        proc->issueCompute(ctx, cycles, h);
    }

    void await_resume() const noexcept {}
};

struct FenceAwaitable
{
    Processor *proc;
    unsigned ctx;

    bool await_ready() const noexcept { return proc->fenceReady(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        proc->issueFence(ctx, h);
    }

    void await_resume() const noexcept {}
};

} // namespace proc_detail

inline auto
ThreadApi::read(Addr a)
{
    return proc_detail::MemAwaitable{_proc, _ctx,
                                     MemOp{MemOpKind::load, a, 0}};
}

inline auto
ThreadApi::write(Addr a, std::uint64_t v)
{
    return proc_detail::MemAwaitable{_proc, _ctx,
                                     MemOp{MemOpKind::store, a, v}};
}

inline auto
ThreadApi::fetchAdd(Addr a, std::uint64_t delta)
{
    return proc_detail::MemAwaitable{_proc, _ctx,
                                     MemOp{MemOpKind::fetchAdd, a, delta}};
}

inline auto
ThreadApi::swap(Addr a, std::uint64_t v)
{
    return proc_detail::MemAwaitable{_proc, _ctx,
                                     MemOp{MemOpKind::swap, a, v}};
}

inline auto
ThreadApi::compute(Tick cycles)
{
    return proc_detail::ComputeAwaitable{_proc, _ctx, cycles};
}

inline void
ThreadApi::annotate(std::uint64_t tag)
{
    _proc->noteAnnotation(tag);
}

inline auto
ThreadApi::fence()
{
    return proc_detail::FenceAwaitable{_proc, _ctx};
}

} // namespace limitless

#endif // LIMITLESS_PROC_PROCESSOR_HH
