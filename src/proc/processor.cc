#include "proc/processor.hh"

#include <cassert>

#include "sim/log.hh"

namespace limitless
{

Processor::Processor(EventQueue &eq, NodeId self, CacheController &cache,
                     const ProcParams &params, std::uint64_t seed)
    : _eq(eq), _self(self), _cache(cache), _params(params),
      _rng(seed ^ (0x9c0cull + self)), _ctxs(params.contexts),
      _statOps(_stats.counter("ops", "memory operations issued")),
      _statComputeCycles(
          _stats.counter("compute_cycles", "cycles spent computing")),
      _statSwitches(_stats.counter("switches", "context switches taken")),
      _statRemoteMisses(
          _stats.counter("remote_misses", "misses that released the cpu")),
      _statThreadsFinished(
          _stats.counter("threads_done", "thread programs completed")),
      _statStallCycles(
          _stats.counter("stall_cycles", "cycles preempted by traps")),
      _statBufferedStores(_stats.counter(
          "buffered_stores", "stores retired into the store buffer")),
      _statStoreForwards(_stats.counter(
          "store_forwards", "loads forwarded from the store buffer")),
      _statFences(_stats.counter("fences", "memory fences executed"))
{
    assert(params.contexts >= 1);
}

Tick
Processor::now() const
{
    return _eq.now();
}

NodeId
ThreadApi::nodeId() const
{
    return _proc->nodeId();
}

Tick
ThreadApi::now() const
{
    return _proc->now();
}

Rng &
ThreadApi::rng()
{
    return _proc->rng();
}

void
Processor::spawn(ThreadFn fn)
{
    for (auto &ctx : _ctxs) {
        if (ctx.state == CtxState::idle && !ctx.fn) {
            ctx.fn = std::move(fn);
            return;
        }
    }
    panic("node %u: more threads than hardware contexts", _self);
}

void
Processor::start()
{
    for (unsigned i = 0; i < _ctxs.size(); ++i) {
        Ctx &ctx = _ctxs[i];
        if (!ctx.fn)
            continue;
        ctx.api = std::make_unique<ThreadApi>(*this, i);
        ctx.task = ctx.fn(*ctx.api);
        ctx.state = CtxState::ready;
        ++_live;
    }
    maybeDispatch();
}

void
Processor::stallFor(Tick cycles)
{
    const Tick base = std::max(_stallUntil, _eq.now());
    _stallUntil = base + cycles;
    _stallAccum += cycles;
    _statStallCycles += cycles;
}

void
Processor::issueMem(unsigned ctx_id, const MemOp &op,
                    std::coroutine_handle<> h, std::uint64_t *result)
{
    Ctx &ctx = _ctxs[ctx_id];
    assert(ctx.state == CtxState::running);
    ctx.resumePoint = h;
    ctx.resultSlot = result;
    ctx.state = CtxState::waiting;
    _statOps += 1;
    if (_sink)
        _sink->onMemOp(_self, op);

    if (_params.memoryModel == MemoryModel::weak) {
        if (op.kind == MemOpKind::load) {
            std::uint64_t fwd = 0;
            if (forwardFromStoreBuffer(op, fwd)) {
                // Same-thread read of a buffered store: forward.
                _statStoreForwards += 1;
                if (result)
                    *result = fwd;
                scheduleCpu(_eq.now() + 1,
                            [this, ctx_id]() { resumeCtx(ctx_id); });
                return;
            }
        } else if (op.kind == MemOpKind::store) {
            if (tryBufferStore(ctx_id, op, h, result))
                return; // retired into the buffer; thread continues
            return;     // buffer full: thread parked until a slot frees
        } else {
            // Atomics have acquire/release semantics: drain first.
            if (storeBufferOccupancy() != 0) {
                assert(!_stalledOp);
                _stalledOp = StalledOp{op, h, result, ctx_id, true};
                return;
            }
        }
    }

    const auto klass =
        _cache.access(op, [this, ctx_id](std::uint64_t value) {
            onMemComplete(ctx_id, value);
        });

    // Context switches are taken only on memory requests that need the
    // interconnection network (paper Section 2): remote misses.
    if (klass == CacheController::IssueClass::miss &&
        _remoteCheck(op.addr)) {
        _statRemoteMisses += 1;
        _bound = -1; // release the pipeline; another context may run
    }
    // Hits and local misses keep the pipeline bound to this context.
}

bool
Processor::_remoteCheck(Addr addr) const
{
    return _cache.homeOf(addr) != _self;
}

std::size_t
Processor::storeBufferOccupancy() const
{
    return _storeBuffer.size() + _inFlightStores.size();
}

bool
Processor::forwardFromStoreBuffer(const MemOp &op, std::uint64_t &value)
{
    // Youngest matching store wins: scan the unissued FIFO first (newest
    // at the back), then the in-flight set (issued in FIFO order).
    for (auto it = _storeBuffer.rbegin(); it != _storeBuffer.rend(); ++it) {
        if (it->addr == op.addr) {
            value = it->value;
            return true;
        }
    }
    for (auto it = _inFlightStores.rbegin(); it != _inFlightStores.rend();
         ++it) {
        if (it->second.addr == op.addr) {
            value = it->second.value;
            return true;
        }
    }
    return false;
}

bool
Processor::tryBufferStore(unsigned ctx_id, const MemOp &op,
                          std::coroutine_handle<> h, std::uint64_t *result)
{
    if (storeBufferOccupancy() >= _params.storeBufferDepth) {
        // Buffer full: the storing thread stalls until a slot frees.
        assert(!_stalledOp);
        _stalledOp = StalledOp{op, h, result, ctx_id, false};
        return false;
    }
    _storeBuffer.push_back(op);
    _statBufferedStores += 1;
    drainStoreBuffer();
    // The store's "old value" is unknown without performing the access;
    // weak-ordering stores return 0 (documented).
    if (result)
        *result = 0;
    scheduleCpu(_eq.now() + 1,
                [this, ctx_id]() { resumeCtx(ctx_id); });
    return true;
}

void
Processor::drainStoreBuffer()
{
    // Issue every queued store (they proceed concurrently; the cache
    // serializes same-line accesses, preserving same-address order).
    while (!_storeBuffer.empty()) {
        const MemOp op = _storeBuffer.front();
        _storeBuffer.pop_front();
        const std::uint64_t id = _nextStoreId++;
        _inFlightStores.emplace_back(id, op);
        _cache.access(op, [this, id](std::uint64_t) {
            onBufferedStoreDone(id);
        });
    }
}

void
Processor::onBufferedStoreDone(std::uint64_t id)
{
    for (auto it = _inFlightStores.begin(); it != _inFlightStores.end();
         ++it) {
        if (it->first == id) {
            _inFlightStores.erase(it);
            break;
        }
    }

    // A thread stalled on a full buffer can retire its store now.
    if (_stalledOp && !_stalledOp->isAtomic) {
        StalledOp stalled = *_stalledOp;
        _stalledOp.reset();
        _storeBuffer.push_back(stalled.op);
        _statBufferedStores += 1;
        if (stalled.result)
            *stalled.result = 0;
        const unsigned ctx_id = stalled.ctx;
        drainStoreBuffer();
        scheduleCpu(_eq.now() + 1,
                    [this, ctx_id]() { resumeCtx(ctx_id); });
    }

    if (storeBufferOccupancy() != 0)
        return;

    // Buffer empty: release fences and any drain-waiting atomic.
    if (_stalledOp && _stalledOp->isAtomic) {
        StalledOp stalled = *_stalledOp;
        _stalledOp.reset();
        _cache.access(stalled.op,
                      [this, ctx = stalled.ctx](std::uint64_t value) {
                          onMemComplete(ctx, value);
                      });
        if (_cache.homeOf(stalled.op.addr) != _self) {
            // (Context keeps the pipeline: the thread was already
            // accounted as waiting when it stalled.)
        }
    }
    if (!_fenceWaiters.empty()) {
        auto waiters = std::move(_fenceWaiters);
        auto ctxs = std::move(_fenceWaiterCtx);
        _fenceWaiters.clear();
        _fenceWaiterCtx.clear();
        for (std::size_t i = 0; i < waiters.size(); ++i) {
            const unsigned ctx_id = ctxs[i];
            scheduleCpu(_eq.now(),
                        [this, ctx_id]() { resumeCtx(ctx_id); });
        }
    }
}

bool
Processor::fenceReady() const
{
    return _params.memoryModel == MemoryModel::sequential ||
           storeBufferOccupancy() == 0;
}

void
Processor::issueFence(unsigned ctx_id, std::coroutine_handle<> h)
{
    Ctx &ctx = _ctxs[ctx_id];
    assert(ctx.state == CtxState::running);
    ctx.resumePoint = h;
    ctx.state = CtxState::waiting;
    _statFences += 1;
    _fenceWaiters.push_back(h);
    _fenceWaiterCtx.push_back(ctx_id);
}

void
Processor::issueCompute(unsigned ctx_id, Tick cycles,
                        std::coroutine_handle<> h)
{
    Ctx &ctx = _ctxs[ctx_id];
    assert(ctx.state == CtxState::running);
    ctx.resumePoint = h;
    ctx.state = CtxState::computing;
    _statComputeCycles += cycles;
    if (_sink)
        _sink->onCompute(_self, cycles);
    scheduleCpu(_eq.now() + cycles, [this, ctx_id]() {
        assert(_bound == static_cast<int>(ctx_id));
        resumeCtx(ctx_id);
    });
}

void
Processor::onMemComplete(unsigned ctx_id, std::uint64_t value)
{
    Ctx &ctx = _ctxs[ctx_id];
    assert(ctx.state == CtxState::waiting);
    if (ctx.resultSlot)
        *ctx.resultSlot = value;

    if (_bound == static_cast<int>(ctx_id)) {
        // Hit or local miss: the pipeline waited for this context.
        scheduleCpu(_eq.now(), [this, ctx_id]() { resumeCtx(ctx_id); });
    } else {
        ctx.state = CtxState::ready;
        maybeDispatch();
    }
}

void
Processor::maybeDispatch()
{
    if (_bound != -1 || _dispatchScheduled)
        return;
    bool any_ready = false;
    for (const auto &ctx : _ctxs) {
        if (ctx.state == CtxState::ready) {
            any_ready = true;
            break;
        }
    }
    if (!any_ready)
        return;
    _dispatchScheduled = true;
    scheduleCpu(_eq.now(), [this]() {
        _dispatchScheduled = false;
        dispatchNow();
    });
}

void
Processor::dispatchNow()
{
    if (_bound != -1)
        return;
    // Round-robin among ready contexts, starting after the last one run.
    int pick = -1;
    for (unsigned k = 1; k <= _ctxs.size(); ++k) {
        const unsigned i = (_lastDispatched + k) % _ctxs.size();
        if (_ctxs[i].state == CtxState::ready) {
            pick = static_cast<int>(i);
            break;
        }
    }
    if (pick == -1)
        return;

    Tick cost = 0;
    if (_haveLastRun && _lastDispatched != static_cast<unsigned>(pick)) {
        cost = _params.contextSwitchCycles;
        _statSwitches += 1;
    }
    _bound = pick; // reserve the pipeline across the switch delay
    if (cost == 0) {
        resumeCtx(pick);
    } else {
        scheduleCpu(_eq.now() + cost,
                    [this, pick]() { resumeCtx(pick); });
    }
}

void
Processor::resumeCtx(unsigned ctx_id)
{
    Ctx &ctx = _ctxs[ctx_id];
    assert(ctx.state == CtxState::ready ||
           ctx.state == CtxState::waiting ||
           ctx.state == CtxState::computing);
    _bound = static_cast<int>(ctx_id);
    _lastDispatched = ctx_id;
    _haveLastRun = true;
    ctx.state = CtxState::running;

    if (!ctx.started) {
        ctx.started = true;
        ctx.task.start();
    } else {
        ctx.resumePoint.resume();
    }

    if (ctx.task.done()) {
        ctx.task.rethrowIfFailed();
        ctx.state = CtxState::finished;
        assert(_live > 0);
        --_live;
        _statThreadsFinished += 1;
        _bound = -1;
        if (_onThreadDone)
            _onThreadDone();
        maybeDispatch();
        return;
    }
    if (_bound == -1) {
        // The coroutine released the pipeline (remote miss).
        maybeDispatch();
    }
}

} // namespace limitless
