/**
 * @file
 * Guarded-action transition: the unit of the table-driven protocol
 * engine (after Meunier et al.'s guarded action language — see
 * PAPERS.md). A transition is
 *
 *     { state, opcode, guard, action, next-state }
 *
 * and a protocol (home side or cache side of one directory scheme) is a
 * list of transitions dispatched by (state, opcode) lookup. Several
 * transitions may share a (state, opcode) pair; the first one whose
 * guard holds fires. Guards must be pure (they may be evaluated any
 * number of times and must not change simulation state); all mutation
 * belongs in the action.
 */

#ifndef LIMITLESS_PROTO_TRANSITION_HH
#define LIMITLESS_PROTO_TRANSITION_HH

#include <cstdint>

#include "proto/opcode.hh"

namespace limitless
{

/** Which half of the protocol a table describes. */
enum class TableSide : std::uint8_t
{
    home,  ///< memory-side (directory) controller
    cache, ///< cache-side controller
    chip,  ///< per-chip home controller (two-level mode, src/hier/)
};

const char *tableSideName(TableSide side);

/**
 * Next-state sentinel: the action computes the successor itself (e.g.
 * an ack-counter reaching zero picks Read-Only vs Read-Write). Static
 * next states are applied by the engine after the action runs.
 */
constexpr std::int16_t dynamicNextState = -1;

/**
 * One guarded transition over a context type @p Ctx (the bundle of
 * controller, packet and line handed to guards and actions).
 */
template <typename Ctx>
struct Transition
{
    std::uint8_t state;          ///< current-state index
    Opcode opcode;               ///< triggering packet opcode
    const char *label;           ///< short action mnemonic (static string)
    bool (*guard)(const Ctx &);  ///< nullptr = unconditional
    const char *guardName;       ///< "-" when unconditional
    void (*action)(Ctx &);
    std::int16_t next;           ///< state index, or dynamicNextState
    std::uint16_t id;            ///< table-unique id (assigned by add())
};

} // namespace limitless

#endif // LIMITLESS_PROTO_TRANSITION_HH
