/**
 * @file
 * Protocol state spaces shared by both sides of the coherence protocol.
 *
 * The memory-side (paper Table 1 / Figure 2), cache-side (Table 1) and
 * LimitLESS meta (Table 4) state enums live here, next to the opcode
 * space, so the transition engine, the trace/log/postmortem printers and
 * the table dump all draw on one definition. The name functions are
 * implemented once in proto/names.cc.
 */

#ifndef LIMITLESS_PROTO_STATES_HH
#define LIMITLESS_PROTO_STATES_HH

#include <cstdint>

namespace limitless
{

/** Memory-side line states (paper Table 1). An absent entry is
 *  Read-Only with an empty pointer set (uncached). */
enum class MemState : std::uint8_t
{
    readOnly,         ///< some number of read-only copies (possibly zero)
    readWrite,        ///< exactly one dirty copy
    readTransaction,  ///< holding a read request, update in progress
    writeTransaction, ///< holding a write request, invalidation in progress
    evictTransaction, ///< limited-dir pointer eviction / chained unlink
};

const char *memStateName(MemState s);

/** Cache-side line states (paper Table 1). */
enum class CacheState : std::uint8_t
{
    invalid,   ///< may not be read or written
    readOnly,  ///< may be read, not written
    readWrite, ///< may be read or written (exclusive, dirty)
};

const char *cacheStateName(CacheState s);

/** Directory meta states (paper Table 4). */
enum class MetaState : std::uint8_t
{
    normal,          ///< handled by hardware
    transInProgress, ///< interlock: software processing in progress
    trapOnWrite,     ///< trap for WREQ, UPDATE and REPM; reads in hardware
    trapAlways,      ///< trap for all incoming protocol packets
};

const char *metaStateName(MetaState m);

/** memStateName over the transition engine's untyped state index. */
const char *homeStateName(std::uint8_t s);

/** cacheStateName over the transition engine's untyped state index. */
const char *cacheSideStateName(std::uint8_t s);

} // namespace limitless

#endif // LIMITLESS_PROTO_STATES_HH
