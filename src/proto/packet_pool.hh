/**
 * @file
 * Packet frame recycling.
 *
 * Every network message used to be a fresh heap allocation (the Packet
 * itself plus its operand/data vectors). The pool keeps retired frames
 * on a free list and hands them back to the makeXxxPacket builders with
 * their vector capacity intact, so the steady-state cost of a protocol
 * message is a pointer pop and a few stores.
 *
 * The pool is thread-local: a Machine is confined to one thread (the
 * ParallelRunner gives each sweep config its own thread), so "one pool
 * per thread" is "one pool per machine" in practice and needs no locks.
 * Lifetime rule: a Packet* released from its PacketPtr (the network
 * layers do this to dodge callback-capture copies) must be re-owned or
 * freed on the same thread before the machine is destroyed — see
 * docs/PERFORMANCE.md.
 */

#ifndef LIMITLESS_PROTO_PACKET_POOL_HH
#define LIMITLESS_PROTO_PACKET_POOL_HH

#include <cstdint>
#include <vector>

namespace limitless
{

struct Packet;

/** Thread-local free list of retired packet frames. */
class PacketPool
{
  public:
    /** The calling thread's pool (one machine per thread). */
    static PacketPool &local();

    /** A blank frame: recycled when available, else freshly allocated.
     *  Recycled frames keep their vectors' capacity. */
    Packet *acquire();

    /** Retire a frame. Beyond `maxFree` frames the excess is freed so a
     *  burst (an invalidation storm) cannot pin memory forever. */
    void release(Packet *pkt) noexcept;

    /** @name Introspection (perf bench / tests) */
    /// @{
    std::uint64_t freshAllocs() const { return _freshAllocs; }
    std::uint64_t recycled() const { return _recycled; }
    std::size_t freeFrames() const { return _free.size(); }
    /// @}

    /** Drop the free list (tests use this to measure from a clean pool). */
    void trim() noexcept;

    ~PacketPool();

  private:
    static constexpr std::size_t maxFree = 4096;

    std::vector<Packet *> _free;
    std::uint64_t _freshAllocs = 0;
    std::uint64_t _recycled = 0;
};

} // namespace limitless

#endif // LIMITLESS_PROTO_PACKET_POOL_HH
