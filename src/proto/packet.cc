#include "proto/packet.hh"

#include <sstream>
#include <string>

namespace limitless
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::RREQ: return "RREQ";
      case Opcode::WREQ: return "WREQ";
      case Opcode::REPM: return "REPM";
      case Opcode::UPDATE: return "UPDATE";
      case Opcode::ACKC: return "ACKC";
      case Opcode::REPC: return "REPC";
      case Opcode::REPC_ACK: return "REPC_ACK";
      case Opcode::WUPD: return "WUPD";
      case Opcode::RUNC: return "RUNC";
      case Opcode::MUPD: return "MUPD";
      case Opcode::WACK: return "WACK";
      case Opcode::RDATA: return "RDATA";
      case Opcode::WDATA: return "WDATA";
      case Opcode::INV: return "INV";
      case Opcode::BUSY: return "BUSY";
      case Opcode::IPI_FLAG: return "IPI_FLAG";
      case Opcode::IPI_MESSAGE: return "IPI_MESSAGE";
      case Opcode::IPI_LOCK_GRANT: return "IPI_LOCK_GRANT";
      case Opcode::IPI_BLOCK_XFER: return "IPI_BLOCK_XFER";
    }
    return "UNKNOWN";
}

PacketPtr
makeProtocolPacket(NodeId src, NodeId dest, Opcode op, Addr addr)
{
    assert(isProtocolOpcode(op));
    auto pkt = std::make_unique<Packet>();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands.push_back(addr);
    return pkt;
}

PacketPtr
makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
               const std::vector<std::uint64_t> &line)
{
    assert(opcodeCarriesData(op));
    auto pkt = makeProtocolPacket(src, dest, op, addr);
    pkt->data = line;
    return pkt;
}

PacketPtr
makeInterruptPacket(NodeId src, NodeId dest, Opcode op,
                    std::vector<std::uint64_t> operands,
                    std::vector<std::uint64_t> data)
{
    assert(isInterruptOpcode(op));
    auto pkt = std::make_unique<Packet>();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands = std::move(operands);
    pkt->data = std::move(data);
    return pkt;
}

std::string
describePacket(const Packet &pkt)
{
    std::ostringstream os;
    os << opcodeName(pkt.opcode) << " " << pkt.src << "->" << pkt.dest;
    if (!pkt.operands.empty())
        os << " addr=0x" << std::hex << pkt.operands[0] << std::dec;
    if (!pkt.data.empty())
        os << " +" << pkt.data.size() << "w";
    return os.str();
}

} // namespace limitless
