#include "proto/packet.hh"

#include <sstream>
#include <string>

namespace limitless
{

PacketPtr
makeProtocolPacket(NodeId src, NodeId dest, Opcode op, Addr addr)
{
    assert(isProtocolOpcode(op));
    auto pkt = std::make_unique<Packet>();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands.push_back(addr);
    return pkt;
}

PacketPtr
makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
               const std::vector<std::uint64_t> &line)
{
    assert(opcodeCarriesData(op));
    auto pkt = makeProtocolPacket(src, dest, op, addr);
    pkt->data = line;
    return pkt;
}

PacketPtr
makeInterruptPacket(NodeId src, NodeId dest, Opcode op,
                    std::vector<std::uint64_t> operands,
                    std::vector<std::uint64_t> data)
{
    assert(isInterruptOpcode(op));
    auto pkt = std::make_unique<Packet>();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands = std::move(operands);
    pkt->data = std::move(data);
    return pkt;
}

std::string
describePacket(const Packet &pkt)
{
    std::ostringstream os;
    os << opcodeName(pkt.opcode) << " " << pkt.src << "->" << pkt.dest;
    if (!pkt.operands.empty())
        os << " addr=0x" << std::hex << pkt.operands[0] << std::dec;
    if (!pkt.data.empty())
        os << " +" << pkt.data.size() << "w";
    return os.str();
}

} // namespace limitless
