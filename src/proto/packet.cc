#include "proto/packet.hh"

#include <sstream>
#include <string>

namespace limitless
{

PacketPtr
allocPacket()
{
    return PacketPtr(PacketPool::local().acquire());
}

PacketPtr
clonePacket(const Packet &pkt)
{
    PacketPtr copy = allocPacket();
    copy->src = pkt.src;
    copy->dest = pkt.dest;
    copy->opcode = pkt.opcode;
    copy->operands = pkt.operands;
    copy->data = pkt.data;
    copy->txnId = pkt.txnId;
    copy->causeSpan = pkt.causeSpan;
    copy->legSpan = pkt.legSpan;
    return copy;
}

PacketPtr
makeProtocolPacket(NodeId src, NodeId dest, Opcode op, Addr addr)
{
    assert(isProtocolOpcode(op));
    PacketPtr pkt = allocPacket();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands.push_back(addr);
    return pkt;
}

PacketPtr
makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
               const std::vector<std::uint64_t> &line)
{
    return makeDataPacket(src, dest, op, addr, line.data(), line.size());
}

PacketPtr
makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
               const std::uint64_t *words, std::size_t n)
{
    assert(opcodeCarriesData(op));
    PacketPtr pkt = makeProtocolPacket(src, dest, op, addr);
    pkt->data.assign(words, words + n);
    return pkt;
}

PacketPtr
makeInterruptPacket(NodeId src, NodeId dest, Opcode op,
                    std::vector<std::uint64_t> operands,
                    std::vector<std::uint64_t> data)
{
    assert(isInterruptOpcode(op));
    PacketPtr pkt = allocPacket();
    pkt->src = src;
    pkt->dest = dest;
    pkt->opcode = op;
    pkt->operands = std::move(operands);
    pkt->data = std::move(data);
    return pkt;
}

std::string
describePacket(const Packet &pkt)
{
    std::ostringstream os;
    os << opcodeName(pkt.opcode) << " " << pkt.src << "->" << pkt.dest;
    if (!pkt.operands.empty())
        os << " addr=0x" << std::hex << pkt.operands[0] << std::dec;
    if (!pkt.data.empty())
        os << " +" << pkt.data.size() << "w";
    return os.str();
}

} // namespace limitless
