#include "proto/protocol_params.hh"

#include <sstream>

namespace limitless
{

std::string
ProtocolParams::name() const
{
    std::ostringstream os;
    switch (kind) {
      case ProtocolKind::fullMap:
        os << "Full-Map";
        break;
      case ProtocolKind::limited:
        os << "Dir" << pointers << "NB";
        break;
      case ProtocolKind::limitless:
        os << "LimitLESS" << pointers << " Ts=" << softwareLatency;
        if (limitlessMode == LimitlessMode::fullEmulation)
            os << " (emu)";
        break;
      case ProtocolKind::chained:
        os << "Chained";
        break;
      case ProtocolKind::privateOnly:
        os << "Private-Only";
        break;
    }
    return os.str();
}

} // namespace limitless
