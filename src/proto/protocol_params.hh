/**
 * @file
 * Coherence-protocol selection and tuning knobs, shared by the cache,
 * directory, memory-controller and harness layers.
 */

#ifndef LIMITLESS_PROTO_PROTOCOL_PARAMS_HH
#define LIMITLESS_PROTO_PROTOCOL_PARAMS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace limitless
{

/** Which directory organization the machine runs. */
enum class ProtocolKind
{
    fullMap,   ///< Censier-Feautrier style full bit vector (Dir_N NB)
    limited,   ///< Dir_i NB: i pointers, evict on overflow
    limitless, ///< LimitLESS_i: i pointers + software extension
    chained,   ///< SCI-style distributed linked list (comparison baseline)
    /**
     * "A scheme that only caches private data" (paper Section 5.1's
     * list of configurable coherence schemes): lines homed on the
     * accessing node cache normally; remote lines are never cached —
     * reads are serviced uncached and writes are performed at the home.
     * The Section 1 motivation baseline: what caches buy you.
     */
    privateOnly,
};

/** How the LimitLESS software extension is modelled. */
enum class LimitlessMode
{
    /**
     * The paper's evaluation methodology (Section 5.1): full-map
     * semantics; every pointer-array overflow event stalls the memory
     * controller and the home node's processor for Ts cycles.
     */
    stallApprox,

    /**
     * Full implementation: overflowed packets are diverted through the
     * IPI input queue, the home processor takes a synchronous trap, and
     * the trap handler (src/kernel) emulates the full-map directory with
     * bit vectors kept in a hash table in local memory.
     */
    fullEmulation,
};

/** Protocol configuration. */
struct ProtocolParams
{
    ProtocolKind kind = ProtocolKind::fullMap;

    /** Hardware pointers per entry (limited / LimitLESS). */
    unsigned pointers = 4;

    /** LimitLESS software emulation latency Ts, in cycles. */
    Tick softwareLatency = 50;

    LimitlessMode limitlessMode = LimitlessMode::stallApprox;

    /**
     * Trap-On-Write optimization (paper Section 3.2, design decision D1):
     * the overflow handler empties the hardware pointers so the
     * controller keeps servicing reads in hardware. When disabled the
     * entry is left in Trap-Always mode and every subsequent request for
     * the line traps.
     */
    bool trapOnWrite = true;

    /**
     * Reserve a local bit so home-node accesses never consume a
     * hardware pointer (paper Section 4.3, design decision D3).
     */
    bool localBit = true;

    /** Human-readable protocol name, e.g. "Dir4NB" or "LimitLESS4". */
    std::string name() const;
};

} // namespace limitless

#endif // LIMITLESS_PROTO_PROTOCOL_PARAMS_HH
