/**
 * @file
 * Uniform network packet (paper Figure 4).
 *
 * A packet is: header (source, length, opcode) followed by zero or more
 * operand words and zero or more data words. The operand/data distinction
 * is software-imposed; protocol packets use operand 0 for the block
 * address and the data section for memory-line contents. Routing
 * information (the destination) is carried separately and conceptually
 * stripped by the network before delivery.
 */

#ifndef LIMITLESS_PROTO_PACKET_HH
#define LIMITLESS_PROTO_PACKET_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "proto/opcode.hh"
#include "proto/packet_pool.hh"
#include "sim/types.hh"

namespace limitless
{

/** A network packet in the Alewife uniform format. */
struct Packet
{
    NodeId src = invalidNode;  ///< source processor (header word)
    NodeId dest = invalidNode; ///< routing info, stripped at destination
    Opcode opcode = Opcode::RREQ;
    std::vector<std::uint64_t> operands;
    std::vector<std::uint64_t> data;

    /** Network-owned bookkeeping: injection tick, for latency stats.
     *  Not part of the wire format; carried here so the fabric needs no
     *  per-packet side table. */
    Tick injectTick = 0;

    /** Transaction-tracer tags (obs/txn_tracer.hh). Not part of the
     *  wire format; all zero unless the tracer is enabled. txnId names
     *  the remote transaction this packet serves; causeSpan is the span
     *  the packet acts for (e.g. the per-sharer invalidation span an
     *  INV/ACKC pair belongs to); legSpan is the open network-leg or
     *  trap-queue span the packet is currently inside. */
    std::uint64_t txnId = 0;
    std::uint32_t causeSpan = 0;
    std::uint32_t legSpan = 0;

    /** Packet length in words: 1 header word + operands + data. */
    std::uint32_t
    lengthWords() const
    {
        return 1 + static_cast<std::uint32_t>(operands.size() + data.size());
    }

    bool isProtocol() const { return isProtocolOpcode(opcode); }
    bool isInterrupt() const { return isInterruptOpcode(opcode); }

    /** Protocol packets carry the block address as operand 0. */
    Addr
    addr() const
    {
        assert(!operands.empty());
        return operands[0];
    }
};

/** Returns retired frames to the thread's PacketPool instead of the
 *  allocator; `PacketPtr(raw)` with a raw pointer still works because
 *  the deleter is stateless. */
struct PacketDeleter
{
    void operator()(Packet *pkt) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/** A blank pool-recycled frame (builders below fill these in). */
PacketPtr allocPacket();

/** Pool-recycled copy of @p pkt (deep-copies operands and data). */
PacketPtr clonePacket(const Packet &pkt);

/** Convenience builder for protocol packets. */
PacketPtr makeProtocolPacket(NodeId src, NodeId dest, Opcode op, Addr addr);

/** Protocol packet carrying a memory line's data words. */
PacketPtr makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
                         const std::vector<std::uint64_t> &line);

/** As above, from a raw word range. Hot senders use this form: it
 *  assigns into the recycled frame's data vector, where the braced
 *  `{begin, end}` form materializes a heap-allocated temporary per
 *  packet. */
PacketPtr makeDataPacket(NodeId src, NodeId dest, Opcode op, Addr addr,
                         const std::uint64_t *words, std::size_t n);

/** Interrupt-class packet with caller-supplied operands and data. */
PacketPtr makeInterruptPacket(NodeId src, NodeId dest, Opcode op,
                              std::vector<std::uint64_t> operands,
                              std::vector<std::uint64_t> data = {});

/** Human-readable one-liner for tracing. */
std::string describePacket(const Packet &pkt);

} // namespace limitless

#endif // LIMITLESS_PROTO_PACKET_HH
