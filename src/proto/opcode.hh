/**
 * @file
 * Opcode space for the Alewife-style uniform packet format.
 *
 * Per the paper (Section 4.2), opcodes split into two classes:
 *  - protocol opcodes, normally produced/consumed by controller hardware
 *    but also by the LimitLESS trap handler (Table 3 of the paper);
 *  - interrupt opcodes (MSB set), whose format is defined by software and
 *    which always cause an interprocessor interrupt at the destination.
 */

#ifndef LIMITLESS_PROTO_OPCODE_HH
#define LIMITLESS_PROTO_OPCODE_HH

#include <cstdint>

namespace limitless
{

/** Protocol and interrupt opcodes. */
enum class Opcode : std::uint16_t
{
    // Cache-to-memory protocol messages (paper Table 3).
    RREQ = 0x01,   ///< read request
    WREQ = 0x02,   ///< write request
    REPM = 0x03,   ///< replace modified (carries data)
    UPDATE = 0x04, ///< data returned in response to INV of a dirty copy
    ACKC = 0x05,   ///< invalidate acknowledge
    REPC = 0x06,   ///< replace clean notification (chained protocol only)
    WUPD = 0x07,   ///< write-update request (update-mode lines; carries
                   ///< the word index, operation and operand inline)
    RUNC = 0x08,   ///< uncached read: return data, record no pointer
                   ///< (private-only caching baseline)

    // Memory-to-cache protocol messages (paper Table 3).
    RDATA = 0x11, ///< read data (carries data)
    WDATA = 0x12, ///< write data / write permission (carries data)
    INV = 0x13,   ///< invalidate
    BUSY = 0x14,  ///< busy-signal (nack, requester must retry)
    REPC_ACK = 0x15, ///< clean-replacement grant (chained protocol only)
    MUPD = 0x16,   ///< refresh cached copies of an update-mode line
    WACK = 0x17,   ///< write-update complete (carries the old word)

    // Interrupt-class opcodes: MSB set, format defined by software.
    IPI_FLAG = 0x8000,     ///< class bit
    IPI_MESSAGE = 0x8001,  ///< generic active message
    IPI_LOCK_GRANT = 0x8002, ///< FIFO-lock handler grant (Section 6)
    IPI_BLOCK_XFER = 0x8003, ///< block transfer via store-back
};

/** True for interrupt-class opcodes (MSB set, handled in software). */
constexpr bool
isInterruptOpcode(Opcode op)
{
    return (static_cast<std::uint16_t>(op) &
            static_cast<std::uint16_t>(Opcode::IPI_FLAG)) != 0;
}

/** True for cache-coherence protocol opcodes. */
constexpr bool
isProtocolOpcode(Opcode op)
{
    return !isInterruptOpcode(op);
}

/** True for protocol opcodes that carry the memory block's data words. */
constexpr bool
opcodeCarriesData(Opcode op)
{
    switch (op) {
      case Opcode::REPM:
      case Opcode::UPDATE:
      case Opcode::RDATA:
      case Opcode::WDATA:
      case Opcode::MUPD:
        return true;
      default:
        return false;
    }
}

/**
 * True for the opcodes a home node treats as *requests*: they may be
 * BUSY-nacked or parked in the defer buffer during a transaction.
 * Responses (UPDATE, ACKC, REPM data) must always be accepted.
 */
constexpr bool
opcodeIsHomeRequest(Opcode op)
{
    return op == Opcode::RREQ || op == Opcode::WREQ ||
           op == Opcode::REPC || op == Opcode::WUPD ||
           op == Opcode::RUNC;
}

/** Short mnemonic for tracing (implemented in proto/names.cc). */
const char *opcodeName(Opcode op);

} // namespace limitless

#endif // LIMITLESS_PROTO_OPCODE_HH
