/**
 * @file
 * Transition tables and the process-wide table registry.
 *
 * A TransitionTable<Ctx> holds one protocol side's guarded transitions
 * and dispatches by (state, opcode) lookup; any unhandled pair (or a
 * pair whose guards all fail) panics through the postmortem ring, so a
 * dropped transition dies loudly with the line's causal history instead
 * of silently falling through a switch.
 *
 * Each table registers a type-erased TableInfo with the
 * ProtocolTableRegistry when it is built, which is what the coherence
 * monitor cross-checks observed transitions against and what the
 * --dump-protocol-table CLI flag prints.
 */

#ifndef LIMITLESS_PROTO_PROTOCOL_TABLE_HH
#define LIMITLESS_PROTO_PROTOCOL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "proto/protocol_params.hh"
#include "proto/transition.hh"
#include "sim/log.hh"

namespace limitless
{

/** Type-erased transition row, kept for introspection and dumping. */
struct TransitionRow
{
    std::uint16_t id;
    std::uint8_t state;
    Opcode opcode;
    const char *label;
    const char *guardName;
    std::int16_t next; ///< state index, or dynamicNextState
};

/** Introspection view of one registered table. */
struct TableInfo
{
    const char *scheme = ""; ///< scheme name, e.g. "full-map"
    ProtocolKind kind = ProtocolKind::fullMap;
    TableSide side = TableSide::home;
    const char *(*stateName)(std::uint8_t) = nullptr;
    std::vector<TransitionRow> rows; ///< declaration order

    /** True when at least one transition covers (state, opcode). */
    bool declares(std::uint8_t state, Opcode op) const;
};

/** All tables built in this process, in registration order. */
class ProtocolTableRegistry
{
  public:
    static ProtocolTableRegistry &instance();

    /** Called by TransitionTable construction; info must be immortal. */
    void registerTable(const TableInfo *info);

    /** Table for (kind, side), or nullptr if none was built yet. */
    const TableInfo *find(ProtocolKind kind, TableSide side) const;

    const std::vector<const TableInfo *> &tables() const
    {
        return _tables;
    }

    /** Print every table: per-scheme (state, opcode) coverage matrix
     *  plus the numbered transition rows. Deterministic order. */
    void dump(std::ostream &os) const;

  private:
    std::vector<const TableInfo *> _tables;
};

/**
 * Build every scheme's home- and cache-side table (they are lazily
 * constructed statics) so the registry is complete. Implemented in
 * src/machine (the one layer that links both sides).
 */
void registerAllProtocolTables();

/**
 * Process-wide instrumentation over table dispatch, used by the model
 * checker (src/check/): an observer sees every row that fires (row
 * coverage / dead-row reporting), and guard flips invert one row's
 * guard to inject a protocol bug in a controlled, declared way (the
 * checker's counterexample demonstrations). Inactive by default — the
 * simulator pays one branch per dispatch.
 */
class DispatchHooks
{
  public:
    using Observer = void (*)(void *user, const TableInfo &info,
                              const TransitionRow &row);

    static DispatchHooks &instance();

    void
    setObserver(Observer fn, void *user)
    {
        _observer = fn;
        _user = user;
    }
    void clearObserver() { setObserver(nullptr, nullptr); }

    /** Invert one declared row's guard: a guarded row fires when its
     *  guard fails, and an unconditional row never fires (dispatch
     *  falls through to the next row, or panics). */
    void flipGuard(ProtocolKind kind, TableSide side, std::uint16_t row);
    void clearFlips() { _flips.clear(); }

    bool active() const { return _observer != nullptr || !_flips.empty(); }
    bool flipped(const TableInfo &info, std::uint16_t row) const;

    void
    notify(const TableInfo &info, const TransitionRow &row) const
    {
        if (_observer)
            _observer(_user, info, row);
    }

  private:
    Observer _observer = nullptr;
    void *_user = nullptr;
    std::vector<std::uint32_t> _flips; ///< packed (kind, side, row)
};

/** Guarded-transition dispatch table over context type @p Ctx. */
template <typename Ctx>
class TransitionTable
{
  public:
    TransitionTable(const char *scheme, ProtocolKind kind, TableSide side,
                    const char *(*state_name)(std::uint8_t))
    {
        _info.scheme = scheme;
        _info.kind = kind;
        _info.side = side;
        _info.stateName = state_name;
    }

    /** Append one transition; rows added first are tried first. */
    TransitionTable &
    add(std::uint8_t state, Opcode op, const char *label,
        bool (*guard)(const Ctx &), const char *guard_name,
        void (*action)(Ctx &), std::int16_t next)
    {
        const auto id = static_cast<std::uint16_t>(_rows.size());
        _rows.push_back(Transition<Ctx>{state, op, label, guard,
                                        guard ? guard_name : "-", action,
                                        next, id});
        _info.rows.push_back(TransitionRow{id, state, op, label,
                                           guard ? guard_name : "-",
                                           next});
        _index[key(state, op)].push_back(id);
        return *this;
    }

    /** Unconditional transition. */
    TransitionTable &
    add(std::uint8_t state, Opcode op, const char *label,
        void (*action)(Ctx &), std::int16_t next)
    {
        return add(state, op, label, nullptr, "-", action, next);
    }

    /**
     * Dispatch: run the first transition for (state, opcode) whose
     * guard holds, then apply its static next state (if any) through
     * ctx.setState(). Panics on an undeclared pair or when every guard
     * fails. Returns the fired transition.
     */
    const Transition<Ctx> &
    fire(Ctx &ctx, std::uint8_t state, Opcode op) const
    {
        auto it = _index.find(key(state, op));
        if (it == _index.end()) {
            panic("%s/%s table: no transition for (%s, %s)",
                  _info.scheme, tableSideName(_info.side),
                  _info.stateName(state), opcodeName(op));
        }
        const DispatchHooks &hooks = DispatchHooks::instance();
        const bool hooked = hooks.active();
        for (std::uint16_t id : it->second) {
            const Transition<Ctx> &tr = _rows[id];
            bool take = !tr.guard || tr.guard(ctx);
            if (hooked && hooks.flipped(_info, id))
                take = !take;
            if (!take)
                continue;
            tr.action(ctx);
            if (tr.next != dynamicNextState)
                ctx.setState(static_cast<std::uint8_t>(tr.next));
            if (hooked)
                hooks.notify(_info, _info.rows[id]);
            return tr;
        }
        panic("%s/%s table: every guard failed for (%s, %s)",
              _info.scheme, tableSideName(_info.side),
              _info.stateName(state), opcodeName(op));
    }

    const TableInfo &info() const { return _info; }

    /** Register with the process-wide registry; call once, after the
     *  last add(). Returns *this for builder-style use. */
    const TransitionTable &
    registerSelf() const
    {
        ProtocolTableRegistry::instance().registerTable(&_info);
        return *this;
    }

  private:
    static std::uint32_t
    key(std::uint8_t state, Opcode op)
    {
        return (static_cast<std::uint32_t>(state) << 16) |
               static_cast<std::uint16_t>(op);
    }

    std::vector<Transition<Ctx>> _rows;
    std::unordered_map<std::uint32_t, std::vector<std::uint16_t>> _index;
    TableInfo _info;
};

} // namespace limitless

#endif // LIMITLESS_PROTO_PROTOCOL_TABLE_HH
