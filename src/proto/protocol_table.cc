#include "proto/protocol_table.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>

namespace limitless
{

const char *
tableSideName(TableSide side)
{
    switch (side) {
      case TableSide::home: return "home";
      case TableSide::cache: return "cache";
      case TableSide::chip: return "chip";
    }
    return "?";
}

bool
TableInfo::declares(std::uint8_t state, Opcode op) const
{
    for (const TransitionRow &row : rows)
        if (row.state == state && row.opcode == op)
            return true;
    return false;
}

ProtocolTableRegistry &
ProtocolTableRegistry::instance()
{
    static ProtocolTableRegistry registry;
    return registry;
}

void
ProtocolTableRegistry::registerTable(const TableInfo *info)
{
    for (const TableInfo *t : _tables) {
        if (t->kind == info->kind && t->side == info->side) {
            assert(t == info && "duplicate table for (kind, side)");
            return;
        }
    }
    _tables.push_back(info);
}

const TableInfo *
ProtocolTableRegistry::find(ProtocolKind kind, TableSide side) const
{
    for (const TableInfo *t : _tables)
        if (t->kind == kind && t->side == side)
            return t;
    return nullptr;
}

namespace
{

std::uint32_t
flipKey(ProtocolKind kind, TableSide side, std::uint16_t row)
{
    return (static_cast<std::uint32_t>(kind) << 24) |
           (static_cast<std::uint32_t>(side) << 16) | row;
}

} // namespace

DispatchHooks &
DispatchHooks::instance()
{
    static DispatchHooks hooks;
    return hooks;
}

void
DispatchHooks::flipGuard(ProtocolKind kind, TableSide side,
                         std::uint16_t row)
{
    const std::uint32_t k = flipKey(kind, side, row);
    if (std::find(_flips.begin(), _flips.end(), k) == _flips.end())
        _flips.push_back(k);
}

bool
DispatchHooks::flipped(const TableInfo &info, std::uint16_t row) const
{
    const std::uint32_t k = flipKey(info.kind, info.side, row);
    return std::find(_flips.begin(), _flips.end(), k) != _flips.end();
}

void
ProtocolTableRegistry::dump(std::ostream &os) const
{
    // Registration order depends on construction order; sort by
    // (kind, side) so the dump is stable for the golden-file diff.
    std::vector<const TableInfo *> sorted = _tables;
    std::sort(sorted.begin(), sorted.end(),
              [](const TableInfo *a, const TableInfo *b) {
                  if (a->kind != b->kind)
                      return static_cast<int>(a->kind) <
                             static_cast<int>(b->kind);
                  return static_cast<int>(a->side) <
                         static_cast<int>(b->side);
              });

    os << "protocol transition tables\n"
       << "==========================\n";
    for (const TableInfo *t : sorted) {
        os << "\nscheme " << t->scheme << " (" << tableSideName(t->side)
           << " side), " << t->rows.size() << " transitions\n";

        // Coverage matrix over the states and opcodes the table names.
        std::vector<std::uint8_t> states;
        std::vector<Opcode> opcodes;
        for (const TransitionRow &row : t->rows) {
            if (std::find(states.begin(), states.end(), row.state) ==
                states.end())
                states.push_back(row.state);
            if (std::find(opcodes.begin(), opcodes.end(), row.opcode) ==
                opcodes.end())
                opcodes.push_back(row.opcode);
        }
        std::sort(states.begin(), states.end());
        std::sort(opcodes.begin(), opcodes.end());

        os << "  coverage (x = declared):\n";
        os << "    " << std::left << std::setw(20) << "state";
        for (Opcode op : opcodes)
            os << std::setw(9) << opcodeName(op);
        os << "\n";
        for (std::uint8_t s : states) {
            os << "    " << std::setw(20) << t->stateName(s);
            for (Opcode op : opcodes)
                os << std::setw(9) << (t->declares(s, op) ? "x" : ".");
            os << "\n";
        }

        os << "  transitions:\n";
        for (const TransitionRow &row : t->rows) {
            os << "    " << std::right << std::setw(3) << row.id << "  "
               << std::left << std::setw(19) << t->stateName(row.state)
               << std::setw(10) << opcodeName(row.opcode) << std::setw(28)
               << row.guardName << std::setw(19)
               << (row.next == dynamicNextState
                       ? "(dynamic)"
                       : t->stateName(
                             static_cast<std::uint8_t>(row.next)))
               << row.label << "\n";
        }
    }
    os << std::right;
}

} // namespace limitless
