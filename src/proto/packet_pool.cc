#include "proto/packet_pool.hh"

#include "proto/packet.hh"

namespace limitless
{

PacketPool &
PacketPool::local()
{
    thread_local PacketPool pool;
    return pool;
}

Packet *
PacketPool::acquire()
{
    if (_free.empty()) {
        ++_freshAllocs;
        return new Packet();
    }
    Packet *pkt = _free.back();
    _free.pop_back();
    ++_recycled;
    // Blank the frame but keep the vectors' capacity — that retained
    // capacity is most of the recycling win.
    pkt->src = invalidNode;
    pkt->dest = invalidNode;
    pkt->opcode = Opcode::RREQ;
    pkt->operands.clear();
    pkt->data.clear();
    pkt->injectTick = 0;
    pkt->txnId = 0;
    pkt->causeSpan = 0;
    pkt->legSpan = 0;
    return pkt;
}

void
PacketPool::release(Packet *pkt) noexcept
{
    if (pkt == nullptr)
        return;
    if (_free.size() >= maxFree) {
        delete pkt;
        return;
    }
    _free.push_back(pkt);
}

void
PacketPool::trim() noexcept
{
    for (Packet *pkt : _free)
        delete pkt;
    _free.clear();
}

PacketPool::~PacketPool() { trim(); }

void
PacketDeleter::operator()(Packet *pkt) const noexcept
{
    PacketPool::local().release(pkt);
}

} // namespace limitless
