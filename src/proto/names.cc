/**
 * @file
 * Single source of truth for protocol mnemonic strings: opcode, memory /
 * cache line state and LimitLESS meta-state names. Every printer (debug
 * log, trace sink, postmortem dump, table dump) calls these; no other
 * layer re-switches over the enums.
 */

#include "proto/opcode.hh"
#include "proto/states.hh"

namespace limitless
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::RREQ: return "RREQ";
      case Opcode::WREQ: return "WREQ";
      case Opcode::REPM: return "REPM";
      case Opcode::UPDATE: return "UPDATE";
      case Opcode::ACKC: return "ACKC";
      case Opcode::REPC: return "REPC";
      case Opcode::REPC_ACK: return "REPC_ACK";
      case Opcode::WUPD: return "WUPD";
      case Opcode::RUNC: return "RUNC";
      case Opcode::MUPD: return "MUPD";
      case Opcode::WACK: return "WACK";
      case Opcode::RDATA: return "RDATA";
      case Opcode::WDATA: return "WDATA";
      case Opcode::INV: return "INV";
      case Opcode::BUSY: return "BUSY";
      case Opcode::IPI_FLAG: return "IPI_FLAG";
      case Opcode::IPI_MESSAGE: return "IPI_MESSAGE";
      case Opcode::IPI_LOCK_GRANT: return "IPI_LOCK_GRANT";
      case Opcode::IPI_BLOCK_XFER: return "IPI_BLOCK_XFER";
    }
    return "UNKNOWN";
}

const char *
memStateName(MemState s)
{
    switch (s) {
      case MemState::readOnly: return "Read-Only";
      case MemState::readWrite: return "Read-Write";
      case MemState::readTransaction: return "Read-Transaction";
      case MemState::writeTransaction: return "Write-Transaction";
      case MemState::evictTransaction: return "Evict-Transaction";
    }
    return "?";
}

const char *
cacheStateName(CacheState s)
{
    switch (s) {
      case CacheState::invalid: return "Invalid";
      case CacheState::readOnly: return "Read-Only";
      case CacheState::readWrite: return "Read-Write";
    }
    return "?";
}

const char *
metaStateName(MetaState m)
{
    switch (m) {
      case MetaState::normal: return "Normal";
      case MetaState::transInProgress: return "Trans-In-Progress";
      case MetaState::trapOnWrite: return "Trap-On-Write";
      case MetaState::trapAlways: return "Trap-Always";
    }
    return "?";
}

const char *
homeStateName(std::uint8_t s)
{
    return memStateName(static_cast<MemState>(s));
}

const char *
cacheSideStateName(std::uint8_t s)
{
    return cacheStateName(static_cast<CacheState>(s));
}

} // namespace limitless
