/**
 * @file
 * Interprocessor-Interrupt (IPI) network interface (paper Section 4.2).
 *
 * The IPI mechanism is the processor's window onto the network: the
 * controller can divert packets into the IPI input queue (interrupting
 * the processor), and the processor can launch arbitrary packets —
 * protocol or interrupt class — through the output path. The input queue
 * is finite; overflow spills into the network receive queue, modelled
 * here as an unbounded overflow list whose depth is tracked (the paper's
 * deadlock discussion motivates the synchronous-trap requirement, which
 * the processor honours by draining the queue at trap priority).
 */

#ifndef LIMITLESS_IPI_IPI_INTERFACE_HH
#define LIMITLESS_IPI_IPI_INTERFACE_HH

#include <deque>
#include <functional>

#include "proto/packet.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Per-node IPI input/output queues. */
class IpiInterface
{
  public:
    using SendFn = std::function<void(PacketPtr)>;
    using InterruptFn = std::function<void()>;

    IpiInterface(EventQueue &eq, NodeId self, std::size_t input_capacity)
        : _eq(eq), _self(self), _capacity(input_capacity),
          _statDiverted(
              _stats.counter("diverted", "packets diverted to software")),
          _statSent(_stats.counter("sent", "packets launched by software")),
          _statOverflows(_stats.counter(
              "overflows", "input-queue overflows into the receive queue")),
          _statMaxDepth(
              _stats.counter("max_depth", "peak input queue depth"))
    {}

    /** Packet-launch path into the network fabric (set by the node). */
    void setSendPath(SendFn fn) { _send = std::move(fn); }

    /** Interrupt line to the processor's trap dispatcher. */
    void setInterrupt(InterruptFn fn) { _interrupt = std::move(fn); }

    /** Controller side: divert a packet to software. */
    void
    pushInput(PacketPtr pkt)
    {
        _statDiverted += 1;
        const bool was_empty = _input.empty();
        if (_input.size() >= _capacity)
            _statOverflows += 1; // backs up into the receive queue
        _input.push_back(std::move(pkt));
        if (_input.size() > _statMaxDepth.value()) {
            _statMaxDepth += static_cast<std::uint64_t>(
                _input.size() - _statMaxDepth.value());
        }
        if (was_empty && _interrupt)
            _interrupt();
    }

    bool empty() const { return _input.empty(); }
    std::size_t depth() const { return _input.size(); }

    /** Trap handler: examine the head packet without consuming it. */
    const Packet *
    peek() const
    {
        return _input.empty() ? nullptr : _input.front().get();
    }

    /** Trap handler: consume the head packet. */
    PacketPtr
    pop()
    {
        if (_input.empty())
            return nullptr;
        PacketPtr pkt = std::move(_input.front());
        _input.pop_front();
        return pkt;
    }

    /** Processor side: launch a packet (store to the trigger location). */
    void
    send(PacketPtr pkt)
    {
        _statSent += 1;
        _send(std::move(pkt));
    }

    NodeId nodeId() const { return _self; }
    StatSet &stats() { return _stats; }

  private:
    EventQueue &_eq;
    NodeId _self;
    std::size_t _capacity;
    std::deque<PacketPtr> _input;
    SendFn _send;
    InterruptFn _interrupt;

    StatSet _stats{"ipi"};
    Counter &_statDiverted;
    Counter &_statSent;
    Counter &_statOverflows;
    Counter &_statMaxDepth;
};

} // namespace limitless

#endif // LIMITLESS_IPI_IPI_INTERFACE_HH
