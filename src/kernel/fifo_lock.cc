#include "kernel/fifo_lock.hh"

#include <algorithm>

#include "sim/log.hh"

namespace limitless
{

FifoLockService::FifoLockService(Machine &m, NodeId home,
                                 std::uint64_t lock_id)
    : _m(m), _home(home), _id(lock_id),
      _granted(m.numNodes(), 0), _requestTick(m.numNodes(), 0)
{
    // Server: lives on the home node.
    _m.node(home).dispatcher().registerMessage(
        Opcode::IPI_MESSAGE,
        [this](const Packet &pkt) { serverHandle(pkt); });

    // Client stub on every node: the grant interrupt sets a local flag
    // the acquiring thread is spinning on.
    for (NodeId n = 0; n < _m.numNodes(); ++n) {
        _m.node(n).dispatcher().registerMessage(
            Opcode::IPI_LOCK_GRANT, [this, n](const Packet &pkt) {
                if (pkt.operands.at(0) != _id)
                    return;
                _granted[n] = 1;
                _waits.push_back(_m.eventQueue().now() -
                                 _requestTick[n]);
            });
    }
}

void
FifoLockService::serverHandle(const Packet &pkt)
{
    if (pkt.operands.size() < 2 || pkt.operands[0] != _id)
        return; // another service's message
    const NodeId src = pkt.src;
    switch (pkt.operands[1]) {
      case acquireVerb:
        if (!_held) {
            _held = true;
            grantTo(src);
        } else {
            _queue.push_back(src);
            _maxDepth = std::max<std::uint64_t>(_maxDepth, _queue.size());
        }
        return;
      case releaseVerb:
        assert(_held && "release of a free FIFO lock");
        if (_queue.empty()) {
            _held = false;
        } else {
            const NodeId next = _queue.front();
            _queue.pop_front();
            grantTo(next);
        }
        return;
      default:
        panic("FIFO lock %llu: bad verb %llu",
              (unsigned long long)_id,
              (unsigned long long)pkt.operands[1]);
    }
}

void
FifoLockService::grantTo(NodeId node)
{
    _grantOrder.push_back(node);
    _m.node(_home).ipi().send(makeInterruptPacket(
        _home, node, Opcode::IPI_LOCK_GRANT, {_id}));
}

Task<>
FifoLockService::acquire(ThreadApi &t)
{
    const NodeId self = t.nodeId();
    _granted[self] = 0;
    _requestTick[self] = t.now();
    _m.node(self).ipi().send(makeInterruptPacket(
        self, _home, Opcode::IPI_MESSAGE, {_id, acquireVerb}));
    // Spin on the local grant flag the interrupt stub sets.
    while (!_granted[self])
        co_await t.compute(8);
}

Task<>
FifoLockService::release(ThreadApi &t)
{
    const NodeId self = t.nodeId();
    _granted[self] = 0;
    _m.node(self).ipi().send(makeInterruptPacket(
        self, _home, Opcode::IPI_MESSAGE, {_id, releaseVerb}));
    co_return;
}

} // namespace limitless
