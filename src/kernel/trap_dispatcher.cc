#include "kernel/trap_dispatcher.hh"

#include <memory>

#include "kernel/limitless_handler.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "obs/telemetry.hh"
#include "sim/log.hh"

namespace limitless
{

TrapDispatcher::TrapDispatcher(EventQueue &eq, IpiInterface &ipi,
                               Processor &proc, KernelCosts costs)
    : _eq(eq), _ipi(ipi), _proc(proc), _costs(costs),
      _statProtocolTraps(
          _stats.counter("protocol_traps", "protocol packets handled")),
      _statMessages(
          _stats.counter("messages", "active messages delivered")),
      _statUnhandled(
          _stats.counter("unhandled", "interrupt packets nobody wanted")),
      _statCycles(_stats.counter("cycles", "dispatcher occupancy"))
{
}

void
TrapDispatcher::registerMessage(Opcode op, MessageHandler handler)
{
    assert(isInterruptOpcode(op));
    _services[static_cast<std::uint16_t>(op)].push_back(
        std::move(handler));
}

void
TrapDispatcher::onInterrupt()
{
    if (_active)
        return;
    _active = true;
    processNext();
}

void
TrapDispatcher::processNext()
{
    PROF_SCOPE("trap.dispatch");
    PacketPtr pkt = _ipi.pop();
    if (!pkt) {
        _active = false;
        return;
    }

    if (pkt->isProtocol()) {
        if (!_protocol)
            panic("trap dispatcher: protocol packet %s with no LimitLESS "
                  "handler installed",
                  describePacket(*pkt).c_str());
        _statProtocolTraps += 1;
        const std::uint64_t txn_id = pkt->txnId;
        const std::uint32_t enq_span = pkt->legSpan;
        std::vector<PacketPtr> outgoing;
        MetaState restore = MetaState::normal;
        const Tick cost =
            _protocol->handlePacket(*pkt, outgoing, restore);
        _statCycles += cost;
        if (_serviceHist)
            _serviceHist->sample(cost);
        _proc.stallFor(cost);
        const Addr line = pkt->addr();
        const NodeId requester = pkt->src;
        const NodeId home = pkt->dest;
        FlightRecorder::instance().latency().onTrap(requester, line,
                                                    cost);
        if (txn_id)
            FlightRecorder::instance().txn().onTrapEmulate(
                txn_id, enq_span, home, _eq.now(), cost);
        {
            TraceEvent ev;
            ev.ts = _eq.now();
            ev.name = "trap_enter";
            ev.cat = EventCat::trap;
            ev.node = home;
            ev.line = line;
            ev.op = pkt->opcode;
            ev.hasOp = true;
            ev.src = requester;
            ev.arg = cost;
            ev.hasArg = true;
            FR_RECORD(ev);
        }
        // Effects become visible when the handler returns.
        _eq.schedule(_eq.now() + cost,
                     [this, line, restore, requester, home, txn_id,
                      out = std::make_shared<std::vector<PacketPtr>>(
                          std::move(outgoing))]() mutable {
            for (auto &p : *out) {
                // Replies / invalidations launch as the handler returns:
                // stamp them here so the trap window is not also counted
                // as network or fan-out time.
                if (p->opcode == Opcode::RDATA ||
                    p->opcode == Opcode::WDATA)
                    FlightRecorder::instance().latency().onReplySent(
                        _eq.now(), p->dest, line);
                else if (p->opcode == Opcode::INV)
                    FlightRecorder::instance().latency().onInvStart(
                        _eq.now(), requester, line);
                if (txn_id) {
                    if (p->txnId == 0)
                        p->txnId = txn_id;
                    if (p->opcode == Opcode::INV)
                        FlightRecorder::instance().txn().onInvSend(
                            *p, home, _eq.now());
                }
                _ipi.send(std::move(p));
            }
            _protocol->finishLine(line, restore);
            {
                TraceEvent ev;
                ev.ts = _eq.now();
                ev.name = "trap_exit";
                ev.cat = EventCat::trap;
                ev.node = home;
                ev.line = line;
                ev.src = requester;
                FR_RECORD(ev);
            }
            processNext();
        }, EventPriority::ctrl);
        return;
    }

    // Interrupt-class packet: active-message delivery.
    const Tick cost = _costs.trapEntry + _costs.decode +
                      _costs.stateUpdate;
    _statCycles += cost;
    _proc.stallFor(cost);
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + cost, [this, raw]() {
        PacketPtr owned(raw);
        handleInterruptPacket(*owned);
        processNext();
    }, EventPriority::ctrl);
}

void
TrapDispatcher::handleInterruptPacket(const Packet &pkt)
{
    auto it = _services.find(static_cast<std::uint16_t>(pkt.opcode));
    if (it == _services.end() || it->second.empty()) {
        _statUnhandled += 1;
        return;
    }
    _statMessages += 1;
    for (const MessageHandler &handler : it->second)
        handler(pkt);
}

} // namespace limitless
