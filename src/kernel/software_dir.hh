/**
 * @file
 * Software-extended directory state: the hash table of full-map bit
 * vectors that the LimitLESS trap handler keeps in the home node's local
 * memory (paper Section 4.4: "the trap code allocates a full-map
 * bit-vector in local memory. This vector is entered into a hash table").
 *
 * Used by both LimitLESS models: the full-emulation trap handler owns one
 * per node, and the stall-approximation memory controller uses one
 * internally for identical bookkeeping.
 */

#ifndef LIMITLESS_KERNEL_SOFTWARE_DIR_HH
#define LIMITLESS_KERNEL_SOFTWARE_DIR_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

/** Hash table of spilled full-map bit vectors, one per overflowed line. */
class SoftwareDirTable
{
  public:
    explicit SoftwareDirTable(unsigned num_nodes)
        : _numNodes(num_nodes), _words((num_nodes + 63) / 64)
    {}

    bool has(Addr line) const { return _vectors.count(line) != 0; }

    /** Set one sharer bit, allocating the vector on first use. */
    void
    addSharer(Addr line, NodeId n)
    {
        Bits &bits = vectorFor(line);
        bits[n / 64] |= 1ull << (n % 64);
    }

    /** Spill a batch of hardware pointers into the vector. */
    void
    addSharers(Addr line, const std::vector<NodeId> &nodes)
    {
        if (nodes.empty())
            return;
        Bits &bits = vectorFor(line);
        for (NodeId n : nodes)
            bits[n / 64] |= 1ull << (n % 64);
    }

    bool
    contains(Addr line, NodeId n) const
    {
        auto it = _vectors.find(line);
        if (it == _vectors.end())
            return false;
        return (it->second[n / 64] >> (n % 64)) & 1;
    }

    /** Append recorded sharers to @p out. */
    void
    sharers(Addr line, std::vector<NodeId> &out) const
    {
        auto it = _vectors.find(line);
        if (it == _vectors.end())
            return;
        for (unsigned w = 0; w < _words; ++w) {
            std::uint64_t bits = it->second[w];
            while (bits) {
                out.push_back(w * 64 + std::countr_zero(bits));
                bits &= bits - 1;
            }
        }
    }

    std::size_t
    numSharers(Addr line) const
    {
        auto it = _vectors.find(line);
        if (it == _vectors.end())
            return 0;
        std::size_t n = 0;
        for (unsigned w = 0; w < _words; ++w)
            n += std::popcount(it->second[w]);
        return n;
    }

    /** Free the vector ("The vector may now be freed", paper §4.4). */
    void free(Addr line) { _vectors.erase(line); }

    std::size_t entries() const { return _vectors.size(); }
    std::size_t peakEntries() const { return _peak; }
    std::uint64_t allocations() const { return _allocations; }

    /** Emulated local-memory footprint in bytes (vectors + table slots). */
    std::size_t
    footprintBytes() const
    {
        return _vectors.size() * (_words * 8 + 16);
    }

  private:
    using Bits = std::vector<std::uint64_t>;

    Bits &
    vectorFor(Addr line)
    {
        auto [it, created] = _vectors.try_emplace(line, Bits(_words, 0));
        if (created) {
            ++_allocations;
            _peak = std::max(_peak, _vectors.size());
        }
        return it->second;
    }

    unsigned _numNodes;
    unsigned _words;
    std::unordered_map<Addr, Bits> _vectors;
    std::size_t _peak = 0;
    std::uint64_t _allocations = 0;
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_SOFTWARE_DIR_HH
