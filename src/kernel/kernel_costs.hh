/**
 * @file
 * Cycle costs of the software side of the LimitLESS scheme.
 *
 * The paper estimates the whole full-map-emulation interrupt at
 * Ts = 50..100 cycles on SPARCLE. The full-emulation handler builds its
 * cost from these components instead of a flat Ts, so the effective Ts
 * varies with the work actually done (pointers spilled, INVs sent) —
 * defaults are picked so a typical 4-pointer overflow trap lands in the
 * 40-60 cycle range.
 */

#ifndef LIMITLESS_KERNEL_KERNEL_COSTS_HH
#define LIMITLESS_KERNEL_KERNEL_COSTS_HH

#include "sim/types.hh"

namespace limitless
{

/** Per-operation cycle costs for trap handlers. */
struct KernelCosts
{
    Tick trapEntry = 5;    ///< SPARCLE fast trap dispatch (paper §4.1)
    Tick decode = 5;       ///< read header + operands from the IPI queue
    Tick hashLookup = 10;  ///< locate the bit vector in the hash table
    Tick vectorAlloc = 15; ///< allocate + insert a new bit vector
    Tick perPointer = 2;   ///< empty one hardware pointer into the vector
    Tick perInv = 4;       ///< compose + launch one INV via IPI
    Tick stateUpdate = 8;  ///< directory state/meta writes + trap return

    /** Typical read-overflow trap cost for p pointers (for reporting). */
    Tick
    typicalReadTrap(unsigned pointers) const
    {
        return trapEntry + decode + hashLookup + vectorAlloc +
               pointers * perPointer + perInv + stateUpdate;
    }
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_KERNEL_COSTS_HH
