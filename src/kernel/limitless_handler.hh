/**
 * @file
 * The LimitLESS trap handler (paper Section 4.4), run "in software" on
 * the home node's processor in full-emulation mode.
 *
 * On a pointer-array overflow the memory controller diverts the packet
 * into the IPI input queue and interrupts the processor; this handler
 * then emulates a full-map directory: it keeps a hash table of bit
 * vectors in local memory (SoftwareDirTable), empties the hardware
 * pointers into the vector, and leaves the entry in Trap-On-Write mode so
 * the controller keeps servicing reads in hardware. A trapped write
 * gathers the full sharer set, posts the invalidations, sets up the
 * hardware Write-Transaction state, and returns the line to hardware
 * control.
 *
 * Handler occupancy is charged to the processor via stallFor(), so the
 * application threads on the home node really do slow down — the effect
 * behind the paper's Ts=25 "back-off" anomaly in Figure 9.
 */

#ifndef LIMITLESS_KERNEL_LIMITLESS_HANDLER_HH
#define LIMITLESS_KERNEL_LIMITLESS_HANDLER_HH

#include <vector>

#include "kernel/kernel_costs.hh"
#include "kernel/software_dir.hh"
#include "mem/memory_controller.hh"
#include "proc/processor.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Software side of the LimitLESS directory. */
class LimitlessHandler
{
  public:
    LimitlessHandler(EventQueue &eq, MemoryController &mc,
                     Processor &proc, KernelCosts costs = {});

    /**
     * Handle one diverted protocol packet.
     * @return handler occupancy in cycles; appends the packets the
     *         handler launches (via IPI) to @p out and reports the meta
     *         state to restore through @p restore_meta. The caller (the
     *         trap dispatcher) applies both when the occupancy elapses,
     *         then calls finishLine().
     */
    Tick handlePacket(const Packet &pkt, std::vector<PacketPtr> &out,
                      MetaState &restore_meta);

    /** Clear the Trans-In-Progress interlock when the trap returns. */
    void finishLine(Addr line, MetaState restore_meta);

    StatSet &stats() { return _stats; }
    const SoftwareDirTable &table() const { return _mc.softwareTable(); }

  private:
    Tick handleReadOverflow(const Packet &pkt, std::vector<PacketPtr> &out,
                            MetaState &restore_meta);
    Tick handleSoftwareRead(const Packet &pkt, std::vector<PacketPtr> &out,
                            MetaState &restore_meta);
    Tick handleWrite(const Packet &pkt, std::vector<PacketPtr> &out,
                     MetaState &restore_meta);

    PacketPtr buildData(Opcode op, NodeId to, Addr line);
    PacketPtr buildInv(NodeId to, Addr line);

    EventQueue &_eq;
    MemoryController &_mc;
    Processor &_proc;
    KernelCosts _costs;

    StatSet _stats{"handler"};
    Counter &_statTraps;
    Counter &_statReadTraps;
    Counter &_statWriteTraps;
    Counter &_statCycles;
    Counter &_statInvsSent;
    Accumulator &_statTrapCost;
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_LIMITLESS_HANDLER_HH
