/**
 * @file
 * FIFO lock service (paper Section 6): "A FIFO lock data type provides
 * another example; the trap handler can buffer write requests for a
 * programmer-specified variable and grant the requests on a first-come,
 * first-serve basis."
 *
 * The service runs in software on the lock's home node, built on the IPI
 * active-message layer: acquirers send an ACQUIRE message; the home
 * handler grants immediately or queues the requester; RELEASE grants the
 * next queued node. Grants are IPI_LOCK_GRANT interrupts; the client
 * side spins on a local flag its interrupt stub sets — no shared-memory
 * hot spot, no pointer-array pressure, and perfectly fair ordering,
 * unlike a test-and-set spin lock.
 */

#ifndef LIMITLESS_KERNEL_FIFO_LOCK_HH
#define LIMITLESS_KERNEL_FIFO_LOCK_HH

#include <deque>
#include <vector>

#include "machine/machine.hh"
#include "sim/task.hh"

namespace limitless
{

/** A machine-wide FIFO lock with its queue managed in software at the
 *  home node. Construct after Machine, before run(). */
class FifoLockService
{
  public:
    /**
     * @param m        the machine (registers services on every node)
     * @param home     node whose kernel owns the lock queue
     * @param lock_id  service id distinguishing locks sharing the opcode
     */
    FifoLockService(Machine &m, NodeId home, std::uint64_t lock_id);

    /** Block the calling thread until the lock is granted to its node.
     *  At most one thread per node may hold the lock at a time. */
    Task<> acquire(ThreadApi &t);

    /** Release; the next queued node (if any) is granted. */
    Task<> release(ThreadApi &t);

    /** Grant order observed at the home (for fairness checks). */
    const std::vector<NodeId> &grantOrder() const { return _grantOrder; }

    /** Per-grant wait times (request send to grant receipt). */
    const std::vector<Tick> &grantWaits() const { return _waits; }

    std::uint64_t maxQueueDepth() const { return _maxDepth; }

  private:
    enum Verb : std::uint64_t { acquireVerb = 0, releaseVerb = 1 };

    void serverHandle(const Packet &pkt);
    void grantTo(NodeId node);

    Machine &_m;
    NodeId _home;
    std::uint64_t _id;

    // Server state (lives in the home node's kernel).
    bool _held = false;
    std::deque<NodeId> _queue;
    std::vector<NodeId> _grantOrder;
    std::uint64_t _maxDepth = 0;

    // Client stubs (one flag per node, set by the grant interrupt).
    std::vector<std::uint8_t> _granted;
    std::vector<Tick> _requestTick;
    std::vector<Tick> _waits;
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_FIFO_LOCK_HH
