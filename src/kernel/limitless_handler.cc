#include "kernel/limitless_handler.hh"

#include <algorithm>
#include <cassert>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "sim/log.hh"

namespace limitless
{

LimitlessHandler::LimitlessHandler(EventQueue &eq, MemoryController &mc,
                                   Processor &proc, KernelCosts costs)
    : _eq(eq), _mc(mc), _proc(proc), _costs(costs),
      _statTraps(_stats.counter("traps", "LimitLESS traps taken")),
      _statReadTraps(
          _stats.counter("read_traps", "pointer-overflow read traps")),
      _statWriteTraps(
          _stats.counter("write_traps", "software write-gather traps")),
      _statCycles(_stats.counter("cycles", "handler occupancy cycles")),
      _statInvsSent(
          _stats.counter("invs_sent", "invalidations launched via IPI")),
      _statTrapCost(
          _stats.accumulator("trap_cost", "per-trap occupancy (cycles)"))
{
}

void
LimitlessHandler::finishLine(Addr line, MetaState restore_meta)
{
    LimitlessDir *ldir = _mc.limitlessDir();
    assert(ldir);
    if (ldir->meta(line) == MetaState::transInProgress)
        ldir->setMeta(line, restore_meta);
}

Tick
LimitlessHandler::handlePacket(const Packet &pkt,
                               std::vector<PacketPtr> &out,
                               MetaState &restore_meta)
{
    PROF_SCOPE("trap.emulate");
    LimitlessDir *ldir = _mc.limitlessDir();
    assert(ldir && "LimitLESS handler on a non-LimitLESS machine");
    const Addr line = pkt.addr();
    const MetaState why = ldir->prevMeta(line);
    _statTraps += 1;

    if (Log::enabled("handler"))
        Log::debug(_eq.now(), "handler", "node %u trap %s (was %s)",
                   _mc.nodeId(), describePacket(pkt).c_str(),
                   metaStateName(why));

    // Trap-Always lines that are not in a stable Read-Only state (e.g. a
    // dirty owner exists) must go through the ordinary transaction
    // machinery — serving them from memory would return stale data. The
    // handler re-executes the hardware path and keeps the mode armed.
    Tick cost = 0;
    const bool unstable = _mc.lineState(line) != MemState::readOnly;
    if (why == MetaState::trapAlways && unstable &&
        (pkt.opcode == Opcode::RREQ || pkt.opcode == Opcode::WREQ)) {
        restore_meta = MetaState::trapAlways;
        _mc.processBypassingMeta(clonePacket(pkt));
        cost = _costs.trapEntry + _costs.decode + _costs.stateUpdate;
    } else {
        switch (pkt.opcode) {
          case Opcode::RREQ:
            cost = why == MetaState::trapAlways
                       ? handleSoftwareRead(pkt, out, restore_meta)
                       : handleReadOverflow(pkt, out, restore_meta);
            break;

          case Opcode::WREQ:
            cost = handleWrite(pkt, out, restore_meta);
            break;

          case Opcode::UPDATE:
          case Opcode::REPM: {
            // Trap-On-Write also traps UPDATE/REPM (paper Table 4).
            // These only occur through exotic races; hand them back to
            // the hardware path after restoring the mode.
            restore_meta = why;
            _mc.processBypassingMeta(clonePacket(pkt));
            cost = _costs.trapEntry + _costs.decode + _costs.stateUpdate;
            break;
          }

          default:
            panic("LimitLESS handler: unexpected opcode %s",
                  opcodeName(pkt.opcode));
        }
    }
    _statCycles += cost;
    _statTrapCost.sample(static_cast<double>(cost));
    return cost;
}

PacketPtr
LimitlessHandler::buildData(Opcode op, NodeId to, Addr line)
{
    const LineWords &mem = _mc.readLine(line);
    const unsigned words = _mc.addressMap().wordsPerLine();
    return makeDataPacket(_mc.nodeId(), to, op, line, mem.data(), words);
}

PacketPtr
LimitlessHandler::buildInv(NodeId to, Addr line)
{
    auto pkt = makeProtocolPacket(_mc.nodeId(), to, Opcode::INV, line);
    pkt->operands.push_back(_mc.nodeId());
    _statInvsSent += 1;
    _mc.noteInvSent();
    return pkt;
}

Tick
LimitlessHandler::handleReadOverflow(const Packet &pkt,
                                     std::vector<PacketPtr> &out,
                                     MetaState &restore_meta)
{
    LimitlessDir *ldir = _mc.limitlessDir();
    SoftwareDirTable &sw = _mc.softwareTable();
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;

    Tick cost = _costs.trapEntry + _costs.decode + _costs.hashLookup;
    if (!sw.has(line))
        cost += _costs.vectorAlloc;

    // Empty the hardware pointers into the bit vector (paper §4.4).
    std::vector<NodeId> spilled;
    ldir->spillPointers(line, spilled);
    sw.addSharers(line, spilled);
    cost += spilled.size() * _costs.perPointer;

    if (_mc.protocol().trapOnWrite) {
        // Leave the pointer array free so hardware absorbs further reads.
        const DirAdd r = ldir->tryAdd(line, src);
        assert(r != DirAdd::overflow);
        (void)r;
        restore_meta = MetaState::trapOnWrite;
    } else {
        sw.addSharer(line, src);
        restore_meta = MetaState::trapAlways;
    }

    out.push_back(buildData(Opcode::RDATA, src, line));
    cost += _costs.perInv + _costs.stateUpdate;

    _statReadTraps += 1;
    _mc.noteReadTrap(cost);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "ptr_overflow";
        ev.cat = EventCat::trap;
        ev.node = _mc.nodeId();
        ev.line = line;
        ev.src = src;
        ev.detail = "read_overflow";
        ev.arg = spilled.size();
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    return cost;
}

Tick
LimitlessHandler::handleSoftwareRead(const Packet &pkt,
                                     std::vector<PacketPtr> &out,
                                     MetaState &restore_meta)
{
    // Trap-Always line (ablation D1 / profiling): software services every
    // read itself.
    SoftwareDirTable &sw = _mc.softwareTable();
    const Addr line = pkt.addr();
    sw.addSharer(line, pkt.src);
    _mc.profileTable().addSharer(line, pkt.src);
    out.push_back(buildData(Opcode::RDATA, pkt.src, line));
    restore_meta = MetaState::trapAlways;
    const Tick cost = _costs.trapEntry + _costs.decode +
                      _costs.hashLookup + _costs.perInv +
                      _costs.stateUpdate;
    _statReadTraps += 1;
    _mc.noteReadTrap(cost);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "sw_read";
        ev.cat = EventCat::trap;
        ev.node = _mc.nodeId();
        ev.line = line;
        ev.src = pkt.src;
        ev.detail = "trap_always";
        FR_RECORD(ev);
    }
    return cost;
}

Tick
LimitlessHandler::handleWrite(const Packet &pkt,
                              std::vector<PacketPtr> &out,
                              MetaState &restore_meta)
{
    LimitlessDir *ldir = _mc.limitlessDir();
    SoftwareDirTable &sw = _mc.softwareTable();
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;

    // Gather the complete sharer set: hardware pointers + bit vector.
    std::vector<NodeId> all;
    ldir->sharers(line, all);
    sw.sharers(line, all);
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    std::vector<NodeId> others;
    for (NodeId n : all)
        if (n != src)
            others.push_back(n);
    _mc.noteWorkerSet(others.size() + 1);

    Tick cost = _costs.trapEntry + _costs.decode + _costs.hashLookup +
                all.size() * _costs.perPointer + _costs.stateUpdate;

    // Return the line to hardware control (paper §4.4): requester in the
    // directory, acknowledgment counter set, Normal mode, and either the
    // grant (no sharers) or a Write-Transaction awaiting ACKCs.
    // Trap-Always lines stay armed and keep their cumulative profile.
    const bool sticky =
        ldir->prevMeta(line) == MetaState::trapAlways;
    if (sticky) {
        _mc.profileTable().addSharers(line, all);
        _mc.profileTable().addSharer(line, src);
    }
    sw.free(line);
    ldir->clear(line);
    const DirAdd r = ldir->tryAdd(line, src);
    assert(r != DirAdd::overflow);
    (void)r;
    restore_meta = sticky ? MetaState::trapAlways : MetaState::normal;

    if (others.empty()) {
        _mc.setLineState(line, MemState::readWrite);
        out.push_back(buildData(Opcode::WDATA, src, line));
        cost += _costs.perInv;
    } else {
        _mc.setLineState(line, MemState::writeTransaction);
        _mc.setAckCounter(line, static_cast<std::uint32_t>(others.size()));
        _mc.setPendingRequester(line, src);
        for (NodeId n : others)
            out.push_back(buildInv(n, line));
        cost += others.size() * _costs.perInv;
    }

    _statWriteTraps += 1;
    _mc.noteWriteTrap(cost);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "write_gather";
        ev.cat = EventCat::trap;
        ev.node = _mc.nodeId();
        ev.line = line;
        ev.src = src;
        ev.arg = others.size();
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    return cost;
}

} // namespace limitless
