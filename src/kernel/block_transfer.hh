/**
 * @file
 * Block-transfer service over the IPI interface (paper Section 4.2:
 * "This store-back capability permits message-passing and
 * block-transfers in addition to enabling the processing of protocol
 * packets with data").
 *
 * The sending thread reads a run of lines through the coherent
 * interface and ships them as interrupt-class packets; the receiver's
 * handler
 * store-backs each payload into its own memory *coherently* by issuing
 * write-update (WUPD) operations through its memory controller, so any
 * cached copies of the destination lines are refreshed, then posts a
 * completion message back. Threads wait on a host-visible done flag set
 * by the completion handler (the same interrupt-wait idiom as the FIFO
 * lock).
 */

#ifndef LIMITLESS_KERNEL_BLOCK_TRANSFER_HH
#define LIMITLESS_KERNEL_BLOCK_TRANSFER_HH

#include <vector>

#include "machine/machine.hh"
#include "sim/task.hh"

namespace limitless
{

/** Machine-wide block-transfer service. */
class BlockTransferService
{
  public:
    /** @param service_id distinguishes concurrent services. */
    BlockTransferService(Machine &m, std::uint64_t service_id);

    /**
     * Transfer @p lines coherence lines starting at @p src_line (a
     * line-aligned address homed on the calling thread's node) to the
     * addresses starting at @p dst_line. With interleaved home mapping
     * consecutive destination lines live on consecutive nodes; each
     * line's packet is routed to its own home, whose handler stores it
     * back coherently and acknowledges. Blocks until every line is
     * acknowledged.
     */
    Task<> transfer(ThreadApi &t, Addr src_line, Addr dst_line,
                    unsigned lines);

    std::uint64_t packetsSent() const { return _packets; }

  private:
    enum Verb : std::uint64_t { dataVerb = 0, doneVerb = 1 };

    void handleMessage(NodeId receiver, const Packet &pkt);

    Machine &_m;
    std::uint64_t _id;
    std::vector<unsigned> _pendingAcks; ///< per-sender outstanding lines
    std::uint64_t _packets = 0;
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_BLOCK_TRANSFER_HH
