#include "kernel/block_transfer.hh"

#include "sim/log.hh"

namespace limitless
{

BlockTransferService::BlockTransferService(Machine &m,
                                           std::uint64_t service_id)
    : _m(m), _id(service_id), _pendingAcks(m.numNodes(), 0)
{
    for (NodeId n = 0; n < _m.numNodes(); ++n) {
        _m.node(n).dispatcher().registerMessage(
            Opcode::IPI_BLOCK_XFER, [this, n](const Packet &pkt) {
                handleMessage(n, pkt);
            });
    }
}

void
BlockTransferService::handleMessage(NodeId receiver, const Packet &pkt)
{
    if (pkt.operands.empty() || pkt.operands[0] != _id)
        return;
    const std::uint64_t verb = pkt.operands.at(1);

    if (verb == doneVerb) {
        // Per-line acknowledgment arriving back at the sender.
        assert(_pendingAcks[receiver] > 0);
        --_pendingAcks[receiver];
        return;
    }

    // Data packet: store the payload back into this node's memory
    // coherently — each word goes through the memory controller as a
    // write-update, refreshing any cached copies of the destination.
    const Addr dst_line = pkt.operands.at(2);
    assert(_m.addressMap().homeOf(dst_line) == receiver);
    const unsigned words = _m.addressMap().wordsPerLine();
    assert(pkt.data.size() >= words);
    for (unsigned w = 0; w < words; ++w) {
        auto wupd = makeProtocolPacket(receiver, receiver, Opcode::WUPD,
                                       dst_line);
        wupd->operands.push_back(w);
        wupd->operands.push_back(
            static_cast<std::uint64_t>(MemOpKind::store));
        wupd->operands.push_back(pkt.data[w]);
        wupd->operands.push_back(1); // silent: kernel write, no WACK
        _m.node(receiver).mem().enqueue(std::move(wupd));
    }
    _m.node(receiver).ipi().send(makeInterruptPacket(
        receiver, static_cast<NodeId>(pkt.src), Opcode::IPI_BLOCK_XFER,
        {_id, doneVerb}));
}

Task<>
BlockTransferService::transfer(ThreadApi &t, Addr src_line,
                               Addr dst_line, unsigned lines)
{
    const NodeId self = t.nodeId();
    const AddressMap &amap = _m.addressMap();
    if (amap.homeOf(src_line) != self)
        fatal("block transfer: source %#llx is not homed locally",
              (unsigned long long)src_line);
    assert(lines >= 1);

    _pendingAcks[self] = lines;
    // Read the payload through the coherent interface (hits in the
    // sender's own cache when it produced the data) and launch one
    // packet per line, each routed to that line's home.
    for (unsigned k = 0; k < lines; ++k) {
        const Addr src = src_line + k * amap.lineBytes();
        const Addr dst = dst_line + k * amap.lineBytes();
        std::vector<std::uint64_t> payload;
        payload.reserve(amap.wordsPerLine());
        for (unsigned w = 0; w < amap.wordsPerLine(); ++w)
            payload.push_back(
                co_await t.read(src + w * bytesPerWord));
        _m.node(self).ipi().send(makeInterruptPacket(
            self, amap.homeOf(dst), Opcode::IPI_BLOCK_XFER,
            {_id, dataVerb, dst}, std::move(payload)));
        ++_packets;
        co_await t.compute(4); // per-packet launch cost
    }

    // Wait for every line's completion interrupt.
    while (_pendingAcks[self] != 0)
        co_await t.compute(8);
}

} // namespace limitless
