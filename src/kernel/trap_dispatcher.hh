/**
 * @file
 * Per-node trap dispatcher: the software half of the IPI interrupt.
 *
 * Paper Section 4.2 stresses that the IPI interface is "a single generic
 * mechanism for network access — not a conglomeration of different
 * mechanisms". This dispatcher is that mechanism's software anchor: it
 * drains the IPI input queue in order, routing
 *  - protocol packets to the LimitLESS trap handler (when installed),
 *  - interrupt-class packets to registered active-message services
 *    (FIFO locks, block transfer, user messaging),
 * charging each trap's occupancy to the node's processor.
 */

#ifndef LIMITLESS_KERNEL_TRAP_DISPATCHER_HH
#define LIMITLESS_KERNEL_TRAP_DISPATCHER_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "ipi/ipi_interface.hh"
#include "kernel/kernel_costs.hh"
#include "proc/processor.hh"

namespace limitless
{

class LimitlessHandler;
class Log2Histogram;

/** Software interrupt dispatch for one node. */
class TrapDispatcher
{
  public:
    /** An active-message service; invoked per matching packet. */
    using MessageHandler = std::function<void(const Packet &)>;

    TrapDispatcher(EventQueue &eq, IpiInterface &ipi, Processor &proc,
                   KernelCosts costs);

    /** Install the LimitLESS protocol-trap strategy (may be null). */
    void setProtocolHandler(LimitlessHandler *handler)
    {
        _protocol = handler;
    }

    /**
     * Register a service for an interrupt-class opcode. Multiple
     * services may share an opcode; each sees every matching packet and
     * filters on its own operands (by convention, operand 0 is the
     * service id).
     */
    void registerMessage(Opcode op, MessageHandler handler);

    /** Interrupt entry point (wired to IpiInterface::setInterrupt). */
    void onInterrupt();

    StatSet &stats() { return _stats; }

    /** Telemetry sink for per-trap service cycles (null = disabled). */
    void setServiceTimeSink(Log2Histogram *h) { _serviceHist = h; }

  private:
    void processNext();
    void handleInterruptPacket(const Packet &pkt);

    EventQueue &_eq;
    IpiInterface &_ipi;
    Processor &_proc;
    KernelCosts _costs;
    LimitlessHandler *_protocol = nullptr;
    Log2Histogram *_serviceHist = nullptr; ///< telemetry, may be null
    std::unordered_map<std::uint16_t, std::vector<MessageHandler>>
        _services;
    bool _active = false;

    StatSet _stats{"trap"};
    Counter &_statProtocolTraps;
    Counter &_statMessages;
    Counter &_statUnhandled;
    Counter &_statCycles;
};

} // namespace limitless

#endif // LIMITLESS_KERNEL_TRAP_DISPATCHER_HH
