/**
 * @file
 * Protocol flight recorder: the process-wide observability hub.
 *
 * Three facilities share one singleton (mirroring the process-global
 * Log configuration in sim/log.hh):
 *
 *  - a structured trace sink that streams protocol events as Chrome
 *    trace_event JSON (open the file at ui.perfetto.dev or
 *    chrome://tracing). Disabled by default; when no trace file is
 *    open the per-event cost is one predicted-not-taken branch.
 *
 *  - a bounded postmortem ring holding the last N protocol events.
 *    Always on (a handful of stores per event), it is dumped by
 *    panic() and by CoherenceMonitor violations so invariant failures
 *    come with their causal history for the offending line.
 *
 *  - the remote-transaction LatencyTracker (obs/latency_tracker.hh),
 *    hosted here so instrumentation points reach it without plumbing.
 *
 * Instrumentation sites call FR_RECORD(...) with a filled TraceEvent;
 * compiling with -DLIMITLESS_NO_TRACE=1 removes every site entirely,
 * which is the "compile-away" bound for the <2% overhead budget.
 */

#ifndef LIMITLESS_OBS_FLIGHT_RECORDER_HH
#define LIMITLESS_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/latency_tracker.hh"
#include "obs/txn_tracer.hh"
#include "proto/opcode.hh"
#include "sim/types.hh"

namespace limitless
{

class EventQueue;

/** Component category of a trace event (maps to the "cat" field). */
enum class EventCat : std::uint8_t
{
    net,   ///< network injection / delivery
    cache, ///< cache controller miss lifecycle
    dir,   ///< directory state transitions and pointer events
    mem,   ///< memory controller protocol service
    trap,  ///< software trap dispatch / completion
};

const char *eventCatName(EventCat cat);

/**
 * One protocol event, compact enough to live in the postmortem ring.
 * `name` and `detail` must point at static-lifetime strings.
 */
struct TraceEvent
{
    Tick ts = 0;
    const char *name = "";
    EventCat cat = EventCat::net;
    NodeId node = invalidNode; ///< node the event happened on ("tid")
    Addr line = 0;             ///< memory line involved (0 = none)
    Opcode op = Opcode::RREQ;
    bool hasOp = false;
    NodeId src = invalidNode;
    NodeId dest = invalidNode;
    const char *detail = nullptr; ///< optional static-string annotation
    std::uint64_t arg = 0;        ///< optional numeric annotation
    bool hasArg = false;
};

/** Process-wide event sink, postmortem ring, and latency tracker. */
class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    /**
     * Register the active machine's event queue so components without a
     * clock of their own (the directories) can stamp events. Machine
     * sets this in its constructor and clears it in its destructor.
     */
    void setClock(const EventQueue *eq) { _clock = eq; }
    const EventQueue *clock() const { return _clock; }
    Tick now() const;

    /** @name Trace sink */
    /// @{
    /** Start streaming trace_event JSON to @p path; closes any open
     *  trace first. Returns false (untraced) when the file can't be
     *  opened. */
    bool traceOpen(const std::string &path);
    /** Finish the JSON array and close the file. Safe when no trace is
     *  open. */
    void traceClose();
    bool tracing() const { return _traceOpen; }
    /** Restrict the *streamed* trace to these lines (the postmortem
     *  ring keeps recording everything). Empty set = no filter. */
    void setLineFilter(std::unordered_set<Addr> lines);
    /** Raw trace-sink access for composite events (the transaction
     *  tracer's span slices and flow arrows). Returns nullptr unless a
     *  trace is open and @p line passes the stream filter; when
     *  non-null, the caller must write exactly one JSON object to the
     *  returned stream (the comma protocol is handled here). */
    std::ostream *traceRawEvent(Addr line);
    /// @}

    /** Record one event into the ring and, if open, the trace file. */
    void record(const TraceEvent &ev);

    /** @name Postmortem ring */
    /// @{
    void setRingCapacity(std::size_t events);
    /** Dump the buffered history (filtered to @p line unless 0) in
     *  chronological order, headed by the dump-trigger tick and
     *  @p reason so the dump correlates with telemetry windows. Invoked
     *  by panic() via the hook installed in the constructor, and by
     *  CoherenceMonitor before it panics. */
    void dumpPostmortem(std::ostream &os, Addr line = 0,
                        std::size_t maxEvents = 64,
                        const char *reason = nullptr) const;
    /** Focus the panic-hook postmortem on one line (0 = whole ring).
     *  Invariant checkers set this while examining a line so a panic
     *  dumps only that line's causal history. */
    void setPanicFocus(Addr line) { _panicFocus = line; }
    Addr panicFocus() const { return _panicFocus; }
    /** Label the panic-hook postmortem's trigger (static string only —
     *  read inside the panic path; e.g. "coherence violation"). */
    void setPanicReason(const char *reason) { _panicReason = reason; }
    const char *panicReason() const { return _panicReason; }
    /// @}

    LatencyTracker &latency() { return _latency; }

    /** The per-transaction causal tracer (obs/txn_tracer.hh), hosted
     *  here — like the latency tracker — so instrumentation points
     *  reach it without plumbing. The constructor installs it as the
     *  latency tracker's completion sink. */
    TxnTracer &txn() { return _txn; }

    /** Forget per-run state (ring contents, latency tracker, clock).
     *  Harnesses call this between experiments. */
    void resetRun();

  private:
    FlightRecorder();

    void writeTraceEvent(const TraceEvent &ev);

    const EventQueue *_clock = nullptr;

    std::ofstream _trace;
    bool _traceOpen = false;
    bool _traceFirst = true;
    std::unordered_set<Addr> _lineFilter;

    std::vector<TraceEvent> _ring;
    std::size_t _ringHead = 0;  ///< next slot to write
    std::size_t _ringMask = 0;  ///< capacity - 1 (capacity is a power of 2)
    std::size_t _ringCount = 0; ///< valid events in the ring
    Addr _panicFocus = 0;
    const char *_panicReason = nullptr;

    LatencyTracker _latency;
    TxnTracer _txn;
};

} // namespace limitless

#if defined(LIMITLESS_NO_TRACE)
#define FR_RECORD(ev) ((void)(ev))
#else
/** Record a protocol event; compiles away under -DLIMITLESS_NO_TRACE. */
#define FR_RECORD(ev) ::limitless::FlightRecorder::instance().record(ev)
#endif

#endif // LIMITLESS_OBS_FLIGHT_RECORDER_HH
