#include "obs/latency_tracker.hh"

#include "sim/event_queue.hh"

namespace limitless
{

namespace
{
/// Shorthand for building a deferred stamp inside the hook bodies.
using Kind = LatencyTracker::DeferredStamp::Kind;
} // namespace

void
LatencyTracker::reset()
{
    _open.clear();
    _aliases.clear();
    _completed = 0;
    _sumReqNet = 0.0;
    _sumHome = 0.0;
    _sumTrap = 0.0;
    _sumInv = 0.0;
    _sumReplyNet = 0.0;
    _sumTotal = 0.0;
    _sumChipHome = 0.0;
    _sumGlobalHome = 0.0;
    _sumInterChipInv = 0.0;
}

LatencyTracker::Open *
LatencyTracker::find(NodeId requester, Addr line)
{
    auto it = _open.find(key(requester, line));
    return it == _open.end() ? nullptr : &it->second;
}

LatencyTracker::Open *
LatencyTracker::resolve(NodeId node, Addr line, bool &parent_side)
{
    parent_side = false;
    const std::uint64_t k = key(node, line);
    // A live alias means the global home is currently working on this
    // (chip node, line) on some requester's behalf: its stamps are
    // parent-side even when the chip-home node has a record of its own
    // (the requester-is-the-chip-home case).
    if (!_aliases.empty()) {
        auto a = _aliases.find(k);
        if (a != _aliases.end()) {
            auto it = _open.find(a->second);
            if (it != _open.end()) {
                parent_side = true;
                return &it->second;
            }
        }
    }
    auto it = _open.find(k);
    return it == _open.end() ? nullptr : &it->second;
}

void
LatencyTracker::onInject(Tick now, NodeId requester, Addr line, bool write)
{
    if (_deferBuf) {
        _deferBuf->push_back(
            {now, 0, requester, invalidNode, line, Kind::inject, write});
        return;
    }
    Open open;
    open.inject = now;
    open.write = write;
    // Overwrite any stale entry: a BUSY-NAKed transaction re-injects
    // under the same key and the retry rounds fold into req_net.
    _open[key(requester, line)] = open;
}

void
LatencyTracker::onHomeArrival(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, invalidNode, line,
                              Kind::homeArrival, false});
        return;
    }
    bool parent = false;
    if (Open *open = resolve(requester, line, parent)) {
        if (parent)
            open->pArrival = now;
        else
            open->homeArrival = now;
    }
}

void
LatencyTracker::onTrap(NodeId requester, Addr line, Tick cycles)
{
    if (_deferBuf) {
        // The one hook without a caller-supplied tick: stamp it with the
        // deferring partition's clock so the sort interleaves it exactly
        // where the serial run would have applied it.
        _deferBuf->push_back({_deferClock->now(), cycles, requester,
                              invalidNode, line, Kind::trap, false});
        return;
    }
    bool parent = false;
    if (Open *open = resolve(requester, line, parent)) {
        if (parent)
            open->pTrapCycles += cycles;
        else
            open->trapCycles += cycles;
    }
}

void
LatencyTracker::onInvStart(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, invalidNode, line,
                              Kind::invStart, false});
        return;
    }
    bool parent = false;
    if (Open *open = resolve(requester, line, parent)) {
        if (parent) {
            if (!open->pInvStart)
                open->pInvStart = now;
        } else if (!open->invStart) {
            open->invStart = now;
        }
    }
}

void
LatencyTracker::onInvEnd(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back(
            {now, 0, requester, invalidNode, line, Kind::invEnd, false});
        return;
    }
    bool parent = false;
    if (Open *open = resolve(requester, line, parent)) {
        if (parent)
            open->pInvEnd = now;
        else
            open->invEnd = now;
    }
}

void
LatencyTracker::onReplySent(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, invalidNode, line,
                              Kind::replySent, false});
        return;
    }
    bool parent = false;
    if (Open *open = resolve(requester, line, parent)) {
        if (parent)
            open->pReply = now;
        else
            open->replySent = now;
    }
}

void
LatencyTracker::onChipArrival(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, invalidNode, line,
                              Kind::chipArrival, false});
        return;
    }
    if (Open *open = find(requester, line))
        open->chipArrival = now;
}

void
LatencyTracker::onParentForward(Tick now, NodeId requester, Addr line,
                                NodeId chip_node)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, chip_node, line,
                              Kind::parentForward, false});
        return;
    }
    if (Open *open = find(requester, line)) {
        open->parentForward = now;
        _aliases[key(chip_node, line)] = key(requester, line);
    }
}

void
LatencyTracker::onParentConsumed(Tick now, NodeId chip_node, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, chip_node, invalidNode, line,
                              Kind::parentConsumed, false});
        return;
    }
    auto a = _aliases.find(key(chip_node, line));
    if (a == _aliases.end())
        return;
    auto it = _open.find(a->second);
    if (it != _open.end() && it->second.pReply && now > it->second.pReply)
        it->second.pReplyNet += now - it->second.pReply;
    _aliases.erase(a);
}

void
LatencyTracker::onComplete(Tick now, NodeId requester, Addr line)
{
    if (_deferBuf) {
        _deferBuf->push_back({now, 0, requester, invalidNode, line,
                              Kind::complete, false});
        return;
    }
    auto it = _open.find(key(requester, line));
    if (it == _open.end())
        return;
    const Open open = it->second;
    _open.erase(it);

    const double total = static_cast<double>(now - open.inject);
    const bool hier = open.chipArrival || open.parentForward;

    // Raw phase windows from the stamps. Any stamp the transaction never
    // hit (e.g. no invalidations) contributes zero.
    double reqNet = 0.0;
    if (hier) {
        // Both request legs: requester -> chip home, and (when the miss
        // crossed the chip boundary) chip home -> global home.
        if (open.chipArrival > open.inject)
            reqNet = static_cast<double>(open.chipArrival - open.inject);
        if (open.parentForward && open.pArrival > open.parentForward)
            reqNet +=
                static_cast<double>(open.pArrival - open.parentForward);
    } else if (open.homeArrival > open.inject) {
        reqNet = static_cast<double>(open.homeArrival - open.inject);
    }

    double inv = 0.0;
    if (open.invEnd > open.invStart && open.invStart)
        inv = static_cast<double>(open.invEnd - open.invStart);

    double interChipInv = 0.0;
    if (open.pInvEnd > open.pInvStart && open.pInvStart)
        interChipInv = static_cast<double>(open.pInvEnd - open.pInvStart);

    double trap =
        static_cast<double>(open.trapCycles + open.pTrapCycles);

    double replyNet = 0.0;
    if (open.replySent && now > open.replySent)
        replyNet = static_cast<double>(now - open.replySent);
    replyNet += static_cast<double>(open.pReplyNet);

    // The global home's occupancy is the window between its stamps with
    // its inter-chip fan-out and trap charges carved out; the chip home
    // takes the residual so the phases still sum to the total by
    // construction.
    double globalHome = 0.0;
    if (hier && open.pReply && open.pArrival &&
        open.pReply > open.pArrival) {
        globalHome = static_cast<double>(open.pReply - open.pArrival) -
                     interChipInv - static_cast<double>(open.pTrapCycles);
        if (globalHome < 0.0)
            globalHome = 0.0;
    }

    // Home time is the residual, so the phases sum to the total by
    // construction. Windows can overlap (a trap charge delays the reply
    // launch; an invalidation fan-out may span the trap), which would
    // drive the residual negative — fold any deficit back through the
    // softer windows in order so every phase stays non-negative.
    double chipHome = 0.0;
    double home = 0.0;
    const auto bleedAll = [](double deficit, double *phases[],
                             std::size_t n) {
        for (std::size_t i = 0; i < n && deficit > 0.0; ++i) {
            double &phase = *phases[i];
            const double take = phase < deficit ? phase : deficit;
            phase -= take;
            deficit -= take;
        }
    };
    if (hier) {
        chipHome = total - reqNet - globalHome - interChipInv - trap -
                   inv - replyNet;
        if (chipHome < 0.0) {
            double *order[] = {&inv, &interChipInv, &trap, &globalHome,
                               &replyNet, &reqNet};
            bleedAll(-chipHome, order, 6);
            chipHome = 0.0;
        }
        // Legacy five-phase view: home folds both levels, inv folds the
        // inter-chip fan-out, keeping the sum invariant intact.
        home = chipHome + globalHome;
        inv += interChipInv;
    } else {
        home = total - reqNet - trap - inv - replyNet;
        if (home < 0.0) {
            double *order[] = {&inv, &trap, &replyNet, &reqNet};
            bleedAll(-home, order, 4);
            home = 0.0;
        }
    }

    _completed += 1;
    _sumReqNet += reqNet;
    _sumHome += home;
    _sumTrap += trap;
    _sumInv += inv;
    _sumReplyNet += replyNet;
    _sumTotal += total;
    _sumChipHome += chipHome;
    _sumGlobalHome += globalHome;
    _sumInterChipInv += interChipInv;

    if (_sink) {
        PhaseSample sample;
        sample.requester = requester;
        sample.line = line;
        sample.write = open.write;
        sample.inject = open.inject;
        sample.end = now;
        sample.reqNet = reqNet;
        sample.home = home;
        sample.trap = trap;
        sample.inv = inv;
        sample.replyNet = replyNet;
        sample.total = total;
        _sink(sample);
    }
}

void
LatencyTracker::replay(const DeferredStamp &s)
{
    switch (s.kind) {
    case Kind::inject:
        onInject(s.now, s.node, s.line, s.write);
        break;
    case Kind::homeArrival:
        onHomeArrival(s.now, s.node, s.line);
        break;
    case Kind::chipArrival:
        onChipArrival(s.now, s.node, s.line);
        break;
    case Kind::parentForward:
        onParentForward(s.now, s.node, s.line, s.chipNode);
        break;
    case Kind::parentConsumed:
        onParentConsumed(s.now, s.node, s.line);
        break;
    case Kind::trap:
        onTrap(s.node, s.line, s.cycles);
        break;
    case Kind::invStart:
        onInvStart(s.now, s.node, s.line);
        break;
    case Kind::invEnd:
        onInvEnd(s.now, s.node, s.line);
        break;
    case Kind::replySent:
        onReplySent(s.now, s.node, s.line);
        break;
    case Kind::complete:
        onComplete(s.now, s.node, s.line);
        break;
    }
}

PhaseBreakdown
LatencyTracker::snapshot() const
{
    PhaseBreakdown phases;
    phases.completed = _completed;
    if (_completed == 0)
        return phases;
    const double n = static_cast<double>(_completed);
    phases.reqNet = _sumReqNet / n;
    phases.home = _sumHome / n;
    phases.trap = _sumTrap / n;
    phases.inv = _sumInv / n;
    phases.replyNet = _sumReplyNet / n;
    phases.total = _sumTotal / n;
    phases.chipHome = _sumChipHome / n;
    phases.globalHome = _sumGlobalHome / n;
    phases.interChipInv = _sumInterChipInv / n;
    return phases;
}

} // namespace limitless
