#include "obs/latency_tracker.hh"

namespace limitless
{

void
LatencyTracker::reset()
{
    _open.clear();
    _completed = 0;
    _sumReqNet = 0.0;
    _sumHome = 0.0;
    _sumTrap = 0.0;
    _sumInv = 0.0;
    _sumReplyNet = 0.0;
    _sumTotal = 0.0;
}

LatencyTracker::Open *
LatencyTracker::find(NodeId requester, Addr line)
{
    auto it = _open.find(key(requester, line));
    return it == _open.end() ? nullptr : &it->second;
}

void
LatencyTracker::onInject(Tick now, NodeId requester, Addr line, bool write)
{
    Open open;
    open.inject = now;
    open.write = write;
    // Overwrite any stale entry: a BUSY-NAKed transaction re-injects
    // under the same key and the retry rounds fold into req_net.
    _open[key(requester, line)] = open;
}

void
LatencyTracker::onHomeArrival(Tick now, NodeId requester, Addr line)
{
    if (Open *open = find(requester, line))
        open->homeArrival = now;
}

void
LatencyTracker::onTrap(NodeId requester, Addr line, Tick cycles)
{
    if (Open *open = find(requester, line))
        open->trapCycles += cycles;
}

void
LatencyTracker::onInvStart(Tick now, NodeId requester, Addr line)
{
    if (Open *open = find(requester, line))
        if (!open->invStart)
            open->invStart = now;
}

void
LatencyTracker::onInvEnd(Tick now, NodeId requester, Addr line)
{
    if (Open *open = find(requester, line))
        open->invEnd = now;
}

void
LatencyTracker::onReplySent(Tick now, NodeId requester, Addr line)
{
    if (Open *open = find(requester, line))
        open->replySent = now;
}

void
LatencyTracker::onComplete(Tick now, NodeId requester, Addr line)
{
    auto it = _open.find(key(requester, line));
    if (it == _open.end())
        return;
    const Open open = it->second;
    _open.erase(it);

    const double total = static_cast<double>(now - open.inject);

    // Raw phase windows from the stamps. Any stamp the transaction never
    // hit (e.g. no invalidations) contributes zero.
    double reqNet = 0.0;
    if (open.homeArrival > open.inject)
        reqNet = static_cast<double>(open.homeArrival - open.inject);

    double inv = 0.0;
    if (open.invEnd > open.invStart && open.invStart)
        inv = static_cast<double>(open.invEnd - open.invStart);

    double trap = static_cast<double>(open.trapCycles);

    double replyNet = 0.0;
    if (open.replySent && now > open.replySent)
        replyNet = static_cast<double>(now - open.replySent);

    // Home time is the residual, so the five phases sum to the total by
    // construction. Windows can overlap (a trap charge delays the reply
    // launch; an invalidation fan-out may span the trap), which would
    // drive the residual negative — fold any deficit back through the
    // softer windows in order so every phase stays non-negative.
    double home = total - reqNet - trap - inv - replyNet;
    if (home < 0.0) {
        double deficit = -home;
        home = 0.0;
        const auto bleed = [&deficit](double &phase) {
            const double take = phase < deficit ? phase : deficit;
            phase -= take;
            deficit -= take;
        };
        bleed(inv);
        bleed(trap);
        bleed(replyNet);
        bleed(reqNet);
    }

    _completed += 1;
    _sumReqNet += reqNet;
    _sumHome += home;
    _sumTrap += trap;
    _sumInv += inv;
    _sumReplyNet += replyNet;
    _sumTotal += total;

    if (_sink) {
        PhaseSample sample;
        sample.requester = requester;
        sample.line = line;
        sample.write = open.write;
        sample.inject = open.inject;
        sample.end = now;
        sample.reqNet = reqNet;
        sample.home = home;
        sample.trap = trap;
        sample.inv = inv;
        sample.replyNet = replyNet;
        sample.total = total;
        _sink(sample);
    }
}

PhaseBreakdown
LatencyTracker::snapshot() const
{
    PhaseBreakdown phases;
    phases.completed = _completed;
    if (_completed == 0)
        return phases;
    const double n = static_cast<double>(_completed);
    phases.reqNet = _sumReqNet / n;
    phases.home = _sumHome / n;
    phases.trap = _sumTrap / n;
    phases.inv = _sumInv / n;
    phases.replyNet = _sumReplyNet / n;
    phases.total = _sumTotal / n;
    return phases;
}

} // namespace limitless
