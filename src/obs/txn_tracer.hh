/**
 * @file
 * Per-transaction causal tracer: span trees, critical paths, and
 * tail-latency quantiles for remote misses.
 *
 * Where the LatencyTracker (obs/latency_tracker.hh) reduces every
 * remote miss to five phase *means*, this tracer keeps the full causal
 * story of each transaction: a tree of timed spans — request network
 * legs hop by hop, BUSY/backoff rounds, home service queueing and
 * occupancy, LimitLESS trap enqueue/emulation windows, one span per
 * invalidated sharer (with its INV and ACK legs as children), and the
 * reply leg — plus an exact critical path extracted by a backward walk
 * over the tree.
 *
 * A transaction id is assigned at remote-miss injection and threaded
 * through packets (Packet::txnId / causeSpan / legSpan); every
 * instrumentation site is guarded by `pkt->txnId != 0` or `enabled()`,
 * so a disabled tracer costs one predicted branch per site and the
 * simulation output is bit-identical with the tracer off.
 *
 * Completion feeds per-phase bounded reservoirs (src/stats/reservoir.hh)
 * — exact p50/p95/p99 for every ≤64-node figure run — using the *same*
 * folded phase attribution the LatencyTracker accumulates, so quantiles
 * and means are consistent by construction. The K slowest transactions
 * are retained in full and exported as schema `limitless-txn-v1` JSON;
 * when a Chrome trace stream is open, finalized spans are also emitted
 * as trace_event slices with flow arrows across nodes.
 *
 * One tracer instance is hosted by the FlightRecorder singleton, which
 * installs it as the LatencyTracker's sample sink.
 */

#ifndef LIMITLESS_OBS_TXN_TRACER_HH
#define LIMITLESS_OBS_TXN_TRACER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/latency_tracker.hh"
#include "proto/opcode.hh"
#include "sim/types.hh"
#include "stats/reservoir.hh"

namespace limitless
{

struct Packet;

/** One timed span in a transaction's causal tree. Span ids are 1-based
 *  indices into TxnRecord::spans; a parent always precedes its children
 *  except that all top-level spans share parent 1 (the root). `kind`
 *  and `detail` must point at static-lifetime strings. */
struct TxnSpan
{
    std::uint32_t parent = 0;  ///< 1-based parent id; 0 = the root itself
    const char *kind = "";     ///< "req_net", "home_service", ...
    NodeId node = invalidNode; ///< node the span ran on
    NodeId peer = invalidNode; ///< network legs: the receiving node
    Tick start = 0;
    Tick end = 0;              ///< 0 while the span is open
    std::uint64_t arg = 0;     ///< kind-specific (retry round, Ts, ...)
    const char *detail = nullptr;
};

/** One segment of a transaction's critical path, attributed to the
 *  deepest span covering that time window. Segments tile [start, end]
 *  of the root exactly. */
struct TxnCritSeg
{
    const char *kind = "";
    std::uint32_t span = 0; ///< 1-based id of the attributed span
    Tick start = 0;
    Tick end = 0;
};

/** A completed (or in-flight) transaction's full causal record. */
struct TxnRecord
{
    std::uint64_t id = 0;
    NodeId requester = invalidNode;
    Addr line = 0;
    bool write = false;
    Tick start = 0;
    Tick end = 0;
    std::vector<TxnSpan> spans; ///< spans[0] is the root (kind "txn")
    PhaseSample phases;         ///< folded attribution at completion
    std::vector<TxnCritSeg> critical;

    /** Home-side progress watermark so repeated service rounds of a
     *  deferred request produce abutting queue_home spans (bookkeeping
     *  only, not exported). */
    Tick homeProgress = 0;
};

/** The six per-phase sample reservoirs a run accumulates; copyable so
 *  sweep harnesses can carry them across threads and merge them. */
struct PhaseReservoirs
{
    QuantileReservoir reqNet, home, trap, inv, replyNet, total;

    void
    add(const PhaseSample &s)
    {
        reqNet.add(s.reqNet);
        home.add(s.home);
        trap.add(s.trap);
        inv.add(s.inv);
        replyNet.add(s.replyNet);
        total.add(s.total);
    }

    void
    merge(const PhaseReservoirs &o)
    {
        reqNet.merge(o.reqNet);
        home.merge(o.home);
        trap.merge(o.trap);
        inv.merge(o.inv);
        replyNet.merge(o.replyNet);
        total.merge(o.total);
    }

    void
    reset()
    {
        reqNet.reset();
        home.reset();
        trap.reset();
        inv.reset();
        replyNet.reset();
        total.reset();
    }

    std::uint64_t count() const { return total.count(); }

    /** `{"req_net": {"p50": ..}, ...}` — the stats-JSON
     *  "phase_quantiles" object. */
    void writeJson(std::ostream &os) const;
};

/** Records causal span trees for in-flight remote transactions. */
class TxnTracer
{
  public:
    /** Start a fresh run capturing the @p top_k slowest transactions. */
    void enable(std::size_t top_k = 16);
    void disable() { _enabled = false; }
    /** Drop all per-run state (records, quantiles, id counter). */
    void reset();
    bool enabled() const { return _enabled; }
    std::size_t topK() const { return _topK; }

    /** @name Requester-side hooks (cache controller) */
    /// @{
    void onInject(Tick now, NodeId requester, Addr line, bool write);
    /** Stamp an outgoing RREQ/WREQ with its transaction id. */
    void tagRequest(Packet &pkt, NodeId requester);
    void onBusyBackoff(NodeId requester, Addr line, Tick now, Tick delay,
                       std::uint64_t round);
    /// @}

    /** @name Network hooks (one leg span per tagged packet hop) */
    /// @{
    void onNetSend(Packet &pkt, Tick now);
    void onNetDeliver(Packet &pkt, Tick now);
    /// @}

    /** @name Home-side hooks (memory controller, trap path) */
    /// @{
    /** One hardware service round for the transaction's own request:
     *  records queue_home (delivery -> service) and home_service
     *  occupancy spans. @p leg_span is the request's network-leg span
     *  captured before dispatch. */
    void onHomeService(std::uint64_t txn, std::uint32_t leg_span,
                       NodeId home, Opcode op, Tick svc_start,
                       Tick svc_end);
    /** Open a per-sharer invalidation span; tags @p inv.causeSpan so
     *  the INV leg and the returning ACK nest under it. */
    void onInvSend(Packet &inv, NodeId home, Tick start);
    /** Acknowledgment serviced at the home: close the sharer span it
     *  belongs to (@p sharer_span is the ack's causeSpan tag). */
    void onInvAck(std::uint64_t txn, std::uint32_t sharer_span, Tick now);
    /** Inline Ts emulation charge (stall-approximation mode). */
    void onTrapCharge(std::uint64_t txn, NodeId home, Tick now,
                      Tick cycles);
    /** Packet diverted to the software handler: open a trap_queue span
     *  (stored in pkt.legSpan) covering the IPI queue wait. */
    void onTrapEnqueue(Packet &pkt, NodeId home, Tick now);
    /** Handler started emulating: close the trap_queue span and record
     *  the [now, now+cost] trap_emulate window. */
    void onTrapEmulate(std::uint64_t txn, std::uint32_t enq_span,
                       NodeId home, Tick now, Tick cost);
    /// @}

    /** Completion sink, fed by LatencyTracker::onComplete with the
     *  folded phase attribution. Finalizes the span tree, extracts the
     *  critical path, feeds the reservoirs, and retains top-K. */
    void onPhaseSample(const PhaseSample &sample);

    /** @name Results */
    /// @{
    std::uint64_t completedCount() const { return _completed; }
    /** Transactions whose key was re-injected before completing. */
    std::uint64_t abandonedCount() const { return _abandoned; }
    std::size_t openCount() const { return _open.size(); }
    const PhaseReservoirs &quantiles() const { return _quantiles; }
    PhaseReservoirs &quantiles() { return _quantiles; }
    /** Retained slowest transactions, total desc (ties: id asc). */
    std::vector<const TxnRecord *> top() const;
    /** Schema limitless-txn-v1 export. */
    void writeJson(std::ostream &os) const;
    bool writeJsonFile(const std::string &path) const;
    /// @}

  private:
    static std::uint64_t
    key(NodeId requester, Addr line)
    {
        return (static_cast<std::uint64_t>(requester) << 48) ^ line;
    }

    TxnRecord *byId(std::uint64_t id);
    std::uint32_t addSpan(TxnRecord &rec, std::uint32_t parent,
                          const char *kind, NodeId node, Tick start,
                          Tick end);
    void finalize(TxnRecord &rec);
    void computeCritical(TxnRecord &rec) const;
    void emitChrome(const TxnRecord &rec) const;
    void keepIfSlow(TxnRecord &&rec);

    bool _enabled = false;
    std::size_t _topK = 16;
    std::uint64_t _nextId = 0;
    std::uint64_t _completed = 0;
    std::uint64_t _abandoned = 0;
    std::unordered_map<std::uint64_t, TxnRecord> _open;  ///< id -> record
    std::unordered_map<std::uint64_t, std::uint64_t> _byKey;
    std::vector<TxnRecord> _slowest; ///< min-heap by (total, id)
    PhaseReservoirs _quantiles;
};

} // namespace limitless

#endif // LIMITLESS_OBS_TXN_TRACER_HH
