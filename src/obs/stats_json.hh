/**
 * @file
 * Shared JSON fragments for the observability layer: the per-phase
 * latency breakdown object embedded in stats exports (Machine,
 * limitless_sim, bench binaries).
 */

#ifndef LIMITLESS_OBS_STATS_JSON_HH
#define LIMITLESS_OBS_STATS_JSON_HH

#include <ostream>

#include "obs/latency_tracker.hh"

namespace limitless
{

/**
 * Emit @p phases as one JSON object:
 * {"count":N,"req_net":..,"home":..,"trap":..,"inv":..,
 *  "reply_net":..,"total":..}
 * The five phase means sum to "total" by construction.
 *
 * With @p hier set (two-level machines only — the flat document is
 * byte-stable), three keys are appended splitting the legacy view:
 * "chip_home" + "global_home" sum to "home", and "inter_chip_inv" is
 * the portion of "inv" spent in the global home's one-INV-per-chip
 * fan-out (schema limitless-stats-v1; see docs/OBSERVABILITY.md).
 */
void phasesJson(std::ostream &os, const PhaseBreakdown &phases,
                bool hier = false);

} // namespace limitless

#endif // LIMITLESS_OBS_STATS_JSON_HH
