/**
 * @file
 * Shared JSON fragments for the observability layer: the per-phase
 * latency breakdown object embedded in stats exports (Machine,
 * limitless_sim, bench binaries).
 */

#ifndef LIMITLESS_OBS_STATS_JSON_HH
#define LIMITLESS_OBS_STATS_JSON_HH

#include <ostream>

#include "obs/latency_tracker.hh"

namespace limitless
{

/**
 * Emit @p phases as one JSON object:
 * {"count":N,"req_net":..,"home":..,"trap":..,"inv":..,
 *  "reply_net":..,"total":..}
 * The five phase means sum to "total" by construction.
 */
void phasesJson(std::ostream &os, const PhaseBreakdown &phases);

} // namespace limitless

#endif // LIMITLESS_OBS_STATS_JSON_HH
