/**
 * @file
 * Minimal JSON emission and validation helpers for the observability
 * layer. Deliberately tiny: the simulator only ever *writes* JSON
 * (trace-event streams, stats exports), and the only reading we do is a
 * structural validity check used by tests and the CI smoke run.
 */

#ifndef LIMITLESS_OBS_JSON_HH
#define LIMITLESS_OBS_JSON_HH

#include <ostream>
#include <string>

namespace limitless
{

/** Write @p s as a JSON string literal (quotes and escapes included). */
void jsonEscape(std::ostream &os, const std::string &s);

/**
 * Structural JSON validity check (RFC 8259 grammar, no semantic limits).
 * @return true when @p text is exactly one valid JSON value; on failure
 *         @p err (if non-null) receives a byte offset and reason.
 */
bool jsonValidate(const std::string &text, std::string *err = nullptr);

} // namespace limitless

#endif // LIMITLESS_OBS_JSON_HH
