#include "obs/json.hh"

#include <cctype>
#include <cstdio>

namespace limitless
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

namespace
{

/** Recursive-descent JSON checker over a string. */
class Validator
{
  public:
    explicit Validator(const std::string &text) : _t(text) {}

    bool
    run(std::string *err)
    {
        skipWs();
        if (!value()) {
            fail(err);
            return false;
        }
        skipWs();
        if (_pos != _t.size()) {
            _why = "trailing garbage after value";
            fail(err);
            return false;
        }
        return true;
    }

  private:
    void
    fail(std::string *err) const
    {
        if (err)
            *err = "offset " + std::to_string(_pos) + ": " + _why;
    }

    char peek() const { return _pos < _t.size() ? _t[_pos] : '\0'; }
    bool eat(char c) { return peek() == c && (++_pos, true); }

    void
    skipWs()
    {
        while (_pos < _t.size() &&
               (_t[_pos] == ' ' || _t[_pos] == '\t' || _t[_pos] == '\n' ||
                _t[_pos] == '\r'))
            ++_pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i]) {
            if (_pos + i >= _t.size() || _t[_pos + i] != word[i]) {
                _why = "bad literal";
                return false;
            }
            ++i;
        }
        _pos += i;
        return true;
    }

    bool
    string()
    {
        if (!eat('"')) {
            _why = "expected string";
            return false;
        }
        while (_pos < _t.size()) {
            const char c = _t[_pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                _why = "raw control character in string";
                return false;
            }
            if (c == '\\') {
                if (_pos >= _t.size())
                    break;
                const char e = _t[_pos++];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        if (_pos >= _t.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                _t[_pos]))) {
                            _why = "bad \\u escape";
                            return false;
                        }
                        ++_pos;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    _why = "bad escape";
                    return false;
                }
            }
        }
        _why = "unterminated string";
        return false;
    }

    bool
    number()
    {
        const std::size_t start = _pos;
        eat('-');
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            _why = "bad number";
            return false;
        }
        if (!eat('0'))
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        if (eat('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                _why = "bad fraction";
                return false;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                _why = "bad exponent";
                return false;
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return _pos > start;
    }

    bool
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        eat('{');
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':')) {
                _why = "expected ':'";
                return false;
            }
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eat('}'))
                return true;
            if (!eat(',')) {
                _why = "expected ',' or '}'";
                return false;
            }
        }
    }

    bool
    array()
    {
        eat('[');
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eat(']'))
                return true;
            if (!eat(',')) {
                _why = "expected ',' or ']'";
                return false;
            }
        }
    }

    const std::string &_t;
    std::size_t _pos = 0;
    const char *_why = "invalid value";
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *err)
{
    return Validator(text).run(err);
}

} // namespace limitless
