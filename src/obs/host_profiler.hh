/**
 * @file
 * Host-side hierarchical scoped profiler: where does the *simulator*
 * (not the simulated machine) spend its wall-clock time?
 *
 * Usage: drop `PROF_SCOPE("name")` at the top of a function or block.
 * Scopes nest into a per-thread call tree keyed by name; each node
 * accumulates call count and inclusive wall time.  When the profiler is
 * disabled (the default) a scope costs one relaxed atomic load and a
 * predictable branch — nothing is allocated and no clock is read, so
 * instrumented hot paths stay bit- and throughput-identical to an
 * uninstrumented build (the PR 5/6 overhead-guard discipline).
 *
 * Threading: every thread owns a private tree (thread-local, no locks
 * on the hot path).  Trees retire into a global aggregate under a mutex
 * when their thread exits, and HostProfiler::snapshot() folds retired
 * plus still-live trees.  Merging is by scope name and therefore
 * commutative — the aggregate is independent of thread join order, the
 * same property the PR 9 histogram shadows rely on.  Snapshot/reset
 * must only be called while no *other* profiled thread is running
 * (after joins), which is where the harness and parallel kernel call
 * them.
 *
 * Exports: collapsed-stack flamegraph lines ("a;b;c self_ns", sorted),
 * a stats-JSON `host_profile` block, and optional per-scope Chrome
 * trace slices through a process-wide sink hook (installed by the CLI
 * when `--trace-out` is active, so src/obs keeps zero dependency on the
 * trace stream).
 */

#ifndef LIMITLESS_OBS_HOST_PROFILER_HH
#define LIMITLESS_OBS_HOST_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace limitless
{

namespace prof_detail
{

/** One scope in a per-thread call tree. Names are the string literals
 *  passed to PROF_SCOPE, so identity is usually pointer equality. */
struct ProfNode
{
    const char *name = nullptr;
    ProfNode *parent = nullptr;
    std::vector<ProfNode *> kids;
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;
};

/** A thread's private tree. The deque arena keeps node addresses
 *  stable while children are appended. */
struct ProfTree
{
    explicit ProfTree(bool registered = true);
    ~ProfTree();

    ProfNode *child(ProfNode *parent, const char *name);
    void clear();

    ProfNode root;
    ProfNode *cur = &root;
    std::deque<ProfNode> arena;
    bool registered;
};

ProfTree &threadTree();

} // namespace prof_detail

class HostProfiler
{
  public:
    /** Chrome-slice hook: called on scope exit with the scope name and
     *  its [start, start+dur) interval in ns since enable(). */
    using SliceSink = void (*)(const char *name, std::uint64_t startNs,
                               std::uint64_t durNs);

    static void enable();
    static void disable();

    static bool
    enabled()
    {
        return _on.load(std::memory_order_relaxed);
    }

    /** Drop all recorded data (retired and live trees). Test hook; the
     *  caller must guarantee no other thread has a scope open. */
    static void reset();

    static void setSliceSink(SliceSink sink);

    static SliceSink
    sliceSink()
    {
        return _sink.load(std::memory_order_relaxed);
    }

    /** ns since enable() on the steady clock (0 when disabled). */
    static std::uint64_t nowNs();

    /** One aggregated scope path ("machine.run;eq.burst"). */
    struct Scope
    {
        std::string path;
        std::uint64_t count = 0;
        std::uint64_t wallNs = 0;
        std::uint64_t selfNs = 0; ///< wall minus children, clamped >= 0
    };

    /** Merge every tree (retired + live) into flat rows sorted by
     *  path. Call only when no other profiled thread is running. */
    static std::vector<Scope> snapshot();

    /** Collapsed-stack flamegraph lines: "path self_ns\n", sorted. */
    static void writeFolded(std::ostream &os);

    /** Stats-JSON block body: {"scopes": [{...}, ...]}. Every line is
     *  prefixed with @p indent except the first. */
    static void writeJson(std::ostream &os, const char *indent);

  private:
    friend struct prof_detail::ProfTree;
    friend class ProfScope;

    static inline std::atomic<bool> _on{false};
    static inline std::atomic<SliceSink> _sink{nullptr};
    static std::chrono::steady_clock::time_point _origin;
};

/** RAII scope guard behind the PROF_SCOPE macro. */
class ProfScope
{
  public:
    explicit ProfScope(const char *name)
    {
        if (HostProfiler::enabled()) [[unlikely]]
            open(name);
    }

    ~ProfScope()
    {
        if (_node) [[unlikely]]
            close();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    void open(const char *name);
    void close();

    prof_detail::ProfNode *_node = nullptr;
    std::chrono::steady_clock::time_point _start;
};

} // namespace limitless

#ifdef LIMITLESS_NO_PROF
#define PROF_SCOPE(name) ((void)0)
#else
#define LIMITLESS_PROF_CAT2(a, b) a##b
#define LIMITLESS_PROF_CAT(a, b) LIMITLESS_PROF_CAT2(a, b)
#define PROF_SCOPE(name)                                                     \
    ::limitless::ProfScope LIMITLESS_PROF_CAT(prof_scope_, __LINE__)(name)
#endif

#endif // LIMITLESS_OBS_HOST_PROFILER_HH
