#include "obs/host_profiler.hh"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <ostream>

#include "obs/json.hh"

namespace limitless
{

std::chrono::steady_clock::time_point HostProfiler::_origin{};

namespace prof_detail
{
namespace
{

/** Global tree registry. Leaked on purpose: thread_local tree
 *  destructors may run after function-local statics are torn down at
 *  process exit, so the registry must outlive every thread. */
struct Registry
{
    std::mutex mu;
    std::vector<ProfTree *> live;
    ProfTree retired{/*registered=*/false};
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

/** Fold @p src (and its subtree) into @p dstNode of @p dst. Addition
 *  commutes, so the aggregate is independent of merge order. */
void
mergeInto(ProfTree &dst, ProfNode *dstNode, const ProfNode *src)
{
    for (const ProfNode *kid : src->kids) {
        ProfNode *d = dst.child(dstNode, kid->name);
        d->count += kid->count;
        d->wallNs += kid->wallNs;
        mergeInto(dst, d, kid);
    }
}

void
flatten(const ProfNode *node, std::string &path,
        std::vector<HostProfiler::Scope> &out)
{
    for (const ProfNode *kid : node->kids) {
        const std::size_t len = path.size();
        if (!path.empty())
            path += ';';
        path += kid->name;
        std::uint64_t kidsWall = 0;
        for (const ProfNode *g : kid->kids)
            kidsWall += g->wallNs;
        HostProfiler::Scope s;
        s.path = path;
        s.count = kid->count;
        s.wallNs = kid->wallNs;
        s.selfNs = kid->wallNs > kidsWall ? kid->wallNs - kidsWall : 0;
        out.push_back(std::move(s));
        flatten(kid, path, out);
        path.resize(len);
    }
}

} // namespace

ProfTree::ProfTree(bool registered) : registered(registered)
{
    if (!registered)
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.live.push_back(this);
}

ProfTree::~ProfTree()
{
    if (!registered)
        return;
    // Thread exit: retire this thread's counts into the shared
    // aggregate so they survive the join (commutative merge).
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    mergeInto(r.retired, &r.retired.root, &root);
    r.live.erase(std::find(r.live.begin(), r.live.end(), this));
}

ProfNode *
ProfTree::child(ProfNode *parent, const char *name)
{
    for (ProfNode *kid : parent->kids)
        if (kid->name == name || !std::strcmp(kid->name, name))
            return kid;
    ProfNode &n = arena.emplace_back();
    n.name = name;
    n.parent = parent;
    parent->kids.push_back(&n);
    return &n;
}

void
ProfTree::clear()
{
    arena.clear();
    root.kids.clear();
    root.count = 0;
    root.wallNs = 0;
    cur = &root;
}

ProfTree &
threadTree()
{
    thread_local ProfTree tree;
    return tree;
}

} // namespace prof_detail

void
HostProfiler::enable()
{
    _origin = std::chrono::steady_clock::now();
    _on.store(true, std::memory_order_relaxed);
}

void
HostProfiler::disable()
{
    _on.store(false, std::memory_order_relaxed);
}

void
HostProfiler::reset()
{
    using prof_detail::registry;
    auto &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.retired.clear();
    for (prof_detail::ProfTree *t : r.live)
        t->clear();
}

void
HostProfiler::setSliceSink(SliceSink sink)
{
    _sink.store(sink, std::memory_order_relaxed);
}

std::uint64_t
HostProfiler::nowNs()
{
    if (!enabled())
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - _origin)
            .count());
}

std::vector<HostProfiler::Scope>
HostProfiler::snapshot()
{
    using namespace prof_detail;
    auto &r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    ProfTree agg(/*registered=*/false);
    mergeInto(agg, &agg.root, &r.retired.root);
    for (const ProfTree *t : r.live)
        mergeInto(agg, &agg.root, &t->root);
    std::vector<Scope> out;
    std::string path;
    flatten(&agg.root, path, out);
    std::sort(out.begin(), out.end(),
              [](const Scope &a, const Scope &b) { return a.path < b.path; });
    return out;
}

void
HostProfiler::writeFolded(std::ostream &os)
{
    for (const Scope &s : snapshot())
        os << s.path << ' ' << s.selfNs << '\n';
}

void
HostProfiler::writeJson(std::ostream &os, const char *indent)
{
    const std::vector<Scope> scopes = snapshot();
    os << "{\n";
    os << indent << "  \"scopes\": [";
    bool first = true;
    for (const Scope &s : scopes) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << indent << "    {\"path\": ";
        jsonEscape(os, s.path);
        os << ", \"count\": " << s.count << ", \"wall_ns\": " << s.wallNs
           << ", \"self_ns\": " << s.selfNs << "}";
    }
    if (first)
        os << "]\n";
    else
        os << "\n" << indent << "  ]\n";
    os << indent << "}";
}

void
ProfScope::open(const char *name)
{
    using namespace prof_detail;
    ProfTree &t = threadTree();
    _node = t.child(t.cur, name);
    t.cur = _node;
    _start = std::chrono::steady_clock::now();
}

void
ProfScope::close()
{
    const auto end = std::chrono::steady_clock::now();
    const std::uint64_t dur = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - _start)
            .count());
    _node->count += 1;
    _node->wallNs += dur;
    prof_detail::threadTree().cur = _node->parent;
    if (HostProfiler::SliceSink sink = HostProfiler::sliceSink())
        [[unlikely]] {
        const std::uint64_t endNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - HostProfiler::_origin)
                .count());
        sink(_node->name, endNs > dur ? endNs - dur : 0, dur);
    }
    _node = nullptr;
}

} // namespace limitless
