#include "obs/flight_recorder.hh"

#include <algorithm>
#include <bit>
#include <iostream>

#include "obs/json.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

constexpr std::size_t defaultRingCapacity = 8192;

} // namespace

const char *
eventCatName(EventCat cat)
{
    switch (cat) {
      case EventCat::net: return "net";
      case EventCat::cache: return "cache";
      case EventCat::dir: return "dir";
      case EventCat::mem: return "mem";
      case EventCat::trap: return "trap";
    }
    return "?";
}

FlightRecorder &
FlightRecorder::instance()
{
    // Thread-local: one machine runs per thread, so each parallel sweep
    // worker records into (and resets) its own recorder without locks.
    thread_local FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder()
{
    _ring.resize(defaultRingCapacity);
    _ringMask = _ring.size() - 1;
    // Let panic() surface the causal history of whatever blew up. The
    // hook slot is global and idempotent: every thread's recorder installs
    // the same function, which dumps the panicking thread's own ring.
    setPanicHook([] {
        const FlightRecorder &fr = FlightRecorder::instance();
        fr.dumpPostmortem(std::cerr, fr.panicFocus(), 64,
                          fr.panicReason() ? fr.panicReason() : "panic");
    });
    // Completed remote misses flow into the transaction tracer with the
    // exact folded phase attribution the mean breakdown accumulates,
    // keeping quantiles and means consistent by construction. The sink
    // is a no-op while the tracer is disabled.
    _latency.setSampleSink(
        [this](const PhaseSample &s) { _txn.onPhaseSample(s); });
}

Tick
FlightRecorder::now() const
{
    return _clock ? _clock->now() : 0;
}

bool
FlightRecorder::traceOpen(const std::string &path)
{
    traceClose();
    _trace.open(path, std::ios::out | std::ios::trunc);
    if (!_trace.is_open())
        return false;
    _trace << "[\n";
    _traceOpen = true;
    _traceFirst = true;
    return true;
}

void
FlightRecorder::traceClose()
{
    if (!_traceOpen)
        return;
    _trace << "\n]\n";
    _trace.close();
    _traceOpen = false;
    _traceFirst = true;
}

void
FlightRecorder::setLineFilter(std::unordered_set<Addr> lines)
{
    _lineFilter = std::move(lines);
}

std::ostream *
FlightRecorder::traceRawEvent(Addr line)
{
    if (!_traceOpen ||
        (!_lineFilter.empty() && !_lineFilter.count(line)))
        return nullptr;
    if (!_traceFirst)
        _trace << ",\n";
    _traceFirst = false;
    return &_trace;
}

void
FlightRecorder::setRingCapacity(std::size_t events)
{
    // Rounded up to a power of two so the ring write is mask, not modulo.
    _ring.assign(std::bit_ceil(std::max<std::size_t>(events, 1)),
                 TraceEvent{});
    _ringMask = _ring.size() - 1;
    _ringHead = 0;
    _ringCount = 0;
}

void
FlightRecorder::record(const TraceEvent &ev)
{
    _ring[_ringHead] = ev;
    _ringHead = (_ringHead + 1) & _ringMask;
    if (_ringCount < _ring.size())
        ++_ringCount;

    if (_traceOpen &&
        (_lineFilter.empty() || _lineFilter.count(ev.line)))
        writeTraceEvent(ev);
}

void
FlightRecorder::writeTraceEvent(const TraceEvent &ev)
{
    if (!_traceFirst)
        _trace << ",\n";
    _traceFirst = false;

    // Chrome trace_event instant event, one per line. "ts" is in
    // microseconds in the viewer; we map one cycle to one microsecond.
    _trace << "{\"name\":";
    jsonEscape(_trace, ev.name);
    _trace << ",\"cat\":\"" << eventCatName(ev.cat)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.ts
           << ",\"pid\":0,\"tid\":"
           << (ev.node == invalidNode ? 0 : ev.node) << ",\"args\":{";
    bool first = true;
    const auto field = [&](const char *key) -> std::ostream & {
        if (!first)
            _trace << ',';
        first = false;
        _trace << '"' << key << "\":";
        return _trace;
    };
    if (ev.line)
        field("line") << "\"0x" << std::hex << ev.line << std::dec << '"';
    if (ev.hasOp)
        field("op") << '"' << opcodeName(ev.op) << '"';
    if (ev.src != invalidNode)
        field("src") << ev.src;
    if (ev.dest != invalidNode)
        field("dest") << ev.dest;
    if (ev.detail)
        field("detail") << '"' << ev.detail << '"';
    if (ev.hasArg)
        field("arg") << ev.arg;
    _trace << "}}";
}

void
FlightRecorder::dumpPostmortem(std::ostream &os, Addr line,
                               std::size_t maxEvents,
                               const char *reason) const
{
    // Collect the matching tail of the ring, oldest first.
    std::vector<const TraceEvent *> match;
    const std::size_t cap = _ring.size();
    const std::size_t start = (_ringHead + cap - _ringCount) % cap;
    for (std::size_t i = 0; i < _ringCount; ++i) {
        const TraceEvent &ev = _ring[(start + i) % cap];
        if (line == 0 || ev.line == line)
            match.push_back(&ev);
    }
    const std::size_t skip =
        match.size() > maxEvents ? match.size() - maxEvents : 0;

    os << "==== postmortem @" << now();
    if (reason)
        os << " (" << reason << ")";
    os << ": last " << (match.size() - skip) << " protocol events";
    if (line)
        os << " for line 0x" << std::hex << line << std::dec;
    os << " ====\n";
    if (match.empty())
        os << "  (no recorded events)\n";
    for (std::size_t i = skip; i < match.size(); ++i) {
        const TraceEvent &ev = *match[i];
        os << "  @" << ev.ts << " node " << ev.node << " ["
           << eventCatName(ev.cat) << "] " << ev.name;
        if (ev.line)
            os << " line=0x" << std::hex << ev.line << std::dec;
        if (ev.hasOp)
            os << " op=" << opcodeName(ev.op);
        if (ev.src != invalidNode)
            os << " src=" << ev.src;
        if (ev.dest != invalidNode)
            os << " dest=" << ev.dest;
        if (ev.detail)
            os << ' ' << ev.detail;
        if (ev.hasArg)
            os << " arg=" << ev.arg;
        os << '\n';
    }
    os << "==== end postmortem ====" << std::endl;
}

void
FlightRecorder::resetRun()
{
    _ringHead = 0;
    _ringCount = 0;
    _lineFilter.clear();
    _latency.reset();
    _txn.reset();
    _clock = nullptr;
    _panicFocus = 0;
    _panicReason = nullptr;
}

} // namespace limitless
